// Dictionary: the paper's Section 2 modularity example. The dictionary
// object runs its own intra-object algorithm — a lock-coupled B+ tree with
// per-key conflict declarations — while the object base coordinates
// transactions with the optimistic inter-object certifier (the Theorem 5
// decomposition). Concurrent transactions mixing lookups, inserts and
// deletes over disjoint and overlapping keys are then verified
// serialisable, including the Theorem 5 per-object conditions.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"objectbase/internal/cc"
	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/objects"
)

func main() {
	sched := cc.NewModular()
	en := cc.NewEngine(sched, engine.Options{})

	en.AddObject("index", objects.Dictionary(), nil)
	en.Register("index", "put", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Do("index", "Insert", ctx.Arg(0), ctx.Arg(1))
	})
	en.Register("index", "get", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Do("index", "Lookup", ctx.Arg(0))
	})
	en.Register("index", "del", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Do("index", "Delete", ctx.Arg(0))
	})
	// A compound method: move a value from one key to another — two local
	// steps inside one method execution.
	en.Register("index", "rename", func(ctx *engine.Ctx) (core.Value, error) {
		old, err := ctx.Do("index", "Delete", ctx.Arg(0))
		if err != nil {
			return nil, err
		}
		if old == nil {
			return false, nil
		}
		if _, err := ctx.Do("index", "Insert", ctx.Arg(1), old); err != nil {
			return nil, err
		}
		return true, nil
	})

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 40; i++ {
				k := int64(r.Intn(128))
				var err error
				switch r.Intn(4) {
				case 0:
					_, err = en.Run("put", func(ctx *engine.Ctx) (core.Value, error) {
						return ctx.Call("index", "put", k, int64(c*1000+i))
					})
				case 1:
					_, err = en.Run("get", func(ctx *engine.Ctx) (core.Value, error) {
						return ctx.Call("index", "get", k)
					})
				case 2:
					_, err = en.Run("del", func(ctx *engine.Ctx) (core.Value, error) {
						return ctx.Call("index", "del", k)
					})
				default:
					k2 := int64(r.Intn(128))
					_, err = en.Run("rename", func(ctx *engine.Ctx) (core.Value, error) {
						return ctx.Call("index", "rename", k, k2)
					})
				}
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()

	h := en.History()
	if err := h.CheckLegal(); err != nil {
		log.Fatalf("history not legal: %v", err)
	}
	v := graph.Check(h)
	if !v.Serialisable {
		log.Fatalf("not serialisable: %v", v)
	}
	if err := graph.CheckTheorem5(h); err != nil {
		log.Fatalf("theorem 5: %v", err)
	}
	st := sched.Stats()
	fmt.Printf("committed: %d  retries: %d\n", en.Commits(), en.Retries())
	fmt.Printf("certifier: %d validated, %d rejected\n", st.Validated, st.Rejected)
	fmt.Printf("dictionary size after run: %v\n", mustLen(en))
	fmt.Println("serialisable; Theorem 5 intra/inter decomposition holds")
}

func mustLen(en *engine.Engine) core.Value {
	v, err := en.Run("len", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Do("index", "Len")
	})
	if err != nil {
		log.Fatal(err)
	}
	return v
}
