// Dictionary: the paper's Section 2 modularity example. The dictionary
// object runs its own intra-object algorithm — a lock-coupled B+ tree with
// per-key conflict declarations — while the object base coordinates
// transactions with the optimistic inter-object certifier (the Theorem 5
// decomposition). Concurrent transactions mixing lookups, inserts and
// deletes over disjoint and overlapping keys are then verified
// serialisable, including the Theorem 5 per-object conditions.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"objectbase"
)

func main() {
	db, err := objectbase.Open(objectbase.WithScheduler("modular"))
	if err != nil {
		log.Fatal(err)
	}

	must(db.RegisterObject("index", objectbase.Dictionary(), nil))
	must(db.RegisterMethod("index", "put", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		return ctx.Do("index", "Insert", ctx.Arg(0), ctx.Arg(1))
	}))
	must(db.RegisterMethod("index", "get", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		return ctx.Do("index", "Lookup", ctx.Arg(0))
	}))
	must(db.RegisterMethod("index", "del", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		return ctx.Do("index", "Delete", ctx.Arg(0))
	}))
	// A compound method: move a value from one key to another — two local
	// steps inside one method execution.
	must(db.RegisterMethod("index", "rename", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		old, err := ctx.Do("index", "Delete", ctx.Arg(0))
		if err != nil {
			return nil, err
		}
		if old == nil {
			return false, nil
		}
		if _, err := ctx.Do("index", "Insert", ctx.Arg(1), old); err != nil {
			return nil, err
		}
		return true, nil
	}))

	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 40; i++ {
				k := int64(r.Intn(128))
				var err error
				switch r.Intn(4) {
				case 0:
					_, err = db.Txn(ctx, "put", objectbase.Call{
						Object: "index", Method: "put", Args: []objectbase.Value{k, int64(c*1000 + i)}})
				case 1:
					_, err = db.Txn(ctx, "get", objectbase.Call{
						Object: "index", Method: "get", Args: []objectbase.Value{k}})
				case 2:
					_, err = db.Txn(ctx, "del", objectbase.Call{
						Object: "index", Method: "del", Args: []objectbase.Value{k}})
				default:
					k2 := int64(r.Intn(128))
					_, err = db.Txn(ctx, "rename", objectbase.Call{
						Object: "index", Method: "rename", Args: []objectbase.Value{k, k2}})
				}
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()

	if _, err := db.Verify(); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("committed: %d  retries: %d\n", st.Commits, st.Retries)
	fmt.Printf("certifier: %d validated, %d rejected\n", st.CertValidated, st.CertRejected)
	fmt.Printf("dictionary size after run: %v\n", mustLen(db))
	fmt.Println("serialisable; Theorem 5 intra/inter decomposition holds")
}

func mustLen(db *objectbase.DB) objectbase.Value {
	v, err := db.Exec(context.Background(), "len", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		return ctx.Do("index", "Len")
	})
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
