// Queueing: the paper's Section 5.1 Enqueue/Dequeue example, live. The
// same producer/consumer workload runs twice under nested 2PL — first with
// operation-granularity locks (every Enqueue blocks every Dequeue), then
// with step-granularity locks (an Enqueue blocks only the Dequeue that
// would return its item). The lock-wait counters show the concurrency the
// return-value refinement buys; both histories are verified serialisable.
package main

import (
	"fmt"
	"log"
	"time"

	"objectbase/internal/cc"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/lock"
	"objectbase/internal/workload"
)

func run(g lock.Granularity) {
	sched := cc.NewN2PL(g, 10*time.Second)
	en := cc.NewEngine(sched, engine.Options{})
	spec := workload.ProducerConsumer(256, 20000) // a healthy backlog: heads and tails never meet
	spec.Setup(en)

	start := time.Now()
	if err := workload.Drive(en, spec, 2, 400, 7); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	h := en.History()
	if err := h.CheckLegal(); err != nil {
		log.Fatalf("%s: history not legal: %v", sched.Name(), err)
	}
	if v := graph.Check(h); !v.Serialisable {
		log.Fatalf("%s: not serialisable: %v", sched.Name(), v)
	}
	st := sched.Manager().Stats()
	fmt.Printf("%-10s  %4d txns in %7s  (%6.0f txn/s)  lock-waits=%-4d deadlock-aborts=%d\n",
		sched.Name(), en.Commits(), elapsed.Round(time.Millisecond),
		float64(en.Commits())/elapsed.Seconds(), st.Waits.Load(), st.Deadlocks.Load())
}

func main() {
	fmt.Println("producer/consumer over one queue object: 1 producer + 1 consumer, 400 txns each")
	fmt.Println("(the paper: \"an Enqueue conflicts with a Dequeue only if the latter")
	fmt.Println(" returns the item placed into the queue by the former\")")
	fmt.Println()
	run(lock.OpGranularity)
	run(lock.StepGranularity)
}
