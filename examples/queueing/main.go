// Queueing: the paper's Section 5.1 Enqueue/Dequeue example, live. The
// same producer/consumer workload runs twice under nested 2PL — first with
// operation-granularity locks (every Enqueue blocks every Dequeue), then
// with step-granularity locks (an Enqueue blocks only the Dequeue that
// would return its item). The lock-wait counters show the concurrency the
// return-value refinement buys; both histories are verified serialisable.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"objectbase"
)

const (
	backlog = 256 // preloaded items: heads and tails never meet
	spin    = 20000
	txns    = 400 // per role (one producer, one consumer)
)

// work simulates per-method computation after the queue step — under
// two-phase locking the lock stays held until the transaction commits, so
// longer methods mean longer blocking exactly when the lock was
// needlessly conservative.
func work(x int64) int64 {
	acc := x
	for s := 0; s < spin; s++ {
		acc = acc*1103515245 + 12345
	}
	return acc
}

func run(sched string) {
	db, err := objectbase.Open(objectbase.WithScheduler(sched))
	if err != nil {
		log.Fatal(err)
	}
	items := make([]objectbase.Value, backlog)
	for i := range items {
		items[i] = int64(-1 - i)
	}
	must(db.RegisterObject("Q", objectbase.Queue(), objectbase.State{"items": items}))
	must(db.RegisterMethod("Q", "produce", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		v, err := ctx.Do("Q", "Enqueue", ctx.Arg(0))
		_ = work(1)
		return v, err
	}))
	must(db.RegisterMethod("Q", "consume", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		v, err := ctx.Do("Q", "Dequeue")
		_ = work(2)
		return v, err
	}))

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < txns; i++ {
			if _, err := db.Txn(ctx, "produce", objectbase.Call{
				Object: "Q", Method: "produce", Args: []objectbase.Value{int64(i)}}); err != nil {
				log.Fatal(err)
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < txns; i++ {
			if _, err := db.Txn(ctx, "consume", objectbase.Call{
				Object: "Q", Method: "consume"}); err != nil {
				log.Fatal(err)
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)

	if _, err := db.Verify(); err != nil {
		log.Fatalf("%s: %v", db.Scheduler(), err)
	}
	st := db.Stats()
	fmt.Printf("%-10s  %4d txns in %7s  (%6.0f txn/s)  lock-waits=%-4d deadlock-aborts=%d\n",
		db.Scheduler(), st.Commits, elapsed.Round(time.Millisecond),
		float64(st.Commits)/elapsed.Seconds(), st.LockWaits, st.Deadlocks)
}

func main() {
	fmt.Println("producer/consumer over one queue object: 1 producer + 1 consumer, 400 txns each")
	fmt.Println("(the paper: \"an Enqueue conflicts with a Dequeue only if the latter")
	fmt.Println(" returns the item placed into the queue by the former\")")
	fmt.Println()
	run("n2pl-op")
	run("n2pl-step")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
