// Quickstart: open an object base through the public API, run concurrent
// nested transactions under nested two-phase locking, and verify the
// recorded history with the paper's own machinery (legality,
// serialisation-graph acyclicity plus serial replay, and the Theorem 5
// decomposition).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"objectbase"
)

func main() {
	// 1. Open a DB under a named scheduler: Moss's nested 2PL at
	//    operation granularity (Section 5.1 of the paper). Schedulers()
	//    lists every registered alternative.
	db, err := objectbase.Open(objectbase.WithScheduler("n2pl-op"))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Objects: a commutative counter and a register. Each object is a
	//    schema (operations + conflict relation) plus an initial state.
	must(db.RegisterObject("visits", objectbase.Counter(), nil))
	must(db.RegisterObject("config", objectbase.Register(), objectbase.State{"greeting": "hello"}))

	// 3. Methods: programmes that issue local steps (Do) and messages
	//    (Call). Methods of objects are what transactions invoke.
	must(db.RegisterMethod("visits", "visit", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		if _, err := ctx.Do("visits", "Add", int64(1)); err != nil {
			return nil, err
		}
		return ctx.Do("config", "Read", "greeting")
	}))

	// 4. Transactions: run them concurrently with Exec — counter Adds
	//    commute, so N2PL admits full parallelism here.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Exec(context.Background(), "T", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
				return ctx.Call("visits", "visit")
			}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()

	// 5. The DB recorded the full history h = (E, <, B, S); verify it.
	verdict, err := db.Verify()
	if err != nil {
		log.Fatal(err)
	}
	h, err := db.History()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler:              %s\n", db.Scheduler())
	fmt.Printf("committed transactions: %d\n", db.Stats().Commits)
	fmt.Printf("final visit count:      %v\n", h.FinalStates["visits"]["n"])
	fmt.Printf("oracle verdict:         %v\n", verdict)
	fmt.Println("history verified: legal, serialisable, theorem 5 decomposition ok")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
