// Quickstart: build an object base, run concurrent nested transactions
// under nested two-phase locking, and verify the recorded history with the
// paper's own machinery (serialisation-graph acyclicity plus serial
// replay).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"objectbase/internal/cc"
	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/lock"
	"objectbase/internal/objects"
)

func main() {
	// 1. A scheduler: Moss's nested 2PL at operation granularity
	//    (Section 5.1 of the paper), and an engine around it.
	sched := cc.NewN2PL(lock.OpGranularity, 10*time.Second)
	en := cc.NewEngine(sched, engine.Options{})

	// 2. Objects: a commutative counter and a register. Each object is a
	//    schema (operations + conflict relation) plus an initial state.
	en.AddObject("visits", objects.Counter(), nil)
	en.AddObject("config", objects.Register(), core.State{"greeting": "hello"})

	// 3. Methods: programmes that issue local steps (Do) and messages
	//    (Call). Methods of objects are what transactions invoke.
	en.Register("visits", "visit", func(ctx *engine.Ctx) (core.Value, error) {
		if _, err := ctx.Do("visits", "Add", int64(1)); err != nil {
			return nil, err
		}
		return ctx.Do("config", "Read", "greeting")
	})

	// 4. Transactions: methods of the environment. Run them concurrently —
	//    counter Adds commute, so N2PL admits full parallelism here.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := en.Run("T", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Call("visits", "visit")
			}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()

	// 5. The engine recorded the full history h = (E, <, B, S); check it.
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		log.Fatalf("history not legal: %v", err)
	}
	verdict := graph.Check(h)
	fmt.Printf("committed transactions: %d\n", en.Commits())
	fmt.Printf("final visit count:      %v\n", h.FinalStates["visits"]["n"])
	fmt.Printf("oracle verdict:         %v\n", verdict)
	if err := graph.CheckTheorem5(h); err != nil {
		log.Fatalf("theorem 5: %v", err)
	}
	fmt.Println("theorem 5 decomposition: ok")
}
