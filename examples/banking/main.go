// Banking: nested transactions with failure handling — the paper's
// Section 3 scenario where a method M invokes M', M' aborts, and M is "not
// also doomed to failure: it may still try an alternative way of
// accomplishing the same task".
//
// A payment first tries the customer's checking account; if that
// sub-transaction aborts (insufficient funds), the parent catches the
// abort and pays from savings instead. Concurrent clients hammer the same
// accounts under nested timestamp ordering; the recorded history is then
// verified serialisable and the money counted.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"objectbase"
)

func setup(db *objectbase.DB) {
	for _, acct := range []string{"checking", "savings", "merchant"} {
		acct := acct
		must(db.RegisterObject(acct, objectbase.Account(), objectbase.State{"balance": int64(500)}))
		must(db.RegisterMethod(acct, "pay", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
			amount := ctx.Arg(0).(int64)
			ok, err := ctx.Do(acct, "Withdraw", amount)
			if err != nil {
				return nil, err
			}
			if ok != true {
				// Abort this method execution: its effects (none) vanish
				// and the parent is told.
				return nil, ctx.Abort("insufficient funds")
			}
			return nil, nil
		}))
		must(db.RegisterMethod(acct, "receive", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
			return ctx.Do(acct, "Deposit", ctx.Arg(0))
		}))
	}
}

// payment tries checking, falls back to savings.
func payment(amount int64) objectbase.MethodFunc {
	return func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		source := "checking"
		if _, err := ctx.Call("checking", "pay", amount); err != nil {
			// The sub-transaction aborted; this transaction survives and
			// tries the alternative.
			if _, err2 := ctx.Call("savings", "pay", amount); err2 != nil {
				return nil, err2 // both failed: give up (the whole payment aborts)
			}
			source = "savings"
		}
		if _, err := ctx.Call("merchant", "receive", amount); err != nil {
			return nil, err
		}
		return source, nil
	}
}

func main() {
	db, err := objectbase.Open(objectbase.WithScheduler("nto-step")) // exact nested timestamp ordering
	if err != nil {
		log.Fatal(err)
	}
	setup(db)

	var mu sync.Mutex
	paid := map[string]int{}
	failed := 0

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				src, err := db.Exec(context.Background(), "payment", payment(int64(40)))
				mu.Lock()
				if err != nil {
					failed++
				} else {
					paid[src.(string)]++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if _, err := db.Verify(); err != nil {
		log.Fatal(err)
	}
	h, err := db.History()
	if err != nil {
		log.Fatal(err)
	}
	checking := h.FinalStates["checking"]["balance"].(int64)
	savings := h.FinalStates["savings"]["balance"].(int64)
	merchant := h.FinalStates["merchant"]["balance"].(int64)
	fmt.Printf("payments from checking: %d\n", paid["checking"])
	fmt.Printf("payments from savings:  %d (fallback after child abort)\n", paid["savings"])
	fmt.Printf("payments failed:        %d (both accounts dry)\n", failed)
	fmt.Printf("balances: checking=%d savings=%d merchant=%d (sum %d)\n",
		checking, savings, merchant, checking+savings+merchant)
	if checking+savings+merchant != 1500 {
		log.Fatalf("money not conserved")
	}
	fmt.Println("history verified serialisable; money conserved")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
