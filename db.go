package objectbase

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"objectbase/internal/cc"
	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/lock"
	"objectbase/internal/obs"
	"objectbase/internal/shard"
)

// The façade re-exports the model's vocabulary so client code needs no
// internal imports: values and states are the object-base data, a Schema
// is an object type (operations plus conflict relation), a MethodFunc is a
// method body programming against Ctx, and History/Verdict are what the
// oracle consumes and produces.
type (
	// Value is any value stored in or returned from an object base.
	Value = core.Value
	// State is one object's state: a bag of named variables.
	State = core.State
	// Schema is an object type: its operations and their conflict
	// relation. Build one with core's constructors via the bundled object
	// library (Counter, Register, Account, Queue, Set, Dictionary) or
	// supply your own.
	Schema = core.Schema
	// Ctx is the handle a method body receives: Do issues local steps,
	// Call sends messages (invoking child method executions), Parallel
	// runs bodies concurrently within the execution, Abort aborts
	// voluntarily.
	Ctx = engine.Ctx
	// MethodFunc is the body of a method or transaction.
	MethodFunc = engine.MethodFunc
	// History is the full recorded history h = (E, <, B, S) of a run.
	History = core.History
	// Verdict is the oracle's judgement of a history.
	Verdict = graph.Verdict
	// Metrics is a snapshot of the DB's metrics registry: named counters
	// and gauges, plus per-phase latency statistics when tracing is on.
	// See DB.Metrics.
	Metrics = obs.Metrics
	// HistStat is the per-phase latency summary inside Metrics.Phases.
	HistStat = obs.HistStat
	// SpanRecord is one flight-recorder phase span or instant event.
	// See DB.TraceSnapshot.
	SpanRecord = obs.SpanRecord
)

// DefaultScheduler is the scheduler Open uses when none is requested:
// Moss's nested two-phase locking at operation granularity — the paper's
// workhorse, deadlock-detected and strict.
const DefaultScheduler = "n2pl-op"

// Schedulers returns the names of all registered concurrency-control
// schedulers, sorted. Any of them can be passed to WithScheduler.
func Schedulers() []string { return cc.SchedulerNames() }

// HistoryMode selects how much of the history h = (E, <, B, S) a DB
// retains — see WithHistory.
type HistoryMode string

const (
	// HistoryFull records the complete history: History, Check and
	// Verify work, at the cost of one recorder event per execution,
	// step, and message, retained for the life of the DB (cap it with
	// WithHistoryLimit for long runs).
	HistoryFull HistoryMode = "full"
	// HistoryOff keeps only atomic event counters: bounded memory and a
	// near-zero-cost hot path, but History, Check and Verify return
	// ErrHistoryDisabled. The load harness defaults to this mode for
	// unverified runs.
	HistoryOff HistoryMode = "off"
)

// ErrHistoryDisabled is wrapped by History/Check/Verify errors on a DB
// opened with WithHistory(HistoryOff): there is no history to analyse.
var ErrHistoryDisabled = engine.ErrHistoryDisabled

// ErrHistoryLimit is wrapped by transaction and history-accessor errors
// once a WithHistoryLimit cap is exceeded: recording fails fast instead
// of growing without bound, and the (incomplete) history is withheld.
var ErrHistoryLimit = engine.ErrHistoryLimit

type config struct {
	scheduler    string
	maxRetries   int
	retryBackoff time.Duration
	lockTimeout  time.Duration
	recording    engine.RecordingMode
	historyLimit int
	versioning   bool
	shards       int
	tracing      bool
	debugAddr    string
	epochWindow  time.Duration
	epochBatch   int
}

// Option configures Open.
type Option func(*config) error

// WithScheduler selects the concurrency-control scheduler by registered
// name (see Schedulers). Open fails on an unknown name.
func WithScheduler(name string) Option {
	return func(c *config) error {
		if name == "" {
			return errors.New("objectbase: WithScheduler: empty name")
		}
		c.scheduler = name
		return nil
	}
}

// WithMaxRetries bounds automatic retries of transactions aborted for
// synchronisation reasons (deadlock victim, timestamp rejection, failed
// certification, cascade). n <= 0 disables retries; the default is 100.
func WithMaxRetries(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			c.maxRetries = engine.NoRetry
		} else {
			c.maxRetries = n
		}
		return nil
	}
}

// WithRetryBackoff sets the base backoff between retries (jittered,
// doubling up to 64x). The default is 100µs.
func WithRetryBackoff(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("objectbase: WithRetryBackoff: non-positive duration %v", d)
		}
		c.retryBackoff = d
		return nil
	}
}

// WithLockTimeout bounds lock waits for lock-based schedulers (the n2pl-*
// pair and the gemstone baseline); the nested-aware deadlock detector
// usually resolves cycles long before it expires. The default is 10s.
// Schedulers that do not lock ignore it.
func WithLockTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("objectbase: WithLockTimeout: non-positive duration %v", d)
		}
		c.lockTimeout = d
		return nil
	}
}

// WithHistory selects the history recording mode. HistoryFull (the
// default) feeds every execution event through the full recorder so the
// oracle can verify the run; HistoryOff swaps in a stats-only observer —
// atomic counters, bounded memory — and History/Check/Verify return
// ErrHistoryDisabled. Every scheduler runs correctly under either mode
// (none of them reads the history; the modular certifier keeps its own
// access sets), but verification is only possible under HistoryFull.
func WithHistory(mode HistoryMode) Option {
	return func(c *config) error {
		switch mode {
		case HistoryFull:
			c.recording = engine.RecordFull
		case HistoryOff:
			c.recording = engine.RecordStats
		default:
			return fmt.Errorf("objectbase: WithHistory: unknown mode %q (want %q or %q)", mode, HistoryFull, HistoryOff)
		}
		return nil
	}
}

// WithReadOnly enables the snapshot read-only fast path: every committing
// transaction publishes the committed state of the objects it mutated
// into a small per-object ring of versions (MVCC), and DB.View serves
// read-only transactions from those versions — no locks, no scheduler,
// no waiting behind writers. The cost is one state clone per mutated
// object per commit, so the path is opt-in; View on a DB opened without
// WithReadOnly fails with ErrViewDisabled.
func WithReadOnly() Option {
	return func(c *config) error {
		c.versioning = true
		return nil
	}
}

// WithShards partitions the object space across n independent engine
// instances, each with its own scheduler, lock manager, and version
// rings. Objects are placed by a deterministic directory (a hash of the
// object name); transactions that stay within one shard run at native
// engine speed, and transactions spanning shards commit atomically under
// a shard-ordered two-phase protocol that keeps the whole space
// serialisable and deadlock-free across engines (see the README's
// Sharding section). History, Check and Verify stitch the per-shard
// histories into one, so the oracle certifies a sharded run exactly like
// a single-engine one. n <= 1 means no sharding (the default).
//
// Declaring a transaction's object set up front (Txn does it
// automatically; ExecTouching takes it explicitly) lets a cross-shard
// transaction acquire its shards in directory order from the start
// instead of discovering them optimistically.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("objectbase: WithShards: non-positive shard count %d", n)
		}
		c.shards = n
		return nil
	}
}

// WithEpochs enables epoch-based group commit for declared-set
// transactions (Txn, ExecTouching): instead of each transaction paying
// its own shard-gate round, publication sequence, and stats write, a
// per-shard accumulator collects a batch — bounded by the time window
// and the maxBatch size cap — and a flusher runs the whole batch under
// one gate acquisition per epoch, publishing every member's committed
// writes at a single sequence number per engine. Individual aborts
// still roll back only their own steps, the history records each member
// as an ordinary transaction (Verify certifies epoch runs unchanged),
// and undeclared transactions and Views keep their usual paths.
//
// Batching trades latency for throughput: each member waits up to
// window for its epoch to fill, so it wins when small declared-set
// transactions arrive faster than one per window, and loses under
// sparse traffic (see the README's "Epoch execution" section for
// tuning). A maxBatch of 1 disables batching but still routes declared
// transactions through the sharded serial fast path — the honest
// baseline to measure epoch gains against. WithEpochs forces the
// sharded runtime even at one shard.
func WithEpochs(window time.Duration, maxBatch int) Option {
	return func(c *config) error {
		if window < 0 {
			return fmt.Errorf("objectbase: WithEpochs: negative window %v", window)
		}
		if maxBatch < 1 {
			return fmt.Errorf("objectbase: WithEpochs: non-positive batch cap %d", maxBatch)
		}
		c.epochWindow = window
		c.epochBatch = maxBatch
		return nil
	}
}

// WithHistoryLimit caps a HistoryFull DB at n recorded events (method
// executions + local steps + messages). History memory otherwise grows
// for the life of the DB — every event is retained for the oracle — so
// a long-running process that insists on full recording should bound
// it. When the cap would be exceeded, the recording transaction aborts
// with an error wrapping ErrHistoryLimit (fail fast, not OOM), and
// History/Check/Verify report the same: a truncated history would
// produce meaningless verdicts. Ignored under HistoryOff.
func WithHistoryLimit(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("objectbase: WithHistoryLimit: non-positive limit %d", n)
		}
		c.historyLimit = n
		return nil
	}
}

// WithTracing enables the transaction flight recorder: every top-level
// transaction's attempt is decomposed into phase spans (admit,
// schedule-wait, lock-wait, execute, commit-barrier, publish,
// retry-backoff, ...) recorded into lock-free per-client ring buffers
// and per-phase latency histograms. Drain spans with DB.TraceSnapshot
// (newest ~256k spans; older ones are overwritten, the histograms keep
// counting) and read the aggregates with DB.Metrics. Disabled, the
// instrumentation costs one nil check per phase; the default is off.
//
// Setting the environment variable OBJECTBASE_TRACE=1 enables tracing
// for every Open in the process — the hook CI uses to run the test
// suite with the recorder on.
func WithTracing() Option {
	return func(c *config) error {
		c.tracing = true
		return nil
	}
}

// WithDebugServer starts a live introspection HTTP server on addr
// (":0" picks a free port — read it back with DB.DebugAddr) serving
//
//	/metrics   — the metrics registry in Prometheus text format
//	/waitsfor  — the live waits-for graph as a Graphviz DOT digraph,
//	             merged across the shards' lock managers (a deadlock
//	             ring spanning shards shows only in the merged graph)
//	/trace     — the flight-recorder contents as Chrome trace_event
//	             JSON (open in chrome://tracing or Perfetto)
//	/debug/pprof/ — the standard runtime profiles
//
// WithDebugServer implies WithTracing. Shut the server down with
// DB.Close.
func WithDebugServer(addr string) Option {
	return func(c *config) error {
		if addr == "" {
			return errors.New("objectbase: WithDebugServer: empty address")
		}
		c.tracing = true
		c.debugAddr = addr
		return nil
	}
}

// DB is an open object base: a set of objects (schema + state + methods)
// executing nested transactions under one concurrency-control scheduler,
// with the full history recorded for verification.
//
// A DB is safe for concurrent use. Populate it first (RegisterObject,
// RegisterMethod), then run transactions (Exec, Txn) from any number of
// goroutines; History and Verify want a quiescent DB (no transaction in
// flight).
type DB struct {
	scheduler string
	eng       *engine.Engine   // engines[0]
	engines   []*engine.Engine // one per shard; length 1 unsharded
	space     *shard.Space     // nil unless WithShards(n > 1)

	tr  *obs.Tracer   // nil unless WithTracing (or OBJECTBASE_TRACE=1)
	reg *obs.Registry // always built; phase histograms only when tracing
	dbg *obs.Server   // nil unless WithDebugServer

	// regMu serialises registration: the duplicate-object check and the
	// engine insertion must be atomic against concurrent registrations.
	regMu sync.Mutex
	// schemas holds the distinct schema instances registered so far, in
	// first-registration order (see Schemas).
	schemas []*Schema
}

// Open creates an object base. With no options it runs the default
// scheduler (DefaultScheduler) with default retry policy.
func Open(opts ...Option) (*DB, error) {
	cfg := config{scheduler: DefaultScheduler}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if !cfg.tracing && os.Getenv("OBJECTBASE_TRACE") == "1" {
		cfg.tracing = true
	}
	var tr *obs.Tracer
	if cfg.tracing {
		tr = obs.NewTracer()
	}
	engOpts := engine.Options{
		MaxRetries:   cfg.maxRetries,
		RetryBackoff: cfg.retryBackoff,
		Recording:    cfg.recording,
		HistoryLimit: cfg.historyLimit,
		Versioning:   cfg.versioning,
		Tracer:       tr,
	}
	var db *DB
	if cfg.shards > 1 || cfg.epochBatch > 0 {
		// Epoch mode runs on the sharded runtime (gates, directory,
		// accumulators) even at one shard.
		shards := cfg.shards
		if shards < 1 {
			shards = 1
		}
		engines, err := cc.NewShardedEngines(cfg.scheduler, shards, cc.Config{LockTimeout: cfg.lockTimeout}, engOpts)
		if err != nil {
			return nil, fmt.Errorf("objectbase: %w", err)
		}
		db = &DB{
			scheduler: cfg.scheduler,
			eng:       engines[0],
			engines:   engines,
			space:     shard.NewSpace(engines),
		}
		if cfg.epochBatch > 0 {
			db.space.EnableEpochs(cfg.epochWindow, cfg.epochBatch)
		}
	} else {
		sched, err := cc.NewByName(cfg.scheduler, cc.Config{LockTimeout: cfg.lockTimeout})
		if err != nil {
			return nil, fmt.Errorf("objectbase: %w", err)
		}
		eng := cc.NewEngine(sched, engOpts)
		db = &DB{scheduler: cfg.scheduler, eng: eng, engines: []*engine.Engine{eng}}
	}
	db.tr = tr
	if tr != nil {
		if db.space != nil {
			db.space.SetTracer(tr)
		}
		// Lock waits are recorded inside the managers; wire the recorder
		// into every distinct one (per-shard managers each, a space-shared
		// scheduler's exactly once).
		for _, sched := range db.distinctSchedulers() {
			if lm, ok := sched.(interface{ Manager() *lock.Manager }); ok {
				lm.Manager().SetTracer(tr)
			}
		}
	}
	db.buildRegistry()
	if cfg.debugAddr != "" {
		srv, err := obs.StartServer(obs.ServerOptions{
			Addr:     cfg.debugAddr,
			Registry: db.reg,
			WaitsFor: db.waitsForDOT,
			Trace: func() ([]obs.SpanRecord, time.Time) {
				return db.tr.Snapshot(), db.tr.Epoch()
			},
		})
		if err != nil {
			return nil, fmt.Errorf("objectbase: debug server: %w", err)
		}
		db.dbg = srv
	}
	return db, nil
}

// Scheduler returns the registered name of the DB's scheduler.
func (db *DB) Scheduler() string { return db.scheduler }

// Shards returns the number of shards the object space is partitioned
// into (1 when unsharded).
func (db *DB) Shards() int { return len(db.engines) }

// object looks an object up in its home engine.
func (db *DB) object(name string) *engine.Object {
	if db.space != nil {
		return db.space.Object(name)
	}
	return db.eng.Object(name)
}

// HistoryRecording returns the DB's history mode ("full" or "off").
func (db *DB) HistoryRecording() HistoryMode {
	if db.eng.Recording() == engine.RecordStats {
		return HistoryOff
	}
	return HistoryFull
}

// RegisterObject creates an object: an instance of the schema with the
// given initial state (the schema's NewState when nil). Object names are
// unique per DB.
func (db *DB) RegisterObject(name string, schema *Schema, initial State) error {
	if name == "" {
		return errors.New("objectbase: RegisterObject: empty object name")
	}
	if schema == nil {
		return fmt.Errorf("objectbase: RegisterObject %q: nil schema", name)
	}
	db.regMu.Lock()
	defer db.regMu.Unlock()
	if db.object(name) != nil {
		return fmt.Errorf("objectbase: object %q already registered", name)
	}
	db.registrar().AddObject(name, schema, initial)
	known := false
	for _, s := range db.schemas {
		if s == schema {
			known = true
			break
		}
	}
	if !known {
		db.schemas = append(db.schemas, schema)
	}
	return nil
}

// Schemas returns the distinct schema instances registered on the DB, in
// first-registration order. Verification harnesses sweep it to run
// per-schema witnesses (e.g. SampleCommutativity) over exactly the object
// types a workload exercised.
func (db *DB) Schemas() []*Schema {
	db.regMu.Lock()
	defer db.regMu.Unlock()
	return append([]*Schema(nil), db.schemas...)
}

// RegisterMethod installs a method on a registered object. Methods are
// what transactions invoke; their bodies issue local steps on the object
// (Ctx.Do) and messages to other objects (Ctx.Call).
func (db *DB) RegisterMethod(object, method string, fn MethodFunc) error {
	db.regMu.Lock()
	defer db.regMu.Unlock()
	if db.object(object) == nil {
		return fmt.Errorf("objectbase: RegisterMethod %s.%s: unknown object %q", object, method, object)
	}
	if method == "" {
		return fmt.Errorf("objectbase: RegisterMethod on %q: empty method name", object)
	}
	if fn == nil {
		return fmt.Errorf("objectbase: RegisterMethod %s.%s: nil body", object, method)
	}
	db.registrar().Register(object, method, fn)
	return nil
}

// Exec runs fn as one top-level transaction named name (the name labels
// the history; it need not be unique). Synchronisation aborts are retried
// automatically with fresh transaction identities, up to the configured
// maximum, with jittered exponential backoff.
//
// The context is honoured throughout: once ctx is done the transaction
// aborts (its effects undone) at the next step, message, or commit
// boundary, retry backoff sleeps are interrupted, and the returned error
// unwraps to ctx.Err().
func (db *DB) Exec(ctx context.Context, name string, fn MethodFunc, args ...Value) (Value, error) {
	if db.space != nil {
		return db.space.Exec(ctx, name, fn, nil, args...)
	}
	return db.eng.RunCtx(ctx, name, fn, args...)
}

// ExecTouching is Exec with the transaction's object access set declared
// up front. On an unsharded DB the declaration is ignored; on a sharded
// one it lets a transaction whose objects span shards acquire its shards
// in directory order from the start, instead of paying one optimistic
// discovery abort to learn the set. The declaration is a hint: touching
// an undeclared object is still correct (the protocol falls back to
// discovery), it just costs the restart the hint would have avoided.
func (db *DB) ExecTouching(ctx context.Context, name string, touches []string, fn MethodFunc, args ...Value) (Value, error) {
	if db.space != nil {
		return db.space.Exec(ctx, name, fn, touches, args...)
	}
	return db.eng.RunCtx(ctx, name, fn, args...)
}

// ErrViewDisabled is wrapped by DB.View errors on a DB opened without
// WithReadOnly: no committed versions are published, so there is no
// consistent snapshot to read.
var ErrViewDisabled = engine.ErrViewDisabled

// ErrReadOnlyWrite is wrapped by the abort that fails a View transaction
// whose body issued a mutating step. The classification is the schema's:
// operations not declared ReadOnly mutate the object.
var ErrReadOnlyWrite = engine.ErrReadOnlyWrite

// View runs fn as a read-only transaction against a consistent committed
// snapshot (requires WithReadOnly). The body uses the same Ctx API as
// Exec — Call, Do, Parallel — but every step is served from the MVCC
// version ring of its object at one global snapshot: View transactions
// never enter the lock manager or the scheduler, never block writers, and
// observe no torn state across objects. A mutating step aborts the
// transaction with an error wrapping ErrReadOnlyWrite.
//
// When a snapshot momentarily cannot be resolved (overlapping writers hold
// uncommitted effects in every recent version of some object), View
// refreshes its snapshot and retries, then falls back to the ordinary
// locked path with read-only enforcement — the semantics are unchanged,
// only the cost. Stats().ViewFallbacks counts how often that happened.
// View transactions appear in the history like any other transaction, so
// Verify covers them.
func (db *DB) View(ctx context.Context, name string, fn MethodFunc, args ...Value) (Value, error) {
	if db.space != nil {
		// Publication sequences are per shard: the view pins the shard of
		// its first touched object; views spanning shards fall back to
		// the locked read-only path.
		return db.space.View(ctx, name, fn, args...)
	}
	return db.eng.RunView(ctx, name, fn, args...)
}

// Call names one method invocation for Txn.
type Call struct {
	Object string
	Method string
	Args   []Value
}

// Txn runs the calls sequentially as one top-level transaction and
// returns their results. It is the declarative convenience over Exec for
// transactions that are a straight-line sequence of method invocations;
// if any call's method execution aborts, the whole transaction aborts.
func (db *DB) Txn(ctx context.Context, name string, calls ...Call) ([]Value, error) {
	if len(calls) == 0 {
		return nil, errors.New("objectbase: Txn: no calls")
	}
	// The declarative form knows its object set: declare it so a sharded
	// DB can order its shard acquisition up front.
	touches := make([]string, 0, len(calls))
	for _, call := range calls {
		touches = append(touches, call.Object)
	}
	ret, err := db.ExecTouching(ctx, name, touches, func(c *Ctx) (Value, error) {
		results := make([]Value, len(calls))
		for i, call := range calls {
			v, err := c.Call(call.Object, call.Method, call.Args...)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	})
	if err != nil {
		return nil, err
	}
	return ret.([]Value), nil
}

// Retry returns an error a method body can use to abort the enclosing
// transaction and have the engine retry it with a fresh identity (subject
// to the configured maximum) — for application-level conflict detection
// the scheduler cannot see.
func Retry(reason string) error {
	return &engine.AbortError{Reason: "retry: " + reason, Retriable: true}
}

// Stats is a snapshot of a DB's execution counters. The scheduler-specific
// fields are zero for schedulers they do not apply to.
type Stats struct {
	// Commits, Aborts, Retries count top-level transaction outcomes:
	// committed transactions, aborted attempts, and retried attempts.
	Commits int64
	Aborts  int64
	Retries int64
	// LockWaits and Deadlocks count blocking lock acquisitions and
	// detected deadlocks (lock-based schedulers: n2pl-*, gemstone).
	LockWaits int64
	Deadlocks int64
	// CertValidated and CertRejected count certification outcomes
	// (certifying schedulers: modular).
	CertValidated int64
	CertRejected  int64
	// ViewCommits counts committed snapshot (View) transactions — a
	// subset of Commits; ViewFallbacks counts View transactions that
	// could not resolve a snapshot and ran on the locked path instead.
	ViewCommits   int64
	ViewFallbacks int64
	// SerialRestarts and TwoPCRestarts count attempts of sharded
	// transactions restarted to grow their shard set: declared-set
	// serial transactions that touched an undeclared shard, and
	// cross-shard two-phase commits that discovered a member late
	// (sharded DBs only). Restarts are routing, not workload outcomes:
	// they are counted here, not in Aborts.
	SerialRestarts int64
	TwoPCRestarts  int64
	// EpochCommits counts transactions committed through the epoch
	// group-commit path (WithEpochs) — a subset of Commits; EpochFlushes
	// counts the epoch batches flushed, so EpochCommits/EpochFlushes is
	// the realised mean batch size.
	EpochCommits int64
	EpochFlushes int64
}

// Sub returns the counter deltas s - prev: the activity between two
// snapshots. Drivers use it to carve a measurement window (excluding
// setup, warmup, or earlier runs) out of the DB's cumulative counters.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Commits:        s.Commits - prev.Commits,
		Aborts:         s.Aborts - prev.Aborts,
		Retries:        s.Retries - prev.Retries,
		LockWaits:      s.LockWaits - prev.LockWaits,
		Deadlocks:      s.Deadlocks - prev.Deadlocks,
		CertValidated:  s.CertValidated - prev.CertValidated,
		CertRejected:   s.CertRejected - prev.CertRejected,
		ViewCommits:    s.ViewCommits - prev.ViewCommits,
		ViewFallbacks:  s.ViewFallbacks - prev.ViewFallbacks,
		SerialRestarts: s.SerialRestarts - prev.SerialRestarts,
		TwoPCRestarts:  s.TwoPCRestarts - prev.TwoPCRestarts,
		EpochCommits:   s.EpochCommits - prev.EpochCommits,
		EpochFlushes:   s.EpochFlushes - prev.EpochFlushes,
	}
}

// Stats returns a snapshot of the DB's execution counters, summed across
// shards on a sharded DB (every transaction is charged to exactly one
// shard, so the sums count each once). It is safe to call while
// transactions are running; the counters are read atomically (field by
// field, so a mid-run snapshot may straddle a transaction's commit).
func (db *DB) Stats() Stats {
	var st Stats
	for _, en := range db.engines {
		st.Commits += en.Commits()
		st.Aborts += en.Aborts()
		st.Retries += en.Retries()
		st.ViewCommits += en.ViewCommits()
		st.ViewFallbacks += en.ViewFallbacks()
		// Restart counters live on the base engine only, so the sum
		// counts each restart once.
		st.SerialRestarts += en.SerialRestarts()
		st.TwoPCRestarts += en.TwoPCRestarts()
		st.EpochCommits += en.EpochCommits()
		// Flushes are charged to the base engine only.
		st.EpochFlushes += en.EpochFlushes()
	}
	// Scheduler-side counters come from the distinct scheduler instances:
	// per-shard schedulers contribute each, a space-shared one (the
	// certifier) exactly once.
	for _, sched := range db.distinctSchedulers() {
		if lm, ok := sched.(interface{ Manager() *lock.Manager }); ok {
			ls := lm.Manager().Stats()
			st.LockWaits += ls.Waits.Load()
			st.Deadlocks += ls.Deadlocks.Load()
		}
		if m, ok := sched.(*cc.Modular); ok {
			cs := m.Stats()
			st.CertValidated += cs.Validated
			st.CertRejected += cs.Rejected
		}
	}
	return st
}

// distinctSchedulers returns the DB's scheduler instances, deduplicated
// (a space-shared scheduler serves every shard).
func (db *DB) distinctSchedulers() []engine.Scheduler {
	out := make([]engine.Scheduler, 0, len(db.engines))
	for _, en := range db.engines {
		sched := en.Scheduler()
		dup := false
		for _, have := range out {
			if have == sched {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, sched)
		}
	}
	return out
}

// History returns a snapshot of the run's recorded history h = (E, <, B,
// S). It is safe to call while transactions are running (the snapshot
// shares no mutable records with the live run), but a mid-run snapshot
// reflects in-flight transactions, so feed the oracle (Check, Verify)
// only from a quiescent DB. The error wraps ErrHistoryDisabled on a
// HistoryOff DB and ErrHistoryLimit once a WithHistoryLimit cap was
// exceeded.
func (db *DB) History() (*History, error) {
	h, err := db.historyErr()
	if err != nil {
		return nil, fmt.Errorf("objectbase: %w", err)
	}
	return h, nil
}

// historyErr returns the run's history: the engine's recording, or the
// per-shard recordings stitched into one on a sharded DB.
func (db *DB) historyErr() (*History, error) {
	if db.space != nil {
		return db.space.History()
	}
	return db.eng.HistoryErr()
}

// Check runs the serialisability oracle on the recorded history and
// returns its verdict (serialisation-graph acyclicity plus serial
// replay). The DB must be quiescent and recording (HistoryFull); the
// error wraps ErrHistoryDisabled or ErrHistoryLimit otherwise.
func (db *DB) Check() (Verdict, error) {
	h, err := db.historyErr()
	if err != nil {
		return Verdict{}, fmt.Errorf("objectbase: %w", err)
	}
	return graph.Check(h), nil
}

// Verify's error wraps exactly one of these, so callers can distinguish
// the failure classes with errors.Is. ErrNotLegal is an engine-invariant
// violation: it must hold under any scheduler, including the empty one,
// so harnesses that tolerate anomalies from the "none" control must
// still treat it as fatal. ErrNotSerialisable and ErrTheorem5 are the
// synchronisation guarantees a scheduler can legitimately fail to
// provide.
var (
	ErrNotLegal        = errors.New("history not legal")
	ErrNotSerialisable = errors.New("history not serialisable")
	ErrTheorem5        = errors.New("theorem 5 decomposition violated")
)

// Verify checks the recorded history against the paper's full theory:
// legality (every step's return value matches a serial replay of what
// committed before it), serialisability (Theorem 2's oracle), and the
// Theorem 5 intra/inter-object decomposition. It returns the oracle's
// verdict alongside a nil error when all hold, so callers need not run
// Check (a second full serial replay) just to report the verdict; a
// non-nil error wraps ErrNotLegal, ErrNotSerialisable, or ErrTheorem5 —
// or ErrHistoryDisabled/ErrHistoryLimit when no complete history exists.
// The DB must be quiescent.
func (db *DB) Verify() (Verdict, error) {
	h, err := db.historyErr()
	if err != nil {
		return Verdict{}, fmt.Errorf("objectbase: %w", err)
	}
	if err := h.CheckLegal(); err != nil {
		return Verdict{}, fmt.Errorf("objectbase: %w: %w", ErrNotLegal, err)
	}
	v := graph.Check(h)
	if !v.Serialisable {
		return v, fmt.Errorf("objectbase: %w: %v", ErrNotSerialisable, v)
	}
	if err := graph.CheckTheorem5(h); err != nil {
		return v, fmt.Errorf("objectbase: %w: %w", ErrTheorem5, err)
	}
	return v, nil
}

// buildRegistry populates the DB's metrics registry: one func-backed
// counter per Stats field (the registry and Stats read the same engine
// counters, so the two surfaces cannot disagree), a shards gauge, and —
// when tracing — the per-phase latency histograms and the dropped-span
// gauge.
func (db *DB) buildRegistry() {
	reg := obs.NewRegistry()
	counter := func(name, help string, fn func(Stats) int64) {
		reg.Counter(name, help, func() int64 { return fn(db.Stats()) })
	}
	counter("commits", "Committed top-level transactions.", func(s Stats) int64 { return s.Commits })
	counter("aborts", "Aborted top-level transaction attempts.", func(s Stats) int64 { return s.Aborts })
	counter("retries", "Retried top-level transaction attempts.", func(s Stats) int64 { return s.Retries })
	counter("lock_waits", "Blocking lock acquisitions.", func(s Stats) int64 { return s.LockWaits })
	counter("deadlocks", "Detected deadlocks (denied or timed-out waits).", func(s Stats) int64 { return s.Deadlocks })
	counter("cert_validated", "Certification successes (certifying schedulers).", func(s Stats) int64 { return s.CertValidated })
	counter("cert_rejected", "Certification rejections (certifying schedulers).", func(s Stats) int64 { return s.CertRejected })
	counter("view_commits", "Committed snapshot (View) transactions.", func(s Stats) int64 { return s.ViewCommits })
	counter("view_fallbacks", "View transactions that fell back to the locked path.", func(s Stats) int64 { return s.ViewFallbacks })
	counter("serial_restarts", "Serial-path restarts growing a declared shard set.", func(s Stats) int64 { return s.SerialRestarts })
	counter("twopc_restarts", "Cross-shard restarts discovering a shard late.", func(s Stats) int64 { return s.TwoPCRestarts })
	counter("epoch_commits", "Transactions committed through epoch group commit.", func(s Stats) int64 { return s.EpochCommits })
	counter("epoch_flushes", "Epoch batches flushed.", func(s Stats) int64 { return s.EpochFlushes })
	reg.Gauge("shards", "Number of shards the object space is partitioned into.", func() int64 { return int64(len(db.engines)) })
	if db.tr != nil {
		tr := db.tr
		reg.Gauge("trace_dropped_spans", "Flight-recorder spans overwritten before being drained.", func() int64 { return int64(tr.Dropped()) })
		reg.RegisterPhases(tr)
	}
	db.reg = reg
}

// waitsForDOT merges the live waits-for graphs of every distinct lock
// manager into one DOT digraph — the /waitsfor endpoint's content. A
// waits-for cycle spanning shards is visible only in the merged graph
// (each shard's detector sees just its own edges, which is why the wait
// budget, not detection, resolves cross-shard deadlocks).
func (db *DB) waitsForDOT() string {
	var parts []string
	for _, sched := range db.distinctSchedulers() {
		if lm, ok := sched.(interface{ Manager() *lock.Manager }); ok {
			parts = append(parts, lm.Manager().WaitsForDOT())
		}
	}
	return obs.MergeDOT(parts...)
}

// Metrics returns a snapshot of the DB's metrics registry: the Stats
// counters by name, gauges, and — when tracing (WithTracing) — the
// per-phase latency statistics of the flight recorder. The counter
// values are read from the same engine counters as Stats, so the two
// surfaces agree up to the skew of reading counters one by one while
// transactions run.
func (db *DB) Metrics() Metrics { return db.reg.Snapshot() }

// Tracing reports whether the flight recorder is on (WithTracing,
// WithDebugServer, or OBJECTBASE_TRACE=1).
func (db *DB) Tracing() bool { return db.tr.Enabled() }

// TraceSnapshot drains the flight recorder: every phase span and
// instant event still in the ring buffers (the newest ~256k; older ones
// were overwritten — the phase histograms in Metrics keep exact counts
// regardless), sorted by start time, plus the recorder's epoch (spans
// carry offsets from it). It returns nil spans when tracing is off.
// Convert to Chrome trace_event JSON with cmd/obsim or serve it live
// with WithDebugServer's /trace.
func (db *DB) TraceSnapshot() ([]SpanRecord, time.Time) {
	if db.tr == nil {
		return nil, time.Time{}
	}
	return db.tr.Snapshot(), db.tr.Epoch()
}

// DebugAddr returns the listen address of the debug server (useful with
// WithDebugServer(":0")), or "" when none is running.
func (db *DB) DebugAddr() string {
	if db.dbg == nil {
		return ""
	}
	return db.dbg.Addr()
}

// Close releases the DB's background resources — today that is the
// debug server, so Close on a DB opened without WithDebugServer is a
// no-op. The DB itself needs no teardown.
func (db *DB) Close() error {
	if db.dbg == nil {
		return nil
	}
	return db.dbg.Close()
}

// Engine exposes the underlying runtime engine — shard 0's on a sharded
// DB. It is an escape hatch for this module's own tooling (cmd/obsim,
// the experiment drivers in internal/bench and internal/workload); the
// returned type lives under internal/ and cannot be named outside the
// module. Tooling that registers objects should use Registrar instead,
// which routes to the right shard.
func (db *DB) Engine() *engine.Engine { return db.eng }

// Registrar exposes the object/method registration surface backed by the
// DB's engine — or, on a sharded DB, by the space's directory routing.
// Like Engine, it is an escape hatch for this module's own tooling; the
// public API is RegisterObject/RegisterMethod.
func (db *DB) Registrar() engine.Registrar { return db.registrar() }

func (db *DB) registrar() engine.Registrar {
	if db.space != nil {
		return db.space
	}
	return db.eng
}
