module objectbase

go 1.24
