package objectbase_test

// The observability surface at the façade: metrics/stats parity (the
// registry may never silently lag the Stats struct), the flight
// recorder's phase-partition reconciliation invariant, and the live
// debug server end to end — /metrics, /waitsfor under an induced lock
// wait, /trace, pprof, and Close.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"objectbase"
	"objectbase/internal/load"
)

// statsMetricName maps every objectbase.Stats field to its registry
// counter. TestMetricsStatsParity fails when a Stats field is missing
// here or when a mapped counter is missing from DB.Metrics(): adding a
// Stats field without wiring it into buildRegistry (or this map) is the
// regression the test exists to catch.
var statsMetricName = map[string]string{
	"Commits":        "commits",
	"Aborts":         "aborts",
	"Retries":        "retries",
	"LockWaits":      "lock_waits",
	"Deadlocks":      "deadlocks",
	"CertValidated":  "cert_validated",
	"CertRejected":   "cert_rejected",
	"ViewCommits":    "view_commits",
	"ViewFallbacks":  "view_fallbacks",
	"SerialRestarts": "serial_restarts",
	"TwoPCRestarts":  "twopc_restarts",
	"EpochCommits":   "epoch_commits",
	"EpochFlushes":   "epoch_flushes",
}

// TestMetricsStatsParity hammers a sharded, tracing DB with declared,
// under-declared, and read-only traffic, then requires DB.Metrics() to
// agree with DB.Stats() on every counter.
func TestMetricsStatsParity(t *testing.T) {
	db, err := objectbase.Open(
		objectbase.WithShards(4),
		objectbase.WithReadOnly(),
		objectbase.WithTracing(),
	)
	if err != nil {
		t.Fatal(err)
	}
	const nObjs = 16
	names := make([]string, nObjs)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		if err := db.RegisterObject(names[i], objectbase.Counter(), nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a, b := names[(c+i)%nObjs], names[(c+3*i+1)%nObjs]
				bump := func(x *objectbase.Ctx) (objectbase.Value, error) {
					if _, err := x.Do(a, "Add", int64(1)); err != nil {
						return nil, err
					}
					return x.Do(b, "Add", int64(1))
				}
				switch i % 3 {
				case 0:
					// Fully declared: the serial fast path.
					_, err = db.ExecTouching(ctx, "pair", []string{a, b}, bump)
				case 1:
					// Under-declared: touching b forces the restart that
					// grows the declared set (Stats.SerialRestarts).
					_, err = db.ExecTouching(ctx, "pair-short", []string{a}, bump)
				default:
					// Undeclared: discovery on the two-phase-commit path.
					_, err = db.Exec(ctx, "pair-lazy", bump)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := db.View(ctx, "peek", func(x *objectbase.Ctx) (objectbase.Value, error) {
					return x.Do(a, "Get")
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := db.Stats()
	m := db.Metrics()
	sv := reflect.ValueOf(st)
	for i := 0; i < sv.NumField(); i++ {
		field := sv.Type().Field(i).Name
		metric, ok := statsMetricName[field]
		if !ok {
			t.Errorf("Stats field %s has no registry counter mapping — extend buildRegistry and statsMetricName", field)
			continue
		}
		got, ok := m.Counters[metric]
		if !ok {
			t.Errorf("registry has no counter %q for Stats.%s", metric, field)
			continue
		}
		if want := sv.Field(i).Int(); got != want {
			t.Errorf("counter %q = %d, Stats.%s = %d", metric, got, field, want)
		}
	}
	if st.Commits == 0 {
		t.Error("hammer committed nothing")
	}
	if st.SerialRestarts == 0 {
		t.Error("under-declared serial transactions should have restarted at least once")
	}
	if m.Gauges["shards"] != 4 {
		t.Errorf("shards gauge = %d, want 4", m.Gauges["shards"])
	}
	if len(m.Phases) == 0 {
		t.Error("tracing DB reported no phase histograms")
	}
}

// TestTraceReconciliation drives the traced hotspot-counter × n2pl-op
// cell and checks the flight recorder's core invariant: the exclusive
// phases partition each attempt's wall time, so their summed totals must
// reconcile with the driver's latency histogram within 5%.
//
// The measurement is retried up to three times: on a loaded (or
// single-core) machine one scheduler preemption landing in the few
// unmeasured nanoseconds around a transaction can add tens of
// milliseconds to the latency sum but not to the phases. A systematic
// accounting gap is stable across runs and fails all three attempts; a
// one-off preemption outlier does not.
func TestTraceReconciliation(t *testing.T) {
	sc, ok := load.Get("hotspot-counter")
	if !ok {
		t.Fatal("hotspot-counter scenario not registered")
	}
	var fracs []float64
	for attempt := 0; attempt < 3; attempt++ {
		res, err := load.Run(context.Background(), load.Options{
			Scenario:  sc,
			Scheduler: "n2pl-op",
			Trace:     true,
			Knobs:     load.Knobs{Clients: 16, Txns: 300, Seed: int64(11 + attempt)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			// Failed transactions appear in the phase totals but not in the
			// latency histogram, which would skew the reconciliation.
			t.Fatalf("expected a clean commuting run, got %d errors", res.Errors)
		}
		if !res.Trace || len(res.Phases) == 0 {
			t.Fatalf("traced run carried no phases block: %+v", res.Phases)
		}
		if len(res.Spans) == 0 {
			t.Fatal("traced run drained no spans")
		}
		if res.Phases["admit"].Count != res.Ops {
			t.Fatalf("admit count %d, want one per transaction (%d)", res.Phases["admit"].Count, res.Ops)
		}

		var phaseSum int64
		for _, name := range []string{"admit", "schedule-wait", "execute", "commit-barrier", "publish", "retry-backoff"} {
			phaseSum += res.Phases[name].TotalNS
		}
		latSum := res.Latency.Mean * (res.Ops - res.Errors)
		if latSum <= 0 {
			t.Fatalf("degenerate latency sum %d", latSum)
		}
		diff := phaseSum - latSum
		if diff < 0 {
			diff = -diff
		}
		frac := float64(diff) / float64(latSum)
		if frac <= 0.05 {
			return
		}
		fracs = append(fracs, frac)
	}
	t.Errorf("exclusive phase sums never reconciled with the latency sum within 5%%: off by %.1f%%, %.1f%%, %.1f%% across three runs",
		fracs[0]*100, fracs[1]*100, fracs[2]*100)
}

// TestTraceReconciliationEpochs re-checks the partition invariant with
// epoch group commit enabled: a batched attempt's wall time is exactly
// admit + epoch-wait (the flusher's epoch-flush spans overlap the
// members' waits and are deliberately non-exclusive), so the exclusive
// sums must still reconcile with the latency histogram within 5%.
func TestTraceReconciliationEpochs(t *testing.T) {
	sc, ok := load.Get("hotspot-counter")
	if !ok {
		t.Fatal("hotspot-counter scenario not registered")
	}
	var fracs []float64
	for attempt := 0; attempt < 3; attempt++ {
		res, err := load.Run(context.Background(), load.Options{
			Scenario:  sc,
			Scheduler: "n2pl-op",
			Trace:     true,
			Knobs:     load.Knobs{Clients: 16, Txns: 300, Seed: int64(23 + attempt), Epoch: "100us:16"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("expected a clean commuting run, got %d errors", res.Errors)
		}
		if res.Phases["epoch-wait"].Count == 0 {
			t.Fatal("epoch cell recorded no epoch-wait phases")
		}
		var phaseSum int64
		for _, name := range []string{"admit", "epoch-wait", "schedule-wait", "execute", "commit-barrier", "publish", "retry-backoff"} {
			phaseSum += res.Phases[name].TotalNS
		}
		latSum := res.Latency.Mean * (res.Ops - res.Errors)
		if latSum <= 0 {
			t.Fatalf("degenerate latency sum %d", latSum)
		}
		diff := phaseSum - latSum
		if diff < 0 {
			diff = -diff
		}
		frac := float64(diff) / float64(latSum)
		if frac <= 0.05 {
			return
		}
		fracs = append(fracs, frac)
	}
	t.Errorf("epoch-mode exclusive phase sums never reconciled with the latency sum within 5%%: off by %.1f%%, %.1f%%, %.1f%% across three runs",
		fracs[0]*100, fracs[1]*100, fracs[2]*100)
}

// TestDebugServerEndToEnd opens a DB with the live introspection server
// and exercises every endpoint, including /waitsfor under an induced
// lock wait.
func TestDebugServerEndToEnd(t *testing.T) {
	db, err := objectbase.Open(objectbase.WithDebugServer("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.Tracing() {
		t.Fatal("WithDebugServer must imply tracing")
	}
	addr := db.DebugAddr()
	if addr == "" {
		t.Fatal("debug server reported no address")
	}
	base := "http://" + addr
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if err := db.RegisterObject("c", objectbase.Counter(), nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Writer holds the counter's Add lock until released; the reader's
	// conflicting Get then blocks inside the lock manager, which is the
	// window where /waitsfor must show the edge.
	held := make(chan struct{})
	gate := make(chan struct{})
	writerDone := make(chan error, 1)
	readerDone := make(chan error, 1)
	go func() {
		_, err := db.Exec(ctx, "hold", func(x *objectbase.Ctx) (objectbase.Value, error) {
			if _, err := x.Do("c", "Add", int64(1)); err != nil {
				return nil, err
			}
			close(held)
			<-gate
			return nil, nil
		})
		writerDone <- err
	}()
	<-held
	go func() {
		_, err := db.Exec(ctx, "peek", func(x *objectbase.Ctx) (objectbase.Value, error) {
			return x.Do("c", "Get")
		})
		readerDone <- err
	}()

	sawEdge := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, body := get("/waitsfor"); strings.Contains(body, "->") {
			sawEdge = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(gate)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
	if !sawEdge {
		t.Error("/waitsfor never showed the blocked reader's edge")
	}

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "objectbase_commits_total") ||
		!strings.Contains(body, "objectbase_lock_waits_total") {
		t.Errorf("/metrics (%d) missing expected counters:\n%s", code, body)
	}
	if code, body := get("/trace"); code != http.StatusOK {
		t.Errorf("/trace status %d", code)
	} else {
		var tf struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &tf); err != nil {
			t.Errorf("/trace is not trace-event JSON: %v", err)
		} else if len(tf.TraceEvents) == 0 {
			t.Error("/trace drained no events after committed transactions")
		}
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("debug server still serving after Close")
	}
}

// TestTracingSurfaceDisabled pins the zero-cost default: no tracer, no
// spans, but the metrics registry still serves the Stats counters. The
// env opt-in is cleared so the test still pins the default when the
// whole suite runs under OBJECTBASE_TRACE=1 (one CI cell does).
func TestTracingSurfaceDisabled(t *testing.T) {
	t.Setenv("OBJECTBASE_TRACE", "")
	db, err := objectbase.Open()
	if err != nil {
		t.Fatal(err)
	}
	if db.Tracing() {
		t.Fatal("tracing should be off by default")
	}
	if spans, _ := db.TraceSnapshot(); spans != nil {
		t.Errorf("TraceSnapshot on an untraced DB returned %d spans", len(spans))
	}
	if err := db.RegisterObject("c", objectbase.Counter(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "bump", func(x *objectbase.Ctx) (objectbase.Value, error) {
		return x.Do("c", "Add", int64(1))
	}); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Counters["commits"] != 1 {
		t.Errorf("commits counter = %d, want 1", m.Counters["commits"])
	}
	if len(m.Phases) != 0 {
		t.Errorf("untraced DB reported phase histograms: %v", m.Phases)
	}
	if db.DebugAddr() != "" {
		t.Errorf("DebugAddr = %q without WithDebugServer", db.DebugAddr())
	}
	if err := db.Close(); err != nil {
		t.Errorf("Close without debug server: %v", err)
	}
}

// TestTracingEnvOptIn pins the process-wide CI switch.
func TestTracingEnvOptIn(t *testing.T) {
	t.Setenv("OBJECTBASE_TRACE", "1")
	db, err := objectbase.Open()
	if err != nil {
		t.Fatal(err)
	}
	if !db.Tracing() {
		t.Fatal("OBJECTBASE_TRACE=1 should enable the flight recorder")
	}
}
