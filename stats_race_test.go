package objectbase_test

// Locks in snapshot safety: Stats and History may be read while Exec
// traffic is in flight. Run under -race (CI does), this test fails if
// either returns anything sharing mutable state with the live run.

import (
	"context"
	"sync"
	"testing"

	"objectbase"
)

func TestStatsAndHistoryDuringTraffic(t *testing.T) {
	db, err := objectbase.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterObject("c", objectbase.Counter(), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterMethod("c", "bump", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
		return ctx.Do("c", "Add", int64(1))
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				// Errors are expected once ctx is cancelled mid-loop.
				_, _ = db.Exec(ctx, "T", func(c *objectbase.Ctx) (objectbase.Value, error) {
					if _, err := c.Call("c", "bump"); err != nil {
						return nil, err
					}
					return c.Call("c", "bump")
				})
			}
		}()
	}

	// Read counters and history snapshots while the traffic runs; walking
	// the snapshot is what catches sharing with the live recorder.
	for i := 0; i < 50; i++ {
		st := db.Stats()
		if st.Commits < 0 {
			t.Fatal("impossible counter")
		}
		h, err := db.History()
		if err != nil {
			t.Fatal(err)
		}
		_ = h.StepCount()
		for _, e := range h.AllExecs() {
			_ = e.Aborted
			_ = len(e.Children)
		}
		for _, msgs := range h.Messages {
			for _, m := range msgs {
				_ = m.Ret
				_ = m.End
			}
		}
		_ = len(h.Roots)
	}
	cancel()
	wg.Wait()

	// Quiescent again: the full oracle must still pass.
	if _, err := db.Verify(); err != nil {
		t.Fatal(err)
	}
}
