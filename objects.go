package objectbase

import "objectbase/internal/objects"

// The bundled object library: ready-made schemas with conflict relations
// declared at both granularities of the paper's Section 5 discussion
// (conservative operation granularity and exact, return-value-aware step
// granularity). Each is verified against Definition 3 by the library's
// property tests. Pass them to DB.RegisterObject, or build your own
// Schema.

// Counter returns a commutative counter schema: Add(n) and Get, with
// Adds commuting with each other. State variable: "n".
func Counter() *Schema { return objects.Counter() }

// Register returns the classical read/write register schema — Read(name)
// and Write(name, value) over named variables with the textbook RW
// conflict table, scoped per variable. Under it the model degenerates to
// classical database concurrency control (the paper's Section 1 baseline
// vocabulary).
func Register() *Schema { return objects.Register() }

// Account returns a bank-account schema: Deposit(n), Withdraw(n) (which
// fails — returning false — rather than overdraw), and Balance. State
// variable: "balance".
func Account() *Schema { return objects.Account() }

// Queue returns the FIFO queue schema of the paper's Section 5.1 example:
// Enqueue(v) and Dequeue, where at step granularity an Enqueue conflicts
// with a Dequeue only if the latter returns the item the former placed.
// State variable: "items".
func Queue() *Schema { return objects.Queue() }

// Set returns a mathematical set schema: Add(v), Remove(v), Contains(v),
// with per-element conflict scoping.
func Set() *Schema { return objects.Set() }

// Dictionary returns the ordered dictionary schema of the paper's
// Section 2 modularity example — Insert(k, v), Delete(k), Lookup(k), Len —
// backed by a lock-coupled B+ tree with per-key conflict declarations.
func Dictionary() *Schema { return objects.Dictionary() }
