package cc

import (
	"objectbase/internal/engine"
)

// DependencyTracker is implemented by schedulers that state whether they
// need the engine's recoverability machinery.
type DependencyTracker interface {
	RequiresDependencyTracking() bool
}

// NewEngine builds an engine for the scheduler, enabling dependency
// tracking exactly when the scheduler requires it.
func NewEngine(sched engine.Scheduler, opts engine.Options) *engine.Engine {
	if dt, ok := sched.(DependencyTracker); ok && dt.RequiresDependencyTracking() {
		opts.TrackDependencies = true
	}
	return engine.New(sched, opts)
}

// SpaceSharer is implemented by schedulers that must run as a single
// instance across every shard of a sharded object space. Concretely the
// optimistic certifier: per-shard certifiers each see only their shard's
// conflict edges, and a cross-shard serialisation cycle (T1→T2 through an
// object in shard A, T2→T1 through shard B) closes in neither — one
// space-wide certifier sees, and rejects, the union. It doubles as the
// two-phase commit's prepare step: being a single instance, its one
// Commit call validates the transaction for every shard before any
// per-shard lock release runs. Lock- and timestamp-based schedulers stay
// per-shard: strict 2PL held to the cross-shard commit is globally
// two-phase, and timestamps are space-wide ExecIDs, so per-shard issue
// tables enforce one global timestamp order.
type SpaceSharer interface {
	SharedAcrossShards() bool
}

// NewShardedEngines builds n engines for a sharded object space running
// the named scheduler: one engine per shard, all plugged into one
// engine.Shared (space-wide transaction identities, history clock, and
// recoverability tracker), with a fresh scheduler instance per shard —
// or one shared instance when the scheduler declares it must span the
// space (SpaceSharer).
func NewShardedEngines(name string, n int, cfg Config, opts engine.Options) ([]*engine.Engine, error) {
	if n < 1 {
		n = 1
	}
	opts.Shared = engine.NewShared()
	engines := make([]*engine.Engine, n)
	var shared engine.Scheduler
	for i := range engines {
		sched := shared
		if sched == nil {
			var err error
			sched, err = NewByName(name, cfg)
			if err != nil {
				return nil, err
			}
			if ss, ok := sched.(SpaceSharer); ok && ss.SharedAcrossShards() {
				shared = sched
			}
		}
		engines[i] = NewEngine(sched, opts)
	}
	return engines, nil
}
