package cc

import (
	"objectbase/internal/engine"
)

// DependencyTracker is implemented by schedulers that state whether they
// need the engine's recoverability machinery.
type DependencyTracker interface {
	RequiresDependencyTracking() bool
}

// NewEngine builds an engine for the scheduler, enabling dependency
// tracking exactly when the scheduler requires it.
func NewEngine(sched engine.Scheduler, opts engine.Options) *engine.Engine {
	if dt, ok := sched.(DependencyTracker); ok && dt.RequiresDependencyTracking() {
		opts.TrackDependencies = true
	}
	return engine.New(sched, opts)
}
