package cc

import (
	"sync"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/objects"
)

// TestGemstoneReadOnlyMethodsShare: methods registered read-only take the
// whole-object lock in R mode, so two readers run concurrently while a
// writer excludes everyone — the "conventional database concurrency
// control" at object granularity the paper describes in Section 1.
func TestGemstoneReadOnlyMethodsShare(t *testing.T) {
	readOnly := func(object, method string) bool { return method == "peek" }
	sched := NewGemstone(5*time.Second, readOnly)
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Counter(), nil)

	var mu sync.Mutex
	cur, maxCur := 0, 0
	enter := func() {
		mu.Lock()
		cur++
		if cur > maxCur {
			maxCur = cur
		}
		mu.Unlock()
	}
	leave := func() {
		mu.Lock()
		cur--
		mu.Unlock()
	}

	gate := make(chan struct{})
	en.Register("A", "peek", func(ctx *engine.Ctx) (core.Value, error) {
		enter()
		<-gate // hold the R lock until both readers are inside
		v, err := ctx.Do("A", "Get")
		leave()
		return v, err
	})

	var wg sync.WaitGroup
	ready := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := en.Run("T", func(ctx *engine.Ctx) (core.Value, error) {
				ready <- struct{}{}
				return ctx.Call("A", "peek")
			}); err != nil {
				t.Errorf("reader: %v", err)
			}
		}()
	}
	<-ready
	<-ready
	// Give both goroutines a moment to enter the method, then release.
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := cur
		mu.Unlock()
		if n == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("readers never overlapped: read-only methods must share the object lock")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	got := maxCur
	mu.Unlock()
	if got != 2 {
		t.Fatalf("max concurrent readers = %d, want 2", got)
	}
	h := en.History()
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}

// TestGemstoneUpgrade: a read-only method followed by a mutating step in
// the same transaction upgrades the object lock; a concurrent reader's
// transaction then waits.
func TestGemstoneUpgrade(t *testing.T) {
	readOnly := func(object, method string) bool { return method == "check" }
	sched := NewGemstone(5*time.Second, readOnly)
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Counter(), nil)
	en.Register("A", "check", func(ctx *engine.Ctx) (core.Value, error) {
		v, err := ctx.Do("A", "Get") // read-only step: R suffices
		if err != nil {
			return nil, err
		}
		if v.(int64) < 10 {
			// Mutating step: upgrade to W.
			return ctx.Do("A", "Add", int64(1))
		}
		return nil, nil
	})
	if _, err := en.Run("T", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Call("A", "check")
	}); err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if got := h.FinalStates["A"]["n"]; got != int64(1) {
		t.Fatalf("n = %v", got)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}
