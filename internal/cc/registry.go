package cc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"objectbase/internal/engine"
	"objectbase/internal/lock"
)

// Config carries the tunables a scheduler factory may honour. Factories
// ignore the fields that do not apply to them.
type Config struct {
	// LockTimeout bounds lock waits for lock-based schedulers (nested 2PL
	// and the GemStone baseline); the nested-aware deadlock detector
	// usually resolves cycles long before it expires. Zero means the
	// default of 10s.
	LockTimeout time.Duration
}

func (c Config) lockTimeout() time.Duration {
	if c.LockTimeout <= 0 {
		return 10 * time.Second
	}
	return c.LockTimeout
}

// Factory builds a fresh scheduler instance. Schedulers hold per-run state
// (lock tables, timestamp tables, certifier access sets), so every engine
// needs its own instance.
type Factory func(Config) engine.Scheduler

var registry = struct {
	mu sync.RWMutex
	m  map[string]Factory
}{m: make(map[string]Factory)}

// RegisterScheduler adds a named scheduler factory to the registry.
// Registering a name twice panics — names are a public namespace and a
// silent overwrite would reroute every consumer of the first registration.
func RegisterScheduler(name string, f Factory) {
	if name == "" || f == nil {
		panic("cc: RegisterScheduler with empty name or nil factory")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("cc: scheduler %q registered twice", name))
	}
	registry.m[name] = f
}

// SchedulerNames returns the registered scheduler names, sorted.
func SchedulerNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewByName builds a fresh scheduler instance for a registered name. The
// error for an unknown name lists what is registered.
func NewByName(name string, cfg Config) (engine.Scheduler, error) {
	registry.mu.RLock()
	f := registry.m[name]
	registry.mu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("cc: unknown scheduler %q (registered: %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
	return f(cfg), nil
}

// The paper's schedulers self-register: nested 2PL at both granularities
// (Section 5.1), nested timestamp ordering conservative and exact
// (Section 5.2), the GemStone object-as-data-item baseline (Section 1),
// the modular intra/inter-object certifier (Theorem 5), and the empty
// scheduler used to demonstrate the anomalies the others prevent.
func init() {
	RegisterScheduler("n2pl-op", func(c Config) engine.Scheduler {
		return NewN2PL(lock.OpGranularity, c.lockTimeout())
	})
	RegisterScheduler("n2pl-step", func(c Config) engine.Scheduler {
		return NewN2PL(lock.StepGranularity, c.lockTimeout())
	})
	RegisterScheduler("nto-op", func(Config) engine.Scheduler { return NewNTO(false) })
	RegisterScheduler("nto-step", func(Config) engine.Scheduler { return NewNTO(true) })
	RegisterScheduler("gemstone", func(c Config) engine.Scheduler {
		return NewGemstone(c.lockTimeout(), nil)
	})
	RegisterScheduler("modular", func(Config) engine.Scheduler { return NewModular() })
	RegisterScheduler("none", func(Config) engine.Scheduler { return engine.None{} })
}
