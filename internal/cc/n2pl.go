// Package cc implements the paper's concurrency-control algorithms as
// engine schedulers:
//
//   - N2PL — nested two-phase locking (Moss's algorithm, Section 5.1,
//     Theorem 3), at either operation or step granularity;
//   - NTO — nested timestamp ordering (Reed's algorithm, Section 5.2,
//     Theorem 4), conservative or exact;
//   - Gemstone — the Section 1 baseline that treats each object as a data
//     item with one active method execution at a time;
//   - Modular — the Theorem 5 decomposition: objects synchronise their own
//     steps locally while an optimistic inter-object certifier ensures the
//     per-object serialisation orders are compatible (Section 5.3/6).
//
// All schedulers run over the same engine and object library, and every
// history they admit is checked by the internal/graph oracle in this
// package's tests: the empirical form of Theorems 3, 4 and 5.
package cc

import (
	"errors"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/lock"
)

// lockAbort maps a lock-manager failure to the engine's abort vocabulary:
// deadlock victims and timeouts are retriable synchronisation aborts;
// an abandoned wait (the transaction's context expired) is final.
func lockAbort(e *engine.Exec, reason string, err error) error {
	if errors.Is(err, lock.ErrCancelled) {
		return &engine.AbortError{Exec: e.ID(), Reason: "context", Retriable: false, Err: e.Context().Err()}
	}
	return &engine.AbortError{Exec: e.ID(), Reason: reason, Retriable: true, Err: err}
}

// N2PL is nested two-phase locking. Rules 1-5 of Section 5.1 are enforced
// by the lock manager; the scheduler wires them to the engine's execution
// events:
//
//   - operation granularity (the common implementation, used by Moss):
//     lock the operation, then execute;
//   - step granularity (Weihl's return-value refinement): provisionally
//     execute under the object latch, lock the completed step, apply —
//     atomically, retrying when the lock must wait.
type N2PL struct {
	mgr *lock.Manager
}

// NewN2PL returns an N2PL scheduler. waitTimeout bounds lock waits (zero
// means the manager default).
func NewN2PL(g lock.Granularity, waitTimeout time.Duration) *N2PL {
	return &N2PL{mgr: lock.New(lock.Options{Granularity: g, WaitTimeout: waitTimeout})}
}

// Name implements engine.Scheduler.
func (s *N2PL) Name() string { return "n2pl-" + s.mgr.Granularity().String() }

// Manager exposes the lock manager (stats for experiments).
func (s *N2PL) Manager() *lock.Manager { return s.mgr }

// Begin implements engine.Scheduler.
func (s *N2PL) Begin(e *engine.Exec) error { return nil }

// Step implements engine.Scheduler.
func (s *N2PL) Step(e *engine.Exec, obj *engine.Object, inv core.OpInvocation) (core.Value, error) {
	rel := obj.Schema().Conflicts
	if s.mgr.Granularity() == lock.OpGranularity {
		// Rule 1 at operation granularity: own L(a) before issuing a.
		if err := s.mgr.AcquireDone(e.ID(), obj.Name(), rel, inv, e.Context().Done()); err != nil {
			return nil, lockAbort(e, "deadlock victim", err)
		}
		st, err := obj.ApplyFor(e, inv)
		if err != nil {
			return nil, err
		}
		return st.Ret, nil
	}

	// Step granularity: provisional execution + atomic lock acquisition
	// under the object latch (Section 5.1, second implementation).
	for {
		obj.Latch()
		st, err := obj.PeekLocked(inv)
		if err != nil {
			obj.Unlatch()
			return nil, err
		}
		ok, w, err := s.mgr.TryAcquire(e.ID(), obj.Name(), rel, st)
		if ok {
			applied, err := obj.ApplyForLocked(e, inv)
			obj.Unlatch()
			if err != nil {
				return nil, err
			}
			return applied.Ret, nil
		}
		obj.Unlatch()
		if err != nil {
			return nil, lockAbort(e, "deadlock victim", err)
		}
		// Wait for the lock situation to change, then retry: the paper's
		// "the actual processing of the operation must be delayed until a
		// later provisional execution results in a step for which a lock
		// can be acquired".
		werr := w.WaitDone(e.Context().Done())
		w.Cancel()
		if werr != nil {
			return nil, lockAbort(e, "deadlock victim", werr)
		}
	}
}

// Commit implements engine.Scheduler: rule 5, locks pass to the parent (or
// are discarded at top level). The striped manager visits only the
// stripes this execution locked, so concurrent commits against disjoint
// scopes never serialise on each other.
func (s *N2PL) Commit(e *engine.Exec) error {
	s.mgr.CommitTransfer(e.ID())
	return nil
}

// Abort implements engine.Scheduler: an aborted execution's locks are
// discarded (again touching only the stripes it locked).
func (s *N2PL) Abort(e *engine.Exec) {
	s.mgr.ReleaseAll(e.ID())
}

// RequiresDependencyTracking reports whether the engine must track
// commit dependencies for this scheduler. Lock-based schedulers prevent
// access to uncommitted effects, so: no.
func (s *N2PL) RequiresDependencyTracking() bool { return false }
