package cc

import (
	"time"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/lock"
)

// Gemstone is the Section 1 baseline: "view each object as a data item,
// treat a method invocation as a group of read or write operations on those
// data items ... and require that only one method execution can be active
// at each object at any one time. With these restrictions, any conventional
// database concurrency control method can be employed" — the approach of
// the Gemstone project.
//
// Concretely: whole-object locks in classical R/W modes, owned directly by
// the *top-level* transaction (nesting is flattened — the conventional
// scheduler knows nothing of subtransactions) and held until it finishes
// (strict 2PL). A method execution takes its object's lock at entry — in W
// mode unless the method was registered read-only — so at most one writer
// method is ever active per object; local steps re-assert the lock,
// upgrading R to W when a mutating operation appears.
//
// The experiments compare this baseline against method-level N2PL: when
// methods are long and touch little state, whole-object exclusion costs
// exactly the concurrency the paper's model recovers.
type Gemstone struct {
	mgr *lock.Manager
	// readOnlyMethod reports whether object.method is known read-only
	// (lockable in R mode). Nil means nothing is.
	readOnlyMethod func(object, method string) bool
}

// objectRW is the synthetic whole-object conflict relation: one scope per
// object, classical R/W modes.
var objectRW = core.RWTable([]string{"R"}, []string{"W"}, core.SingleKey)

// NewGemstone returns the baseline scheduler. readOnly (optional) marks
// methods lockable in shared mode.
func NewGemstone(waitTimeout time.Duration, readOnly func(object, method string) bool) *Gemstone {
	return &Gemstone{
		mgr:            lock.New(lock.Options{Granularity: lock.OpGranularity, WaitTimeout: waitTimeout}),
		readOnlyMethod: readOnly,
	}
}

// Name implements engine.Scheduler.
func (s *Gemstone) Name() string { return "gemstone" }

// Manager exposes the lock manager (stats).
func (s *Gemstone) Manager() *lock.Manager { return s.mgr }

func (s *Gemstone) lockObject(e *engine.Exec, object string, wr bool) error {
	mode := "R"
	if wr {
		mode = "W"
	}
	top := e.ID().Top()
	if err := s.mgr.AcquireDone(top, object, objectRW, core.OpInvocation{Op: mode}, e.Context().Done()); err != nil {
		return lockAbort(e, "deadlock victim (object lock)", err)
	}
	return nil
}

// Begin implements engine.Scheduler: entering a method of an object takes
// the whole-object lock for the top-level transaction.
func (s *Gemstone) Begin(e *engine.Exec) error {
	if len(e.ID()) == 1 {
		return nil // the environment is not lockable
	}
	wr := true
	if s.readOnlyMethod != nil && s.readOnlyMethod(e.ObjectName(), e.Method()) {
		wr = false
	}
	return s.lockObject(e, e.ObjectName(), wr)
}

// Step implements engine.Scheduler: re-assert the object lock (upgrading
// to W for mutating operations), then apply.
func (s *Gemstone) Step(e *engine.Exec, obj *engine.Object, inv core.OpInvocation) (core.Value, error) {
	wr := true
	if op, err := obj.Schema().Op(inv.Op); err == nil && op.ReadOnly {
		wr = false
	}
	if err := s.lockObject(e, obj.Name(), wr); err != nil {
		return nil, err
	}
	st, err := obj.ApplyFor(e, inv)
	if err != nil {
		return nil, err
	}
	return st.Ret, nil
}

// Commit implements engine.Scheduler: only the top-level completion
// releases (locks are owned by the top — flat 2PL).
func (s *Gemstone) Commit(e *engine.Exec) error {
	if len(e.ID()) == 1 {
		s.mgr.CommitTransfer(e.ID())
	}
	return nil
}

// Abort implements engine.Scheduler.
func (s *Gemstone) Abort(e *engine.Exec) {
	if len(e.ID()) == 1 {
		s.mgr.ReleaseAll(e.ID())
	}
}

// RequiresDependencyTracking: locks prevent dirty access.
func (s *Gemstone) RequiresDependencyTracking() bool { return false }
