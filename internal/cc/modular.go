package cc

import (
	"fmt"
	"sync"

	"objectbase/internal/core"
	"objectbase/internal/engine"
)

// Modular is the Theorem 5 scheme: intra-object and inter-object
// synchronisation are separated.
//
// Intra-object: each object orders its own steps however it likes — here,
// by its latch (each object's recorded step order is its local
// serialisation order; objects with internally concurrent structures, like
// the B-tree dictionary, synchronise their own physical operations). No
// blocking across transactions ever happens inside an object.
//
// Inter-object: a global optimistic certifier ("there are techniques that
// resemble certifiers ... which favour (ii) at the expense of (i) — and
// the increased danger of scheduling errors requiring abortions",
// Section 6) ensures the per-object orders are compatible: every step
// registers its conflict-scope accesses; conflicting accesses induce
// precedence edges between top-level transactions; a transaction commits
// only if its edges close no cycle among committed transactions. A cycle
// means the per-object serialisation orders disagree — exactly the
// Section 2 counterexample — and the committing transaction aborts and
// retries.
//
// Because transactions may observe uncommitted effects, Modular requires
// the engine's dependency tracking (cascading aborts) for recoverability,
// and its certification subsumes Theorem 5's conditions on the committed
// projection: the experiments verify CheckTheorem5 on every history it
// admits.
type Modular struct {
	mu       sync.Mutex
	accesses map[string][]certAccess // scope -> accesses in apply order
	edges    map[int32]map[int32]bool
	// committed maps a certified transaction to the engine's top-count
	// watermark at its commit: once every transaction live at that moment
	// has finished, the entry (its accesses and edges) can no longer
	// participate in a cycle through a future transaction and is pruned.
	committed map[int32]int32
	gcTick    int64
	stats     CertStats
}

type certAccess struct {
	top  int32
	step core.StepInfo
}

// CertStats counts certification outcomes.
type CertStats struct {
	Validated int64
	Rejected  int64
}

// NewModular returns the modular certifier scheduler.
func NewModular() *Modular {
	return &Modular{
		accesses:  make(map[string][]certAccess),
		edges:     make(map[int32]map[int32]bool),
		committed: make(map[int32]int32),
	}
}

// Name implements engine.Scheduler.
func (s *Modular) Name() string { return "modular-certifier" }

// Stats returns certification counters.
func (s *Modular) Stats() CertStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Begin implements engine.Scheduler.
func (s *Modular) Begin(e *engine.Exec) error { return nil }

// Step implements engine.Scheduler: apply under the object latch (the
// object's own serialisation), register the access and its induced edges.
func (s *Modular) Step(e *engine.Exec, obj *engine.Object, inv core.OpInvocation) (core.Value, error) {
	rel := obj.Schema().Conflicts
	scope := core.ScopeOf(obj.Name(), rel, inv)

	obj.Latch()
	defer obj.Unlatch()

	st, err := obj.PeekLocked(inv)
	if err != nil {
		return nil, err
	}
	// Recoverability first: bail out if the scope is mid-undo.
	if err := e.Engine().TrackTouch(e, obj, st); err != nil {
		return nil, err
	}
	s.recordAccess(scope, rel, e.ID()[0], st)
	applied, err := obj.ApplyForLocked(e, inv)
	if err != nil {
		return nil, err
	}
	return applied.Ret, nil
}

// recordAccess appends the access and adds precedence edges from every
// earlier conflicting access by another transaction.
func (s *Modular) recordAccess(scope string, rel core.ConflictRelation, top int32, st core.StepInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.accesses[scope] {
		if a.top == top {
			continue
		}
		if rel.StepConflicts(a.step, st) {
			s.addEdge(a.top, top)
		}
	}
	s.accesses[scope] = append(s.accesses[scope], certAccess{top: top, step: st})
}

func (s *Modular) addEdge(from, to int32) {
	m := s.edges[from]
	if m == nil {
		m = make(map[int32]bool)
		s.edges[from] = m
	}
	m[to] = true
}

// Commit implements engine.Scheduler: children commit freely; a top-level
// transaction is certified — its precedence edges must close no cycle in
// the subgraph of committed transactions plus itself.
func (s *Modular) Commit(e *engine.Exec) error {
	if len(e.ID()) != 1 {
		return nil
	}
	n := e.ID()[0]
	watermark := e.Engine().TopCount()
	minLive := e.Engine().MinLiveTop()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cycleThrough(n) {
		s.stats.Rejected++
		s.dropLocked(n)
		return &engine.AbortError{
			Exec:      e.ID(),
			Reason:    fmt.Sprintf("certification: committing T%d closes a serialisation cycle", n),
			Retriable: true,
		}
	}
	s.committed[n] = watermark
	s.stats.Validated++
	s.gcTick++
	if s.gcTick%64 == 0 {
		s.pruneLocked(minLive)
	}
	return nil
}

// pruneLocked discards accesses and edges of committed transactions that
// can no longer precede any live or future transaction: every transaction
// live at their commit has finished (watermark <= minLive).
func (s *Modular) pruneLocked(minLive int32) {
	for n, watermark := range s.committed {
		if watermark <= minLive {
			s.dropLocked(n)
			delete(s.committed, n)
		}
	}
}

// cycleThrough reports whether n lies on a cycle within committed ∪ {n}.
func (s *Modular) cycleThrough(n int32) bool {
	inScope := func(m int32) bool {
		if m == n {
			return true
		}
		_, ok := s.committed[m]
		return ok
	}
	// DFS from n through in-scope edges; a path back to n is a cycle.
	seen := map[int32]bool{}
	var stack []int32
	for m := range s.edges[n] {
		if inScope(m) && !seen[m] {
			seen[m] = true
			stack = append(stack, m)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == n {
			return true
		}
		for m := range s.edges[x] {
			if inScope(m) && !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// Abort implements engine.Scheduler: an aborted top-level transaction's
// accesses and edges vanish.
func (s *Modular) Abort(e *engine.Exec) {
	if len(e.ID()) != 1 {
		return
	}
	s.mu.Lock()
	s.dropLocked(e.ID()[0])
	s.mu.Unlock()
}

func (s *Modular) dropLocked(n int32) {
	for scope, list := range s.accesses {
		out := list[:0]
		for _, a := range list {
			if a.top != n {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			delete(s.accesses, scope)
		} else {
			s.accesses[scope] = out
		}
	}
	delete(s.edges, n)
	for _, m := range s.edges {
		delete(m, n)
	}
}

// RequiresDependencyTracking: yes — optimistic execution observes
// uncommitted effects.
func (s *Modular) RequiresDependencyTracking() bool { return true }

// SharedAcrossShards: yes — certification must see every shard's conflict
// edges, or a cross-shard cycle whose halves live in different shards
// would certify on both sides. The single instance also makes its Commit
// the atomic prepare decision of the cross-shard two-phase commit.
func (s *Modular) SharedAcrossShards() bool { return true }
