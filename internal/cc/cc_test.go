package cc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/lock"
	"objectbase/internal/objects"
)

// allSchedulers enumerates every scheduler under test, freshly constructed.
func allSchedulers() []func() engine.Scheduler {
	return []func() engine.Scheduler{
		func() engine.Scheduler { return NewN2PL(lock.OpGranularity, 5*time.Second) },
		func() engine.Scheduler { return NewN2PL(lock.StepGranularity, 5*time.Second) },
		func() engine.Scheduler { return NewNTO(false) },
		func() engine.Scheduler { return NewNTO(true) },
		func() engine.Scheduler { return NewGemstone(5*time.Second, nil) },
		func() engine.Scheduler { return NewModular() },
	}
}

// buildBank wires a small object base: three accounts, a counter and a
// queue, with nested methods including an audit that uses internal
// parallelism.
func buildBank(en *engine.Engine) {
	for _, a := range []string{"acct0", "acct1", "acct2"} {
		en.AddObject(a, objects.Account(), core.State{"balance": int64(100)})
	}
	en.AddObject("log", objects.Counter(), nil)
	en.AddObject("inbox", objects.Queue(), nil)

	en.Register("log", "note", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Do("log", "Add", int64(1))
	})
	for _, a := range []string{"acct0", "acct1", "acct2"} {
		a := a
		en.Register(a, "deposit", func(ctx *engine.Ctx) (core.Value, error) {
			return ctx.Do(a, "Deposit", ctx.Arg(0))
		})
		en.Register(a, "withdraw", func(ctx *engine.Ctx) (core.Value, error) {
			return ctx.Do(a, "Withdraw", ctx.Arg(0))
		})
		en.Register(a, "balance", func(ctx *engine.Ctx) (core.Value, error) {
			return ctx.Do(a, "Balance")
		})
	}
	en.Register("inbox", "push", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Do("inbox", "Enqueue", ctx.Arg(0))
	})
	en.Register("inbox", "pop", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Do("inbox", "Dequeue")
	})
}

// transferTxn moves amount between two accounts, logging the attempt; on
// insufficient funds it aborts the withdrawal leg and deposits nothing.
func transferTxn(from, to string, amount int64) engine.MethodFunc {
	return func(ctx *engine.Ctx) (core.Value, error) {
		if _, err := ctx.Call("log", "note"); err != nil {
			return nil, err
		}
		ok, err := ctx.Call(from, "withdraw", amount)
		if err != nil {
			return nil, err
		}
		if ok != true {
			return false, nil // insufficient funds: transaction commits having done nothing else
		}
		if _, err := ctx.Call(to, "deposit", amount); err != nil {
			return nil, err
		}
		return true, nil
	}
}

// auditTxn reads all balances with internal parallelism and enqueues the
// total.
func auditTxn() engine.MethodFunc {
	return func(ctx *engine.Ctx) (core.Value, error) {
		var mu sync.Mutex
		total := int64(0)
		read := func(acct string) func(*engine.Ctx) error {
			return func(c *engine.Ctx) error {
				v, err := c.Call(acct, "balance")
				if err != nil {
					return err
				}
				mu.Lock()
				total += v.(int64)
				mu.Unlock()
				return nil
			}
		}
		if err := ctx.Parallel(read("acct0"), read("acct1"), read("acct2")); err != nil {
			return nil, err
		}
		if _, err := ctx.Call("inbox", "push", total); err != nil {
			return nil, err
		}
		return total, nil
	}
}

// runBankWorkload executes a mixed contended workload and returns the
// history.
func runBankWorkload(t *testing.T, en *engine.Engine, seed int64, clients, txns int) {
	t.Helper()
	accounts := []string{"acct0", "acct1", "acct2"}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < txns; i++ {
				switch r.Intn(4) {
				case 0, 1:
					from := accounts[r.Intn(3)]
					to := accounts[r.Intn(3)]
					if from == to {
						to = accounts[(r.Intn(3)+1)%3]
					}
					if _, err := en.Run("transfer", transferTxn(from, to, int64(1+r.Intn(20)))); err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				case 2:
					if _, err := en.Run("audit", auditTxn()); err != nil {
						t.Errorf("audit: %v", err)
						return
					}
				default:
					if _, err := en.Run("pop", func(ctx *engine.Ctx) (core.Value, error) {
						return ctx.Call("inbox", "pop")
					}); err != nil {
						t.Errorf("pop: %v", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// verifyHistory asserts the full oracle on an engine's recorded history.
func verifyHistory(t *testing.T, en *engine.Engine, name string) {
	t.Helper()
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("[%s] history not legal: %v", name, err)
	}
	v := graph.Check(h)
	if !v.Serialisable {
		t.Fatalf("[%s] history not serialisable: %v", name, v)
	}
	if err := graph.CheckTheorem5(h); err != nil {
		t.Fatalf("[%s] Theorem 5 conditions violated: %v", name, err)
	}
	// Money conservation: transfers move, never create (deposits equal
	// successful withdrawals), so total balance stays 300.
	total := int64(0)
	for _, a := range []string{"acct0", "acct1", "acct2"} {
		total += h.FinalStates[a]["balance"].(int64)
	}
	if total != 300 {
		t.Fatalf("[%s] money not conserved: total = %d", name, total)
	}
}

// TestSchedulersAdmitOnlySerialisableHistories is the empirical content of
// Theorems 3, 4 and 5: every scheduler, on a contended mixed workload,
// yields a legal, serialisable history satisfying the Theorem 5
// decomposition, across seeds.
func TestSchedulersAdmitOnlySerialisableHistories(t *testing.T) {
	for _, mk := range allSchedulers() {
		sched := mk()
		name := sched.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				sched := mk()
				en := NewEngine(sched, engine.Options{})
				buildBank(en)
				runBankWorkload(t, en, seed*1000, 4, 12)
				verifyHistory(t, en, fmt.Sprintf("%s seed=%d", sched.Name(), seed))
			}
		})
	}
}

// TestN2PLBlocksConflict: under N2PL a forced conflicting interleaving
// serialises by blocking, not aborting.
func TestN2PLBlocksConflict(t *testing.T) {
	sched := NewN2PL(lock.OpGranularity, 5*time.Second)
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Register(), core.State{"x": int64(0)})

	t1Read := make(chan struct{})
	var readOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := en.Run("T1", func(ctx *engine.Ctx) (core.Value, error) {
			v, err := ctx.Do("A", "Read", "x")
			if err != nil {
				return nil, err
			}
			readOnce.Do(func() { close(t1Read) })
			time.Sleep(50 * time.Millisecond) // hold the read lock
			return ctx.Do("A", "Write", "x", v.(int64)+1)
		})
		if err != nil {
			t.Errorf("T1: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		<-t1Read
		_, err := en.Run("T2", func(ctx *engine.Ctx) (core.Value, error) {
			v, err := ctx.Do("A", "Read", "x") // blocks until T1 commits (or deadlocks and retries)
			if err != nil {
				return nil, err
			}
			return ctx.Do("A", "Write", "x", v.(int64)+1)
		})
		if err != nil {
			t.Errorf("T2: %v", err)
		}
	}()
	wg.Wait()

	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if got := h.FinalStates["A"]["x"]; got != int64(2) {
		t.Fatalf("x = %v, want 2 (no lost update under N2PL)", got)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}

// TestNTORejectsLatecomer: an old transaction issuing a conflicting step
// after a younger one has touched the scope is rejected and retried with a
// fresh timestamp.
func TestNTORejectsLatecomer(t *testing.T) {
	sched := NewNTO(false)
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Register(), core.State{"x": int64(0)})

	oldStarted := make(chan struct{})
	youngDone := make(chan struct{})
	attempts := 0

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := en.Run("old", func(ctx *engine.Ctx) (core.Value, error) {
			attempts++
			if attempts == 1 {
				close(oldStarted)
				<-youngDone // let the young transaction write first
			}
			return ctx.Do("A", "Read", "x")
		})
		if err != nil {
			t.Errorf("old: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		<-oldStarted
		_, err := en.Run("young", func(ctx *engine.Ctx) (core.Value, error) {
			return ctx.Do("A", "Write", "x", int64(9))
		})
		close(youngDone)
		if err != nil {
			t.Errorf("young: %v", err)
		}
	}()
	wg.Wait()

	if attempts < 2 {
		t.Fatalf("old transaction should have been rejected at least once (attempts=%d)", attempts)
	}
	if en.Retries() == 0 {
		t.Fatalf("engine should have retried")
	}
	verify := en.History()
	if err := verify.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if v := graph.Check(verify); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}

// crossTxn runs one leg of a cross pattern: op1 on obj1, barrier, op2 on
// obj2. The barrier fires only on each transaction's first attempt.
func crossTxn(barrier *sync.WaitGroup, leg func(ctx *engine.Ctx, phase int) error) engine.MethodFunc {
	first := true
	return func(ctx *engine.Ctx) (core.Value, error) {
		if err := leg(ctx, 1); err != nil {
			return nil, err
		}
		if first {
			first = false
			barrier.Done()
			barrier.Wait()
		}
		return nil, leg(ctx, 2)
	}
}

// TestModularCertifierRejectsWriteSkew builds the Section 2 shape with a
// read/write cross (T1 reads A then writes B; T2 reads B then writes A):
// no commit dependencies arise (writes after reads), each object alone is
// serialisable, yet the two induced orders are incompatible. The certifier
// must reject the second committer; the retry yields a serialisable
// history.
func TestModularCertifierRejectsWriteSkew(t *testing.T) {
	sched := NewModular()
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Register(), core.State{"x": int64(0)})
	en.AddObject("B", objects.Register(), core.State{"y": int64(0)})

	var barrier sync.WaitGroup
	barrier.Add(2)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := en.Run("T1", crossTxn(&barrier, func(ctx *engine.Ctx, phase int) error {
			if phase == 1 {
				_, err := ctx.Do("A", "Read", "x")
				return err
			}
			_, err := ctx.Do("B", "Write", "y", int64(1))
			return err
		}))
		if err != nil {
			t.Errorf("T1: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		_, err := en.Run("T2", crossTxn(&barrier, func(ctx *engine.Ctx, phase int) error {
			if phase == 1 {
				_, err := ctx.Do("B", "Read", "y")
				return err
			}
			_, err := ctx.Do("A", "Write", "x", int64(2))
			return err
		}))
		if err != nil {
			t.Errorf("T2: %v", err)
		}
	}()
	wg.Wait()

	st := sched.Stats()
	if st.Rejected == 0 {
		t.Fatalf("certifier should have rejected one committer (stats: %+v)", st)
	}
	if en.Retries() == 0 {
		t.Fatalf("rejected transaction should have retried")
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
	if err := graph.CheckTheorem5(h); err != nil {
		t.Fatalf("Theorem 5: %v", err)
	}
}

// TestMutualObservationRejectedEarly: the write/write cross — mutual
// observation of uncommitted effects — is caught by the engine's
// dependency tracker at touch time (it could never certify, and waiting
// for each other's commit would deadlock). One transaction retries; the
// result is serialisable.
func TestMutualObservationRejectedEarly(t *testing.T) {
	sched := NewModular()
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Register(), core.State{"x": int64(0)})
	en.AddObject("B", objects.Register(), core.State{"y": int64(0)})

	var barrier sync.WaitGroup
	barrier.Add(2)

	var wg sync.WaitGroup
	wg.Add(2)
	run := func(first, second string, vars [2]string, val int64) {
		defer wg.Done()
		_, err := en.Run("T", crossTxn(&barrier, func(ctx *engine.Ctx, phase int) error {
			if phase == 1 {
				_, err := ctx.Do(first, "Write", vars[0], val)
				return err
			}
			_, err := ctx.Do(second, "Write", vars[1], val)
			return err
		}))
		if err != nil {
			t.Errorf("txn: %v", err)
		}
	}
	go run("A", "B", [2]string{"x", "y"}, 1)
	go run("B", "A", [2]string{"y", "x"}, 2)
	wg.Wait()

	if en.Retries() == 0 {
		t.Fatalf("one transaction must have been rejected and retried")
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}

// TestGemstoneOneActiveMethodPerObject: while one method execution is
// active at an object, another transaction's method on the same object
// must wait.
func TestGemstoneOneActiveMethodPerObject(t *testing.T) {
	sched := NewGemstone(5*time.Second, nil)
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Counter(), nil)
	inside := make(chan struct{}, 2)
	release := make(chan struct{})
	var concurrent int32
	var mu sync.Mutex
	maxConcurrent := 0
	cur := 0
	en.Register("A", "slow", func(ctx *engine.Ctx) (core.Value, error) {
		mu.Lock()
		cur++
		if cur > maxConcurrent {
			maxConcurrent = cur
		}
		mu.Unlock()
		select {
		case inside <- struct{}{}:
		default:
		}
		if ctx.Arg(0) == int64(0) {
			<-release
		}
		v, err := ctx.Do("A", "Add", int64(1))
		mu.Lock()
		cur--
		mu.Unlock()
		return v, err
	})
	_ = concurrent

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := en.Run("T1", func(ctx *engine.Ctx) (core.Value, error) {
			return ctx.Call("A", "slow", int64(0))
		}); err != nil {
			t.Errorf("T1: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		<-inside // T1's method is active
		close(release)
		if _, err := en.Run("T2", func(ctx *engine.Ctx) (core.Value, error) {
			return ctx.Call("A", "slow", int64(1))
		}); err != nil {
			t.Errorf("T2: %v", err)
		}
	}()
	wg.Wait()

	mu.Lock()
	mc := maxConcurrent
	mu.Unlock()
	if mc != 1 {
		t.Fatalf("Gemstone must admit one active method per object, saw %d", mc)
	}
	h := en.History()
	if got := h.FinalStates["A"]["n"]; got != int64(2) {
		t.Fatalf("n = %v", got)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}

// TestN2PLStepGranularityAllowsProducerConsumer: with step-granularity
// locks, a consumer can dequeue an old item while a producer's uncommitted
// enqueue lock is held — the concurrency the paper's Section 5.1 example
// promises. Operation granularity blocks it.
func TestN2PLStepGranularityAllowsProducerConsumer(t *testing.T) {
	run := func(g lock.Granularity) (blocked bool) {
		sched := NewN2PL(g, 200*time.Millisecond)
		en := NewEngine(sched, engine.Options{MaxRetries: engine.NoRetry})
		en.AddObject("Q", objects.Queue(), core.State{"items": []core.Value{int64(7), int64(8)}})

		holding := make(chan struct{})
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := en.Run("producer", func(ctx *engine.Ctx) (core.Value, error) {
				if _, err := ctx.Do("Q", "Enqueue", int64(99)); err != nil {
					return nil, err
				}
				close(holding)
				<-release
				return nil, nil
			})
			if err != nil {
				t.Errorf("producer: %v", err)
			}
		}()
		<-holding
		// Consumer tries to dequeue while the enqueue lock is held.
		_, err := en.Run("consumer", func(ctx *engine.Ctx) (core.Value, error) {
			return ctx.Do("Q", "Dequeue")
		})
		blocked = err != nil // op granularity: deadlock timeout
		close(release)
		wg.Wait()

		h := en.History()
		if lerr := h.CheckLegal(); lerr != nil {
			t.Fatalf("history: %v", lerr)
		}
		if v := graph.Check(h); !v.Serialisable {
			t.Fatalf("verdict: %v", v)
		}
		return blocked
	}

	if blocked := run(lock.StepGranularity); blocked {
		t.Fatalf("step granularity must admit the concurrent dequeue")
	}
	if blocked := run(lock.OpGranularity); !blocked {
		t.Fatalf("operation granularity should block the dequeue until the producer commits")
	}
}
