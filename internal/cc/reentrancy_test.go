package cc

import (
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/lock"
	"objectbase/internal/objects"
)

// TestReentrantObjectCalls exercises the paper's footnote 1: "it is
// permissible for a method of object A to call a method of object B which,
// in turn, may call some other method of object A again". Under N2PL the
// re-entrant call must not self-deadlock: the inner execution is a
// descendant of the lock holder, and rule 2 admits ancestors' locks.
func TestReentrantObjectCalls(t *testing.T) {
	for _, mk := range allSchedulers() {
		sched := mk()
		t.Run(sched.Name(), func(t *testing.T) {
			en := NewEngine(sched, engine.Options{})
			en.AddObject("A", objects.Register(), core.State{"x": int64(0), "log": int64(0)})
			en.AddObject("B", objects.Register(), core.State{"y": int64(0)})

			en.Register("A", "inner", func(ctx *engine.Ctx) (core.Value, error) {
				// Reads the very variable the outer A-method wrote: only
				// legal because the outer execution is an ancestor.
				return ctx.Do("A", "Read", "x")
			})
			en.Register("B", "relay", func(ctx *engine.Ctx) (core.Value, error) {
				if _, err := ctx.Do("B", "Write", "y", int64(1)); err != nil {
					return nil, err
				}
				return ctx.Call("A", "inner")
			})
			en.Register("A", "outer", func(ctx *engine.Ctx) (core.Value, error) {
				if _, err := ctx.Do("A", "Write", "x", int64(42)); err != nil {
					return nil, err
				}
				return ctx.Call("B", "relay")
			})

			ret, err := en.Run("T", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Call("A", "outer")
			})
			if err != nil {
				t.Fatalf("re-entrant call failed: %v", err)
			}
			if ret != int64(42) {
				t.Fatalf("inner read = %v, want 42 (must see ancestor's write)", ret)
			}
			h := en.History()
			if err := h.CheckLegal(); err != nil {
				t.Fatal(err)
			}
			if v := graph.Check(h); !v.Serialisable {
				t.Fatalf("verdict: %v", v)
			}
		})
	}
}

// TestDeepNesting runs a recursive countdown through two objects, checking
// IDs, lock inheritance across many levels and history legality.
func TestDeepNesting(t *testing.T) {
	sched := NewN2PL(lock.OpGranularity, 5*time.Second)
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Counter(), nil)
	en.AddObject("B", objects.Counter(), nil)

	en.Register("A", "down", func(ctx *engine.Ctx) (core.Value, error) {
		n := ctx.Arg(0).(int64)
		if _, err := ctx.Do("A", "Add", int64(1)); err != nil {
			return nil, err
		}
		if n == 0 {
			return int64(0), nil
		}
		return ctx.Call("B", "down", n-1)
	})
	en.Register("B", "down", func(ctx *engine.Ctx) (core.Value, error) {
		n := ctx.Arg(0).(int64)
		if _, err := ctx.Do("B", "Add", int64(1)); err != nil {
			return nil, err
		}
		if n == 0 {
			return int64(0), nil
		}
		return ctx.Call("A", "down", n-1)
	})

	const depth = 12
	if _, err := en.Run("T", func(ctx *engine.Ctx) (core.Value, error) {
		return ctx.Call("A", "down", int64(depth))
	}); err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	total := h.FinalStates["A"]["n"].(int64) + h.FinalStates["B"]["n"].(int64)
	if total != depth+1 {
		t.Fatalf("adds = %d, want %d", total, depth+1)
	}
	// Deepest execution has level depth+1.
	deepest := 0
	for _, e := range h.AllExecs() {
		if e.ID.Level() > deepest {
			deepest = e.ID.Level()
		}
	}
	if deepest != depth+1 {
		t.Fatalf("deepest level = %d, want %d", deepest, depth+1)
	}
}

// TestParallelSiblingConflictOrdered: a method fans out two parallel
// children that conflict at one object; Theorem 5(b)'s ->e stays acyclic
// because the conflicts at a single scope order the siblings one way.
func TestParallelSiblingConflictOrdered(t *testing.T) {
	sched := NewN2PL(lock.OpGranularity, 5*time.Second)
	en := NewEngine(sched, engine.Options{})
	en.AddObject("A", objects.Counter(), nil)
	en.Register("A", "addGet", func(ctx *engine.Ctx) (core.Value, error) {
		if _, err := ctx.Do("A", "Add", int64(1)); err != nil {
			return nil, err
		}
		return ctx.Do("A", "Get")
	})
	_, err := en.Run("T", func(ctx *engine.Ctx) (core.Value, error) {
		return nil, ctx.Parallel(
			func(c *engine.Ctx) error { _, e := c.Call("A", "addGet"); return e },
			func(c *engine.Ctx) error { _, e := c.Call("A", "addGet"); return e },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckTheorem5(h); err != nil {
		t.Fatalf("theorem 5: %v", err)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}
