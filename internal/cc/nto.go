package cc

import (
	"fmt"
	"sync/atomic"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/hts"
)

// NTO is nested timestamp ordering (Reed's algorithm, Section 5.2).
//
// Hierarchical timestamps are the executions' IDs: the engine assigns
// top-level IDs from a monotone counter (transactions started later get
// larger timestamps) and child IDs by per-execution message counters —
// exactly the paper's implementation of rule 2. Rule 1 — conflicting steps
// of incomparable executions must execute in timestamp order — is enforced
// by an hts.IssueTable per conflict scope: a step whose timestamp is
// smaller than a recorded conflicting issue by an incomparable execution
// is rejected and its transaction aborted (and retried by the engine with
// a fresh, larger timestamp).
//
// Two variants, as in the paper's implementation discussion:
//
//   - conservative (Exact=false): conflicts tested at operation
//     granularity before execution, bookkeeping compacted to roughly one
//     maximum timestamp per operation class (the paper's hts(a));
//   - exact (Exact=true): the step is provisionally executed under the
//     object latch and its return value participates in the conflict test;
//     the table then has to remember past steps, bounded by the paper's
//     low-water garbage collection (timestamps of inactive executions
//     below every active execution are discarded).
//
// Timestamp ordering lets a transaction observe uncommitted effects of an
// older transaction, so NTO requires the engine's dependency tracking
// (cascading aborts) for recoverability.
type NTO struct {
	exact  bool
	table  *hts.IssueTable
	gcTick atomic.Int64
	// GCEvery sets how many top-level completions elapse between low-water
	// prunes (default 64; the GC experiment varies it).
	GCEvery int64
}

// NewNTO returns an NTO scheduler.
func NewNTO(exact bool) *NTO {
	return &NTO{
		exact:   exact,
		table:   hts.NewIssueTable(),
		GCEvery: 64,
	}
}

// Name implements engine.Scheduler.
func (s *NTO) Name() string {
	if s.exact {
		return "nto-step"
	}
	return "nto-op"
}

// TableSize exposes the bookkeeping footprint (GC experiment).
func (s *NTO) TableSize() int { return s.table.Size() }

// Begin implements engine.Scheduler.
func (s *NTO) Begin(e *engine.Exec) error { return nil }

// Step implements engine.Scheduler.
func (s *NTO) Step(e *engine.Exec, obj *engine.Object, inv core.OpInvocation) (core.Value, error) {
	rel := obj.Schema().Conflicts
	ts := e.ID()
	scope := core.ScopeOf(obj.Name(), rel, inv)

	obj.Latch()
	defer obj.Unlatch()

	req := core.StepInfo{Op: inv.Op, Args: inv.Args}
	if s.exact {
		st, err := obj.PeekLocked(inv)
		if err != nil {
			return nil, err
		}
		req = st
	}
	if !s.table.TryIssue(scope, rel, s.exact, req, ts) {
		return nil, &engine.AbortError{
			Exec:      e.ID(),
			Reason:    fmt.Sprintf("timestamp rejection: %s at %s", inv, scope),
			Retriable: true,
		}
	}
	// Recoverability: the step may conflict with uncommitted effects of an
	// older transaction; register the dependency (or learn that the data
	// is mid-undo and bail out).
	if err := e.Engine().TrackTouch(e, obj, req); err != nil {
		return nil, err
	}
	applied, err := obj.ApplyForLocked(e, inv)
	if err != nil {
		return nil, err
	}
	return applied.Ret, nil
}

// Commit implements engine.Scheduler: top-level completions occasionally
// prune the issue table at the engine's live low-water timestamp — the
// paper's GC rule ("information about the steps of an inactive method
// execution e can be discarded as soon as for all active method executions
// e', hts(e) < hts(e')").
func (s *NTO) Commit(e *engine.Exec) error {
	if len(e.ID()) == 1 {
		s.maybeGC(e)
	}
	return nil
}

// Abort implements engine.Scheduler.
func (s *NTO) Abort(e *engine.Exec) {
	if len(e.ID()) == 1 {
		s.maybeGC(e)
	}
}

func (s *NTO) maybeGC(e *engine.Exec) {
	every := s.GCEvery
	if every <= 0 {
		every = 64
	}
	if s.gcTick.Add(1)%every != 0 {
		return
	}
	s.table.Prune(core.RootID(e.Engine().MinLiveTop()))
}

// RequiresDependencyTracking: yes — NTO admits reads of uncommitted
// effects.
func (s *NTO) RequiresDependencyTracking() bool { return true }
