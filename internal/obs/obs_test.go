package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketLayout pins the log-linear bucket math: indices are
// monotone, uppers bound their bucket, and index(upper(i)) == i.
func TestBucketLayout(t *testing.T) {
	last := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 10, 1<<20 + 7, 1 << 40, 1<<62 + 12345} {
		idx := BucketIndex(v)
		if idx < last {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, idx, last)
		}
		last = idx
		if up := BucketUpper(idx); v > up {
			t.Fatalf("value %d above its bucket upper %d (idx %d)", v, up, idx)
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := r.Int63()
		idx := BucketIndex(v)
		if got := BucketIndex(BucketUpper(idx)); got != idx {
			t.Fatalf("index(upper(%d)) = %d, want %d (v=%d)", idx, got, idx, v)
		}
	}
}

// TestHistConcurrent hammers one Hist from many goroutines and checks
// the snapshot totals.
func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(r.Int63n(1 << 20)))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Min > s.Max {
		t.Fatalf("min %d > max %d", s.Min, s.Max)
	}
	if p50, p99 := s.Quantile(0.5), s.Quantile(0.99); p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
}

// TestNilTracerNoop verifies the disabled fast path: every method of a
// nil tracer (and the zero Span it hands out) is a no-op.
func TestNilTracerNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.StartSpan(PhaseExecute, 1, "T1", "A")
	sp.End()
	sp.EndWith("grant")
	tr.Event(PhaseTwoPCRestart, 1, "T1", "", "restart")
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", got)
	}
	if tr.Dropped() != 0 || tr.PhaseHist(PhaseExecute) != nil {
		t.Fatal("nil tracer leaked state")
	}
}

// TestTracerSpans records a few spans and events and checks the drained
// records and phase histograms.
func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan(PhaseLockWait, 7, "T1", "acct-3")
	time.Sleep(time.Millisecond)
	sp.EndWith("grant")
	tr.Event(PhaseViewFallback, 7, "T2", "", "")
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot = %d spans, want 2", len(spans))
	}
	var lw *SpanRecord
	for i := range spans {
		if spans[i].Phase == PhaseLockWait {
			lw = &spans[i]
		}
	}
	if lw == nil || lw.Object != "acct-3" || lw.Outcome != "grant" || lw.Exec != "T1" {
		t.Fatalf("lock-wait span mislabelled: %+v", lw)
	}
	if lw.Dur < time.Millisecond {
		t.Fatalf("lock-wait dur %v < slept 1ms", lw.Dur)
	}
	if got := tr.PhaseHist(PhaseLockWait).Count(); got != 1 {
		t.Fatalf("lock-wait hist count = %d, want 1", got)
	}
	if _, ok := PhaseByName("lock-wait"); !ok {
		t.Fatal("PhaseByName(lock-wait) missed")
	}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "unknown" {
			t.Fatalf("phase %d has no name", p)
		}
	}
}

// TestRingWraparound hammers the flight recorder far past ring capacity
// from concurrent writers while a reader drains — the wraparound path
// the race suite's tracing cell exercises. Histograms must keep every
// observation even though rings overwrite.
func TestRingWraparound(t *testing.T) {
	tr := NewTracer()
	const writers = 8
	perWriter := 2 * ringSize // guarantee wrap on every ring touched
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent drains while writers run
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Snapshot()
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				sp := tr.StartSpan(PhaseExecute, uint64(w), "T", "")
				sp.End()
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	reader.Wait()

	if got := tr.PhaseHist(PhaseExecute).Count(); got != uint64(writers*perWriter) {
		t.Fatalf("hist count = %d, want %d (histograms must survive wraparound)", got, writers*perWriter)
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected ring wraparound drops")
	}
	spans := tr.Snapshot()
	if len(spans) == 0 || len(spans) > writers*ringSize {
		t.Fatalf("snapshot size %d out of range (0, %d]", len(spans), writers*ringSize)
	}
}

// TestTraceJSONRoundTrip writes spans as chrome trace_event JSON and
// parses them back.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan(PhasePublish, 3, "T9", "")
	sp.End()
	tr.Event(PhaseSerialRestart, 3, "T9", "", "incomplete-set")
	evs := ToTraceEvents(tr.Snapshot(), tr.Epoch(), 42)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, &TraceFile{TraceEvents: evs, Metadata: map[string]string{"cell": "t"}}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace output is not valid JSON")
	}
	tf, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 2 {
		t.Fatalf("round trip lost events: %d", len(tf.TraceEvents))
	}
	var sawX, sawI bool
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			sawX = true
			if ev.Name != "publish" || ev.Pid != 42 || ev.Tid != 3 {
				t.Fatalf("span event mislabelled: %+v", ev)
			}
		case "i":
			sawI = true
			if ev.Name != "serial-restart" || ev.Args["outcome"] != "incomplete-set" {
				t.Fatalf("instant event mislabelled: %+v", ev)
			}
		}
	}
	if !sawX || !sawI {
		t.Fatalf("missing event kinds: X=%v i=%v", sawX, sawI)
	}
}

// TestRegistryParityAndProm registers func-backed counters and a
// histogram and checks both the snapshot and the Prometheus rendering.
func TestRegistryParityAndProm(t *testing.T) {
	reg := NewRegistry()
	v := int64(41)
	reg.Counter("commits", "committed transactions", func() int64 { return v })
	reg.Gauge("rings", "flight recorder rings", func() int64 { return numRings })
	h := NewHist()
	h.Record(time.Millisecond)
	reg.Histogram("phase_lock_wait", "lock wait latency", h)

	v++
	m := reg.Snapshot()
	if m.Counters["commits"] != 42 {
		t.Fatalf("counter reads stale value %d, want 42 (must be func-backed)", m.Counters["commits"])
	}
	if m.Phases["phase_lock_wait"].Count != 1 || m.Phases["phase_lock_wait"].P99 < time.Millisecond/2 {
		t.Fatalf("hist stat wrong: %+v", m.Phases["phase_lock_wait"])
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE objectbase_commits_total counter",
		"objectbase_commits_total 42",
		"# TYPE objectbase_rings gauge",
		"# TYPE objectbase_phase_lock_wait_seconds summary",
		`objectbase_phase_lock_wait_seconds{quantile="0.99"}`,
		"objectbase_phase_lock_wait_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestRegisterPhases wires a tracer's histograms into a registry.
func TestRegisterPhases(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	reg.RegisterPhases(tr)
	sp := tr.StartSpan(PhaseCommitBarrier, 0, "T", "")
	sp.End()
	m := reg.Snapshot()
	if m.Phases["phase_commit-barrier"].Count != 1 {
		t.Fatalf("phase hist not registered: %+v", m.Phases)
	}
	// nil tracer: no phase metrics, no panic.
	reg2 := NewRegistry()
	reg2.RegisterPhases(nil)
	if len(reg2.Snapshot().Phases) != 0 {
		t.Fatal("nil tracer registered phases")
	}
}
