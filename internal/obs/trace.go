// Package obs is the zero-dependency observability layer: a flight
// recorder of per-exec phase spans in lock-free per-client ring buffers,
// a metrics registry (atomic counters/gauges plus phase-latency
// histograms) with a Prometheus text exposition, and an opt-in debug
// HTTP server (/metrics, /waitsfor, net/http/pprof).
//
// Everything follows the engine's observer convention: a nil *Tracer is
// fully operational as a no-op, so instrumented hot paths pay a single
// pointer check when tracing is disabled and never branch on a separate
// "enabled" flag.
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Phase identifies where a span's time went. The top-level phases
// (admit, schedule-wait, execute, commit-barrier, publish,
// retry-backoff) are mutually exclusive and partition a transaction
// attempt's wall time; lock-wait and gate-wait nest inside execute (and
// inside the serial path's setup) and are excluded from the partition;
// the restart/fallback phases are instant events marking control-flow
// transitions.
type Phase uint8

const (
	// PhaseAdmit covers per-attempt setup: exec allocation, history
	// admission and dependency registration.
	PhaseAdmit Phase = iota
	// PhaseScheduleWait covers the scheduler's Begin admission gate.
	PhaseScheduleWait
	// PhaseLockWait covers one blocked lock acquisition (nested inside
	// execute; Object carries the object key).
	PhaseLockWait
	// PhaseExecute covers the transaction body.
	PhaseExecute
	// PhaseCommitBarrier covers waiting out commit dependencies and the
	// scheduler's Commit.
	PhaseCommitBarrier
	// PhasePublish covers version publication and history sealing.
	PhasePublish
	// PhaseRetryBackoff covers the backoff sleep between attempts.
	PhaseRetryBackoff
	// PhaseViewFallback marks a read-only view giving up on the
	// snapshot path and falling back to the locked path (instant).
	PhaseViewFallback
	// PhaseGateWait covers one blocked shard-gate acquisition on the
	// serial/2PC paths (Object carries the gate index).
	PhaseGateWait
	// PhaseSerialRestart marks a serial fast-path attempt restarting
	// because the declared set proved incomplete (instant).
	PhaseSerialRestart
	// PhaseTwoPCRestart marks a cross-shard attempt restarting 2PC
	// after discovering new shards (instant).
	PhaseTwoPCRestart
	// PhaseEpochWait covers a declared-set transaction parked in a
	// per-shard epoch accumulator: enqueue to outcome, including its
	// share of the batch's gated execution. On the epoch path the
	// attempt's wall time is exactly admit + epoch-wait, so the phase is
	// part of the exclusive partition.
	PhaseEpochWait
	// PhaseEpochFlush covers one epoch flush on the flusher's own
	// timeline: gate acquisition, the whole batch's execution, and the
	// per-engine publication round. It overlaps the members' epoch-wait
	// spans and is excluded from the partition.
	PhaseEpochFlush

	// NumPhases is the number of phases (array sizing).
	NumPhases
)

var phaseNames = [NumPhases]string{
	"admit",
	"schedule-wait",
	"lock-wait",
	"execute",
	"commit-barrier",
	"publish",
	"retry-backoff",
	"view-fallback",
	"gate-wait",
	"serial-restart",
	"2pc-restart",
	"epoch-wait",
	"epoch-flush",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseByName returns the phase with the given String() name.
func PhaseByName(name string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i), true
		}
	}
	return 0, false
}

// Exclusive reports whether the phase is part of the mutually-exclusive
// partition of a transaction attempt's wall time (the reconciliation
// set). Nested waits and instant events are excluded.
func (p Phase) Exclusive() bool {
	switch p {
	case PhaseAdmit, PhaseScheduleWait, PhaseExecute, PhaseCommitBarrier,
		PhasePublish, PhaseRetryBackoff, PhaseEpochWait:
		return true
	}
	return false
}

// SpanRecord is one completed span (or instant event, Dur == 0 and
// Instant set) as drained from the flight recorder. Start is relative
// to the tracer's epoch.
type SpanRecord struct {
	Phase   Phase
	Exec    string
	Object  string
	Outcome string
	Ring    int
	Instant bool
	Start   time.Duration
	Dur     time.Duration
}

const (
	numRings = 64
	// ringSize bounds each ring to the most recent spans; older entries
	// are overwritten (flight-recorder semantics). Power of two.
	ringSize = 1 << 12
)

// ring is a lock-free overwrite-on-wrap span buffer. Writers reserve a
// slot with an atomic increment and store an immutable record pointer;
// readers load pointers without coordination. A reader racing a wrap
// may see the new record instead of the old — acceptable for a flight
// recorder, and race-detector clean.
type ring struct {
	next  atomic.Uint64
	slots [ringSize]atomic.Pointer[SpanRecord]
}

func (r *ring) put(rec *SpanRecord) {
	i := r.next.Add(1) - 1
	r.slots[i&(ringSize-1)].Store(rec)
}

// Tracer is the flight recorder. The zero of concern is nil: every
// method no-ops on a nil receiver, and StartSpan returns a Span whose
// End is equally free, so disabled tracing costs one pointer check at
// each instrumentation site.
type Tracer struct {
	epoch time.Time // monotonic base for span timestamps
	rings [numRings]ring
	hists [NumPhases]Hist
}

// NewTracer returns an enabled flight recorder.
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now()}
	for i := range t.hists {
		t.hists[i].reset()
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Epoch returns the wall-clock instant span Starts are relative to
// (zero for a nil tracer).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Span is an in-flight phase measurement. The zero Span (from a nil
// tracer) is valid and End is a no-op on it.
type Span struct {
	t      *Tracer
	phase  Phase
	ring   uint32
	start  time.Duration
	exec   string
	object string
}

// StartSpan opens a span for phase p. client selects the ring (callers
// pass a stable per-client or per-exec number); exec and object label
// the span and may be empty.
func (t *Tracer) StartSpan(p Phase, client uint64, exec, object string) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		t:      t,
		phase:  p,
		ring:   uint32(client % numRings),
		start:  time.Since(t.epoch),
		exec:   exec,
		object: object,
	}
}

// End closes the span with no outcome label.
func (s Span) End() { s.end("") }

// EndWith closes the span with an outcome label (e.g. "grant",
// "timeout", "cancel", "abort").
func (s Span) EndWith(outcome string) { s.end(outcome) }

// Next ends the span and opens its successor phase at one shared
// instant, carrying the ring and labels over. Consecutive phases handed
// off this way partition the wall time exactly — no unmeasured gap
// between them; the recording cost of the handoff itself is charged to
// the successor. The reconciliation invariant (exclusive phase sums ≈
// attempt latency) depends on every boundary using Next rather than an
// End/StartSpan pair.
func (s Span) Next(p Phase) Span {
	if s.t == nil {
		return Span{}
	}
	now := time.Since(s.t.epoch)
	s.endAt(now, "")
	return Span{t: s.t, phase: p, ring: s.ring, start: now, exec: s.exec, object: s.object}
}

// WithExec returns the span relabelled with exec. Callers that format
// the exec key after opening the span use it so the formatting cost
// lands inside the measured phase instead of in an unmeasured gap
// before it; Next propagates the label to successor phases.
func (s Span) WithExec(exec string) Span {
	if s.t == nil {
		return s
	}
	s.exec = exec
	return s
}

// WithExecRing is WithExec plus a ring re-home: the hand-off used when
// a span must open before the attempt's identity exists (the engine's
// retry loop opens admit before allocating the transaction ID, so the
// allocation itself is measured) and is labelled once it does.
func (s Span) WithExecRing(exec string, client uint64) Span {
	if s.t == nil {
		return s
	}
	s.exec = exec
	s.ring = uint32(client % numRings)
	return s
}

func (s Span) end(outcome string) {
	if s.t == nil {
		return
	}
	// The record is allocated before the closing timestamp, so the
	// allocation — the expensive part of recording — lands inside the
	// measured span rather than in the unmeasured gap after a final End.
	// Only the histogram update and ring store run post-stamp. (Next uses
	// endAt directly: its handoff cost is charged to the successor span.)
	rec := &SpanRecord{
		Phase:   s.phase,
		Exec:    s.exec,
		Object:  s.object,
		Outcome: outcome,
		Ring:    int(s.ring),
		Start:   s.start,
	}
	rec.Dur = time.Since(s.t.epoch) - s.start
	s.t.hists[s.phase].Record(rec.Dur)
	s.t.rings[s.ring].put(rec)
}

func (s Span) endAt(now time.Duration, outcome string) {
	d := now - s.start
	s.t.hists[s.phase].Record(d)
	s.t.rings[s.ring].put(&SpanRecord{
		Phase:   s.phase,
		Exec:    s.exec,
		Object:  s.object,
		Outcome: outcome,
		Ring:    int(s.ring),
		Start:   s.start,
		Dur:     d,
	})
}

// Event records an instant event (no duration, no histogram entry):
// restarts, fallbacks, deadlock denials.
func (t *Tracer) Event(p Phase, client uint64, exec, object, outcome string) {
	if t == nil {
		return
	}
	ri := uint32(client % numRings)
	t.rings[ri].put(&SpanRecord{
		Phase:   p,
		Exec:    exec,
		Object:  object,
		Outcome: outcome,
		Ring:    int(ri),
		Instant: true,
		Start:   time.Since(t.epoch),
	})
}

// PhaseHist returns the cumulative latency histogram for a phase.
// Histograms survive ring wraparound: every span is recorded even when
// its ring slot has been overwritten.
func (t *Tracer) PhaseHist(p Phase) *Hist {
	if t == nil {
		return nil
	}
	return &t.hists[p]
}

// Snapshot drains a copy of every ring, sorted by start time. Spans
// overwritten by wraparound are gone (see Dropped); histograms keep
// their latencies regardless.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for ri := range t.rings {
		r := &t.rings[ri]
		n := r.next.Load()
		if n > ringSize {
			n = ringSize
		}
		for i := uint64(0); i < n; i++ {
			if p := r.slots[i].Load(); p != nil {
				out = append(out, *p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped returns how many spans have been overwritten by ring
// wraparound since the tracer was created.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var dropped uint64
	for ri := range t.rings {
		if n := t.rings[ri].next.Load(); n > ringSize {
			dropped += n - ringSize
		}
	}
	return dropped
}
