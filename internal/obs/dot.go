package obs

import (
	"sort"
	"strings"
)

// MergeDOT merges several "digraph waitsfor { ... }" documents into one:
// the union of their edge lines, sorted and deduplicated. A sharded
// space has one lock manager per shard, and each manager can only see
// its own waits-for edges — a cycle spanning shards (the deadlocks the
// wait-budget backstop exists for, since no single detector can refuse
// them) shows only in the merged graph. The debug server's /waitsfor
// endpoint serves this union.
func MergeDOT(parts ...string) string {
	seen := make(map[string]bool)
	var edges []string
	for _, p := range parts {
		for _, line := range strings.Split(p, "\n") {
			trimmed := strings.TrimSpace(line)
			if !strings.HasPrefix(trimmed, `"`) || !strings.HasSuffix(trimmed, ";") {
				continue
			}
			if !seen[trimmed] {
				seen[trimmed] = true
				edges = append(edges, trimmed)
			}
		}
	}
	sort.Strings(edges)
	var b strings.Builder
	b.WriteString("digraph waitsfor {\n")
	for _, e := range edges {
		b.WriteString("  ")
		b.WriteString(e)
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.String()
}
