package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerOptions configures the debug server. Dependencies are injected
// as plain functions so obs stays import-free of the engine and lock
// packages it observes.
type ServerOptions struct {
	// Addr is the listen address ("localhost:0" picks a free port).
	Addr string
	// Registry backs /metrics (Prometheus text format). Required.
	Registry *Registry
	// WaitsFor returns the lock manager's current waits-for graph as
	// DOT; nil disables /waitsfor (404).
	WaitsFor func() string
	// Trace returns the flight recorder's drained spans and epoch,
	// served at /trace as chrome trace_event JSON; nil disables /trace.
	Trace func() ([]SpanRecord, time.Time)
}

// Server is the live introspection endpoint: /metrics, /waitsfor,
// /trace, and the stdlib pprof handlers under /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds opts.Addr and serves in a background goroutine.
func StartServer(opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opts.Registry.WritePrometheus(w)
	})
	if opts.WaitsFor != nil {
		mux.HandleFunc("/waitsfor", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			_, _ = w.Write([]byte(opts.WaitsFor()))
		})
	}
	if opts.Trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			spans, epoch := opts.Trace()
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = WriteTrace(w, &TraceFile{TraceEvents: ToTraceEvents(spans, epoch, 1)})
		})
	}
	// The stdlib pprof handlers self-register only on DefaultServeMux;
	// wire them onto the private mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
