package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is the metrics catalogue: named counters and gauges backed
// by caller-supplied read functions (so a metric and the endpoint
// counter it mirrors read the same atomic and can never disagree), plus
// named latency histograms. Registration takes a lock; reads are
// lock-free apart from a read-lock over the catalogue itself.
type Registry struct {
	mu       sync.RWMutex
	counters []metricFn
	gauges   []metricFn
	hists    []metricHist
}

type metricFn struct {
	name string
	help string
	fn   func() int64
}

type metricHist struct {
	name string
	help string
	h    *Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a monotonically-non-decreasing metric backed by fn.
// Registering an existing name replaces its reader.
func (r *Registry) Counter(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.counters {
		if r.counters[i].name == name {
			r.counters[i] = metricFn{name, help, fn}
			return
		}
	}
	r.counters = append(r.counters, metricFn{name, help, fn})
}

// Gauge registers a point-in-time metric backed by fn.
func (r *Registry) Gauge(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i] = metricFn{name, help, fn}
			return
		}
	}
	r.gauges = append(r.gauges, metricFn{name, help, fn})
}

// Histogram registers (or re-points) a named latency histogram.
func (r *Registry) Histogram(name, help string, h *Hist) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.hists {
		if r.hists[i].name == name {
			r.hists[i] = metricHist{name, help, h}
			return
		}
	}
	r.hists = append(r.hists, metricHist{name, help, h})
}

// HistStat summarises one latency histogram at snapshot time.
type HistStat struct {
	Count uint64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

func histStat(h *Hist) HistStat {
	if h == nil {
		return HistStat{}
	}
	s := h.Snapshot()
	return HistStat{
		Count: s.Count,
		Sum:   time.Duration(s.Sum),
		Min:   time.Duration(s.Min),
		Max:   time.Duration(s.Max),
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// Metrics is a point-in-time snapshot of everything the registry
// exports.
type Metrics struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Phases   map[string]HistStat
}

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Metrics {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := Metrics{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Phases:   make(map[string]HistStat, len(r.hists)),
	}
	for _, c := range r.counters {
		m.Counters[c.name] = c.fn()
	}
	for _, g := range r.gauges {
		m.Gauges[g.name] = g.fn()
	}
	for _, h := range r.hists {
		m.Phases[h.name] = histStat(h.h)
	}
	return m
}

// promName sanitises a metric name into the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format. Counters get a _total suffix, histograms are
// rendered as summaries with p50/p95/p99 quantiles in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := append([]metricFn(nil), r.counters...)
	gauges := append([]metricFn(nil), r.gauges...)
	hists := append([]metricHist(nil), r.hists...)
	r.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, c := range counters {
		n := "objectbase_" + promName(c.name) + "_total"
		if c.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, c.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.fn()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		n := "objectbase_" + promName(g.name)
		if g.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, g.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.fn()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		n := "objectbase_" + promName(h.name) + "_seconds"
		if h.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, h.help); err != nil {
				return err
			}
		}
		st := histStat(h.h)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range []struct {
			q string
			v time.Duration
		}{{"0.5", st.P50}, {"0.95", st.P95}, {"0.99", st.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", n, q.q, q.v.Seconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, st.Sum.Seconds(), n, st.Count); err != nil {
			return err
		}
	}
	return nil
}

// RegisterPhases registers the tracer's per-phase latency histograms
// under phase_<name> metric names. No-op for a nil tracer (the phase
// metrics simply stay absent when tracing is off).
func (r *Registry) RegisterPhases(t *Tracer) {
	if t == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		r.Histogram("phase_"+p.String(), "latency of the "+p.String()+" phase", t.PhaseHist(p))
	}
}
