package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerEndpoints starts the debug server on a free port and probes
// /metrics, /waitsfor, /trace and the pprof index.
func TestServerEndpoints(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan(PhaseExecute, 0, "T1", "")
	sp.End()
	reg := NewRegistry()
	reg.Counter("commits", "", func() int64 { return 7 })
	reg.RegisterPhases(tr)

	srv, err := StartServer(ServerOptions{
		Addr:     "localhost:0",
		Registry: reg,
		WaitsFor: func() string { return "digraph waitsfor {\n  \"T1\" -> \"T2\";\n}\n" },
		Trace:    func() ([]SpanRecord, time.Time) { return tr.Snapshot(), tr.Epoch() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "objectbase_commits_total 7") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/waitsfor"); code != 200 || !strings.Contains(body, `"T1" -> "T2"`) {
		t.Fatalf("/waitsfor: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/trace"); code != 200 || !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/trace: code=%d body=%q", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}

// TestServerNoWaitsFor leaves the DOT source unset; /waitsfor must 404
// rather than panic.
func TestServerNoWaitsFor(t *testing.T) {
	srv, err := StartServer(ServerOptions{Addr: "localhost:0", Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/waitsfor"); code != 404 {
		t.Fatalf("/waitsfor without source: code=%d, want 404", code)
	}
}
