package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace_event JSON (the "JSON Array Format" wrapped in an object
// with a traceEvents key, as chrome://tracing and Perfetto load it).
// Complete spans use ph "X", instant events ph "i"; timestamps and
// durations are microseconds. pid distinguishes trace sources (obsim
// uses one pid per load cell), tid is the flight-recorder ring.

// TraceEvent is one chrome://tracing event.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceFile is the on-disk trace container.
type TraceFile struct {
	TraceEvents []TraceEvent      `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// ToTraceEvents converts drained span records into trace events.
// epoch is the tracer's wall-clock base (span starts are relative to
// it); pid labels this span source.
func ToTraceEvents(spans []SpanRecord, epoch time.Time, pid int) []TraceEvent {
	base := float64(epoch.UnixNano()) / 1e3 // µs
	evs := make([]TraceEvent, 0, len(spans))
	for _, sp := range spans {
		ev := TraceEvent{
			Name: sp.Phase.String(),
			Cat:  "phase",
			Ts:   base + float64(sp.Start)/1e3,
			Pid:  pid,
			Tid:  sp.Ring,
		}
		if sp.Instant {
			ev.Ph, ev.S = "i", "t"
		} else {
			ev.Ph = "X"
			ev.Dur = float64(sp.Dur) / 1e3
		}
		args := map[string]string{}
		if sp.Exec != "" {
			args["exec"] = sp.Exec
		}
		if sp.Object != "" {
			args["object"] = sp.Object
		}
		if sp.Outcome != "" {
			args["outcome"] = sp.Outcome
		}
		if len(args) > 0 {
			ev.Args = args
		}
		evs = append(evs, ev)
	}
	return evs
}

// WriteTrace renders a trace file as JSON.
func WriteTrace(w io.Writer, tf *TraceFile) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// ReadTrace parses a trace file previously written by WriteTrace (or
// any traceEvents-keyed chrome trace).
func ReadTrace(r io.Reader) (*TraceFile, error) {
	var tf TraceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("parse trace: %w", err)
	}
	return &tf, nil
}
