package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The log-linear bucket layout is shared with internal/load's
// single-writer Histogram: each power of two splits into 32 linear
// sub-buckets, so quantile estimates carry at most ~3% relative error at
// any magnitude with a fixed footprint and O(1) recording. load's
// Histogram delegates to BucketIndex/BucketUpper, so the two histogram
// kinds (single-writer for the harness, atomic here for the tracer) stay
// bucket-compatible.

const (
	// HistSubBits sets the linear resolution: 2^HistSubBits sub-buckets
	// per power of two.
	HistSubBits = 5
	// HistSubBkts is the number of linear sub-buckets per power of two.
	HistSubBkts = 1 << HistSubBits
	// HistGroups covers exponents HistSubBits..62 plus the linear group
	// for values below HistSubBkts.
	HistGroups = 63 - HistSubBits + 1
	// HistBuckets is the total bucket count.
	HistBuckets = HistGroups * HistSubBkts
)

// BucketIndex maps a non-negative value to its bucket.
func BucketIndex(v int64) int {
	if v < HistSubBkts {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // 2^exp <= v < 2^(exp+1)
	g := exp - (HistSubBits - 1)     // group 1 is exponent HistSubBits
	sub := int(v>>(exp-HistSubBits)) - HistSubBkts
	return g*HistSubBkts + sub
}

// BucketUpper returns the largest value the bucket holds.
func BucketUpper(idx int) int64 {
	g, sub := idx/HistSubBkts, idx%HistSubBkts
	if g == 0 {
		return int64(sub)
	}
	return int64(HistSubBkts+sub+1)<<(g-1) - 1
}

// Hist is the concurrent variant of the log-linear histogram: every
// field is atomic, so any number of goroutines may Record while others
// Snapshot. Values are nanoseconds.
type Hist struct {
	counts [HistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHist returns an empty concurrent histogram.
func NewHist() *Hist {
	h := &Hist{}
	h.reset()
	return h
}

func (h *Hist) reset() {
	h.min.Store(math.MaxInt64)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations so far.
func (h *Hist) Count() uint64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a Hist, safe to read without
// synchronisation. Concurrent recording makes the copy slightly fuzzy
// (buckets are read one by one); Count is recomputed from the copied
// buckets so quantile ranks are internally consistent.
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Count  uint64
	Sum    int64
	Min    int64
	Max    int64
}

// Snapshot copies the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	if s.Count == 0 {
		s.Min, s.Max, s.Sum = 0, 0, 0
	}
	return s
}

// Mean returns the exact average of the snapshot.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Quantile returns the latency at quantile q in [0, 1], to within the
// bucket resolution (the bucket's upper bound, clamped to the exact
// extremes).
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(s.Min)
	}
	if q >= 1 {
		return time.Duration(s.Max)
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			v := BucketUpper(i)
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.Max)
}
