package core

import (
	"strconv"
	"strings"
)

// EnvironmentObject is the name of the distinguished "environment" object
// (Definition 1). Top-level method executions — the users' transactions —
// are methods of this fictitious object; they are the executions with no
// parent (Definition 6, condition 1).
const EnvironmentObject = "environment"

// ExecID identifies a method execution by its path in the invocation forest:
// the i-th top-level transaction has ID [i], and the k-th message sent by an
// execution with ID p creates the child execution append(p, k).
//
// This single mechanism serves three of the paper's constructs at once:
//
//   - the forest structure induced by B (Definition 5): parenthood is "drop
//     the last component" and ancestry is the prefix relation;
//   - rule 2 of N2PL (Section 5.1), which must decide whether a lock holder
//     is an ancestor of the requester;
//   - Reed's hierarchical timestamps (Section 5.2): hts(e) is exactly the
//     path, ordered lexicographically (see internal/hts), because children
//     receive consecutive counter values in message order.
type ExecID []int32

// RootID returns the ID of the n-th top-level transaction.
func RootID(n int32) ExecID { return ExecID{n} }

// Child returns the ID of this execution's k-th child.
func (id ExecID) Child(k int32) ExecID {
	out := make(ExecID, len(id)+1)
	copy(out, id)
	out[len(id)] = k
	return out
}

// Parent returns the ID of the parent execution, or nil for a top-level
// execution.
func (id ExecID) Parent() ExecID {
	if len(id) <= 1 {
		return nil
	}
	return id[:len(id)-1]
}

// Level is the number of proper ancestors: 0 for top-level executions,
// matching the level notion used in the proof of Theorem 2.
func (id ExecID) Level() int { return len(id) - 1 }

// Top returns the ID of the top-level ancestor.
func (id ExecID) Top() ExecID {
	if len(id) == 0 {
		return nil
	}
	return id[:1]
}

// IsAncestorOf reports whether id is an ancestor of other. Following the
// paper, every execution is an ancestor of itself.
func (id ExecID) IsAncestorOf(other ExecID) bool {
	if len(id) > len(other) {
		return false
	}
	for i, c := range id {
		if other[i] != c {
			return false
		}
	}
	return true
}

// IsProperAncestorOf reports whether id is an ancestor of other and not
// other itself.
func (id ExecID) IsProperAncestorOf(other ExecID) bool {
	return len(id) < len(other) && id.IsAncestorOf(other)
}

// Comparable reports whether one of the two executions is an ancestor of
// the other ("comparable" in the paper's terminology; Definition 5 comment).
func (id ExecID) Comparable(other ExecID) bool {
	return id.IsAncestorOf(other) || other.IsAncestorOf(id)
}

// Equal reports whether the two IDs denote the same execution.
func (id ExecID) Equal(other ExecID) bool {
	return len(id) == len(other) && id.IsAncestorOf(other)
}

// LCA returns the least common ancestor of the two executions and true, or
// nil and false when none exists (the executions belong to different
// top-level transactions; in the paper's terms, their only common "ancestor"
// is the environment, which is not a method execution in E).
func LCA(a, b ExecID) (ExecID, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i == 0 {
		return nil, false
	}
	return a[:i], true
}

// String renders the ID as a dotted path, e.g. "3.1.2".
func (id ExecID) String() string {
	if len(id) == 0 {
		return "ε"
	}
	parts := make([]string, len(id))
	for i, c := range id {
		parts[i] = strconv.FormatInt(int64(c), 10)
	}
	return strings.Join(parts, ".")
}

// Key returns a map-key form of the ID.
func (id ExecID) Key() string { return id.String() }

// Compare orders two IDs lexicographically with prefix-precedes-extension,
// which is exactly the total order on hierarchical timestamps in Section
// 5.2. It returns -1, 0 or +1.
func (id ExecID) Compare(other ExecID) int {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if id[i] != other[i] {
			if id[i] < other[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(id) < len(other):
		return -1
	case len(id) > len(other):
		return 1
	default:
		return 0
	}
}

// MethodExec is the record of one method execution (Definition 4) within a
// history: the object and method it belongs to, its position in the
// invocation forest, and its termination status. The execution's steps are
// stored in the History, keyed by this record's ID.
type MethodExec struct {
	ID     ExecID
	Object string // object the method belongs to; EnvironmentObject for top-level
	Method string
	// Aborted records that the execution terminated with the Abort
	// operation (Section 3, "Transaction Failures"). Abort semantics (b)
	// requires descendants of an aborted execution to be aborted as well;
	// History.CheckAbortClosure verifies it.
	Aborted bool
	// Children lists child executions in message order. Children[k] was
	// created by the execution's k-th message step, so B is recoverable
	// from the tree structure.
	Children []ExecID
}

// IsTopLevel reports whether the execution has no parent.
func (m *MethodExec) IsTopLevel() bool { return len(m.ID) == 1 }
