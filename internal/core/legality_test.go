package core

import (
	"strings"
	"testing"
)

// buildSimpleHistory: two top-level transactions, each calling a method on
// object A that reads and writes a register, serially interleaved.
func buildSimpleHistory(t *testing.T) *History {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{"x": int64(0)})

	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "bump")
	v := b.Local(m1, "A", "Read", "x")
	b.Local(m1, "A", "Write", "x", v.(int64)+1)
	b.Return(m1, nil)

	t2 := b.Top("T2")
	m2 := b.Call(t2, "A", "bump")
	v2 := b.Local(m2, "A", "Read", "x")
	b.Local(m2, "A", "Write", "x", v2.(int64)+1)
	b.Return(m2, nil)

	h, err := b.Finish()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return h
}

func TestLegalHistoryPasses(t *testing.T) {
	h := buildSimpleHistory(t)
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("legal history rejected: %v", err)
	}
	if got := h.FinalStates["A"]["x"]; got != int64(2) {
		t.Fatalf("final x = %v, want 2", got)
	}
	if h.StepCount() != 4 {
		t.Fatalf("step count = %d, want 4", h.StepCount())
	}
}

func TestIllegalReturnValueCaught(t *testing.T) {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{"x": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "m")
	// Record a Read returning 42 although x is 0: condition 3 violated.
	b.ForceLocal(m1, "A", "Read", int64(42), "x")
	h, err := b.Finish()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	err = h.CheckLegal()
	if err == nil || !strings.Contains(err.Error(), "replay") {
		t.Fatalf("want replay violation, got %v", err)
	}
}

func TestTopLevelMustBelongToEnvironment(t *testing.T) {
	h := buildSimpleHistory(t)
	// Corrupt: make a top-level execution claim to belong to object A.
	h.Execs[RootID(0).Key()].Object = "A"
	if err := h.CheckLegal(); err == nil || !strings.Contains(err.Error(), "environment") {
		t.Fatalf("want environment violation, got %v", err)
	}
}

func TestAbortClosureViolationCaught(t *testing.T) {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{"x": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "m")
	b.Local(m1, "A", "Read", "x")
	b.Return(m1, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Abort the parent but not the child: semantics (b) violated.
	h.Execs[t1.Key()].Aborted = true
	if err := h.CheckLegal(); err == nil || !strings.Contains(err.Error(), "abort semantics (b)") {
		t.Fatalf("want abort closure violation, got %v", err)
	}
}

func TestAbortedExecutionHasNoEffect(t *testing.T) {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{"x": int64(0)})

	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "write")
	b.Local(m1, "A", "Write", "x", int64(7))
	// Abort it: builder undoes the write, so x returns to 0.
	b.AbortExec(m1)

	t2 := b.Top("T2")
	m2 := b.Call(t2, "A", "read")
	v := b.Local(m2, "A", "Read", "x")
	b.Return(m2, v)

	h, err := b.Finish()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if v != int64(0) {
		t.Fatalf("read after aborted write = %v, want 0", v)
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history with clean abort rejected: %v", err)
	}
	if got := h.FinalStates["A"]["x"]; got != int64(0) {
		t.Fatalf("final x = %v, want 0 (abort semantics (a))", got)
	}
	// The aborted exec's step is excluded from effective steps.
	if n := len(h.EffectiveSteps("A")); n != 1 {
		t.Fatalf("effective steps = %d, want 1", n)
	}
	// t1 itself committed (only m1 aborted): parent of an aborted child
	// survives.
	if h.Aborted(t1) {
		t.Fatalf("parent must survive child abort")
	}
}

func TestDirtyReadCaughtByOracle(t *testing.T) {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{"x": int64(0)})

	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "write")
	b.Local(m1, "A", "Write", "x", int64(7))
	b.Return(m1, nil)

	// T2 reads the dirty 7 and commits.
	t2 := b.Top("T2")
	m2 := b.Call(t2, "A", "read")
	b.Local(m2, "A", "Read", "x") // returns 7
	b.Return(m2, nil)

	// Now T1 aborts: T2's committed read of 7 is inconsistent.
	b.AbortExec(t1)

	h, err := b.Finish()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := h.CheckLegal(); err == nil {
		t.Fatalf("dirty read must be flagged by the oracle")
	}
}

func TestMessageToAndAncestorMessage(t *testing.T) {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{"x": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "outer")
	inner := b.Call(m1, "A", "inner")
	b.Local(inner, "A", "Read", "x")
	b.Return(inner, nil)
	b.Return(m1, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	msg, k, err := h.MessageTo(inner)
	if err != nil || k != 0 || !msg.Child.Equal(inner) {
		t.Fatalf("MessageTo(inner) = %v,%d,%v", msg, k, err)
	}
	am, err := h.AncestorMessage(t1, inner)
	if err != nil || !am.Child.Equal(m1) {
		t.Fatalf("AncestorMessage(t1,inner) = %v,%v", am, err)
	}
	if _, _, err := h.MessageTo(t1); err == nil {
		t.Fatalf("top-level exec has no creating message")
	}
	if _, err := h.AncestorMessage(inner, t1); err == nil {
		t.Fatalf("AncestorMessage with non-ancestor must fail")
	}
}

func TestNestingIntervals(t *testing.T) {
	h := buildSimpleHistory(t)
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	// Corrupt: move a child's step outside its creating message interval.
	m1 := RootID(0).Child(0)
	h.LocalSteps[m1.Key()][0].At = 10_000
	if err := h.CheckLegal(); err == nil || !strings.Contains(err.Error(), "escape") {
		t.Fatalf("want nesting violation, got %v", err)
	}
}

func TestReplayObjectDetectsBadSequence(t *testing.T) {
	sc := testRegisterSchema()
	steps := []*Step{
		{Object: "A", Info: StepInfo{Op: "Write", Args: []Value{"x", int64(5)}, Ret: nil}},
		{Object: "A", Info: StepInfo{Op: "Read", Args: []Value{"x"}, Ret: int64(6)}}, // wrong
	}
	if _, err := ReplayObject(sc, State{}, steps); err == nil {
		t.Fatalf("want return-value mismatch")
	}
	steps[1].Info.Ret = int64(5)
	final, err := ReplayObject(sc, State{}, steps)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if final["x"] != int64(5) {
		t.Fatalf("final = %v", final)
	}
}

func TestHistoryAccessors(t *testing.T) {
	h := buildSimpleHistory(t)
	execs := h.AllExecs()
	if len(execs) != 4 {
		t.Fatalf("AllExecs = %d, want 4 (2 tops + 2 methods)", len(execs))
	}
	for i := 1; i < len(execs); i++ {
		if execs[i-1].ID.Compare(execs[i].ID) >= 0 {
			t.Fatalf("AllExecs not sorted")
		}
	}
	if names := h.ObjectNames(); len(names) != 1 || names[0] != "A" {
		t.Fatalf("ObjectNames = %v", names)
	}
	roots := h.CommittedTopLevel()
	if len(roots) != 2 {
		t.Fatalf("CommittedTopLevel = %v", roots)
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{})
	b.Local(ExecID{9}, "A", "Read", "x") // unknown exec
	if _, err := b.Finish(); err == nil {
		t.Fatalf("want builder error for unknown exec")
	}

	b2 := NewBuilder()
	t1 := b2.Top("T1")
	b2.Local(t1, "nosuch", "Read", "x")
	if _, err := b2.Finish(); err == nil {
		t.Fatalf("want builder error for unknown object")
	}

	b3 := NewBuilder()
	b3.Object("A", testRegisterSchema(), State{})
	t3 := b3.Top("T1")
	b3.Return(t3, nil) // no open message
	if _, err := b3.Finish(); err == nil {
		t.Fatalf("want builder error for Return without Call")
	}
}
