package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRWTableScoping(t *testing.T) {
	rel := RWTable([]string{"Read"}, []string{"Write"}, nil)
	rx := OpInvocation{Op: "Read", Args: []Value{"x"}}
	ry := OpInvocation{Op: "Read", Args: []Value{"y"}}
	wx := OpInvocation{Op: "Write", Args: []Value{"x", int64(1)}}
	wy := OpInvocation{Op: "Write", Args: []Value{"y", int64(2)}}

	cases := []struct {
		a, b OpInvocation
		want bool
	}{
		{rx, rx, false}, // reads commute
		{rx, ry, false},
		{rx, wx, true},
		{wx, rx, true},
		{wx, wx, true},
		{rx, wy, false}, // different variables
		{wx, wy, false},
	}
	for _, c := range cases {
		if got := rel.OpConflicts(c.a, c.b); got != c.want {
			t.Errorf("OpConflicts(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTableConflictRefine(t *testing.T) {
	// A toy step-granularity refinement: "Put" and "Take" conflict only
	// when the Take returned the value the Put inserted (the paper's
	// Enqueue/Dequeue observation in Section 5.1).
	rel := &TableConflict{
		Pairs: SymmetricPairs([2]string{"Put", "Take"}),
		Key:   SingleKey,
		Refine: func(a, b StepInfo) bool {
			var put, take StepInfo
			switch {
			case a.Op == "Put" && b.Op == "Take":
				put, take = a, b
			case a.Op == "Take" && b.Op == "Put":
				put, take = b, a
			default:
				return true
			}
			return ValueEqual(take.Ret, put.Args[0])
		},
	}
	put5 := StepInfo{Op: "Put", Args: []Value{int64(5)}}
	takeGot5 := StepInfo{Op: "Take", Ret: int64(5)}
	takeGot9 := StepInfo{Op: "Take", Ret: int64(9)}

	if !rel.OpConflicts(put5.Invocation(), takeGot5.Invocation()) {
		t.Errorf("operation granularity must be conservative: Put/Take conflict")
	}
	if !rel.StepConflicts(put5, takeGot5) {
		t.Errorf("Take returning the Put's item must conflict")
	}
	if rel.StepConflicts(put5, takeGot9) {
		t.Errorf("Take returning another item must not conflict at step granularity")
	}
}

func TestTotalConflict(t *testing.T) {
	rel := TotalConflict{}
	a := OpInvocation{Op: "anything"}
	if !rel.OpConflicts(a, a) || !rel.StepConflicts(StepInfo{}, StepInfo{}) {
		t.Errorf("TotalConflict must conflict everything")
	}
}

// Property: the declared register conflict relation is sound per
// Definition 3 — VerifyConflictSoundness finds no violation on random
// states and invocations.
func TestRegisterConflictSoundness(t *testing.T) {
	sc := testRegisterSchema()
	vars := []string{"x", "y", "z"}
	r := rand.New(rand.NewSource(11))
	randInv := func() OpInvocation {
		v := vars[r.Intn(len(vars))]
		if r.Intn(2) == 0 {
			return OpInvocation{Op: "Read", Args: []Value{v}}
		}
		return OpInvocation{Op: "Write", Args: []Value{v, int64(r.Intn(100))}}
	}
	f := func() bool {
		s := State{}
		for _, v := range vars {
			if r.Intn(2) == 0 {
				s[v] = int64(r.Intn(100))
			}
		}
		a, b := randInv(), randInv()
		if err := VerifyConflictSoundness(sc, s, a, b); err != nil {
			t.Logf("%v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: counter Incs commute, Inc/Get conflict — and the declaration is
// sound.
func TestCounterConflictSoundness(t *testing.T) {
	sc := testCounterSchema()
	r := rand.New(rand.NewSource(13))
	ops := []string{"Inc", "Get"}
	f := func() bool {
		s := State{"n": int64(r.Intn(50))}
		a := OpInvocation{Op: ops[r.Intn(2)]}
		b := OpInvocation{Op: ops[r.Intn(2)]}
		if err := VerifyConflictSoundness(sc, s, a, b); err != nil {
			t.Logf("%v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if sc.Conflicts.OpConflicts(OpInvocation{Op: "Inc"}, OpInvocation{Op: "Inc"}) {
		t.Errorf("Incs must commute")
	}
	if !sc.Conflicts.OpConflicts(OpInvocation{Op: "Inc"}, OpInvocation{Op: "Get"}) {
		t.Errorf("Inc/Get must conflict")
	}
}

// VerifyConflictSoundness must catch an unsound declaration: a relation
// claiming Write/Write commute is wrong (second write's effect differs).
func TestVerifySoundnessCatchesBadRelation(t *testing.T) {
	sc := testRegisterSchema()
	sc.Conflicts = &TableConflict{Pairs: map[[2]string]bool{}} // nothing conflicts: unsound
	s := State{"x": int64(0)}
	w1 := OpInvocation{Op: "Write", Args: []Value{"x", int64(1)}}
	w2 := OpInvocation{Op: "Write", Args: []Value{"x", int64(2)}}
	if err := VerifyConflictSoundness(sc, s, w1, w2); err == nil {
		t.Fatalf("expected soundness violation for commuting-writes declaration")
	}
	// Read/Write also unsound: the read's return value changes.
	rx := OpInvocation{Op: "Read", Args: []Value{"x"}}
	if err := VerifyConflictSoundness(sc, s, rx, w1); err == nil {
		t.Fatalf("expected soundness violation for commuting read/write declaration")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{int64(1), int64(1), true},
		{int64(1), int64(2), false},
		{"a", "a", true},
		{nil, nil, true},
		{nil, int64(0), false},
		{[]Value{int64(1), "x"}, []Value{int64(1), "x"}, true},
		{[]Value{int64(1)}, []Value{int64(1), int64(2)}, false},
		{[]Value{[]Value{int64(1)}}, []Value{[]Value{int64(1)}}, true},
		{[]Value{int64(1)}, int64(1), false},
	}
	for _, c := range cases {
		if got := ValueEqual(c.a, c.b); got != c.want {
			t.Errorf("ValueEqual(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStateCloneEqual(t *testing.T) {
	s := State{"x": int64(1), "lst": []Value{int64(1), int64(2)}}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatalf("clone not equal: %s vs %s", s, c)
	}
	c["x"] = int64(9)
	if s.Equal(c) {
		t.Fatalf("clone aliases original scalar")
	}
	c2 := s.Clone()
	c2["lst"].([]Value)[0] = int64(99)
	if s["lst"].([]Value)[0] != int64(1) {
		t.Fatalf("clone aliases nested slice")
	}
	if s.Equal(State{"x": int64(1)}) {
		t.Fatalf("states with different domains must differ")
	}
}
