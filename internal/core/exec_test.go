package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExecIDFamily(t *testing.T) {
	root := RootID(3)
	if got := root.String(); got != "3" {
		t.Errorf("root.String() = %q, want 3", got)
	}
	c := root.Child(1)
	gc := c.Child(2)
	if gc.String() != "3.1.2" {
		t.Errorf("gc = %s, want 3.1.2", gc)
	}
	if !root.IsAncestorOf(gc) || !root.IsProperAncestorOf(gc) {
		t.Errorf("root should be proper ancestor of %s", gc)
	}
	if !gc.IsAncestorOf(gc) {
		t.Errorf("every exec is an ancestor of itself")
	}
	if gc.IsProperAncestorOf(gc) {
		t.Errorf("no exec is a proper ancestor of itself")
	}
	if gc.IsAncestorOf(root) {
		t.Errorf("descendant is not an ancestor")
	}
	if p := gc.Parent(); !p.Equal(c) {
		t.Errorf("Parent(%s) = %s, want %s", gc, p, c)
	}
	if p := root.Parent(); p != nil {
		t.Errorf("Parent(root) = %v, want nil", p)
	}
	if root.Level() != 0 || gc.Level() != 2 {
		t.Errorf("levels: root=%d gc=%d", root.Level(), gc.Level())
	}
	if top := gc.Top(); !top.Equal(root) {
		t.Errorf("Top(%s) = %s", gc, top)
	}
}

func TestExecIDComparable(t *testing.T) {
	a := RootID(0).Child(1)
	b := RootID(0).Child(2)
	if a.Comparable(b) {
		t.Errorf("siblings %s,%s must be incomparable", a, b)
	}
	if !a.Comparable(a.Child(0)) {
		t.Errorf("parent/child must be comparable")
	}
	if RootID(0).Comparable(RootID(1)) {
		t.Errorf("distinct roots incomparable")
	}
}

func TestLCA(t *testing.T) {
	r := RootID(5)
	a := r.Child(0).Child(1)
	b := r.Child(0).Child(2)
	c := r.Child(3)
	if l, ok := LCA(a, b); !ok || !l.Equal(r.Child(0)) {
		t.Errorf("LCA(%s,%s) = %v,%v", a, b, l, ok)
	}
	if l, ok := LCA(a, c); !ok || !l.Equal(r) {
		t.Errorf("LCA(%s,%s) = %v,%v", a, c, l, ok)
	}
	if _, ok := LCA(RootID(0), RootID(1)); ok {
		t.Errorf("LCA across roots must not exist")
	}
	// lca of an execution and its descendant is the execution itself.
	if l, ok := LCA(r, a); !ok || !l.Equal(r) {
		t.Errorf("LCA(anc,desc) = %v,%v", l, ok)
	}
}

func TestExecIDCompareLexicographic(t *testing.T) {
	cases := []struct {
		a, b ExecID
		want int
	}{
		{ExecID{1}, ExecID{2}, -1},
		{ExecID{2}, ExecID{1}, 1},
		{ExecID{1}, ExecID{1}, 0},
		{ExecID{1}, ExecID{1, 0}, -1}, // prefix precedes extension
		{ExecID{1, 5}, ExecID{1, 0, 9}, 1},
		{ExecID{1, 0, 9}, ExecID{1, 5}, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randomExecID(r *rand.Rand) ExecID {
	depth := 1 + r.Intn(4)
	id := make(ExecID, depth)
	for i := range id {
		id[i] = int32(r.Intn(4))
	}
	return id
}

// Property: Compare is a strict total order consistent with ancestry (an
// ancestor precedes its proper descendants) — the property rule 2 of NTO
// relies on.
func TestExecIDCompareProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b, c := randomExecID(r), randomExecID(r), randomExecID(r)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Transitivity.
		if a.Compare(b) < 0 && b.Compare(c) < 0 && a.Compare(c) >= 0 {
			return false
		}
		// Reflexivity of equality.
		if a.Compare(a) != 0 {
			return false
		}
		// Ancestor precedes descendant.
		if a.IsProperAncestorOf(b) && a.Compare(b) >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: LCA really is the least common ancestor.
func TestLCAProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		a, b := randomExecID(r), randomExecID(r)
		l, ok := LCA(a, b)
		if !ok {
			return a[0] != b[0]
		}
		if !l.IsAncestorOf(a) || !l.IsAncestorOf(b) {
			return false
		}
		// No proper descendant of l is a common ancestor: the child of l
		// toward a differs from the child toward b unless one path ended.
		if len(l) < len(a) && len(l) < len(b) {
			return a[len(l)] != b[len(l)]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
