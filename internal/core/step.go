package core

import "fmt"

// Tick is a point on the global clock used to record the temporal order <
// of Definition 5. The runtime engine draws ticks from one atomic counter;
// hand-built histories assign them through the Builder.
//
// A local step occupies a single instant (Start == End) because local
// operations are atomic (Definition 2 comment). A message step spans the
// interval from its send to the return of the invoked method, so that
// condition 2(c) of legality — a message is "a surrogate for everything
// that happens under it" — is visible in the record: every descendant
// step's interval nests inside its ancestor message step's interval.
//
// t < t' (t completed before t' was initiated) is then End(t) < Start(t').
type Tick int64

// Step records one local step (a, v) of a history: which execution issued
// it, on which object, the completed StepInfo, and its position both on the
// global clock and in the object's chosen linearisation.
type Step struct {
	Exec   ExecID
	Object string
	Info   StepInfo
	// At is the instant the step was applied (Start == End for local
	// steps).
	At Tick
	// ObjSeq is the step's position in the linearisation of the object's
	// local steps that the history records (condition 3 of Definition 6
	// requires some legal topological sort; the engine records the order
	// in which steps were applied under the object's latch, which is one).
	ObjSeq int
	// Lane identifies the intra-execution thread that issued the step;
	// steps of the same execution are programme-ordered (related by the
	// method's partial order from Definition 4) only as witnessed by
	// lanes and ticks; see History.ProgramOrdered.
	Lane int
	// Snap marks a read-only step served from a committed snapshot (the
	// MVCC fast path). Such steps are recorded with ObjSeq equal to the
	// version's publication watermark — the position *before* the
	// regular step carrying the same ObjSeq — so replaying the object's
	// linearisation feeds them exactly the committed prefix they
	// observed. SnapSeq is the snapshot's global commit sequence number;
	// it totally orders snapshot reads that share a watermark, keeping
	// the serialisation graph acyclic even for schemas whose observers
	// are declared mutually conflicting.
	Snap    bool
	SnapSeq uint64
}

func (s *Step) String() string {
	return fmt.Sprintf("[%s@%s %s #%d]", s.Exec, s.Object, s.Info, s.ObjSeq)
}

// StepLess orders an object's recorded steps into the linearisation the
// analyses consume: primarily by ObjSeq; snapshot reads sort before the
// regular step sharing their watermark (they observed the state *before*
// it), ordered among themselves by snapshot sequence, then by top-level
// transaction (so two snapshot transactions interleave identically on
// every object), then by tick.
func StepLess(a, b *Step) bool {
	if a.ObjSeq != b.ObjSeq {
		return a.ObjSeq < b.ObjSeq
	}
	if a.Snap != b.Snap {
		return a.Snap
	}
	if a.Snap {
		if a.SnapSeq != b.SnapSeq {
			return a.SnapSeq < b.SnapSeq
		}
		if c := a.Exec.Top().Compare(b.Exec.Top()); c != 0 {
			return c < 0
		}
	}
	return a.At < b.At
}

// MessageStep records one message step (m, v): the sending execution, the
// created child execution (B(t)), the target object and method, arguments,
// and the return value observed by the sender.
type MessageStep struct {
	Exec   ExecID // sender
	Child  ExecID // B(t): the method execution this message created
	Object string // recipient object
	Method string
	Args   []Value
	Ret    Value
	// ChildAborted mirrors the paper's treatment of failures: "the fact
	// that a method execution, invoked by message m, was aborted will be
	// reflected in the return value of m".
	ChildAborted bool
	Start, End   Tick
	Lane         int
}

func (m *MessageStep) String() string {
	status := ""
	if m.ChildAborted {
		status = "!abort"
	}
	return fmt.Sprintf("[%s→%s.%s child=%s%s]", m.Exec, m.Object, m.Method, m.Child, status)
}
