package core

import "fmt"

// testRegisterSchema returns a schema with per-variable Read/Write
// operations and the classical RW conflict table, used throughout the core
// tests.
func testRegisterSchema() *Schema {
	read := &Operation{
		Name:     "Read",
		ReadOnly: true,
		Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			name, ok := args[0].(string)
			if !ok {
				return nil, nil, fmt.Errorf("Read: want string variable name, got %T", args[0])
			}
			return s[name], nil, nil
		},
	}
	write := &Operation{
		Name: "Write",
		Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			name, ok := args[0].(string)
			if !ok {
				return nil, nil, fmt.Errorf("Write: want string variable name, got %T", args[0])
			}
			old, had := s[name]
			s[name] = args[1]
			return nil, func(st State) {
				if had {
					st[name] = old
				} else {
					delete(st, name)
				}
			}, nil
		},
	}
	rel := RWTable([]string{"Read"}, []string{"Write"}, nil)
	return NewSchema("register", func() State { return State{} }, rel, read, write)
}

// testCounterSchema returns a schema demonstrating semantic (non-RW)
// conflicts: Inc returns nothing, so two Incs commute (unlike two writes),
// while Inc and Get conflict in both orders.
func testCounterSchema() *Schema {
	inc := &Operation{
		Name: "Inc",
		Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			n, _ := s["n"].(int64)
			s["n"] = n + 1
			return nil, func(st State) {
				cur, _ := st["n"].(int64)
				st["n"] = cur - 1
			}, nil
		},
	}
	get := &Operation{
		Name:     "Get",
		ReadOnly: true,
		Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			n, _ := s["n"].(int64)
			return n, nil, nil
		},
	}
	rel := &TableConflict{
		Pairs: SymmetricPairs([2]string{"Inc", "Get"}),
		Key:   SingleKey,
	}
	return NewSchema("counter", func() State { return State{"n": int64(0)} }, rel, inc, get)
}
