package core

import (
	"strings"
	"testing"
)

func testDerivedRegister() *DerivedRelation {
	return &DerivedRelation{
		Ops: []string{"Read", "Write"},
		Pairs: map[[2]string]DerivedVerdict{
			{"Write", "Write"}: {Keyed: true},
			{"Write", "Read"}:  {Keyed: true},
			{"Read", "Write"}:  {Keyed: true},
		},
	}
}

func TestDerivedRelationVerdicts(t *testing.T) {
	rel := testDerivedRegister()
	inv := func(op string, args ...Value) OpInvocation { return OpInvocation{Op: op, Args: args} }

	if rel.OpConflicts(inv("Read", "x"), inv("Read", "x")) {
		t.Error("Read/Read: absent pair must not conflict")
	}
	if !rel.OpConflicts(inv("Write", "x", int64(1)), inv("Write", "x", int64(2))) {
		t.Error("Write/Write same key must conflict")
	}
	if rel.OpConflicts(inv("Write", "x", int64(1)), inv("Write", "y", int64(1))) {
		t.Error("Write/Write distinct keys must not conflict")
	}
	if !rel.OpConflicts(inv("Read", "x"), inv("Unknown")) {
		t.Error("unknown operation must conservatively conflict")
	}
	// Missing key arguments fall in one scope: conservative conflict.
	if !rel.OpConflicts(inv("Write"), inv("Write")) {
		t.Error("missing key arguments must conservatively conflict")
	}

	total := &DerivedRelation{Ops: []string{"A"}, Pairs: map[[2]string]DerivedVerdict{{"A", "A"}: {}}}
	if !total.OpConflicts(inv("A", int64(1)), inv("A", int64(2))) {
		t.Error("unkeyed verdict must conflict regardless of arguments")
	}
}

func TestDerivedRelationSharded(t *testing.T) {
	rel := testDerivedRegister().Sharded(0)
	if got := rel.ShardKey("Write", []Value{"x", int64(1)}); got != "x" {
		t.Errorf("ShardKey = %v, want x", got)
	}
	if got := rel.ShardKey("Read", nil); got != nil {
		t.Errorf("ShardKey with no args = %v, want nil", got)
	}
	// The sharded wrapper still answers conflicts like the base relation.
	if rel.OpConflicts(OpInvocation{Op: "Write", Args: []Value{"x"}}, OpInvocation{Op: "Write", Args: []Value{"y"}}) {
		t.Error("sharded wrapper changed the relation")
	}

	defer func() {
		if recover() == nil {
			t.Error("Sharded must panic when a pair is not keyed on the shard argument")
		}
	}()
	(&DerivedRelation{Ops: []string{"A"}, Pairs: map[[2]string]DerivedVerdict{{"A", "A"}: {}}}).Sharded(0)
}

func TestRefine(t *testing.T) {
	base := testDerivedRegister().Sharded(0)
	rel := Refine(base, func(a, b StepInfo) bool { return a.Ret != nil })

	a := StepInfo{Op: "Write", Args: []Value{"x", int64(1)}}
	b := StepInfo{Op: "Write", Args: []Value{"x", int64(2)}}
	if !rel.OpConflicts(a.Invocation(), b.Invocation()) {
		t.Error("Refine must not change OpConflicts")
	}
	if rel.StepConflicts(a, b) {
		t.Error("refinement (Ret != nil) must drop the step conflict")
	}
	a.Ret = int64(7)
	if !rel.StepConflicts(a, b) {
		t.Error("refinement must keep the step conflict when it returns true")
	}

	s, ok := rel.(Sharder)
	if !ok {
		t.Fatal("refining a Sharder must preserve Sharder")
	}
	if got := s.ShardKey("Write", []Value{"x"}); got != "x" {
		t.Errorf("refined ShardKey = %v, want x", got)
	}
	if _, ok := Refine(TotalConflict{}, func(a, b StepInfo) bool { return true }).(Sharder); ok {
		t.Error("refining a non-Sharder must not invent a shard key")
	}
}

// brokenUndoSchema declares Inc/Inc commuting (true at the state level) but
// gives Inc an undo that zeroes the counter instead of subtracting — the
// undo-commutativity obligation must catch it.
func brokenUndoSchema() *Schema {
	inc := &Operation{
		Name: "Inc",
		Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			n, _ := s["n"].(int64)
			s["n"] = n + 1
			return nil, func(st State) { st["n"] = int64(0) }, nil
		},
	}
	return NewSchema("brokenundo", func() State { return State{"n": int64(0)} },
		&DerivedRelation{Ops: []string{"Inc"}, Pairs: map[[2]string]DerivedVerdict{}}, inc)
}

func TestVerifyCommutativitySoundness(t *testing.T) {
	// The honest counter: Inc/Inc is declared commuting and genuinely
	// commutes, undo included.
	sc := testCounterSchema()
	ran, err := VerifyCommutativitySoundness(sc, sc.NewState(),
		OpInvocation{Op: "Inc"}, OpInvocation{Op: "Inc"})
	if err != nil {
		t.Fatalf("counter Inc/Inc: %v", err)
	}
	if !ran {
		t.Fatal("counter Inc/Inc: witness did not run")
	}

	// Declared conflicting pairs carry no obligation.
	ran, err = VerifyCommutativitySoundness(sc, sc.NewState(),
		OpInvocation{Op: "Inc"}, OpInvocation{Op: "Get"})
	if err != nil || ran {
		t.Fatalf("counter Inc/Get: ran=%v err=%v, want no obligation", ran, err)
	}

	// A state-level unsound declaration: Write/Write on the same variable
	// declared non-conflicting.
	reg := testRegisterSchema()
	reg.Conflicts = &DerivedRelation{Ops: []string{"Read", "Write"}, Pairs: map[[2]string]DerivedVerdict{}}
	_, err = VerifyCommutativitySoundness(reg, State{},
		OpInvocation{Op: "Write", Args: []Value{"x", int64(1)}},
		OpInvocation{Op: "Write", Args: []Value{"x", int64(2)}})
	if err == nil || !strings.Contains(err.Error(), "final states differ") {
		t.Fatalf("unsound Write/Write: err = %v, want final-state violation", err)
	}

	// The undo obligation: state and returns commute, the undo does not.
	bu := brokenUndoSchema()
	_, err = VerifyCommutativitySoundness(bu, bu.NewState(),
		OpInvocation{Op: "Inc"}, OpInvocation{Op: "Inc"})
	if err == nil || !strings.Contains(err.Error(), "undoing") {
		t.Fatalf("broken undo: err = %v, want undo violation", err)
	}
}

func TestSampleCommutativity(t *testing.T) {
	// The register test schema's Read indexes args[0] unchecked, so this
	// also exercises the panic-safe shape probe.
	covered, err := SampleCommutativity(testRegisterSchema(), 1, 400)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if covered[[2]string{"Read", "Read"}] == 0 {
		t.Error("register: Read/Read never exercised")
	}
	if covered[[2]string{"Write", "Write"}] == 0 {
		t.Error("register: distinct-key Write/Write never exercised")
	}

	// An unsound relation must be found by sampling.
	reg := testRegisterSchema()
	reg.Conflicts = &DerivedRelation{Ops: []string{"Read", "Write"}, Pairs: map[[2]string]DerivedVerdict{}}
	if _, err := SampleCommutativity(reg, 1, 400); err == nil {
		t.Error("unsound register relation survived 400 rounds")
	}
}
