package core

import "fmt"

// ConflictRelation is the executable form of Definition 3. The paper defines
// conflict on steps: t1 conflicts with t2 iff executing t1 then t2 is not
// interchangeable with t2 then t1 (either the swapped sequence is illegal —
// some return value changes — or the final state differs). The relation need
// not be symmetric.
//
// Two granularities are exposed, mirroring the two implementation strategies
// of Sections 5.1-5.2:
//
//   - OpConflicts is the conservative, operation-granularity relation: it
//     must return true whenever *some* pair of steps of the two invocations
//     conflicts. Schedulers that must decide before executing (lock before
//     issuing; conservative NTO) use it.
//
//   - StepConflicts is the exact, step-granularity relation: it sees return
//     values and may therefore be strictly smaller (the paper's
//     Enqueue/Dequeue example: they conflict only when the Dequeue returns
//     the very item the Enqueue inserted). Provisional-execution schedulers
//     and the offline serialisation-graph builder use it.
//
// Both predicates are ordered: Conflicts(a, b) asks whether a-then-b may not
// be swapped to b-then-a.
type ConflictRelation interface {
	OpConflicts(a, b OpInvocation) bool
	StepConflicts(a, b StepInfo) bool
}

// Sharder is implemented by conflict relations that can scope invocations:
// invocations with different shard keys never conflict. Lock managers and
// timestamp tables use it to partition their bookkeeping.
type Sharder interface {
	ShardKey(op string, args []Value) Value
}

// ScopeOf returns the bookkeeping scope of an invocation on an object:
// object name plus the relation's shard key when available.
func ScopeOf(object string, rel ConflictRelation, inv OpInvocation) string {
	if s, ok := rel.(Sharder); ok {
		return object + "\x00" + FormatValue(s.ShardKey(inv.Op, inv.Args))
	}
	return object
}

// TotalConflict conflicts everything with everything: trivially sound and
// the default for schemas that do not declare a relation.
type TotalConflict struct{}

func (TotalConflict) OpConflicts(a, b OpInvocation) bool { return true }
func (TotalConflict) StepConflicts(a, b StepInfo) bool   { return true }

// KeyFunc scopes a conflict relation: steps conflict only when their keys
// are equal. The canonical instance extracts the variable name from the
// first argument, so Read(x) and Write(y) do not conflict for x != y.
type KeyFunc func(op string, args []Value) Value

// FirstArgKey keys an invocation by its first argument (or nil when there
// are no arguments, placing all zero-argument invocations in one scope).
func FirstArgKey(op string, args []Value) Value {
	if len(args) == 0 {
		return nil
	}
	return args[0]
}

// SingleKey places every invocation of the schema in one scope; appropriate
// for objects whose operations all touch the same logical datum (a counter,
// a queue).
func SingleKey(op string, args []Value) Value { return nil }

// TableConflict is a table-driven conflict relation: an ordered pair of
// operation names conflicts iff present in the table, and only when the
// invocations' keys match. An optional Refine predicate weakens the relation
// at step granularity.
type TableConflict struct {
	// Pairs holds the ordered conflicting pairs of operation names.
	Pairs map[[2]string]bool
	// Key scopes conflicts; nil means SingleKey.
	Key KeyFunc
	// Refine, when non-nil, is consulted for pairs present in Pairs with
	// matching keys: the steps conflict iff Refine returns true. This is
	// how step granularity exploits return values.
	Refine func(a, b StepInfo) bool
}

func (t *TableConflict) key(op string, args []Value) Value {
	if t.Key == nil {
		return SingleKey(op, args)
	}
	return t.Key(op, args)
}

// OpConflicts implements ConflictRelation.
func (t *TableConflict) OpConflicts(a, b OpInvocation) bool {
	if !t.Pairs[[2]string{a.Op, b.Op}] {
		return false
	}
	return ValueEqual(t.key(a.Op, a.Args), t.key(b.Op, b.Args))
}

// ShardKey exposes the table's conflict scope so that lock managers can
// shard their tables: invocations with different shard keys never conflict.
func (t *TableConflict) ShardKey(op string, args []Value) Value {
	return t.key(op, args)
}

// StepConflicts implements ConflictRelation.
func (t *TableConflict) StepConflicts(a, b StepInfo) bool {
	if !t.OpConflicts(a.Invocation(), b.Invocation()) {
		return false
	}
	if t.Refine == nil {
		return true
	}
	return t.Refine(a, b)
}

// ConflictPairs builds the Pairs map from a list of ordered pairs.
func ConflictPairs(pairs ...[2]string) map[[2]string]bool {
	m := make(map[[2]string]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return m
}

// SymmetricPairs builds a Pairs map in which each listed pair conflicts in
// both orders.
func SymmetricPairs(pairs ...[2]string) map[[2]string]bool {
	m := make(map[[2]string]bool, 2*len(pairs))
	for _, p := range pairs {
		m[p] = true
		m[[2]string{p[1], p[0]}] = true
	}
	return m
}

// RWTable returns the classical read/write conflict table over the given
// operation names: writers conflict with everything, readers conflict only
// with writers. Keyed per variable via key (nil = FirstArgKey).
func RWTable(readers, writers []string, key KeyFunc) *TableConflict {
	if key == nil {
		key = FirstArgKey
	}
	pairs := make(map[[2]string]bool)
	for _, w := range writers {
		for _, w2 := range writers {
			pairs[[2]string{w, w2}] = true
		}
		for _, r := range readers {
			pairs[[2]string{w, r}] = true
			pairs[[2]string{r, w}] = true
		}
	}
	return &TableConflict{Pairs: pairs, Key: key}
}

// VerifyConflictSoundness checks Definition 3 directly on executable
// operations: for the given state and the ordered pair of invocations
// (a then b), if the relation claims the steps do NOT conflict, then
// executing them in either order must (i) be legal with the same return
// values and (ii) produce equal final states. It returns an error describing
// the violation, or nil.
//
// This is the bridge between the declared conflict tables of
// internal/objects and the semantics the theory needs; property tests drive
// it with randomly generated states and arguments.
func VerifyConflictSoundness(sc *Schema, s State, a, b OpInvocation) error {
	opA, err := sc.Op(a.Op)
	if err != nil {
		return err
	}
	opB, err := sc.Op(b.Op)
	if err != nil {
		return err
	}

	// Execute a then b on a copy.
	s1 := sc.Clone(s)
	retA1, _, errA1 := opA.Apply(s1, a.Args)
	if errA1 != nil {
		return nil // a not defined on s: the sequence is not legal, nothing to check
	}
	retB1, _, errB1 := opB.Apply(s1, b.Args)
	if errB1 != nil {
		return nil
	}

	stepA := StepInfo{Op: a.Op, Args: a.Args, Ret: retA1}
	stepB := StepInfo{Op: b.Op, Args: b.Args, Ret: retB1}
	if sc.Conflicts.StepConflicts(stepA, stepB) {
		return nil // declared conflicting: no commutativity obligation
	}

	// Declared non-conflicting: b then a must be legal on s with the same
	// return values and the same final state (Definition 3 (a) and (b)).
	s2 := sc.Clone(s)
	retB2, _, errB2 := opB.Apply(s2, b.Args)
	if errB2 != nil {
		return fmt.Errorf("schema %s: steps %v and %v declared commuting but %v is illegal when run first (%v)",
			sc.Name, stepA, stepB, b, errB2)
	}
	retA2, _, errA2 := opA.Apply(s2, a.Args)
	if errA2 != nil {
		return fmt.Errorf("schema %s: steps %v and %v declared commuting but %v is illegal after %v (%v)",
			sc.Name, stepA, stepB, a, b, errA2)
	}
	if !ValueEqual(retB1, retB2) {
		return fmt.Errorf("schema %s: steps %v, %v declared commuting but %s returns %s after swap (state %s)",
			sc.Name, stepA, stepB, b.Op, FormatValue(retB2), s)
	}
	if !ValueEqual(retA1, retA2) {
		return fmt.Errorf("schema %s: steps %v, %v declared commuting but %s returns %s after swap (state %s)",
			sc.Name, stepA, stepB, a.Op, FormatValue(retA2), s)
	}
	if !sc.EqualStates(s1, s2) {
		return fmt.Errorf("schema %s: steps %v, %v declared commuting but final states differ: %s vs %s",
			sc.Name, stepA, stepB, s1, s2)
	}
	return nil
}
