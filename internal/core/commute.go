package core

import (
	"fmt"
	"math/rand"
)

// VerifyCommutativitySoundness is the runtime witness behind the static
// commutativity derivation: it generalises VerifyReadOnlySoundness from
// observers to arbitrary declared-commuting pairs. For the ordered pair
// (a then b) on state s, if the declared relation reports the steps do NOT
// conflict, the pair must satisfy Definition 3 — both orders legal with the
// same return values and equal final states — and, because the engine's
// abort path interleaves undo closures of concurrent executions, the undo
// closures must commute too: undoing a out of the a-then-b state must land
// exactly on the b-alone state, and undoing both must restore s.
//
// It returns nil either when every obligation holds or when there is no
// obligation (a step errors, or the declared relation reports a conflict);
// ran reports whether the full differential check actually executed, so
// samplers can assert coverage of the pairs they care about.
func VerifyCommutativitySoundness(sc *Schema, s State, a, b OpInvocation) (ran bool, err error) {
	opA, err := sc.Op(a.Op)
	if err != nil {
		return false, err
	}
	opB, err := sc.Op(b.Op)
	if err != nil {
		return false, err
	}

	// Execute a then b on a copy, keeping the undo closures.
	s1 := sc.Clone(s)
	retA1, undoA1, errA1 := opA.Apply(s1, a.Args)
	if errA1 != nil {
		return false, nil // a not defined on s: the sequence is not legal
	}
	retB1, undoB1, errB1 := opB.Apply(s1, b.Args)
	if errB1 != nil {
		return false, nil
	}

	stepA := StepInfo{Op: a.Op, Args: a.Args, Ret: retA1}
	stepB := StepInfo{Op: b.Op, Args: b.Args, Ret: retB1}
	if sc.Conflicts.StepConflicts(stepA, stepB) {
		return false, nil // declared conflicting: no commutativity obligation
	}

	// Definition 3 (a) and (b): b then a must be legal on s with the same
	// return values and the same final state.
	s2 := sc.Clone(s)
	retB2, undoB2, errB2 := opB.Apply(s2, b.Args)
	if errB2 != nil {
		return true, fmt.Errorf("schema %s: steps %v and %v declared commuting but %v is illegal when run first (%v)",
			sc.Name, stepA, stepB, b, errB2)
	}
	retA2, _, errA2 := opA.Apply(s2, a.Args)
	if errA2 != nil {
		return true, fmt.Errorf("schema %s: steps %v and %v declared commuting but %v is illegal after %v (%v)",
			sc.Name, stepA, stepB, a, b, errA2)
	}
	if !ValueEqual(retB1, retB2) {
		return true, fmt.Errorf("schema %s: steps %v, %v declared commuting but %s returns %s after swap (state %s)",
			sc.Name, stepA, stepB, b.Op, FormatValue(retB2), s)
	}
	if !ValueEqual(retA1, retA2) {
		return true, fmt.Errorf("schema %s: steps %v, %v declared commuting but %s returns %s after swap (state %s)",
			sc.Name, stepA, stepB, a.Op, FormatValue(retA2), s)
	}
	if !sc.EqualStates(s1, s2) {
		return true, fmt.Errorf("schema %s: steps %v, %v declared commuting but final states differ: %s vs %s",
			sc.Name, stepA, stepB, s1, s2)
	}

	// Undo commutativity: a's undo was captured before b ran, but an abort
	// of a's execution may run it after b committed. Undoing a out of the
	// a-then-b state must yield the b-alone state...
	sB := sc.Clone(s)
	if _, _, err := opB.Apply(sB, b.Args); err != nil {
		return true, fmt.Errorf("schema %s: step %v legal after %v but not alone on %s (%v)",
			sc.Name, stepB, stepA, s, err)
	}
	undone := sc.Clone(s1)
	runUndo(undoA1, undone)
	if !sc.EqualStates(undone, sB) {
		return true, fmt.Errorf("schema %s: steps %v, %v declared commuting but undoing %s from the a-then-b state yields %s, want the b-alone state %s",
			sc.Name, stepA, stepB, a.Op, undone, sB)
	}
	// ...and undoing both (in either capture order) must restore s.
	runUndo(undoB1, undone)
	if !sc.EqualStates(undone, s) {
		return true, fmt.Errorf("schema %s: steps %v, %v declared commuting but undoing both does not restore %s (got %s)",
			sc.Name, stepA, stepB, s, undone)
	}
	// Symmetrically from the swapped order: undoing b out of b-then-a must
	// yield the a-alone state.
	sA := sc.Clone(s)
	if _, _, err := opA.Apply(sA, a.Args); err != nil {
		return true, fmt.Errorf("schema %s: step %v legal first but not alone on %s (%v)",
			sc.Name, stepA, s, err)
	}
	undone2 := sc.Clone(s2)
	runUndo(undoB2, undone2)
	if !sc.EqualStates(undone2, sA) {
		return true, fmt.Errorf("schema %s: steps %v, %v declared commuting but undoing %s from the b-then-a state yields %s, want the a-alone state %s",
			sc.Name, stepA, stepB, b.Op, undone2, sA)
	}
	return true, nil
}

// runUndo applies an undo closure, treating nil (read-only operations) as
// the identity.
func runUndo(u UndoFunc, s State) {
	if u != nil {
		u(s)
	}
}

// commuteArgShapes are the argument tuples SampleCommutativity draws from.
// Every schema in internal/objects takes one of these shapes; operations
// reject mismatched shapes with an error, which the sampler uses to learn
// each operation's arity (an errored application carries no obligation).
var commuteArgShapes = []func(r *rand.Rand) []Value{
	func(r *rand.Rand) []Value { return nil },
	func(r *rand.Rand) []Value { return []Value{int64(r.Intn(4))} },
	func(r *rand.Rand) []Value { return []Value{int64(r.Intn(4)), int64(r.Intn(5) - 2)} },
	func(r *rand.Rand) []Value { return []Value{fmt.Sprintf("k%d", r.Intn(3))} },
	func(r *rand.Rand) []Value { return []Value{fmt.Sprintf("k%d", r.Intn(3)), int64(r.Intn(5) - 2)} },
}

// SampleCommutativity drives VerifyCommutativitySoundness over randomised
// states and arguments: each round scrambles a fresh state with a few
// random operations, picks an ordered pair of operations with suitable
// arguments, and checks the witness. It returns, per ordered pair of
// operation names, how many rounds completed the full differential check
// (both orders legal and the declared relation reported no conflict) — the
// coverage map property tests assert against — and the first violation
// found, if any.
func SampleCommutativity(sc *Schema, seed int64, rounds int) (map[[2]string]int, error) {
	r := rand.New(rand.NewSource(seed))
	names := sc.OpNames()
	if len(names) == 0 {
		return nil, fmt.Errorf("core: SampleCommutativity: schema %s has no operations", sc.Name)
	}
	shapes := learnArgShapes(sc, names)
	covered := make(map[[2]string]int)
	for i := 0; i < rounds; i++ {
		s := sc.NewState()
		for j := r.Intn(6); j > 0; j-- {
			op := names[r.Intn(len(names))]
			args := shapes.draw(r, op)
			if _, _, err := sc.Ops[op].Apply(s, args); err != nil {
				continue // wrong shape or illegal on s: skip the scramble step
			}
		}
		aOp := names[r.Intn(len(names))]
		bOp := names[r.Intn(len(names))]
		a := OpInvocation{Op: aOp, Args: shapes.draw(r, aOp)}
		b := OpInvocation{Op: bOp, Args: shapes.draw(r, bOp)}
		if r.Intn(2) == 0 && len(a.Args) > 0 && len(b.Args) > 0 {
			// Half the keyed samples collide on purpose: equal first
			// arguments exercise the Keyed verdicts' conflict side and, for
			// pairs declared commuting even on equal keys, the harder
			// obligation.
			b.Args[0] = a.Args[0]
		}
		ran, err := VerifyCommutativitySoundness(sc, s, a, b)
		if err != nil {
			return covered, err
		}
		if ran {
			covered[[2]string{aOp, bOp}]++
		}
	}
	return covered, nil
}

// argShapes remembers which of the candidate argument shapes each operation
// accepts, learned by probing a fresh state.
type argShapes map[string][]int

func learnArgShapes(sc *Schema, names []string) argShapes {
	m := make(argShapes, len(names))
	probe := rand.New(rand.NewSource(1))
	for _, name := range names {
		op := sc.Ops[name]
		for i, gen := range commuteArgShapes {
			if probeShape(op, sc.NewState(), gen(probe)) {
				m[name] = append(m[name], i)
			}
		}
		if len(m[name]) == 0 {
			m[name] = []int{0} // nothing accepted on a fresh state: sample no-arg anyway
		}
	}
	return m
}

// probeShape reports whether the operation accepts the argument tuple on
// the state. Schemas outside internal/objects may index argument slices
// without bounds checks, so a panic counts as rejection.
func probeShape(op *Operation, s State, args []Value) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	_, _, err := op.Apply(s, args)
	return err == nil
}

func (a argShapes) draw(r *rand.Rand, op string) []Value {
	idx := a[op]
	return commuteArgShapes[idx[r.Intn(len(idx))]](r)
}
