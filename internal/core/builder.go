package core

import (
	"fmt"
)

// Builder constructs histories by hand for tests and for the offline
// experiment generators (experiment E1/E2 generate random histories without
// running the engine). Steps receive consecutive ticks in call order, so the
// interleaving the test writes down is the temporal order < the history
// records. Return values are computed by actually applying operations to
// live object states, so built histories satisfy condition 3 by
// construction; ForceLocal lets a test record a wrong return value to
// exercise the legality checker.
type Builder struct {
	h      *History
	states map[string]State
	clock  Tick
	open   map[string]*MessageStep // exec key -> its creating message (awaiting Return)
	nTop   int32
	nChild map[string]int32
	lanes  map[string]int
	undo   map[string][]func() // exec key -> undo closures in apply order
	err    error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		h:      NewHistory(),
		states: make(map[string]State),
		open:   make(map[string]*MessageStep),
		nChild: make(map[string]int32),
		lanes:  make(map[string]int),
		undo:   make(map[string][]func()),
	}
}

func (b *Builder) tick() Tick { b.clock++; return b.clock }

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Object registers an object with its schema and initial state.
func (b *Builder) Object(name string, sc *Schema, initial State) *Builder {
	b.h.AddObject(name, sc, initial)
	b.states[name] = sc.Clone(initial)
	return b
}

// Top starts a new top-level transaction (a method of the environment) and
// returns its ID.
func (b *Builder) Top(method string) ExecID {
	id := RootID(b.nTop)
	b.nTop++
	b.h.Execs[id.Key()] = &MethodExec{ID: id, Object: EnvironmentObject, Method: method}
	b.h.Roots = append(b.h.Roots, id)
	return id
}

// Call records a message step of parent invoking object.method and returns
// the created child execution's ID. The message interval stays open until
// Return or AbortExec.
func (b *Builder) Call(parent ExecID, object, method string) ExecID {
	pe := b.h.Exec(parent)
	if pe == nil {
		b.fail("builder: Call from unknown exec %s", parent)
		return nil
	}
	k := b.nChild[parent.Key()]
	b.nChild[parent.Key()]++
	child := parent.Child(k)
	b.h.Execs[child.Key()] = &MethodExec{ID: child, Object: object, Method: method}
	pe.Children = append(pe.Children, child)
	m := &MessageStep{
		Exec:   parent,
		Child:  child,
		Object: object,
		Method: method,
		Start:  b.tick(),
		Lane:   b.lanes[parent.Key()],
	}
	b.h.Messages[parent.Key()] = append(b.h.Messages[parent.Key()], m)
	b.open[child.Key()] = m
	return child
}

// Local records a local step of exec on object: the operation is applied to
// the builder's live state and the observed return value recorded.
func (b *Builder) Local(exec ExecID, object, op string, args ...Value) Value {
	sc := b.h.Schemas[object]
	if sc == nil {
		b.fail("builder: local step on unknown object %s", object)
		return nil
	}
	o, err := sc.Op(op)
	if err != nil {
		b.fail("builder: %v", err)
		return nil
	}
	ret, undo, err := o.Apply(b.states[object], args)
	if err != nil {
		b.fail("builder: applying %s(%s) on %s: %v", op, FormatValue(args), object, err)
		return nil
	}
	if undo != nil {
		st := b.states[object]
		b.undo[exec.Key()] = append(b.undo[exec.Key()], func() { undo(st) })
	}
	b.record(exec, object, StepInfo{Op: op, Args: args, Ret: ret})
	return ret
}

// ForceLocal records a local step with an explicit (possibly wrong) return
// value without touching the live state — for tests that need an illegal
// history.
func (b *Builder) ForceLocal(exec ExecID, object, op string, ret Value, args ...Value) {
	b.record(exec, object, StepInfo{Op: op, Args: args, Ret: ret})
}

func (b *Builder) record(exec ExecID, object string, info StepInfo) {
	if b.h.Exec(exec) == nil {
		b.fail("builder: local step from unknown exec %s", exec)
		return
	}
	st := &Step{
		Exec:   exec,
		Object: object,
		Info:   info,
		At:     b.tick(),
		ObjSeq: len(b.h.Steps[object]),
		Lane:   b.lanes[exec.Key()],
	}
	b.h.Steps[object] = append(b.h.Steps[object], st)
	b.h.LocalSteps[exec.Key()] = append(b.h.LocalSteps[exec.Key()], st)
}

// Return closes the message interval of a child execution, recording the
// value its parent observed.
func (b *Builder) Return(exec ExecID, ret Value) {
	m := b.open[exec.Key()]
	if m == nil {
		b.fail("builder: Return for exec %s with no open message", exec)
		return
	}
	m.Ret = ret
	m.End = b.tick()
	delete(b.open, exec.Key())
}

// AbortExec marks the execution and all its descendants aborted, undoes
// their applied effects on the builder's live states (abort semantics (a)),
// and closes the execution's message interval (the abortion is "reported to
// the parent ... just like a normal termination condition would").
func (b *Builder) AbortExec(exec ExecID) {
	var mark func(id ExecID)
	mark = func(id ExecID) {
		e := b.h.Exec(id)
		if e == nil {
			return
		}
		e.Aborted = true
		for _, c := range e.Children {
			mark(c)
		}
		undos := b.undo[id.Key()]
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
		b.undo[id.Key()] = nil
	}
	mark(exec)
	if m := b.open[exec.Key()]; m != nil {
		m.ChildAborted = true
		m.End = b.tick()
		delete(b.open, exec.Key())
	}
}

// Finish closes any open messages (in reverse creation order so intervals
// nest), records final states, and returns the history.
func (b *Builder) Finish() (*History, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Close remaining open messages deepest-first.
	for len(b.open) > 0 {
		var deepest *MessageStep
		for _, m := range b.open {
			if deepest == nil || len(m.Child) > len(deepest.Child) {
				deepest = m
			}
		}
		deepest.End = b.tick()
		delete(b.open, deepest.Child.Key())
	}
	b.h.FinalStates = make(map[string]State, len(b.states))
	for name, s := range b.states {
		b.h.FinalStates[name] = b.h.Schemas[name].Clone(s)
	}
	return b.h, nil
}

// MustFinish is Finish that panics on construction errors (test helper).
func (b *Builder) MustFinish() *History {
	h, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return h
}
