package core

import (
	"fmt"
)

// CheckLegal verifies the legality conditions of Definition 6 on the
// recorded history and additionally the abort-semantics conditions of
// Section 3. It returns the first violation found, or nil.
//
// Condition mapping:
//
//  1. B is 1-1, no execution is its own proper ancestor, top-level
//     executions belong to the environment. The ExecID path scheme makes B
//     1-1 and ancestry acyclic by construction; checkForest verifies the
//     record is internally consistent (every child has its creating
//     message, parents exist, top-level executions are environment
//     methods).
//
//  2. (a) programme order is respected — guaranteed by construction since
//     ticks are drawn from a monotone clock as the method runs;
//     (b) conflicting local steps are ordered — holds because each object
//     records a total linearisation of its steps;
//     (c) descendants of ordered steps are ordered — checkNesting verifies
//     every execution's events fall inside its creating message's interval.
//
//  3. The recorded linearisation of each object's local steps is legal on
//     the object's initial state — checkReplay re-executes every operation
//     and compares return values (this is Theorem 1's well-definedness made
//     operational).
//
// Abort semantics:
//
//	(a) the non-aborted subsequence is legal and yields the recorded final
//	    state — checkAbortEffects;
//	(b) descendants of aborted executions are aborted — CheckAbortClosure.
func (h *History) CheckLegal() error {
	if err := h.checkForest(); err != nil {
		return err
	}
	if err := h.checkNesting(); err != nil {
		return err
	}
	if err := h.checkReplay(); err != nil {
		return err
	}
	if err := h.CheckAbortClosure(); err != nil {
		return err
	}
	return h.checkAbortEffects()
}

func (h *History) checkForest() error {
	for key, e := range h.Execs {
		if e.ID.Key() != key {
			return fmt.Errorf("core: exec %s stored under key %q", e.ID, key)
		}
		if e.IsTopLevel() {
			if e.Object != EnvironmentObject {
				return fmt.Errorf("core: top-level exec %s belongs to object %q, not the environment (Def 6 cond 1)", e.ID, e.Object)
			}
			continue
		}
		parent := h.Exec(e.ID.Parent())
		if parent == nil {
			return fmt.Errorf("core: exec %s has no recorded parent", e.ID)
		}
		if _, _, err := h.MessageTo(e.ID); err != nil {
			return fmt.Errorf("core: B is not total onto %s: %v", e.ID, err)
		}
	}
	// B is a function into E: every message's child must be recorded, and
	// distinct messages create distinct children (1-1) — structural with
	// path IDs, but verify the record.
	seen := make(map[string]string)
	for pk, msgs := range h.Messages {
		for k, m := range msgs {
			if h.Exec(m.Child) == nil {
				return fmt.Errorf("core: message %d of %s names unknown child %s", k, pk, m.Child)
			}
			if prev, dup := seen[m.Child.Key()]; dup {
				return fmt.Errorf("core: B not 1-1: child %s created by both %s and %s.#%d", m.Child, prev, pk, k)
			}
			seen[m.Child.Key()] = fmt.Sprintf("%s.#%d", pk, k)
			if !m.Exec.IsProperAncestorOf(m.Child) {
				return fmt.Errorf("core: message of %s creates non-descendant %s", m.Exec, m.Child)
			}
		}
	}
	return nil
}

// eventInterval returns the tick span covering all of the execution's own
// events (not descendants').
func (h *History) eventInterval(id ExecID) (Tick, Tick, bool) {
	var lo, hi Tick
	found := false
	upd := func(s, e Tick) {
		if !found || s < lo {
			lo = s
		}
		if !found || e > hi {
			hi = e
		}
		found = true
	}
	for _, s := range h.LocalSteps[id.Key()] {
		upd(s.At, s.At)
	}
	for _, m := range h.Messages[id.Key()] {
		upd(m.Start, m.End)
	}
	return lo, hi, found
}

func (h *History) checkNesting() error {
	for _, e := range h.AllExecs() {
		if e.IsTopLevel() {
			continue
		}
		m, _, err := h.MessageTo(e.ID)
		if err != nil {
			return err
		}
		lo, hi, found := h.eventInterval(e.ID)
		if !found {
			continue
		}
		if lo < m.Start || hi > m.End {
			return fmt.Errorf("core: events of %s at ticks [%d,%d] escape creating message interval [%d,%d] (Def 6 cond 2c)",
				e.ID, lo, hi, m.Start, m.End)
		}
	}
	return nil
}

// ReplayObject re-executes steps (in the given order) against a copy of
// initial, verifying each recorded return value (condition 3: the sort is
// legal on s), and returns the resulting final state.
func ReplayObject(sc *Schema, initial State, steps []*Step) (State, error) {
	s := sc.Clone(initial)
	for i, st := range steps {
		op, err := sc.Op(st.Info.Op)
		if err != nil {
			return nil, err
		}
		ret, _, err := op.Apply(s, st.Info.Args)
		if err != nil {
			return nil, fmt.Errorf("core: replay step %d %v of %s: %v", i, st.Info, st.Exec, err)
		}
		if !ValueEqual(ret, st.Info.Ret) {
			return nil, fmt.Errorf("core: replay step %d of object: %s issued %s(%s), recorded ru=%s but replay returns %s",
				i, st.Exec, st.Info.Op, FormatValue(st.Info.Args), FormatValue(st.Info.Ret), FormatValue(ret))
		}
	}
	return s, nil
}

// checkReplay verifies condition 3 on the effective (non-aborted) steps of
// each object: abort semantics (a) stipulates that aborted steps have no
// effect, so the computation the history represents is the non-aborted
// subsequence; a committed step whose recorded return value depended on a
// later-aborted step's effect (a dirty read the engine failed to cascade) is
// reported here as a violation. For abort-free histories this is exactly
// Definition 6 condition 3.
func (h *History) checkReplay() error {
	for _, obj := range h.ObjectNames() {
		if _, err := ReplayObject(h.Schemas[obj], h.InitialStates[obj], h.EffectiveSteps(obj)); err != nil {
			return fmt.Errorf("object %s: %w", obj, err)
		}
	}
	return nil
}

// CheckAbortClosure verifies abort semantics (b): every descendant of an
// aborted execution is aborted.
func (h *History) CheckAbortClosure() error {
	for _, e := range h.AllExecs() {
		if !e.Aborted {
			continue
		}
		for _, c := range e.Children {
			ce := h.Exec(c)
			if ce == nil {
				return fmt.Errorf("core: aborted exec %s has unrecorded child %s", e.ID, c)
			}
			if !ce.Aborted {
				return fmt.Errorf("core: abort semantics (b) violated: %s aborted but child %s committed", e.ID, c)
			}
		}
	}
	return nil
}

// checkAbortEffects verifies abort semantics (a): replaying only the steps
// of non-aborted executions yields the recorded final state of each object —
// i.e. aborted executions had no effect.
func (h *History) checkAbortEffects() error {
	if h.FinalStates == nil {
		return nil
	}
	for _, obj := range h.ObjectNames() {
		want, ok := h.FinalStates[obj]
		if !ok {
			continue
		}
		// Note: effective (non-aborted) steps replay with their recorded
		// return values only when aborted executions' effects were
		// invisible to survivors — which is exactly what the engine's
		// undo + cascading-abort machinery must guarantee.
		got, err := ReplayObject(h.Schemas[obj], h.InitialStates[obj], h.EffectiveSteps(obj))
		if err != nil {
			return fmt.Errorf("core: abort semantics (a) violated at object %s: %v", obj, err)
		}
		if !h.Schemas[obj].EqualStates(got, want) {
			return fmt.Errorf("core: abort semantics (a) violated at object %s: committed-step replay gives %s, recorded final state %s",
				obj, got, want)
		}
	}
	return nil
}
