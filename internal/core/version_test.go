package core

import (
	"testing"
)

func TestVersionRingLookup(t *testing.T) {
	r := NewVersionRing(State{"n": int64(0)})
	if v, ok := r.Lookup(0); !ok || v.Seq != 0 || v.Gap {
		t.Fatalf("Lookup(0) = %+v, %v", v, ok)
	}
	if v, ok := r.Lookup(99); !ok || v.Seq != 0 {
		t.Fatalf("Lookup(99) on fresh ring = %+v, %v", v, ok)
	}
	r = r.Push(3, 5, State{"n": int64(5)})
	r = r.PushGap(4)
	r = r.Push(7, 9, State{"n": int64(9)})
	cases := []struct {
		seq     uint64
		wantSeq uint64
		wantGap bool
	}{
		{0, 0, false},
		{2, 0, false},
		{3, 3, false},
		{4, 4, true},  // gap: snapshot at 4 unavailable
		{6, 4, true},  // still behind the gap
		{7, 7, false}, // clean capture supersedes the gap
		{100, 7, false},
	}
	for _, c := range cases {
		v, ok := r.Lookup(c.seq)
		if !ok {
			t.Fatalf("Lookup(%d): not found", c.seq)
		}
		if v.Seq != c.wantSeq || v.Gap != c.wantGap {
			t.Fatalf("Lookup(%d) = seq %d gap %v, want seq %d gap %v", c.seq, v.Seq, v.Gap, c.wantSeq, c.wantGap)
		}
	}
}

func TestVersionRingEviction(t *testing.T) {
	r := NewVersionRing(State{})
	for i := 1; i <= versionRingCap+3; i++ {
		r = r.Push(uint64(i), i, State{})
	}
	if r.Len() != versionRingCap {
		t.Fatalf("ring length = %d, want %d", r.Len(), versionRingCap)
	}
	// The oldest surviving version is cap-1 behind the newest.
	oldest := uint64(versionRingCap + 3 - versionRingCap + 1)
	if _, ok := r.Lookup(oldest - 1); ok {
		t.Fatalf("Lookup(%d) found an evicted version", oldest-1)
	}
	if v, ok := r.Lookup(oldest); !ok || v.Seq != oldest {
		t.Fatalf("Lookup(%d) = %+v, %v", oldest, v, ok)
	}
	if v := r.Newest(); v.Seq != uint64(versionRingCap+3) {
		t.Fatalf("Newest = %+v", v)
	}
}

func TestVersionRingImmutable(t *testing.T) {
	r := NewVersionRing(State{})
	r2 := r.Push(1, 1, State{})
	if r.Len() != 1 || r2.Len() != 2 {
		t.Fatalf("Push mutated the receiver: %d, %d", r.Len(), r2.Len())
	}
}

// lyingSchema declares a mutating op ReadOnly, which the soundness check
// must catch.
func lyingSchema() *Schema {
	bump := &Operation{
		Name:     "Bump",
		ReadOnly: true, // a lie: sigma is not the identity
		Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			n, _ := s["n"].(int64)
			s["n"] = n + 1
			return n, nil, nil
		},
	}
	get := &Operation{
		Name:     "Get",
		ReadOnly: true,
		Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			n, _ := s["n"].(int64)
			return n, nil, nil
		},
	}
	return NewSchema("lying", func() State { return State{"n": int64(0)} },
		&TableConflict{Pairs: ConflictPairs()}, bump, get)
}

func TestReadOnlyOpClassification(t *testing.T) {
	sc := lyingSchema()
	if ro, err := sc.ReadOnlyOp("Get"); err != nil || !ro {
		t.Fatalf("ReadOnlyOp(Get) = %v, %v", ro, err)
	}
	if _, err := sc.ReadOnlyOp("Nope"); err == nil {
		t.Fatal("ReadOnlyOp(Nope): want error")
	}
}

func TestVerifyReadOnlySoundness(t *testing.T) {
	sc := lyingSchema()
	if err := VerifyReadOnlySoundness(sc, sc.NewState(), OpInvocation{Op: "Get"}); err != nil {
		t.Fatalf("honest observer flagged: %v", err)
	}
	if err := VerifyReadOnlySoundness(sc, sc.NewState(), OpInvocation{Op: "Bump"}); err == nil {
		t.Fatal("lying ReadOnly op passed the soundness check")
	}
	// A ReadOnly op declared self-conflicting violates observer
	// commutativity.
	selfish := NewSchema("selfish", func() State { return State{} }, TotalConflict{},
		&Operation{Name: "Peek", ReadOnly: true, Apply: func(s State, args []Value) (Value, UndoFunc, error) {
			return nil, nil, nil
		}})
	if err := VerifyReadOnlySoundness(selfish, selfish.NewState(), OpInvocation{Op: "Peek"}); err == nil {
		t.Fatal("self-conflicting observer passed the soundness check")
	}
}

func TestStepLessOrdersSnapshotReads(t *testing.T) {
	w0 := &Step{Exec: ExecID{0}, Object: "o", ObjSeq: 0, At: 1}
	w1 := &Step{Exec: ExecID{1}, Object: "o", ObjSeq: 1, At: 5}
	// Two snapshot reads at watermark 1 from different snapshots, plus one
	// sharing a snapshot with a later tick.
	rA := &Step{Exec: ExecID{2}, Object: "o", ObjSeq: 1, At: 9, Snap: true, SnapSeq: 1}
	rB := &Step{Exec: ExecID{3}, Object: "o", ObjSeq: 1, At: 3, Snap: true, SnapSeq: 2}
	rA2 := &Step{Exec: ExecID{2}, Object: "o", ObjSeq: 1, At: 11, Snap: true, SnapSeq: 1}
	if !StepLess(w0, rA) || !StepLess(w0, w1) {
		t.Fatal("position 0 must precede everything at position 1")
	}
	if !StepLess(rA, w1) || !StepLess(rB, w1) {
		t.Fatal("snapshot reads at watermark k must precede the regular step with ObjSeq k")
	}
	if !StepLess(rA, rB) || StepLess(rB, rA) {
		t.Fatal("snapshot reads order by snapshot sequence")
	}
	if !StepLess(rA, rA2) {
		t.Fatal("same snapshot, same txn: ticks break the tie")
	}
}

func TestVersionRingInsertGap(t *testing.T) {
	r := NewVersionRing(State{})
	r = r.Push(5, 1, State{})
	r = r.Push(9, 2, State{})
	// A late out-of-order publisher lands its gap in sorted position.
	r = r.InsertGap(7)
	if v, ok := r.Lookup(7); !ok || v.Seq != 7 || !v.Gap {
		t.Fatalf("Lookup(7) = %+v, %v", v, ok)
	}
	if v, ok := r.Lookup(8); !ok || v.Seq != 7 || !v.Gap {
		t.Fatalf("Lookup(8) = %+v, %v — the gap must shadow version 5", v, ok)
	}
	if v, ok := r.Lookup(6); !ok || v.Seq != 5 || v.Gap {
		t.Fatalf("Lookup(6) = %+v, %v", v, ok)
	}
	if v, ok := r.Lookup(9); !ok || v.Seq != 9 || v.Gap {
		t.Fatalf("Lookup(9) = %+v, %v", v, ok)
	}
	// Ascending order must be preserved.
	for i := 1; i < r.Len(); i++ {
		if r.vers[i-1].Seq >= r.vers[i].Seq {
			t.Fatalf("ring out of order: %+v", r.vers)
		}
	}
	// Older than everything retained: dropped.
	r2 := r.InsertGap(0)
	if _, ok := r2.Lookup(0); ok && r2.vers[0].Seq == 0 && r2.vers[0].Gap {
		t.Fatalf("prehistoric gap retained: %+v", r2.vers)
	}
}

func TestVersionRingRepair(t *testing.T) {
	r := NewVersionRing(State{"n": int64(0)})
	r = r.PushGap(3)
	r2 := r.Repair(4, State{"n": int64(7)})
	if v := r2.Newest(); v.Gap || v.Seq != 3 || v.ObjSeq != 4 {
		t.Fatalf("repaired newest = %+v", v)
	}
	if n, _ := r2.Newest().State["n"].(int64); n != 7 {
		t.Fatalf("repaired state n = %d", n)
	}
	// Repair on a non-gap head is a no-op.
	if r3 := r2.Repair(9, State{}); r3.Newest().ObjSeq != 4 {
		t.Fatalf("Repair overwrote a capture: %+v", r3.Newest())
	}
}
