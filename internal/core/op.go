package core

import (
	"fmt"
	"sort"
)

// UndoFunc reverses the state change of one applied operation. Operations
// return an undo closure capturing whatever before-image they need (e.g. the
// overwritten value of a register). The engine pushes undo closures on a
// per-execution log and runs them in reverse order when the execution
// aborts, implementing abort semantics (a) of Section 3: an aborted method
// execution has no effect on the state of its object.
//
// Undo closures of commuting operations must themselves commute; this holds
// for every schema in this repository because each undo touches exactly the
// variables its operation touched, with inverse effect.
type UndoFunc func(s State)

// ApplyFunc executes a local operation a = (rho_a, sigma_a) on a state
// (Definition 2): it mutates s in place (sigma) and returns the operation's
// return value (rho). The returned undo closure must restore s to its prior
// value; it is nil for read-only operations. An error means the operation is
// not defined on the state (a programming error in the workload, not an
// abort); the engine converts it into an abort of the issuing execution.
type ApplyFunc func(s State, args []Value) (ret Value, undo UndoFunc, err error)

// Operation describes one local operation of an object schema.
type Operation struct {
	// Name identifies the operation within its schema ("Read", "Enqueue"...).
	Name string
	// ReadOnly marks operations whose sigma is the identity. Read-only
	// operations need no undo and let lock-based schedulers use shared
	// modes.
	ReadOnly bool
	// Apply is the executable (rho, sigma) pair.
	Apply ApplyFunc
	// Peek, when non-nil, computes rho alone — the return value the
	// operation would produce on the state, without the state change.
	// Provisional-execution schedulers use it to avoid cloning the state
	// (read-only operations never need it: their Apply is already pure).
	Peek func(s State, args []Value) (Value, error)
}

// OpInvocation identifies an operation about to be issued: its name and
// arguments, but not yet its return value. This is what an
// operation-granularity scheduler sees before the step executes (the paper's
// first resolution of the "apparent circularity" in Section 5.1: lock
// operations, not steps).
type OpInvocation struct {
	Op   string
	Args []Value
}

func (i OpInvocation) String() string {
	return fmt.Sprintf("%s(%s)", i.Op, FormatValue(i.Args))
}

// StepInfo is a completed local step (a, v): the invocation together with
// the return value v = ru(t). Step-granularity schedulers (the paper's
// second resolution: provisionally execute, observe the return value, then
// lock the step) and the offline conflict analysis see StepInfo.
type StepInfo struct {
	Op   string
	Args []Value
	Ret  Value
}

// Invocation projects the step back to its invocation.
func (s StepInfo) Invocation() OpInvocation { return OpInvocation{Op: s.Op, Args: s.Args} }

func (s StepInfo) String() string {
	return fmt.Sprintf("%s(%s)=%s", s.Op, FormatValue(s.Args), FormatValue(s.Ret))
}

// Schema is the static description of an object type: its operations, its
// conflict relation, and its initial state factory. An object (V, M) of
// Definition 1 is an instance name plus a Schema; methods M are programmes
// registered with the runtime engine, while the Schema governs the local
// steps those methods may issue.
type Schema struct {
	// Name identifies the schema ("register", "queue", "btree"...).
	Name string
	// Ops maps operation names to their definitions.
	Ops map[string]*Operation
	// Conflicts is the schema's conflict relation (Definition 3). It must
	// be sound: if StepConflicts reports false for an ordered pair of
	// steps, swapping adjacent occurrences of them must preserve legality
	// and the final state. Soundness is what Lemma 2 and hence every
	// result of the paper rests on; internal/core's property tests check
	// it against the executable operations for every schema in
	// internal/objects.
	Conflicts ConflictRelation
	// NewState builds the initial state for a fresh object instance.
	NewState func() State
	// CloneState, when non-nil, overrides State.Clone for schemas whose
	// variables hold pointers to mutable structures.
	CloneState func(State) State
	// StateEqual, when non-nil, overrides State.Equal for schemas whose
	// variables hold pointers to mutable structures.
	StateEqual func(a, b State) bool
}

// EqualStates compares two states honouring StateEqual.
func (sc *Schema) EqualStates(a, b State) bool {
	if sc.StateEqual != nil {
		return sc.StateEqual(a, b)
	}
	return a.Equal(b)
}

// Op returns the named operation or an error naming the schema.
func (sc *Schema) Op(name string) (*Operation, error) {
	op, ok := sc.Ops[name]
	if !ok {
		return nil, fmt.Errorf("core: schema %s has no operation %q", sc.Name, name)
	}
	return op, nil
}

// MustOp is Op for statically known names.
func (sc *Schema) MustOp(name string) *Operation {
	op, err := sc.Op(name)
	if err != nil {
		panic(err)
	}
	return op
}

// OpNames returns the schema's operation names in sorted order, for
// deterministic iteration in tests and workload generators.
func (sc *Schema) OpNames() []string {
	names := make([]string, 0, len(sc.Ops))
	for n := range sc.Ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone clones a state honouring CloneState.
func (sc *Schema) Clone(s State) State {
	if sc.CloneState != nil {
		return sc.CloneState(s)
	}
	return s.Clone()
}

// NewSchema assembles a schema from operations, defaulting the conflict
// relation to "everything conflicts with everything" (always sound, never
// concurrent) when rel is nil.
func NewSchema(name string, newState func() State, rel ConflictRelation, ops ...*Operation) *Schema {
	m := make(map[string]*Operation, len(ops))
	for _, op := range ops {
		if _, dup := m[op.Name]; dup {
			panic(fmt.Sprintf("core: schema %s: duplicate operation %q", name, op.Name))
		}
		m[op.Name] = op
	}
	if rel == nil {
		rel = TotalConflict{}
	}
	return &Schema{Name: name, Ops: m, Conflicts: rel, NewState: newState}
}
