package core

import "fmt"

// DerivedVerdict is one cell of a derived conflict relation: how an ordered
// pair of operations conflicts. The zero value means "always conflicts";
// Keyed means the pair conflicts iff argument ArgA of the first invocation
// equals argument ArgB of the second (the argument-aware refinement of
// Malta/Martinez: Insert(k1) and Insert(k2) commute iff k1 != k2). Pairs
// absent from a DerivedRelation's table never conflict.
type DerivedVerdict struct {
	// Keyed scopes the conflict to equal key arguments.
	Keyed bool
	// ArgA, ArgB are the argument positions compared when Keyed.
	ArgA, ArgB int
}

// DerivedRelation is a conflict relation represented as data: the output of
// the static commutativity derivation in internal/analysis, committed as
// conflict_gen.go and adopted by schemas. It is a pure op-granularity
// relation (StepConflicts ignores return values); schemas that exploit
// return values wrap it with Refine.
type DerivedRelation struct {
	// Ops lists the operation names the relation covers, sorted. Pairs over
	// unknown operations conservatively conflict.
	Ops []string
	// Pairs holds the verdict for every ordered conflicting pair; absent
	// pairs of known operations never conflict.
	Pairs map[[2]string]DerivedVerdict
}

func (d *DerivedRelation) knows(op string) bool {
	for _, o := range d.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// arg returns the i'th argument, or nil when absent — absent arguments all
// fall in one scope, which errs on the side of conflict.
func arg(args []Value, i int) Value {
	if i < 0 || i >= len(args) {
		return nil
	}
	return args[i]
}

// OpConflicts implements ConflictRelation.
func (d *DerivedRelation) OpConflicts(a, b OpInvocation) bool {
	if !d.knows(a.Op) || !d.knows(b.Op) {
		return true // unknown operation: conservatively conflict
	}
	v, ok := d.Pairs[[2]string{a.Op, b.Op}]
	if !ok {
		return false
	}
	if !v.Keyed {
		return true
	}
	return ValueEqual(arg(a.Args, v.ArgA), arg(b.Args, v.ArgB))
}

// StepConflicts implements ConflictRelation.
func (d *DerivedRelation) StepConflicts(a, b StepInfo) bool {
	return d.OpConflicts(a.Invocation(), b.Invocation())
}

// Sharded wraps the relation with a shard key on argument position a, so
// lock managers partition their bookkeeping per key (ScopeOf). It panics
// unless sharding is sound: every conflicting pair must be keyed on (a, a),
// otherwise two invocations with different keys could still conflict while
// the manager files them under different scopes.
func (d *DerivedRelation) Sharded(a int) *ShardedDerived {
	for pair, v := range d.Pairs {
		if !v.Keyed || v.ArgA != a || v.ArgB != a {
			panic(fmt.Sprintf("core: DerivedRelation.Sharded(%d): pair %s/%s is not keyed on argument %d",
				a, pair[0], pair[1], a))
		}
	}
	return &ShardedDerived{DerivedRelation: d, Arg: a}
}

// ShardedDerived is a DerivedRelation whose every conflict is keyed on one
// argument position; it additionally implements Sharder.
type ShardedDerived struct {
	*DerivedRelation
	// Arg is the argument position all conflicts are keyed on.
	Arg int
}

// ShardKey implements Sharder.
func (s *ShardedDerived) ShardKey(op string, args []Value) Value {
	return arg(args, s.Arg)
}

// Refine wraps a conflict relation with a step-granularity refinement:
// OpConflicts is the base relation's, StepConflicts holds only when the
// base conflicts AND refine says the completed steps really conflict (the
// return-value exploitation of Section 5.2). When the base relation shards
// (implements Sharder), the wrapper shards identically — refinement only
// ever shrinks the relation, so the base's scoping stays sound.
func Refine(base ConflictRelation, refine func(a, b StepInfo) bool) ConflictRelation {
	r := &refinedRelation{base: base, refine: refine}
	if s, ok := base.(Sharder); ok {
		return &refinedSharded{refinedRelation: r, sharder: s}
	}
	return r
}

type refinedRelation struct {
	base   ConflictRelation
	refine func(a, b StepInfo) bool
}

func (r *refinedRelation) OpConflicts(a, b OpInvocation) bool { return r.base.OpConflicts(a, b) }

func (r *refinedRelation) StepConflicts(a, b StepInfo) bool {
	return r.base.StepConflicts(a, b) && r.refine(a, b)
}

type refinedSharded struct {
	*refinedRelation
	sharder Sharder
}

func (r *refinedSharded) ShardKey(op string, args []Value) Value {
	return r.sharder.ShardKey(op, args)
}
