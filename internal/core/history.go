package core

import (
	"fmt"
	"sort"
)

// History is the executable form of Definition 5: h = (E, <, B, S).
//
//   - E is Execs;
//   - < is recorded by ticks (see Tick) together with the per-object
//     linearisations in Steps;
//   - B is recorded structurally: MessageStep.Child, consistent with the
//     ExecID path scheme;
//   - S is InitialStates.
//
// Histories are produced two ways: recorded by the runtime engine during a
// concurrent run, or hand-built through Builder in tests. Both flow through
// the same legality checks and the same serialisability oracle.
type History struct {
	// Execs maps ExecID.Key() to the execution record. It contains every
	// method execution of the history, including aborted ones.
	Execs map[string]*MethodExec
	// Roots lists top-level executions in start order.
	Roots []ExecID
	// Schemas maps object name to its schema. The environment object has
	// no schema and no local steps.
	Schemas map[string]*Schema
	// InitialStates is S: one initial state per (non-environment) object.
	InitialStates map[string]State
	// FinalStates records the states observed after the run; for
	// hand-built histories it may be nil, in which case legality replay
	// derives it.
	FinalStates map[string]State
	// Steps holds each object's local steps in the recorded linearisation
	// (ObjSeq order).
	Steps map[string][]*Step
	// Messages holds each execution's message steps in message order
	// (index k created child Child(k)).
	Messages map[string][]*MessageStep
	// LocalSteps holds each execution's local steps in issue order.
	LocalSteps map[string][]*Step
}

// NewHistory returns an empty history over the given objects.
func NewHistory() *History {
	return &History{
		Execs:         make(map[string]*MethodExec),
		Schemas:       make(map[string]*Schema),
		InitialStates: make(map[string]State),
		Steps:         make(map[string][]*Step),
		Messages:      make(map[string][]*MessageStep),
		LocalSteps:    make(map[string][]*Step),
	}
}

// AddObject registers an object instance with its schema and initial state.
func (h *History) AddObject(name string, sc *Schema, initial State) {
	h.Schemas[name] = sc
	h.InitialStates[name] = initial
}

// Exec returns the execution record for id, or nil.
func (h *History) Exec(id ExecID) *MethodExec { return h.Execs[id.Key()] }

// AllExecs returns every execution sorted by ID (deterministic iteration).
func (h *History) AllExecs() []*MethodExec {
	out := make([]*MethodExec, 0, len(h.Execs))
	for _, e := range h.Execs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Compare(out[j].ID) < 0 })
	return out
}

// ObjectNames returns the object names in sorted order.
func (h *History) ObjectNames() []string {
	out := make([]string, 0, len(h.Schemas))
	for n := range h.Schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MessageTo returns the message step of parent that created child, i.e. the
// t with B(t) = child, along with its index in the parent's message order.
func (h *History) MessageTo(child ExecID) (*MessageStep, int, error) {
	parent := child.Parent()
	if parent == nil {
		return nil, -1, fmt.Errorf("core: %s is top-level, no creating message", child)
	}
	k := int(child[len(child)-1])
	msgs := h.Messages[parent.Key()]
	if k < 0 || k >= len(msgs) {
		return nil, -1, fmt.Errorf("core: no message %d recorded for %s", k, parent)
	}
	m := msgs[k]
	if !m.Child.Equal(child) {
		return nil, -1, fmt.Errorf("core: message %d of %s created %s, not %s", k, parent, m.Child, child)
	}
	return m, k, nil
}

// AncestorMessage returns the message step of ancestor anc on the path to
// descendant exec id — "the ancestor of (the steps of) e in f" used by
// Definition 9(b). anc must be a proper ancestor of id.
func (h *History) AncestorMessage(anc, id ExecID) (*MessageStep, error) {
	if !anc.IsProperAncestorOf(id) {
		return nil, fmt.Errorf("core: %s is not a proper ancestor of %s", anc, id)
	}
	childOnPath := id[:len(anc)+1]
	m, _, err := h.MessageTo(childOnPath)
	return m, err
}

// ProgramOrdered reports whether, within one execution, event interval
// (s1,e1) precedes (s2,e2) in the method's partial order as witnessed by
// the record: same lane implies programme order by tick; across lanes, only
// completed-before-started counts (a lane is ordered after the event that
// spawned it because the engine stamps the spawn before the lane's first
// step).
func ProgramOrdered(end1, start2 Tick) bool { return end1 < start2 }

// Aborted reports whether the execution with the given ID is recorded as
// aborted.
func (h *History) Aborted(id ExecID) bool {
	e := h.Exec(id)
	return e != nil && e.Aborted
}

// EffectiveSteps returns the object's recorded steps with those belonging to
// aborted executions filtered out — the subsequence u of abort semantics (a)
// in Section 3.
func (h *History) EffectiveSteps(object string) []*Step {
	steps := h.Steps[object]
	out := make([]*Step, 0, len(steps))
	for _, s := range steps {
		if !h.Aborted(s.Exec) {
			out = append(out, s)
		}
	}
	return out
}

// CommittedTopLevel returns the IDs of non-aborted top-level executions in
// start order.
func (h *History) CommittedTopLevel() []ExecID {
	out := make([]ExecID, 0, len(h.Roots))
	for _, r := range h.Roots {
		if !h.Aborted(r) {
			out = append(out, r)
		}
	}
	return out
}

// StepCount returns the total number of local steps recorded.
func (h *History) StepCount() int {
	n := 0
	for _, ss := range h.Steps {
		n += len(ss)
	}
	return n
}

// Conflicts reports whether step a conflicts with step b under the schema of
// their (shared) object, at step granularity. The caller guarantees a and b
// are steps of the same object.
func (h *History) Conflicts(a, b *Step) bool {
	sc := h.Schemas[a.Object]
	if sc == nil {
		return true
	}
	return sc.Conflicts.StepConflicts(a.Info, b.Info)
}
