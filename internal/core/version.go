package core

import "fmt"

// This file is the core of the MVCC read-only fast path: committed object
// states are published as immutable versions tagged with a global commit
// sequence number, and read-only transactions evaluate their observer
// steps against the newest version at or below their snapshot — never
// touching the lock manager or the scheduler.
//
// The theory behind the fast path is the observer-commutes corner of the
// conflict lattice (Definition 3): an operation whose sigma is the
// identity commutes with every other such operation, so any number of
// read-only method executions may run against the same committed state
// concurrently; the only ordering they need is "after the commits their
// snapshot includes, before everything later", which the version sequence
// numbers provide.

// Version is one published snapshot of an object's committed state.
//
// A version is published when a top-level transaction that mutated the
// object commits with no other transaction's uncommitted effects present
// in the state; Seq is the committing transaction's position in the
// global commit sequence. When uncommitted alien effects *are* present
// (commuting writers overlapping under 2PL, or optimistic schedulers
// admitting dirty state), the committer publishes a Gap instead: a marker
// that the state as of Seq exists but could not be captured. Readers that
// land on a gap must refresh their snapshot (or fall back to locking).
type Version struct {
	// Seq is the global commit sequence number this version reflects: the
	// state contains the effects of exactly the commits <= Seq that
	// touched the object.
	Seq uint64
	// ObjSeq is the object's step-linearisation watermark at publication:
	// the number of local steps applied to the object before this version
	// was captured. Read-only steps served from the version are recorded
	// at this position, which is what lets the offline oracle replay them
	// against the very prefix they observed.
	ObjSeq int
	// State is the committed state; immutable once published. Nil for
	// gaps.
	State State
	// Gap marks a commit whose state could not be captured (see above).
	Gap bool
}

// versionRingCap bounds the number of retained versions per object. Only
// readers whose snapshot lags more than versionRingCap commits behind the
// object's write stream ever miss; they refresh and retry.
const versionRingCap = 8

// VersionRing is an immutable ring of an object's most recent versions in
// ascending Seq order. Push returns a new ring, so a publisher can swap
// the ring with a single atomic pointer store and readers never lock.
type VersionRing struct {
	vers []Version
}

// NewVersionRing returns a ring holding version 0: the object's initial
// state, the committed state before any transaction ran.
func NewVersionRing(initial State) *VersionRing {
	return &VersionRing{vers: []Version{{Seq: 0, ObjSeq: 0, State: initial}}}
}

// push appends v, evicting the oldest entries beyond the ring capacity.
func (r *VersionRing) push(v Version) *VersionRing {
	n := len(r.vers)
	start := 0
	if n+1 > versionRingCap {
		start = n + 1 - versionRingCap
	}
	out := make([]Version, 0, n-start+1)
	out = append(out, r.vers[start:]...)
	out = append(out, v)
	return &VersionRing{vers: out}
}

// Push publishes a captured state as the version at seq.
func (r *VersionRing) Push(seq uint64, objSeq int, st State) *VersionRing {
	return r.push(Version{Seq: seq, ObjSeq: objSeq, State: st})
}

// PushGap publishes a gap marker at seq: the commit happened but its
// state could not be captured.
func (r *VersionRing) PushGap(seq uint64) *VersionRing {
	return r.push(Version{Seq: seq, Gap: true})
}

// InsertGap records a gap at seq even when newer versions were already
// published (an out-of-order publisher that lost the race): the marker is
// inserted at its sorted position so readers between seq and the next
// version know their snapshot is unavailable rather than silently reading
// an older state that misses this commit. A seq older than everything
// retained is dropped — no reader can resolve there anyway.
func (r *VersionRing) InsertGap(seq uint64) *VersionRing {
	if seq >= r.Newest().Seq {
		return r.push(Version{Seq: seq, Gap: true})
	}
	if seq <= r.vers[0].Seq {
		// Older than (or colliding with) everything retained: no reader
		// can resolve there, so there is nothing to mark.
		return r
	}
	// Insert at the sorted position, scanning from the end (rings are
	// short).
	out := make([]Version, len(r.vers)+1)
	copy(out, r.vers)
	i := len(out) - 1
	for i > 0 && out[i-1].Seq > seq {
		out[i] = out[i-1]
		i--
	}
	out[i] = Version{Seq: seq, Gap: true}
	if len(out) > versionRingCap {
		out = append([]Version(nil), out[len(out)-versionRingCap:]...)
	}
	return &VersionRing{vers: out}
}

// Repair replaces the newest entry — a gap whose pending writers have all
// drained away (the last one aborted) — with a capture of the committed
// state at the same sequence number, reviving the fast path for readers
// that would otherwise fall back until the next committed write. No-op
// when the newest entry is not a gap.
func (r *VersionRing) Repair(objSeq int, st State) *VersionRing {
	n := len(r.vers)
	if !r.vers[n-1].Gap {
		return r
	}
	out := append([]Version(nil), r.vers...)
	out[n-1] = Version{Seq: out[n-1].Seq, ObjSeq: objSeq, State: st}
	return &VersionRing{vers: out}
}

// Lookup returns the newest version with Seq <= seq. ok is false when
// every retained version is newer than seq (the reader's snapshot has
// fallen off the ring). A returned gap means the snapshot at seq is
// unavailable for this object; the caller refreshes and retries.
func (r *VersionRing) Lookup(seq uint64) (Version, bool) {
	for i := len(r.vers) - 1; i >= 0; i-- {
		if r.vers[i].Seq <= seq {
			return r.vers[i], true
		}
	}
	return Version{}, false
}

// Newest returns the most recently published version.
func (r *VersionRing) Newest() Version { return r.vers[len(r.vers)-1] }

// Len returns the number of retained versions.
func (r *VersionRing) Len() int { return len(r.vers) }

// ReadOnlyOp classifies the named operation for the snapshot fast path:
// true means the operation is an observer (sigma is the identity) and may
// be served from a committed version; false means it mutates and must go
// through a scheduler. The classification is the schema's own ReadOnly
// declaration — the same bit the lock-based schedulers rely on for
// shared modes — and VerifyReadOnlySoundness is the executable check that
// the declaration is honest.
func (sc *Schema) ReadOnlyOp(name string) (bool, error) {
	op, err := sc.Op(name)
	if err != nil {
		return false, err
	}
	return op.ReadOnly, nil
}

// VerifyReadOnlySoundness checks that an operation declared ReadOnly
// really is an observer on the given state: applying it must leave the
// state unchanged, return no undo closure, and — per the conflict table —
// never conflict with another read-only step (observers commute).
// Property tests drive it across the object library, the same way
// VerifyConflictSoundness backs the conflict tables.
func VerifyReadOnlySoundness(sc *Schema, s State, inv OpInvocation) error {
	op, err := sc.Op(inv.Op)
	if err != nil {
		return err
	}
	if !op.ReadOnly {
		return nil // no obligation
	}
	before := sc.Clone(s)
	work := sc.Clone(s)
	ret, undo, err := op.Apply(work, inv.Args)
	if err != nil {
		return nil // not defined on s: nothing to check
	}
	if undo != nil {
		return fmt.Errorf("core: schema %s: read-only op %s returned an undo closure", sc.Name, inv.Op)
	}
	if !sc.EqualStates(before, work) {
		return fmt.Errorf("core: schema %s: read-only op %s mutated the state: %s -> %s", sc.Name, inv.Op, before, work)
	}
	step := StepInfo{Op: inv.Op, Args: inv.Args, Ret: ret}
	if sc.Conflicts.StepConflicts(step, step) {
		return fmt.Errorf("core: schema %s: read-only op %s declared conflicting with itself — observers must commute", sc.Name, inv.Op)
	}
	return nil
}
