// Package core implements the formal model of Hadzilacos & Hadzilacos,
// "Transaction Synchronisation in Object Bases" (PODS 1988 / JCSS 1991):
// objects with encapsulated variables, local operations defined as pairs of
// return-value and state-transform functions, local and message steps,
// method executions that form partial orders of steps, and histories
// h = (E, <, B, S) together with their legality conditions (Definitions 1-8
// of the paper).
//
// The package is deliberately free of any scheduling policy: it is the
// vocabulary shared by the runtime engine (internal/engine), the concurrency
// control algorithms (internal/cc) and the offline correctness oracle
// (internal/graph, internal/history). Both the schedulers and the oracle
// consume the same conflict relations, so tests verify exactly the property
// the schedulers enforce.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Value is the domain of object variables, operation arguments and return
// values. Implementations in this repository use comparable scalars
// (int64, string, bool, nil) plus []Value for structured results; Equal
// handles those cases. Schemas that store richer state (e.g. the B-tree
// object) keep it behind opaque variables and define their own conflict
// relations, so Value equality is only required where tests compare states.
type Value interface{}

// ValueEqual reports whether two values are equal, descending into []Value.
func ValueEqual(a, b Value) bool {
	as, aok := a.([]Value)
	bs, bok := b.([]Value)
	if aok || bok {
		if !aok || !bok || len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !ValueEqual(as[i], bs[i]) {
				return false
			}
		}
		return true
	}
	return a == b
}

// FormatValue renders a value deterministically for debugging and history
// dumps.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case []Value:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = FormatValue(e)
		}
		return "[" + strings.Join(parts, " ") + "]"
	case string:
		return fmt.Sprintf("%q", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// State is the mapping from an object's variable names to values
// (Definition 1: "a mapping associating values to the variables of an
// object is called a state of the object").
//
// State values must be treated as immutable once shared: operations receive
// the State and mutate it in place only under the object's latch inside the
// runtime, or on private copies during replay.
type State map[string]Value

// Clone returns a deep-enough copy of the state: the top-level map is
// copied, and []Value variables are copied recursively. Schemas whose
// variables hold pointers to mutable structures (the B-tree object) register
// a custom cloner via Schema.CloneState.
func (s State) Clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v Value) Value {
	if vs, ok := v.([]Value); ok {
		out := make([]Value, len(vs))
		for i, e := range vs {
			out[i] = cloneValue(e)
		}
		return out
	}
	return v
}

// Equal reports whether two states assign equal values to the same
// variables.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for k, v := range s {
		tv, ok := t[k]
		if !ok || !ValueEqual(v, tv) {
			return false
		}
	}
	return true
}

// String renders the state with sorted variable names so that dumps are
// deterministic.
func (s State) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, FormatValue(s[k]))
	}
	b.WriteByte('}')
	return b.String()
}
