package core

import (
	"strings"
	"testing"
)

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "nil"},
		{int64(5), "5"},
		{"abc", `"abc"`},
		{true, "true"},
		{[]Value{int64(1), "x", nil}, `[1 "x" nil]`},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	inv := OpInvocation{Op: "Write", Args: []Value{"x", int64(3)}}
	if got := inv.String(); !strings.Contains(got, "Write") || !strings.Contains(got, "3") {
		t.Errorf("inv.String() = %q", got)
	}
	st := StepInfo{Op: "Read", Args: []Value{"x"}, Ret: int64(7)}
	if got := st.String(); !strings.Contains(got, "Read") || !strings.Contains(got, "=7") {
		t.Errorf("step.String() = %q", got)
	}
	step := &Step{Exec: RootID(1), Object: "A", Info: st, ObjSeq: 4}
	if got := step.String(); !strings.Contains(got, "A") || !strings.Contains(got, "#4") {
		t.Errorf("Step.String() = %q", got)
	}
	m := &MessageStep{Exec: RootID(0), Child: RootID(0).Child(1), Object: "B", Method: "m", ChildAborted: true}
	if got := m.String(); !strings.Contains(got, "abort") || !strings.Contains(got, "B.m") {
		t.Errorf("MessageStep.String() = %q", got)
	}
	if got := (ExecID{}).String(); got != "ε" {
		t.Errorf("empty ExecID = %q", got)
	}
	s := State{"b": int64(2), "a": int64(1)}
	if got := s.String(); got != "{a=1, b=2}" {
		t.Errorf("State.String() = %q (must be sorted)", got)
	}
}

func TestSchemaHelpers(t *testing.T) {
	sc := testRegisterSchema()
	names := sc.OpNames()
	if len(names) != 2 || names[0] != "Read" || names[1] != "Write" {
		t.Fatalf("OpNames = %v", names)
	}
	if _, err := sc.Op("nope"); err == nil {
		t.Fatalf("unknown op must error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("MustOp on unknown op must panic")
			}
		}()
		sc.MustOp("nope")
	}()
	// NewSchema rejects duplicate operation names.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate op must panic")
			}
		}()
		op := &Operation{Name: "X", Apply: func(s State, a []Value) (Value, UndoFunc, error) { return nil, nil, nil }}
		NewSchema("dup", func() State { return State{} }, nil, op, op)
	}()
	// Nil relation defaults to TotalConflict.
	op := &Operation{Name: "X", Apply: func(s State, a []Value) (Value, UndoFunc, error) { return nil, nil, nil }}
	sc2 := NewSchema("d", func() State { return State{} }, nil, op)
	if _, ok := sc2.Conflicts.(TotalConflict); !ok {
		t.Fatalf("default relation must be TotalConflict")
	}
}

func TestScopeOf(t *testing.T) {
	rel := RWTable([]string{"Read"}, []string{"Write"}, nil)
	a := ScopeOf("obj", rel, OpInvocation{Op: "Read", Args: []Value{"x"}})
	b := ScopeOf("obj", rel, OpInvocation{Op: "Write", Args: []Value{"x", int64(1)}})
	c := ScopeOf("obj", rel, OpInvocation{Op: "Read", Args: []Value{"y"}})
	if a != b {
		t.Errorf("same variable must share a scope: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different variables must differ: %q", a)
	}
	// Non-sharding relations scope per object.
	d := ScopeOf("obj", TotalConflict{}, OpInvocation{Op: "Read"})
	e := ScopeOf("obj", TotalConflict{}, OpInvocation{Op: "Write"})
	if d != e || d != "obj" {
		t.Errorf("non-sharder scope: %q, %q", d, e)
	}
}

func TestBuilderMustFinishPanics(t *testing.T) {
	b := NewBuilder()
	b.Local(ExecID{5}, "nope", "Read") // construction error
	defer func() {
		if recover() == nil {
			t.Errorf("MustFinish must panic on builder error")
		}
	}()
	b.MustFinish()
}

func TestEffectiveStepsAndCommitted(t *testing.T) {
	b := NewBuilder()
	b.Object("A", testRegisterSchema(), State{"x": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "w")
	b.Local(m1, "A", "Write", "x", int64(1))
	b.AbortExec(t1)
	t2 := b.Top("T2")
	m2 := b.Call(t2, "A", "r")
	b.Local(m2, "A", "Read", "x")
	b.Return(m2, nil)
	h := b.MustFinish()

	if got := len(h.EffectiveSteps("A")); got != 1 {
		t.Fatalf("effective = %d", got)
	}
	roots := h.CommittedTopLevel()
	if len(roots) != 1 || roots[0][0] != 1 {
		t.Fatalf("committed roots = %v", roots)
	}
}
