// Package graph implements the serialisation-graph machinery of the paper:
// SG(h) from Definition 9 with the Serialisability Theorem (Theorem 2) test,
// the per-object graphs SG_local and SG_mesg with the sibling-message
// relation ->e from Definition 10, and the Theorem 5 decomposition check
// that separates intra-object from inter-object synchronisation.
//
// The package also provides the serial-replay oracle: an independent,
// state-level verification that a history is equivalent to a serial
// execution of its committed top-level transactions. Tests use both — the
// graph test is the paper's sufficient condition, the replay is the ground
// truth it promises.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"objectbase/internal/core"
)

// EdgeKind distinguishes the two clauses of Definition 9.
type EdgeKind uint8

const (
	// EdgeConflict is a type (a) edge: descendants of the two executions
	// issued conflicting local steps in this order.
	EdgeConflict EdgeKind = 1 << iota
	// EdgeProgram is a type (b) edge: the executions' ancestor messages are
	// programme-ordered (related by the lca's partial order).
	EdgeProgram
)

func (k EdgeKind) String() string {
	var parts []string
	if k&EdgeConflict != 0 {
		parts = append(parts, "conflict")
	}
	if k&EdgeProgram != 0 {
		parts = append(parts, "program")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// SG is a directed graph over method executions.
type SG struct {
	nodes map[string]core.ExecID
	edges map[string]map[string]EdgeKind
}

// NewSG returns an empty graph.
func NewSG() *SG {
	return &SG{
		nodes: make(map[string]core.ExecID),
		edges: make(map[string]map[string]EdgeKind),
	}
}

// AddNode inserts an execution as a node.
func (g *SG) AddNode(id core.ExecID) {
	if _, ok := g.nodes[id.Key()]; !ok {
		g.nodes[id.Key()] = id
	}
}

// AddEdge inserts (or widens) an edge from -> to.
func (g *SG) AddEdge(from, to core.ExecID, kind EdgeKind) {
	g.AddNode(from)
	g.AddNode(to)
	m := g.edges[from.Key()]
	if m == nil {
		m = make(map[string]EdgeKind)
		g.edges[from.Key()] = m
	}
	m[to.Key()] |= kind
}

// HasEdge reports whether an edge from -> to exists and its kind.
func (g *SG) HasEdge(from, to core.ExecID) (EdgeKind, bool) {
	k, ok := g.edges[from.Key()][to.Key()]
	return k, ok
}

// NodeCount returns the number of nodes.
func (g *SG) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of directed edges.
func (g *SG) EdgeCount() int {
	n := 0
	for _, m := range g.edges {
		n += len(m)
	}
	return n
}

// Nodes returns all node IDs sorted (deterministic).
func (g *SG) Nodes() []core.ExecID {
	out := make([]core.ExecID, 0, len(g.nodes))
	for _, id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Successors returns the sorted successor IDs of a node.
func (g *SG) Successors(id core.ExecID) []core.ExecID {
	m := g.edges[id.Key()]
	out := make([]core.ExecID, 0, len(m))
	for k := range m {
		out = append(out, g.nodes[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Acyclic reports whether the graph has no directed cycle.
func (g *SG) Acyclic() bool { return len(g.FindCycle()) == 0 }

// FindCycle returns some directed cycle as a node sequence (first == last
// conceptually; the returned slice lists the cycle's nodes once each), or
// nil if the graph is acyclic. Traversal order is deterministic.
func (g *SG) FindCycle() []core.ExecID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(g.nodes))
	parent := make(map[string]string)
	var cycle []core.ExecID

	var visit func(k string) bool
	visit = func(k string) bool {
		color[k] = grey
		succs := make([]string, 0, len(g.edges[k]))
		for s := range g.edges[k] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, s := range succs {
			switch color[s] {
			case white:
				parent[s] = k
				if visit(s) {
					return true
				}
			case grey:
				// Found a back edge k -> s: reconstruct the cycle.
				cyc := []core.ExecID{g.nodes[k]}
				for cur := k; cur != s; cur = parent[cur] {
					cyc = append(cyc, g.nodes[parent[cur]])
				}
				// Reverse to s..k order.
				for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				cycle = cyc
				return true
			}
		}
		color[k] = black
		return false
	}

	keys := make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if color[k] == white && visit(k) {
			return cycle
		}
	}
	return nil
}

// TopoOrder returns a topological order of the nodes, or an error carrying a
// cycle. Ties are broken by ID order, so the result is deterministic.
func (g *SG) TopoOrder() ([]core.ExecID, error) {
	if cyc := g.FindCycle(); cyc != nil {
		return nil, fmt.Errorf("graph: cycle %s", FormatCycle(cyc))
	}
	indeg := make(map[string]int, len(g.nodes))
	for k := range g.nodes {
		indeg[k] = 0
	}
	for _, m := range g.edges {
		for to := range m {
			indeg[to]++
		}
	}
	var ready []core.ExecID
	for k, d := range indeg {
		if d == 0 {
			ready = append(ready, g.nodes[k])
		}
	}
	sortIDs(ready)
	var out []core.ExecID
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		var newly []core.ExecID
		for to := range g.edges[n.Key()] {
			indeg[to]--
			if indeg[to] == 0 {
				newly = append(newly, g.nodes[to])
			}
		}
		sortIDs(newly)
		ready = mergeSorted(ready, newly)
	}
	return out, nil
}

func sortIDs(ids []core.ExecID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
}

func mergeSorted(a, b []core.ExecID) []core.ExecID {
	out := make([]core.ExecID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Compare(b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// FormatCycle renders a cycle for error messages.
func FormatCycle(cyc []core.ExecID) string {
	parts := make([]string, 0, len(cyc)+1)
	for _, id := range cyc {
		parts = append(parts, id.String())
	}
	if len(cyc) > 0 {
		parts = append(parts, cyc[0].String())
	}
	return strings.Join(parts, " -> ")
}

// String renders the graph deterministically.
func (g *SG) String() string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "%s:", n)
		for _, s := range g.Successors(n) {
			k, _ := g.HasEdge(n, s)
			fmt.Fprintf(&b, " %s(%s)", s, k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
