package graph

import (
	"fmt"

	"objectbase/internal/core"
)

// LocalGraph builds SG_local(h, o) of Definition 10: nodes are the method
// executions *of object o* in h; there is an edge e -> e' iff e, e' are
// incomparable and some local step of e itself (not of a descendant)
// precedes and conflicts with some local step of e'. Ensuring this graph is
// acyclic (together with SG_mesg) is the job of intra-object
// synchronisation.
func LocalGraph(h *core.History, object string, includeAborted bool) *SG {
	g := NewSG()
	include := func(id core.ExecID) bool { return includeAborted || !h.Aborted(id) }
	for _, e := range h.AllExecs() {
		if e.Object == object && include(e.ID) {
			g.AddNode(e.ID)
		}
	}
	steps := h.Steps[object]
	for i := 0; i < len(steps); i++ {
		si := steps[i]
		if !include(si.Exec) {
			continue
		}
		for j := i + 1; j < len(steps); j++ {
			sj := steps[j]
			if !include(sj.Exec) {
				continue
			}
			if si.Exec.Comparable(sj.Exec) {
				continue
			}
			if h.Conflicts(si, sj) {
				g.AddEdge(si.Exec, sj.Exec, EdgeConflict)
			}
		}
	}
	return g
}

// MesgGraph builds SG_mesg(h, o): same nodes as SG_local(h, o); an edge
// e -> e' iff e, e' are incomparable and there are *proper descendants*
// f of e and f' of e' such that (f, f') is an edge of SG_local(h, o') for
// some object o'. Ensuring this graph's acyclicity (in union with SG_local)
// is the job of inter-object synchronisation: it imports, into object o,
// orderings that o's executions incurred elsewhere through their
// descendants.
func MesgGraph(h *core.History, object string, includeAborted bool) *SG {
	g := NewSG()
	include := func(id core.ExecID) bool { return includeAborted || !h.Aborted(id) }
	var nodes []core.ExecID
	for _, e := range h.AllExecs() {
		if e.Object == object && include(e.ID) {
			g.AddNode(e.ID)
			nodes = append(nodes, e.ID)
		}
	}
	for _, obj2 := range h.ObjectNames() {
		local := LocalGraph(h, obj2, includeAborted)
		for _, f := range local.Nodes() {
			for _, f2 := range local.Successors(f) {
				// Lift the edge f -> f2 to incomparable proper ancestors
				// that are method executions of `object`.
				for _, e := range nodes {
					if !e.IsProperAncestorOf(f) {
						continue
					}
					for _, e2 := range nodes {
						if !e2.IsProperAncestorOf(f2) {
							continue
						}
						if e.Comparable(e2) {
							continue
						}
						g.AddEdge(e, e2, EdgeConflict)
					}
				}
			}
		}
	}
	return g
}

// SiblingOrder builds the relation ->e of Theorem 5(b) for one method
// execution e: nodes are e's message steps (identified by the child
// executions they created); u ->e u' iff u precedes u' in e's programme
// order, or some descendant step under u precedes and conflicts with some
// descendant step under u'.
func SiblingOrder(h *core.History, e core.ExecID, includeAborted bool) *SG {
	g := NewSG()
	include := func(id core.ExecID) bool { return includeAborted || !h.Aborted(id) }
	msgs := h.Messages[e.Key()]
	for _, m := range msgs {
		if include(m.Child) {
			g.AddNode(m.Child)
		}
	}
	for i, m1 := range msgs {
		if !include(m1.Child) {
			continue
		}
		for j, m2 := range msgs {
			if i == j || !include(m2.Child) {
				continue
			}
			if core.ProgramOrdered(m1.End, m2.Start) {
				g.AddEdge(m1.Child, m2.Child, EdgeProgram)
				continue
			}
			if conflictingDescendants(h, m1.Child, m2.Child, include) {
				g.AddEdge(m1.Child, m2.Child, EdgeConflict)
			}
		}
	}
	return g
}

// conflictingDescendants reports whether some local step of a descendant of
// u precedes and conflicts with some local step of a descendant of u2.
func conflictingDescendants(h *core.History, u, u2 core.ExecID, include func(core.ExecID) bool) bool {
	for _, obj := range h.ObjectNames() {
		steps := h.Steps[obj]
		for i := 0; i < len(steps); i++ {
			si := steps[i]
			if !include(si.Exec) || !u.IsAncestorOf(si.Exec) {
				continue
			}
			for j := i + 1; j < len(steps); j++ {
				sj := steps[j]
				if !include(sj.Exec) || !u2.IsAncestorOf(sj.Exec) {
					continue
				}
				if h.Conflicts(si, sj) {
					return true
				}
			}
		}
	}
	return false
}

// CheckTheorem5 verifies the two conditions of Theorem 5 on the committed
// projection of a history:
//
//	(a) for every object o, SG_local(h,o) ∪ SG_mesg(h,o) is acyclic; and
//	(b) for every method execution e, the relation ->e is acyclic.
//
// A nil return certifies the history serialisable by Theorem 5. The error
// identifies which condition failed and where — tests use it both ways:
// schedulers that enforce the decomposition must pass, and the §2
// counterexample (per-object serialisable but globally not) must fail.
//
// The environment object participates in condition (a): the proof of
// Theorem 5 chooses, for any SG cycle, an object of which all cycle members
// have ancestor executions, and "at least one such object, the environment,
// exists". Concretely, SG_mesg(h, environment) imports conflicts between
// top-level transactions, so the §2 counterexample fails exactly there.
func CheckTheorem5(h *core.History) error {
	objects := append(h.ObjectNames(), core.EnvironmentObject)
	for _, obj := range objects {
		union := LocalGraph(h, obj, false)
		mesg := MesgGraph(h, obj, false)
		for _, f := range mesg.Nodes() {
			for _, f2 := range mesg.Successors(f) {
				union.AddEdge(f, f2, EdgeConflict)
			}
		}
		if cyc := union.FindCycle(); cyc != nil {
			return fmt.Errorf("graph: Theorem 5(a) violated at object %s: cycle %s in SG_local ∪ SG_mesg", obj, FormatCycle(cyc))
		}
	}
	for _, e := range h.AllExecs() {
		if h.Aborted(e.ID) {
			continue
		}
		if cyc := SiblingOrder(h, e.ID, false).FindCycle(); cyc != nil {
			return fmt.Errorf("graph: Theorem 5(b) violated at execution %s: cycle %s in ->e", e.ID, FormatCycle(cyc))
		}
	}
	return nil
}
