package graph

import (
	"fmt"
	"sort"

	"objectbase/internal/core"
)

// Verdict is the result of the serialisability oracle.
type Verdict struct {
	// Serialisable is the overall answer.
	Serialisable bool
	// SGAcyclic reports whether SG(h) (committed projection) is acyclic —
	// the Theorem 2 sufficient condition.
	SGAcyclic bool
	// Cycle holds a witness cycle when SGAcyclic is false.
	Cycle []core.ExecID
	// SerialOrder is the equivalent serial order of committed top-level
	// transactions, when one was found.
	SerialOrder []core.ExecID
	// ReplayErr reports a failure of the state-level replay check.
	ReplayErr error
}

func (v Verdict) String() string {
	if v.Serialisable {
		return fmt.Sprintf("serialisable (order %v)", v.SerialOrder)
	}
	if !v.SGAcyclic {
		return fmt.Sprintf("NOT serialisable: SG cycle %s", FormatCycle(v.Cycle))
	}
	return fmt.Sprintf("NOT serialisable: %v", v.ReplayErr)
}

// Check runs the full oracle on a history:
//
//  1. build SG(h) over committed executions and test acyclicity (Theorem 2's
//     sufficient condition);
//  2. derive an equivalent serial order of the committed top-level
//     transactions from a topological sort; and
//  3. replay every object's committed steps permuted into that serial order,
//     verifying each recorded return value and the recorded final state.
//
// Step 3 is the ground truth Theorem 2 promises: the permuted sequence is a
// conflict-consistent permutation of the recorded linearisation, so by
// Lemma 2 it must be legal and reach the same final state; replay verifies
// that with the actual operations rather than the conflict tables.
func Check(h *core.History) Verdict {
	g := Build(h, BuildOptions{})
	v := Verdict{}
	if cyc := g.FindCycle(); cyc != nil {
		v.Cycle = cyc
		return v
	}
	v.SGAcyclic = true

	order, err := g.RootProjection().TopoOrder()
	if err != nil {
		v.ReplayErr = err
		return v
	}
	v.SerialOrder = order
	if err := SerialReplay(h, order); err != nil {
		v.ReplayErr = err
		return v
	}
	v.Serialisable = true
	return v
}

// SerialReplay re-executes each object's committed steps permuted into the
// given serial order of top-level transactions (steps of the same
// transaction keep their recorded relative order), verifying recorded return
// values and final states. An error means the history is not equivalent to
// the serial execution in that order.
func SerialReplay(h *core.History, order []core.ExecID) error {
	rank := make(map[int32]int, len(order))
	for i, id := range order {
		rank[id[0]] = i
	}
	for _, obj := range h.ObjectNames() {
		steps := h.EffectiveSteps(obj)
		permuted := make([]*core.Step, len(steps))
		copy(permuted, steps)
		sort.SliceStable(permuted, func(i, j int) bool {
			ri, iok := rank[permuted[i].Exec[0]]
			rj, jok := rank[permuted[j].Exec[0]]
			if !iok || !jok {
				// Executions outside the order (shouldn't happen for
				// committed steps) keep recorded order.
				return false
			}
			if ri != rj {
				return ri < rj
			}
			return permuted[i].ObjSeq < permuted[j].ObjSeq
		})
		final, err := core.ReplayObject(h.Schemas[obj], h.InitialStates[obj], permuted)
		if err != nil {
			return fmt.Errorf("serial replay of object %s in order %v: %w", obj, order, err)
		}
		if h.FinalStates != nil {
			if want, ok := h.FinalStates[obj]; ok && !h.Schemas[obj].EqualStates(final, want) {
				return fmt.Errorf("serial replay of object %s: final state %s differs from recorded %s", obj, final, want)
			}
		}
	}
	return nil
}
