package graph

import (
	"objectbase/internal/core"
)

// BuildOptions configures SG construction.
type BuildOptions struct {
	// IncludeAborted keeps aborted executions' steps in the graph. The
	// default (false) builds the graph of the committed projection: abort
	// semantics (a) makes aborted steps effect-free, so the serialisable
	// object is the history of surviving executions.
	IncludeAborted bool
}

// Build constructs SG(h) per Definition 9.
//
// Type (a) edges: for every ordered pair of conflicting local steps t (of
// execution f) before t' (of execution f') on the same object, an edge
// e -> e' is added for *every* pair of incomparable ancestors e of f and e'
// of f'. The paper's Observation after Definition 9 notes these ancestor
// edges all exist; materialising them makes sibling projections (used by the
// serial-order construction and Theorem 5) directly available.
//
// Type (b) edges: for every pair of incomparable executions whose least
// common ancestor exists, if the lca's message steps toward them are
// programme-ordered, an edge is added in that order.
func Build(h *core.History, opts BuildOptions) *SG {
	g := NewSG()
	include := func(id core.ExecID) bool {
		return opts.IncludeAborted || !h.Aborted(id)
	}

	// Nodes: every (included) method execution.
	for _, e := range h.AllExecs() {
		if include(e.ID) {
			g.AddNode(e.ID)
		}
	}

	// Type (a): conflicting local steps.
	for _, obj := range h.ObjectNames() {
		steps := h.Steps[obj]
		for i := 0; i < len(steps); i++ {
			si := steps[i]
			if !include(si.Exec) {
				continue
			}
			for j := i + 1; j < len(steps); j++ {
				sj := steps[j]
				if !include(sj.Exec) {
					continue
				}
				if si.Exec.Comparable(sj.Exec) {
					continue // ordered by programme structure, not a Def 9(a) edge
				}
				if !h.Conflicts(si, sj) {
					continue
				}
				addAncestorEdges(g, si.Exec, sj.Exec)
			}
		}
	}

	// Type (b): programme-ordered sibling messages at the lca.
	execs := h.AllExecs()
	for i := 0; i < len(execs); i++ {
		for j := 0; j < len(execs); j++ {
			if i == j {
				continue
			}
			e, e2 := execs[i].ID, execs[j].ID
			if !include(e) || !include(e2) || e.Comparable(e2) {
				continue
			}
			lca, ok := core.LCA(e, e2)
			if !ok {
				continue
			}
			m1, err1 := h.AncestorMessage(lca, e)
			m2, err2 := h.AncestorMessage(lca, e2)
			if err1 != nil || err2 != nil {
				continue
			}
			if core.ProgramOrdered(m1.End, m2.Start) {
				g.AddEdge(e, e2, EdgeProgram)
			}
		}
	}
	return g
}

// addAncestorEdges adds e -> e' (type a) for every incomparable ancestor
// pair of f, f2. With path IDs, the incomparable ancestor pairs are exactly
// the prefixes longer than the common prefix.
func addAncestorEdges(g *SG, f, f2 core.ExecID) {
	l := commonPrefixLen(f, f2)
	for i := l + 1; i <= len(f); i++ {
		for j := l + 1; j <= len(f2); j++ {
			g.AddEdge(f[:i], f2[:j], EdgeConflict)
		}
	}
}

func commonPrefixLen(a, b core.ExecID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// RootProjection returns the subgraph induced on top-level executions.
func (g *SG) RootProjection() *SG {
	out := NewSG()
	for _, n := range g.Nodes() {
		if len(n) == 1 {
			out.AddNode(n)
		}
	}
	for _, n := range g.Nodes() {
		if len(n) != 1 {
			continue
		}
		for to, kind := range g.edges[n.Key()] {
			id := g.nodes[to]
			if len(id) == 1 {
				out.AddEdge(n, id, kind)
			}
		}
	}
	return out
}
