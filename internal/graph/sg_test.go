package graph

import (
	"strings"
	"testing"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// serialTwoTxns: T1 then T2, each read-modify-write on register A.x.
func serialTwoTxns(t *testing.T) *core.History {
	t.Helper()
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})
	for i := 0; i < 2; i++ {
		ti := b.Top("T")
		m := b.Call(ti, "A", "bump")
		v := b.Local(m, "A", "Read", "x")
		b.Local(m, "A", "Write", "x", v.(int64)+1)
		b.Return(m, nil)
	}
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// lostUpdate: the classical non-serialisable interleaving
// R1(x) R2(x) W1(x) W2(x).
func lostUpdate(t *testing.T) *core.History {
	t.Helper()
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "bump")
	t2 := b.Top("T2")
	m2 := b.Call(t2, "A", "bump")
	v1 := b.Local(m1, "A", "Read", "x")
	v2 := b.Local(m2, "A", "Read", "x")
	b.Local(m1, "A", "Write", "x", v1.(int64)+1)
	b.Local(m2, "A", "Write", "x", v2.(int64)+1)
	b.Return(m1, nil)
	b.Return(m2, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSerialHistoryCertified(t *testing.T) {
	h := serialTwoTxns(t)
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("legal: %v", err)
	}
	v := Check(h)
	if !v.Serialisable || !v.SGAcyclic {
		t.Fatalf("serial history not certified: %v", v)
	}
	if len(v.SerialOrder) != 2 {
		t.Fatalf("order = %v", v.SerialOrder)
	}
	// T1 before T2 (the only consistent order).
	if !v.SerialOrder[0].Equal(core.RootID(0)) {
		t.Fatalf("order = %v, want T0 first", v.SerialOrder)
	}
}

func TestLostUpdateRejected(t *testing.T) {
	h := lostUpdate(t)
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("legal (it is a legal, merely non-serialisable, history): %v", err)
	}
	v := Check(h)
	if v.Serialisable {
		t.Fatalf("lost update certified serialisable: %v", v)
	}
	if v.SGAcyclic {
		t.Fatalf("lost update must produce an SG cycle")
	}
	if len(v.Cycle) < 2 {
		t.Fatalf("cycle witness = %v", v.Cycle)
	}
	if got := v.String(); !strings.Contains(got, "cycle") {
		t.Fatalf("verdict string = %q", got)
	}
}

// TestSection2Counterexample reproduces the paper's Section 2 example: T1
// and T2 each access objects A and B; A serialises T1 before T2 while B
// serialises T2 before T1. Each object's computation is serialisable, the
// overall one is not — and CheckTheorem5 must localise the failure at the
// environment object (condition (a)).
func TestSection2Counterexample(t *testing.T) {
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})
	b.Object("B", objects.Register(), core.State{"y": int64(0)})

	t1 := b.Top("T1")
	t2 := b.Top("T2")

	// At A: T1's method writes then T2's method writes (T1 -> T2).
	a1 := b.Call(t1, "A", "setX")
	b.Local(a1, "A", "Write", "x", int64(1))
	b.Return(a1, nil)
	a2 := b.Call(t2, "A", "setX")
	b.Local(a2, "A", "Write", "x", int64(2))
	b.Return(a2, nil)

	// At B: T2's method writes then T1's method writes (T2 -> T1).
	b2 := b.Call(t2, "B", "setY")
	b.Local(b2, "B", "Write", "y", int64(2))
	b.Return(b2, nil)
	b1 := b.Call(t1, "B", "setY")
	b.Local(b1, "B", "Write", "y", int64(1))
	b.Return(b1, nil)

	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("legal: %v", err)
	}

	// Each object alone is serialisable: SG_local acyclic at A and B.
	for _, obj := range []string{"A", "B"} {
		if cyc := LocalGraph(h, obj, false).FindCycle(); cyc != nil {
			t.Fatalf("SG_local(%s) has cycle %v; per-object computation should be serialisable", obj, cyc)
		}
	}

	// Globally it is not.
	v := Check(h)
	if v.Serialisable || v.SGAcyclic {
		t.Fatalf("counterexample certified serialisable: %v", v)
	}

	// Theorem 5 localises the failure at the environment object.
	err = CheckTheorem5(h)
	if err == nil {
		t.Fatalf("Theorem 5 conditions must fail on the counterexample")
	}
	if !strings.Contains(err.Error(), core.EnvironmentObject) {
		t.Fatalf("failure should be at the environment object, got: %v", err)
	}
}

// TestCommutingOpsInterleaved: interleaved counter Adds of two transactions
// produce no conflict edges and are certified serialisable even though their
// steps interleave — the concurrency the paper's arbitrary-operation model
// buys.
func TestCommutingOpsInterleaved(t *testing.T) {
	b := core.NewBuilder()
	b.Object("C", objects.Counter(), core.State{"n": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "C", "add")
	t2 := b.Top("T2")
	m2 := b.Call(t2, "C", "add")
	b.Local(m1, "C", "Add", int64(1))
	b.Local(m2, "C", "Add", int64(10))
	b.Local(m1, "C", "Add", int64(2))
	b.Local(m2, "C", "Add", int64(20))
	b.Return(m1, nil)
	b.Return(m2, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(h, BuildOptions{})
	for _, n := range g.Nodes() {
		for _, s := range g.Successors(n) {
			if k, _ := g.HasEdge(n, s); k&EdgeConflict != 0 {
				t.Fatalf("unexpected conflict edge %s -> %s", n, s)
			}
		}
	}
	v := Check(h)
	if !v.Serialisable {
		t.Fatalf("commuting interleaving rejected: %v", v)
	}
	if err := CheckTheorem5(h); err != nil {
		t.Fatalf("Theorem 5: %v", err)
	}
}

// TestGetMakesCounterConflict: with a Get between the Adds the interleaving
// direction matters.
func TestGetMakesCounterConflict(t *testing.T) {
	b := core.NewBuilder()
	b.Object("C", objects.Counter(), core.State{"n": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "C", "addTwice")
	t2 := b.Top("T2")
	m2 := b.Call(t2, "C", "get")
	b.Local(m1, "C", "Add", int64(1))
	b.Local(m2, "C", "Get") // sees 1: T1 -> T2
	b.Local(m1, "C", "Add", int64(1))
	// T1's second Add conflicts with T2's earlier Get: T2 -> T1. Cycle.
	b.Return(m1, nil)
	b.Return(m2, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	v := Check(h)
	if v.SGAcyclic {
		t.Fatalf("expected SG cycle from Get between Adds")
	}
}

func TestTypeBEdgesProgramOrder(t *testing.T) {
	// One transaction sends two sequential messages; their executions'
	// programme order must appear as a type (b) edge.
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "first")
	b.Local(m1, "A", "Write", "x", int64(1))
	b.Return(m1, nil)
	m2 := b.Call(t1, "A", "second")
	b.Local(m2, "A", "Read", "x")
	b.Return(m2, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(h, BuildOptions{})
	kind, ok := g.HasEdge(m1, m2)
	if !ok || kind&EdgeProgram == 0 {
		t.Fatalf("expected program edge %s -> %s, graph:\n%s", m1, m2, g)
	}
	if _, back := g.HasEdge(m2, m1); back {
		t.Fatalf("unexpected back edge")
	}
	v := Check(h)
	if !v.Serialisable {
		t.Fatalf("sequential siblings rejected: %v", v)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := NewSG()
	a, b2, c := core.RootID(0), core.RootID(1), core.RootID(2)
	g.AddEdge(a, c, EdgeConflict)
	g.AddEdge(b2, c, EdgeConflict)
	order1, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	order2, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order1) != 3 || !order1[2].Equal(c) {
		t.Fatalf("order = %v", order1)
	}
	for i := range order1 {
		if !order1[i].Equal(order2[i]) {
			t.Fatalf("nondeterministic topo order: %v vs %v", order1, order2)
		}
	}
}

func TestFindCycleSelfConsistent(t *testing.T) {
	g := NewSG()
	a, b2, c := core.RootID(0), core.RootID(1), core.RootID(2)
	g.AddEdge(a, b2, EdgeConflict)
	g.AddEdge(b2, c, EdgeConflict)
	g.AddEdge(c, a, EdgeConflict)
	cyc := g.FindCycle()
	if len(cyc) != 3 {
		t.Fatalf("cycle = %v", cyc)
	}
	// Every consecutive pair must be an edge.
	for i := range cyc {
		from, to := cyc[i], cyc[(i+1)%len(cyc)]
		if _, ok := g.HasEdge(from, to); !ok {
			t.Fatalf("cycle %v claims edge %s->%s that doesn't exist", cyc, from, to)
		}
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Fatalf("TopoOrder must fail on a cyclic graph")
	}
}

func TestRootProjection(t *testing.T) {
	h := lostUpdate(t)
	g := Build(h, BuildOptions{})
	roots := g.RootProjection()
	if roots.NodeCount() != 2 {
		t.Fatalf("root nodes = %d", roots.NodeCount())
	}
	// The lost-update cycle must survive projection (the ancestor edges
	// were materialised).
	if roots.Acyclic() {
		t.Fatalf("root projection lost the cycle")
	}
}

func TestAbortedExecsExcluded(t *testing.T) {
	// T1 and T2 conflict in both directions, but T2 aborts: committed
	// projection is serialisable.
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0), "y": int64(0)})
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "m")
	t2 := b.Top("T2")
	m2 := b.Call(t2, "A", "m")
	b.Local(m1, "A", "Write", "x", int64(1))
	b.Local(m2, "A", "Read", "y") // T2 -> T1 once T1 writes y below
	b.Local(m2, "A", "Write", "x", int64(2))
	b.Local(m1, "A", "Write", "y", int64(1))
	// Cycle in the full graph: m1 ->x m2 and m2 ->y m1. T2 aborts; its
	// only mutation (x=2) is undone cleanly because it was the latest
	// write of x.
	b.AbortExec(t2)
	b.Return(m1, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	full := Build(h, BuildOptions{IncludeAborted: true})
	if full.Acyclic() {
		t.Fatalf("full graph should have the cycle")
	}
	v := Check(h)
	if !v.Serialisable {
		t.Fatalf("committed projection should be serialisable: %v", v)
	}
}

func TestSerialReplayCatchesWrongOrder(t *testing.T) {
	h := serialTwoTxns(t)
	// Replaying T2 before T1 must fail: T2's Read recorded 1, but in the
	// swapped order it reads 0.
	err := SerialReplay(h, []core.ExecID{core.RootID(1), core.RootID(0)})
	if err == nil {
		t.Fatalf("wrong serial order must fail replay")
	}
	if err := SerialReplay(h, []core.ExecID{core.RootID(0), core.RootID(1)}); err != nil {
		t.Fatalf("correct order: %v", err)
	}
}

func TestSiblingOrderConflictEdges(t *testing.T) {
	// One parent sends two messages whose executions conflict at an
	// object: ->e must have a conflict edge between them.
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})
	t1 := b.Top("T1")
	m := b.Call(t1, "A", "outer")
	c1 := b.Call(m, "A", "w1")
	b.Local(c1, "A", "Write", "x", int64(1))
	b.Return(c1, nil)
	c2 := b.Call(m, "A", "w2")
	b.Local(c2, "A", "Write", "x", int64(2))
	b.Return(c2, nil)
	b.Return(m, nil)
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	so := SiblingOrder(h, m, false)
	kind, ok := so.HasEdge(c1, c2)
	if !ok {
		t.Fatalf("expected ->e edge %s -> %s", c1, c2)
	}
	// Sequential messages: the programme edge applies (conflict edge is
	// only added when not programme-ordered).
	if kind&EdgeProgram == 0 {
		t.Fatalf("sequential messages should be programme-ordered, got %v", kind)
	}
	if err := CheckTheorem5(h); err != nil {
		t.Fatalf("Theorem 5: %v", err)
	}
}

func TestMesgGraphImportsRemoteConflicts(t *testing.T) {
	// Executions at object O delegate conflicting work to object A: the
	// conflict at A must appear in SG_mesg(h, O).
	b := core.NewBuilder()
	b.Object("O", objects.Register(), core.State{})
	b.Object("A", objects.Register(), core.State{"x": int64(0)})

	t1 := b.Top("T1")
	o1 := b.Call(t1, "O", "viaA")
	t2 := b.Top("T2")
	o2 := b.Call(t2, "O", "viaA")

	a1 := b.Call(o1, "A", "w")
	b.Local(a1, "A", "Write", "x", int64(1))
	b.Return(a1, nil)
	a2 := b.Call(o2, "A", "w")
	b.Local(a2, "A", "Write", "x", int64(2))
	b.Return(a2, nil)
	b.Return(o1, nil)
	b.Return(o2, nil)

	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mg := MesgGraph(h, "O", false)
	if _, ok := mg.HasEdge(o1, o2); !ok {
		t.Fatalf("SG_mesg(O) must import the A-conflict:\n%s", mg)
	}
	lg := LocalGraph(h, "O", false)
	if lg.EdgeCount() != 0 {
		t.Fatalf("SG_local(O) should be empty (no local steps at O)")
	}
}
