package graph

import (
	"strings"
	"testing"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// TestSiblingOrderCycleCondition5b constructs the situation Theorem 5(b)
// guards against: two concurrent messages of one method execution whose
// child executions conflict at two objects in opposite orders. Each
// object's computation orders the siblings consistently *per object*, but
// the two objects disagree — the ->e relation is cyclic and the history
// cannot order the two messages in an equivalent serial execution.
func TestSiblingOrderCycleCondition5b(t *testing.T) {
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})
	b.Object("B", objects.Register(), core.State{"y": int64(0)})

	top := b.Top("T")
	parent := b.Call(top, "A", "fanout")
	// Two sibling messages; their intervals must overlap so they are not
	// programme-ordered. Builder ticks are sequential, so open both before
	// any local steps.
	c1 := b.Call(parent, "A", "leg1")
	c2 := b.Call(parent, "B", "leg2")

	// At A: c1's write precedes c2's... c2 is a method of B but issues a
	// local step at A via a nested child; keep it direct for simplicity:
	// builder permits local steps on any object.
	b.Local(c1, "A", "Write", "x", int64(1))
	b.Local(c2, "A", "Write", "x", int64(2)) // c1 -> c2 at A
	b.Local(c2, "B", "Write", "y", int64(2))
	b.Local(c1, "B", "Write", "y", int64(1)) // c2 -> c1 at B
	b.Return(c2, nil)
	b.Return(c1, nil)
	b.Return(parent, nil)

	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	so := SiblingOrder(h, parent, false)
	if so.Acyclic() {
		t.Fatalf("->e should be cyclic:\n%s", so)
	}
	err = CheckTheorem5(h)
	if err == nil {
		t.Fatalf("Theorem 5(b) violation must be reported")
	}
	if !strings.Contains(err.Error(), "Theorem 5(b)") {
		t.Fatalf("expected a 5(b) failure, got: %v", err)
	}
	// The overall history indeed has an SG cycle (between the siblings).
	if v := Check(h); v.SGAcyclic {
		t.Fatalf("sibling cross conflict must show as an SG cycle")
	}
}

// TestSiblingOrderProgramEdgeWins: when the messages are sequential, the
// programme edge orders them and the conflict direction agrees; no cycle.
func TestSiblingOrderSequentialConsistent(t *testing.T) {
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})

	top := b.Top("T")
	parent := b.Call(top, "A", "seq")
	c1 := b.Call(parent, "A", "leg1")
	b.Local(c1, "A", "Write", "x", int64(1))
	b.Return(c1, nil)
	c2 := b.Call(parent, "A", "leg2")
	b.Local(c2, "A", "Write", "x", int64(2))
	b.Return(c2, nil)
	b.Return(parent, nil)

	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTheorem5(h); err != nil {
		t.Fatalf("consistent sequential siblings must pass: %v", err)
	}
	if v := Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}

// TestLocalGraphDirectStepsOnly: SG_local considers steps of the execution
// itself, not of its descendants (those are SG_mesg's business).
func TestLocalGraphDirectStepsOnly(t *testing.T) {
	b := core.NewBuilder()
	b.Object("O", objects.Register(), core.State{})
	b.Object("A", objects.Register(), core.State{"x": int64(0)})

	t1 := b.Top("T1")
	o1 := b.Call(t1, "O", "viaChild")
	t2 := b.Top("T2")
	o2 := b.Call(t2, "O", "direct")

	// o1 conflicts with o2's work at A only through a child.
	a1 := b.Call(o1, "A", "w")
	b.Local(a1, "A", "Write", "x", int64(1))
	b.Return(a1, nil)
	b.Local(o2, "A", "Write", "x", int64(2))
	b.Return(o1, nil)
	b.Return(o2, nil)

	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	lg := LocalGraph(h, "A", false)
	// Direct steps at A: a1's and o2's. a1 -> o2 edge exists in SG_local(A).
	if _, ok := lg.HasEdge(a1, o2); !ok {
		t.Fatalf("SG_local(A) missing a1->o2:\n%s", lg)
	}
	// SG_local(O) has no edges (no local steps at O at all).
	if LocalGraph(h, "O", false).EdgeCount() != 0 {
		t.Fatalf("SG_local(O) must be empty")
	}
	// SG_mesg(O) imports the A conflict, lifted to o1 -> o2? o2 issued the
	// step itself (not a proper descendant), so the lift requires proper
	// descendants on both sides: no edge o1->o2 in SG_mesg(O).
	mg := MesgGraph(h, "O", false)
	if _, ok := mg.HasEdge(o1, o2); ok {
		t.Fatalf("SG_mesg lift requires proper descendants on both sides:\n%s", mg)
	}
	// The conflict still reaches the environment projection: the top-level
	// executions are ordered in SG_mesg(environment).
	env := MesgGraph(h, core.EnvironmentObject, false)
	if _, ok := env.HasEdge(t1.Top(), t2.Top()); !ok {
		t.Fatalf("SG_mesg(environment) missing T1->T2:\n%s", env)
	}
	if err := CheckTheorem5(h); err != nil {
		t.Fatalf("theorem 5 should hold here: %v", err)
	}
}
