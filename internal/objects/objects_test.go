package objects

import (
	"math/rand"
	"testing"
	"testing/quick"

	"objectbase/internal/core"
)

// soundnessCheck drives core.VerifyConflictSoundness with random states and
// invocation pairs: whenever the schema declares a pair of steps
// non-conflicting, executing them in either order must be indistinguishable
// (Definition 3).
func soundnessCheck(t *testing.T, sc *core.Schema, seed int64,
	randState func(r *rand.Rand) core.State,
	randInv func(r *rand.Rand) core.OpInvocation,
	rounds int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	f := func() bool {
		s := randState(r)
		a, b := randInv(r), randInv(r)
		if err := core.VerifyConflictSoundness(sc, s, a, b); err != nil {
			t.Logf("soundness: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: rounds}); err != nil {
		t.Error(err)
	}
}

func TestRegisterSoundness(t *testing.T) {
	vars := []string{"x", "y"}
	soundnessCheck(t, Register(), 1,
		func(r *rand.Rand) core.State {
			s := core.State{}
			for _, v := range vars {
				if r.Intn(2) == 0 {
					s[v] = int64(r.Intn(10))
				}
			}
			return s
		},
		func(r *rand.Rand) core.OpInvocation {
			v := vars[r.Intn(len(vars))]
			if r.Intn(2) == 0 {
				return core.OpInvocation{Op: "Read", Args: []core.Value{v}}
			}
			return core.OpInvocation{Op: "Write", Args: []core.Value{v, int64(r.Intn(10))}}
		}, 3000)
}

func TestCounterSoundness(t *testing.T) {
	soundnessCheck(t, Counter(), 2,
		func(r *rand.Rand) core.State {
			return core.State{"n": int64(r.Intn(100))}
		},
		func(r *rand.Rand) core.OpInvocation {
			if r.Intn(2) == 0 {
				return core.OpInvocation{Op: "Add", Args: []core.Value{int64(r.Intn(5) - 2)}}
			}
			return core.OpInvocation{Op: "Get"}
		}, 2000)
}

func TestAccountSoundness(t *testing.T) {
	soundnessCheck(t, Account(), 3,
		func(r *rand.Rand) core.State {
			return core.State{"balance": int64(r.Intn(20))}
		},
		func(r *rand.Rand) core.OpInvocation {
			switch r.Intn(3) {
			case 0:
				return core.OpInvocation{Op: "Deposit", Args: []core.Value{int64(1 + r.Intn(10))}}
			case 1:
				return core.OpInvocation{Op: "Withdraw", Args: []core.Value{int64(1 + r.Intn(15))}}
			default:
				return core.OpInvocation{Op: "Balance"}
			}
		}, 6000)
}

func TestQueueSoundness(t *testing.T) {
	soundnessCheck(t, Queue(), 4,
		func(r *rand.Rand) core.State {
			n := r.Intn(4)
			items := make([]core.Value, n)
			for i := range items {
				items[i] = int64(r.Intn(5)) // small domain: duplicates likely
			}
			return core.State{"items": items}
		},
		func(r *rand.Rand) core.OpInvocation {
			switch r.Intn(3) {
			case 0:
				return core.OpInvocation{Op: "Enqueue", Args: []core.Value{int64(r.Intn(5))}}
			case 1:
				return core.OpInvocation{Op: "Dequeue"}
			default:
				return core.OpInvocation{Op: "Len"}
			}
		}, 6000)
}

func TestSetSoundness(t *testing.T) {
	soundnessCheck(t, Set(), 5,
		func(r *rand.Rand) core.State {
			s := core.State{}
			for x := int64(0); x < 3; x++ {
				if r.Intn(2) == 0 {
					s[kelem(x)] = true
				}
			}
			return s
		},
		func(r *rand.Rand) core.OpInvocation {
			x := int64(r.Intn(3))
			switch r.Intn(3) {
			case 0:
				return core.OpInvocation{Op: "Add", Args: []core.Value{x}}
			case 1:
				return core.OpInvocation{Op: "Remove", Args: []core.Value{x}}
			default:
				return core.OpInvocation{Op: "Contains", Args: []core.Value{x}}
			}
		}, 6000)
}

func kelem(x int64) string {
	return map[int64]string{0: "e0", 1: "e1", 2: "e2"}[x]
}

func TestQueueFIFO(t *testing.T) {
	sc := Queue()
	s := sc.NewState()
	apply := func(op string, args ...core.Value) core.Value {
		ret, _, err := sc.MustOp(op).Apply(s, args)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return ret
	}
	if got := apply("Dequeue"); got != nil {
		t.Fatalf("dequeue empty = %v", got)
	}
	apply("Enqueue", int64(1))
	apply("Enqueue", int64(2))
	apply("Enqueue", int64(3))
	if got := apply("Len"); got != int64(3) {
		t.Fatalf("len = %v", got)
	}
	for want := int64(1); want <= 3; want++ {
		if got := apply("Dequeue"); got != want {
			t.Fatalf("dequeue = %v, want %d", got, want)
		}
	}
}

func TestQueueUndo(t *testing.T) {
	sc := Queue()
	s := sc.NewState()
	_, undoE, _ := sc.MustOp("Enqueue").Apply(s, []core.Value{int64(7)})
	ret, undoD, _ := sc.MustOp("Dequeue").Apply(s, nil)
	if ret != int64(7) {
		t.Fatalf("dequeue = %v", ret)
	}
	undoD(s) // restore the 7 at the head
	undoE(s) // remove the appended 7
	if items := s["items"].([]core.Value); len(items) != 0 {
		t.Fatalf("after undo: %v", items)
	}
}

func TestAccountWithdrawSemantics(t *testing.T) {
	sc := Account()
	s := sc.NewState()
	dep := sc.MustOp("Deposit")
	wd := sc.MustOp("Withdraw")
	bal := sc.MustOp("Balance")

	if ok, _, _ := wd.Apply(s, []core.Value{int64(5)}); ok != false {
		t.Fatalf("withdraw from empty = %v", ok)
	}
	if _, _, err := dep.Apply(s, []core.Value{int64(10)}); err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := wd.Apply(s, []core.Value{int64(7)}); ok != true {
		t.Fatalf("withdraw 7 of 10 = %v", ok)
	}
	if b, _, _ := bal.Apply(s, nil); b != int64(3) {
		t.Fatalf("balance = %v", b)
	}
}

func TestAccountAsymmetricConflicts(t *testing.T) {
	rel := Account().Conflicts
	depStep := core.StepInfo{Op: "Deposit", Args: []core.Value{int64(5)}}
	wOK := core.StepInfo{Op: "Withdraw", Args: []core.Value{int64(5)}, Ret: true}
	wFail := core.StepInfo{Op: "Withdraw", Args: []core.Value{int64(5)}, Ret: false}

	if rel.StepConflicts(wOK, depStep) {
		t.Errorf("successful withdrawal then deposit must commute")
	}
	if !rel.StepConflicts(depStep, wOK) {
		t.Errorf("deposit then successful withdrawal must conflict (asymmetry)")
	}
	if !rel.StepConflicts(wFail, depStep) {
		t.Errorf("failed withdrawal then deposit must conflict")
	}
	if rel.StepConflicts(depStep, wFail) {
		t.Errorf("deposit then failed withdrawal must commute")
	}
	// Operation granularity is conservative.
	if !rel.OpConflicts(core.OpInvocation{Op: "Withdraw"}, core.OpInvocation{Op: "Deposit"}) {
		t.Errorf("operation granularity must be conservative for Withdraw/Deposit")
	}
	if rel.OpConflicts(core.OpInvocation{Op: "Deposit"}, core.OpInvocation{Op: "Deposit"}) {
		t.Errorf("Deposit/Deposit commute at operation granularity")
	}
}

func TestQueueStepGranularityExample(t *testing.T) {
	// The paper's Section 5.1 example, verbatim: an Enqueue conflicts with
	// a Dequeue only if the latter returns the item placed by the former.
	rel := Queue().Conflicts
	enq := core.StepInfo{Op: "Enqueue", Args: []core.Value{int64(42)}}
	deqHit := core.StepInfo{Op: "Dequeue", Ret: int64(42)}
	deqMiss := core.StepInfo{Op: "Dequeue", Ret: int64(7)}
	deqNil := core.StepInfo{Op: "Dequeue", Ret: nil}

	if !rel.StepConflicts(enq, deqHit) {
		t.Errorf("Dequeue returning the enqueued item must conflict")
	}
	if rel.StepConflicts(enq, deqMiss) {
		t.Errorf("Dequeue returning another item must not conflict")
	}
	if !rel.StepConflicts(deqNil, enq) {
		t.Errorf("empty Dequeue then Enqueue must conflict")
	}
	if rel.StepConflicts(deqMiss, enq) {
		t.Errorf("non-empty Dequeue then Enqueue must commute")
	}
	if !rel.OpConflicts(enq.Invocation(), deqHit.Invocation()) {
		t.Errorf("operation granularity must be conservative")
	}
}

func TestSetPerElementScoping(t *testing.T) {
	rel := Set().Conflicts
	addX := core.OpInvocation{Op: "Add", Args: []core.Value{int64(1)}}
	addY := core.OpInvocation{Op: "Add", Args: []core.Value{int64(2)}}
	if rel.OpConflicts(addX, addY) {
		t.Errorf("operations on distinct elements must not conflict")
	}
	if !rel.OpConflicts(addX, addX) {
		t.Errorf("Add/Add on the same element conflict at operation granularity")
	}
	// Step granularity: two failed Adds commute.
	aFalse := core.StepInfo{Op: "Add", Args: []core.Value{int64(1)}, Ret: false}
	aTrue := core.StepInfo{Op: "Add", Args: []core.Value{int64(1)}, Ret: true}
	if rel.StepConflicts(aFalse, aFalse) {
		t.Errorf("two no-op Adds commute")
	}
	if !rel.StepConflicts(aTrue, aFalse) {
		t.Errorf("a membership-changing Add conflicts")
	}
}

func TestRegisterBadArgs(t *testing.T) {
	sc := Register()
	if _, _, err := sc.MustOp("Read").Apply(core.State{}, []core.Value{int64(3)}); err == nil {
		t.Errorf("Read with non-string name must error")
	}
	if _, _, err := sc.MustOp("Write").Apply(core.State{}, []core.Value{"x"}); err == nil {
		t.Errorf("Write without value must error")
	}
	if _, _, err := sc.MustOp("Write").Apply(core.State{}, nil); err == nil {
		t.Errorf("Write without args must error")
	}
}
