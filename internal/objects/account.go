package objects

import (
	"objectbase/internal/core"
)

// Account returns a bank-account schema whose step-granularity conflict
// relation is genuinely *asymmetric*, exercising the paper's remark after
// Definition 3 that "commutativity and, therefore, conflict are not
// necessarily symmetric relations".
//
// Operations:
//
//	Deposit(amount)          -> nil
//	Withdraw(amount)         -> bool (success; fails without effect when the
//	                            balance is insufficient)
//	Balance()                -> int64
//
// Operation granularity (no return values known): only Deposit/Deposit and
// Balance/Balance commute.
//
// Step granularity (return values known) — derived case by case from
// Definition 3, quantifying over all states on which the first sequence is
// legal:
//
//	(Withdraw=true,  Deposit)        commute: s>=w implies s+d>=w, effects add
//	(Deposit,        Withdraw=true)  conflict: on s with s+d>=w>s the swap fails
//	(Withdraw=false, Deposit)        conflict: swap may turn the failure into success
//	(Deposit,        Withdraw=false) commute: if s+d<w then s<w
//	(Withdraw=true,  Withdraw=true)  commute: both succeed either way
//	(Withdraw=false, Withdraw=false) commute: both fail either way
//	(Withdraw=false, Withdraw=true)  commute; the reverse order conflicts
//	(Balance, Withdraw=false)        commute: a failed withdrawal changes nothing
//	(Balance, anything effectful)    conflict (and symmetrically)
//
// The gap between the two granularities is what experiment E5/E7 measure.
func Account() *core.Schema {
	deposit := &core.Operation{
		Name: "Deposit",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			d, err := argInt(args, 0, "Deposit")
			if err != nil {
				return nil, nil, err
			}
			bal, _ := s["balance"].(int64)
			s["balance"] = bal + d
			return nil, func(st core.State) {
				cur, _ := st["balance"].(int64)
				st["balance"] = cur - d
			}, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			_, err := argInt(args, 0, "Deposit")
			return nil, err
		},
	}
	withdraw := &core.Operation{
		Name: "Withdraw",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			w, err := argInt(args, 0, "Withdraw")
			if err != nil {
				return nil, nil, err
			}
			bal, _ := s["balance"].(int64)
			if bal < w {
				return false, nil, nil
			}
			s["balance"] = bal - w
			return true, func(st core.State) {
				cur, _ := st["balance"].(int64)
				st["balance"] = cur + w
			}, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			w, err := argInt(args, 0, "Withdraw")
			if err != nil {
				return nil, err
			}
			bal, _ := s["balance"].(int64)
			return bal >= w, nil
		},
	}
	balance := &core.Operation{
		Name:     "Balance",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			bal, _ := s["balance"].(int64)
			return bal, nil, nil
		},
	}

	rel := &accountConflicts{}
	return core.NewSchema("account",
		func() core.State { return core.State{"balance": int64(0)} },
		rel, deposit, withdraw, balance)
}

// accountConflicts implements the relation documented on Account.
type accountConflicts struct{}

func (accountConflicts) OpConflicts(a, b core.OpInvocation) bool {
	// Without return values only Deposit/Deposit (increments add) and the
	// read-only Balance/Balance commute; the latter was an over-coarse
	// declaration caught by the conflictsound derivation.
	if a.Op == "Balance" && b.Op == "Balance" {
		return false
	}
	return !(a.Op == "Deposit" && b.Op == "Deposit")
}

func (accountConflicts) StepConflicts(a, b core.StepInfo) bool {
	type kind int
	const (
		dep kind = iota
		wOK
		wFail
		bal
	)
	classify := func(s core.StepInfo) kind {
		switch s.Op {
		case "Deposit":
			return dep
		case "Withdraw":
			if ok, _ := s.Ret.(bool); ok {
				return wOK
			}
			return wFail
		default:
			return bal
		}
	}
	ka, kb := classify(a), classify(b)
	switch {
	case ka == dep && kb == dep:
		return false
	case ka == wOK && kb == dep:
		return false // succeeded withdrawal then deposit: swap-safe
	case ka == dep && kb == wFail:
		return false // deposit then failed withdrawal: it fails either way
	case ka == wOK && kb == wOK:
		return false
	case ka == wFail && kb == wFail:
		return false
	case ka == wFail && kb == wOK:
		// A failed then a succeeded withdrawal commute: if s < w1 and
		// s >= w2 then after the swap w2 still succeeds and w1 still fails
		// (s - w2 < w1 because s < w1). The reverse order conflicts.
		return false
	case ka == bal && kb == bal:
		return false
	case ka == bal && kb == wFail:
		return false // failed withdrawal has no effect
	case ka == wFail && kb == bal:
		return false
	default:
		return true
	}
}
