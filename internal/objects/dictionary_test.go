package objects

import (
	"math/rand"
	"testing"

	"objectbase/internal/core"
)

func TestDictionaryBasics(t *testing.T) {
	sc := Dictionary()
	s := sc.NewState()
	apply := func(op string, args ...core.Value) core.Value {
		ret, _, err := sc.MustOp(op).Apply(s, args)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return ret
	}
	if got := apply("Lookup", int64(1)); got != nil {
		t.Fatalf("lookup empty = %v", got)
	}
	if got := apply("Insert", int64(1), "one"); got != nil {
		t.Fatalf("insert fresh = %v", got)
	}
	if got := apply("Insert", int64(1), "uno"); got != "one" {
		t.Fatalf("insert overwrite = %v", got)
	}
	if got := apply("Lookup", int64(1)); got != "uno" {
		t.Fatalf("lookup = %v", got)
	}
	if got := apply("Len"); got != int64(1) {
		t.Fatalf("len = %v", got)
	}
	if got := apply("Delete", int64(1)); got != "uno" {
		t.Fatalf("delete = %v", got)
	}
	if got := apply("Delete", int64(1)); got != nil {
		t.Fatalf("delete miss = %v", got)
	}
}

func TestDictionaryUndo(t *testing.T) {
	sc := Dictionary()
	s := sc.NewState()
	_, undoIns, err := sc.MustOp("Insert").Apply(s, []core.Value{int64(5), "v"})
	if err != nil {
		t.Fatal(err)
	}
	_, undoOver, err := sc.MustOp("Insert").Apply(s, []core.Value{int64(5), "w"})
	if err != nil {
		t.Fatal(err)
	}
	undoOver(s)
	if v, _, _ := sc.MustOp("Lookup").Apply(s, []core.Value{int64(5)}); v != "v" {
		t.Fatalf("after overwrite undo: %v", v)
	}
	undoIns(s)
	if v, _, _ := sc.MustOp("Lookup").Apply(s, []core.Value{int64(5)}); v != nil {
		t.Fatalf("after insert undo: %v", v)
	}
	// Delete undo restores the pair.
	sc.MustOp("Insert").Apply(s, []core.Value{int64(7), "x"})
	_, undoDel, _ := sc.MustOp("Delete").Apply(s, []core.Value{int64(7)})
	undoDel(s)
	if v, _, _ := sc.MustOp("Lookup").Apply(s, []core.Value{int64(7)}); v != "x" {
		t.Fatalf("after delete undo: %v", v)
	}
}

func TestDictionaryPeekMatchesApply(t *testing.T) {
	sc := Dictionary()
	s := sc.NewState()
	sc.MustOp("Insert").Apply(s, []core.Value{int64(3), "three"})
	for _, op := range []string{"Insert", "Delete"} {
		o := sc.MustOp(op)
		if o.Peek == nil {
			t.Fatalf("%s must provide Peek", op)
		}
		args := []core.Value{int64(3), "new"}
		if op == "Delete" {
			args = args[:1]
		}
		peeked, err := o.Peek(s, args)
		if err != nil {
			t.Fatal(err)
		}
		cp := sc.CloneState(s)
		applied, _, err := o.Apply(cp, args)
		if err != nil {
			t.Fatal(err)
		}
		if !core.ValueEqual(peeked, applied) {
			t.Fatalf("%s: peek %v != apply %v", op, peeked, applied)
		}
	}
}

func TestDictionaryCloneEqual(t *testing.T) {
	sc := Dictionary()
	s := sc.NewState()
	for k := int64(0); k < 20; k++ {
		sc.MustOp("Insert").Apply(s, []core.Value{k, k * 10})
	}
	cp := sc.CloneState(s)
	if !sc.StateEqual(s, cp) {
		t.Fatalf("clone differs")
	}
	sc.MustOp("Delete").Apply(cp, []core.Value{int64(3)})
	if sc.StateEqual(s, cp) {
		t.Fatalf("clone aliases original")
	}
}

func TestDictionaryConflictRelation(t *testing.T) {
	rel := Dictionary().Conflicts
	insA := core.OpInvocation{Op: "Insert", Args: []core.Value{int64(1), "v"}}
	insB := core.OpInvocation{Op: "Insert", Args: []core.Value{int64(2), "v"}}
	lookA := core.OpInvocation{Op: "Lookup", Args: []core.Value{int64(1)}}
	lenI := core.OpInvocation{Op: "Len"}

	if rel.OpConflicts(insA, insB) {
		t.Errorf("different keys must not conflict")
	}
	if !rel.OpConflicts(insA, lookA) {
		t.Errorf("insert/lookup same key conflict")
	}
	if rel.OpConflicts(lookA, lookA) {
		t.Errorf("lookups commute")
	}
	if !rel.OpConflicts(lenI, insA) || !rel.OpConflicts(insA, lenI) {
		t.Errorf("Len conflicts with mutations on any key")
	}
	if rel.OpConflicts(lenI, lookA) {
		t.Errorf("Len commutes with lookups")
	}
	// Step granularity: a missed delete has no effect.
	delMiss := core.StepInfo{Op: "Delete", Args: []core.Value{int64(1)}, Ret: nil}
	delHit := core.StepInfo{Op: "Delete", Args: []core.Value{int64(1)}, Ret: "v"}
	look := core.StepInfo{Op: "Lookup", Args: []core.Value{int64(1)}, Ret: nil}
	if rel.StepConflicts(delMiss, look) {
		t.Errorf("missed delete commutes with lookup")
	}
	if !rel.StepConflicts(delHit, look) {
		t.Errorf("effectful delete conflicts with lookup")
	}
	lenStep := core.StepInfo{Op: "Len", Ret: int64(0)}
	if rel.StepConflicts(delMiss, lenStep) {
		t.Errorf("missed delete commutes with Len")
	}
	if !rel.StepConflicts(delHit, lenStep) {
		t.Errorf("effectful delete conflicts with Len")
	}
}

// Property soundness for the dictionary, like the other schemas.
func TestDictionarySoundness(t *testing.T) {
	sc := Dictionary()
	r := rand.New(rand.NewSource(21))
	soundnessCheck(t, sc, 21,
		func(r *rand.Rand) core.State {
			s := sc.NewState()
			for k := int64(0); k < 5; k++ {
				if r.Intn(2) == 0 {
					sc.MustOp("Insert").Apply(s, []core.Value{k, k * 100})
				}
			}
			return s
		},
		func(_ *rand.Rand) core.OpInvocation {
			k := int64(r.Intn(5))
			switch r.Intn(4) {
			case 0:
				return core.OpInvocation{Op: "Insert", Args: []core.Value{k, int64(r.Intn(10))}}
			case 1:
				return core.OpInvocation{Op: "Delete", Args: []core.Value{k}}
			case 2:
				return core.OpInvocation{Op: "Lookup", Args: []core.Value{k}}
			default:
				return core.OpInvocation{Op: "Len"}
			}
		}, 3000)
}
