package objects

import (
	"objectbase/internal/btree"
	"objectbase/internal/core"
)

// Dictionary returns the dictionary schema of the paper's Section 2
// example: Lookup, Insert and Delete over int64 keys, implemented on the
// lock-coupled B+ tree of internal/btree — the object's own "special
// algorithm" for synchronising its physical operations, while the
// transaction-level conflict relation below is what the object base's
// scheduler sees.
//
// Conflicts are scoped per key (operations on different keys never
// conflict); at step granularity only membership-observing pairs conflict:
//
//	Lookup/Lookup                  commute
//	Delete(miss)/Lookup            commute (a missed delete has no effect)
//	Delete(miss)/Delete(miss)      commute
//	anything involving an effectful Insert/Delete on the same key conflicts
//
// The state holds the tree under the "tree" variable; CloneState and
// StateEqual deep-copy/compare contents, and Operation.Peek computes
// return values without cloning (a Lookup suffices), keeping
// provisional-execution schedulers cheap on large dictionaries.
func Dictionary() *core.Schema {
	treeOf := func(s core.State) *btree.Tree {
		t, _ := s["tree"].(*btree.Tree)
		return t
	}
	insert := &core.Operation{
		Name: "Insert",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			k, err := argInt(args, 0, "Insert")
			if err != nil {
				return nil, nil, err
			}
			if len(args) < 2 {
				return nil, nil, errMissingValue
			}
			old, had := treeOf(s).Insert(k, args[1])
			undo := func(st core.State) {
				if had {
					treeOf(st).Insert(k, old)
				} else {
					treeOf(st).Delete(k)
				}
			}
			if !had {
				return nil, undo, nil
			}
			return old, undo, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			k, err := argInt(args, 0, "Insert")
			if err != nil {
				return nil, err
			}
			old, had := treeOf(s).Lookup(k)
			if !had {
				return nil, nil
			}
			return old, nil
		},
	}
	del := &core.Operation{
		Name: "Delete",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			k, err := argInt(args, 0, "Delete")
			if err != nil {
				return nil, nil, err
			}
			old, had := treeOf(s).Delete(k)
			if !had {
				return nil, nil, nil
			}
			return old, func(st core.State) { treeOf(st).Insert(k, old) }, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			k, err := argInt(args, 0, "Delete")
			if err != nil {
				return nil, err
			}
			old, had := treeOf(s).Lookup(k)
			if !had {
				return nil, nil
			}
			return old, nil
		},
	}
	lookup := &core.Operation{
		Name:     "Lookup",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			k, err := argInt(args, 0, "Lookup")
			if err != nil {
				return nil, nil, err
			}
			v, had := treeOf(s).Lookup(k)
			if !had {
				return nil, nil, nil
			}
			return v, nil, nil
		},
	}
	size := &core.Operation{
		Name:     "Len",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			return int64(treeOf(s).Len()), nil, nil
		},
	}

	// Operation granularity comes from the certified derived table
	// (conflict_gen.go): Insert/Delete pairs conflict only on equal keys,
	// Len conflicts with any mutation, Lookup commutes with everything
	// read-only. Step granularity refines with effects: a pair conflicts
	// only when at least one side actually changed membership. Len observes
	// every key, so the relation cannot be sharded per key (DerivedRelation
	// only implements Sharder via Sharded, which this table rejects): the
	// lock manager falls back to one scope per dictionary object, and the
	// per-key precision lives in the conflict test itself.
	rel := core.Refine(generatedConflicts("dictionary"), func(a, b core.StepInfo) bool {
		return dictChanged(a) || dictChanged(b)
	})
	sc := core.NewSchema("dictionary",
		func() core.State { return core.State{"tree": btree.New(0)} },
		rel, insert, del, lookup, size)
	sc.CloneState = func(s core.State) core.State {
		return core.State{"tree": treeOf(s).Clone()}
	}
	sc.StateEqual = func(a, b core.State) bool {
		return treeOf(a).Equal(treeOf(b))
	}
	return sc
}

var errMissingValue = errMissing("Insert needs (key, value)")

type errMissing string

func (e errMissing) Error() string { return "objects: " + string(e) }

// dictChanged reports whether a step actually changed dictionary
// membership; it drives the step-granularity refinement of the derived
// relation above.
func dictChanged(s core.StepInfo) bool {
	switch s.Op {
	case "Insert":
		return true
	case "Delete":
		return s.Ret != nil
	default:
		return false
	}
}
