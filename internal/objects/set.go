package objects

import (
	"fmt"

	"objectbase/internal/core"
)

// Set returns a set-of-integers schema with per-element conflict scoping and
// a step-granularity refinement: operations on distinct elements never
// conflict, and on the same element they conflict only when at least one of
// them actually changed or observed a change of membership.
//
// Operations:
//
//	Add(x)      -> bool (true iff x was absent)
//	Remove(x)   -> bool (true iff x was present)
//	Contains(x) -> bool
//
// Step granularity on the same element, from Definition 3:
//
//	Add=false / Add=false        commute (both found x present)
//	Remove=false / Remove=false  commute (both found x absent)
//	Add=false / Contains=true    commute; likewise Remove=false / Contains=false
//	Contains / Contains          commute
//	anything involving a step that changed membership conflicts
//
// Set elements live in variables named "e<x>"; membership is presence.
func Set() *core.Schema {
	key := func(args []core.Value) (string, error) {
		if len(args) < 1 {
			return "", fmt.Errorf("objects: set operation needs an element")
		}
		x, ok := args[0].(int64)
		if !ok {
			return "", fmt.Errorf("objects: set element must be int64, got %T", args[0])
		}
		return fmt.Sprintf("e%d", x), nil
	}
	add := &core.Operation{
		Name: "Add",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			k, err := key(args)
			if err != nil {
				return nil, nil, err
			}
			if _, present := s[k]; present {
				return false, nil, nil
			}
			s[k] = true
			return true, func(st core.State) { delete(st, k) }, nil
		},
	}
	remove := &core.Operation{
		Name: "Remove",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			k, err := key(args)
			if err != nil {
				return nil, nil, err
			}
			if _, present := s[k]; !present {
				return false, nil, nil
			}
			delete(s, k)
			return true, func(st core.State) { st[k] = true }, nil
		},
	}
	contains := &core.Operation{
		Name:     "Contains",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			k, err := key(args)
			if err != nil {
				return nil, nil, err
			}
			_, present := s[k]
			return present, nil, nil
		},
	}

	// Operation granularity comes from the certified derived table
	// (conflict_gen.go): every conflicting pair is keyed on the element
	// argument, so the relation shards per element for the lock manager
	// (Sharded would panic if the derivation ever stopped keying a pair).
	// Step granularity refines with effects: same-element pairs conflict
	// only when a side actually changed membership.
	rel := core.Refine(generatedConflicts("set").Sharded(0), func(a, b core.StepInfo) bool {
		changed := func(s core.StepInfo) bool {
			if s.Op == "Contains" {
				return false
			}
			ok, _ := s.Ret.(bool)
			return ok
		}
		return changed(a) || changed(b)
	})
	return core.NewSchema("set", func() core.State { return core.State{} }, rel, add, remove, contains)
}
