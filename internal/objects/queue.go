package objects

import (
	"fmt"

	"objectbase/internal/core"
)

// Queue returns a FIFO queue schema implementing the paper's flagship
// step-granularity example (Section 5.1): "in many reasonable
// representations of queues, an Enqueue conflicts with a Dequeue only if the
// latter returns the item placed into the queue by the former".
//
// Operations:
//
//	Enqueue(item) -> nil
//	Dequeue()     -> item, or nil when empty
//	Len()         -> int64
//
// Operation granularity: every pair involving the queue's order or content
// conflicts (Enqueue/Enqueue order the items; Dequeue/Dequeue compete for
// the head; Enqueue/Dequeue may interact through an empty queue); only the
// read-only Len/Len pair commutes.
//
// Step granularity:
//
//	(Enqueue(x), Dequeue=r)  conflict iff r == x    (the paper's example)
//	(Dequeue=r, Enqueue(x))  conflict iff r == nil  (swap would hand the
//	                          dequeue the new item)
//	(Dequeue=nil, Dequeue=nil) commute (both see an empty queue)
//	(Enqueue, Enqueue)       always conflict (FIFO order is state)
//	(Len, Enqueue/Dequeue-with-item) conflict; Len commutes with
//	                          Dequeue=nil
//
// Experiment E5 measures the concurrency gap between the two granularities
// on a producer/consumer workload: while the queue is non-empty, Enqueues
// and Dequeues at step granularity never conflict, so producers and
// consumers proceed in parallel.
func Queue() *core.Schema {
	enq := &core.Operation{
		Name: "Enqueue",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			if len(args) < 1 {
				return nil, nil, fmt.Errorf("objects: Enqueue needs an item")
			}
			items, _ := s["items"].([]core.Value)
			s["items"] = append(items, args[0])
			return nil, func(st core.State) {
				cur, _ := st["items"].([]core.Value)
				if n := len(cur); n > 0 {
					st["items"] = cur[:n-1]
				}
			}, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("objects: Enqueue needs an item")
			}
			return nil, nil
		},
	}
	deq := &core.Operation{
		Name: "Dequeue",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			items, _ := s["items"].([]core.Value)
			if len(items) == 0 {
				return nil, nil, nil
			}
			head := items[0]
			s["items"] = items[1:]
			return head, func(st core.State) {
				cur, _ := st["items"].([]core.Value)
				st["items"] = append([]core.Value{head}, cur...)
			}, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			items, _ := s["items"].([]core.Value)
			if len(items) == 0 {
				return nil, nil
			}
			return items[0], nil
		},
	}
	length := &core.Operation{
		Name:     "Len",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			items, _ := s["items"].([]core.Value)
			return int64(len(items)), nil, nil
		},
	}

	rel := &queueConflicts{}
	return core.NewSchema("queue",
		func() core.State { return core.State{"items": []core.Value{}} },
		rel, enq, deq, length)
}

type queueConflicts struct{}

func (queueConflicts) OpConflicts(a, b core.OpInvocation) bool {
	// Any pair touching the queue's order or content may conflict; only the
	// read-only Len/Len pair provably commutes (over-coarse declaration
	// caught by the conflictsound derivation).
	return !(a.Op == "Len" && b.Op == "Len")
}

func (queueConflicts) StepConflicts(a, b core.StepInfo) bool {
	switch {
	case a.Op == "Enqueue" && b.Op == "Dequeue":
		return core.ValueEqual(b.Ret, a.Args[0])
	case a.Op == "Dequeue" && b.Op == "Enqueue":
		return a.Ret == nil
	case a.Op == "Dequeue" && b.Op == "Dequeue":
		return !(a.Ret == nil && b.Ret == nil)
	case a.Op == "Len" && b.Op == "Len":
		return false
	case a.Op == "Len" && b.Op == "Dequeue":
		return b.Ret != nil
	case a.Op == "Dequeue" && b.Op == "Len":
		return a.Ret != nil
	default:
		// Enqueue/Enqueue, Len/Enqueue, Enqueue/Len.
		return true
	}
}
