package objects

import "objectbase/internal/core"

// conflict_gen.go is the committed output of the commutativity derivation
// in internal/analysis (footprints of Apply/Peek/undo bodies → pairwise
// verdicts). Regenerate after changing any operation body; CI fails on
// drift.
//
//go:generate go run objectbase/cmd/oblint -gen -C ../..

// generatedConflicts returns the derived conflict relation certified for
// the named schema. The conflictsound analyzer treats a relation built
// from this table as sound by construction, and the randomized
// commutativity witness (core.SampleCommutativity) re-checks it at
// runtime. Panics on an unknown schema name: a schema can only adopt a
// table the generator actually derived.
func generatedConflicts(name string) *core.DerivedRelation {
	rel, ok := generatedRelations[name]
	if !ok {
		panic("objects: no generated conflict relation for schema " + name)
	}
	return rel
}

// Library returns one instance of every schema in the object library, for
// audits and witnesses that sweep the whole catalogue (obsim schema, the
// commutativity fuzz, load -verify sampling).
func Library() []*core.Schema {
	return []*core.Schema{
		Account(),
		Counter(),
		Dictionary(),
		Queue(),
		Register(),
		Set(),
	}
}
