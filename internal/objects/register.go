// Package objects is the object library: schemas (operations plus conflict
// relations) for the object types used by the examples, tests and
// experiments. Each schema declares its conflict relation at both
// granularities of the paper's Section 5 implementation discussion:
// operation granularity (conservative, decidable before execution) and step
// granularity (exact, exploiting return values as proposed by Weihl and
// adopted by the paper).
//
// Every schema's declared relation is checked against Definition 3 by
// property tests driving core.VerifyConflictSoundness with random states and
// invocations: if a pair is declared non-conflicting, executing it in either
// order must give identical return values and final states.
package objects

import (
	"fmt"

	"objectbase/internal/core"
)

// Register returns the classical read/write register schema: a bag of named
// variables with Read(name) and Write(name, value) operations and the
// textbook RW conflict table scoped per variable. This is the schema under
// which the model degenerates to classical database concurrency control —
// the baseline vocabulary of Section 1.
func Register() *core.Schema {
	read := &core.Operation{
		Name:     "Read",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			name, err := argString(args, 0, "Read")
			if err != nil {
				return nil, nil, err
			}
			return s[name], nil, nil
		},
	}
	write := &core.Operation{
		Name: "Write",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			name, err := argString(args, 0, "Write")
			if err != nil {
				return nil, nil, err
			}
			if len(args) < 2 {
				return nil, nil, fmt.Errorf("objects: Write needs (name, value)")
			}
			old, had := s[name]
			s[name] = args[1]
			return nil, func(st core.State) {
				if had {
					st[name] = old
				} else {
					delete(st, name)
				}
			}, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			if _, err := argString(args, 0, "Write"); err != nil {
				return nil, err
			}
			if len(args) < 2 {
				return nil, fmt.Errorf("objects: Write needs (name, value)")
			}
			return nil, nil
		},
	}
	rel := core.RWTable([]string{"Read"}, []string{"Write"}, nil)
	return core.NewSchema("register", func() core.State { return core.State{} }, rel, read, write)
}

func argString(args []core.Value, i int, op string) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("objects: %s missing argument %d", op, i)
	}
	s, ok := args[i].(string)
	if !ok {
		return "", fmt.Errorf("objects: %s argument %d must be string, got %T", op, i, args[i])
	}
	return s, nil
}

func argInt(args []core.Value, i int, op string) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("objects: %s missing argument %d", op, i)
	}
	n, ok := args[i].(int64)
	if !ok {
		return 0, fmt.Errorf("objects: %s argument %d must be int64, got %T", op, i, args[i])
	}
	return n, nil
}
