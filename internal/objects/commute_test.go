package objects

import (
	"testing"

	"objectbase/internal/core"
)

// The two regression tests below pin over-coarse declarations found by the
// conflictsound analyzer (the static commutativity derivation): both pairs
// are provably commuting — their footprints are read-only or pure
// increments — but the hand-written relations declared them conflicting at
// operation granularity, serialising work the scheduler could have run in
// parallel.

func TestQueueLenLenCommutesAtOpGranularity(t *testing.T) {
	rel := Queue().Conflicts
	lenInv := core.OpInvocation{Op: "Len"}
	if rel.OpConflicts(lenInv, lenInv) {
		t.Errorf("Len/Len is read-only/read-only and must commute at operation granularity")
	}
	// Everything touching the queue's order or content stays conflicting.
	enq := core.OpInvocation{Op: "Enqueue", Args: []core.Value{int64(1)}}
	deq := core.OpInvocation{Op: "Dequeue"}
	for _, pair := range [][2]core.OpInvocation{
		{lenInv, enq}, {enq, lenInv}, {lenInv, deq}, {deq, lenInv},
		{enq, enq}, {enq, deq}, {deq, enq}, {deq, deq},
	} {
		if !rel.OpConflicts(pair[0], pair[1]) {
			t.Errorf("%s/%s must stay conflicting at operation granularity", pair[0].Op, pair[1].Op)
		}
	}
}

func TestAccountBalanceBalanceCommutesAtOpGranularity(t *testing.T) {
	rel := Account().Conflicts
	bal := core.OpInvocation{Op: "Balance"}
	if rel.OpConflicts(bal, bal) {
		t.Errorf("Balance/Balance is read-only/read-only and must commute at operation granularity")
	}
	// Balance against anything effectful stays conflicting.
	dep := core.OpInvocation{Op: "Deposit", Args: []core.Value{int64(1)}}
	wd := core.OpInvocation{Op: "Withdraw", Args: []core.Value{int64(1)}}
	for _, pair := range [][2]core.OpInvocation{
		{bal, dep}, {dep, bal}, {bal, wd}, {wd, bal},
	} {
		if !rel.OpConflicts(pair[0], pair[1]) {
			t.Errorf("%s/%s must stay conflicting at operation granularity", pair[0].Op, pair[1].Op)
		}
	}
}

// TestLibraryCommutativityWitness runs the randomized runtime witness over
// the whole object library: every pair the declared relations commute (at
// step granularity, on the sampled states and arguments) must satisfy
// Definition 3 in both orders, undo closures included. It also asserts
// coverage — pairs the relations are supposed to commute at least sometimes
// must actually complete the differential check, so a relation that
// silently conflicts everything cannot pass by vacuity.
func TestLibraryCommutativityWitness(t *testing.T) {
	// Ordered pairs that must complete the full differential check at least
	// once under seed 1: the derivation proves them commuting (always, or
	// on distinct keys / no-effect outcomes the sampler hits readily).
	mustCover := map[string][][2]string{
		"account": {
			{"Deposit", "Deposit"}, {"Balance", "Balance"}, {"Withdraw", "Withdraw"},
		},
		"counter": {
			{"Add", "Add"}, {"Get", "Get"},
		},
		"dictionary": {
			{"Lookup", "Lookup"}, {"Len", "Len"}, {"Insert", "Insert"}, {"Delete", "Delete"},
		},
		"queue": {
			{"Len", "Len"}, {"Dequeue", "Dequeue"},
		},
		"register": {
			{"Read", "Read"}, {"Read", "Write"}, {"Write", "Read"}, {"Write", "Write"},
		},
		"set": {
			{"Contains", "Contains"}, {"Add", "Add"}, {"Remove", "Remove"}, {"Add", "Remove"},
		},
	}

	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			covered, err := core.SampleCommutativity(sc, 1, 4000)
			if err != nil {
				t.Fatalf("commutativity witness: %v", err)
			}
			want, ok := mustCover[sc.Name]
			if !ok {
				t.Fatalf("schema %s has no coverage expectations; add it to mustCover", sc.Name)
			}
			for _, pair := range want {
				if covered[pair] == 0 {
					t.Errorf("pair %s/%s never completed the differential check (vacuous coverage)", pair[0], pair[1])
				}
			}
			// A couple more seeds for the soundness half alone.
			for seed := int64(2); seed <= 3; seed++ {
				if _, err := core.SampleCommutativity(sc, seed, 2000); err != nil {
					t.Errorf("commutativity witness (seed %d): %v", seed, err)
				}
			}
		})
	}
}
