package objects

import (
	"objectbase/internal/core"
)

// Counter returns a commutative counter schema: Add(delta) returns nothing,
// so any two Adds commute (Definition 3: their transposition is legal and
// state-equivalent) — unlike writes in the RW model. Get conflicts with Add
// in both orders. This is the simplest object on which the paper's
// arbitrary-operation generality buys real concurrency over a read/write
// encoding: under N2PL two Adds of incomparable transactions may hold their
// locks simultaneously.
func Counter() *core.Schema {
	add := &core.Operation{
		Name: "Add",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			d, err := argInt(args, 0, "Add")
			if err != nil {
				return nil, nil, err
			}
			n, _ := s["n"].(int64)
			s["n"] = n + d
			return nil, func(st core.State) {
				cur, _ := st["n"].(int64)
				st["n"] = cur - d
			}, nil
		},
		Peek: func(s core.State, args []core.Value) (core.Value, error) {
			_, err := argInt(args, 0, "Add")
			return nil, err
		},
	}
	get := &core.Operation{
		Name:     "Get",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			n, _ := s["n"].(int64)
			return n, nil, nil
		},
	}
	rel := &core.TableConflict{
		Pairs: core.SymmetricPairs([2]string{"Add", "Get"}),
		Key:   core.SingleKey,
	}
	return core.NewSchema("counter", func() core.State { return core.State{"n": int64(0)} }, rel, add, get)
}
