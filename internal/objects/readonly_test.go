package objects

// The snapshot fast path trusts each schema's ReadOnly declarations: an
// operation marked ReadOnly is served from shared committed versions with
// no latch and no undo. This test holds every declaration in the object
// library to the executable standard (core.VerifyReadOnlySoundness):
// applying it must not change the state, must return no undo closure, and
// must not self-conflict (observers commute).

import (
	"testing"

	"objectbase/internal/core"
)

func TestLibraryReadOnlyDeclarationsSound(t *testing.T) {
	for _, sc := range []*core.Schema{
		Counter(), Register(), Account(), Queue(), Set(), Dictionary(),
	} {
		st := sc.NewState()
		// Give observers something to look at: run each mutator once with
		// small arguments where it applies cleanly.
		for _, name := range sc.OpNames() {
			op := sc.MustOp(name)
			if op.ReadOnly {
				continue
			}
			args := []core.Value{int64(1), int64(1)}
			_, _, _ = op.Apply(st, args)
		}
		for _, name := range sc.OpNames() {
			op := sc.MustOp(name)
			if !op.ReadOnly {
				continue
			}
			for _, args := range [][]core.Value{nil, {int64(0)}, {int64(1)}} {
				inv := core.OpInvocation{Op: name, Args: args}
				if err := core.VerifyReadOnlySoundness(sc, st, inv); err != nil {
					t.Errorf("schema %s: %v", sc.Name, err)
				}
			}
		}
	}
}
