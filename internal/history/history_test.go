package history

import (
	"strings"
	"testing"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/objects"
	"objectbase/internal/workload"
)

func TestAnalyzeHandBuilt(t *testing.T) {
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{"x": int64(0)})

	// T1: nested write; T2: read after, conflicting.
	t1 := b.Top("T1")
	m1 := b.Call(t1, "A", "w")
	inner := b.Call(m1, "A", "deep")
	b.Local(inner, "A", "Write", "x", int64(1))
	b.Return(inner, nil)
	b.Return(m1, nil)

	t2 := b.Top("T2")
	m2 := b.Call(t2, "A", "r")
	b.Local(m2, "A", "Read", "x")
	b.Return(m2, nil)

	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(h)
	if s.Executions != 5 || s.TopLevel != 2 || s.Committed != 5 || s.Aborted != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MaxDepth != 2 {
		t.Fatalf("depth = %d", s.MaxDepth)
	}
	if s.LocalSteps != 2 || s.Messages != 3 {
		t.Fatalf("steps=%d messages=%d", s.LocalSteps, s.Messages)
	}
	if len(s.PerObject) != 1 {
		t.Fatalf("objects: %v", s.PerObject)
	}
	obj := s.PerObject[0]
	// One pair (write, read) and it conflicts, cross-transaction.
	if obj.Pairs != 1 || obj.ConflictPairs != 1 || obj.CrossExecConflicts != 1 {
		t.Fatalf("object stats: %+v", obj)
	}
	if obj.Density() != 1.0 {
		t.Fatalf("density = %f", obj.Density())
	}
	// Sequential transactions: no overlap.
	if s.MaxConcurrency != 1 {
		t.Fatalf("max concurrency = %d, want 1", s.MaxConcurrency)
	}
	out := s.String()
	for _, want := range []string{"executions", "max depth 2", "object A"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeConcurrentRun(t *testing.T) {
	en := engine.New(engine.None{}, engine.Options{})
	spec := workload.Bank(3, 100)
	spec.Setup(en)
	if err := workload.Drive(en, spec, 4, 10, 5); err != nil {
		t.Fatal(err)
	}
	s := Analyze(en.History())
	if s.TopLevel != 40 {
		t.Fatalf("top level = %d", s.TopLevel)
	}
	if s.MaxConcurrency < 2 {
		t.Fatalf("expected overlapping transactions, max concurrency = %d", s.MaxConcurrency)
	}
	if s.MeanConcurrency <= 0 || s.MeanConcurrency > float64(s.MaxConcurrency) {
		t.Fatalf("mean concurrency = %f", s.MeanConcurrency)
	}
	if s.MaxDepth < 1 {
		t.Fatalf("bank workload nests at least one level")
	}
	if s.MeanFanout <= 0 {
		t.Fatalf("fanout = %f", s.MeanFanout)
	}
}

func TestDensityEmptyObject(t *testing.T) {
	b := core.NewBuilder()
	b.Object("A", objects.Register(), core.State{})
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(h)
	if len(s.PerObject) != 1 || s.PerObject[0].Density() != 0 {
		t.Fatalf("empty object density: %+v", s.PerObject)
	}
	if s.MaxConcurrency != 0 {
		t.Fatalf("no transactions: concurrency %d", s.MaxConcurrency)
	}
}

func TestAbortsCounted(t *testing.T) {
	en := engine.New(engine.None{}, engine.Options{})
	en.AddObject("A", objects.Register(), core.State{})
	_, _ = en.Run("T", func(ctx *engine.Ctx) (core.Value, error) {
		if _, err := ctx.Do("A", "Write", "x", int64(1)); err != nil {
			return nil, err
		}
		return nil, ctx.Abort("no")
	})
	s := Analyze(en.History())
	if s.Aborted != 1 || s.Committed != 0 {
		t.Fatalf("aborted=%d committed=%d", s.Aborted, s.Committed)
	}
}
