// Package history analyses recorded histories: structural statistics
// (nesting, fan-out, step counts), conflict density per object, and a
// concurrency profile derived from the recorded ticks. The obsim CLI
// prints its report after workload runs; experiments use it to
// characterise the workloads they measure.
package history

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"objectbase/internal/core"
)

// ObjectStats describes one object's recorded activity.
type ObjectStats struct {
	Name  string
	Steps int
	// ConflictPairs counts ordered step pairs (i before j) that conflict
	// at step granularity; Pairs is the total number of ordered pairs.
	// Their ratio is the object's conflict density — the knob the paper's
	// algorithms differ on.
	ConflictPairs int
	Pairs         int
	// CrossExecConflicts counts the conflicting pairs whose issuers belong
	// to different top-level transactions (the ones synchronisation must
	// order).
	CrossExecConflicts int
}

// Density returns ConflictPairs / Pairs (0 when empty).
func (o ObjectStats) Density() float64 {
	if o.Pairs == 0 {
		return 0
	}
	return float64(o.ConflictPairs) / float64(o.Pairs)
}

// Stats is the full analysis of a history.
type Stats struct {
	Objects    int
	Executions int
	TopLevel   int
	Committed  int
	Aborted    int
	LocalSteps int
	Messages   int
	// MaxDepth is the deepest nesting level observed (0 = top-level only).
	MaxDepth int
	// MeanFanout is the average number of messages per non-leaf execution.
	MeanFanout float64
	// MaxConcurrency is the maximum number of top-level transactions whose
	// recorded activity intervals overlap at some instant; MeanConcurrency
	// integrates overlap over the run.
	MaxConcurrency  int
	MeanConcurrency float64
	PerObject       []ObjectStats
}

// Analyze computes statistics for a recorded history.
func Analyze(h *core.History) *Stats {
	s := &Stats{Objects: len(h.Schemas)}

	fanTotal, fanCount := 0, 0
	for _, e := range h.AllExecs() {
		s.Executions++
		if e.IsTopLevel() {
			s.TopLevel++
		}
		if e.Aborted {
			s.Aborted++
		} else {
			s.Committed++
		}
		if lvl := e.ID.Level(); lvl > s.MaxDepth {
			s.MaxDepth = lvl
		}
		if n := len(e.Children); n > 0 {
			fanTotal += n
			fanCount++
		}
	}
	if fanCount > 0 {
		s.MeanFanout = float64(fanTotal) / float64(fanCount)
	}
	for _, msgs := range h.Messages {
		s.Messages += len(msgs)
	}

	// Per-object conflict density.
	for _, obj := range h.ObjectNames() {
		steps := h.Steps[obj]
		os := ObjectStats{Name: obj, Steps: len(steps)}
		s.LocalSteps += len(steps)
		for i := 0; i < len(steps); i++ {
			for j := i + 1; j < len(steps); j++ {
				os.Pairs++
				if h.Conflicts(steps[i], steps[j]) {
					os.ConflictPairs++
					if steps[i].Exec[0] != steps[j].Exec[0] {
						os.CrossExecConflicts++
					}
				}
			}
		}
		s.PerObject = append(s.PerObject, os)
	}
	sort.Slice(s.PerObject, func(i, j int) bool { return s.PerObject[i].Name < s.PerObject[j].Name })

	s.MaxConcurrency, s.MeanConcurrency = concurrencyProfile(h)
	return s
}

// concurrencyProfile sweeps the top-level transactions' activity intervals.
func concurrencyProfile(h *core.History) (int, float64) {
	type event struct {
		at    core.Tick
		delta int
	}
	var events []event
	for _, root := range h.Roots {
		lo, hi, ok := treeInterval(h, root)
		if !ok {
			continue
		}
		events = append(events, event{lo, +1}, event{hi + 1, -1})
	}
	if len(events) == 0 {
		return 0, 0
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta
	})
	cur, max := 0, 0
	var weighted, span float64
	prev := events[0].at
	for _, ev := range events {
		dt := float64(ev.at - prev)
		weighted += float64(cur) * dt
		span += dt
		prev = ev.at
		cur += ev.delta
		if cur > max {
			max = cur
		}
	}
	mean := 0.0
	if span > 0 {
		mean = weighted / span
	}
	return max, mean
}

// treeInterval returns the tick span covering all events of the execution
// tree rooted at id.
func treeInterval(h *core.History, id core.ExecID) (core.Tick, core.Tick, bool) {
	var lo, hi core.Tick
	found := false
	upd := func(s, e core.Tick) {
		if !found || s < lo {
			lo = s
		}
		if !found || e > hi {
			hi = e
		}
		found = true
	}
	var walk func(core.ExecID)
	walk = func(x core.ExecID) {
		for _, st := range h.LocalSteps[x.Key()] {
			upd(st.At, st.At)
		}
		for _, m := range h.Messages[x.Key()] {
			upd(m.Start, m.End)
		}
		if e := h.Exec(x); e != nil {
			for _, c := range e.Children {
				walk(c)
			}
		}
	}
	walk(id)
	return lo, hi, found
}

// Report writes a human-readable summary.
func (s *Stats) Report(w io.Writer) {
	fmt.Fprintf(w, "executions   %d (%d top-level: %d committed, %d aborted)\n",
		s.Executions, s.TopLevel, s.Committed, s.Aborted)
	fmt.Fprintf(w, "structure    max depth %d, mean fan-out %.2f, %d messages, %d local steps\n",
		s.MaxDepth, s.MeanFanout, s.Messages, s.LocalSteps)
	fmt.Fprintf(w, "concurrency  max %d, mean %.2f overlapping top-level transactions\n",
		s.MaxConcurrency, s.MeanConcurrency)
	for _, o := range s.PerObject {
		fmt.Fprintf(w, "object %-12s %5d steps, conflict density %.3f (%d/%d pairs, %d cross-transaction)\n",
			o.Name, o.Steps, o.Density(), o.ConflictPairs, o.Pairs, o.CrossExecConflicts)
	}
}

// String renders the report.
func (s *Stats) String() string {
	var b strings.Builder
	s.Report(&b)
	return b.String()
}
