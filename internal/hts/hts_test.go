package hts

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

func TestAssignerTopOrder(t *testing.T) {
	a := NewAssigner()
	t0 := a.NextTop()
	t1 := a.NextTop()
	if !Less(t0, t1) {
		t.Fatalf("top-level timestamps must be issued in order: %v vs %v", t0, t1)
	}
}

func TestAssignerChildrenOrdered(t *testing.T) {
	a := NewAssigner()
	p := a.NextTop()
	c0 := a.NextChild(p)
	c1 := a.NextChild(p)
	if !Less(c0, c1) {
		t.Fatalf("serially issued children must be ordered: %v vs %v", c0, c1)
	}
	if !Less(p, c0) {
		t.Fatalf("parent precedes child: %v vs %v", p, c0)
	}
	if !p.IsProperAncestorOf(c0) || !p.IsProperAncestorOf(c1) {
		t.Fatalf("children must extend the parent path")
	}
}

func TestAssignerParallelUnique(t *testing.T) {
	a := NewAssigner()
	p := a.NextTop()
	const n = 100
	var wg sync.WaitGroup
	out := make([]HTS, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = a.NextChild(p)
		}(i)
	}
	wg.Wait()
	seen := make(map[string]bool, n)
	for _, ts := range out {
		if seen[ts.Key()] {
			t.Fatalf("duplicate timestamp %v", ts)
		}
		seen[ts.Key()] = true
	}
	a.Forget(p)
}

func regStep(op, v string, x int64) core.StepInfo {
	if op == "Read" {
		return core.StepInfo{Op: "Read", Args: []core.Value{v}}
	}
	return core.StepInfo{Op: "Write", Args: []core.Value{v, x}}
}

func TestIssueTableRule1Conservative(t *testing.T) {
	tbl := NewIssueTable()
	rel := objects.Register().Conflicts
	a := NewAssigner()
	t0 := a.NextTop()
	t1 := a.NextTop()
	t2 := a.NextTop()

	if !tbl.TryIssue("A", rel, false, regStep("Write", "x", 1), t1) {
		t.Fatalf("empty table must admit")
	}
	// Older incomparable conflicting issue: rejected.
	if tbl.TryIssue("A", rel, false, regStep("Read", "x", 0), t0) {
		t.Fatalf("rule 1: older timestamp reading a newer write must be rejected")
	}
	// Newer one admitted.
	if !tbl.TryIssue("A", rel, false, regStep("Read", "x", 0), t2) {
		t.Fatalf("newer timestamp must pass")
	}
	// Non-conflicting ops pass regardless of timestamps: two Reads (in a
	// fresh scope without the write).
	if !tbl.TryIssue("B", rel, false, regStep("Read", "x", 0), t2) {
		t.Fatalf("setup read")
	}
	if !tbl.TryIssue("B", rel, false, regStep("Read", "x", 0), t0) {
		t.Fatalf("read/read must not be ordered by rule 1 (reads commute)")
	}
	// Descendant of the recorded writer is comparable: admitted.
	c := a.NextChild(t1)
	if !tbl.TryIssue("A", rel, false, regStep("Read", "x", 0), c) {
		t.Fatalf("descendant of issuer must pass (comparable executions)")
	}
}

func TestIssueTableExactGranularity(t *testing.T) {
	tbl := NewIssueTable()
	rel := objects.Queue().Conflicts
	old := core.RootID(0)
	young := core.RootID(5)

	// A young transaction enqueued 42.
	enq := core.StepInfo{Op: "Enqueue", Args: []core.Value{int64(42)}}
	if !tbl.TryIssue("Q", rel, true, enq, young) {
		t.Fatalf("enqueue must be admitted")
	}
	// An older transaction's dequeue that would return a different item
	// does not conflict at step granularity: admitted despite rule 1.
	deqMiss := core.StepInfo{Op: "Dequeue", Ret: int64(7)}
	if !tbl.TryIssue("Q", rel, true, deqMiss, old) {
		t.Fatalf("non-conflicting dequeue must pass in exact mode")
	}
	// But the same situation at operation granularity is rejected.
	tbl2 := NewIssueTable()
	if !tbl2.TryIssue("Q", rel, false, enq, young) {
		t.Fatalf("setup")
	}
	if tbl2.TryIssue("Q", rel, false, deqMiss, old) {
		t.Fatalf("conservative mode must reject the older dequeue")
	}
	// An older dequeue returning the enqueued item is rejected even in
	// exact mode.
	deqHit := core.StepInfo{Op: "Dequeue", Ret: int64(42)}
	if tbl.TryIssue("Q", rel, true, deqHit, old) {
		t.Fatalf("dequeue of the young enqueue's item must be rejected")
	}
}

func TestIssueTablePrune(t *testing.T) {
	tbl := NewIssueTable()
	rel := objects.Register().Conflicts
	tbl.TryIssue("A", rel, true, regStep("Write", "x", 1), core.RootID(0))
	tbl.TryIssue("B", rel, true, regStep("Write", "y", 1), core.RootID(1))
	tbl.TryIssue("A", rel, true, regStep("Write", "x", 2), core.RootID(5))
	if tbl.Size() != 3 {
		t.Fatalf("size = %d", tbl.Size())
	}
	tbl.Prune(core.RootID(3))
	if tbl.Size() != 1 {
		t.Fatalf("after prune size = %d, want 1", tbl.Size())
	}
	// The surviving entry still enforces rule 1.
	if tbl.TryIssue("A", rel, true, regStep("Read", "x", 0), core.RootID(4)) {
		t.Fatalf("entry above low water must still reject")
	}
	if !tbl.TryIssue("A", rel, true, regStep("Read", "x", 0), core.RootID(6)) {
		t.Fatalf("newer timestamp must pass after prune")
	}
}

func TestIssueTableConservativeCompaction(t *testing.T) {
	tbl := NewIssueTable()
	rel := objects.Register().Conflicts
	top := core.RootID(0)
	// The same lineage re-issues the same operation class repeatedly: the
	// table keeps roughly one entry (max per operation), like the paper's
	// hts(a) summary.
	ts := top
	for i := 0; i < 10; i++ {
		ts = ts.Child(0)
		if !tbl.TryIssue("A", rel, false, regStep("Write", "x", int64(i)), ts) {
			t.Fatalf("descendant issue %d rejected", i)
		}
	}
	if tbl.Size() != 1 {
		t.Fatalf("conservative compaction failed: size = %d, want 1", tbl.Size())
	}
}

// Property: within one scope, the admitted steps, restricted to pairs of
// incomparable issuers whose steps conflict (in admission order), are in
// increasing timestamp order — exactly NTO rule 1.
func TestIssueTableRule1Property(t *testing.T) {
	rel := objects.Register().Conflicts
	r := rand.New(rand.NewSource(99))
	f := func() bool {
		tbl := NewIssueTable()
		type adm struct {
			step core.StepInfo
			ts   HTS
		}
		var admitted []adm
		for i := 0; i < 25; i++ {
			ts := randomTS(r)
			var step core.StepInfo
			if r.Intn(2) == 0 {
				step = regStep("Read", "x", 0)
			} else {
				step = regStep("Write", "x", int64(r.Intn(5)))
			}
			if tbl.TryIssue("s", rel, false, step, ts) {
				admitted = append(admitted, adm{step, ts})
			}
		}
		for i := 0; i < len(admitted); i++ {
			for j := i + 1; j < len(admitted); j++ {
				a, b := admitted[i], admitted[j]
				if a.ts.Comparable(b.ts) {
					continue
				}
				if !rel.OpConflicts(a.step.Invocation(), b.step.Invocation()) {
					continue
				}
				if b.ts.Compare(a.ts) < 0 {
					t.Logf("admitted %v(%v) before larger-incomparable %v(%v)", a.step, a.ts, b.step, b.ts)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func randomTS(r *rand.Rand) HTS {
	depth := 1 + r.Intn(3)
	ts := make(core.ExecID, depth)
	for i := range ts {
		ts[i] = int32(r.Intn(4))
	}
	return ts
}
