// Package hts implements Reed's hierarchical timestamps as used by nested
// timestamp ordering (Section 5.2 of the paper).
//
// A hierarchical timestamp hts(e) has the form (a1, a2, ..., ak) where
// (a1, ..., a(k-1)) is the parent's timestamp; timestamps are totally
// ordered lexicographically (with a proper prefix preceding its
// extensions). The paper's implementation sketch — a per-execution counter
// whose atomic Increment numbers the children, plus an environment counter
// that numbers top-level transactions in start order — is exactly what
// Assigner provides.
//
// In this repository an execution's ExecID is its path of child indices, so
// the ID is the timestamp; this package supplies the ordering, the
// generation discipline, and the bookkeeping NTO needs (per-operation
// maximum timestamps with the paper's garbage-collection rule).
package hts

import (
	"sync"
	"sync/atomic"

	"objectbase/internal/core"
)

// HTS is a hierarchical timestamp.
type HTS = core.ExecID

// Less reports a < b in the lexicographic order of Section 5.2 (a proper
// prefix precedes its extensions).
func Less(a, b HTS) bool { return a.Compare(b) < 0 }

// Assigner hands out hierarchical timestamps satisfying both NTO
// disciplines:
//
//   - rule 2's implementation: each execution carries a counter; a child
//     created by the i-th Increment gets timestamp (hts(parent), i), so
//     serially issued messages get ordered timestamps while parallel
//     messages get unique ones;
//   - the environment counter assigns top-level timestamps so that if e
//     terminates before e' begins then hts(e) < hts(e') (needed for the
//     step-based variant's garbage collection).
type Assigner struct {
	top      atomic.Int32
	mu       sync.Mutex
	counters map[string]*int32
}

// NewAssigner returns a fresh assigner.
func NewAssigner() *Assigner {
	return &Assigner{counters: make(map[string]*int32)}
}

// NextTop returns the timestamp for the next top-level transaction.
func (a *Assigner) NextTop() HTS {
	n := a.top.Add(1) - 1
	return core.RootID(n)
}

// NextChild returns the timestamp for the next child of parent
// (Increment(ctr_e) in the paper's sketch).
func (a *Assigner) NextChild(parent HTS) HTS {
	a.mu.Lock()
	ctr := a.counters[parent.Key()]
	if ctr == nil {
		ctr = new(int32)
		a.counters[parent.Key()] = ctr
	}
	k := *ctr
	*ctr++
	a.mu.Unlock()
	return parent.Child(k)
}

// Forget drops the counter of a finished execution (housekeeping only; IDs
// remain unique because a parent never reuses an index).
func (a *Assigner) Forget(e HTS) {
	a.mu.Lock()
	delete(a.counters, e.Key())
	a.mu.Unlock()
}

// IssueTable is the bookkeeping behind NTO rule 1 ("if t conflicts with t'
// and t < t' then hts(e) < hts(e')"), covering both of the paper's
// implementation strategies:
//
//   - conservative (exact=false): conflicts are tested at operation
//     granularity before execution — the moral equivalent of keeping "the
//     maximum timestamp of any method execution that has issued operation
//     a" per operation (the paper's hts(a));
//   - exact (exact=true): the step's provisionally computed return value
//     participates, so only genuinely conflicting steps are ordered — at
//     the price of remembering past steps, which the paper's low-water
//     garbage collection (Prune) keeps bounded.
//
// Rule 1 applies only to *incomparable* executions, so recorded issues by
// ancestors or descendants of the requester never reject it.
type IssueTable struct {
	mu      sync.Mutex
	entries map[string][]issue // scope -> issued steps
}

type issue struct {
	step core.StepInfo
	ts   HTS
}

// NewIssueTable returns an empty table.
func NewIssueTable() *IssueTable {
	return &IssueTable{entries: make(map[string][]issue)}
}

// TryIssue checks rule 1 for a step req with timestamp ts in the given
// scope and, if admissible, records it and returns true. A false return
// means some incomparable execution with a *larger* timestamp already
// issued a step that conflicts with req (in recorded-then-req order): req's
// execution must be aborted (and typically retried with a fresh, larger
// timestamp).
//
// req.Ret is ignored unless exact is true.
func (t *IssueTable) TryIssue(scope string, rel core.ConflictRelation, exact bool, req core.StepInfo, ts HTS) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries[scope] {
		if e.ts.Comparable(ts) {
			continue
		}
		if ts.Compare(e.ts) > 0 {
			continue // recorded issuer is older: order already agrees
		}
		var conflicting bool
		if exact {
			conflicting = rel.StepConflicts(e.step, req)
		} else {
			conflicting = rel.OpConflicts(e.step.Invocation(), req.Invocation())
		}
		if conflicting {
			return false
		}
	}
	t.record(scope, req, ts, exact)
	return true
}

// record appends the issue; in conservative mode it compacts entries of the
// same operation class whose issuer is an ancestor of (or equal to) ts,
// which keeps the table near "one max per operation" on flat workloads.
func (t *IssueTable) record(scope string, req core.StepInfo, ts HTS, exact bool) {
	list := t.entries[scope]
	if !exact {
		out := list[:0]
		for _, e := range list {
			if e.step.Op == req.Op && e.ts.IsAncestorOf(ts) {
				continue
			}
			out = append(out, e)
		}
		list = out
	}
	t.entries[scope] = append(list, issue{step: req, ts: ts})
}

// Prune removes entries strictly below the low-water timestamp — the
// paper's garbage collection: "information about the steps of an inactive
// method execution e can be discarded as soon as for all active method
// executions e', hts(e) < hts(e')". Scopes left empty are deleted.
func (t *IssueTable) Prune(lowWater HTS) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for scope, list := range t.entries {
		out := list[:0]
		for _, e := range list {
			if e.ts.Compare(lowWater) >= 0 {
				out = append(out, e)
			}
		}
		if len(out) == 0 {
			delete(t.entries, scope)
		} else {
			t.entries[scope] = out
		}
	}
}

// Size returns the number of live entries (used by the GC experiment).
func (t *IssueTable) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, list := range t.entries {
		n += len(list)
	}
	return n
}
