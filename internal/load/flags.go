package load

import (
	"fmt"
	"strconv"
	"strings"
)

// FlagConfig is the raw matrix-shaping flag set of `obsim load`
// (-shards/-verify/-history/-view) before validation. Validation of the
// combination lives here, in one place, so the CLI reports every
// conflict at once instead of failing on whichever check happened to run
// first.
type FlagConfig struct {
	// Shards is the -shards value: a comma list of positive shard counts.
	Shards string
	// Verify is the -verify value: sample, all, or none.
	Verify string
	// History is the -history value: auto, full, off, or a comma list of
	// full/off.
	History string
	// View is the -view value: route read-only transactions through the
	// snapshot fast path.
	View bool
	// Epoch is the -epoch value: a comma list of epoch group-commit
	// policies (off, serial, or WINDOW[:BATCH] — see Knobs.Epoch).
	Epoch string
}

// MatrixSpec is a validated FlagConfig: the dimensions of the run
// matrix.
type MatrixSpec struct {
	// ShardCounts is the deduplicated -shards list, in flag order.
	ShardCounts []int
	// HistoryModes is the deduplicated -history list, in flag order.
	HistoryModes []string
	// Verify is the oracle policy.
	Verify string
	// View mirrors FlagConfig.View.
	View bool
	// EpochPolicies is the deduplicated -epoch list, in flag order.
	EpochPolicies []string
}

// Validate checks the flag combination as a whole and returns every
// conflict found; the spec is meaningful only when the error list is
// empty.
func (c FlagConfig) Validate() (MatrixSpec, []error) {
	var errs []error
	spec := MatrixSpec{Verify: c.Verify, View: c.View}

	for _, s := range strings.Split(c.Shards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			errs = append(errs, fmt.Errorf("bad -shards entry %q (want positive integers, e.g. 1,8)", s))
			continue
		}
		dup := false
		for _, seen := range spec.ShardCounts {
			dup = dup || seen == n
		}
		if !dup {
			spec.ShardCounts = append(spec.ShardCounts, n)
		}
	}

	// A typo here must not silently disable the oracle backstop.
	if c.Verify != "sample" && c.Verify != "all" && c.Verify != "none" {
		errs = append(errs, fmt.Errorf("unknown -verify policy %q (want sample, all, or none)", c.Verify))
	}

	canVerify := false // some mode records a history the oracle could check
	for _, m := range strings.Split(c.History, ",") {
		if m != "auto" && m != "full" && m != "off" {
			errs = append(errs, fmt.Errorf("unknown -history mode %q (want auto, full, or off)", m))
			continue
		}
		dup := false
		for _, seen := range spec.HistoryModes {
			dup = dup || seen == m
		}
		if dup {
			continue
		}
		spec.HistoryModes = append(spec.HistoryModes, m)
		canVerify = canVerify || m != "off"
	}
	if len(spec.HistoryModes) > 1 {
		for _, m := range spec.HistoryModes {
			if m == "auto" {
				errs = append(errs, fmt.Errorf("-history auto cannot be combined with other modes"))
			}
		}
	}
	if len(spec.HistoryModes) > 0 && !canVerify && c.Verify != "none" {
		errs = append(errs, fmt.Errorf("-history off records nothing the oracle could check; pass -verify none (or -history auto/full)"))
	}

	epochs := c.Epoch
	if epochs == "" {
		epochs = "off"
	}
	for _, e := range strings.Split(epochs, ",") {
		e = strings.TrimSpace(e)
		// Batch defaults to Clients at run time; a placeholder of 1 is
		// enough to vet the spec's format here.
		if _, _, _, err := (Knobs{Epoch: e, Clients: 1}).epochParams(); err != nil {
			errs = append(errs, fmt.Errorf("bad -epoch entry %q (want off, serial, or WINDOW[:BATCH], e.g. 100us:16)", e))
			continue
		}
		dup := false
		for _, seen := range spec.EpochPolicies {
			dup = dup || seen == e
		}
		if !dup {
			spec.EpochPolicies = append(spec.EpochPolicies, e)
		}
	}

	return spec, errs
}
