package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"objectbase"
	"objectbase/internal/engine"
)

// Options configures one driven run: a scenario × scheduler cell.
type Options struct {
	Scenario  *Scenario
	Scheduler string
	Knobs     Knobs
	// Verify runs the serialisability oracle (DB.Verify) on the
	// quiescent DB after the drive and folds the verdict into the
	// Result. The oracle replays the whole history, so sample it rather
	// than paying for it on every cell. Requires full history recording.
	Verify bool
	// History selects the recording mode for the run: HistoryFull keeps
	// the whole history (required for Verify), HistoryOff swaps in the
	// stats-only observer — the measurement configuration, since the
	// recorder is pure overhead on unverified load runs. Empty means
	// auto: full when Verify is set, off otherwise.
	History objectbase.HistoryMode
	// Trace opens the DB with the flight recorder on
	// (objectbase.WithTracing) and folds the per-phase latency summaries
	// into Result.Phases (the report's "phases" block); the raw spans and
	// recorder epoch ride along in Result.Spans/TraceEpoch (not
	// serialised) for trace export. Enabled tracing costs a few percent
	// of throughput, so traced cells are not comparable to untraced ones
	// — the cell key records the flag.
	Trace bool
	// Open passes extra options (retry policy, lock timeout) through to
	// objectbase.Open.
	Open []objectbase.Option
}

// historyMode resolves the run's recording mode and rejects the one
// combination that cannot work: the oracle needs the history.
func (o Options) historyMode() (objectbase.HistoryMode, error) {
	mode := o.History
	if mode == "" {
		if o.Verify {
			mode = objectbase.HistoryFull
		} else {
			mode = objectbase.HistoryOff
		}
	}
	if o.Verify && mode == objectbase.HistoryOff {
		return "", errors.New("load: Verify requires full history recording (History=off)")
	}
	return mode, nil
}

// Run executes one load run: open a DB under the scheduler, set the
// scenario up, drive it with Knobs.Clients concurrent clients (closed
// loop, or token-bucket open loop when Knobs.Rate is set), and merge the
// per-client recorders into a Result.
//
// Soft failures — transactions that exhaust their retries under
// contention — are counted in Result.Errors and the run continues; hard
// failures (programming errors such as an unknown method) cancel the
// remaining clients and fail the run. Cancelling ctx stops the run at
// the next transaction boundary and returns ctx's error.
func Run(ctx context.Context, opts Options) (*Result, error) {
	sc := opts.Scenario
	if sc == nil {
		return nil, errors.New("load: Run: nil scenario")
	}
	if opts.Scheduler == "" {
		opts.Scheduler = objectbase.DefaultScheduler
	}
	k := opts.Knobs.withDefaults(sc.Defaults)
	if err := k.validate(); err != nil {
		return nil, err
	}
	mode, err := opts.historyMode()
	if err != nil {
		return nil, err
	}

	openOpts := []objectbase.Option{
		objectbase.WithScheduler(opts.Scheduler),
		objectbase.WithHistory(mode),
	}
	if k.UseView {
		// The snapshot fast path needs version publication.
		openOpts = append(openOpts, objectbase.WithReadOnly())
	}
	if k.Shards > 1 {
		openOpts = append(openOpts, objectbase.WithShards(k.Shards))
	}
	if w, b, on, _ := k.epochParams(); on { // validate already rejected bad specs
		openOpts = append(openOpts, objectbase.WithEpochs(w, b))
	}
	if opts.Trace {
		openOpts = append(openOpts, objectbase.WithTracing())
	}
	db, err := objectbase.Open(append(openOpts, opts.Open...)...)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	if err := sc.Setup(db, k); err != nil {
		return nil, fmt.Errorf("load: scenario %s setup: %w", sc.Name, err)
	}
	base := db.Stats()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if k.Duration > 0 {
		var cancelT context.CancelFunc
		runCtx, cancelT = context.WithTimeout(runCtx, k.Duration)
		defer cancelT()
	}
	var bucket *tokenBucket
	if k.Rate > 0 {
		bucket = newTokenBucket(k.Rate, float64(k.Burst))
	}

	recs := make([]*Recorder, k.Clients)
	hard := make([]error, k.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < k.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(k.Seed*1_000_003 + int64(c)))
			ops := sc.Ops(k, c, r)
			rec := newRecorder()
			recs[c] = rec
			for i := 0; k.Duration > 0 || i < k.Txns; i++ {
				if runCtx.Err() != nil {
					return
				}
				if bucket != nil && !bucket.wait(runCtx) {
					return
				}
				op := ops(i)
				t0 := time.Now()
				var err error
				switch {
				case k.UseView && op.ReadOnly:
					_, err = db.View(runCtx, op.Name, op.Fn)
				case len(op.Objects) > 0:
					_, err = db.ExecTouching(runCtx, op.Name, op.Objects, op.Fn)
				default:
					_, err = db.Exec(runCtx, op.Name, op.Fn)
				}
				if err != nil {
					if runCtx.Err() != nil {
						// Shutdown (duration elapsed, sibling failure, or
						// caller cancellation), not a workload outcome.
						return
					}
					if engine.Retriable(err) {
						// Retries exhausted under contention: a measured
						// outcome, not a harness failure.
						rec.observe(op.Name, 0, err)
						continue
					}
					hard[c] = fmt.Errorf("load: scenario %s client %d txn %d: %w", sc.Name, c, i, err)
					cancel()
					return
				}
				rec.observe(op.Name, time.Since(t0), nil)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := errors.Join(hard...); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	merged := mergeRecorders(recs)
	res := newResult(sc, opts.Scheduler, k, merged, elapsed, db.Stats().Sub(base))
	res.History = string(mode)
	if opts.Trace {
		res.Trace = true
		res.Phases = phaseStats(db.Metrics())
		res.Spans, res.TraceEpoch = db.TraceSnapshot()
	}
	if opts.Verify {
		_, verr := db.Verify()
		if verr == nil {
			// The serialisability oracle passed; the commutativity witness
			// rides the same verified cell: differentially re-check the
			// declared-commuting pairs of every schema this cell registered
			// (Definition 3 in both orders, undo closures included).
			for _, schema := range db.Schemas() {
				if _, werr := objectbase.SampleCommutativity(schema, k.Seed, 200); werr != nil {
					verr = fmt.Errorf("commutativity witness: %w", werr)
					break
				}
			}
		}
		ok := verr == nil
		// Legality is an engine invariant, not a scheduler guarantee:
		// report it separately so harnesses that tolerate anomalies from
		// the "none" control can still treat its violation as fatal.
		legal := verr == nil || !errors.Is(verr, objectbase.ErrNotLegal)
		res.Verified = &ok
		res.Legal = &legal
		if verr != nil {
			res.Verdict = truncate(verr.Error(), 300)
		} else {
			res.Verdict = "serialisable"
		}
	}
	return res, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// tokenBucket paces open-loop clients: tokens accrue at rate per second
// up to burst, and each transaction spends one. It is time-based (no
// refill goroutine); waiters sleep until their token is due.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// wait blocks until a token is available or ctx is done; it reports
// whether a token was taken.
func (b *tokenBucket) wait(ctx context.Context) bool {
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return true
		}
		wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return false
		}
	}
}
