package load

import (
	"errors"
	"math"
	"testing"
	"time"
)

// TestHistogramPercentiles checks quantile estimates against the exact
// values on a known dataset: 1..10000 µs recorded once each. The
// log-linear buckets guarantee ≤ 1/32 relative width, so 5% tolerance is
// generous.
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	const n = 10_000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.Min() != time.Microsecond || h.Max() != n*time.Microsecond {
		t.Fatalf("min/max = %v/%v, want 1µs/%dµs", h.Min(), h.Max(), n)
	}
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 5000 * time.Microsecond},
		{0.90, 9000 * time.Microsecond},
		{0.95, 9500 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
		{1.0, 10000 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		if relErr := math.Abs(float64(got-tc.exact)) / float64(tc.exact); relErr > 0.05 {
			t.Errorf("q=%v: got %v, exact %v (rel err %.3f)", tc.q, got, tc.exact, relErr)
		}
	}
	wantMean := time.Duration(n+1) * 1000 / 2
	if h.Mean() != wantMean {
		t.Errorf("mean = %v, want exact %v", h.Mean(), wantMean)
	}
}

// TestHistogramMerge: merging two disjoint halves must equal recording
// the whole dataset into one histogram, bucket for bucket.
func TestHistogramMerge(t *testing.T) {
	var whole, lo, hi Histogram
	for i := 1; i <= 2000; i++ {
		d := time.Duration(i*i) * time.Nanosecond // span several magnitudes
		whole.Record(d)
		if i%2 == 0 {
			lo.Record(d)
		} else {
			hi.Record(d)
		}
	}
	lo.Merge(&hi)
	if lo.Count() != whole.Count() || lo.Min() != whole.Min() || lo.Max() != whole.Max() || lo.Mean() != whole.Mean() {
		t.Fatalf("merged summary differs: %v/%v/%v/%v vs %v/%v/%v/%v",
			lo.Count(), lo.Min(), lo.Max(), lo.Mean(), whole.Count(), whole.Min(), whole.Max(), whole.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if lo.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %v != whole %v", q, lo.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramEmptyAndZero(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Record(0)
	h.Record(-time.Second) // clamped
	if h.Count() != 2 || h.Max() != 0 {
		t.Fatalf("count=%d max=%v, want 2 and 0", h.Count(), h.Max())
	}
}

// TestBucketIndexMonotone locks in the log-linear bucket layout: indices
// are monotone in the value and every bucket's upper bound belongs to
// that bucket.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 10, 1<<20 + 12345, 1 << 40, 1 << 62} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("index not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if up := bucketUpper(idx); bucketIndex(up) != idx {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", up, idx, bucketIndex(up))
		}
	}
}

func TestRecorderMerge(t *testing.T) {
	a, b := newRecorder(), newRecorder()
	a.observe("x", time.Millisecond, nil)
	a.observe("x", 0, errTest)
	b.observe("y", 2*time.Millisecond, nil)
	m := mergeRecorders([]*Recorder{a, nil, b})
	if m.Ops != 3 || m.Errors != 1 || m.ByName["x"] != 1 || m.ByName["y"] != 1 {
		t.Fatalf("merge wrong: ops=%d errs=%d byName=%v", m.Ops, m.Errors, m.ByName)
	}
	if m.Hist.Count() != 2 {
		t.Fatalf("errors must not be recorded as latencies: count=%d", m.Hist.Count())
	}
}

var errTest = errors.New("test error")
