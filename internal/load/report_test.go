package load

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleResult() *Result {
	ok := true
	return &Result{
		Scenario: "bank", Scheduler: "n2pl-op",
		Clients: 4, Txns: 25, Keys: 16, Theta: 0.5, ReadFraction: 0.25, Seed: 42,
		Mode: "closed", History: "full",
		Ops: 100, Errors: 2, ElapsedNS: 1_500_000, Throughput: 65333.3,
		Latency:  Latency{P50: 8000, P90: 20000, P95: 30000, P99: 50000, Max: 60000, Mean: 11000},
		Counters: Counters{Commits: 98, Aborts: 5, Retries: 3},
		ByName:   map[string]int64{"transfer": 70, "balance": 28},
		Verified: &ok, Legal: &ok, Verdict: "serialisable",
	}
}

func TestReportRoundTrip(t *testing.T) {
	rp := NewReport()
	rp.GeneratedAt = "2026-07-29T00:00:00Z"
	rp.Add(sampleResult())
	r2 := sampleResult()
	r2.Scenario, r2.Scheduler = "queue", "nto-op"
	rp.Add(r2)

	var buf bytes.Buffer
	if err := rp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rp, got) {
		t.Fatalf("round trip differs:\n  wrote %+v\n  read  %+v", rp, got)
	}
}

func TestReportRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"something/else","results":[]}`)); err == nil {
		t.Fatal("want schema rejection")
	}
}

// TestReportStableKeys locks in the wire format: renaming a JSON key is a
// schema break and must show up here.
func TestReportStableKeys(t *testing.T) {
	rp := NewReport()
	rp.Add(sampleResult())
	var buf bytes.Buffer
	if err := rp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if raw["schema"] != SchemaVersion {
		t.Fatalf("schema = %v", raw["schema"])
	}
	cell := raw["results"].([]any)[0].(map[string]any)
	for _, key := range []string{
		"scenario", "scheduler", "clients", "keys", "theta", "read_fraction",
		"seed", "mode", "history", "view", "ops", "errors", "elapsed_ns",
		"throughput_txn_per_sec", "latency_ns", "counters", "verified",
		"legal", "verdict",
	} {
		if _, present := cell[key]; !present {
			t.Errorf("result cell missing key %q", key)
		}
	}
	lat := cell["latency_ns"].(map[string]any)
	for _, key := range []string{"p50", "p90", "p95", "p99", "max", "mean"} {
		if _, present := lat[key]; !present {
			t.Errorf("latency_ns missing key %q", key)
		}
	}
	ctr := cell["counters"].(map[string]any)
	for _, key := range []string{"commits", "aborts", "retries", "lock_waits", "deadlocks", "cert_validated", "cert_rejected", "view_commits", "view_fallbacks"} {
		if _, present := ctr[key]; !present {
			t.Errorf("counters missing key %q", key)
		}
	}
}

// TestReportSorted: Add keeps the matrix ordered however cells arrive.
func TestReportSorted(t *testing.T) {
	rp := NewReport()
	for _, cell := range [][2]string{{"queue", "nto-op"}, {"bank", "none"}, {"bank", "gemstone"}, {"queue", "modular"}} {
		r := sampleResult()
		r.Scenario, r.Scheduler = cell[0], cell[1]
		rp.Add(r)
	}
	want := [][2]string{{"bank", "gemstone"}, {"bank", "none"}, {"queue", "modular"}, {"queue", "nto-op"}}
	for i, w := range want {
		if rp.Results[i].Scenario != w[0] || rp.Results[i].Scheduler != w[1] {
			t.Fatalf("cell %d = %s×%s, want %s×%s", i, rp.Results[i].Scenario, rp.Results[i].Scheduler, w[0], w[1])
		}
	}
}

// TestReportAddUpserts: re-adding a cell with identical knobs replaces
// the old one — the -append trajectory must never accumulate duplicate
// cell keys, which the compare gate rejects as unusable.
func TestReportAddUpserts(t *testing.T) {
	rp := NewReport()
	r1 := sampleResult()
	r1.Throughput = 100
	rp.Add(r1)
	r2 := sampleResult()
	r2.Throughput = 250
	rp.Add(r2)
	if len(rp.Results) != 1 {
		t.Fatalf("duplicate knobs produced %d cells, want 1 (upsert)", len(rp.Results))
	}
	if rp.Results[0].Throughput != 250 {
		t.Fatalf("upsert kept the stale cell (throughput %v, want 250)", rp.Results[0].Throughput)
	}
	r3 := sampleResult()
	r3.Shards = 8
	rp.Add(r3)
	if len(rp.Results) != 2 {
		t.Fatalf("distinct shard count did not add a cell (%d cells)", len(rp.Results))
	}
}

func TestTableRendersEveryCell(t *testing.T) {
	rp := NewReport()
	rp.Add(sampleResult())
	var buf bytes.Buffer
	rp.Table(&buf)
	out := buf.String()
	for _, want := range []string{"SCENARIO", "bank", "n2pl-op", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestReportSortedByView: within a (scenario, scheduler, history) group,
// locked cells sort before their -view counterparts.
func TestReportSortedByView(t *testing.T) {
	rp := NewReport()
	for _, view := range []bool{true, false} {
		r := sampleResult()
		r.View = view
		rp.Add(r)
	}
	if rp.Results[0].View || !rp.Results[1].View {
		t.Fatalf("view sort order: %v, %v", rp.Results[0].View, rp.Results[1].View)
	}
}
