package load

import (
	"math"
	"math/rand"
	"sync"
)

// A KeyChooser draws keys from [0, N). Implementations hold only
// immutable precomputed state: all randomness comes from the caller's
// source, so one chooser may be shared across clients while each client
// keeps its own deterministic stream.
type KeyChooser interface {
	Next(r *rand.Rand) int
	N() int
}

// NewKeyChooser returns a chooser over [0, n): uniform for theta <= 0,
// zipfian-skewed otherwise (key 0 hottest).
func NewKeyChooser(n int, theta float64) KeyChooser {
	if n < 1 {
		n = 1
	}
	if theta <= 0 {
		return uniformChooser{n: n}
	}
	return newZipf(n, theta)
}

type uniformChooser struct{ n int }

func (u uniformChooser) Next(r *rand.Rand) int { return r.Intn(u.n) }
func (u uniformChooser) N() int                { return u.n }

// zipf is the YCSB-style zipfian generator (Gray et al., "Quickly
// Generating Billion-Record Synthetic Databases"): P(k) ∝ 1/(k+1)^theta
// for theta in (0, 1). Unlike math/rand's Zipf (which wants s > 1), this
// parameterisation matches the skew knob benchmark literature reports.
type zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta
}

// zipfCache memoises generators by (n, theta): the zeta normalisation sum
// is O(n), and the driver builds one chooser per client per run, so
// without the cache a large-Keys scenario pays Clients × Keys work before
// the first transaction. A *zipf is immutable after construction (all
// randomness comes from the caller's source), so one instance is safely
// shared by every client of every run with the same parameters.
var zipfCache sync.Map // zipfKey -> *zipf

type zipfKey struct {
	n     int
	theta float64
}

func newZipf(n int, theta float64) *zipf {
	key := zipfKey{n: n, theta: theta}
	if z, ok := zipfCache.Load(key); ok {
		return z.(*zipf)
	}
	z, _ := zipfCache.LoadOrStore(key, computeZipf(n, theta))
	return z.(*zipf)
}

func computeZipf(n int, theta float64) *zipf {
	// theta = 1 makes alpha blow up; clamp just below (YCSB does the
	// same — its "zipfian constant" is 0.99).
	if theta >= 1 {
		theta = 0.9999
	}
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	z := &zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		half:  math.Pow(0.5, theta),
	}
	if n > 1 {
		z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	}
	return z
}

func (z *zipf) Next(r *rand.Rand) int {
	if z.n == 1 {
		return 0
	}
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

func (z *zipf) N() int { return z.n }
