package load

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Comparing two load reports: the benchmark-regression gate.
//
// Two cells are comparable when every knob that shapes the workload
// matches — scenario, scheduler, history mode, view routing, shard
// count, loop mode, clients, transaction count/duration, key space,
// skew, read fraction, target rate and seed. Throughput of matched head
// cells is then checked against the base: a drop beyond the threshold
// fraction is a regression. Cells present on only one side are reported
// but not fatal (matrices legitimately grow); zero matched cells is an
// error, because a gate that compares nothing passes vacuously.

// CellKey identifies one comparable cell of the matrix. The trace flag
// is part of the key only when set: enabled tracing costs throughput,
// so a traced cell must never gate against an untraced baseline — and
// keeping the flag out of untraced keys lets reports from before
// tracing (no "trace" field, and no "phases" block; both optional)
// compare cleanly against today's untraced cells. The epoch policy
// follows the same rule: it joins the key only when set, so reports
// from before the epoch knob diff cleanly against today's epoch-less
// cells, and an epoch cell never gates against a per-transaction
// baseline.
func (r *Result) CellKey() string {
	shards := r.Shards
	if shards == 0 {
		shards = 1 // reports written before the shards field
	}
	trace := ""
	if r.Trace {
		trace = " trace=true"
	}
	epoch := ""
	if r.Epoch != "" {
		epoch = " epoch=" + r.Epoch
	}
	return fmt.Sprintf("%s×%s hist=%s view=%t shards=%d%s%s %s c=%d t=%d d=%d k=%d θ=%g rf=%g rate=%g seed=%d",
		r.Scenario, r.Scheduler, r.History, r.View, shards, epoch, trace, r.Mode,
		r.Clients, r.Txns, r.DurationNS, r.Keys, r.Theta, r.ReadFraction, r.TargetRate, r.Seed)
}

// CellDelta is one matched cell's throughput comparison.
type CellDelta struct {
	Key       string
	Base      float64 // base throughput, txn/s
	Head      float64 // head throughput, txn/s
	Ratio     float64 // head / base
	Regressed bool    // head < base × (1 − threshold)
}

// Comparison is the outcome of comparing two reports.
type Comparison struct {
	Threshold float64
	Cells     []CellDelta // matched cells, worst ratio first
	BaseOnly  []string    // cell keys present only in the base report
	HeadOnly  []string    // cell keys present only in the head report
}

// Regressions returns the matched cells that regressed.
func (c *Comparison) Regressions() []CellDelta {
	var out []CellDelta
	for _, d := range c.Cells {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs head against base, flagging any matched cell whose
// throughput dropped by more than threshold (a fraction: 0.30 means a
// 30% drop fails). Duplicate cell keys within one report and an empty
// intersection are errors — both would let a broken gate pass silently.
func Compare(base, head *Report, threshold float64) (*Comparison, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("load: compare: threshold %v out of range (0, 1)", threshold)
	}
	index := func(rp *Report, which string) (map[string]*Result, error) {
		m := make(map[string]*Result, len(rp.Results))
		for i := range rp.Results {
			r := &rp.Results[i]
			key := r.CellKey()
			if _, dup := m[key]; dup {
				return nil, fmt.Errorf("load: compare: duplicate cell in %s report: %s", which, key)
			}
			m[key] = r
		}
		return m, nil
	}
	baseIdx, err := index(base, "base")
	if err != nil {
		return nil, err
	}
	headIdx, err := index(head, "head")
	if err != nil {
		return nil, err
	}

	cmp := &Comparison{Threshold: threshold}
	for key, b := range baseIdx {
		h, ok := headIdx[key]
		if !ok {
			cmp.BaseOnly = append(cmp.BaseOnly, key)
			continue
		}
		d := CellDelta{Key: key, Base: b.Throughput, Head: h.Throughput}
		if b.Throughput > 0 {
			d.Ratio = h.Throughput / b.Throughput
			d.Regressed = d.Ratio < 1-threshold
		} else {
			d.Ratio = 1 // nothing measured to regress from
		}
		cmp.Cells = append(cmp.Cells, d)
	}
	for key := range headIdx {
		if _, ok := baseIdx[key]; !ok {
			cmp.HeadOnly = append(cmp.HeadOnly, key)
		}
	}
	if len(cmp.Cells) == 0 {
		return nil, fmt.Errorf("load: compare: no comparable cells (base has %d, head has %d; knobs must match exactly)",
			len(base.Results), len(head.Results))
	}
	sort.Slice(cmp.Cells, func(i, j int) bool { return cmp.Cells[i].Ratio < cmp.Cells[j].Ratio })
	sort.Strings(cmp.BaseOnly)
	sort.Strings(cmp.HeadOnly)
	return cmp, nil
}

// Table writes the human-readable comparison, worst cells first.
func (c *Comparison) Table(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tBASE TXN/S\tHEAD TXN/S\tRATIO\tSTATUS")
	for _, d := range c.Cells {
		status := "ok"
		if d.Regressed {
			status = fmt.Sprintf("REGRESSED (>%0.f%% drop)", c.Threshold*100)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2f\t%s\n", d.Key, d.Base, d.Head, d.Ratio, status)
	}
	tw.Flush()
	if len(c.BaseOnly) > 0 {
		fmt.Fprintf(w, "%d cell(s) only in base (not compared)\n", len(c.BaseOnly))
	}
	if len(c.HeadOnly) > 0 {
		fmt.Fprintf(w, "%d cell(s) only in head (not compared)\n", len(c.HeadOnly))
	}
}
