package load

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"objectbase"
)

// TestOpStreamsDeterministic: identical (knobs, seed, client) must yield
// identical op sequences for every registered scenario — the
// reproducibility contract of the harness.
func TestOpStreamsDeterministic(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Get(name)
		k := Knobs{Seed: 99}.withDefaults(sc.Defaults)
		for client := 0; client < 2; client++ {
			seq := func() []string {
				r := rand.New(rand.NewSource(k.Seed*1_000_003 + int64(client)))
				ops := sc.Ops(k, client, r)
				names := make([]string, 200)
				for i := range names {
					names[i] = ops(i).Name
				}
				return names
			}
			a, b := seq(), seq()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s client %d op %d: %q != %q", name, client, i, a[i], b[i])
				}
			}
		}
	}
}

// TestRunClosedLoop drives the bank scenario end to end and checks the
// result's accounting, including the oracle verdict.
func TestRunClosedLoop(t *testing.T) {
	sc, _ := Get("bank")
	res, err := Run(context.Background(), Options{
		Scenario: sc,
		Knobs:    Knobs{Clients: 2, Txns: 15, Seed: 5},
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 30 || res.Errors != 0 {
		t.Fatalf("ops=%d errors=%d, want 30/0", res.Ops, res.Errors)
	}
	if res.Counters.Commits != 30 {
		t.Fatalf("commits=%d, want 30", res.Counters.Commits)
	}
	if res.Throughput <= 0 || res.Latency.P50 <= 0 || res.Latency.Max < res.Latency.P99 {
		t.Fatalf("latency summary implausible: %+v (throughput %v)", res.Latency, res.Throughput)
	}
	if res.Mode != "closed" || res.Scheduler != objectbase.DefaultScheduler {
		t.Fatalf("mode=%q scheduler=%q", res.Mode, res.Scheduler)
	}
	if res.Verified == nil || !*res.Verified || res.Verdict != "serialisable" {
		t.Fatalf("verify: %+v %q", res.Verified, res.Verdict)
	}
	if res.Legal == nil || !*res.Legal {
		t.Fatalf("legal: %+v", res.Legal)
	}
}

// TestRunRejectsBadKnobs: impossible knobs are library errors, not
// panics (the CLI validates its own flags; Run must too).
func TestRunRejectsBadKnobs(t *testing.T) {
	sc, _ := Get("bank")
	for _, k := range []Knobs{
		{Clients: -1},
		{Clients: 2, Txns: -5},
		{Clients: 2, Duration: -time.Second},
		{Clients: 2, Keys: -3},
		{Clients: 2, Rate: -100},
		{Clients: 2, ReadFraction: 1.5},
	} {
		if _, err := Run(context.Background(), Options{Scenario: sc, Knobs: k}); err == nil {
			t.Fatalf("knobs %+v: want validation error", k)
		}
	}
}

// TestRunEveryScenarioVerifies is the catalogue smoke test: each
// registered scenario, driven quickly under the default scheduler, must
// produce a serialisable history.
func TestRunEveryScenarioVerifies(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Get(name)
		res, err := Run(context.Background(), Options{
			Scenario: sc,
			Knobs:    Knobs{Clients: 2, Txns: 10, Seed: 3},
			Verify:   true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Ops != 20 {
			t.Fatalf("%s: ops=%d, want 20", name, res.Ops)
		}
		if res.Verified == nil || !*res.Verified {
			t.Fatalf("%s: not serialisable: %s", name, res.Verdict)
		}
	}
}

// TestRunOpenLoop: the token bucket must pace an open-loop run — the
// duration bounds the run, the mode is reported, and the op count stays
// in the neighbourhood the target rate allows.
func TestRunOpenLoop(t *testing.T) {
	sc, _ := Get("hotspot-counter")
	start := time.Now()
	res, err := Run(context.Background(), Options{
		Scenario: sc,
		Knobs:    Knobs{Clients: 2, Duration: 300 * time.Millisecond, Rate: 1000, Seed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Fatalf("duration-bounded run returned after %v", el)
	}
	if res.Mode != "open" || res.TargetRate != 1000 {
		t.Fatalf("mode=%q rate=%v", res.Mode, res.TargetRate)
	}
	if res.Ops < 10 {
		t.Fatalf("ops=%d, open loop generated no load", res.Ops)
	}
	// 1000 txn/s over ~0.3s plus the burst allowance: generously bounded
	// above; well under what an unpaced closed loop would do (~100k/s).
	if res.Ops > 1500 {
		t.Fatalf("ops=%d, token bucket did not pace the run", res.Ops)
	}
}

// TestRunHonoursCancellation: a cancelled context stops the run and
// surfaces the context error, not a result.
func TestRunHonoursCancellation(t *testing.T) {
	sc, _ := Get("bank")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{Scenario: sc, Knobs: Knobs{Clients: 2, Txns: 1000}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunHardErrorAborts: a programming error in an op body (unknown
// method) must fail the run rather than be swallowed as a soft error.
func TestRunHardErrorAborts(t *testing.T) {
	bad := &Scenario{
		Name: "bad-inline",
		Setup: func(db *objectbase.DB, k Knobs) error {
			return db.RegisterObject("c", objectbase.Counter(), nil)
		},
		Ops: func(k Knobs, client int, r *rand.Rand) OpFunc {
			return func(i int) Op {
				return Op{Name: "nope", Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					return ctx.Call("c", "no-such-method")
				}}
			}
		},
	}
	if _, err := Run(context.Background(), Options{Scenario: bad, Knobs: Knobs{Clients: 2, Txns: 50}}); err == nil {
		t.Fatal("want hard failure")
	}
}

func TestKnobDefaults(t *testing.T) {
	sc, _ := Get("hotspot-counter")
	k := Knobs{}.withDefaults(sc.Defaults)
	if k.Theta != 0.99 || k.Keys != 64 || k.Clients != defaultClients || k.Txns != defaultTxns {
		t.Fatalf("defaults not applied: %+v", k)
	}
	// Negative knobs force "really zero" past the scenario default.
	k = Knobs{Theta: -1, ReadFraction: -1}.withDefaults(sc.Defaults)
	if k.Theta != 0 || k.ReadFraction != 0 {
		t.Fatalf("negative override failed: %+v", k)
	}
	// Duration mode suppresses the txn-count default.
	k = Knobs{Duration: time.Second}.withDefaults(sc.Defaults)
	if k.Txns != 0 {
		t.Fatalf("duration mode should leave Txns at 0: %+v", k)
	}
}

// TestRunHistoryModes: the recording mode threads through the driver —
// auto resolves to off on unverified runs and full on verified ones, an
// explicit off still measures correctly, and off + Verify is rejected
// up front rather than failing after the drive.
func TestRunHistoryModes(t *testing.T) {
	sc, _ := Get("hotspot-counter")
	base := Knobs{Clients: 2, Txns: 10, Seed: 3}

	res, err := Run(context.Background(), Options{Scenario: sc, Knobs: base})
	if err != nil {
		t.Fatal(err)
	}
	if res.History != string(objectbase.HistoryOff) {
		t.Fatalf("auto unverified: history = %q, want off", res.History)
	}
	if res.Counters.Commits != 20 {
		t.Fatalf("commits = %d, want 20", res.Counters.Commits)
	}

	res, err = Run(context.Background(), Options{Scenario: sc, Knobs: base, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.History != string(objectbase.HistoryFull) {
		t.Fatalf("auto verified: history = %q, want full", res.History)
	}
	if res.Verified == nil || !*res.Verified {
		t.Fatalf("verified run not marked verified: %+v", res)
	}

	res, err = Run(context.Background(), Options{
		Scenario: sc, Knobs: base, History: objectbase.HistoryOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History != "off" || res.Verified != nil {
		t.Fatalf("explicit off: %+v", res)
	}

	if _, err := Run(context.Background(), Options{
		Scenario: sc, Knobs: base, Verify: true, History: objectbase.HistoryOff,
	}); err == nil {
		t.Fatal("Verify with history off must be rejected")
	}
}

// TestRunUseViewVerifies drives every scenario with its read-only
// transactions routed through the snapshot fast path and holds the run to
// the full oracle: view reads must slot into a serialisable history.
func TestRunUseViewVerifies(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Get(name)
		res, err := Run(context.Background(), Options{
			Scenario: sc,
			Knobs:    Knobs{Clients: 2, Txns: 10, Seed: 3, UseView: true},
			Verify:   true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Verified == nil || !*res.Verified {
			t.Fatalf("%s (view): not serialisable: %s", name, res.Verdict)
		}
		if !res.View {
			t.Fatalf("%s: View knob not echoed in the result", name)
		}
		reads := int64(0)
		for _, n := range []string{"balance", "lookup", "read", "scan"} {
			reads += res.ByName[n]
		}
		if reads > 0 && res.Counters.ViewCommits+res.Counters.ViewFallbacks < reads {
			t.Fatalf("%s: %d read txns but only %d view commits + %d fallbacks",
				name, reads, res.Counters.ViewCommits, res.Counters.ViewFallbacks)
		}
	}
}

// TestUseViewKeepsOpStreams: routing reads through DB.View must not
// change the op mix — same knobs and seed produce the same per-name
// transaction counts with the knob on and off.
func TestUseViewKeepsOpStreams(t *testing.T) {
	sc, _ := Get("dict-read-heavy")
	run := func(useView bool) map[string]int64 {
		res, err := Run(context.Background(), Options{
			Scenario: sc,
			Knobs:    Knobs{Clients: 2, Txns: 20, Seed: 7, UseView: useView},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ByName
	}
	with, without := run(true), run(false)
	for name, n := range without {
		if with[name] != n {
			t.Fatalf("op mix changed under UseView: %s %d != %d", name, with[name], n)
		}
	}
}
