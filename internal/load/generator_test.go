package load

import (
	"math/rand"
	"testing"
)

func TestKeyChooserBounds(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000} {
		for _, theta := range []float64{0, 0.5, 0.99, 1.2} {
			pick := NewKeyChooser(n, theta)
			r := rand.New(rand.NewSource(1))
			for i := 0; i < 5000; i++ {
				k := pick.Next(r)
				if k < 0 || k >= n {
					t.Fatalf("n=%d theta=%v: key %d out of range", n, theta, k)
				}
			}
		}
	}
}

func TestKeyChooserDeterministic(t *testing.T) {
	for _, theta := range []float64{0, 0.99} {
		a := NewKeyChooser(128, theta)
		b := NewKeyChooser(128, theta)
		ra := rand.New(rand.NewSource(7))
		rb := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			if ka, kb := a.Next(ra), b.Next(rb); ka != kb {
				t.Fatalf("theta=%v draw %d: %d != %d", theta, i, ka, kb)
			}
		}
	}
}

// TestZipfDistribution sanity-checks the YCSB-style skew: key 0 absorbs
// far more than its uniform share, frequency decays down the ranks, and
// the head dominates.
func TestZipfDistribution(t *testing.T) {
	const n, draws = 100, 200_000
	pick := NewKeyChooser(n, 0.99)
	r := rand.New(rand.NewSource(3))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[pick.Next(r)]++
	}
	f0 := float64(counts[0]) / draws
	if f0 < 0.10 || f0 > 0.35 {
		t.Fatalf("key 0 frequency %v, want the zipf head (~0.19)", f0)
	}
	if counts[0] < 10*counts[n/2] {
		t.Fatalf("no head/tail separation: counts[0]=%d counts[%d]=%d", counts[0], n/2, counts[n/2])
	}
	head := 0
	for k := 0; k < 10; k++ {
		head += counts[k]
	}
	if frac := float64(head) / draws; frac < 0.45 {
		t.Fatalf("top-10 keys absorb %v of traffic, want > 0.45", frac)
	}
}

func TestUniformDistribution(t *testing.T) {
	const n, draws = 100, 100_000
	pick := NewKeyChooser(n, 0)
	r := rand.New(rand.NewSource(4))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[pick.Next(r)]++
	}
	mean := draws / n
	for k, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("key %d count %d, want near uniform mean %d", k, c, mean)
		}
	}
}

// TestZipfMemoised: generators are memoised by (n, theta) — the O(n) zeta
// sum must be paid once, not per client per run — and the memoised
// instance must keep producing the identical deterministic stream.
func TestZipfMemoised(t *testing.T) {
	a := NewKeyChooser(4096, 0.9)
	b := NewKeyChooser(4096, 0.9)
	if a.(*zipf) != b.(*zipf) {
		t.Fatal("same (n, theta) produced distinct zipf instances")
	}
	if c := NewKeyChooser(4096, 0.8); c.(*zipf) == a.(*zipf) {
		t.Fatal("different theta shares an instance")
	}
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	fresh := computeZipf(4096, 0.9)
	for i := 0; i < 1000; i++ {
		if got, want := a.Next(r1), fresh.Next(r2); got != want {
			t.Fatalf("draw %d: memoised %d != fresh %d", i, got, want)
		}
	}
}
