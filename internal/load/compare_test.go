package load

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func cell(scenario, sched string, shards int, tput float64) *Result {
	return &Result{
		Scenario: scenario, Scheduler: sched, History: "off", Shards: shards,
		Clients: 16, Txns: 150, Keys: 64, Mode: "closed", Seed: 42,
		Throughput: tput,
	}
}

func reportWith(cells ...*Result) *Report {
	rp := NewReport()
	for _, c := range cells {
		rp.Add(c)
	}
	return rp
}

// TestComparePass: head within the threshold (including improvements)
// passes with zero regressions.
func TestComparePass(t *testing.T) {
	base := reportWith(cell("bank", "n2pl-op", 1, 100_000), cell("bank", "n2pl-op", 8, 150_000))
	head := reportWith(cell("bank", "n2pl-op", 1, 80_000), cell("bank", "n2pl-op", 8, 200_000))
	cmp, err := Compare(base, head, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}
	if len(cmp.Cells) != 2 {
		t.Fatalf("matched %d cells, want 2", len(cmp.Cells))
	}
	// The table must render without panicking and mention both cells.
	var buf bytes.Buffer
	cmp.Table(&buf)
	if n := strings.Count(buf.String(), "bank×n2pl-op"); n != 2 {
		t.Fatalf("table mentions bank cells %d times, want 2:\n%s", n, buf.String())
	}
}

// TestCompareRegressionFails: a drop beyond the threshold is flagged, and
// only in the cell that dropped.
func TestCompareRegressionFails(t *testing.T) {
	base := reportWith(cell("bank", "n2pl-op", 1, 100_000), cell("hotspot-counter", "n2pl-op", 8, 200_000))
	head := reportWith(cell("bank", "n2pl-op", 1, 65_000), cell("hotspot-counter", "n2pl-op", 8, 190_000))
	cmp, err := Compare(base, head, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	regs := cmp.Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if !strings.Contains(regs[0].Key, "bank") {
		t.Fatalf("wrong cell flagged: %s", regs[0].Key)
	}
	if regs[0].Ratio >= 0.70 {
		t.Fatalf("ratio = %v, want < 0.70", regs[0].Ratio)
	}
	// Exactly at the threshold boundary (drop == threshold) must pass:
	// the gate fires on *more than* the allowed drop.
	head2 := reportWith(cell("bank", "n2pl-op", 1, 70_000), cell("hotspot-counter", "n2pl-op", 8, 200_000))
	cmp2, err := Compare(base, head2, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regs := cmp2.Regressions(); len(regs) != 0 {
		t.Fatalf("boundary drop flagged as regression: %+v", regs)
	}
}

// TestCompareSchemaMismatch: a report with an unknown schema version is
// rejected at read time — the gate never diffs apples against oranges.
func TestCompareSchemaMismatch(t *testing.T) {
	raw := `{"schema": "objectbase/load-report/v0", "results": []}`
	if _, err := ReadReport(strings.NewReader(raw)); err == nil {
		t.Fatal("ReadReport accepted an unknown schema")
	} else if !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("unhelpful schema error: %v", err)
	}
}

// TestCompareNoOverlap: comparing reports with disjoint knobs (e.g. a
// quick CI run against a full-scale committed baseline) is an error, not
// a vacuous pass.
func TestCompareNoOverlap(t *testing.T) {
	base := reportWith(cell("bank", "n2pl-op", 1, 100_000))
	headCell := cell("bank", "n2pl-op", 1, 100_000)
	headCell.Clients = 4 // different knob -> different cell key
	head := reportWith(headCell)
	if _, err := Compare(base, head, 0.30); err == nil {
		t.Fatal("Compare passed with zero comparable cells")
	}
}

// TestCompareMismatchedKnobCells: cells that differ only in shard count
// do not match each other.
func TestCompareMismatchedKnobCells(t *testing.T) {
	base := reportWith(cell("bank", "n2pl-op", 1, 100_000), cell("bank", "n2pl-op", 8, 100_000))
	head := reportWith(cell("bank", "n2pl-op", 1, 100_000), cell("bank", "n2pl-op", 8, 10_000))
	cmp, err := Compare(base, head, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0].Key, "shards=8") {
		t.Fatalf("want exactly the shards=8 cell to regress, got %+v", regs)
	}
}

// TestCompareEpochCells: the "epoch" field joins the cell key only when
// set, so (a) a pre-epoch baseline still matches a head report whose
// runs never set the knob, and (b) epoch cells match only cells of the
// same policy — a batched run never gates against the per-txn baseline.
func TestCompareEpochCells(t *testing.T) {
	plain := cell("bank", "n2pl-op", 1, 100_000)
	if strings.Contains(plain.CellKey(), "epoch") {
		t.Fatalf("epoch-less cell key mentions epoch: %s", plain.CellKey())
	}
	epoch := cell("bank", "n2pl-op", 1, 100_000)
	epoch.Epoch = "50us:16"
	serial := cell("bank", "n2pl-op", 1, 100_000)
	serial.Epoch = "serial"
	if epoch.CellKey() == serial.CellKey() || epoch.CellKey() == plain.CellKey() {
		t.Fatalf("epoch policies collapsed into one cell key: %s", epoch.CellKey())
	}
	base := reportWith(cell("bank", "n2pl-op", 1, 100_000))
	headEpoch := cell("bank", "n2pl-op", 1, 10_000)
	headEpoch.Epoch = "50us:16"
	head := reportWith(cell("bank", "n2pl-op", 1, 95_000), headEpoch)
	cmp, err := Compare(base, head, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	// The slow epoch cell is head-only (reported, not gated); the
	// pre-epoch cell pair still matches and passes.
	if len(cmp.Cells) != 1 {
		t.Fatalf("matched %d cells, want 1 (the epoch-less pair)", len(cmp.Cells))
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}
}

// TestCompareGateFailsOnInjectedRegression is the end-to-end
// demonstration the CI gate relies on: take the committed
// BENCH_load.json, halve every throughput, and check the gate trips.
func TestCompareGateFailsOnInjectedRegression(t *testing.T) {
	f, err := os.Open("../../BENCH_load.json")
	if err != nil {
		t.Skipf("no committed BENCH_load.json: %v", err)
	}
	defer f.Close()
	base, err := ReadReport(f)
	if err != nil {
		t.Fatalf("committed BENCH_load.json unreadable: %v", err)
	}
	// Round-trip through JSON so the injected head is a genuinely
	// independent report, then halve throughput.
	buf, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	head, err := ReadReport(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := range head.Results {
		head.Results[i].Throughput /= 2
	}
	cmp, err := Compare(base, head, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions()) != len(cmp.Cells) {
		t.Fatalf("injected 2× regression flagged in %d/%d cells", len(cmp.Regressions()), len(cmp.Cells))
	}
	// And the identity comparison passes.
	same, err := Compare(base, base, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Regressions()) != 0 {
		t.Fatalf("identity comparison regressed: %+v", same.Regressions())
	}
}
