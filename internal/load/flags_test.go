package load

import (
	"strings"
	"testing"
)

func TestFlagConfigValidateOK(t *testing.T) {
	spec, errs := FlagConfig{Shards: "1, 8,1", Verify: "sample", History: "full,off", View: true}.Validate()
	if len(errs) != 0 {
		t.Fatalf("valid combination rejected: %v", errs)
	}
	if len(spec.ShardCounts) != 2 || spec.ShardCounts[0] != 1 || spec.ShardCounts[1] != 8 {
		t.Fatalf("ShardCounts = %v, want deduplicated [1 8]", spec.ShardCounts)
	}
	if len(spec.HistoryModes) != 2 || spec.HistoryModes[0] != "full" || spec.HistoryModes[1] != "off" {
		t.Fatalf("HistoryModes = %v, want [full off]", spec.HistoryModes)
	}
	if spec.Verify != "sample" || !spec.View {
		t.Fatalf("Verify/View not carried through: %+v", spec)
	}
}

func TestFlagConfigValidateOffOnlyNeedsVerifyNone(t *testing.T) {
	if _, errs := (FlagConfig{Shards: "1", Verify: "none", History: "off"}).Validate(); len(errs) != 0 {
		t.Fatalf("-history off -verify none is legal, got %v", errs)
	}
	_, errs := FlagConfig{Shards: "1", Verify: "sample", History: "off"}.Validate()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "records nothing the oracle could check") {
		t.Fatalf("off-only history with an active oracle must conflict, got %v", errs)
	}
}

func TestFlagConfigValidateAutoExclusive(t *testing.T) {
	_, errs := FlagConfig{Shards: "1", Verify: "sample", History: "auto,full"}.Validate()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "auto cannot be combined") {
		t.Fatalf("auto combined with full must conflict, got %v", errs)
	}
}

// TestFlagConfigValidateReportsAllConflicts pins the aggregate contract:
// a flag set wrong along every dimension comes back with every conflict,
// not just the first.
func TestFlagConfigValidateReportsAllConflicts(t *testing.T) {
	_, errs := FlagConfig{Shards: "0,x,8", Verify: "bogus", History: "sometimes,off"}.Validate()
	var got []string
	for _, e := range errs {
		got = append(got, e.Error())
	}
	wants := []string{
		`bad -shards entry "0"`,
		`bad -shards entry "x"`,
		`unknown -verify policy "bogus"`,
		`unknown -history mode "sometimes"`,
		"records nothing the oracle could check",
	}
	if len(errs) != len(wants) {
		t.Fatalf("got %d conflicts %v, want %d", len(errs), got, len(wants))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Fatalf("conflict %d = %q, want it to mention %q", i, got[i], w)
		}
	}
}
