package load

import (
	"math"
	"time"

	"objectbase/internal/obs"
)

// Histogram is an HDR-style log-linear latency histogram: each power of
// two is split into 32 linear sub-buckets, so quantile estimates carry at
// most ~3% relative error at any magnitude, with a fixed footprint and
// O(1) recording. Values are nanoseconds; the exact min, max, sum and
// count are tracked alongside the buckets.
//
// The bucket layout (obs.BucketIndex/obs.BucketUpper) is shared with the
// tracer's concurrent obs.Hist, so harness latencies and phase latencies
// are directly comparable. A Histogram is not synchronised: the driver
// gives each client its own recorder (single-writer, lock-free) and
// merges them after the clients join.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

const histBuckets = obs.HistBuckets

func bucketIndex(v int64) int { return obs.BucketIndex(v) }

// bucketUpper returns the largest value the bucket holds.
func bucketUpper(idx int) int64 { return obs.BucketUpper(idx) }

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Merge folds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min and Max return the exact extremes; Mean the exact average.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Quantile returns the latency at quantile q in [0, 1], to within the
// bucket resolution (the bucket's upper bound, clamped to the exact max).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// Recorder accumulates one client's measurements. It is single-writer:
// only the owning client goroutine touches it until the driver merges
// recorders after all clients have joined, so no synchronisation is
// needed on the hot path.
type Recorder struct {
	Hist   Histogram
	Ops    int64
	Errors int64
	// ByName counts recorded transactions per op name (mix sanity).
	ByName map[string]int64
}

func newRecorder() *Recorder {
	return &Recorder{ByName: make(map[string]int64)}
}

// observe records one completed transaction.
func (rec *Recorder) observe(name string, d time.Duration, err error) {
	rec.Ops++
	if err != nil {
		rec.Errors++
		return
	}
	rec.Hist.Record(d)
	rec.ByName[name]++
}

// mergeRecorders folds per-client recorders into one.
func mergeRecorders(recs []*Recorder) *Recorder {
	out := newRecorder()
	for _, r := range recs {
		if r == nil {
			continue
		}
		out.Hist.Merge(&r.Hist)
		out.Ops += r.Ops
		out.Errors += r.Errors
		for n, c := range r.ByName {
			out.ByName[n] += c
		}
	}
	return out
}
