// Package load is the repo's measurement backbone: a load-generation,
// scenario and metrics subsystem built on top of the public objectbase
// façade.
//
// It has four layers:
//
//   - a scenario registry (Register/Get/Names): named workloads, each a
//     setup function plus a per-client deterministic op stream, with
//     knobs for clients, duration-or-txn-count, key-space size, skew
//     (zipfian theta) and read fraction;
//   - a driver (Run): closed-loop or open-loop (target-rate,
//     token-bucket) clients with per-client seeded RNG for
//     reproducibility, driven through DB.Exec with context-aware
//     shutdown; unverified runs default to history-off recording
//     (Options.History), so the measured hot path carries no recorder;
//   - metrics: lock-free per-client recorders merged into an HDR-style
//     log-linear latency histogram (p50/p90/p95/p99/max), throughput,
//     and abort/retry counters folded in from DB.Stats;
//   - output: a stable JSON report schema (BENCH_load.json, see
//     report.go) plus a human table, wired into cmd/obsim as the `load`
//     subcommand.
//
// Every performance PR reports against this harness, and runs can be
// backed by the serialisability oracle (Options.Verify) so throughput
// numbers are never detached from correctness.
package load

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"objectbase"
	"objectbase/internal/workload"
)

// Knobs are the tunable parameters of a scenario run. A zero field means
// "use the scenario's default, then the global default".
type Knobs struct {
	// Clients is the number of concurrent load-generating goroutines.
	Clients int
	// Txns bounds the run at this many transactions per client
	// (closed-loop count mode). Ignored when Duration is set.
	Txns int
	// Duration bounds the run by wall-clock time instead of a
	// transaction count.
	Duration time.Duration
	// Keys sizes the scenario's key space (accounts, dictionary keys,
	// counters, queue backlog — scenario-dependent).
	Keys int
	// Theta is the zipfian skew of key choice: 0 means "scenario
	// default", values approaching 1 concentrate traffic on a shrinking
	// hot set (0.99 is the YCSB-style hotspot default), and a negative
	// value forces uniform choice even on scenarios whose default is
	// skewed. Key 0 is the hottest.
	Theta float64
	// ReadFraction is the fraction of read-only transactions in
	// scenarios with a tunable mix: 0 means "scenario default", a
	// negative value forces an all-write mix.
	ReadFraction float64
	// Rate switches the driver to open-loop mode: transactions are
	// released by a token bucket at this aggregate rate (txn/s) across
	// all clients. 0 means closed loop.
	Rate float64
	// Burst is the token bucket's capacity in open-loop mode; it
	// defaults to Clients.
	Burst int
	// Seed derives each client's private RNG; identical knobs and seed
	// reproduce identical op sequences.
	Seed int64
	// UseView routes the read-only transactions of the op stream (those
	// the scenario marks Op.ReadOnly — its ReadFraction) through the
	// snapshot fast path DB.View instead of DB.Exec, and opens the DB
	// with objectbase.WithReadOnly so versions are published. The op
	// stream itself is unchanged, so determinism per (knobs, seed,
	// client) is preserved.
	UseView bool
	// Shards partitions the object space across this many independent
	// engine instances (objectbase.WithShards). 0 or 1 means unsharded.
	// The op streams are unchanged — object placement is the directory's
	// business — so determinism per (knobs, seed, client) is preserved;
	// transactions whose declared object set (Op.Objects) spans shards
	// run the cross-shard commit protocol.
	Shards int
	// Epoch selects the epoch group-commit policy for declared-set
	// transactions (objectbase.WithEpochs):
	//
	//   ""/"off"        no epochs (the per-transaction paths, default);
	//   "serial"        WithEpochs(0, 1) — the degenerate policy that
	//                   forces the sharded runtime but keeps the per-txn
	//                   serial fast path, i.e. the honest baseline for
	//                   epoch comparisons;
	//   "WINDOW[:N]"    collect for at most WINDOW (a Go duration, e.g.
	//                   100us) flushing early at N queued transactions;
	//                   N defaults to Clients.
	//
	// The op streams are unchanged, so determinism per (knobs, seed,
	// client) is preserved; only commit grouping differs.
	Epoch string
}

// global fallbacks applied after the scenario's own defaults.
const (
	defaultClients = 4
	defaultTxns    = 100
	defaultKeys    = 64
)

// withDefaults fills zero fields from the scenario defaults d, then from
// the global fallbacks.
func (k Knobs) withDefaults(d Knobs) Knobs {
	if k.Clients == 0 {
		k.Clients = d.Clients
	}
	if k.Txns == 0 && k.Duration == 0 {
		k.Txns, k.Duration = d.Txns, d.Duration
	}
	if k.Keys == 0 {
		k.Keys = d.Keys
	}
	if k.Theta == 0 {
		k.Theta = d.Theta
	}
	if k.ReadFraction == 0 {
		k.ReadFraction = d.ReadFraction
	}
	if k.Clients == 0 {
		k.Clients = defaultClients
	}
	if k.Txns == 0 && k.Duration == 0 {
		k.Txns = defaultTxns
	}
	if k.Keys == 0 {
		k.Keys = defaultKeys
	}
	if k.Burst == 0 {
		k.Burst = k.Clients
	}
	if k.Theta < 0 {
		k.Theta = 0
	}
	if k.ReadFraction < 0 {
		k.ReadFraction = 0
	}
	if k.Shards == 0 {
		k.Shards = 1
	}
	if k.Epoch == "" {
		k.Epoch = d.Epoch
	}
	if k.Epoch == "off" {
		// Normalised away so cell keys (and reports from before the epoch
		// knob) never carry an explicit "off".
		k.Epoch = ""
	}
	return k
}

// validate rejects resolved knobs no run can honour; Run calls it so a
// bad knob is an error, not a panic, on the library path too.
func (k Knobs) validate() error {
	switch {
	case k.Clients < 1:
		return fmt.Errorf("load: Clients = %d, want >= 1", k.Clients)
	case k.Txns < 0:
		return fmt.Errorf("load: Txns = %d, want >= 0", k.Txns)
	case k.Duration < 0:
		return fmt.Errorf("load: Duration = %v, want >= 0", k.Duration)
	case k.Keys < 1:
		return fmt.Errorf("load: Keys = %d, want >= 1", k.Keys)
	case k.Rate < 0:
		return fmt.Errorf("load: Rate = %v, want >= 0", k.Rate)
	case k.ReadFraction > 1:
		return fmt.Errorf("load: ReadFraction = %v, want <= 1", k.ReadFraction)
	case k.Shards < 1:
		return fmt.Errorf("load: Shards = %d, want >= 1", k.Shards)
	}
	if _, _, _, err := k.epochParams(); err != nil {
		return err
	}
	return nil
}

// epochParams resolves the Epoch knob into objectbase.WithEpochs
// arguments; on is false when epochs are disabled. Call on resolved
// knobs ("off" is already normalised to "", and the batch default needs
// the resolved client count).
func (k Knobs) epochParams() (window time.Duration, batch int, on bool, err error) {
	spec := k.Epoch
	if spec == "" || spec == "off" {
		return 0, 0, false, nil
	}
	if spec == "serial" {
		return 0, 1, true, nil
	}
	winPart, batchPart, hasBatch := strings.Cut(spec, ":")
	window, err = time.ParseDuration(winPart)
	if err != nil || window < 0 {
		return 0, 0, false, fmt.Errorf("load: Epoch = %q, want off, serial, or WINDOW[:BATCH] (e.g. 100us:16)", spec)
	}
	batch = k.Clients
	if hasBatch {
		batch, err = strconv.Atoi(batchPart)
		if err != nil || batch < 1 {
			return 0, 0, false, fmt.Errorf("load: Epoch = %q, batch must be a positive integer", spec)
		}
	}
	return window, batch, true, nil
}

// Op is one transaction of a scenario's op stream: the name labelling it
// in the history plus its body. ReadOnly marks transactions whose body
// issues only observer steps; the driver may route them through the
// snapshot fast path (Knobs.UseView). Objects optionally declares the
// objects the body accesses — the stored-procedure discipline — letting
// a sharded run (Knobs.Shards) order its shard acquisition up front
// (DB.ExecTouching) instead of discovering the set optimistically; a
// wrong or missing declaration degrades to discovery, never breaks.
type Op struct {
	Name     string
	Fn       objectbase.MethodFunc
	ReadOnly bool
	Objects  []string
}

// OpFunc produces the i-th transaction of one client's op stream. It is
// called sequentially by a single client goroutine.
type OpFunc func(i int) Op

// Scenario is a registered workload: how to populate a DB and how each
// client generates transactions.
type Scenario struct {
	Name        string
	Description string
	// Defaults are the scenario's preferred knob values; Run fills them
	// into unset caller knobs.
	Defaults Knobs
	// Setup populates the DB (objects and methods) for the resolved
	// knobs.
	Setup func(db *objectbase.DB, k Knobs) error
	// Ops returns client's op stream. r is the client's private seeded
	// source: drawing from it (and only it) keeps the stream
	// deterministic per (knobs, seed, client).
	Ops func(k Knobs, client int, r *rand.Rand) OpFunc
}

var (
	regMu    sync.Mutex
	registry = make(map[string]*Scenario)
)

// Register adds a scenario to the registry; duplicate names panic
// (registration is programmer intent, as with database/sql drivers).
func Register(s *Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if s == nil || s.Name == "" || s.Setup == nil || s.Ops == nil {
		panic("load: Register: incomplete scenario")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("load: Register: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the named scenario.
func Get(name string) (*Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FromSpec adapts a workload.Spec — the experiment substrate of
// internal/workload — into a registry Scenario, so the paper's workloads
// and the load harness share one vocabulary. The adapted scenario
// honours Clients/Txns/Duration/Seed/Rate; mk receives the resolved
// knobs so specs can map Keys and the mix knobs onto their own
// parameters.
func FromSpec(name, description string, mk func(k Knobs) workload.Spec, defaults Knobs) *Scenario {
	return &Scenario{
		Name:        name,
		Description: description,
		Defaults:    defaults,
		Setup: func(db *objectbase.DB, k Knobs) error {
			mk(k).Setup(db.Registrar())
			return nil
		},
		Ops: func(k Knobs, client int, r *rand.Rand) OpFunc {
			spec := mk(k)
			return func(i int) Op {
				if spec.ClientTxn != nil {
					n, fn := spec.ClientTxn(r, client, i)
					return Op{Name: n, Fn: fn}
				}
				// A globally unique-ish sequence number: specs use it
				// only for payload values and parity.
				n, fn := spec.Txn(r, client*1_000_000+i)
				return Op{Name: n, Fn: fn}
			}
		},
	}
}
