package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"objectbase"
)

// SchemaVersion identifies the report format. Consumers (CI artifact
// diffing, dashboards) should reject reports whose schema string they do
// not know; additive fields do not bump the version, renames and
// removals do.
const SchemaVersion = "objectbase/load-report/v1"

// Latency is the merged histogram's summary, in nanoseconds.
type Latency struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P95  int64 `json:"p95"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	Mean int64 `json:"mean"`
}

// Counters mirrors objectbase.Stats with stable JSON names.
type Counters struct {
	Commits        int64 `json:"commits"`
	Aborts         int64 `json:"aborts"`
	Retries        int64 `json:"retries"`
	LockWaits      int64 `json:"lock_waits"`
	Deadlocks      int64 `json:"deadlocks"`
	CertValidated  int64 `json:"cert_validated"`
	CertRejected   int64 `json:"cert_rejected"`
	ViewCommits    int64 `json:"view_commits"`
	ViewFallbacks  int64 `json:"view_fallbacks"`
	SerialRestarts int64 `json:"serial_restarts,omitempty"`
	TwoPCRestarts  int64 `json:"twopc_restarts,omitempty"`
	EpochCommits   int64 `json:"epoch_commits,omitempty"`
	EpochFlushes   int64 `json:"epoch_flushes,omitempty"`
}

// PhaseStat is one phase's latency summary on a traced run, in
// nanoseconds. TotalNS is the phase's wall-clock sum across the run:
// the exclusive phases partition each attempt, so their totals
// reconcile with the latency histogram's sum.
type PhaseStat struct {
	Count   int64 `json:"count"`
	P50     int64 `json:"p50"`
	P99     int64 `json:"p99"`
	TotalNS int64 `json:"total_ns"`
}

// Result is one scenario × scheduler cell of the matrix.
type Result struct {
	Scenario  string `json:"scenario"`
	Scheduler string `json:"scheduler"`

	// Resolved knobs, echoed so a cell is self-describing.
	Clients      int     `json:"clients"`
	Txns         int     `json:"txns_per_client,omitempty"`
	DurationNS   int64   `json:"duration_ns,omitempty"`
	Keys         int     `json:"keys"`
	Theta        float64 `json:"theta"`
	ReadFraction float64 `json:"read_fraction"`
	Seed         int64   `json:"seed"`
	Mode         string  `json:"mode"`            // "closed" or "open"
	History      string  `json:"history"`         // recording mode: "full" or "off"
	View         bool    `json:"view"`            // read-only txns routed through DB.View
	Shards       int     `json:"shards"`          // object-space partitions (1 = unsharded)
	Epoch        string  `json:"epoch,omitempty"` // epoch group-commit policy ("" = off)
	Trace        bool    `json:"trace,omitempty"`
	TargetRate   float64 `json:"target_rate,omitempty"`

	// Measurements.
	Ops        int64            `json:"ops"`
	Errors     int64            `json:"errors"`
	ElapsedNS  int64            `json:"elapsed_ns"`
	Throughput float64          `json:"throughput_txn_per_sec"`
	Latency    Latency          `json:"latency_ns"`
	Counters   Counters         `json:"counters"`
	ByName     map[string]int64 `json:"ops_by_name,omitempty"`

	// Phases carries the per-phase latency summaries of a traced run
	// (Options.Trace); absent otherwise, and optional to every consumer,
	// so reports from before tracing diff cleanly. Spans and TraceEpoch
	// carry the raw flight-recorder contents for trace export — they are
	// deliberately not serialised (a traced cell can hold hundreds of
	// thousands of spans; the JSON report stays small).
	Phases     map[string]PhaseStat    `json:"phases,omitempty"`
	Spans      []objectbase.SpanRecord `json:"-"`
	TraceEpoch time.Time               `json:"-"`

	// Oracle outcome, present only when the run was sampled for
	// verification. Legal is the engine-invariant subset of the check:
	// false means the history itself is corrupt, which no scheduler
	// (including the "none" control) is allowed to produce.
	Verified *bool  `json:"verified,omitempty"`
	Legal    *bool  `json:"legal,omitempty"`
	Verdict  string `json:"verdict,omitempty"`
}

func newResult(sc *Scenario, scheduler string, k Knobs, rec *Recorder, elapsed time.Duration, st objectbase.Stats) *Result {
	mode := "closed"
	if k.Rate > 0 {
		mode = "open"
	}
	res := &Result{
		Scenario:     sc.Name,
		Scheduler:    scheduler,
		Clients:      k.Clients,
		Txns:         k.Txns,
		DurationNS:   int64(k.Duration),
		Keys:         k.Keys,
		Theta:        k.Theta,
		ReadFraction: k.ReadFraction,
		Seed:         k.Seed,
		Mode:         mode,
		View:         k.UseView,
		Shards:       k.Shards,
		Epoch:        k.Epoch,
		TargetRate:   k.Rate,
		Ops:          rec.Ops,
		Errors:       rec.Errors,
		ElapsedNS:    int64(elapsed),
		Latency: Latency{
			P50:  int64(rec.Hist.Quantile(0.50)),
			P90:  int64(rec.Hist.Quantile(0.90)),
			P95:  int64(rec.Hist.Quantile(0.95)),
			P99:  int64(rec.Hist.Quantile(0.99)),
			Max:  int64(rec.Hist.Max()),
			Mean: int64(rec.Hist.Mean()),
		},
		Counters: Counters{
			Commits:        st.Commits,
			Aborts:         st.Aborts,
			Retries:        st.Retries,
			LockWaits:      st.LockWaits,
			Deadlocks:      st.Deadlocks,
			CertValidated:  st.CertValidated,
			CertRejected:   st.CertRejected,
			ViewCommits:    st.ViewCommits,
			ViewFallbacks:  st.ViewFallbacks,
			SerialRestarts: st.SerialRestarts,
			TwoPCRestarts:  st.TwoPCRestarts,
			EpochCommits:   st.EpochCommits,
			EpochFlushes:   st.EpochFlushes,
		},
		ByName: rec.ByName,
	}
	if elapsed > 0 {
		res.Throughput = float64(rec.Ops-rec.Errors) / elapsed.Seconds()
	}
	return res
}

// phaseStats folds a traced DB's registry snapshot into the report's
// phases block, dropping phases that never fired. The "phase_" metric
// prefix is stripped: the report speaks the phase taxonomy's names
// (admit, lock-wait, execute, ...).
func phaseStats(m objectbase.Metrics) map[string]PhaseStat {
	out := make(map[string]PhaseStat, len(m.Phases))
	for name, h := range m.Phases {
		if h.Count == 0 {
			continue
		}
		out[strings.TrimPrefix(name, "phase_")] = PhaseStat{
			Count:   int64(h.Count),
			P50:     int64(h.P50),
			P99:     int64(h.P99),
			TotalNS: int64(h.Sum),
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Report is the machine-readable bench output written as BENCH_load.json.
type Report struct {
	Schema      string   `json:"schema"`
	GeneratedAt string   `json:"generated_at,omitempty"` // RFC3339, filled by the CLI
	Results     []Result `json:"results"`
}

// NewReport returns an empty report carrying the current schema version.
func NewReport() *Report { return &Report{Schema: SchemaVersion} }

// Add upserts a cell, keeping the matrix sorted (scenario, then
// scheduler, then history mode, then view, then shard count) so reports
// diff cleanly across runs. A cell with the same knob key replaces the
// old one — re-running a configuration into an -append'ed report must
// refresh its cell, not stack a duplicate that the compare gate (which
// rejects duplicate keys) would choke on.
func (rp *Report) Add(r *Result) {
	key := r.CellKey()
	for i := range rp.Results {
		if rp.Results[i].CellKey() == key {
			rp.Results[i] = *r
			return
		}
	}
	rp.Results = append(rp.Results, *r)
	sort.SliceStable(rp.Results, func(i, j int) bool {
		if rp.Results[i].Scenario != rp.Results[j].Scenario {
			return rp.Results[i].Scenario < rp.Results[j].Scenario
		}
		if rp.Results[i].Scheduler != rp.Results[j].Scheduler {
			return rp.Results[i].Scheduler < rp.Results[j].Scheduler
		}
		if rp.Results[i].History != rp.Results[j].History {
			return rp.Results[i].History < rp.Results[j].History
		}
		if rp.Results[i].View != rp.Results[j].View {
			return !rp.Results[i].View
		}
		if rp.Results[i].Shards != rp.Results[j].Shards {
			return rp.Results[i].Shards < rp.Results[j].Shards
		}
		return rp.Results[i].Epoch < rp.Results[j].Epoch
	})
}

// WriteJSON writes the report, indented, with a trailing newline.
func (rp *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rp)
}

// ReadReport parses a report and rejects unknown schema versions.
func ReadReport(r io.Reader) (*Report, error) {
	var rp Report
	if err := json.NewDecoder(r).Decode(&rp); err != nil {
		return nil, fmt.Errorf("load: report: %w", err)
	}
	if rp.Schema != SchemaVersion {
		return nil, fmt.Errorf("load: report: unknown schema %q (want %q)", rp.Schema, SchemaVersion)
	}
	return &rp, nil
}

// Table writes the human-readable matrix. The lock-wait, publish and
// epoch-wait columns come from the phases block of traced cells;
// untraced cells show "-".
func (rp *Report) Table(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCENARIO\tSCHED\tMODE\tHIST\tVIEW\tSHARDS\tEPOCH\tCLIENTS\tOPS\tERR\tTXN/S\tP50\tP95\tP99\tMAX\tLKW-P50\tLKW-P99\tPUB-P50\tPUB-P99\tEPW-P50\tEPW-P99\tRETRIES\tVERIFIED")
	for i := range rp.Results {
		r := &rp.Results[i]
		verified := "-"
		if r.Verified != nil {
			if *r.Verified {
				verified = "ok"
			} else {
				verified = "FAIL"
			}
		}
		hist := r.History
		if hist == "" {
			hist = "-"
		}
		view := "-"
		if r.View {
			view = "y"
		}
		shards := r.Shards
		if shards == 0 {
			shards = 1 // pre-sharding reports
		}
		epoch := r.Epoch
		if epoch == "" {
			epoch = "-"
		}
		phase := func(name string, q func(PhaseStat) int64) string {
			ps, ok := r.Phases[name]
			if !ok {
				return "-"
			}
			return fdur(q(ps))
		}
		p50 := func(ps PhaseStat) int64 { return ps.P50 }
		p99 := func(ps PhaseStat) int64 { return ps.P99 }
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%s\t%d\t%d\t%d\t%.0f\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%s\n",
			r.Scenario, r.Scheduler, r.Mode, hist, view, shards, epoch, r.Clients, r.Ops, r.Errors, r.Throughput,
			fdur(r.Latency.P50), fdur(r.Latency.P95), fdur(r.Latency.P99), fdur(r.Latency.Max),
			phase("lock-wait", p50), phase("lock-wait", p99), phase("publish", p50), phase("publish", p99),
			phase("epoch-wait", p50), phase("epoch-wait", p99),
			r.Counters.Retries, verified)
	}
	tw.Flush()
}

func fdur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
