package load

import (
	"fmt"
	"math/rand"

	"objectbase"
	"objectbase/internal/workload"
)

// The seeded catalogue: five contention shapes spanning the object
// library. Each scenario honours the full knob set; Defaults pick the
// regime the scenario is meant to exercise.
func init() {
	Register(bankScenario())
	Register(dictReadHeavyScenario())
	Register(queueScenario())
	Register(hotspotCounterScenario())
	Register(scanReadMostlyScenario())
}

func acctName(i int) string { return fmt.Sprintf("acct%d", i) }

// bankScenario: transfers between Keys accounts with a ReadFraction of
// balance reads; Theta skews which accounts are hot. The classic
// write-write contention shape.
func bankScenario() *Scenario {
	return &Scenario{
		Name:        "bank",
		Description: "account transfers + balance reads over a skewable account set",
		Defaults:    Knobs{Keys: 16, ReadFraction: 0.25},
		Setup: func(db *objectbase.DB, k Knobs) error {
			for i := 0; i < k.Keys; i++ {
				a := acctName(i)
				if err := db.RegisterObject(a, objectbase.Account(), objectbase.State{"balance": int64(1000)}); err != nil {
					return err
				}
				for m, op := range map[string]string{"deposit": "Deposit", "withdraw": "Withdraw", "balance": "Balance"} {
					var fn objectbase.MethodFunc
					if op == "Balance" {
						fn = func(ctx *objectbase.Ctx) (objectbase.Value, error) { return ctx.Do(a, op) }
					} else {
						fn = func(ctx *objectbase.Ctx) (objectbase.Value, error) { return ctx.Do(a, op, ctx.Arg(0)) }
					}
					if err := db.RegisterMethod(a, m, fn); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Ops: func(k Knobs, client int, r *rand.Rand) OpFunc {
			pick := NewKeyChooser(k.Keys, k.Theta)
			// Account names are precomputed: name formatting is driver
			// overhead that would otherwise charge every transaction.
			names := make([]string, k.Keys)
			for i := range names {
				names[i] = acctName(i)
			}
			return func(i int) Op {
				if r.Float64() < k.ReadFraction {
					a := names[pick.Next(r)]
					return Op{Name: "balance", ReadOnly: true, Objects: []string{a}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
						return ctx.Call(a, "balance")
					}}
				}
				from := pick.Next(r)
				to := pick.Next(r)
				if to == from {
					to = (from + 1) % k.Keys
				}
				fromA, toA := names[from], names[to]
				amount := int64(1 + r.Intn(20))
				// The transfer declares its account pair: a sharded run
				// orders its shard acquisition up front instead of paying
				// a discovery restart per cross-shard transfer.
				return Op{Name: "transfer", Objects: []string{fromA, toA}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					ok, err := ctx.Call(fromA, "withdraw", amount)
					if err != nil {
						return nil, err
					}
					if ok != true {
						return false, nil // insufficient funds: commit having moved nothing
					}
					if _, err := ctx.Call(toA, "deposit", amount); err != nil {
						return nil, err
					}
					return true, nil
				}}
			}
		},
	}
}

// setupDict registers a "dict" B-tree dictionary preloaded with half the
// key space (odd keys absent, so lookups miss too) and the four access
// methods the dictionary scenarios share.
func setupDict(db *objectbase.DB, keys int) error {
	sc := objectbase.Dictionary()
	st := sc.NewState()
	for key := 0; key < keys; key += 2 {
		if _, _, err := sc.MustOp("Insert").Apply(st, []objectbase.Value{int64(key), int64(key)}); err != nil {
			return err
		}
	}
	if err := db.RegisterObject("dict", sc, st); err != nil {
		return err
	}
	for m, fn := range map[string]objectbase.MethodFunc{
		"lookup": func(ctx *objectbase.Ctx) (objectbase.Value, error) { return ctx.Do("dict", "Lookup", ctx.Arg(0)) },
		"insert": func(ctx *objectbase.Ctx) (objectbase.Value, error) {
			return ctx.Do("dict", "Insert", ctx.Arg(0), ctx.Arg(1))
		},
		"delete": func(ctx *objectbase.Ctx) (objectbase.Value, error) { return ctx.Do("dict", "Delete", ctx.Arg(0)) },
		"len":    func(ctx *objectbase.Ctx) (objectbase.Value, error) { return ctx.Do("dict", "Len") },
	} {
		if err := db.RegisterMethod("dict", m, fn); err != nil {
			return err
		}
	}
	return nil
}

// dictReadHeavyScenario: the Section 2 modularity shape — a shared
// B-tree dictionary under a read-heavy mix where per-key conflict
// declarations should let readers stream past each other.
func dictReadHeavyScenario() *Scenario {
	return &Scenario{
		Name:        "dict-read-heavy",
		Description: "B-tree dictionary, read-heavy lookup/insert/delete mix over a skewable key space",
		Defaults:    Knobs{Keys: 256, ReadFraction: 0.9},
		Setup:       func(db *objectbase.DB, k Knobs) error { return setupDict(db, k.Keys) },
		Ops: func(k Knobs, client int, r *rand.Rand) OpFunc {
			pick := NewKeyChooser(k.Keys, k.Theta)
			return func(i int) Op {
				key := int64(pick.Next(r))
				if r.Float64() < k.ReadFraction {
					return Op{Name: "lookup", ReadOnly: true, Objects: []string{"dict"}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
						return ctx.Call("dict", "lookup", key)
					}}
				}
				if r.Intn(2) == 0 {
					val := int64(client*1_000_000 + i)
					return Op{Name: "insert", Objects: []string{"dict"}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
						return ctx.Call("dict", "insert", key, val)
					}}
				}
				return Op{Name: "delete", Objects: []string{"dict"}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					return ctx.Call("dict", "delete", key)
				}}
			}
		},
	}
}

// queueScenario: the Section 5.1 producer/consumer shape, adapted from
// the experiment substrate (workload.ProducerConsumer) — even clients
// produce, odd clients consume, against a queue pre-populated with Keys
// backlog items so Enqueue/Dequeue commute at step granularity.
func queueScenario() *Scenario {
	return FromSpec(
		"queue",
		"producer/consumer roles against one FIFO queue with a Keys-item backlog",
		func(k Knobs) workload.Spec { return workload.ProducerConsumer(k.Keys, 200) },
		Knobs{Keys: 256},
	)
}

func ctrName(i int) string { return fmt.Sprintf("ctr%d", i) }

// hotspotCounterScenario: Keys commutative counters under zipfian key
// choice — the skew knob's home scenario. Adds commute, so the hotspot
// stresses scheduler bookkeeping rather than genuine conflicts; the
// ReadFraction of Gets does conflict with Adds.
func hotspotCounterScenario() *Scenario {
	return &Scenario{
		Name:        "hotspot-counter",
		Description: "zipfian bump/read traffic over Keys counters (key 0 hottest)",
		Defaults:    Knobs{Keys: 64, Theta: 0.99, ReadFraction: 0.2},
		Setup: func(db *objectbase.DB, k Knobs) error {
			for i := 0; i < k.Keys; i++ {
				c := ctrName(i)
				if err := db.RegisterObject(c, objectbase.Counter(), nil); err != nil {
					return err
				}
				if err := db.RegisterMethod(c, "bump", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					return ctx.Do(c, "Add", int64(1))
				}); err != nil {
					return err
				}
				if err := db.RegisterMethod(c, "read", func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					return ctx.Do(c, "Get")
				}); err != nil {
					return err
				}
			}
			return nil
		},
		Ops: func(k Knobs, client int, r *rand.Rand) OpFunc {
			pick := NewKeyChooser(k.Keys, k.Theta)
			// The per-key op table is fully precomputed — name, declared
			// object set, and body — so the op stream allocates nothing
			// per transaction (driver overhead would otherwise tax every
			// measured cell).
			bumps := make([]Op, k.Keys)
			reads := make([]Op, k.Keys)
			for i := range bumps {
				c := ctrName(i)
				objs := []string{c}
				bumps[i] = Op{Name: "bump", Objects: objs, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					return ctx.Call(c, "bump")
				}}
				reads[i] = Op{Name: "read", ReadOnly: true, Objects: objs, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					return ctx.Call(c, "read")
				}}
			}
			return func(i int) Op {
				key := pick.Next(r)
				if r.Float64() < k.ReadFraction {
					return reads[key]
				}
				return bumps[key]
			}
		},
	}
}

// scanReadMostlyScenario: read-mostly range scans (a Len plus a run of
// consecutive lookups) over the dictionary, with a trickle of
// insert/delete churn — the mix where whole-object exclusion hurts
// readers most.
func scanReadMostlyScenario() *Scenario {
	const scanWidth = 8
	return &Scenario{
		Name:        "scan-read-mostly",
		Description: "read-mostly dictionary scans (Len + 8 consecutive lookups) with light churn",
		Defaults:    Knobs{Keys: 256, ReadFraction: 0.95},
		Setup:       func(db *objectbase.DB, k Knobs) error { return setupDict(db, k.Keys) },
		Ops: func(k Knobs, client int, r *rand.Rand) OpFunc {
			pick := NewKeyChooser(k.Keys, k.Theta)
			return func(i int) Op {
				start := pick.Next(r)
				if r.Float64() < k.ReadFraction {
					return Op{Name: "scan", ReadOnly: true, Objects: []string{"dict"}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
						if _, err := ctx.Call("dict", "len"); err != nil {
							return nil, err
						}
						hits := int64(0)
						for j := 0; j < scanWidth; j++ {
							v, err := ctx.Call("dict", "lookup", int64((start+j)%k.Keys))
							if err != nil {
								return nil, err
							}
							if v != nil {
								hits++
							}
						}
						return hits, nil
					}}
				}
				key := int64(start)
				if r.Intn(2) == 0 {
					val := int64(client*1_000_000 + i)
					return Op{Name: "insert", Objects: []string{"dict"}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
						return ctx.Call("dict", "insert", key, val)
					}}
				}
				return Op{Name: "delete", Objects: []string{"dict"}, Fn: func(ctx *objectbase.Ctx) (objectbase.Value, error) {
					return ctx.Call("dict", "delete", key)
				}}
			}
		},
	}
}
