//go:build ordercheck

package lock

import (
	"testing"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// mustPanic runs fn and fails unless it panics with an ordercheck
// message.
func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-order acquisition must panic under ordercheck")
		}
	}()
	fn()
}

// TestOrdWitnessPanicsOnInversion injects a tier inversion straight into
// the witness: acquiring the stripe tier (20) while the same goroutine
// holds the waits registry (40) must panic deterministically. (The
// static half of the same injected violation lives in
// internal/analysis/testdata/lockorder.)
func TestOrdWitnessPanicsOnInversion(t *testing.T) {
	OrdAcquire(ordRankWaits, "waits registry")
	defer OrdRelease(ordRankWaits, "waits registry")
	mustPanic(t, func() { OrdAcquire(ordRankStripe, "stripe") })
}

// TestOrdWitnessPanicsOnSameTier pins the "never two locks of one tier"
// half of the invariant.
func TestOrdWitnessPanicsOnSameTier(t *testing.T) {
	OrdAcquire(ordRankOwner, "owner shard")
	defer OrdRelease(ordRankOwner, "owner shard")
	mustPanic(t, func() { OrdAcquire(ordRankOwner, "owner shard") })
}

// TestOrdWitnessAscendingClean: the documented order leaves no residue
// and never panics.
func TestOrdWitnessAscendingClean(t *testing.T) {
	OrdAcquire(ordRankStripe, "stripe")
	OrdAcquire(ordRankOwner, "owner shard")
	OrdRelease(ordRankOwner, "owner shard")
	OrdAcquire(ordRankWaits, "waits registry")
	OrdRelease(ordRankWaits, "waits registry")
	OrdRelease(ordRankStripe, "stripe")
}

// TestOrdWitnessCatchesInvertedManagerUse drives the inversion through
// the real instrumentation: a goroutine that (wrongly) holds the waits
// registry and then enters TryAcquire — whose first ranked acquisition
// is a stripe — must be stopped by the witness at that call site.
func TestOrdWitnessCatchesInvertedManagerUse(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	OrdAcquire(ordRankWaits, "waits registry")
	defer OrdRelease(ordRankWaits, "waits registry")
	mustPanic(t, func() {
		_, _, _ = m.TryAcquire(core.RootID(0), "A", rel, core.StepInfo{Op: "Read", Args: []core.Value{"x"}})
	})
}
