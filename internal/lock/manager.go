// Package lock implements the lock manager behind nested two-phase locking
// (N2PL, Section 5.1 of the paper — Moss's algorithm generalised to
// arbitrary operations).
//
// Locks name operations or steps, at the caller's choice of granularity:
//
//   - OpGranularity locks operations before execution (the paper's first
//     resolution of the lock/return-value circularity): L(a) is
//     incompatible with a held L(a') iff a' conflicts with a;
//   - StepGranularity locks completed steps after a provisional execution
//     (the second resolution, after Weihl): L(t) is incompatible with a
//     held L(t') iff t' conflicts with t — return values participate, so
//     e.g. an Enqueue blocks only the Dequeue that would return its item.
//
// Note the direction: rule 2 reads "e can acquire a lock L only if every
// method execution which owns a lock that conflicts with L is an ancestor
// of e" — the held lock's step conflicting with the requested one. The
// relation need not be symmetric (Definition 3); granting a request whose
// step conflicts with a held step only in the *reverse* order is sound
// because a Definition 9 edge requires the conflict in execution order.
//
// The manager enforces the five rules of Section 5.1:
//
//  1. a step is issued only while its lock is owned — the engine acquires
//     before every local step;
//  2. grant only if every owner of a conflicting lock is an ancestor of
//     the requester;
//  3. no acquisition after release (two-phase) — releases happen only at
//     commit/abort (strict), and acquisitions by finished executions are
//     rejected;
//  4. an execution releases only after its children released theirs — the
//     engine commits bottom-up;
//  5. on commit, released locks are immediately acquired by the parent
//     (lock inheritance); a top-level commit or any abort discards them.
//
// Deadlocks are detected on a waits-for structure interpreted with nested
// semantics: a waiter needs the commits of the owner and of the owner's
// proper ancestors below their least common ancestor (rule 5 moves locks
// upward one level per commit), and an execution's commit needs its whole
// subtree to finish. A request that closes a cycle fails with ErrDeadlock.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"objectbase/internal/core"
)

// ErrDeadlock is returned when granting the request could never happen
// because the requester transitively waits for its own subtree, or when the
// wait budget expires.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrFinished is returned when a finished execution requests a lock
// (rule 3 violation by the caller).
var ErrFinished = errors.New("lock: acquisition after release (rule 3)")

// ErrCancelled is returned when a wait is abandoned because the caller's
// done channel fired (context cancellation) — the request was neither
// granted nor deadlocked.
var ErrCancelled = errors.New("lock: wait cancelled")

// Granularity selects which conflict test guards lock compatibility.
type Granularity int

const (
	// OpGranularity: conservative, locks operations (return values
	// unknown).
	OpGranularity Granularity = iota
	// StepGranularity: exact, locks steps (return values known; requests
	// carry the provisionally computed return value).
	StepGranularity
)

func (g Granularity) String() string {
	if g == StepGranularity {
		return "step"
	}
	return "op"
}

// Sharder is implemented by conflict relations that can scope invocations:
// invocations with different shard keys never conflict, so the manager may
// keep them in separate tables. core.TableConflict implements it.
type Sharder = core.Sharder

// Stats carries the manager's counters for the experiment harness.
type Stats struct {
	Acquires  atomic.Int64 // granted requests
	Waits     atomic.Int64 // requests that blocked at least once
	Deadlocks atomic.Int64 // requests denied by deadlock detection/timeout
	Inherits  atomic.Int64 // locks transferred to a parent on commit
}

// Options configures a Manager.
type Options struct {
	// Granularity selects the conflict test (default OpGranularity).
	Granularity Granularity
	// WaitTimeout bounds one request's total blocking time; expiry reports
	// ErrDeadlock (liveness backstop). Zero means 10s.
	WaitTimeout time.Duration
}

// Manager is the lock manager; one Manager serves one object base.
type Manager struct {
	opts       Options
	mu         sync.Mutex
	shard      map[string]*shard
	waitingFor map[string]waitInfo
	finished   map[string]bool
	// byOwner indexes the shard names where each execution holds locks, so
	// commit/abort touch only those shards instead of scanning the table.
	byOwner map[string]map[string]bool
	stats   *Stats
}

type waitInfo struct {
	exec   core.ExecID
	owners []core.ExecID
}

type shard struct {
	held    []heldLock
	waiters []*Waiter
}

type heldLock struct {
	owner core.ExecID
	step  core.StepInfo // Ret meaningful only at StepGranularity
	rel   core.ConflictRelation
	count int
}

// Waiter represents one registered blocked request. The engine waits on it
// and retries.
type Waiter struct {
	m     *Manager
	key   string
	exec  core.ExecID
	ch    chan struct{}
	start time.Time
}

// New returns a Manager.
func New(opts Options) *Manager {
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 10 * time.Second
	}
	return &Manager{
		opts:       opts,
		shard:      make(map[string]*shard),
		waitingFor: make(map[string]waitInfo),
		finished:   make(map[string]bool),
		byOwner:    make(map[string]map[string]bool),
		stats:      &Stats{},
	}
}

func (m *Manager) indexOwner(owner core.ExecID, shardName string) {
	set := m.byOwner[owner.Key()]
	if set == nil {
		set = make(map[string]bool)
		m.byOwner[owner.Key()] = set
	}
	set[shardName] = true
}

// Stats returns the manager's counters.
func (m *Manager) Stats() *Stats { return m.stats }

// Granularity returns the manager's configured granularity.
func (m *Manager) Granularity() Granularity { return m.opts.Granularity }

func shardName(object string, rel core.ConflictRelation, step core.StepInfo) string {
	return core.ScopeOf(object, rel, step.Invocation())
}

// incompatible reports whether a held lock blocks the request: the held
// entry's operation/step conflicts with the requested one (rule 2's
// direction).
func (m *Manager) incompatible(h *heldLock, rel core.ConflictRelation, req core.StepInfo) bool {
	if m.opts.Granularity == StepGranularity {
		return rel.StepConflicts(h.step, req)
	}
	return rel.OpConflicts(h.step.Invocation(), req.Invocation())
}

// TryAcquire attempts to obtain the lock for req on object for execution e
// without blocking. On success it returns (true, nil, nil). If the request
// must wait, a Waiter is registered and returned — the caller must either
// Wait on it or Cancel it. If waiting can never succeed, ErrDeadlock is
// returned (and nothing is registered).
//
// TryAcquire may be called while holding the target object's latch: the
// manager never takes object latches, so the latch->manager lock order is
// safe. This is what makes the step-granularity protocol of Section 5.1
// atomic: provisional execution, conflict check and lock acquisition all
// happen under the latch.
func (m *Manager) TryAcquire(e core.ExecID, object string, rel core.ConflictRelation, req core.StepInfo) (bool, *Waiter, error) {
	key := shardName(object, rel, req)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.finished[e.Key()] {
		return false, nil, ErrFinished
	}
	sh := m.shard[key]
	if sh == nil {
		sh = &shard{}
		m.shard[key] = sh
	}
	blockers := m.blockers(sh, e, rel, req)
	if len(blockers) == 0 {
		m.grant(sh, e, rel, req)
		m.indexOwner(e, key)
		delete(m.waitingFor, e.Key())
		m.stats.Acquires.Add(1)
		return true, nil, nil
	}
	m.waitingFor[e.Key()] = waitInfo{exec: e, owners: blockers}
	if m.wouldDeadlock(e) {
		delete(m.waitingFor, e.Key())
		m.stats.Deadlocks.Add(1)
		return false, nil, fmt.Errorf("%w: %s requesting %s on %s", ErrDeadlock, e, req.Invocation(), object)
	}
	w := &Waiter{m: m, key: key, exec: e, ch: make(chan struct{}, 1), start: time.Now()}
	sh.waiters = append(sh.waiters, w)
	m.stats.Waits.Add(1)
	return false, w, nil
}

// Wait blocks until the lock situation may have changed or the manager's
// wait budget expires (ErrDeadlock). The caller then retries TryAcquire.
// The waiter stays registered across retries; Cancel it when giving up or
// after a successful TryAcquire (TryAcquire success auto-cancels the
// registered wait entry but not the shard registration — call Cancel).
func (w *Waiter) Wait() error { return w.WaitDone(nil) }

// WaitDone is Wait with an additional abandon signal: when done fires
// before the lock situation changes, the waiter is deregistered and
// ErrCancelled returned. A nil done never fires.
func (w *Waiter) WaitDone(done <-chan struct{}) error {
	remaining := w.m.opts.WaitTimeout - time.Since(w.start)
	if remaining <= 0 {
		w.Cancel()
		w.m.stats.Deadlocks.Add(1)
		return fmt.Errorf("%w: %s timed out", ErrDeadlock, w.exec)
	}
	t := time.NewTimer(remaining)
	defer t.Stop()
	select {
	case <-w.ch:
		return nil
	case <-done:
		w.Cancel()
		return fmt.Errorf("%w: %s", ErrCancelled, w.exec)
	case <-t.C:
		w.Cancel()
		w.m.stats.Deadlocks.Add(1)
		return fmt.Errorf("%w: %s timed out", ErrDeadlock, w.exec)
	}
}

// Cancel deregisters the waiter.
func (w *Waiter) Cancel() {
	w.m.mu.Lock()
	if sh := w.m.shard[w.key]; sh != nil {
		for i, x := range sh.waiters {
			if x == w {
				sh.waiters = append(sh.waiters[:i], sh.waiters[i+1:]...)
				break
			}
		}
	}
	delete(w.m.waitingFor, w.exec.Key())
	w.m.mu.Unlock()
}

// Acquire is the blocking convenience used at OpGranularity (no provisional
// state to revalidate): it loops TryAcquire/Wait until granted or dead.
func (m *Manager) Acquire(e core.ExecID, object string, rel core.ConflictRelation, inv core.OpInvocation) error {
	return m.AcquireDone(e, object, rel, inv, nil)
}

// AcquireDone is Acquire with an abandon signal: when done fires while the
// request is blocked, the wait is abandoned with ErrCancelled. A nil done
// never fires.
func (m *Manager) AcquireDone(e core.ExecID, object string, rel core.ConflictRelation, inv core.OpInvocation, done <-chan struct{}) error {
	req := core.StepInfo{Op: inv.Op, Args: inv.Args}
	for {
		ok, w, err := m.TryAcquire(e, object, rel, req)
		if ok {
			return nil
		}
		if err != nil {
			return err
		}
		err = w.WaitDone(done)
		w.Cancel()
		if err != nil {
			return err
		}
	}
}

// blockers returns the owners of incompatible locks that are not ancestors
// of e, deduplicated.
func (m *Manager) blockers(sh *shard, e core.ExecID, rel core.ConflictRelation, req core.StepInfo) []core.ExecID {
	var out []core.ExecID
	seen := make(map[string]bool)
	for i := range sh.held {
		h := &sh.held[i]
		if h.owner.IsAncestorOf(e) {
			continue // rule 2: ancestors (and e itself) never block
		}
		if !m.incompatible(h, rel, req) {
			continue
		}
		if !seen[h.owner.Key()] {
			seen[h.owner.Key()] = true
			out = append(out, h.owner)
		}
	}
	return out
}

func (m *Manager) grant(sh *shard, e core.ExecID, rel core.ConflictRelation, req core.StepInfo) {
	for i := range sh.held {
		h := &sh.held[i]
		if h.owner.Equal(e) && h.step.Op == req.Op && sameArgs(h.step.Args, req.Args) && core.ValueEqual(h.step.Ret, req.Ret) {
			h.count++
			return
		}
	}
	sh.held = append(sh.held, heldLock{owner: e, step: req, rel: rel, count: 1})
}

func sameArgs(a, b []core.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !core.ValueEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// wouldDeadlock reports whether e transitively waits for the completion of
// its own subtree — see the package comment for the wait-graph semantics.
// Called with m.mu held.
func (m *Manager) wouldDeadlock(e core.ExecID) bool {
	neededCommits := func(w core.ExecID, owner core.ExecID) []core.ExecID {
		var out []core.ExecID
		lca, ok := core.LCA(w, owner)
		stop := 0
		if ok {
			stop = len(lca)
		}
		for l := len(owner); l > stop; l-- {
			out = append(out, owner[:l])
		}
		return out
	}

	visited := make(map[string]bool)
	var stack []core.ExecID
	push := func(x core.ExecID) bool {
		if x.IsAncestorOf(e) {
			return true // x's completion requires e's completion: cycle
		}
		if !visited[x.Key()] {
			visited[x.Key()] = true
			stack = append(stack, x)
		}
		return false
	}

	info, ok := m.waitingFor[e.Key()]
	if !ok {
		return false
	}
	for _, owner := range info.owners {
		for _, x := range neededCommits(e, owner) {
			if push(x) {
				return true
			}
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, wi := range m.waitingFor {
			if !x.IsAncestorOf(wi.exec) {
				continue
			}
			for _, owner := range wi.owners {
				for _, y := range neededCommits(wi.exec, owner) {
					if push(y) {
						return true
					}
				}
			}
		}
	}
	return false
}

// CommitTransfer implements rule 5 for a committing execution: its locks
// are inherited by its parent; a committing top-level execution discards
// them. The execution is marked finished (rule 3).
func (m *Manager) CommitTransfer(e core.ExecID) {
	parent := e.Parent()
	m.mu.Lock()
	m.finished[e.Key()] = true
	delete(m.waitingFor, e.Key())
	for name := range m.byOwner[e.Key()] {
		sh := m.shard[name]
		if sh == nil {
			continue
		}
		changed := false
		out := sh.held[:0]
		for _, h := range sh.held {
			if !h.owner.Equal(e) {
				out = append(out, h)
				continue
			}
			changed = true
			if parent != nil {
				h.owner = parent
				out = append(out, h)
				m.indexOwner(parent, name)
				m.stats.Inherits.Add(1)
			}
		}
		sh.held = out
		if changed {
			wakeAll(sh)
		}
	}
	delete(m.byOwner, e.Key())
	m.mu.Unlock()
}

// ReleaseAll discards every lock owned by e (abort path) and marks it
// finished.
func (m *Manager) ReleaseAll(e core.ExecID) {
	m.mu.Lock()
	m.finished[e.Key()] = true
	delete(m.waitingFor, e.Key())
	for name := range m.byOwner[e.Key()] {
		sh := m.shard[name]
		if sh == nil {
			continue
		}
		changed := false
		out := sh.held[:0]
		for _, h := range sh.held {
			if h.owner.Equal(e) {
				changed = true
				continue
			}
			out = append(out, h)
		}
		sh.held = out
		if changed {
			wakeAll(sh)
		}
	}
	delete(m.byOwner, e.Key())
	m.mu.Unlock()
}

// Forget clears the finished marker (tests).
func (m *Manager) Forget(e core.ExecID) {
	m.mu.Lock()
	delete(m.finished, e.Key())
	m.mu.Unlock()
}

func wakeAll(sh *shard) {
	for _, w := range sh.waiters {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// HeldBy returns the number of locks currently owned by e.
func (m *Manager) HeldBy(e core.ExecID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, sh := range m.shard {
		for _, h := range sh.held {
			if h.owner.Equal(e) {
				n += h.count
			}
		}
	}
	return n
}

// TotalHeld returns the number of held lock entries across all shards.
func (m *Manager) TotalHeld() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, sh := range m.shard {
		n += len(sh.held)
	}
	return n
}
