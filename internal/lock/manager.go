// Package lock implements the lock manager behind nested two-phase locking
// (N2PL, Section 5.1 of the paper — Moss's algorithm generalised to
// arbitrary operations).
//
// Locks name operations or steps, at the caller's choice of granularity:
//
//   - OpGranularity locks operations before execution (the paper's first
//     resolution of the lock/return-value circularity): L(a) is
//     incompatible with a held L(a') iff a' conflicts with a;
//   - StepGranularity locks completed steps after a provisional execution
//     (the second resolution, after Weihl): L(t) is incompatible with a
//     held L(t') iff t' conflicts with t — return values participate, so
//     e.g. an Enqueue blocks only the Dequeue that would return its item.
//
// Note the direction: rule 2 reads "e can acquire a lock L only if every
// method execution which owns a lock that conflicts with L is an ancestor
// of e" — the held lock's step conflicting with the requested one. The
// relation need not be symmetric (Definition 3); granting a request whose
// step conflicts with a held step only in the *reverse* order is sound
// because a Definition 9 edge requires the conflict in execution order.
//
// The manager enforces the five rules of Section 5.1:
//
//  1. a step is issued only while its lock is owned — the engine acquires
//     before every local step;
//  2. grant only if every owner of a conflicting lock is an ancestor of
//     the requester;
//  3. no acquisition after release (two-phase) — releases happen only at
//     commit/abort (strict), and acquisitions by finished executions are
//     rejected;
//  4. an execution releases only after its children released theirs — the
//     engine commits bottom-up;
//  5. on commit, released locks are immediately acquired by the parent
//     (lock inheritance); a top-level commit or any abort discards them.
//
// Deadlocks are detected on a waits-for structure interpreted with nested
// semantics: a waiter needs the commits of the owner and of the owner's
// proper ancestors below their least common ancestor (rule 5 moves locks
// upward one level per commit), and an execution's commit needs its whole
// subtree to finish. A request that closes a cycle fails with ErrDeadlock.
//
// # Striping
//
// The lock table is striped: shard names (conflict scopes) hash onto a
// fixed array of stripes, each with its own mutex and shard map, so
// requests against different scopes proceed without serialising on one
// manager-wide lock. Per-execution bookkeeping — the finished set
// (rule 3) and the owner→shards index that commit/abort consult — is
// striped the same way, hashed by execution key. Only the waits-for
// graph cannot be striped: deadlock detection needs a consistent global
// view, so it lives behind one small dedicated registry lock that is
// touched exclusively on the blocking paths (register a wait, detect a
// cycle, cancel); a per-owner "waited" flag lets grants and finishes
// skip it entirely when the execution never blocked. Lock order is
// stripe → owner shard → waits registry (tiers 20/30/40 of the
// repo-wide rank table — see "Lock and gate order" in the README), and
// never two locks of the same tier at once; the lockorder analyzer in
// internal/analysis checks this statically, and building with
// -tags ordercheck (ordercheck.go) compiles in a runtime witness that
// panics at the call site of any out-of-order acquisition. Grants
// remove the requester's waits-for entry before the lock lands in the
// shard, so a concurrent detector never sees a granted request as
// still waiting.
package lock

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/obs"
)

// ErrDeadlock is returned when granting the request could never happen
// because the requester transitively waits for its own subtree, or when the
// wait budget expires.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrFinished is returned when a finished execution requests a lock
// (rule 3 violation by the caller).
var ErrFinished = errors.New("lock: acquisition after release (rule 3)")

// ErrCancelled is returned when a wait is abandoned because the caller's
// done channel fired (context cancellation) — the request was neither
// granted nor deadlocked.
var ErrCancelled = errors.New("lock: wait cancelled")

// Granularity selects which conflict test guards lock compatibility.
type Granularity int

const (
	// OpGranularity: conservative, locks operations (return values
	// unknown).
	OpGranularity Granularity = iota
	// StepGranularity: exact, locks steps (return values known; requests
	// carry the provisionally computed return value).
	StepGranularity
)

func (g Granularity) String() string {
	if g == StepGranularity {
		return "step"
	}
	return "op"
}

// Sharder is implemented by conflict relations that can scope invocations:
// invocations with different shard keys never conflict, so the manager may
// keep them in separate tables. core.TableConflict implements it.
type Sharder = core.Sharder

// Stats carries the manager's counters for the experiment harness.
type Stats struct {
	Acquires  atomic.Int64 // granted requests
	Waits     atomic.Int64 // requests that blocked at least once
	Deadlocks atomic.Int64 // requests denied by deadlock detection/timeout
	Inherits  atomic.Int64 // locks transferred to a parent on commit
}

// Options configures a Manager.
type Options struct {
	// Granularity selects the conflict test (default OpGranularity).
	Granularity Granularity
	// WaitTimeout bounds one request's total blocking time; expiry reports
	// ErrDeadlock (liveness backstop). Zero means 10s.
	WaitTimeout time.Duration
}

// numStripes is the size of the stripe array. Shard names hash onto it;
// it is a power of two so the hash folds with a mask.
const numStripes = 64

// Manager is the lock manager; one Manager serves one object base.
type Manager struct {
	opts    Options
	stripes [numStripes]stripe
	owners  [numStripes]ownerShard
	waits   waitRegistry
	stats   *Stats
	// tr, when non-nil, records lock-wait spans (with object scope and
	// stripe rank) and deadlock-denial events into the flight recorder.
	tr *obs.Tracer
}

// stripe is one slice of the lock table: the shards whose names hash
// here, behind their own mutex.
type stripe struct {
	mu     sync.Mutex
	shards map[string]*shard
}

// ownerShard is one slice of the per-execution bookkeeping, hashed by
// execution key: the finished markers (rule 3), the owner→shards index
// that lets commit/abort touch only the shards an execution actually
// locked, and the waited flags that let the common no-contention paths
// skip the global waits registry.
type ownerShard struct {
	mu       sync.Mutex
	finished map[string]bool
	byOwner  map[string]map[string]bool
	waited   map[string]bool
}

// waitRegistry is the manager's only global state: the waits-for graph
// feeding deadlock detection, which needs a consistent view across all
// stripes. Its mutex is deliberately small-scope — blocking paths only —
// and is the innermost in the stripe → owner → waits order.
type waitRegistry struct {
	mu         sync.Mutex
	waitingFor map[string]waitInfo
}

type waitInfo struct {
	exec   core.ExecID
	owners []core.ExecID
}

type shard struct {
	held    []heldLock
	waiters []*Waiter
}

type heldLock struct {
	owner core.ExecID
	step  core.StepInfo // Ret meaningful only at StepGranularity
	rel   core.ConflictRelation
	count int
}

// Waiter represents one registered blocked request. The engine waits on it
// and retries.
type Waiter struct {
	m     *Manager
	key   string
	label string // tracing label: scope plus stripe rank ("" when off)
	exec  core.ExecID
	ch    chan struct{}
	start time.Time
}

// New returns a Manager.
func New(opts Options) *Manager {
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 10 * time.Second
	}
	m := &Manager{opts: opts, stats: &Stats{}}
	for i := range m.stripes {
		m.stripes[i].shards = make(map[string]*shard)
		m.owners[i].finished = make(map[string]bool)
		m.owners[i].byOwner = make(map[string]map[string]bool)
		m.owners[i].waited = make(map[string]bool)
	}
	m.waits.waitingFor = make(map[string]waitInfo)
	return m
}

// grantScanHook, when non-nil, runs between the blocker scan and the
// grant's ownership re-check — the window in which a concurrent finish
// (commit/abort) can interleave. Tests use it to pin the grant-vs-finish
// race deterministically; it is nil in production.
var grantScanHook func()

// fnv32 is FNV-1a, the stripe hash.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// stripeFor maps a shard name onto its lock-table stripe.
func (m *Manager) stripeFor(shardName string) *stripe {
	return &m.stripes[fnv32(shardName)&(numStripes-1)]
}

// ownerFor maps an execution key onto its bookkeeping shard.
func (m *Manager) ownerFor(execKey string) *ownerShard {
	return &m.owners[fnv32(execKey)&(numStripes-1)]
}

// indexOwnerLocked records that owner holds a lock in shardName; caller
// holds the owner shard's mu.
func (o *ownerShard) indexOwnerLocked(owner core.ExecID, shardName string) {
	set := o.byOwner[owner.Key()]
	if set == nil {
		set = make(map[string]bool)
		o.byOwner[owner.Key()] = set
	}
	set[shardName] = true
}

// Stats returns the manager's counters.
func (m *Manager) Stats() *Stats { return m.stats }

// SetTracer wires the flight recorder into the manager's blocking
// paths. Call before traffic starts (it is not synchronised against
// in-flight requests). Nil turns tracing back off.
func (m *Manager) SetTracer(tr *obs.Tracer) { m.tr = tr }

// traceLabel names a lock scope for the flight recorder: the shard
// (conflict scope) name plus the stripe it hashes to — the lock-order
// rank context of the wait. Only built when tracing is on.
func traceLabel(key string) string {
	return key + " [stripe " + strconv.Itoa(int(fnv32(key)&(numStripes-1))) + "]"
}

// traceRing maps an execution to its flight-recorder ring: the
// top-level transaction number, matching the engine's choice so a
// transaction's lock waits land on its timeline.
func traceRing(e core.ExecID) uint64 { return uint64(uint32(e[0])) }

// WaitsForDOT snapshots the waits-for graph as a Graphviz DOT digraph:
// one edge per (waiter, blocking owner) pair, nodes named by execution
// key. The snapshot is taken under the registry lock, so it is a
// consistent picture of who waits for whom — the live deadlock
// diagnosis surface behind the debug server's /waitsfor endpoint.
func (m *Manager) WaitsForDOT() string {
	type edge struct{ from, to string }
	var edges []edge
	ordAcquire(ordRankWaits, "waits registry")
	m.waits.mu.Lock()
	for _, wi := range m.waits.waitingFor {
		from := wi.exec.Key()
		for _, o := range wi.owners {
			edges = append(edges, edge{from: from, to: o.Key()})
		}
	}
	ordRelease(ordRankWaits, "waits registry")
	m.waits.mu.Unlock()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	var b strings.Builder
	b.WriteString("digraph waitsfor {\n")
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", e.from, e.to)
	}
	b.WriteString("}\n")
	return b.String()
}

// Granularity returns the manager's configured granularity.
func (m *Manager) Granularity() Granularity { return m.opts.Granularity }

func shardName(object string, rel core.ConflictRelation, step core.StepInfo) string {
	return core.ScopeOf(object, rel, step.Invocation())
}

// incompatible reports whether a held lock blocks the request: the held
// entry's operation/step conflicts with the requested one (rule 2's
// direction).
func (m *Manager) incompatible(h *heldLock, rel core.ConflictRelation, req core.StepInfo) bool {
	if m.opts.Granularity == StepGranularity {
		return rel.StepConflicts(h.step, req)
	}
	return rel.OpConflicts(h.step.Invocation(), req.Invocation())
}

// TryAcquire attempts to obtain the lock for req on object for execution e
// without blocking. On success it returns (true, nil, nil). If the request
// must wait, a Waiter is registered and returned — the caller must either
// Wait on it or Cancel it. If waiting can never succeed, ErrDeadlock is
// returned (and nothing is registered).
//
// TryAcquire may be called while holding the target object's latch: the
// manager never takes object latches, so the latch->manager lock order is
// safe. This is what makes the step-granularity protocol of Section 5.1
// atomic: provisional execution, conflict check and lock acquisition all
// happen under the latch.
func (m *Manager) TryAcquire(e core.ExecID, object string, rel core.ConflictRelation, req core.StepInfo) (bool, *Waiter, error) {
	key := shardName(object, rel, req)
	ek := e.Key()
	st := m.stripeFor(key)
	os := m.ownerFor(ek)
	ordAcquire(ordRankStripe, "stripe")
	st.mu.Lock()
	ordAcquire(ordRankOwner, "owner shard")
	os.mu.Lock()
	if os.finished[ek] {
		ordRelease(ordRankOwner, "owner shard")
		os.mu.Unlock()
		ordRelease(ordRankStripe, "stripe")
		st.mu.Unlock()
		return false, nil, ErrFinished
	}
	ordRelease(ordRankOwner, "owner shard")
	os.mu.Unlock()
	sh := st.shards[key]
	if sh == nil {
		sh = &shard{}
		st.shards[key] = sh
	}
	blockers := m.blockers(sh, e, rel, req)
	if len(blockers) == 0 {
		if grantScanHook != nil {
			grantScanHook()
		}
		// Clear any stale waits-for entry and index ownership before the
		// grant lands in the shard: a concurrent detector (waits lock
		// only) must never see a granted request as still waiting. The
		// waited flag makes the registry visit conditional — an execution
		// that never blocked never touches the global lock here.
		ordAcquire(ordRankOwner, "owner shard")
		os.mu.Lock()
		if os.finished[ek] {
			// The execution finished (commit/abort — e.g. its WaitTimeout
			// fired on another lane) between the rule-3 check above and
			// this grant. Granting now would leak the lock: finish()
			// already consumed the owner index, so no release would ever
			// visit this shard. Refuse instead; if finish() runs after
			// this block, it collects the ownership indexed here and its
			// sweep (serialised behind the stripe lock we hold) releases
			// the grant.
			ordRelease(ordRankOwner, "owner shard")
			os.mu.Unlock()
			ordRelease(ordRankStripe, "stripe")
			st.mu.Unlock()
			return false, nil, ErrFinished
		}
		if os.waited[ek] {
			delete(os.waited, ek)
			ordAcquire(ordRankWaits, "waits registry")
			m.waits.mu.Lock()
			delete(m.waits.waitingFor, ek)
			ordRelease(ordRankWaits, "waits registry")
			m.waits.mu.Unlock()
		}
		os.indexOwnerLocked(e, key)
		ordRelease(ordRankOwner, "owner shard")
		os.mu.Unlock()
		m.grant(sh, e, rel, req)
		ordRelease(ordRankStripe, "stripe")
		st.mu.Unlock()
		m.stats.Acquires.Add(1)
		return true, nil, nil
	}
	ordAcquire(ordRankOwner, "owner shard")
	os.mu.Lock()
	os.waited[ek] = true
	ordRelease(ordRankOwner, "owner shard")
	os.mu.Unlock()
	ordAcquire(ordRankWaits, "waits registry")
	m.waits.mu.Lock()
	m.waits.waitingFor[ek] = waitInfo{exec: e, owners: blockers}
	if m.wouldDeadlockLocked(e) {
		delete(m.waits.waitingFor, ek)
		ordRelease(ordRankWaits, "waits registry")
		m.waits.mu.Unlock()
		ordRelease(ordRankStripe, "stripe")
		st.mu.Unlock()
		m.stats.Deadlocks.Add(1)
		if m.tr != nil {
			m.tr.Event(obs.PhaseLockWait, traceRing(e), e.Key(), traceLabel(key), "deadlock")
		}
		return false, nil, fmt.Errorf("%w: %s requesting %s on %s", ErrDeadlock, e, req.Invocation(), object)
	}
	ordRelease(ordRankWaits, "waits registry")
	m.waits.mu.Unlock()
	// The waiter is registered under the stripe lock, so a release on
	// this shard after the blockers were computed cannot miss it.
	w := &Waiter{m: m, key: key, exec: e, ch: make(chan struct{}, 1), start: time.Now()}
	if m.tr != nil {
		w.label = traceLabel(key)
	}
	sh.waiters = append(sh.waiters, w)
	ordRelease(ordRankStripe, "stripe")
	st.mu.Unlock()
	m.stats.Waits.Add(1)
	return false, w, nil
}

// Wait blocks until the lock situation may have changed or the manager's
// wait budget expires (ErrDeadlock). The caller then retries TryAcquire.
// The waiter stays registered across retries; Cancel it when giving up or
// after a successful TryAcquire (TryAcquire success auto-cancels the
// registered wait entry but not the shard registration — call Cancel).
func (w *Waiter) Wait() error { return w.WaitDone(nil) }

// WaitDone is Wait with an additional abandon signal: when done fires
// before the lock situation changes, the waiter is deregistered and
// ErrCancelled returned. A nil done never fires.
func (w *Waiter) WaitDone(done <-chan struct{}) error {
	var sp obs.Span
	if tr := w.m.tr; tr != nil {
		// One span per blocked stretch: from wait start to wake, timeout,
		// or cancellation.
		sp = tr.StartSpan(obs.PhaseLockWait, traceRing(w.exec), w.exec.Key(), w.label)
	}
	remaining := w.m.opts.WaitTimeout - time.Since(w.start)
	if remaining <= 0 {
		// Same rule as the timer branch below: a wake that already
		// arrived proves the lock situation changed — prefer the retry
		// over a spurious deadlock verdict.
		select {
		case <-w.ch:
			sp.EndWith("wake")
			return nil
		default:
		}
		w.Cancel()
		w.m.stats.Deadlocks.Add(1)
		sp.EndWith("timeout")
		return fmt.Errorf("%w: %s timed out", ErrDeadlock, w.exec)
	}
	t := time.NewTimer(remaining)
	defer t.Stop()
	select {
	case <-w.ch:
		sp.EndWith("wake")
		return nil
	case <-done:
		w.Cancel()
		sp.EndWith("cancel")
		return fmt.Errorf("%w: %s", ErrCancelled, w.exec)
	case <-t.C:
		// A wake-up racing the timeout means the lock situation changed
		// at the deadline: prefer the retry over a spurious deadlock
		// verdict (the caller's next TryAcquire decides for real).
		select {
		case <-w.ch:
			sp.EndWith("wake")
			return nil
		default:
		}
		w.Cancel()
		w.m.stats.Deadlocks.Add(1)
		sp.EndWith("timeout")
		return fmt.Errorf("%w: %s timed out", ErrDeadlock, w.exec)
	}
}

// Cancel deregisters the waiter.
func (w *Waiter) Cancel() {
	st := w.m.stripeFor(w.key)
	ordAcquire(ordRankStripe, "stripe")
	st.mu.Lock()
	if sh := st.shards[w.key]; sh != nil {
		for i, x := range sh.waiters {
			if x == w {
				sh.waiters = append(sh.waiters[:i], sh.waiters[i+1:]...)
				break
			}
		}
	}
	ordRelease(ordRankStripe, "stripe")
	st.mu.Unlock()
	ordAcquire(ordRankWaits, "waits registry")
	w.m.waits.mu.Lock()
	delete(w.m.waits.waitingFor, w.exec.Key())
	ordRelease(ordRankWaits, "waits registry")
	w.m.waits.mu.Unlock()
}

// Acquire is the blocking convenience used at OpGranularity (no provisional
// state to revalidate): it loops TryAcquire/Wait until granted or dead.
func (m *Manager) Acquire(e core.ExecID, object string, rel core.ConflictRelation, inv core.OpInvocation) error {
	return m.AcquireDone(e, object, rel, inv, nil)
}

// AcquireDone is Acquire with an abandon signal: when done fires while the
// request is blocked, the wait is abandoned with ErrCancelled. A nil done
// never fires.
func (m *Manager) AcquireDone(e core.ExecID, object string, rel core.ConflictRelation, inv core.OpInvocation, done <-chan struct{}) error {
	req := core.StepInfo{Op: inv.Op, Args: inv.Args}
	for {
		ok, w, err := m.TryAcquire(e, object, rel, req)
		if ok {
			return nil
		}
		if err != nil {
			return err
		}
		err = w.WaitDone(done)
		w.Cancel()
		if err != nil {
			return err
		}
	}
}

// blockers returns the owners of incompatible locks that are not ancestors
// of e, deduplicated.
func (m *Manager) blockers(sh *shard, e core.ExecID, rel core.ConflictRelation, req core.StepInfo) []core.ExecID {
	var out []core.ExecID
	seen := make(map[string]bool)
	for i := range sh.held {
		h := &sh.held[i]
		if h.owner.IsAncestorOf(e) {
			continue // rule 2: ancestors (and e itself) never block
		}
		if !m.incompatible(h, rel, req) {
			continue
		}
		if !seen[h.owner.Key()] {
			seen[h.owner.Key()] = true
			out = append(out, h.owner)
		}
	}
	return out
}

func (m *Manager) grant(sh *shard, e core.ExecID, rel core.ConflictRelation, req core.StepInfo) {
	for i := range sh.held {
		h := &sh.held[i]
		if h.owner.Equal(e) && h.step.Op == req.Op && sameArgs(h.step.Args, req.Args) && core.ValueEqual(h.step.Ret, req.Ret) {
			h.count++
			return
		}
	}
	sh.held = append(sh.held, heldLock{owner: e, step: req, rel: rel, count: 1})
}

func sameArgs(a, b []core.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !core.ValueEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// wouldDeadlockLocked reports whether e transitively waits for the
// completion of its own subtree — see the package comment for the
// wait-graph semantics. Called with waits.mu held: the waits-for graph
// is global, which is exactly why it lives behind the one registry lock
// rather than the stripes.
func (m *Manager) wouldDeadlockLocked(e core.ExecID) bool {
	neededCommits := func(w core.ExecID, owner core.ExecID) []core.ExecID {
		var out []core.ExecID
		lca, ok := core.LCA(w, owner)
		stop := 0
		if ok {
			stop = len(lca)
		}
		for l := len(owner); l > stop; l-- {
			out = append(out, owner[:l])
		}
		return out
	}

	visited := make(map[string]bool)
	var stack []core.ExecID
	push := func(x core.ExecID) bool {
		if x.IsAncestorOf(e) {
			return true // x's completion requires e's completion: cycle
		}
		if !visited[x.Key()] {
			visited[x.Key()] = true
			stack = append(stack, x)
		}
		return false
	}

	info, ok := m.waits.waitingFor[e.Key()]
	if !ok {
		return false
	}
	for _, owner := range info.owners {
		for _, x := range neededCommits(e, owner) {
			if push(x) {
				return true
			}
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, wi := range m.waits.waitingFor {
			if !x.IsAncestorOf(wi.exec) {
				continue
			}
			for _, owner := range wi.owners {
				for _, y := range neededCommits(wi.exec, owner) {
					if push(y) {
						return true
					}
				}
			}
		}
	}
	return false
}

// finish marks e finished (rule 3), drops its waits-for entry, and
// returns the shards it owned, consuming the owner index.
func (m *Manager) finish(e core.ExecID) map[string]bool {
	ek := e.Key()
	os := m.ownerFor(ek)
	ordAcquire(ordRankOwner, "owner shard")
	os.mu.Lock()
	os.finished[ek] = true
	names := os.byOwner[ek]
	delete(os.byOwner, ek)
	waited := os.waited[ek]
	delete(os.waited, ek)
	ordRelease(ordRankOwner, "owner shard")
	os.mu.Unlock()
	if waited {
		ordAcquire(ordRankWaits, "waits registry")
		m.waits.mu.Lock()
		delete(m.waits.waitingFor, ek)
		ordRelease(ordRankWaits, "waits registry")
		m.waits.mu.Unlock()
	}
	return names
}

// CommitTransfer implements rule 5 for a committing execution: its locks
// are inherited by its parent; a committing top-level execution discards
// them. The execution is marked finished (rule 3). Only the stripes
// where e actually held locks are visited; each is transferred
// independently, so a commit never serialises the whole table.
func (m *Manager) CommitTransfer(e core.ExecID) {
	parent := e.Parent()
	for name := range m.finish(e) {
		st := m.stripeFor(name)
		ordAcquire(ordRankStripe, "stripe")
		st.mu.Lock()
		sh := st.shards[name]
		if sh == nil {
			ordRelease(ordRankStripe, "stripe")
			st.mu.Unlock()
			continue
		}
		changed := false
		inherited := false
		out := sh.held[:0]
		for _, h := range sh.held {
			if !h.owner.Equal(e) {
				out = append(out, h)
				continue
			}
			changed = true
			if parent != nil {
				h.owner = parent
				out = append(out, h)
				inherited = true
				m.stats.Inherits.Add(1)
			}
		}
		sh.held = out
		if inherited {
			po := m.ownerFor(parent.Key())
			ordAcquire(ordRankOwner, "owner shard")
			po.mu.Lock()
			po.indexOwnerLocked(parent, name)
			ordRelease(ordRankOwner, "owner shard")
			po.mu.Unlock()
		}
		if changed {
			wakeAll(sh)
		}
		ordRelease(ordRankStripe, "stripe")
		st.mu.Unlock()
	}
}

// ReleaseAll discards every lock owned by e (abort path) and marks it
// finished.
func (m *Manager) ReleaseAll(e core.ExecID) {
	for name := range m.finish(e) {
		st := m.stripeFor(name)
		ordAcquire(ordRankStripe, "stripe")
		st.mu.Lock()
		sh := st.shards[name]
		if sh == nil {
			ordRelease(ordRankStripe, "stripe")
			st.mu.Unlock()
			continue
		}
		changed := false
		out := sh.held[:0]
		for _, h := range sh.held {
			if h.owner.Equal(e) {
				changed = true
				continue
			}
			out = append(out, h)
		}
		sh.held = out
		if changed {
			wakeAll(sh)
		}
		ordRelease(ordRankStripe, "stripe")
		st.mu.Unlock()
	}
}

// Forget clears the finished marker (tests).
func (m *Manager) Forget(e core.ExecID) {
	os := m.ownerFor(e.Key())
	ordAcquire(ordRankOwner, "owner shard")
	os.mu.Lock()
	delete(os.finished, e.Key())
	ordRelease(ordRankOwner, "owner shard")
	os.mu.Unlock()
}

func wakeAll(sh *shard) {
	for _, w := range sh.waiters {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// HeldBy returns the number of locks currently owned by e. The stripes
// are visited one at a time, so the count is exact only on a quiescent
// manager (tests, stats).
func (m *Manager) HeldBy(e core.ExecID) int {
	n := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		ordAcquire(ordRankStripe, "stripe")
		st.mu.Lock()
		for _, sh := range st.shards {
			for _, h := range sh.held {
				if h.owner.Equal(e) {
					n += h.count
				}
			}
		}
		ordRelease(ordRankStripe, "stripe")
		st.mu.Unlock()
	}
	return n
}

// TotalHeld returns the number of held lock entries across all shards,
// stripe by stripe (exact only on a quiescent manager).
func (m *Manager) TotalHeld() int {
	n := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		ordAcquire(ordRankStripe, "stripe")
		st.mu.Lock()
		for _, sh := range st.shards {
			n += len(sh.held)
		}
		ordRelease(ordRankStripe, "stripe")
		st.mu.Unlock()
	}
	return n
}
