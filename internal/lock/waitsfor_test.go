package lock

import (
	"errors"
	"strings"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/objects"
	"objectbase/internal/obs"
)

// TestWaitsForDOTFlatRing drives the TestDeadlockDetectedFlat scenario —
// t0 holds variable a, t1 holds variable b, t0 blocks requesting b, t1's
// request for a would close the ring — and checks the live introspection
// surfaces at each stage: the waits-for DOT snapshot shows the blocked
// edge while it exists and drains after the wake, and the flight
// recorder carries both the blocked stretch (outcome "wake") and the
// deadlock denial instant.
func TestWaitsForDOTFlatRing(t *testing.T) {
	m := New(Options{WaitTimeout: 5 * time.Second})
	tr := obs.NewTracer()
	m.SetTracer(tr)
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, write("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, "A", rel, write("b", 1)); err != nil {
		t.Fatal(err)
	}
	if dot := m.WaitsForDOT(); strings.Contains(dot, "->") {
		t.Fatalf("nobody waits yet, got %q", dot)
	}
	ch0 := acquireAsync(m, t0, "A", rel, write("b", 2))
	mustBlocked(t, ch0)
	if dot := m.WaitsForDOT(); !strings.Contains(dot, `"0" -> "1";`) {
		t.Fatalf("waits-for graph missing the blocked edge:\n%s", dot)
	}
	// Closing the ring is refused by the detector (single manager: the
	// cycle would pass through the requester's own subtree).
	if err := m.Acquire(t1, "A", rel, write("a", 2)); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("closing the ring: want ErrDeadlock, got %v", err)
	}
	// Releasing t1's lock on b wakes t0; the graph drains.
	m.CommitTransfer(t1)
	mustGranted(t, ch0)
	if dot := m.WaitsForDOT(); strings.Contains(dot, "->") {
		t.Fatalf("graph should drain after the wake, got %q", dot)
	}
	var wake, deadlock bool
	for _, s := range tr.Snapshot() {
		if s.Phase != obs.PhaseLockWait {
			continue
		}
		if !s.Instant && s.Outcome == "wake" && s.Exec == "0" && strings.Contains(s.Object, "[stripe ") {
			wake = true
		}
		if s.Instant && s.Outcome == "deadlock" && s.Exec == "1" {
			deadlock = true
		}
	}
	if !wake {
		t.Error("no lock-wait span with outcome \"wake\" for t0")
	}
	if !deadlock {
		t.Error("no deadlock denial instant for t1")
	}
}

// TestWaitsForDOTCrossManagerRing builds the same flat ring split across
// two lock managers, the way a two-shard space splits it: each manager
// sees a single waits-for edge, so neither detector can refuse the
// closing request, and the ring persists until the wait budget expires.
// Only the merged graph — what the debug server's /waitsfor endpoint
// serves — shows the cycle.
func TestWaitsForDOTCrossManagerRing(t *testing.T) {
	mA := New(Options{WaitTimeout: 5 * time.Second})
	mB := New(Options{WaitTimeout: 5 * time.Second})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := mA.Acquire(t0, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := mB.Acquire(t1, "B", rel, write("y", 1)); err != nil {
		t.Fatal(err)
	}
	ch0 := acquireAsync(mB, t0, "B", rel, write("y", 2))
	mustBlocked(t, ch0)
	ch1 := acquireAsync(mA, t1, "A", rel, write("x", 2))
	mustBlocked(t, ch1)
	dot := obs.MergeDOT(mA.WaitsForDOT(), mB.WaitsForDOT())
	for _, edge := range []string{`"0" -> "1";`, `"1" -> "0";`} {
		if !strings.Contains(dot, edge) {
			t.Fatalf("merged waits-for graph missing %s:\n%s", edge, dot)
		}
	}
	// Break the ring: committing t0 on shard A releases x, granting t1;
	// then t1's commit on shard B releases y, granting t0.
	mA.CommitTransfer(t0)
	mustGranted(t, ch1)
	mB.CommitTransfer(t1)
	mustGranted(t, ch0)
}
