package lock

import (
	"errors"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

func read(v string) core.OpInvocation {
	return core.OpInvocation{Op: "Read", Args: []core.Value{v}}
}
func write(v string, x int64) core.OpInvocation {
	return core.OpInvocation{Op: "Write", Args: []core.Value{v, x}}
}

// acquireAsync runs Acquire in a goroutine and returns a channel carrying
// its result.
func acquireAsync(m *Manager, e core.ExecID, obj string, rel core.ConflictRelation, inv core.OpInvocation) chan error {
	ch := make(chan error, 1)
	go func() { ch <- m.Acquire(e, obj, rel, inv) }()
	return ch
}

func mustBlocked(t *testing.T, ch chan error) {
	t.Helper()
	select {
	case err := <-ch:
		t.Fatalf("request should block, returned %v", err)
	case <-time.After(30 * time.Millisecond):
	}
}

func mustGranted(t *testing.T, ch chan error) {
	t.Helper()
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("request should be granted, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("request did not complete")
	}
}

func TestSharedReadsGranted(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, read("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, "A", rel, read("x")); err != nil {
		t.Fatalf("concurrent reads must not block: %v", err)
	}
}

func TestWriteBlocksConflicting(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	ch := acquireAsync(m, t1, "A", rel, read("x"))
	mustBlocked(t, ch)
	// Different variable proceeds (per-variable sharding through the RW
	// table's key function).
	if err := m.Acquire(t1, "A", rel, write("y", 1)); err != nil {
		t.Fatalf("different variable must not block: %v", err)
	}
	// Different object proceeds.
	if err := m.Acquire(t1, "B", rel, write("x", 1)); err != nil {
		t.Fatalf("different object must not block: %v", err)
	}
	m.CommitTransfer(t0) // top-level commit discards
	mustGranted(t, ch)
}

func TestRule2AncestorsDoNotBlock(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	top := core.RootID(0)
	child := top.Child(0)
	if err := m.Acquire(top, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	// The child may acquire a conflicting lock: the only conflicting owner
	// is its ancestor.
	if err := m.Acquire(child, "A", rel, write("x", 2)); err != nil {
		t.Fatalf("rule 2: ancestor's lock must not block descendant: %v", err)
	}
	// Re-entrant acquisition by the same execution.
	if err := m.Acquire(child, "A", rel, write("x", 2)); err != nil {
		t.Fatalf("re-entrant acquire: %v", err)
	}
	if n := m.HeldBy(child); n != 2 {
		t.Fatalf("HeldBy(child) = %d, want 2 (counted re-entrant)", n)
	}
}

func TestRule5Inheritance(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	t0 := core.RootID(0)
	c := t0.Child(0)
	t1 := core.RootID(1)

	if err := m.Acquire(c, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	// Sibling transaction blocked by the child's lock.
	ch := acquireAsync(m, t1, "A", rel, write("x", 9))
	mustBlocked(t, ch)

	// Child commits: the lock passes to t0 — t1 must STILL be blocked.
	m.CommitTransfer(c)
	if n := m.HeldBy(t0); n != 1 {
		t.Fatalf("parent should have inherited 1 lock, has %d", n)
	}
	mustBlocked(t, ch)

	// Top-level commit releases for good.
	m.CommitTransfer(t0)
	mustGranted(t, ch)
	if got := m.Stats().Inherits.Load(); got != 1 {
		t.Fatalf("Inherits = %d, want 1", got)
	}
}

func TestAbortReleases(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	ch := acquireAsync(m, t1, "A", rel, write("x", 2))
	mustBlocked(t, ch)
	m.ReleaseAll(t0)
	mustGranted(t, ch)
	if n := m.HeldBy(t0); n != 0 {
		t.Fatalf("aborted owner still holds %d locks", n)
	}
}

func TestRule3NoAcquireAfterRelease(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	t0 := core.RootID(0)
	if err := m.Acquire(t0, "A", rel, read("x")); err != nil {
		t.Fatal(err)
	}
	m.CommitTransfer(t0)
	if err := m.Acquire(t0, "A", rel, read("x")); !errors.Is(err, ErrFinished) {
		t.Fatalf("want ErrFinished, got %v", err)
	}
	m.Forget(t0)
	if err := m.Acquire(t0, "A", rel, read("x")); err != nil {
		t.Fatalf("after Forget: %v", err)
	}
}

func TestCommutingOperationLocksCompatible(t *testing.T) {
	// Counter Adds commute: two transactions may hold Add locks
	// simultaneously — the concurrency gain of semantic locks over RW.
	m := New(Options{})
	rel := objects.Counter().Conflicts
	add := core.OpInvocation{Op: "Add", Args: []core.Value{int64(1)}}
	get := core.OpInvocation{Op: "Get"}
	if err := m.Acquire(core.RootID(0), "C", rel, add); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(core.RootID(1), "C", rel, add); err != nil {
		t.Fatalf("commuting Adds must not block: %v", err)
	}
	ch := acquireAsync(m, core.RootID(2), "C", rel, get)
	mustBlocked(t, ch) // Get conflicts with both Adds
	m.CommitTransfer(core.RootID(0))
	mustBlocked(t, ch)
	m.CommitTransfer(core.RootID(1))
	mustGranted(t, ch)
}

func TestDeadlockDetectedFlat(t *testing.T) {
	m := New(Options{WaitTimeout: 5 * time.Second})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, write("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, "A", rel, write("b", 1)); err != nil {
		t.Fatal(err)
	}
	ch0 := acquireAsync(m, t0, "A", rel, write("b", 2))
	mustBlocked(t, ch0)
	// t1 -> a while t0 -> b: cycle, detected immediately.
	err := m.Acquire(t1, "A", rel, write("a", 2))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Victim aborts, releasing its locks; the other proceeds.
	m.ReleaseAll(t1)
	mustGranted(t, ch0)
	if m.Stats().Deadlocks.Load() == 0 {
		t.Fatalf("deadlock counter not incremented")
	}
}

func TestDeadlockDetectedViaRetainedLocks(t *testing.T) {
	// The nested case: T0 (top) holds x; T1's child d waits for x; T0's
	// child c requests y held by d's... — build the cross:
	//   c (child of T0) holds y? No: d (child of T1) holds y; c requests y
	//   -> waits for d and T1 (retained chain). d requests x held by T0 ->
	//   waits for T0. T0's commit needs c. Cycle: c -> {d, T1} ; d -> T0;
	//   T0 -> c.
	m := New(Options{WaitTimeout: 5 * time.Second})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	c := t0.Child(0)
	d := t1.Child(0)

	if err := m.Acquire(t0, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(d, "A", rel, write("y", 1)); err != nil {
		t.Fatal(err)
	}
	// d waits for x (owner t0): no cycle yet.
	chD := acquireAsync(m, d, "A", rel, write("x", 2))
	mustBlocked(t, chD)
	// c requests y (owner d): c needs commits of d and t1; t1 needs d;
	// d waits for t0's x; t0's commit needs c. Deadlock.
	err := m.Acquire(c, "A", rel, write("y", 2))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(c)
	m.ReleaseAll(t0) // abort the whole tree
	mustGranted(t, chD)
}

func TestDeadlockSiblingsSameTree(t *testing.T) {
	m := New(Options{WaitTimeout: 5 * time.Second})
	rel := objects.Register().Conflicts
	top := core.RootID(0)
	c1, c2 := top.Child(0), top.Child(1)
	if err := m.Acquire(c1, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(c2, "A", rel, write("y", 1)); err != nil {
		t.Fatal(err)
	}
	ch1 := acquireAsync(m, c1, "A", rel, write("y", 2))
	mustBlocked(t, ch1)
	err := m.Acquire(c2, "A", rel, write("x", 2))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("sibling deadlock within one tree must be detected, got %v", err)
	}
	m.ReleaseAll(c2)
	mustGranted(t, ch1)
}

func TestNoFalseDeadlockSiblingWait(t *testing.T) {
	// c1 waits for a lock held by sibling c2; c2 commits; lock moves to
	// the common parent, which IS c1's ancestor: c1 proceeds. No deadlock
	// may be reported.
	m := New(Options{WaitTimeout: 5 * time.Second})
	rel := objects.Register().Conflicts
	top := core.RootID(0)
	c1, c2 := top.Child(0), top.Child(1)
	if err := m.Acquire(c2, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	ch := acquireAsync(m, c1, "A", rel, write("x", 2))
	mustBlocked(t, ch)
	m.CommitTransfer(c2) // lock moves to top, ancestor of c1
	mustGranted(t, ch)
	if m.Stats().Deadlocks.Load() != 0 {
		t.Fatalf("false deadlock reported")
	}
}

func TestWaitTimeoutBackstop(t *testing.T) {
	m := New(Options{WaitTimeout: 50 * time.Millisecond})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	err := m.Acquire(t1, "A", rel, write("x", 2))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want timeout->ErrDeadlock, got %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	m := New(Options{})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	ch := acquireAsync(m, t1, "A", rel, read("x"))
	mustBlocked(t, ch)
	m.CommitTransfer(t0)
	mustGranted(t, ch)
	st := m.Stats()
	if st.Acquires.Load() != 2 || st.Waits.Load() != 1 {
		t.Fatalf("stats: acquires=%d waits=%d", st.Acquires.Load(), st.Waits.Load())
	}
	if m.TotalHeld() != 1 {
		t.Fatalf("TotalHeld = %d", m.TotalHeld())
	}
}
