package lock

// Concurrency coverage for the striped lock table: many goroutines over
// overlapping conflict scopes, exercising grants, waits, deadlock
// detection through the shared waits-for registry, and WaitTimeout
// expiry. Run under -race (CI does); the assertions also pin down that
// no lock survives its owner and no goroutine hangs.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// TestStripedCommutingAcquires: 8 goroutines hammer the same hot shard
// (commuting Adds never block each other), crossing stripe and registry
// locks on every grant/commit. Every acquire must be granted without a
// deadlock verdict, and the table must drain.
func TestStripedCommutingAcquires(t *testing.T) {
	m := New(Options{})
	rel := objects.Counter().Conflicts
	add := core.OpInvocation{Op: "Add", Args: []core.Value{int64(1)}}
	const goroutines, iters = 8, 200

	var wg sync.WaitGroup
	var next atomic.Int32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e := core.RootID(next.Add(1))
				if err := m.Acquire(e, "hot", rel, add); err != nil {
					t.Errorf("commuting acquire failed: %v", err)
					return
				}
				m.CommitTransfer(e)
			}
		}()
	}
	wg.Wait()
	if got := m.Stats().Acquires.Load(); got != goroutines*iters {
		t.Fatalf("Acquires = %d, want %d", got, goroutines*iters)
	}
	if m.Stats().Deadlocks.Load() != 0 {
		t.Fatalf("spurious deadlocks on commuting workload: %d", m.Stats().Deadlocks.Load())
	}
	if m.TotalHeld() != 0 {
		t.Fatalf("TotalHeld = %d after all commits", m.TotalHeld())
	}
}

// TestStripedDeadlockStorm: 8 goroutines lock conflicting writes over a
// ring of overlapping shards (goroutine g wants k_g then k_{g+1}), a
// deadlock-prone pattern whose cycles span stripes. Victims must get
// ErrDeadlock (never a hang), release, and retry with a fresh identity;
// everyone must eventually finish and the table must drain.
func TestStripedDeadlockStorm(t *testing.T) {
	m := New(Options{WaitTimeout: 2 * time.Second})
	rel := objects.Register().Conflicts
	const goroutines, rounds = 8, 40
	wr := func(k int) core.OpInvocation {
		return core.OpInvocation{Op: "Write", Args: []core.Value{fmt.Sprintf("k%d", k), int64(1)}}
	}

	var next atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					e := core.RootID(next.Add(1))
					err := m.Acquire(e, "A", rel, wr(g))
					if err == nil {
						err = m.Acquire(e, "A", rel, wr((g+1)%goroutines))
					}
					if err == nil {
						m.CommitTransfer(e)
						break
					}
					if !errors.Is(err, ErrDeadlock) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					m.ReleaseAll(e) // victim: drop everything, retry fresh
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock storm hung: detection failed under striping")
	}
	if m.TotalHeld() != 0 {
		t.Fatalf("TotalHeld = %d after storm", m.TotalHeld())
	}
}

// TestStripedWaitTimeoutExpiry: WaitTimeout is the liveness backstop —
// with a holder that never releases, 8 concurrent conflicting waiters
// on the same shard must all expire with ErrDeadlock, roughly on time.
func TestStripedWaitTimeoutExpiry(t *testing.T) {
	m := New(Options{WaitTimeout: 50 * time.Millisecond})
	rel := objects.Register().Conflicts
	wr := core.OpInvocation{Op: "Write", Args: []core.Value{"x", int64(1)}}
	holder := core.RootID(0)
	if err := m.Acquire(holder, "A", rel, wr); err != nil {
		t.Fatal(err)
	}

	const waiters = 8
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = m.Acquire(core.RootID(int32(g+1)), "A", rel, wr)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("waiter %d: err = %v, want ErrDeadlock (timeout)", g, err)
		}
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timeouts took %v — backstop not honoured", el)
	}
	if got := m.Stats().Deadlocks.Load(); got < waiters {
		t.Fatalf("Deadlocks = %d, want >= %d", got, waiters)
	}
	m.ReleaseAll(holder)
	if m.TotalHeld() != 0 {
		t.Fatalf("TotalHeld = %d", m.TotalHeld())
	}
}

// TestStripedNestedInheritanceConcurrent: rule 5 under concurrency —
// children of distinct tops lock disjoint-then-shared scopes and commit,
// inheriting to parents, while siblings contend. Ownership indexing
// (registry) and held entries (stripes) must stay consistent: after all
// tops finish, nothing is held.
func TestStripedNestedInheritanceConcurrent(t *testing.T) {
	m := New(Options{WaitTimeout: 2 * time.Second})
	rel := objects.Register().Conflicts
	const tops, iters = 8, 25

	var wg sync.WaitGroup
	var seq atomic.Int32
	for g := 0; g < tops; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					top := core.RootID(seq.Add(1))
					child := top.Child(0)
					inv := core.OpInvocation{Op: "Write", Args: []core.Value{fmt.Sprintf("s%d", i%4), int64(g)}}
					err := m.Acquire(child, "A", rel, inv)
					if err == nil {
						m.CommitTransfer(child) // inherit to top
						if n := m.HeldBy(top); n < 1 {
							t.Errorf("parent inherited %d locks, want >= 1", n)
						}
						m.CommitTransfer(top)
						break
					}
					if !errors.Is(err, ErrDeadlock) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					m.ReleaseAll(child)
					m.ReleaseAll(top)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.TotalHeld() != 0 {
		t.Fatalf("TotalHeld = %d after all tops committed", m.TotalHeld())
	}
	if m.Stats().Inherits.Load() == 0 {
		t.Fatal("no inheritance recorded")
	}
}
