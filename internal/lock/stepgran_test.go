package lock

import (
	"errors"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

func TestStepGranularityQueue(t *testing.T) {
	// The paper's Section 5.1 queue example at the lock level: an Enqueue
	// step blocks only the Dequeue step that returns its item.
	m := New(Options{Granularity: StepGranularity})
	rel := objects.Queue().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)

	enq := core.StepInfo{Op: "Enqueue", Args: []core.Value{int64(42)}, Ret: nil}
	ok, _, err := m.TryAcquire(t0, "Q", rel, enq)
	if !ok || err != nil {
		t.Fatalf("enqueue lock: %v %v", ok, err)
	}

	// A Dequeue that (provisionally) returned another item is compatible.
	deqMiss := core.StepInfo{Op: "Dequeue", Ret: int64(7)}
	ok, _, err = m.TryAcquire(t1, "Q", rel, deqMiss)
	if !ok || err != nil {
		t.Fatalf("unrelated dequeue must be granted: %v %v", ok, err)
	}

	// A Dequeue that returned the enqueued item is blocked.
	deqHit := core.StepInfo{Op: "Dequeue", Ret: int64(42)}
	ok, w, err := m.TryAcquire(core.RootID(2), "Q", rel, deqHit)
	if ok || err != nil {
		t.Fatalf("dequeue of uncommitted item must block: %v %v", ok, err)
	}
	w.Cancel()
}

func TestStepGranularityAsymmetricAccount(t *testing.T) {
	m := New(Options{Granularity: StepGranularity})
	rel := objects.Account().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)

	// A succeeded Withdraw is held; a Deposit request is compatible
	// (Withdraw=true then Deposit commutes).
	wOK := core.StepInfo{Op: "Withdraw", Args: []core.Value{int64(5)}, Ret: true}
	if ok, _, err := m.TryAcquire(t0, "A", rel, wOK); !ok || err != nil {
		t.Fatalf("withdraw lock: %v %v", ok, err)
	}
	dep := core.StepInfo{Op: "Deposit", Args: []core.Value{int64(3)}, Ret: nil}
	if ok, _, err := m.TryAcquire(t1, "A", rel, dep); !ok || err != nil {
		t.Fatalf("deposit after held withdraw must be granted (asymmetry): %v %v", ok, err)
	}

	// Reverse: Deposit held (by t1 now), a Withdraw=true request conflicts
	// with it (Deposit then Withdraw=true does not commute).
	w2 := core.StepInfo{Op: "Withdraw", Args: []core.Value{int64(4)}, Ret: true}
	ok, w, err := m.TryAcquire(core.RootID(2), "A", rel, w2)
	if ok || err != nil {
		t.Fatalf("withdraw after held deposit must block: %v %v", ok, err)
	}
	w.Cancel()
}

func TestTryAcquireWaiterProtocol(t *testing.T) {
	m := New(Options{WaitTimeout: time.Second})
	rel := objects.Register().Conflicts
	t0, t1 := core.RootID(0), core.RootID(1)
	if err := m.Acquire(t0, "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	req := core.StepInfo{Op: "Write", Args: []core.Value{"x", int64(2)}}
	ok, w, err := m.TryAcquire(t1, "A", rel, req)
	if ok || err != nil {
		t.Fatalf("TryAcquire = %v,%v", ok, err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Wait() }()
	m.CommitTransfer(t0)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("waiter not woken by release")
	}
	w.Cancel()
	if ok, _, _ := m.TryAcquire(t1, "A", rel, req); !ok {
		t.Fatalf("retry after release must be granted")
	}
}

func TestWaiterTimeout(t *testing.T) {
	m := New(Options{WaitTimeout: 30 * time.Millisecond})
	rel := objects.Register().Conflicts
	if err := m.Acquire(core.RootID(0), "A", rel, write("x", 1)); err != nil {
		t.Fatal(err)
	}
	req := core.StepInfo{Op: "Write", Args: []core.Value{"x", int64(2)}}
	ok, w, err := m.TryAcquire(core.RootID(1), "A", rel, req)
	if ok || err != nil {
		t.Fatalf("TryAcquire = %v,%v", ok, err)
	}
	if err := w.Wait(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want timeout ErrDeadlock, got %v", err)
	}
}
