package lock

// Regression coverage for the grant-vs-finish window: a grant in flight
// when the owner finishes (its WaitTimeout fired on another lane, the
// transaction aborted) must either be refused (ErrFinished) or be swept
// by the finish — never leaked as a lock owned by a dead execution. Run
// under -race (CI does).

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"objectbase/internal/core"
)

// TestGrantAfterFinishWindow pins the race deterministically: a finish
// (ReleaseAll — a WaitTimeout abort on another lane of the same
// execution) lands exactly between TryAcquire's rule-3 check and its
// grant. The grant must be refused with ErrFinished; before the re-check
// under the grant, the lock landed in the shard after finish() had
// already consumed the owner index, so nothing ever released it.
func TestGrantAfterFinishWindow(t *testing.T) {
	m := New(Options{})
	rel := core.TotalConflict{}
	e := core.RootID(1)
	fired := false
	grantScanHook = func() {
		if !fired {
			fired = true
			// The finish takes only the owner-shard lock, which the
			// grantor does not hold inside the window (it does hold the
			// stripe lock, which finish needs only for owned shards — and
			// e owns none yet), so it runs to completion here.
			done := make(chan struct{})
			go func() { m.ReleaseAll(e); close(done) }()
			<-done
		}
	}
	defer func() { grantScanHook = nil }()
	ok, w, err := m.TryAcquire(e, "o", rel, core.StepInfo{Op: "W"})
	if w != nil {
		w.Cancel()
	}
	if !fired {
		t.Fatal("window hook did not run")
	}
	if ok || !errors.Is(err, ErrFinished) {
		t.Fatalf("grant for finished execution: ok=%v err=%v", ok, err)
	}
	if n := m.HeldBy(e); n != 0 {
		t.Fatalf("%d locks leaked to finished execution", n)
	}
}

// TestGrantFinishRaceNoLeak races TryAcquire against ReleaseAll for the
// same execution. Before the finished re-check under the grant, the
// interleaving "rule-3 check passes → finish() consumes the (not yet
// indexed) owner set → grant lands" left a lock owned by a finished
// execution that nothing would ever release.
func TestGrantFinishRaceNoLeak(t *testing.T) {
	m := New(Options{})
	// Nothing conflicts: every request is granted, after scanning every
	// held lock in the shard — the scan is exactly the window between the
	// rule-3 check and the grant's ownership indexing, so the fillers
	// below widen it enough for the race to be reachable.
	rel := &core.TableConflict{Pairs: map[[2]string]bool{}}
	const fillers = 256
	for j := 0; j < fillers; j++ {
		filler := core.RootID(int32(1_000_000 + j))
		if ok, _, err := m.TryAcquire(filler, "hot", rel, core.StepInfo{Op: fmt.Sprintf("F%d", j)}); !ok || err != nil {
			t.Fatalf("filler %d: ok=%v err=%v", j, ok, err)
		}
	}
	const iters = 2000
	const grantors = 4 // parallel lanes of the same execution
	for i := 0; i < iters; i++ {
		e := core.RootID(int32(i))
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(grantors + 1)
		for g := 0; g < grantors; g++ {
			op := fmt.Sprintf("W%d", g)
			go func(op string) {
				defer wg.Done()
				<-start
				ok, w, err := m.TryAcquire(e, "hot", rel, core.StepInfo{Op: op})
				if w != nil {
					w.Cancel()
				}
				if !ok && err != nil && !errors.Is(err, ErrFinished) {
					t.Errorf("iter %d: unexpected error %v", i, err)
				}
			}(op)
		}
		go func() {
			defer wg.Done()
			<-start
			m.ReleaseAll(e)
		}()
		close(start)
		wg.Wait()
		// Whatever interleaving happened, the finished execution must own
		// nothing: either each grant was refused, or ReleaseAll (or the
		// finish sweep serialised behind the stripe lock we hold during a
		// grant) collected it. No second release — production has none.
		if n := m.HeldBy(e); n != 0 {
			t.Fatalf("iter %d: %d locks leaked to finished execution %s", i, n, e)
		}
	}
}

// TestWaitTimeoutRacingRelease drives a waiter whose WaitTimeout expires
// right as the conflicting holder commits. Whichever way the race falls —
// a wake drained at the deadline (retry) or a genuine timeout verdict —
// the waiter must end deregistered and the table must drain; a wake
// arriving with the timeout must not be reported as a deadlock when the
// retry would succeed.
func TestWaitTimeoutRacingRelease(t *testing.T) {
	rel := core.TotalConflict{}
	req := core.StepInfo{Op: "W"}
	const iters = 60
	retried := 0
	for i := 0; i < iters; i++ {
		m := New(Options{WaitTimeout: 2 * time.Millisecond})
		holder := core.RootID(0)
		waiter := core.RootID(1)
		if ok, _, err := m.TryAcquire(holder, "o", rel, req); !ok || err != nil {
			t.Fatalf("holder acquire: ok=%v err=%v", ok, err)
		}
		ok, w, err := m.TryAcquire(waiter, "o", rel, req)
		if ok || err != nil {
			t.Fatalf("waiter should block: ok=%v err=%v", ok, err)
		}
		done := make(chan struct{})
		go func() {
			// Land the release in the neighbourhood of the deadline.
			time.Sleep(time.Duration(i%4) * time.Millisecond / 2)
			m.CommitTransfer(holder)
			close(done)
		}()
		werr := w.WaitDone(nil)
		w.Cancel()
		<-done
		if werr == nil {
			// Woken (possibly drained at the deadline): the retry must
			// now succeed — the holder is gone.
			ok, w2, err := m.TryAcquire(waiter, "o", rel, req)
			if w2 != nil {
				w2.Cancel()
			}
			if !ok || err != nil {
				t.Fatalf("iter %d: retry after wake failed: ok=%v err=%v", i, ok, err)
			}
			retried++
		} else if !errors.Is(werr, ErrDeadlock) {
			t.Fatalf("iter %d: unexpected wait error %v", i, werr)
		}
		m.ReleaseAll(waiter)
		if n := m.TotalHeld(); n != 0 {
			t.Fatalf("iter %d: %d locks leaked", i, n)
		}
	}
	if retried == 0 {
		t.Log("no wake won the race in this run (timing-dependent); leak invariants still checked")
	}
}
