//go:build !ordercheck

package lock

// Without the ordercheck tag the witness calls compile to empty,
// inlinable no-ops: the instrumented hot paths carry no cost.

const (
	ordRankStripe = 20
	ordRankOwner  = 30
	ordRankWaits  = 40
)

func ordAcquire(rank int, name string) {}
func ordRelease(rank int, name string) {}
