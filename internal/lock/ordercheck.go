//go:build ordercheck

// The ordercheck build tag turns on the runtime half of the lockorder
// invariant (see internal/analysis): every ranked acquisition is checked
// against the locks the goroutine already holds, and a violation of the
//
//	object latch (10) → stripe (20) → owner shard (30) → waits registry (40) → pubMu (50)
//
// order — or two locks of one tier at once — panics at the acquisition
// site. The static analyzer reasons per function; this witness sees the
// cross-function compositions the analyzer cannot, so the two
// cross-validate. Enabled in CI alongside -race.

package lock

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Ranks of the documented lock order. The object latch (10) and
// publication mutex (50) belong to internal/engine, which asserts them
// through OrdAcquire/OrdRelease.
const (
	ordRankStripe = 20
	ordRankOwner  = 30
	ordRankWaits  = 40
)

type ordEntry struct {
	rank int
	name string
}

var (
	ordMu   sync.Mutex
	ordHeld = make(map[uint64][]ordEntry)
)

// ordGID extracts the current goroutine's id from its stack header — the
// witness needs per-goroutine held sets and this is test-grade tooling,
// never compiled into untagged builds.
func ordGID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseUint(s, 10, 64)
	return id
}

// OrdAcquire asserts that taking a lock of the given rank respects the
// tier order given what this goroutine already holds, then records it.
func OrdAcquire(rank int, name string) {
	g := ordGID()
	ordMu.Lock()
	defer ordMu.Unlock()
	for _, h := range ordHeld[g] {
		if h.rank >= rank {
			panic(fmt.Sprintf(
				"ordercheck: acquiring %s (rank %d) while holding %s (rank %d): lock order is object latch(10) → stripe(20) → owner shard(30) → waits registry(40) → pubMu(50), never two of one tier",
				name, rank, h.name, h.rank))
		}
	}
	ordHeld[g] = append(ordHeld[g], ordEntry{rank: rank, name: name})
}

// OrdRelease drops the most recent matching acquisition of this
// goroutine.
func OrdRelease(rank int, name string) {
	g := ordGID()
	ordMu.Lock()
	defer ordMu.Unlock()
	held := ordHeld[g]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].rank == rank && held[i].name == name {
			ordHeld[g] = append(held[:i], held[i+1:]...)
			break
		}
	}
	if len(ordHeld[g]) == 0 {
		delete(ordHeld, g)
	}
}

func ordAcquire(rank int, name string) { OrdAcquire(rank, name) }
func ordRelease(rank int, name string) { OrdRelease(rank, name) }
