package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the engine's two acquisition-order invariants.
//
// Ranked mutexes: the fixed tier order is
//
//	object latch (10) → stripe (20) → owner shard (30) → waits registry (40) → pubMu (50)
//
// and never two locks of the same tier at once. Within each function the
// analyzer scans acquisitions in source order and flags any Lock of a
// tier at or below one still held (a deferred Unlock holds to the end of
// the function; a return releases everything). The ordercheck build tag
// is the runtime half of the same invariant.
//
// Shard gates: raw Router gate acquisitions (LockGate/RLockGate/TryGate/
// TryRGate) are confined to the lockGateCtx/rLockGateCtx helpers, and a
// function calling those helpers more than once must do so in directory
// order — in a loop over a sorted shard set, or guarded by an
// ascending-order or emptiness comparison. Blessed batch acquirers
// (gateBatchAcquirers) are exempt from the per-site evidence check:
// their contract is that the whole argument set is sorted before any
// gate is taken, which the per-site heuristics cannot see.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "in internal/lock and internal/engine, ranked mutexes must be " +
		"acquired in tier order (object latch → stripe → owner shard → " +
		"waits registry → pubMu, never two of one tier), raw gate " +
		"acquisition stays inside lockGateCtx/rLockGateCtx, and repeated " +
		"gate-helper calls must follow ascending shard order (blessed " +
		"batch acquirers excepted)",
	Run: runLockOrder,
}

// rankedLock is one tier of the documented lock order.
type rankedLock struct {
	rank  int
	label string
}

// mutexRanks maps (declaring type, mutex field) to its tier.
var mutexRanks = map[[2]string]rankedLock{
	{"Object", "mu"}:       {10, "object latch"},
	{"stripe", "mu"}:       {20, "lock-table stripe"},
	{"ownerShard", "mu"}:   {30, "owner shard"},
	{"waitRegistry", "mu"}: {40, "waits-for registry"},
	{"Engine", "pubMu"}:    {50, "publication watermark"},
}

// gateAcquire are the Router methods that take a shard gate.
var gateAcquire = map[string]bool{
	"LockGate": true, "RLockGate": true, "TryGate": true, "TryRGate": true,
}

// gateHelpers are the blessed ctx-aware gate acquisition wrappers.
var gateHelpers = map[string]bool{
	"lockGateCtx": true, "rLockGateCtx": true,
}

// gateBatchAcquirers are functions whose whole job is to take a
// pre-sorted batch of gates in one pass — the epoch flusher's
// acquireEpochGates sorts the batch union before acquiring anything, so
// its call sites carry the ordering proof in the data rather than in
// syntax the per-site check can recognise.
var gateBatchAcquirers = map[string]bool{
	"acquireEpochGates": true,
}

func runLockOrder(pass *Pass) error {
	if !pathIs(pass.Pkg, "internal/lock", "internal/engine") {
		return nil
	}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockSequence(pass, fd.Body)
			}
		}
	}
	if pathIs(pass.Pkg, "internal/engine") {
		checkGateDiscipline(pass)
	}
	return nil
}

// heldLock is one acquisition still live during the in-order scan.
type heldLock struct {
	key  string
	tier rankedLock
	pos  token.Pos
}

// checkLockSequence scans one function body in source order tracking
// ranked acquisitions. Function literals are separate goroutine-shaped
// scopes and get their own scan.
func checkLockSequence(pass *Pass, body *ast.BlockStmt) {
	var held []heldLock
	var nested []*ast.BlockStmt
	release := func(key string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n.Body)
			return false
		case *ast.ReturnStmt:
			// Every non-deferred path unlocks before returning; clearing
			// here keeps branch-local critical sections from leaking into
			// the scan of later statements.
			held = held[:0]
		case *ast.DeferStmt:
			// A deferred Unlock holds its lock to the end of the
			// function (any later same-or-lower acquisition is still a
			// violation), so don't let the scan see it as a release.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				nested = append(nested, fl.Body)
			}
			return false
		case *ast.CallExpr:
			key, tier, kind := rankedLockCall(pass, n)
			if key == "" {
				return true
			}
			switch kind {
			case "Lock", "TryLock":
				for _, h := range held {
					if h.tier.rank >= tier.rank {
						pass.Reportf(n.Pos(),
							"acquires %s (%s, rank %d) while holding %s (%s, rank %d): lock order is object latch(10) → stripe(20) → owner shard(30) → waits registry(40) → pubMu(50), never two of one tier",
							key, tier.label, tier.rank, h.key, h.tier.label, h.tier.rank)
					}
				}
				held = append(held, heldLock{key: key, tier: tier, pos: n.Pos()})
			case "Unlock":
				release(key)
			}
		}
		return true
	})
	for _, b := range nested {
		checkLockSequence(pass, b)
	}
}

// rankedLockCall decodes a call of the form X.f.Lock/TryLock/Unlock()
// where (type of X, f) is a ranked mutex. It returns the held-lock key
// (the rendered X.f expression), the tier, and the method kind; key is
// "" for anything else.
func rankedLockCall(pass *Pass, call *ast.CallExpr) (string, rankedLock, string) {
	outer, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", rankedLock{}, ""
	}
	kind := outer.Sel.Name
	if kind != "Lock" && kind != "TryLock" && kind != "Unlock" {
		return "", rankedLock{}, ""
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok {
		return "", rankedLock{}, ""
	}
	selection := pass.Pkg.Info.Selections[inner]
	if selection == nil || selection.Kind() != types.FieldVal {
		return "", rankedLock{}, ""
	}
	tier, ok := mutexRanks[[2]string{recvTypeName(selection.Recv()), inner.Sel.Name}]
	if !ok {
		return "", rankedLock{}, ""
	}
	return types.ExprString(inner), tier, kind
}

// checkGateDiscipline enforces the two gate rules: raw acquisition only
// inside the helpers, and helper call sites ordered when repeated.
func checkGateDiscipline(pass *Pass) {
	type helperSite struct {
		call  *ast.CallExpr
		name  string
		stack []ast.Node
	}
	for _, f := range pass.Files() {
		sitesByFunc := make(map[string][]helperSite)
		var funcOrder []string
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			fn := enclosingFuncName(stack)
			if gateAcquire[name] {
				if _, isMethod := ast.Unparen(call.Fun).(*ast.SelectorExpr); isMethod && !gateHelpers[fn] {
					pass.Reportf(call.Pos(),
						"raw gate acquisition %s outside lockGateCtx/rLockGateCtx: gates must be taken through the ctx-aware helpers", name)
				}
			}
			if gateHelpers[name] && !gateHelpers[fn] {
				if _, seen := sitesByFunc[fn]; !seen {
					funcOrder = append(funcOrder, fn)
				}
				sitesByFunc[fn] = append(sitesByFunc[fn],
					helperSite{call: call, name: name, stack: append([]ast.Node(nil), stack...)})
			}
			return true
		})
		for _, fn := range funcOrder {
			sites := sitesByFunc[fn]
			if len(sites) < 2 {
				continue // a sole acquisition cannot be out of order
			}
			if gateBatchAcquirers[fn] {
				continue // blessed: sorts its gate set before acquiring
			}
			for _, s := range sites {
				if gateSiteOrdered(s.stack) {
					continue
				}
				pass.Reportf(s.call.Pos(),
					"%s called without ordering discipline in a multi-gate function: acquire gates in ascending shard order (loop over a sorted set, or guard with an ascending/emptiness comparison)", s.name)
			}
		}
	}
}

// gateSiteOrdered reports whether a gate-helper call site carries
// evidence of directory-order discipline: an enclosing loop (iterating a
// sorted shard set), or an enclosing if/case guarded by an ascending
// (>, >=) or emptiness (== 0) comparison.
func gateSiteOrdered(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.IfStmt:
			if orderGuardExpr(n.Cond) {
				return true
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if orderGuardExpr(e) {
					return true
				}
			}
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

// orderGuardExpr reports whether e contains an ascending or emptiness
// comparison.
func orderGuardExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.GTR, token.GEQ:
			found = true
		case token.EQL:
			if isZeroLit(be.X) || isZeroLit(be.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == "0"
}
