package analysis

// conflictsound cross-checks every schema's hand-written conflict relation
// against the relation derived from its operation bodies (footprint.go,
// derive.go, declread.go). Two failure directions:
//
//   - Unsound: the declared relation omits a conflict the footprints
//     imply. The engine would then commute steps whose order matters —
//     a correctness bug (Definition 3 violated).
//
//   - Over-coarse: the declared relation contains a pair the derivation
//     proves commuting (or keys a pair it proves key-scoped). Safe but
//     concurrency left on the table; reported so the relation can adopt
//     the generated table (conflict_gen.go).
//
// Relations built by generatedConflicts() are the generator's own output
// and are certified by construction (the CI drift gate keeps the committed
// table in sync with the derivation), so only footprint-level problems are
// reported for them.

var ConflictSound = &Analyzer{
	Name: "conflictsound",
	Doc: "cross-check declared conflict relations against derived operation footprints: " +
		"fail on declared relations that omit a derived conflict (unsound), report declared " +
		"conflicts the derivation proves commuting or key-scoped (over-coarse), and check " +
		"undo/Peek/ReadOnly footprint obligations",
	Run: runConflictSound,
}

func runConflictSound(pass *Pass) error {
	for _, d := range DeriveSchemas(pass.Pkg) {
		checkSchema(pass, d)
	}
	return nil
}

func checkSchema(pass *Pass, d *DerivedSchema) {
	// Footprint-level obligations hold regardless of the declared relation.
	for _, name := range d.OpNames {
		for _, p := range d.Ops[name].Problems {
			pass.Reportf(d.Ops[name].Pos, "schema %q: %s", d.Name, p)
		}
	}

	decl := readDeclared(pass.Pkg, d.RelExpr, d.OpNames)
	if decl.certified {
		return // the generator's own output; drift-gated in CI
	}
	if !decl.ok {
		pass.Reportf(d.RelPos, "schema %q: declared conflict relation is not statically certifiable: %s",
			d.Name, decl.why)
		return
	}

	reportedOpaque := map[string]bool{}
	for _, a := range d.OpNames {
		for _, b := range d.OpNames {
			pair := [2]string{a, b}
			dv := decl.pairs[pair] // zero value: declared commuting
			der := d.Verdict(a, b)

			// An opaque operation derives as conflict-with-everything;
			// distinguish "not certifiable" from a real omission.
			if fa, fb := d.Ops[a], d.Ops[b]; fa.Opaque || fb.Opaque {
				if !dv.Conflict || dv.Keyed {
					op := fa
					if !op.Opaque {
						op = fb
					}
					if !reportedOpaque[op.Name] {
						reportedOpaque[op.Name] = true
						pass.Reportf(op.Pos,
							"schema %q: operation %s is not certifiable (%s) but the declared relation commutes it with some operation",
							d.Name, op.Name, op.OpaqueWhy)
					}
				}
				continue
			}

			switch {
			case der.Conflict && !dv.Conflict:
				pass.Reportf(d.RelPos,
					"schema %q: declared relation omits derived conflict %s/%s (footprints %s vs %s): unsound",
					d.Name, a, b, d.Ops[a], d.Ops[b])
			case der.Conflict && !der.Keyed && dv.Keyed:
				pass.Reportf(d.RelPos,
					"schema %q: declared relation keys %s/%s by argument but the derived conflict is unconditional (footprints %s vs %s): unsound",
					d.Name, a, b, d.Ops[a], d.Ops[b])
			case der.Conflict && der.Keyed && dv.Keyed && (dv.ArgA != der.ArgA || dv.ArgB != der.ArgB):
				pass.Reportf(d.RelPos,
					"schema %q: declared relation keys %s/%s on arg%d/arg%d but the derivation keys it on arg%d/arg%d: unsound",
					d.Name, a, b, dv.ArgA, dv.ArgB, der.ArgA, der.ArgB)
			case !der.Conflict && dv.Conflict:
				pass.Reportf(d.RelPos,
					"schema %q: %s/%s provably commute (footprints %s vs %s) but are declared conflicting: over-coarse",
					d.Name, a, b, d.Ops[a], d.Ops[b])
			case der.Conflict && der.Keyed && dv.Conflict && !dv.Keyed:
				pass.Reportf(d.RelPos,
					"schema %q: %s/%s conflict only on equal keys (arg%d=arg%d) but are declared conflicting unconditionally: over-coarse",
					d.Name, a, b, der.ArgA, der.ArgB)
			}
		}
	}
}
