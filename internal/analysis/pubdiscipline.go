package analysis

import (
	"go/ast"
	"go/types"
)

// PubDiscipline enforces the MVCC publication discipline from the
// versioned fast path: the snapshot read path trusts that (a) an
// object's version ring pointer is replaced only by the publication and
// gap-repair helpers, and (b) the engine's watermark bookkeeping
// (pubNext/pubWm/pubDone) is touched only under pubMu inside
// publishObjects, with pubSeq.Store as its sole mirror. Any other write
// would let RunView observe a watermark that precedes the rings it
// promises are visible.
var PubDiscipline = &Analyzer{
	Name: "pubdiscipline",
	Doc: "in internal/engine, Object.vers may be Stored only by " +
		"publishVersion/initVersions/applyUndo, Engine.pubSeq only by " +
		"publishObjects, and the pubNext/pubWm/pubDone watermark fields " +
		"accessed only inside publishObjects",
	Run: runPubDiscipline,
}

// pubStoreAllow maps a guarded (recv type, field) whose .Store is
// restricted to the set of functions allowed to call it.
var pubStoreAllow = map[[2]string]map[string]bool{
	{"Object", "vers"}:   {"publishVersion": true, "initVersions": true, "applyUndo": true},
	{"Engine", "pubSeq"}: {"publishObjects": true},
}

// pubFieldAllow maps a guarded (recv type, field) whose every access is
// restricted to the set of functions allowed to touch it.
var pubFieldAllow = map[[2]string]map[string]bool{
	{"Engine", "pubNext"}: {"publishObjects": true},
	{"Engine", "pubWm"}:   {"publishObjects": true},
	{"Engine", "pubDone"}: {"publishObjects": true},
}

func runPubDiscipline(pass *Pass) error {
	if !pathIs(pass.Pkg, "internal/engine") {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			key := [2]string{recvTypeName(selection.Recv()), sel.Sel.Name}
			fn := enclosingFuncName(stack)
			if allowed, guarded := pubStoreAllow[key]; guarded && isStoreReceiver(sel, stack) && !allowed[fn] {
				pass.Reportf(sel.Pos(),
					"%s.%s.Store outside its publication helper%s: version state must be published only via %s",
					key[0], key[1], plural(allowed), funcList(allowed))
			}
			if allowed, guarded := pubFieldAllow[key]; guarded && !allowed[fn] {
				pass.Reportf(sel.Pos(),
					"%s.%s accessed outside %s: the watermark fields are pubMu-guarded publication bookkeeping",
					key[0], key[1], funcList(allowed))
			}
			return true
		})
	}
	return nil
}

// recvTypeName returns the named type a field selection was made on,
// looking through pointers ("" when unnamed).
func recvTypeName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return n.Obj().Name()
		}
	}
	return ""
}

// isStoreReceiver reports whether sel is the X of an X.Store(...) call.
func isStoreReceiver(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || parent.X != sel || parent.Sel.Name != "Store" {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && call.Fun == parent
}

func funcList(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	// Deterministic order for diagnostics and fixtures.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "/"
		}
		out += n
	}
	return out
}

func plural(set map[string]bool) string {
	if len(set) > 1 {
		return "s"
	}
	return ""
}
