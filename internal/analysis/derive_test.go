package analysis

import (
	"bytes"
	"os"
	"testing"
)

// deriveLibrary runs the commutativity derivation once over the real tree
// and caches it for the tests below (the loader type-checks the whole
// module, which is the expensive part).
var libraryDerivation struct {
	schemas map[string]*DerivedSchema
	err     error
	done    bool
}

func deriveLibrary(t *testing.T) map[string]*DerivedSchema {
	t.Helper()
	if !libraryDerivation.done {
		libraryDerivation.done = true
		schemas, err := DeriveTree("../..")
		libraryDerivation.err = err
		if err == nil {
			libraryDerivation.schemas = make(map[string]*DerivedSchema, len(schemas))
			for _, d := range schemas {
				libraryDerivation.schemas[d.Name] = d
			}
		}
	}
	if libraryDerivation.err != nil {
		t.Fatalf("DeriveTree: %v", libraryDerivation.err)
	}
	return libraryDerivation.schemas
}

// TestDeriveLibraryFootprints pins the derived footprints of the real
// object library: every operation must certify (no Opaque, no Problems),
// and the footprint strings act as golden values for the abstract
// interpreter — increments, injective argument keys, and handle summaries
// all show up here.
func TestDeriveLibraryFootprints(t *testing.T) {
	want := map[string]map[string]string{
		"account": {
			"Balance":  `{R:"balance"}`,
			"Deposit":  `{±"balance"}`,
			"Withdraw": `{R:"balance" W:"balance"}`,
		},
		"counter": {
			"Add": `{±"n"}`,
			"Get": `{R:"n"}`,
		},
		"dictionary": {
			"Insert": `{R:"tree"[arg0] W:"tree"[arg0]}`,
			"Delete": `{R:"tree"[arg0] W:"tree"[arg0]}`,
			"Lookup": `{R:"tree"[arg0]}`,
			"Len":    `{R:"tree"[*]}`,
		},
		"queue": {
			"Enqueue": `{R:"items" W:"items"}`,
			"Dequeue": `{R:"items" W:"items"}`,
			"Len":     `{R:"items"}`,
		},
		"register": {
			"Read":  `{R:arg0}`,
			"Write": `{R:arg0 W:arg0}`,
		},
		"set": {
			"Add":      `{R:arg0 W:arg0}`,
			"Remove":   `{R:arg0 W:arg0}`,
			"Contains": `{R:arg0}`,
		},
	}
	schemas := deriveLibrary(t)
	for name, ops := range want {
		d := schemas[name]
		if d == nil {
			t.Errorf("schema %s not discovered by the derivation", name)
			continue
		}
		if len(d.OpNames) != len(ops) {
			t.Errorf("schema %s: derived ops %v, want %d operations", name, d.OpNames, len(ops))
		}
		for op, fpWant := range ops {
			fp := d.Ops[op]
			if fp == nil {
				t.Errorf("schema %s: operation %s not derived", name, op)
				continue
			}
			if fp.Opaque {
				t.Errorf("schema %s: operation %s is opaque (%s), want %s", name, op, fp.OpaqueWhy, fpWant)
				continue
			}
			if len(fp.Problems) != 0 {
				t.Errorf("schema %s: operation %s has problems %v", name, op, fp.Problems)
			}
			if got := fp.String(); got != fpWant {
				t.Errorf("schema %s: operation %s footprint = %s, want %s", name, op, got, fpWant)
			}
		}
	}
}

// TestDeriveLibraryVerdicts pins representative pairwise verdicts,
// including the two over-coarse declarations the derivation caught
// (queue Len/Len and account Balance/Balance) and the argument-aware
// conflicts the generated tables carry.
func TestDeriveLibraryVerdicts(t *testing.T) {
	schemas := deriveLibrary(t)
	check := func(schema, a, b, want string) {
		t.Helper()
		d := schemas[schema]
		if d == nil {
			t.Fatalf("schema %s not discovered", schema)
		}
		if got := d.Verdict(a, b).String(); got != want {
			t.Errorf("%s: %s/%s = %s, want %s", schema, a, b, got, want)
		}
	}

	// The regressions fixed in this change: read-only pairs commute.
	check("queue", "Len", "Len", "commute")
	check("account", "Balance", "Balance", "commute")

	// Increments commute with themselves but conflict with readers.
	check("counter", "Add", "Add", "commute")
	check("counter", "Add", "Get", "conflict")
	check("account", "Deposit", "Deposit", "commute")
	check("account", "Deposit", "Withdraw", "conflict")

	// Argument-aware verdicts: keyed by the injective first argument.
	check("register", "Write", "Write", "conflict iff arg0=arg0")
	check("register", "Read", "Read", "commute")
	check("set", "Add", "Remove", "conflict iff arg0=arg0")
	check("set", "Contains", "Contains", "commute")
	check("dictionary", "Insert", "Delete", "conflict iff arg0=arg0")
	check("dictionary", "Lookup", "Lookup", "commute")

	// Len reads every element, so it conflicts unconditionally with
	// mutations but commutes with point reads.
	check("dictionary", "Len", "Insert", "conflict")
	check("dictionary", "Len", "Lookup", "commute")

	// Queue operations on the shared slice stay unkeyed conflicts.
	check("queue", "Enqueue", "Dequeue", "conflict")

	// Shardability: register and set key every conflict on arg0.
	for _, name := range []string{"register", "set"} {
		arg, ok := schemas[name].ShardArg()
		if !ok || arg != 0 {
			t.Errorf("%s: ShardArg = (%d, %v), want (0, true)", name, arg, ok)
		}
	}
	if _, ok := schemas["dictionary"].ShardArg(); ok {
		t.Errorf("dictionary must not shard (Len conflicts are unkeyed)")
	}
}

// TestGeneratedConflictsDrift is the in-tree mirror of the CI drift gate:
// the committed conflict_gen.go must match a fresh derivation byte for
// byte (`go run ./cmd/oblint -gen` regenerates it).
func TestGeneratedConflictsDrift(t *testing.T) {
	schemas, err := DeriveTree("../..")
	if err != nil {
		t.Fatalf("DeriveTree: %v", err)
	}
	module, err := ModulePath("../..")
	if err != nil {
		t.Fatalf("ModulePath: %v", err)
	}
	want := GenerateConflicts(schemas, module)
	got, err := os.ReadFile("../objects/conflict_gen.go")
	if err != nil {
		t.Fatalf("read committed table: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("internal/objects/conflict_gen.go is stale: re-run `go run ./cmd/oblint -gen`")
	}
}
