package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file reads a schema's *declared* conflict relation statically, into
// the same PairVerdict form the derivation produces, so conflictsound can
// compare them. It understands the core combinators (TotalConflict,
// TableConflict with ConflictPairs/SymmetricPairs, RWTable, Refine,
// Sharded), the generatedConflicts marker of internal/objects (certified
// by construction, drift-gated in CI), and custom relation types whose
// OpConflicts method is simple enough to evaluate concretely per pair of
// operation names.

// declRelation is a statically-read declared relation.
type declRelation struct {
	ok  bool   // readable
	why string // when !ok: what defeated the reader
	// certified: the relation is the generator's own output
	// (generatedConflicts), so declared == derived by construction.
	certified bool
	// pairs maps every ordered pair of operation names to its declared
	// verdict (zero value = commute).
	pairs map[[2]string]PairVerdict
}

func declUnreadable(format string, args ...interface{}) declRelation {
	return declRelation{why: fmt.Sprintf(format, args...)}
}

// readDeclared interprets the relation expression over the operation-name
// universe ops.
func readDeclared(pkg *Package, relExpr ast.Expr, ops []string) declRelation {
	e := ast.Unparen(relExpr)
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return readDeclared(pkg, e.X, ops)
		}
	case *ast.CallExpr:
		return readDeclaredCall(pkg, e, ops)
	case *ast.CompositeLit:
		return readDeclaredLit(pkg, e, ops)
	case *ast.Ident:
		// A variable binding resolved by the caller would already be
		// substituted; a remaining ident is beyond the reader.
		return declUnreadable("relation bound to %s, which the reader cannot resolve", e.Name)
	}
	return declUnreadable("unrecognised relation expression %T", e)
}

func readDeclaredCall(pkg *Package, call *ast.CallExpr, ops []string) declRelation {
	switch name := calleeName(call); name {
	case "Refine":
		// Step-granularity refinement only shrinks StepConflicts; the
		// op-granularity relation is the base's.
		if isCorePkgCall(pkg, call) && len(call.Args) == 2 {
			return readDeclared(pkg, call.Args[0], ops)
		}
	case "Sharded":
		// rel.Sharded(n) answers conflicts exactly like rel.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return readDeclared(pkg, sel.X, ops)
		}
	case "generatedConflicts":
		return declRelation{ok: true, certified: true}
	case "RWTable":
		if !isCorePkgCall(pkg, call) || len(call.Args) != 3 {
			break
		}
		readers, ok1 := stringSliceLit(pkg, call.Args[0])
		writers, ok2 := stringSliceLit(pkg, call.Args[1])
		keyed, okKey := readKeyFunc(pkg, call.Args[2], true)
		if !ok1 || !ok2 || !okKey {
			return declUnreadable("RWTable with non-literal arguments")
		}
		pairs := map[[2]string]PairVerdict{}
		conflict := PairVerdict{Conflict: true, Keyed: keyed}
		for _, w := range writers {
			for _, w2 := range writers {
				pairs[[2]string{w, w2}] = conflict
			}
			for _, r := range readers {
				pairs[[2]string{w, r}] = conflict
				pairs[[2]string{r, w}] = conflict
			}
		}
		return declRelation{ok: true, pairs: pairs}
	}
	return declUnreadable("unrecognised relation call %s", calleeName(call))
}

// isCorePkgCall reports whether the call resolves into internal/core.
func isCorePkgCall(pkg *Package, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.Ident:
		id = fn
	default:
		return false
	}
	obj := pkg.Info.Uses[id]
	return obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

func readDeclaredLit(pkg *Package, lit *ast.CompositeLit, ops []string) declRelation {
	t := typeOf(pkg, lit)
	named, ok := t.(*types.Named)
	if !ok {
		return declUnreadable("relation literal of unnamed type")
	}
	obj := named.Obj()
	inCore := obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/core")
	switch {
	case inCore && obj.Name() == "TotalConflict":
		pairs := map[[2]string]PairVerdict{}
		for _, a := range ops {
			for _, b := range ops {
				pairs[[2]string{a, b}] = PairVerdict{Conflict: true}
			}
		}
		return declRelation{ok: true, pairs: pairs}
	case inCore && obj.Name() == "TableConflict":
		return readTableConflict(pkg, lit)
	case inCore:
		return declUnreadable("unrecognised core relation %s", obj.Name())
	default:
		return readCustomRelation(pkg, named, ops)
	}
}

func readTableConflict(pkg *Package, lit *ast.CompositeLit) declRelation {
	var pairs map[[2]string]bool
	keyed := false // Key nil = SingleKey: one scope, unkeyed conflicts
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return declUnreadable("positional TableConflict literal")
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Pairs":
			p, ok := readPairsExpr(pkg, kv.Value)
			if !ok {
				return declUnreadable("TableConflict.Pairs is not a literal pair table")
			}
			pairs = p
		case "Key":
			k, ok := readKeyFunc(pkg, kv.Value, false)
			if !ok {
				return declUnreadable("TableConflict.Key is not a recognised key function")
			}
			keyed = k
		case "Refine":
			// Step granularity only; ignored at op granularity.
		}
	}
	out := map[[2]string]PairVerdict{}
	for p := range pairs {
		out[p] = PairVerdict{Conflict: true, Keyed: keyed}
	}
	return declRelation{ok: true, pairs: out}
}

// readKeyFunc classifies a KeyFunc expression: FirstArgKey keys conflicts
// on (arg0, arg0); SingleKey and nil put everything in one scope
// (defaultFirstArg selects RWTable's nil default).
func readKeyFunc(pkg *Package, e ast.Expr, defaultFirstArg bool) (keyed, ok bool) {
	e = ast.Unparen(e)
	if id, isIdent := e.(*ast.Ident); isIdent && id.Name == "nil" {
		return defaultFirstArg, true
	}
	var id *ast.Ident
	switch f := e.(type) {
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.Ident:
		id = f
	default:
		return false, false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/core") {
		return false, false
	}
	switch obj.Name() {
	case "FirstArgKey":
		return true, true
	case "SingleKey":
		return false, true
	}
	return false, false
}

// readPairsExpr reads a ConflictPairs/SymmetricPairs call or a map literal
// of [2]string pairs.
func readPairsExpr(pkg *Package, e ast.Expr) (map[[2]string]bool, bool) {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	symmetric := false
	switch calleeName(call) {
	case "ConflictPairs":
	case "SymmetricPairs":
		symmetric = true
	default:
		return nil, false
	}
	if !isCorePkgCall(pkg, call) {
		return nil, false
	}
	out := map[[2]string]bool{}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok || len(lit.Elts) != 2 {
			return nil, false
		}
		var pair [2]string
		for i, el := range lit.Elts {
			s, ok := stringConst(pkg, el)
			if !ok {
				return nil, false
			}
			pair[i] = s
		}
		out[pair] = true
		if symmetric {
			out[[2]string{pair[1], pair[0]}] = true
		}
	}
	return out, true
}

func stringConst(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func stringSliceLit(pkg *Package, e ast.Expr) ([]string, bool) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil, false
	}
	var out []string
	for _, el := range lit.Elts {
		s, ok := stringConst(pkg, el)
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

// --- custom relations: concrete evaluation of OpConflicts ---

// readCustomRelation evaluates a hand-written relation type's OpConflicts
// method concretely for every ordered pair of operation names. Key
// equality (core.ValueEqual over FirstArgKey) is the one unknown: the body
// is evaluated once under "keys equal" and once under "keys differ", and
// the two booleans classify the pair (true/true = conflict, false/false =
// commute, conflict-only-when-equal = keyed).
func readCustomRelation(pkg *Package, named *types.Named, ops []string) declRelation {
	method := methodDecl(pkg, named, "OpConflicts")
	if method == nil {
		return declUnreadable("relation type %s: OpConflicts not found in package", named.Obj().Name())
	}
	params := method.Type.Params.List
	var invObjs []types.Object
	for _, f := range params {
		for _, n := range f.Names {
			invObjs = append(invObjs, pkg.Info.Defs[n])
		}
	}
	if len(invObjs) != 2 {
		return declUnreadable("relation type %s: OpConflicts does not take two invocations", named.Obj().Name())
	}

	pairs := map[[2]string]PairVerdict{}
	for _, a := range ops {
		for _, b := range ops {
			under := func(keq bool) (bool, bool) {
				ev := &concEval{pkg: pkg, keq: keq, vals: map[types.Object]ccVal{
					invObjs[0]: ccInv{op: a, side: 0},
					invObjs[1]: ccInv{op: b, side: 1},
				}}
				ret, returned := ev.stmts(method.Body.List)
				if !ev.ok() || !returned {
					return false, false
				}
				bv, isBool := ret.(ccBool)
				return bool(bv), isBool
			}
			eq, ok1 := under(true)
			ne, ok2 := under(false)
			if !ok1 || !ok2 {
				return declUnreadable("relation type %s: OpConflicts is beyond the concrete evaluator", named.Obj().Name())
			}
			switch {
			case eq && ne:
				pairs[[2]string{a, b}] = PairVerdict{Conflict: true}
			case eq && !ne:
				pairs[[2]string{a, b}] = PairVerdict{Conflict: true, Keyed: true}
			case !eq && ne:
				// "Conflicts only when the keys differ" — not expressible;
				// conservative.
				pairs[[2]string{a, b}] = PairVerdict{Conflict: true}
			}
		}
	}
	return declRelation{ok: true, pairs: pairs}
}

// methodDecl finds the FuncDecl of named's method in the package (value or
// pointer receiver).
func methodDecl(pkg *Package, named *types.Named, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name || len(fd.Recv.List) != 1 {
				continue
			}
			t := typeOf(pkg, fd.Recv.List[0].Type)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if recv, ok := t.(*types.Named); ok && recv.Obj() == named.Obj() {
				return fd
			}
		}
	}
	return nil
}

// ccVal is a concrete value of the OpConflicts evaluator.
type ccVal interface{}

type ccBool bool
type ccString string

// ccInv is one of the two invocation parameters.
type ccInv struct {
	op   string
	side int
}

// ccArgs is inv.Args; ccKey is FirstArgKey(inv.Op, inv.Args).
type ccArgs struct{ side int }
type ccKey struct{ side int }

// ccFunc is a local closure bound with :=.
type ccFunc struct{ lit *ast.FuncLit }

type concEval struct {
	pkg    *Package
	keq    bool
	vals   map[types.Object]ccVal
	failed bool
}

func (e *concEval) ok() bool { return !e.failed }

func (e *concEval) fail() ccVal {
	e.failed = true
	return nil
}

// stmts executes statements until a return; it reports whether a return
// was taken and its value.
func (e *concEval) stmts(list []ast.Stmt) (ccVal, bool) {
	for _, s := range list {
		if v, returned := e.stmt(s); e.failed || returned {
			return v, returned
		}
	}
	return nil, false
}

func (e *concEval) stmt(s ast.Stmt) (ccVal, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return e.fail(), false
		}
		return e.expr(s.Results[0]), true
	case *ast.AssignStmt:
		if s.Tok != token.DEFINE || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			e.fail()
			return nil, false
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			e.fail()
			return nil, false
		}
		v := e.expr(s.Rhs[0])
		if obj := e.pkg.Info.Defs[id]; obj != nil {
			e.vals[obj] = v
		}
		return nil, false
	case *ast.IfStmt:
		if s.Init != nil {
			if _, ret := e.stmt(s.Init); e.failed || ret {
				return nil, ret
			}
		}
		cond, ok := e.expr(s.Cond).(ccBool)
		if e.failed || !ok {
			e.fail()
			return nil, false
		}
		if cond {
			return e.stmts(s.Body.List)
		}
		if s.Else != nil {
			return e.stmt(s.Else)
		}
		return nil, false
	case *ast.BlockStmt:
		return e.stmts(s.List)
	case *ast.SwitchStmt:
		return e.switchStmt(s)
	case *ast.EmptyStmt:
		return nil, false
	default:
		e.fail()
		return nil, false
	}
}

func (e *concEval) switchStmt(s *ast.SwitchStmt) (ccVal, bool) {
	if s.Init != nil {
		if _, ret := e.stmt(s.Init); e.failed || ret {
			return nil, ret
		}
	}
	var tag ccVal
	if s.Tag != nil {
		tag = e.expr(s.Tag)
		if e.failed {
			return nil, false
		}
	}
	var deflt *ast.CaseClause
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, ce := range cc.List {
			v := e.expr(ce)
			if e.failed {
				return nil, false
			}
			match := false
			if s.Tag == nil {
				b, ok := v.(ccBool)
				match = ok && bool(b)
			} else {
				match = v == tag
			}
			if match {
				return e.stmts(cc.Body)
			}
		}
	}
	if deflt != nil {
		return e.stmts(deflt.Body)
	}
	return nil, false
}

func (e *concEval) expr(x ast.Expr) ccVal {
	if e.failed {
		return nil
	}
	x = ast.Unparen(x)
	if tv, ok := e.pkg.Info.Types[x]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.String:
			return ccString(constant.StringVal(tv.Value))
		case constant.Bool:
			return ccBool(constant.BoolVal(tv.Value))
		}
	}
	switch x := x.(type) {
	case *ast.Ident:
		if obj := e.pkg.Info.Uses[x]; obj != nil {
			if v, ok := e.vals[obj]; ok {
				return v
			}
		}
		return e.fail()
	case *ast.FuncLit:
		return ccFunc{lit: x}
	case *ast.SelectorExpr:
		recv := e.expr(x.X)
		inv, ok := recv.(ccInv)
		if !ok {
			return e.fail()
		}
		switch x.Sel.Name {
		case "Op":
			return ccString(inv.op)
		case "Args":
			return ccArgs{side: inv.side}
		}
		return e.fail()
	case *ast.UnaryExpr:
		if x.Op != token.NOT {
			return e.fail()
		}
		b, ok := e.expr(x.X).(ccBool)
		if !ok {
			return e.fail()
		}
		return !b
	case *ast.BinaryExpr:
		return e.binary(x)
	case *ast.CallExpr:
		return e.call(x)
	}
	return e.fail()
}

func (e *concEval) binary(x *ast.BinaryExpr) ccVal {
	switch x.Op {
	case token.LAND:
		l, ok := e.expr(x.X).(ccBool)
		if !ok {
			return e.fail()
		}
		if !l {
			return ccBool(false)
		}
		r, ok := e.expr(x.Y).(ccBool)
		if !ok {
			return e.fail()
		}
		return r
	case token.LOR:
		l, ok := e.expr(x.X).(ccBool)
		if !ok {
			return e.fail()
		}
		if l {
			return ccBool(true)
		}
		r, ok := e.expr(x.Y).(ccBool)
		if !ok {
			return e.fail()
		}
		return r
	case token.EQL, token.NEQ:
		l := e.expr(x.X)
		r := e.expr(x.Y)
		if e.failed {
			return nil
		}
		eq, ok := e.equal(l, r)
		if !ok {
			return e.fail()
		}
		if x.Op == token.NEQ {
			return ccBool(!eq)
		}
		return ccBool(eq)
	}
	return e.fail()
}

func (e *concEval) equal(l, r ccVal) (bool, bool) {
	switch lv := l.(type) {
	case ccString:
		rv, ok := r.(ccString)
		return ok && lv == rv, ok
	case ccBool:
		rv, ok := r.(ccBool)
		return ok && lv == rv, ok
	case ccKey:
		rv, ok := r.(ccKey)
		if !ok {
			return false, false
		}
		if lv.side == rv.side {
			return true, true
		}
		return e.keq, true
	}
	return false, false
}

func (e *concEval) call(x *ast.CallExpr) ccVal {
	// Local closure?
	if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
		if obj := e.pkg.Info.Uses[id]; obj != nil {
			if f, ok := e.vals[obj].(ccFunc); ok {
				return e.closureCall(x, f)
			}
		}
	}
	if !isCorePkgCall(e.pkg, x) {
		return e.fail()
	}
	switch calleeName(x) {
	case "FirstArgKey":
		if len(x.Args) != 2 {
			return e.fail()
		}
		args, ok := e.expr(x.Args[1]).(ccArgs)
		if !ok {
			return e.fail()
		}
		return ccKey{side: args.side}
	case "ValueEqual":
		if len(x.Args) != 2 {
			return e.fail()
		}
		l := e.expr(x.Args[0])
		r := e.expr(x.Args[1])
		if e.failed {
			return nil
		}
		eq, ok := e.equal(l, r)
		if !ok {
			return e.fail()
		}
		return ccBool(eq)
	}
	return e.fail()
}

func (e *concEval) closureCall(x *ast.CallExpr, f ccFunc) ccVal {
	var params []types.Object
	for _, fl := range f.lit.Type.Params.List {
		for _, n := range fl.Names {
			params = append(params, e.pkg.Info.Defs[n])
		}
	}
	if len(params) != len(x.Args) {
		return e.fail()
	}
	saved := make(map[types.Object]ccVal, len(params))
	for i, p := range params {
		saved[p] = e.vals[p]
		e.vals[p] = e.expr(x.Args[i])
	}
	if e.failed {
		return nil
	}
	ret, returned := e.stmts(f.lit.Body.List)
	for p, v := range saved {
		if v == nil {
			delete(e.vals, p)
		} else {
			e.vals[p] = v
		}
	}
	if e.failed || !returned {
		return e.fail()
	}
	return ret
}
