package analysis

import (
	"strconv"
	"strings"
)

// NoInternal enforces the façade boundary: programs under cmd/ and
// examples/ consume the public objectbase package, never the concurrency
// internals directly. (Support packages such as internal/bench or
// internal/workload are deliberately not guarded — the boundary protects
// the engine's invariants, not code reuse.)
var NoInternal = &Analyzer{
	Name: "nointernal",
	Doc: "forbid internal/engine, internal/cc, internal/lock and internal/shard " +
		"imports under cmd/ and examples/: binaries and examples must go through " +
		"the public façade so engine-internal invariants stay refactorable",
	Run: runNoInternal,
}

// guardedInternal lists the packages behind the façade.
var guardedInternal = []string{
	"internal/engine",
	"internal/cc",
	"internal/lock",
	"internal/shard",
}

func runNoInternal(pass *Pass) error {
	pkg := pass.Pkg
	rel := relPath(pkg)
	if !strings.HasPrefix(rel, "cmd/") && !strings.HasPrefix(rel, "examples/") &&
		rel != "cmd" && rel != "examples" {
		return nil
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, g := range guardedInternal {
				guarded := pkg.Module + "/" + g
				if path == guarded || strings.HasPrefix(path, guarded+"/") {
					pass.Reportf(imp.Pos(),
						"%s imports %s: cmd/ and examples/ must use the public façade (package %s)",
						rel, path, pkg.Module)
				}
			}
		}
	}
	return nil
}
