// Package analysis is the repository's static-analysis suite: a set of
// custom analyzers that machine-check the concurrency invariants the
// engine's correctness argument rests on — the stripe → owner → waits
// lock order and directory-ordered shard-gate acquisition (lockorder,
// cross-validated at runtime by the `ordercheck` build tag), the
// version-publication discipline of the MVCC fast path (pubdiscipline),
// context-aware blocking on engine paths (ctxwait), the public-façade
// import boundary (nointernal), observer/read-only completeness
// (observercomplete), and flight-recorder span balance on the
// instrumented hot paths (spanbalance).
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, and an
// analysistest-style golden-fixture runner) but is built on the standard
// library alone — go/parser, go/types, go/build — so the module keeps
// its zero-dependency property. If x/tools ever becomes a dependency,
// each analyzer's Run is a near drop-in for an analysis.Analyzer.
//
// Suppression: a diagnostic can be acknowledged in source with a
//
//	//oblint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// comment on the offending line or the line directly above it. The
// justification is mandatory culture, not mandatory syntax; reviews
// treat a bare allow like an unexplained nolint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, run over one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in output and in //oblint:allow
	// comments.
	Name string
	// Doc is the one-paragraph description printed by `oblint -help`.
	Doc string
	// Run reports the analyzer's diagnostics for one package via
	// Pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Report records one diagnostic. Suppressed diagnostics
	// (//oblint:allow) are filtered by the driver, not by Report.
	Report func(Diagnostic)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// attaches the analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Finding is a resolved diagnostic with its printable position.
type Finding struct {
	Position token.Position
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// allowRe matches suppression comments; see the package comment.
var allowRe = regexp.MustCompile(`^//\s*oblint:allow\s+([A-Za-z0-9_,\s]+?)(?:\s+--.*)?$`)

// allowSite is one analyzer name acknowledged by one //oblint:allow
// comment: it suppresses that analyzer's diagnostics on the comment's own
// line and the line directly below, and records whether it ever did (a
// site that never fires is stale — see stalesuppress).
type allowSite struct {
	name string
	pos  token.Pos      // the comment, for stalesuppress diagnostics
	loc  token.Position // resolved comment position
	used bool
}

// allowIndex indexes //oblint:allow comments: analyzer name -> file ->
// line -> site.
type allowIndex struct {
	byName map[string]map[string]map[int]*allowSite
	sites  []*allowSite // in source order
}

func collectAllows(fset *token.FileSet, files []*ast.File) *allowIndex {
	out := &allowIndex{byName: make(map[string]map[string]map[int]*allowSite)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					site := &allowSite{name: name, pos: c.Pos(), loc: pos}
					out.sites = append(out.sites, site)
					byFile := out.byName[name]
					if byFile == nil {
						byFile = make(map[string]map[int]*allowSite)
						out.byName[name] = byFile
					}
					lines := byFile[pos.Filename]
					if lines == nil {
						lines = make(map[int]*allowSite)
						byFile[pos.Filename] = lines
					}
					lines[pos.Line] = site
					lines[pos.Line+1] = site
				}
			}
		}
	}
	return out
}

// suppressed reports whether a diagnostic of the named analyzer at pos is
// acknowledged, marking the acknowledging site live.
func (a *allowIndex) suppressed(name string, pos token.Position) bool {
	site := a.byName[name][pos.Filename][pos.Line]
	if site == nil {
		return false
	}
	site.used = true
	return true
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Packages with load errors contribute an
// error instead of findings.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				position := pkg.Fset.Position(d.Pos)
				if allows.suppressed(a.Name, position) {
					continue
				}
				findings = append(findings, Finding{Position: position, Message: d.Message, Analyzer: a.Name})
			}
		}
		// Stale-suppression pass: an allow whose analyzer ran in this
		// invocation and suppressed nothing is dead weight (or hides a fix
		// that already landed) and is itself reported. Allows naming
		// analyzers outside this run are left alone — a partial run cannot
		// judge them. Stale findings honour their own allows.
		if ran[StaleSuppress.Name] {
			for _, site := range allows.sites {
				if site.used || site.name == StaleSuppress.Name || !ran[site.name] {
					continue
				}
				if allows.suppressed(StaleSuppress.Name, site.loc) {
					continue
				}
				findings = append(findings, Finding{
					Position: site.loc,
					Message: fmt.Sprintf("stale //oblint:allow %s: no %s diagnostic fires on this line",
						site.name, site.name),
					Analyzer: StaleSuppress.Name,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// All returns the full analyzer suite in catalogue order.
func All() []*Analyzer {
	return []*Analyzer{
		LockOrder,
		PubDiscipline,
		CtxWait,
		NoInternal,
		ObserverComplete,
		SpanBalance,
		ConflictSound,
		StaleSuppress,
	}
}

// StaleSuppress reports //oblint:allow comments that acknowledge nothing:
// the named analyzer ran over the file and no diagnostic of it fired on
// the comment's lines. Implemented in the driver (Run), because liveness
// is only known after suppression filtering; the analyzer itself exists so
// the check can be named, listed, and allowed like any other.
var StaleSuppress = &Analyzer{
	Name: "stalesuppress",
	Doc: "report //oblint:allow comments whose analyzer fires no diagnostic on the " +
		"acknowledged lines (stale suppressions); checked by the driver after all " +
		"suppression filtering, only for analyzers included in the run",
	Run: func(*Pass) error { return nil },
}
