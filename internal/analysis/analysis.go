// Package analysis is the repository's static-analysis suite: a set of
// custom analyzers that machine-check the concurrency invariants the
// engine's correctness argument rests on — the stripe → owner → waits
// lock order and directory-ordered shard-gate acquisition (lockorder,
// cross-validated at runtime by the `ordercheck` build tag), the
// version-publication discipline of the MVCC fast path (pubdiscipline),
// context-aware blocking on engine paths (ctxwait), the public-façade
// import boundary (nointernal), observer/read-only completeness
// (observercomplete), and flight-recorder span balance on the
// instrumented hot paths (spanbalance).
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, and an
// analysistest-style golden-fixture runner) but is built on the standard
// library alone — go/parser, go/types, go/build — so the module keeps
// its zero-dependency property. If x/tools ever becomes a dependency,
// each analyzer's Run is a near drop-in for an analysis.Analyzer.
//
// Suppression: a diagnostic can be acknowledged in source with a
//
//	//oblint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// comment on the offending line or the line directly above it. The
// justification is mandatory culture, not mandatory syntax; reviews
// treat a bare allow like an unexplained nolint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, run over one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in output and in //oblint:allow
	// comments.
	Name string
	// Doc is the one-paragraph description printed by `oblint -help`.
	Doc string
	// Run reports the analyzer's diagnostics for one package via
	// Pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Report records one diagnostic. Suppressed diagnostics
	// (//oblint:allow) are filtered by the driver, not by Report.
	Report func(Diagnostic)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// attaches the analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Finding is a resolved diagnostic with its printable position.
type Finding struct {
	Position token.Position
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// allowRe matches suppression comments; see the package comment.
var allowRe = regexp.MustCompile(`^//\s*oblint:allow\s+([A-Za-z0-9_,\s]+?)(?:\s+--.*)?$`)

// allowedLines indexes //oblint:allow comments: analyzer name -> file ->
// set of line numbers on which that analyzer's diagnostics are
// acknowledged (the comment's own line and the line below it).
type allowedLines map[string]map[string]map[int]bool

func collectAllows(fset *token.FileSet, files []*ast.File) allowedLines {
	out := make(allowedLines)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					byFile := out[name]
					if byFile == nil {
						byFile = make(map[string]map[int]bool)
						out[name] = byFile
					}
					lines := byFile[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						byFile[pos.Filename] = lines
					}
					lines[pos.Line] = true
					lines[pos.Line+1] = true
				}
			}
		}
	}
	return out
}

func (a allowedLines) suppressed(name string, pos token.Position) bool {
	byFile := a[name]
	if byFile == nil {
		return false
	}
	return byFile[pos.Filename][pos.Line]
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Packages with load errors contribute an
// error instead of findings.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				position := pkg.Fset.Position(d.Pos)
				if allows.suppressed(a.Name, position) {
					continue
				}
				findings = append(findings, Finding{Position: position, Message: d.Message, Analyzer: a.Name})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// All returns the full analyzer suite in catalogue order.
func All() []*Analyzer {
	return []*Analyzer{
		LockOrder,
		PubDiscipline,
		CtxWait,
		NoInternal,
		ObserverComplete,
		SpanBalance,
	}
}
