package analysis

import "testing"

// Each analyzer's golden fixtures live under testdata/<name>/src as a
// fake "objectbase" module mirroring the real tree's package layout,
// with at least one flagged and one permitted pattern per rule.

func TestLockOrderFixtures(t *testing.T)        { RunFixture(t, LockOrder) }
func TestPubDisciplineFixtures(t *testing.T)    { RunFixture(t, PubDiscipline) }
func TestCtxWaitFixtures(t *testing.T)          { RunFixture(t, CtxWait) }
func TestNoInternalFixtures(t *testing.T)       { RunFixture(t, NoInternal) }
func TestObserverCompleteFixtures(t *testing.T) { RunFixture(t, ObserverComplete) }
func TestSpanBalanceFixtures(t *testing.T)      { RunFixture(t, SpanBalance) }
func TestConflictSoundFixtures(t *testing.T)    { RunFixture(t, ConflictSound) }

// stalesuppress only judges allows of analyzers in the same run, so its
// fixture runs together with conflictsound (the analyzer its allows name).
func TestStaleSuppressFixtures(t *testing.T) {
	RunFixtureSuite(t, StaleSuppress.Name, []*Analyzer{ConflictSound, StaleSuppress})
}

// TestSuiteOnRealTree pins the acceptance bar in-process: the full suite
// over the real module must come back clean (the same check CI enforces
// via cmd/oblint).
func TestSuiteOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load(LoadConfig{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := Run(All(), pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding on the real tree: %s", f)
	}
}
