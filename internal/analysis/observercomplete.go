package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObserverComplete guards the history-observation surface. First, every
// concrete HistoryObserver must implement the full method set — a type
// that handles most events but not, say, AddViewStep compiles fine as
// long as nobody assigns it to the interface in the analyzed package, and
// then drops snapshot reads from the record at runtime. Second, an
// Operation registered ReadOnly must actually be read-only: the
// schedulers and the snapshot fast path route ReadOnly operations around
// locking and undo logging, so a mutating Apply breaks serializability
// silently (this complements the executable core.VerifyReadOnlySoundness
// spot-check with a whole-tree static pass).
var ObserverComplete = &Analyzer{
	Name: "observercomplete",
	Doc: "every HistoryObserver implementation must cover the full method " +
		"set (incl. AddViewStep), and core.Operation literals declared " +
		"ReadOnly must not mutate state or return an undo in Apply",
	Run: runObserverComplete,
}

// observerMethods is the full engine.HistoryObserver method set, in
// interface declaration order.
var observerMethods = []string{
	"AddObject",
	"AddExec",
	"StartMessage",
	"EndMessage",
	"AddStep",
	"AddViewStep",
	"MarkAborted",
	"Snapshot",
	"EventStats",
}

// observerThreshold is how many observer methods a type must share before
// it is presumed to be an attempted HistoryObserver implementation.
const observerThreshold = 3

func runObserverComplete(pass *Pass) error {
	checkObserverImpls(pass)
	checkReadOnlyOps(pass)
	return nil
}

// checkObserverImpls flags package-level types that implement enough of
// the observer surface to clearly be observers, but not all of it.
func checkObserverImpls(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		var missing []string
		have := 0
		for _, m := range observerMethods {
			if ms.Lookup(pass.Pkg.Types, m) != nil {
				have++
			} else {
				missing = append(missing, m)
			}
		}
		if have >= observerThreshold && len(missing) > 0 {
			pass.Reportf(tn.Pos(),
				"%s implements %d HistoryObserver methods but is missing %s: partial observers silently drop events",
				name, have, strings.Join(missing, ", "))
		}
	}
}

// checkReadOnlyOps flags ReadOnly core.Operation literals whose Apply
// function literal writes through the state parameter or returns an undo.
func checkReadOnlyOps(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isOperationLit(info, lit) {
				return true
			}
			var readOnly bool
			var apply *ast.FuncLit
			var name string
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "ReadOnly":
					if id, ok := kv.Value.(*ast.Ident); ok && id.Name == "true" {
						readOnly = true
					}
				case "Apply":
					if fl, ok := kv.Value.(*ast.FuncLit); ok {
						apply = fl
					}
				case "Name":
					if bl, ok := kv.Value.(*ast.BasicLit); ok {
						name = bl.Value
					}
				}
			}
			if readOnly && apply != nil {
				checkReadOnlyApply(pass, name, apply)
			}
			return true
		})
	}
}

// isOperationLit reports whether lit's type is core.Operation.
func isOperationLit(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Operation" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// checkReadOnlyApply flags writes through the state parameter and undo
// returns inside a ReadOnly Apply.
func checkReadOnlyApply(pass *Pass, opName string, apply *ast.FuncLit) {
	info := pass.Pkg.Info
	params := apply.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return
	}
	stateObj := info.Defs[params.List[0].Names[0]]
	if stateObj == nil {
		return
	}
	label := "operation"
	if opName != "" {
		label = "operation " + opName
	}
	rootedInState := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.Ident:
				return info.Uses[x] == stateObj
			default:
				return false
			}
		}
	}
	ast.Inspect(apply.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootedInState(lhs) {
					pass.Reportf(lhs.Pos(),
						"ReadOnly %s writes state in Apply: read-only ops bypass locking and undo, so this write is unserialized", label)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" &&
				len(n.Args) > 0 && rootedInState(n.Args[0]) {
				pass.Reportf(n.Pos(),
					"ReadOnly %s deletes state in Apply: read-only ops bypass locking and undo, so this write is unserialized", label)
			}
		case *ast.ReturnStmt:
			if len(n.Results) >= 2 {
				if id, ok := ast.Unparen(n.Results[1]).(*ast.Ident); !ok || id.Name != "nil" {
					pass.Reportf(n.Results[1].Pos(),
						"ReadOnly %s returns a non-nil undo: an operation that needs undo is not read-only", label)
				}
			}
		}
		return true
	})
}
