package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// SpanBalance checks that the flight-recorder spans opened on the
// instrumented hot paths are balanced: every span a function binds with
// tr.StartSpan must reach End or EndWith on every path that leaves the
// function — directly before each return, or through a defer. A leaked
// span is not a resource bug (spans hold no locks and the ring reclaims
// slots), but it silently corrupts the phase accounting: the exclusive
// phases are trusted to partition each attempt's wall time, and a span
// that never ends records nothing, so the reconciliation invariant the
// trace tests check drifts with no error anywhere.
//
// The check is a source-order flow analysis in the lockorder style, not
// a full CFG: each statement list is scanned with the set of open spans;
// branches (if/switch/select) fork the set and the after-state is the
// union of the paths that fall through; a defer'd End/EndWith (directly
// or inside a deferred function literal) absolves the variable for the
// rest of the function; return statements — and falling off the end of
// the function — report whatever is still open. Function literals are
// independent scopes: they run at some other time, so they neither close
// the enclosing function's spans nor leak their own into it.
//
// Passing a span to another function — as a call argument or a return
// value — transfers ownership: the callee (or the caller) is now the one
// that must End it, so the variable leaves the open set (the engine's
// retry loop opens the admit span and hands it to runOnce this way).
// Symmetrically, a span received as a parameter is never tracked, so the
// callee's Ends are simply not the analyzer's concern.
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc: "tracer spans on engine/lock/shard hot paths must End/EndWith on every return path (defer-aware); " +
		"a leaked span silently breaks the phase-partition invariant of the flight recorder",
	Run: runSpanBalance,
}

func runSpanBalance(pass *Pass) error {
	if !pathIs(pass.Pkg, "internal/engine", "internal/lock", "internal/shard") {
		return nil
	}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpanBody(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkSpanBody analyses one function body. Nested function literals are
// peeled off first and analysed as bodies of their own; the structural
// scan below never descends into them (a literal's End call runs when
// the literal runs, not where it is written).
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	var lits []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl.Body)
			return false
		}
		return true
	})
	s := &spanScan{pass: pass, deferClosed: make(map[string]bool)}
	out, terminated := s.stmts(body.List, spanSet{})
	if !terminated {
		s.reportOpen(body.Rbrace, out)
	}
	for _, lit := range lits {
		checkSpanBody(pass, lit)
	}
}

// spanSet maps an open span variable to the position of the StartSpan
// that opened it.
type spanSet map[string]token.Pos

func (o spanSet) clone() spanSet {
	c := make(spanSet, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

// union folds other into o (keeping o's position on collision) and
// returns o.
func (o spanSet) union(other spanSet) spanSet {
	for k, v := range other {
		if _, ok := o[k]; !ok {
			o[k] = v
		}
	}
	return o
}

// spanScan carries one function body's analysis state. deferClosed is
// filled in source order: a defer absolves a span only for the code that
// runs after the defer statement, which is exactly the code scanned
// after it.
type spanScan struct {
	pass        *Pass
	deferClosed map[string]bool
}

func (s *spanScan) line(pos token.Pos) int { return s.pass.Fset().Position(pos).Line }

// reportOpen flags every open, non-defer-closed span at a point where
// control leaves the function.
func (s *spanScan) reportOpen(pos token.Pos, open spanSet) {
	names := make([]string, 0, len(open))
	for n := range open {
		if !s.deferClosed[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		s.pass.Reportf(pos, "span %q opened at line %d may leave the function without End/EndWith", n, s.line(open[n]))
	}
}

// stmts scans a statement list with the given open-span set. It returns
// the set live after the list and whether every path through the list
// left the enclosing scope (return, or break/continue/goto).
func (s *spanScan) stmts(list []ast.Stmt, open spanSet) (spanSet, bool) {
	for _, st := range list {
		var term bool
		open, term = s.stmt(st, open)
		if term {
			return open, true
		}
	}
	return open, false
}

// stmt scans one statement. The returned set replaces the caller's; the
// bool reports that control does not fall through to the next statement.
func (s *spanScan) stmt(stmt ast.Stmt, open spanSet) (spanSet, bool) {
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			transferArgSpans(rhs, open)
		}
		// StartSpan has one result, so only the n:n form can bind one.
		if len(st.Lhs) == len(st.Rhs) {
			for i, rhs := range st.Rhs {
				if !isStartSpanCall(rhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if pos, already := open[id.Name]; already && !s.deferClosed[id.Name] {
					s.pass.Reportf(rhs.Pos(), "span %q is restarted before the span opened at line %d was ended", id.Name, s.line(pos))
				}
				open[id.Name] = rhs.Pos()
			}
		}

	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, v := range vs.Values {
					if isStartSpanCall(v) && vs.Names[i].Name != "_" {
						open[vs.Names[i].Name] = v.Pos()
					}
				}
			}
		}

	case *ast.ExprStmt:
		if name, ok := spanCloseTarget(st.X); ok {
			delete(open, name)
		} else {
			transferArgSpans(st.X, open)
		}

	case *ast.GoStmt:
		transferArgSpans(st.Call, open)

	case *ast.DeferStmt:
		// A tracked span passed to any deferred call is absolved like a
		// deferred End: the callee owns it and runs at function exit.
		for _, a := range st.Call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if _, tracked := open[id.Name]; tracked {
					s.deferClosed[id.Name] = true
				}
			}
		}
		if name, ok := spanCloseTarget(st.Call); ok {
			s.deferClosed[name] = true
		} else if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ... sp.End() ... }(): the literal runs at
			// function exit, so any close inside it absolves the span.
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if ce, ok := n.(*ast.CallExpr); ok {
					if name, ok := spanCloseTarget(ce); ok {
						s.deferClosed[name] = true
					}
				}
				return true
			})
		}

	case *ast.ReturnStmt:
		// Returning a span (or feeding it into a call in the result list)
		// is an ownership transfer, not a leak.
		for _, r := range st.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok {
				delete(open, id.Name)
			}
			transferArgSpans(r, open)
		}
		s.reportOpen(st.Pos(), open)
		return open, true

	case *ast.BranchStmt:
		// break/continue/goto end this path without leaving the function;
		// treating them as terminators keeps the linear scan sound (their
		// target's state is the loop/switch merge handled by the caller).
		return open, true

	case *ast.BlockStmt:
		return s.stmts(st.List, open)

	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, open)

	case *ast.IfStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		thenOut, thenTerm := s.stmts(st.Body.List, open.clone())
		elseOut, elseTerm := open, false
		if st.Else != nil {
			elseOut, elseTerm = s.stmt(st.Else, open.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return open, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		}
		return thenOut.union(elseOut), false

	case *ast.ForStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		bodyOut, _ := s.stmts(st.Body.List, open.clone())
		// The body may run zero times, so the after-state is the union of
		// skipping the loop and one pass through it.
		return open.union(bodyOut), false

	case *ast.RangeStmt:
		bodyOut, _ := s.stmts(st.Body.List, open.clone())
		return open.union(bodyOut), false

	case *ast.SwitchStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		bodies, hasDefault := caseBodies(st.Body)
		return s.branches(bodies, hasDefault, open)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		open, _ = s.stmt(st.Assign, open)
		bodies, hasDefault := caseBodies(st.Body)
		return s.branches(bodies, hasDefault, open)

	case *ast.SelectStmt:
		// A select always runs exactly one of its cases (a default case
		// is just another case), so unlike a switch there is no
		// fall-past-every-case path.
		var bodies [][]ast.Stmt
		for _, c := range st.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
		return s.branches(bodies, true, open)
	}
	return open, false
}

// branches merges the paths of a switch or select: the after-state is
// the union of every non-terminated case body's out-state, plus the
// incoming state when the construct is not exhaustive (a switch without
// default). It is terminated only when exhaustive and every case is.
func (s *spanScan) branches(bodies [][]ast.Stmt, exhaustive bool, open spanSet) (spanSet, bool) {
	if len(bodies) == 0 {
		return open, false
	}
	out := spanSet{}
	allTerm := true
	for _, b := range bodies {
		bOut, bTerm := s.stmts(b, open.clone())
		if !bTerm {
			out = out.union(bOut)
			allTerm = false
		}
	}
	if !exhaustive {
		out = out.union(open)
		allTerm = false
	}
	if allTerm {
		return open, true
	}
	return out, false
}

// caseBodies collects a switch body's clause statement lists and whether
// one of them is the default clause.
func caseBodies(body *ast.BlockStmt) ([][]ast.Stmt, bool) {
	var bodies [][]ast.Stmt
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		bodies = append(bodies, cc.Body)
	}
	return bodies, hasDefault
}

// transferArgSpans deletes from open every tracked span handed to a call
// as a plain-identifier argument anywhere inside e: the callee now owns
// the duty to End it. Method calls *on* a span (sp.Next(...)) keep it
// open — the receiver is not an argument. Function literals are skipped;
// they are scopes of their own.
func transferArgSpans(e ast.Expr, open spanSet) {
	if e == nil || len(open) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			for _, a := range n.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok {
					delete(open, id.Name)
				}
			}
		}
		return true
	})
}

// isStartSpanCall reports whether e is a call whose terminal selector is
// StartSpan (tr.StartSpan, en.tr.StartSpan, ...).
func isStartSpanCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && calleeName(call) == "StartSpan"
}

// spanCloseTarget matches x.End() / x.EndWith(...) on a plain identifier
// and returns x's name. Untracked names are harmless: closing deletes
// from the open set only.
func spanCloseTarget(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndWith") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}
