// Package engine is a fixture of blocking shapes on an engine path.
package engine

import (
	"context"
	"time"
)

// retrySleep backs off without a cancellation path.
func retrySleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep on an engine path"
}

// bareRecv blocks on a channel with no way out.
func bareRecv(ch chan int) int {
	return <-ch // want "bare channel receive"
}

// bareSend blocks publishing with no way out.
func bareSend(ch chan int) {
	ch <- 1 // want "bare channel send"
}

// deafSelect blocks with no cancellation case.
func deafSelect(a, b chan int) int {
	select { // want "blocking select has no cancellation case"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// ctxSelect waits with ctx.Done: legal.
func ctxSelect(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// doneSelect waits with an abandon signal: legal.
func doneSelect(ch chan int, done <-chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}

// pollSelect has a default and never blocks: legal.
func pollSelect(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// reaper documents its unconditional wait: suppressed, legal.
func reaper(acquired chan struct{}) {
	//oblint:allow ctxwait -- fixture: the reaper must outwait the acquisition it abandons
	<-acquired
}
