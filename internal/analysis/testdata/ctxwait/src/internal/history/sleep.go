// Package history sits outside the engine paths: ctxwait does not apply
// here, so an uncancellable sleep is (grudgingly) legal.
package history

import "time"

func Throttle() {
	time.Sleep(time.Millisecond)
}
