// Package core is a fixture mirror of the operation surface the
// observercomplete read-only check keys on.
package core

type Value any

type State map[string]Value

type UndoFunc func(State)

type ApplyFunc func(State, []Value) (Value, UndoFunc, error)

type Operation struct {
	Name     string
	ReadOnly bool
	Apply    ApplyFunc
}
