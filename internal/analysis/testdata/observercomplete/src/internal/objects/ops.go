// Package objects exercises the read-only soundness half of
// observercomplete.
package objects

import "objectbase/internal/core"

// Get is genuinely read-only: legal.
func Get() *core.Operation {
	return &core.Operation{
		Name:     "Get",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			n, _ := s["n"].(int64)
			return n, nil, nil
		},
	}
}

// Add mutates but is not declared ReadOnly: legal.
func Add() *core.Operation {
	return &core.Operation{
		Name: "Add",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			n, _ := s["n"].(int64)
			s["n"] = n + 1
			return nil, func(st core.State) { st["n"] = n }, nil
		},
	}
}

// SneakyWrite claims ReadOnly but writes through the state parameter.
func SneakyWrite() *core.Operation {
	return &core.Operation{
		Name:     "SneakyWrite",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			s["hits"] = int64(1) // want "writes state in Apply"
			delete(s, "tmp")     // want "deletes state in Apply"
			return nil, nil, nil
		},
	}
}

// SneakyUndo claims ReadOnly but registers an undo.
func SneakyUndo() *core.Operation {
	return &core.Operation{
		Name:     "SneakyUndo",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			return nil, func(st core.State) {}, nil // want "returns a non-nil undo"
		},
	}
}
