// Package obs exercises the observer-completeness check. Signatures are
// irrelevant to the check (the interface lives elsewhere); coverage of
// the method-name surface is what is being tested.
package obs

// complete implements the full observer surface: legal.
type complete struct{}

func (complete) AddObject()    {}
func (complete) AddExec()      {}
func (complete) StartMessage() {}
func (complete) EndMessage()   {}
func (complete) AddStep()      {}
func (complete) AddViewStep()  {}
func (complete) MarkAborted()  {}
func (complete) Snapshot()     {}
func (complete) EventStats()   {}

// partial covers most of the surface but drops snapshot reads and stats.
type partial struct{} // want "partial implements 7 HistoryObserver methods but is missing AddViewStep, EventStats"

func (partial) AddObject()    {}
func (partial) AddExec()      {}
func (partial) StartMessage() {}
func (partial) EndMessage()   {}
func (partial) AddStep()      {}
func (partial) MarkAborted()  {}
func (partial) Snapshot()     {}

// unrelated shares a couple of method names by coincidence: legal.
type unrelated struct{}

func (unrelated) AddObject() {}
func (unrelated) Snapshot()  {}
