package objects

import "objectbase/internal/core"

// Coarse declares TotalConflict over a pair of read-only operations; the
// conflictsound diagnostic is acknowledged, so that allow is live and must
// NOT be reported stale.
func Coarse() *core.Schema {
	size := &core.Operation{
		Name:     "Size",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			return s["n"], nil, nil
		},
	}
	rel := &core.TotalConflict{}
	//oblint:allow conflictsound -- deliberately coarse; this allow is live
	return core.NewSchema("coarse", func() core.State { return core.State{} }, rel, size)
}

// No conflictsound diagnostic fires below: the allow is stale.
//
//oblint:allow conflictsound -- nothing to acknowledge here // want "stale //oblint:allow conflictsound: no conflictsound diagnostic fires"
var keepStale = 1

// Allows naming analyzers outside the current run are not judged — a
// partial run cannot tell whether they are live.
//
//oblint:allow lockorder -- lockorder is not part of this fixture run
var keepForeign = 2

// A stale allow can itself be acknowledged with a stalesuppress allow.
//
//oblint:allow stalesuppress -- the allow below is kept for documentation
//oblint:allow conflictsound -- stale, but acknowledged above
var keepAcked = 3
