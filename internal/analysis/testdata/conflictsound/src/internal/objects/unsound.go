package objects

import "objectbase/internal/core"

// Unsound declares a table that omits the Put/Put write/write conflict the
// footprints imply.
func Unsound() *core.Schema {
	put := &core.Operation{
		Name: "Put",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			old := s["x"]
			s["x"] = args[0]
			return nil, func(st core.State) { st["x"] = old }, nil
		},
	}
	get := &core.Operation{
		Name:     "Get",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			return s["x"], nil, nil
		},
	}
	rel := &core.TableConflict{
		Pairs: core.SymmetricPairs([2]string{"Put", "Get"}),
	}
	return core.NewSchema("unsound", func() core.State { return core.State{} }, rel, put, get) // want "omits derived conflict Put/Put .*: unsound"
}

// UnsoundKeyed keys Put/Put per first argument, but the operations address
// a fixed variable: equal-key scoping misses the conflict on distinct keys.
func UnsoundKeyed() *core.Schema {
	put := &core.Operation{
		Name: "Put",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			old := s["x"]
			s["x"] = args[0]
			return nil, func(st core.State) { st["x"] = old }, nil
		},
	}
	rel := &core.TableConflict{
		Pairs: core.ConflictPairs([2]string{"Put", "Put"}),
		Key:   core.FirstArgKey,
	}
	return core.NewSchema("unsoundkeyed", func() core.State { return core.State{} }, rel, put) // want "keys Put/Put by argument but the derived conflict is unconditional .*: unsound"
}
