package objects

import "objectbase/internal/core"

// Unreadable binds the relation through a helper call the reader cannot
// resolve: the schema cannot be certified at all.
func Unreadable() *core.Schema {
	get := &core.Operation{
		Name:     "Get",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			return s["x"], nil, nil
		},
	}
	rel := makeRel()
	return core.NewSchema("unreadable", func() core.State { return core.State{} }, rel, get) // want "declared conflict relation is not statically certifiable"
}

func makeRel() core.ConflictRelation { return &core.TotalConflict{} }
