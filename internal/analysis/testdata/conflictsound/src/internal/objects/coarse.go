package objects

import "objectbase/internal/core"

// Coarse declares TotalConflict although the read-only Size/Size pair
// provably commutes.
func Coarse() *core.Schema {
	set := &core.Operation{
		Name: "Set",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			old := s["n"]
			s["n"] = args[0]
			return nil, func(st core.State) { st["n"] = old }, nil
		},
	}
	size := &core.Operation{
		Name:     "Size",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			return s["n"], nil, nil
		},
	}
	rel := &core.TotalConflict{}
	return core.NewSchema("coarse", func() core.State { return core.State{} }, rel, set, size) // want "Size/Size provably commute .* but are declared conflicting: over-coarse"
}

// CoarseKeyed conflicts unconditionally although every derived conflict is
// scoped to an equal first argument.
func CoarseKeyed() *core.Schema {
	wr := &core.Operation{
		Name: "Wr",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			name, _ := args[0].(string)
			old := s[name]
			s[name] = args[1]
			return nil, func(st core.State) { st[name] = old }, nil
		},
	}
	rel := &core.TableConflict{
		Pairs: core.ConflictPairs([2]string{"Wr", "Wr"}),
	}
	return core.NewSchema("coarsekeyed", func() core.State { return core.State{} }, rel, wr) // want "Wr/Wr conflict only on equal keys \\(arg0=arg0\\) but are declared conflicting unconditionally: over-coarse"
}
