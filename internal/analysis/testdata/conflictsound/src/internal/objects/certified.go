package objects

import "objectbase/internal/core"

// Certified adopts the generator's own output (generatedConflicts): the
// relation is declared == derived by construction and drift-gated in CI,
// so no pair comparison happens — even though the Loop operation below is
// beyond the abstract interpreter.
func Certified() *core.Schema {
	loop := &core.Operation{
		Name: "Loop",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			n := 0
			for range args {
				n++
			}
			s["n"] = n
			return nil, nil, nil
		},
	}
	rel := core.Refine(generatedConflicts("certified"), func(a, b core.StepInfo) bool { return true })
	return core.NewSchema("certified", func() core.State { return core.State{} }, rel, loop)
}

func generatedConflicts(name string) core.ConflictRelation { return &core.TotalConflict{} }
