package objects

import "objectbase/internal/core"

// ArgAware is clean: the hand-written relation is evaluated concretely and
// matches the derivation exactly — Read/Read commutes, every other pair
// conflicts iff the first arguments are equal.
func ArgAware() *core.Schema {
	read := &core.Operation{
		Name:     "Read",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			name, _ := args[0].(string)
			return s[name], nil, nil
		},
	}
	write := &core.Operation{
		Name: "Write",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			name, _ := args[0].(string)
			old := s[name]
			s[name] = args[1]
			return nil, func(st core.State) { st[name] = old }, nil
		},
	}
	rel := &argRel{}
	return core.NewSchema("argaware", func() core.State { return core.State{} }, rel, read, write)
}

type argRel struct{}

func (argRel) OpConflicts(a, b core.OpInvocation) bool {
	if a.Op == "Read" && b.Op == "Read" {
		return false
	}
	return core.ValueEqual(core.FirstArgKey(a.Op, a.Args), core.FirstArgKey(b.Op, b.Args))
}

func (argRel) StepConflicts(a, b core.StepInfo) bool { return true }
