package objects

import "objectbase/internal/core"

// Allowed is Coarse with the over-coarse declaration acknowledged: the
// allow on the NewSchema call suppresses the diagnostic.
func Allowed() *core.Schema {
	set := &core.Operation{
		Name: "Set",
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			old := s["n"]
			s["n"] = args[0]
			return nil, func(st core.State) { st["n"] = old }, nil
		},
	}
	size := &core.Operation{
		Name:     "Size",
		ReadOnly: true,
		Apply: func(s core.State, args []core.Value) (core.Value, core.UndoFunc, error) {
			return s["n"], nil, nil
		},
	}
	rel := &core.TotalConflict{}
	//oblint:allow conflictsound -- deliberately coarse while the schema is experimental
	return core.NewSchema("allowed", func() core.State { return core.State{} }, rel, set, size)
}
