// Package core is a fixture mirror of the schema and conflict-relation
// surface the conflictsound derivation keys on: type and function names
// (and the internal/core import-path suffix) match the real package, the
// bodies are stubs.
package core

type Value any

type State map[string]Value

type UndoFunc func(State)

type ApplyFunc func(State, []Value) (Value, UndoFunc, error)

type PeekFunc func(State, []Value) (Value, error)

type Operation struct {
	Name     string
	ReadOnly bool
	Apply    ApplyFunc
	Peek     PeekFunc
}

type OpInvocation struct {
	Op   string
	Args []Value
}

type StepInfo struct {
	Op   string
	Args []Value
	Ret  Value
}

type ConflictRelation interface {
	OpConflicts(a, b OpInvocation) bool
	StepConflicts(a, b StepInfo) bool
}

type Schema struct {
	Name string
}

func NewSchema(name string, newState func() State, rel ConflictRelation, ops ...*Operation) *Schema {
	return &Schema{Name: name}
}

// TotalConflict conflicts every pair.
type TotalConflict struct{}

func (TotalConflict) OpConflicts(a, b OpInvocation) bool { return true }
func (TotalConflict) StepConflicts(a, b StepInfo) bool   { return true }

type KeyFunc func(op string, args []Value) Value

func FirstArgKey(op string, args []Value) Value {
	if len(args) == 0 {
		return nil
	}
	return args[0]
}

func SingleKey(op string, args []Value) Value { return nil }

func ValueEqual(a, b Value) bool { return a == b }

type TableConflict struct {
	Pairs  map[[2]string]bool
	Key    KeyFunc
	Refine func(a, b StepInfo) bool
}

func (t *TableConflict) OpConflicts(a, b OpInvocation) bool { return t.Pairs[[2]string{a.Op, b.Op}] }
func (t *TableConflict) StepConflicts(a, b StepInfo) bool {
	return t.OpConflicts(a.Invocation(), b.Invocation())
}

func (s StepInfo) Invocation() OpInvocation { return OpInvocation{Op: s.Op, Args: s.Args} }

func ConflictPairs(pairs ...[2]string) map[[2]string]bool {
	out := map[[2]string]bool{}
	for _, p := range pairs {
		out[p] = true
	}
	return out
}

func SymmetricPairs(pairs ...[2]string) map[[2]string]bool {
	out := ConflictPairs(pairs...)
	for _, p := range pairs {
		out[[2]string{p[1], p[0]}] = true
	}
	return out
}

func RWTable(readers, writers []string, key KeyFunc) ConflictRelation {
	return &TableConflict{Key: key}
}

func Refine(base ConflictRelation, refine func(a, b StepInfo) bool) ConflictRelation { return base }
