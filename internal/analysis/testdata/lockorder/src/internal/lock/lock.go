// Package lock is a fixture mirror of the real lock manager's tier
// shapes: stripe (20) → ownerShard (30) → waitRegistry (40).
package lock

import "sync"

type stripe struct {
	mu     sync.Mutex
	shards map[string]int
}

type ownerShard struct {
	mu       sync.Mutex
	finished int
}

type waitRegistry struct {
	mu         sync.Mutex
	waitingFor int
}

type Manager struct {
	stripes [4]stripe
	owners  [4]ownerShard
	waits   waitRegistry
}

// inOrder walks the tiers in rank order, releasing as it goes: legal.
func (m *Manager) inOrder() {
	st := &m.stripes[0]
	st.mu.Lock()
	st.mu.Unlock()
	os := &m.owners[0]
	os.mu.Lock()
	os.mu.Unlock()
	m.waits.mu.Lock()
	m.waits.mu.Unlock()
}

// nested holds a stripe while taking an owner shard: ascending, legal.
func (m *Manager) nested() {
	st := &m.stripes[1]
	st.mu.Lock()
	defer st.mu.Unlock()
	os := &m.owners[1]
	os.mu.Lock()
	os.mu.Unlock()
}

// inverted takes a stripe while holding the waits registry: rank 20
// under rank 40.
func (m *Manager) inverted() {
	m.waits.mu.Lock()
	st := &m.stripes[2]
	st.mu.Lock() // want "acquires st.mu .* while holding m.waits.mu"
	st.mu.Unlock()
	m.waits.mu.Unlock()
}

// doubled holds two stripes at once: never two locks of one tier.
func (m *Manager) doubled() {
	a := &m.stripes[0]
	b := &m.stripes[1]
	a.mu.Lock()
	b.mu.Lock() // want "acquires b.mu .* while holding a.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

// underDefer acquires an owner shard under a deferred-held waits lock:
// the defer keeps rank 40 held to function end.
func (m *Manager) underDefer() {
	m.waits.mu.Lock()
	defer m.waits.mu.Unlock()
	os := &m.owners[2]
	os.mu.Lock() // want "acquires os.mu .* while holding m.waits.mu"
	os.mu.Unlock()
}

// branchReturn holds a stripe only to the early return; the later owner
// acquisition is clean.
func (m *Manager) branchReturn(flag bool) {
	if flag {
		st := &m.stripes[3]
		st.mu.Lock()
		defer st.mu.Unlock()
		return
	}
	os := &m.owners[3]
	os.mu.Lock()
	os.mu.Unlock()
}

// spawned goroutines are separate scopes: the literal's stripe
// acquisition does not nest under the caller's waits lock.
func (m *Manager) spawned() {
	m.waits.mu.Lock()
	go func() {
		st := &m.stripes[0]
		st.mu.Lock()
		st.mu.Unlock()
	}()
	m.waits.mu.Unlock()
}
