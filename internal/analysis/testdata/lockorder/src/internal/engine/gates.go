// Package engine is a fixture mirror of the engine's shard-gate surface.
package engine

import "context"

// Router mirrors the real gate surface.
type Router interface {
	TryGate(s int) bool
	LockGate(s int)
	UnlockGate(s int)
	RLockGate(s int)
	TryRGate(s int) bool
	RUnlockGate(s int)
}

// lockGateCtx is the blessed exclusive-acquire helper.
func lockGateCtx(ctx context.Context, r Router, s int) error {
	if r.TryGate(s) {
		return nil
	}
	r.LockGate(s)
	return nil
}

// rLockGateCtx is the blessed shared-acquire helper.
func rLockGateCtx(ctx context.Context, r Router, s int) error {
	if r.TryRGate(s) {
		return nil
	}
	r.RLockGate(s)
	return nil
}

// gateLoop acquires in ascending directory order: legal.
func gateLoop(ctx context.Context, r Router, shards []int) error {
	for _, s := range shards {
		if err := lockGateCtx(ctx, r, s); err != nil {
			return err
		}
	}
	return nil
}

// gateJoin grows a sorted gate set behind ordering guards: legal.
func gateJoin(ctx context.Context, r Router, gated []int, s int) error {
	switch {
	case len(gated) == 0:
		return rLockGateCtx(ctx, r, s)
	case s > gated[len(gated)-1]:
		return lockGateCtx(ctx, r, s)
	}
	return nil
}

// gateOnce takes a single gate: a sole acquisition cannot be out of
// order, legal.
func gateOnce(ctx context.Context, r Router) error {
	return rLockGateCtx(ctx, r, 0)
}

// gateRaw bypasses the ctx-aware helpers.
func gateRaw(r Router) {
	r.LockGate(1) // want "raw gate acquisition LockGate"
	r.UnlockGate(1)
}

// acquireEpochGates mirrors the epoch flusher's batch acquirer: the
// union argument is sorted before the call, so the sites carry no
// syntactic ordering evidence but the function is blessed by name.
func acquireEpochGates(r Router, union []int) {
	if err := lockGateCtx(context.Background(), r, union[0]); err != nil {
		return
	}
	_ = lockGateCtx(context.Background(), r, union[1])
}

// gateUnordered takes two gates with no ordering evidence.
func gateUnordered(ctx context.Context, r Router) error {
	if err := lockGateCtx(ctx, r, 2); err != nil { // want "lockGateCtx called without ordering discipline"
		return err
	}
	return lockGateCtx(ctx, r, 1) // want "lockGateCtx called without ordering discipline"
}
