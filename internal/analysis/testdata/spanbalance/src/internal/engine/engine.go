// Package engine exercises the spanbalance analyzer: every flagged
// pattern leaks an open span past a return (or the function end), every
// legal pattern closes it on all paths — the shapes the real engine,
// lock manager and shard router actually use.
package engine

import "objectbase/internal/obs"

type eng struct{ tr *obs.Tracer }

// Legal: sequential reuse — each segment ends (on every path) before
// the variable is restarted, the runOnce idiom.
func (e *eng) balancedSequence(cond bool) error {
	sp := e.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
	if cond {
		sp.EndWith("abort")
		return nil
	}
	sp.End()
	sp = e.tr.StartSpan(obs.PhaseExecute, 0, "", "")
	sp.End()
	return nil
}

// Legal: a defer'd End absolves every later path, the runViewOnce idiom.
func (e *eng) deferClose(cond bool) error {
	sp := e.tr.StartSpan(obs.PhaseExecute, 0, "", "")
	defer sp.End()
	if cond {
		return nil
	}
	return nil
}

// Legal: a deferred function literal closing the span counts too.
func (e *eng) deferLitClose(cond bool) error {
	sp := e.tr.StartSpan(obs.PhaseExecute, 0, "", "")
	defer func() { sp.EndWith("late") }()
	if cond {
		return nil
	}
	return nil
}

// Legal: every select case closes before leaving, the retry-backoff
// idiom (one case falls through, one returns).
func (e *eng) selectClose(ch, done chan struct{}) error {
	sp := e.tr.StartSpan(obs.PhaseLockWait, 0, "", "")
	select {
	case <-ch:
		sp.End()
	case <-done:
		sp.EndWith("cancel")
		return nil
	}
	return nil
}

// Legal: conditional start (zero Span is closable), closed before every
// return — the WaitDone idiom.
func (e *eng) conditionalStart(on, cond bool) error {
	var sp obs.Span
	if on {
		sp = e.tr.StartSpan(obs.PhaseLockWait, 0, "", "")
	}
	if cond {
		sp.EndWith("timeout")
		return nil
	}
	sp.End()
	return nil
}

// Legal: a loop body that closes-and-returns, with the fall-through
// close after the loop — the gate-acquisition idiom.
func (e *eng) loopClose(n int) error {
	sp := e.tr.StartSpan(obs.PhaseLockWait, 0, "", "")
	for i := 0; i < n; i++ {
		if i == 1 {
			sp.EndWith("wake")
			return nil
		}
	}
	sp.End()
	return nil
}

// Legal: instant events never open a span.
func (e *eng) eventOnly() error {
	e.tr.Event(obs.PhaseAdmit, 0, "", "", "restart")
	return nil
}

// Legal: handing the span to another function transfers ownership — the
// runRetry → runOnce idiom. The abort path still closes locally.
func (e *eng) handOff(cond bool) error {
	sp := e.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
	if cond {
		sp.EndWith("cancel")
		return nil
	}
	return e.consume(0, sp)
}

// Legal: a span received as a parameter is never tracked; relabelling
// and ending it here is the callee side of the hand-off.
func (e *eng) consume(n int, sp obs.Span) error {
	sp = sp.WithExecRing("t1", 1)
	sp.End()
	return nil
}

// Legal: returning the span transfers ownership to the caller.
func (e *eng) openFor(p obs.Phase) obs.Span {
	sp := e.tr.StartSpan(p, 0, "", "")
	return sp
}

// Flagged: the early return leaks the open span.
func (e *eng) leakEarlyReturn(cond bool) error {
	sp := e.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
	if cond {
		return nil // want "span \"sp\" opened at line \\d+ may leave the function without End/EndWith"
	}
	sp.End()
	return nil
}

// Flagged: only one branch closes, and the fall-through path returns
// with the span still open.
func (e *eng) leakAfterBranchClose(cond bool) error {
	sp := e.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
	if cond {
		sp.End()
	}
	return nil // want "span \"sp\" opened at line \\d+ may leave the function without End/EndWith"
}

// Flagged: a void function can leak by falling off the end.
func (e *eng) leakAtEnd() {
	sp := e.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
	_ = sp
} // want "span \"sp\" opened at line \\d+ may leave the function without End/EndWith"

// Flagged: restarting the variable while its span is still open loses
// the first measurement.
func (e *eng) restartWhileOpen() {
	sp := e.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
	sp = e.tr.StartSpan(obs.PhaseExecute, 0, "", "") // want "span \"sp\" is restarted before the span opened at line \\d+ was ended"
	sp.End()
}

// Flagged: a select case that returns without closing, even though the
// other case is balanced.
func (e *eng) leakInSelectCase(ch, done chan struct{}) error {
	sp := e.tr.StartSpan(obs.PhaseLockWait, 0, "", "")
	select {
	case <-ch:
		sp.End()
	case <-done:
		return nil // want "span \"sp\" opened at line \\d+ may leave the function without End/EndWith"
	}
	return nil
}

// Function literals are scopes of their own: the outer span does not
// absolve the literal, and the literal's leak is reported at its own
// closing brace.
func (e *eng) litScope() func() {
	sp := e.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
	fn := func() {
		inner := e.tr.StartSpan(obs.PhaseExecute, 0, "", "")
		_ = inner
	} // want "span \"inner\" opened at line \\d+ may leave the function without End/EndWith"
	sp.End()
	return fn
}
