// Package obs is the fixture's stand-in for the real internal/obs:
// just enough surface for span-balance scenarios to type-check.
package obs

// Phase mirrors the real phase taxonomy.
type Phase uint8

// A few phases; the analyzer never looks at the value.
const (
	PhaseAdmit Phase = iota
	PhaseExecute
	PhaseLockWait
)

// Tracer mirrors the real flight recorder.
type Tracer struct{}

// Span mirrors the real in-flight measurement.
type Span struct{ t *Tracer }

// StartSpan mirrors the real signature.
func (t *Tracer) StartSpan(p Phase, client uint64, exec, object string) Span { return Span{} }

// End closes the span.
func (s Span) End() {}

// EndWith closes the span with an outcome label.
func (s Span) EndWith(outcome string) {}

// Next hands the span off to its successor phase.
func (s Span) Next(p Phase) Span { return s }

// WithExecRing relabels and re-homes the span.
func (s Span) WithExecRing(exec string, client uint64) Span { return s }

// Event records an instant event (never opens a span).
func (t *Tracer) Event(p Phase, client uint64, exec, object, outcome string) {}
