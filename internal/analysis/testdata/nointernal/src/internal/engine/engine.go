package engine

type Engine struct{}
