// Package bench is a support package: it may use the engine internals
// (internal-to-internal imports are not the guarded boundary).
package bench

import "objectbase/internal/engine"

func Run(e *engine.Engine) {}
