package lock

type Manager struct{}
