// Command demo is a fixture example: the lock manager is behind the
// façade boundary.
package main

import "objectbase/internal/lock" // want "examples/demo imports objectbase/internal/lock"

func main() {
	_ = lock.Manager{}
}
