// Package objectbase is the fixture façade.
package objectbase

type DB struct{}
