// Command tool is a fixture binary: it may use the façade and support
// packages, but not the guarded engine internals.
package main

import (
	"objectbase"
	"objectbase/internal/bench"
	"objectbase/internal/engine" // want "cmd/tool imports objectbase/internal/engine"
)

func main() {
	_ = objectbase.DB{}
	bench.Run(&engine.Engine{})
}
