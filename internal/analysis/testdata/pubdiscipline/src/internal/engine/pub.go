// Package engine is a fixture mirror of the engine's publication state:
// per-object version rings behind an atomic pointer, and the pubMu
// watermark bookkeeping.
package engine

import "sync/atomic"

type VersionRing struct {
	seqs []uint64
}

type Object struct {
	name string
	vers atomic.Pointer[VersionRing]
}

type Engine struct {
	pubNext uint64
	pubWm   uint64
	pubDone map[uint64]bool
	pubSeq  atomic.Uint64
}

// publishVersion is a blessed publisher.
func publishVersion(o *Object, r *VersionRing) {
	o.vers.Store(r)
}

// initVersions seeds the ring at registration time: blessed.
func initVersions(o *Object) {
	o.vers.Store(&VersionRing{})
}

// applyUndo repairs the gap left by an aborted publication: blessed.
func (o *Object) applyUndo() {
	o.vers.Store(nil)
}

// publishObjects advances the watermark: the one place the bookkeeping
// fields may be touched.
func (e *Engine) publishObjects() {
	e.pubNext++
	seq := e.pubNext
	e.pubDone[seq] = true
	for e.pubDone[e.pubWm+1] {
		delete(e.pubDone, e.pubWm+1)
		e.pubWm++
	}
	e.pubSeq.Store(e.pubWm)
}

// readSeq reads the mirrored watermark without the mutex: legal.
func (e *Engine) readSeq() uint64 {
	return e.pubSeq.Load()
}

// latestRing reads the published ring: legal anywhere.
func latestRing(o *Object) *VersionRing {
	return o.vers.Load()
}

// sneakyStore bypasses the publication helpers.
func sneakyStore(o *Object) {
	o.vers.Store(&VersionRing{}) // want "Object.vers.Store outside"
}

// bumpWatermark touches the bookkeeping outside publishObjects.
func bumpWatermark(e *Engine) {
	e.pubWm++                       // want "Engine.pubWm accessed outside publishObjects"
	e.pubSeq.Store(uint64(e.pubWm)) // want "Engine.pubSeq.Store outside" "Engine.pubWm accessed outside publishObjects"
}
