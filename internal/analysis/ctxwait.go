package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxWait enforces context-aware blocking on engine paths. A transaction
// holding locks, gates or published-but-unresolved dependencies must stay
// cancellable: RunCtx promises that cancelling the caller's context
// aborts the transaction at the next retry or commit boundary, and every
// unconditional block is a place that promise silently breaks.
var CtxWait = &Analyzer{
	Name: "ctxwait",
	Doc: "on engine paths (internal/engine, internal/lock, internal/shard), " +
		"blocking waits must select on a cancellation signal: no time.Sleep, " +
		"no bare channel send/receive outside a select, and every blocking " +
		"select needs a <-ctx.Done()-style or <-done case",
	Run: runCtxWait,
}

func runCtxWait(pass *Pass) error {
	if !pathIs(pass.Pkg, "internal/engine", "internal/lock", "internal/shard") {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isTimeSleep(info, n) {
					pass.Reportf(n.Pos(),
						"time.Sleep on an engine path: block on a timer in a select with a ctx.Done() case instead")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !inSelectComm(n, stack) {
					pass.Reportf(n.Pos(),
						"bare channel receive blocks without a cancellation path: select on the channel and a ctx.Done()/done signal")
				}
			case *ast.SendStmt:
				if !inSelectComm(n, stack) {
					pass.Reportf(n.Pos(),
						"bare channel send blocks without a cancellation path: select on the send and a ctx.Done()/done signal")
				}
			case *ast.SelectStmt:
				if blockingSelect(n) && !hasCancellationCase(n) {
					pass.Reportf(n.Pos(),
						"blocking select has no cancellation case: add a <-ctx.Done()-style or <-done case so the wait stays abortable")
				}
			}
			return true
		})
	}
	return nil
}

// isTimeSleep reports whether call is time.Sleep from the standard time
// package.
func isTimeSleep(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// inSelectComm reports whether n sits inside the communication clause of
// an enclosing select case (where blocking is the point of the
// construct).
func inSelectComm(n ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if cc, ok := stack[i].(*ast.CommClause); ok {
			return nodeContains(cc.Comm, n)
		}
	}
	return false
}

// blockingSelect reports whether sel has no default clause.
func blockingSelect(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// hasCancellationCase reports whether some case receives from a
// cancellation-shaped source: a call to a method or function named Done
// (ctx.Done(), sub-exec done channels) or an identifier named done (the
// conventional abandon-signal parameter). Deliberately narrow — kill
// channels and wake channels do not count, because they fire on different
// conditions than the caller's context.
func hasCancellationCase(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if ue, ok := comm.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				recv = ue.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if ue, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					recv = ue.X
				}
			}
		}
		if recv == nil {
			continue
		}
		switch src := ast.Unparen(recv).(type) {
		case *ast.CallExpr:
			if calleeName(src) == "Done" {
				return true
			}
		case *ast.Ident:
			if src.Name == "done" {
				return true
			}
		}
	}
	return false
}
