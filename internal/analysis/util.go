package analysis

import (
	"go/ast"
	"strings"
)

// relPath returns the package path relative to its module root ("" for
// the module root package itself).
func relPath(p *Package) string {
	if p.Path == p.Module {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.Module+"/")
}

// pathIs reports whether the package is one of the given module-relative
// paths.
func pathIs(p *Package, rels ...string) bool {
	got := relPath(p)
	for _, r := range rels {
		if got == r {
			return true
		}
	}
	return false
}

// inspectWithStack walks root in source order, calling f with each node
// and its ancestor stack (outermost first, excluding n itself). Returning
// false skips n's children.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFuncName returns the name of the nearest enclosing FuncDecl on
// the stack ("" at file scope). Function literals inherit the declared
// function they appear in.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// nodeContains reports whether n lies within outer's source range.
func nodeContains(outer, n ast.Node) bool {
	return outer != nil && outer.Pos() <= n.Pos() && n.End() <= outer.End()
}

// calleeName returns the terminal identifier of a call's function
// expression: f(...) -> "f", x.m(...) -> "m", "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
