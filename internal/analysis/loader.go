package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: what a Pass analyzes.
type Package struct {
	Path   string // import path
	Name   string // package name
	Dir    string
	Module string // module path of the tree it was loaded from
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// LoadConfig configures a Load.
type LoadConfig struct {
	// Dir is the module root to enumerate packages from.
	Dir string
	// Module overrides the module path; read from Dir/go.mod when empty
	// (fixture trees carry no go.mod).
	Module string
	// Tags are additional build tags (e.g. "ordercheck"); files excluded
	// by build constraints under these tags are not analyzed.
	Tags []string
}

// loader loads and type-checks the local package graph. Local imports
// resolve within the module tree; everything else is the standard
// library, type-checked from GOROOT source (the module has no
// third-party dependencies, and fixtures must not either).
type loader struct {
	cfg     LoadConfig
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load enumerates, parses and type-checks the packages named by the
// patterns — "./..." for the whole tree under cfg.Dir, or "./x/y" for a
// single directory — and returns them sorted by import path.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	cfg.Dir = root
	if cfg.Module == "" {
		cfg.Module, err = modulePath(root)
		if err != nil {
			return nil, err
		}
	}
	l := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkDirs(root, add); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		}
	}

	var out []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			if nogoWrapped(err) {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func nogoWrapped(err error) bool {
	_, ok := err.(*build.NoGoError)
	return ok
}

// walkDirs visits every package-candidate directory under root.
func walkDirs(root string, visit func(string)) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				visit(p)
				break
			}
		}
		return nil
	})
}

// ModulePath reads the module path from dir/go.mod (the generator needs
// it to render the core import).
func ModulePath(dir string) (string, error) { return modulePath(dir) }

// modulePath reads the module path from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: cannot determine module path: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.cfg.Dir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.cfg.Module, nil
	}
	return l.cfg.Module + "/" + filepath.ToSlash(rel), nil
}

// local reports whether path names a package of the analyzed module.
func (l *loader) local(path string) bool {
	return path == l.cfg.Module || strings.HasPrefix(path, l.cfg.Module+"/")
}

// Import implements types.Importer: local packages load recursively,
// everything else is standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if !l.local(path) {
		return l.std.Import(path)
	}
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// load parses and type-checks one local package (memoised).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.cfg.Dir
	if path != l.cfg.Module {
		dir = filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(path, l.cfg.Module+"/")))
	}
	bctx := build.Default
	bctx.BuildTags = l.cfg.Tags
	bp, err := bctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}

	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, &build.NoGoError{Dir: dir}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}

	pkg := &Package{
		Path:   path,
		Name:   tpkg.Name(),
		Dir:    dir,
		Module: l.cfg.Module,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
