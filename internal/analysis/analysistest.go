package analysis

import (
	"go/ast"
	"regexp"
	"strconv"
	"testing"
)

// wantRe matches the expectation comments in fixtures:
//
//	// want "regexp" ["regexp" ...]
var wantRe = regexp.MustCompile(`want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one // want entry: a diagnostic matching re must be
// reported on this file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// RunFixture mirrors golang.org/x/tools/go/analysis/analysistest: it
// loads testdata/<analyzer>/src as a fake "objectbase" module, runs the
// analyzer over every package in it, and checks the reported diagnostics
// exactly against the fixture's // want "regexp" comments — every
// finding must be wanted, every want must be found.
func RunFixture(t *testing.T, a *Analyzer, tags ...string) {
	t.Helper()
	RunFixtureSuite(t, a.Name, []*Analyzer{a}, tags...)
}

// RunFixtureSuite is RunFixture for several analyzers run together over
// testdata/<name>/src — needed by checks like stalesuppress, whose driver
// pass only judges suppressions of analyzers included in the same run.
func RunFixtureSuite(t *testing.T, name string, analyzers []*Analyzer, tags ...string) {
	t.Helper()
	dir := "testdata/" + name + "/src"
	pkgs, err := Load(LoadConfig{Dir: dir, Module: "objectbase", Tags: tags}, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s contains no packages", dir)
	}
	findings, err := Run(analyzers, pkgs)
	if err != nil {
		t.Fatalf("running %s on fixture: %v", name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts the // want expectations of one fixture file.
func collectWants(t *testing.T, pkg *Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, q := range wantQuoted.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}
