package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file derives pairwise commutativity from the per-operation
// footprints of footprint.go: discover every core.NewSchema call, analyze
// its operation literals, and compare footprints pairwise. Two operations
// conflict when a write of one may overlap an access of the other —
// "may overlap" refined to "iff these argument positions are equal" when
// both sides key the location injectively by an argument — except for the
// recognised commuting forms (two increments of the same location).

// PairVerdict is the derived verdict for one ordered pair of operations.
type PairVerdict struct {
	// Conflict: the pair may conflict. False means proven commuting.
	Conflict bool
	// Keyed scopes the conflict: it only arises when argument ArgA of the
	// first invocation equals argument ArgB of the second.
	Keyed      bool
	ArgA, ArgB int
}

func (v PairVerdict) String() string {
	switch {
	case !v.Conflict:
		return "commute"
	case v.Keyed:
		return fmt.Sprintf("conflict iff arg%d=arg%d", v.ArgA, v.ArgB)
	default:
		return "conflict"
	}
}

// overlap describes whether two abstract locations may denote the same
// concrete location.
type overlap struct {
	conflict   bool // may overlap at all
	keyed      bool // overlap exactly when the key arguments are equal
	argA, argB int
}

func keyOverlap(a, b Key) overlap {
	switch {
	case a.Kind == KeyConst && b.Kind == KeyConst:
		if a.Lit == b.Lit {
			return overlap{conflict: true}
		}
		return overlap{}
	case a.Kind == KeyArg && b.Kind == KeyArg:
		return overlap{conflict: true, keyed: true, argA: a.Arg, argB: b.Arg}
	default:
		// KeyAny, or a constant against an argument: may be equal.
		return overlap{conflict: true}
	}
}

// overlapLoc combines the variable- and element-level key conditions. A
// conjunction of two keyed conditions keeps only one (dropping the other
// widens toward "always overlaps": sound).
func overlapLoc(a, b Loc) overlap {
	v := keyOverlap(a.Var, b.Var)
	if !v.conflict {
		return overlap{}
	}
	if a.Elem == nil || b.Elem == nil {
		return v // a var-level access aliases every element
	}
	e := keyOverlap(*a.Elem, *b.Elem)
	if !e.conflict {
		return overlap{}
	}
	if v.keyed {
		return v
	}
	return e
}

// derivePair compares two footprints. Ordered pairs get the same verdict
// in both orders here (footprints cannot see the asymmetric cases), which
// over-approximates the asymmetric true relation: sound.
func derivePair(a, b *OpFootprint) PairVerdict {
	if a.Opaque || b.Opaque {
		return PairVerdict{Conflict: true}
	}
	var out PairVerdict // commute until an overlap says otherwise
	for _, x := range a.Accesses {
		for _, y := range b.Accesses {
			if !x.Write && !y.Write {
				continue // two reads never conflict
			}
			if x.Incr && y.Incr {
				// Increments of the same location commute; increment
				// locations are exact (constant var, no element), so
				// distinct locations cannot overlap either.
				continue
			}
			o := overlapLoc(x.Loc, y.Loc)
			if !o.conflict {
				continue
			}
			if !o.keyed {
				return PairVerdict{Conflict: true}
			}
			if out.Conflict && (out.ArgA != o.argA || out.ArgB != o.argB || !out.Keyed) {
				// Two different key conditions would disjoin; widen.
				return PairVerdict{Conflict: true}
			}
			out = PairVerdict{Conflict: true, Keyed: true, ArgA: o.argA, ArgB: o.argB}
		}
	}
	return out
}

// DerivedSchema is the full derivation for one core.NewSchema call site.
type DerivedSchema struct {
	Name string
	// Pos anchors diagnostics about the schema as a whole.
	Pos token.Pos
	// RelExpr is the declared conflict-relation argument, resolved through
	// one level of local variable binding; RelPos anchors its diagnostics.
	RelExpr ast.Expr
	RelPos  token.Pos
	// Ops holds the derived footprint per operation name; OpNames is
	// sorted.
	Ops     map[string]*OpFootprint
	OpNames []string
	// Pairs holds the derived verdict for every ordered pair.
	Pairs map[[2]string]PairVerdict
}

// Verdict returns the derived verdict for the ordered pair.
func (d *DerivedSchema) Verdict(a, b string) PairVerdict {
	return d.Pairs[[2]string{a, b}]
}

// ShardArg reports the argument position every conflicting pair is keyed
// on, when one exists — the condition under which the relation can shard
// (core.DerivedRelation.Sharded).
func (d *DerivedSchema) ShardArg() (int, bool) {
	arg, found := 0, false
	for _, v := range d.Pairs {
		if !v.Conflict {
			continue
		}
		if !v.Keyed || v.ArgA != v.ArgB {
			return 0, false
		}
		if found && v.ArgA != arg {
			return 0, false
		}
		arg, found = v.ArgA, true
	}
	return arg, found
}

func (d *DerivedSchema) derive() {
	d.Pairs = make(map[[2]string]PairVerdict, len(d.OpNames)*len(d.OpNames))
	for _, a := range d.OpNames {
		for _, b := range d.OpNames {
			d.Pairs[[2]string{a, b}] = derivePair(d.Ops[a], d.Ops[b])
		}
	}
}

// --- schema discovery ---

// constructorScope is the result of scanning a schema constructor's body:
// the abstract environment its closures capture, the operation literals,
// and the local variable bindings (for resolving the relation expression).
type constructorScope struct {
	env    env
	opLits map[types.Object]opBinding
	vars   map[types.Object]ast.Expr
}

type opBinding struct {
	lit *ast.CompositeLit
	env env
}

// scanConstructor walks the top-level statements of a function body in
// source order, binding `x := <func literal>` into the abstract
// environment (treeOf, key, ... — the helpers operation bodies close
// over) and collecting `x := &core.Operation{...}` bindings.
func scanConstructor(pkg *Package, body *ast.BlockStmt) *constructorScope {
	sc := &constructorScope{
		env:    env{},
		opLits: map[types.Object]opBinding{},
		vars:   map[types.Object]ast.Expr{},
	}
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			continue
		}
		rhs := ast.Unparen(as.Rhs[0])
		sc.vars[obj] = rhs
		switch r := rhs.(type) {
		case *ast.FuncLit:
			sc.env[obj] = aval{kind: avFunc, lit: r, env: sc.env.clone()}
		case *ast.UnaryExpr:
			if lit, ok := r.X.(*ast.CompositeLit); ok && r.Op == token.AND && isOperationLitType(pkg, lit) {
				sc.opLits[obj] = opBinding{lit: lit, env: sc.env.clone()}
			}
		}
	}
	return sc
}

func isOperationLitType(pkg *Package, lit *ast.CompositeLit) bool {
	t := typeOf(pkg, lit)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Operation" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// opFromLit reads an operation literal's fields.
func opFromLit(pkg *Package, lit *ast.CompositeLit, scope env) opSource {
	src := opSource{env: scope, pos: lit.Pos()}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if tv, ok := pkg.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				src.name = constant.StringVal(tv.Value)
			}
		case "ReadOnly":
			if tv, ok := pkg.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
				src.readOnly = constant.BoolVal(tv.Value)
			}
		case "Apply":
			if fl, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
				src.apply = fl
			}
		case "Peek":
			if fl, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
				src.peek = fl
			}
		}
	}
	return src
}

// isNewSchemaCall reports whether the call is core.NewSchema(...).
func isNewSchemaCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Name() == "NewSchema" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// DeriveSchemas discovers every core.NewSchema call in the package and
// derives each schema's commutativity relation from its operation bodies.
// Schemas are returned sorted by name.
func DeriveSchemas(pkg *Package) []*DerivedSchema {
	var out []*DerivedSchema
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scope := scanConstructor(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isNewSchemaCall(pkg, call) || len(call.Args) < 3 {
					return true
				}
				out = append(out, deriveSchema(pkg, scope, call))
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func deriveSchema(pkg *Package, scope *constructorScope, call *ast.CallExpr) *DerivedSchema {
	d := &DerivedSchema{
		Pos: call.Pos(),
		Ops: map[string]*OpFootprint{},
	}
	if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		d.Name = constant.StringVal(tv.Value)
	}

	// The declared relation, resolved through one local binding.
	d.RelExpr = ast.Unparen(call.Args[2])
	d.RelPos = d.RelExpr.Pos()
	if id, ok := d.RelExpr.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			if bound, ok := scope.vars[obj]; ok {
				d.RelExpr = bound
			}
		}
	}

	for _, arg := range call.Args[3:] {
		var src opSource
		switch a := ast.Unparen(arg).(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[a]
			b, ok := scope.opLits[obj]
			if !ok {
				src = opSource{name: a.Name, pos: a.Pos()}
			} else {
				src = opFromLit(pkg, b.lit, b.env)
			}
		case *ast.UnaryExpr:
			if lit, ok := a.X.(*ast.CompositeLit); ok && a.Op == token.AND && isOperationLitType(pkg, lit) {
				src = opFromLit(pkg, lit, scope.env)
			} else {
				src = opSource{pos: a.Pos()}
			}
		default:
			src = opSource{pos: arg.Pos()}
		}
		if src.name == "" {
			src.name = fmt.Sprintf("op%d", len(d.OpNames))
		}
		fp := analyzeOp(pkg, src)
		d.Ops[fp.Name] = fp
		d.OpNames = append(d.OpNames, fp.Name)
	}
	sort.Strings(d.OpNames)
	d.derive()
	return d
}

// DeriveTree loads the module rooted at dir and derives the schemas of its
// object library (internal/objects).
func DeriveTree(dir string) ([]*DerivedSchema, error) {
	pkgs, err := Load(LoadConfig{Dir: dir}, "./internal/objects")
	if err != nil {
		return nil, err
	}
	for _, pkg := range pkgs {
		if pathIs(pkg, "internal/objects") {
			return DeriveSchemas(pkg), nil
		}
	}
	return nil, fmt.Errorf("analysis: internal/objects not found under %s", dir)
}
