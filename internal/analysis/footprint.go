package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the footprint half of the commutativity derivation
// (derive.go builds the pairwise relation on top, conflictsound.go is the
// analyzer): a small abstract interpreter over the Apply/Peek/undo bodies
// of core.Operation literals. It computes, per operation, a conservative
// set of state accesses — which state variables (and which container
// elements, keyed by argument position) the operation reads and writes —
// plus the recognised commuting-update form: pure increments
// (s[v] = s[v] ± f(args)) whose undo is the inverse increment. Everything
// the interpreter cannot prove precise degrades monotonically toward
// "touches everything", so a derived relation only ever over-approximates
// the true conflicts.

// KeyKind classifies an abstract access key.
type KeyKind int

const (
	// KeyConst is a compile-time constant key ("n", "balance", "tree").
	KeyConst KeyKind = iota
	// KeyArg is a key derived injectively from one invocation argument:
	// two invocations have equal keys iff their arguments at Arg are equal.
	KeyArg
	// KeyAny is the unknown key: overlaps everything.
	KeyAny
)

// Key abstracts the identity of a state variable or container element.
type Key struct {
	Kind KeyKind
	Lit  string // KeyConst: the constant, as constant.Value.ExactString()
	Arg  int    // KeyArg: the argument position
}

func (k Key) String() string {
	switch k.Kind {
	case KeyConst:
		return k.Lit
	case KeyArg:
		return fmt.Sprintf("arg%d", k.Arg)
	default:
		return "*"
	}
}

// Loc is one abstract state location: a state variable, optionally refined
// to one element of the container it holds. A var-level access (Elem nil)
// aliases every element.
type Loc struct {
	Var  Key
	Elem *Key
}

func (l Loc) String() string {
	if l.Elem == nil {
		return l.Var.String()
	}
	return l.Var.String() + "[" + l.Elem.String() + "]"
}

func locEq(a, b Loc) bool {
	if a.Var != b.Var {
		return false
	}
	if (a.Elem == nil) != (b.Elem == nil) {
		return false
	}
	return a.Elem == nil || *a.Elem == *b.Elem
}

// Access is one footprint entry. Incr marks the commuting-update form: a
// read-modify-write of Loc by a state-independent delta whose undo is the
// inverse update — two Incr accesses of the same Loc commute.
type Access struct {
	Loc   Loc
	Write bool
	Incr  bool
}

func (a Access) String() string {
	switch {
	case a.Incr:
		return "±" + a.Loc.String()
	case a.Write:
		return "W:" + a.Loc.String()
	default:
		return "R:" + a.Loc.String()
	}
}

// OpFootprint is the derived summary of one operation.
type OpFootprint struct {
	Name     string
	ReadOnly bool
	// Accesses is the conservative state footprint of Apply, Peek and the
	// undo closures together.
	Accesses []Access
	// Opaque is set when the interpreter met a construct it cannot bound;
	// an opaque operation conservatively conflicts with everything.
	Opaque    bool
	OpaqueWhy string
	// Problems are footprint-level findings independent of the declared
	// relation: an undo touching locations outside the operation's own
	// footprint, a Peek that writes, a ReadOnly operation that writes.
	Problems []string
	// Pos anchors diagnostics about this operation.
	Pos token.Pos
}

// String renders the footprint compactly, for the obsim schema audit.
func (f *OpFootprint) String() string {
	if f.Opaque {
		return "opaque(" + f.OpaqueWhy + ")"
	}
	parts := make([]string, len(f.Accesses))
	for i, a := range f.Accesses {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Reads reports whether the footprint reads a location overlapping l.
func (f *OpFootprint) touches(l Loc, write bool) bool {
	for _, a := range f.Accesses {
		if write && !a.Write {
			continue
		}
		if v := overlapLoc(a.Loc, l); v.conflict {
			return true
		}
	}
	return false
}

// --- abstract values ---

type avKind int

const (
	avOpaque    avKind = iota // anything else; taint flags apply
	avConst                   // compile-time constant (cval) or the nil literal
	avArgs                    // the []Value argument slice itself
	avArg                     // one argument; exact when derived injectively
	avState                   // the core.State parameter
	avStateRead               // a value read from state location loc
	avHandle                  // a container handle (*btree.Tree) for state var loc
	avArith                   // state-read of loc plus a state-independent delta
	avFunc                    // a function value: literal or declaration, with captures
	avTuple                   // multi-value result
)

type aval struct {
	kind  avKind
	cval  constant.Value // avConst (nil for the nil literal)
	arg   int            // avArg
	exact bool           // avArg: injective in args[arg]
	loc   Loc            // avStateRead, avHandle, avArith
	lit   *ast.FuncLit   // avFunc (literal)
	decl  *ast.FuncDecl  // avFunc (package function)
	env   env            // avFunc: captured environment
	elems []aval         // avTuple

	// taint: does the value depend on state / on the arguments?
	stateDep bool
	argDep   bool
}

func opaqueVal(stateDep, argDep bool) aval {
	return aval{kind: avOpaque, stateDep: stateDep, argDep: argDep}
}

func (v aval) taintedBy(w aval) aval {
	v.stateDep = v.stateDep || w.stateDep
	v.argDep = v.argDep || w.argDep
	return v
}

func (v aval) isStateDerived() bool {
	switch v.kind {
	case avStateRead, avArith, avHandle, avState:
		return true
	}
	return v.stateDep
}

// asKey abstracts the value as an access key.
func (v aval) asKey() Key {
	switch v.kind {
	case avConst:
		if v.cval != nil {
			return Key{Kind: KeyConst, Lit: v.cval.ExactString()}
		}
		return Key{Kind: KeyConst, Lit: "nil"}
	case avArg:
		if v.exact {
			return Key{Kind: KeyArg, Arg: v.arg}
		}
	}
	return Key{Kind: KeyAny}
}

func constEq(a, b constant.Value) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || (a.Kind() == b.Kind() && a.ExactString() == b.ExactString())
}

// join widens two abstract values; used when a variable is bound on more
// than one path. Keys only ever widen (toward KeyAny), which makes the
// derived relation grow, never shrink: sound.
func join(a, b aval) aval {
	if a.kind == b.kind {
		switch a.kind {
		case avConst:
			if constEq(a.cval, b.cval) {
				return a
			}
		case avArg:
			if a.arg == b.arg {
				a.exact = a.exact && b.exact
				return a
			}
		case avArgs, avState:
			return a
		case avStateRead, avHandle:
			if locEq(a.loc, b.loc) {
				return a
			}
		case avFunc:
			if a.lit == b.lit && a.decl == b.decl {
				return a
			}
		}
	}
	return opaqueVal(a.isStateDerived() || b.isStateDerived(), a.argDep || b.argDep)
}

// env binds type-checker objects to abstract values.
type env map[types.Object]aval

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// freeze converts a captured environment for undo analysis: whatever an
// undo closure captured is a per-execution constant by the time it runs,
// so state-derived captures lose their state dependency (they are before-
// images, fixed at capture) while argument-derived keys keep their
// precision.
func freeze(e env) env {
	out := make(env, len(e))
	for k, v := range e {
		if v.kind == avFunc {
			out[k] = aval{kind: avFunc, lit: v.lit, decl: v.decl, env: freeze(v.env)}
			continue
		}
		if v.isStateDerived() {
			out[k] = opaqueVal(false, v.argDep)
			continue
		}
		out[k] = v
	}
	return out
}

// --- the interpreter ---

// interp interprets one function body, accumulating accesses into the
// footprint under construction.
type interp struct {
	pkg     *Package
	fp      *OpFootprint
	env     env
	depth   int
	returns [][]aval
	// undoSlot is the result index holding the undo closure (1 for
	// ApplyFunc), or -1.
	undoSlot int
	// leaked is set when a state-derived value escapes into control flow,
	// a return value, a key, or an unknown call — any consumption that
	// could make a read observable beyond a candidate increment. A leaked
	// op keeps its plain read/write footprint (sound); it only loses
	// increment classification.
	leaked bool
	// writes records, per written location, the abstract RHS — the
	// increment classifier inspects them.
	writes []writeRec
}

type writeRec struct {
	loc Loc
	rhs aval
}

// bail abandons precision for the whole operation.
func (in *interp) bail(n ast.Node, why string) {
	if !in.fp.Opaque {
		in.fp.Opaque = true
		in.fp.OpaqueWhy = why
	}
}

func (in *interp) read(l Loc) {
	in.fp.Accesses = append(in.fp.Accesses, Access{Loc: l})
}

func (in *interp) write(l Loc, rhs aval) {
	in.fp.Accesses = append(in.fp.Accesses, Access{Loc: l, Write: true})
	in.writes = append(in.writes, writeRec{loc: l, rhs: rhs})
	// Writing a state-derived value anywhere but back onto its own
	// location in increment form is a leak.
	if !(rhs.kind == avArith && locEq(rhs.loc, l)) {
		in.leak(rhs)
	}
}

// leak marks state-derived consumption (see the leaked field).
func (in *interp) leak(v aval) {
	if v.isStateDerived() {
		in.leaked = true
	}
	for _, e := range v.elems {
		in.leak(e)
	}
}

// keyFrom abstracts a key expression's value, leaking state-derived keys
// (which widen to KeyAny and disable increment classification).
func (in *interp) keyFrom(v aval) Key {
	if v.isStateDerived() && v.kind != avConst {
		in.leaked = true
	}
	return v.asKey()
}

// --- statements ---

func (in *interp) stmts(list []ast.Stmt) {
	for _, s := range list {
		in.stmt(s)
		if in.fp.Opaque {
			return
		}
	}
}

func (in *interp) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		in.assign(s)
	case *ast.IfStmt:
		if s.Init != nil {
			in.stmt(s.Init)
		}
		in.leak(in.eval(s.Cond))
		in.stmts(s.Body.List)
		if s.Else != nil {
			in.stmt(s.Else)
		}
	case *ast.BlockStmt:
		in.stmts(s.List)
	case *ast.ReturnStmt:
		in.ret(s)
	case *ast.ExprStmt:
		in.eval(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			in.bail(s, "unsupported declaration")
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := opaqueVal(false, false) // zero value
				if i < len(vs.Values) {
					v = in.eval(vs.Values[i])
				}
				in.bind(name, v)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			in.stmt(s.Init)
		}
		if s.Tag != nil {
			in.leak(in.eval(s.Tag))
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				in.leak(in.eval(e))
			}
			in.stmts(cc.Body)
		}
	case *ast.IncDecStmt:
		// x++ / s[k]++: treat as x = x + 1.
		if ix, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok {
			base := in.eval(ix.X)
			if base.kind == avState {
				l := Loc{Var: in.keyFrom(in.eval(ix.Index))}
				in.read(l)
				in.write(l, aval{kind: avArith, loc: l, stateDep: true})
				return
			}
		}
		in.leak(in.eval(s.X))
	case *ast.EmptyStmt:
	default:
		// for/range/select/go/defer/labels: nothing in the object library
		// needs them inside an operation body; bail conservatively.
		in.bail(s, fmt.Sprintf("unsupported statement %T", s))
	}
}

func (in *interp) bind(id *ast.Ident, v aval) {
	if id.Name == "_" {
		return
	}
	obj := in.pkg.Info.Defs[id]
	if obj == nil {
		obj = in.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if old, ok := in.env[obj]; ok {
		v = join(old, v)
	}
	in.env[obj] = v
}

func (in *interp) assign(s *ast.AssignStmt) {
	var vals []aval
	switch {
	case len(s.Rhs) == 1 && len(s.Lhs) == 2:
		// Comma-ok (map index, type assert) or a 2-result call.
		switch ast.Unparen(s.Rhs[0]).(type) {
		case *ast.IndexExpr, *ast.TypeAssertExpr:
			v := in.eval(s.Rhs[0])
			vals = []aval{v, opaqueVal(v.isStateDerived(), v.argDep)}
		default:
			v := in.eval(s.Rhs[0])
			if v.kind == avTuple && len(v.elems) == 2 {
				vals = v.elems
			} else {
				vals = []aval{opaqueVal(v.isStateDerived(), v.argDep), opaqueVal(v.isStateDerived(), v.argDep)}
			}
		}
	case len(s.Rhs) == 1 && len(s.Lhs) > 2:
		v := in.eval(s.Rhs[0])
		vals = make([]aval, len(s.Lhs))
		for i := range vals {
			if v.kind == avTuple && i < len(v.elems) {
				vals[i] = v.elems[i]
			} else {
				vals[i] = opaqueVal(v.isStateDerived(), v.argDep)
			}
		}
	default:
		for _, r := range s.Rhs {
			vals = append(vals, in.eval(r))
		}
	}
	if len(vals) != len(s.Lhs) {
		in.bail(s, "unbalanced assignment")
		return
	}
	for i, lhs := range s.Lhs {
		v := vals[i]
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			in.bind(l, v)
		case *ast.IndexExpr:
			base := in.eval(l.X)
			if base.kind == avState {
				in.write(Loc{Var: in.keyFrom(in.eval(l.Index))}, v)
			} else {
				in.bail(s, "write through a non-state container")
			}
		default:
			in.bail(s, fmt.Sprintf("unsupported assignment target %T", lhs))
		}
	}
}

// ret handles return statements. Failure returns — those whose final
// error-typed result is not nil — are excluded from the joined result:
// an errored application is "not defined on the state" and carries no
// commutativity obligation (the legality escape of Definition 2), exactly
// as VerifyConflictSoundness treats it. Accesses on the failure path are
// still recorded, conservatively.
func (in *interp) ret(s *ast.ReturnStmt) {
	vals := make([]aval, len(s.Results))
	for i, r := range s.Results {
		vals[i] = in.eval(r)
	}
	if in.failureReturn(s, vals) {
		return
	}
	in.returns = append(in.returns, vals)
	// Non-undo return values are observable: state feeding them is a leak
	// (their reads are already in the footprint; this only disables
	// increment classification).
	for i, v := range vals {
		if i == in.undoSlot {
			continue // the undo closure: analyzed separately
		}
		in.leak(v)
	}
}

// failureReturn reports whether the return's last result is error-typed
// and not nil.
func (in *interp) failureReturn(s *ast.ReturnStmt, vals []aval) bool {
	if len(s.Results) == 0 {
		return false
	}
	last := s.Results[len(s.Results)-1]
	tv, ok := in.pkg.Info.Types[last]
	if !ok || tv.Type == nil || !isErrorType(tv.Type) {
		return false
	}
	v := vals[len(vals)-1]
	return !(v.kind == avConst && v.cval == nil)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// --- expressions ---

func (in *interp) eval(e ast.Expr) aval {
	if in.fp.Opaque {
		return opaqueVal(true, true)
	}
	e = ast.Unparen(e)

	// Compile-time constants come straight from the type checker.
	if tv, ok := in.pkg.Info.Types[e]; ok && tv.Value != nil {
		return aval{kind: avConst, cval: tv.Value}
	}

	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return aval{kind: avConst}
		}
		obj := in.pkg.Info.Uses[e]
		if obj == nil {
			return opaqueVal(false, false)
		}
		if v, ok := in.env[obj]; ok {
			return v
		}
		if fd := funcDeclOf(in.pkg, obj); fd != nil {
			return aval{kind: avFunc, decl: fd, env: env{}}
		}
		// Package-level vars (error sentinels): state-independent.
		return opaqueVal(false, false)

	case *ast.FuncLit:
		return aval{kind: avFunc, lit: e, env: in.env.clone()}

	case *ast.IndexExpr:
		base := in.eval(e.X)
		switch base.kind {
		case avState:
			l := Loc{Var: in.keyFrom(in.eval(e.Index))}
			in.read(l)
			return aval{kind: avStateRead, loc: l, stateDep: true}
		case avArgs:
			iv := in.eval(e.Index)
			if iv.kind == avConst && iv.cval != nil && iv.cval.Kind() == constant.Int {
				if i, ok := constant.Int64Val(iv.cval); ok {
					return aval{kind: avArg, arg: int(i), exact: true, argDep: true}
				}
			}
			return opaqueVal(false, true)
		default:
			idx := in.eval(e.Index)
			return opaqueVal(base.isStateDerived() || idx.isStateDerived(), base.argDep || idx.argDep)
		}

	case *ast.SliceExpr:
		v := in.eval(e.X)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				v = v.taintedBy(in.eval(ix))
			}
		}
		return opaqueVal(v.isStateDerived(), v.argDep)

	case *ast.TypeAssertExpr:
		v := in.eval(e.X)
		if v.kind == avStateRead && e.Type != nil && isHandleType(typeOf(in.pkg, e.Type)) {
			// Extracting a container handle from its state variable is not
			// a semantic read: accesses happen per element through the
			// handle's methods. Drop the read just recorded.
			in.unread(v.loc)
			return aval{kind: avHandle, loc: v.loc, stateDep: true}
		}
		if v.kind == avArg {
			return v // assertion preserves identity and injectivity
		}
		if v.kind == avStateRead {
			return v
		}
		return opaqueVal(v.isStateDerived(), v.argDep)

	case *ast.BinaryExpr:
		x := in.eval(e.X)
		y := in.eval(e.Y)
		if a, ok := arithOf(x, y, e.Op); ok {
			return a
		}
		return opaqueVal(x.isStateDerived() || y.isStateDerived(), x.argDep || y.argDep)

	case *ast.UnaryExpr:
		v := in.eval(e.X)
		return opaqueVal(v.isStateDerived(), v.argDep)

	case *ast.CallExpr:
		return in.call(e)

	case *ast.SelectorExpr:
		v := in.eval(e.X)
		return opaqueVal(v.isStateDerived(), v.argDep)

	case *ast.CompositeLit:
		var out aval
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = out.taintedBy(in.eval(el))
		}
		out.kind = avOpaque
		return out

	case *ast.StarExpr:
		v := in.eval(e.X)
		return opaqueVal(v.isStateDerived(), v.argDep)

	case *ast.BasicLit:
		return opaqueVal(false, false)

	default:
		in.bail(e, fmt.Sprintf("unsupported expression %T", e))
		return opaqueVal(true, true)
	}
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// unread removes the most recent read of l (handle extraction).
func (in *interp) unread(l Loc) {
	for i := len(in.fp.Accesses) - 1; i >= 0; i-- {
		a := in.fp.Accesses[i]
		if !a.Write && locEq(a.Loc, l) {
			in.fp.Accesses = append(in.fp.Accesses[:i], in.fp.Accesses[i+1:]...)
			return
		}
	}
}

// isHandleType reports whether t is a pointer to a container the
// interpreter summarizes per element (internal/btree.Tree).
func isHandleType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tree" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/btree")
}

// arithOf recognises the increment form: a state-read combined with a
// state-independent delta under + or - (either operand order for +).
func arithOf(x, y aval, op token.Token) (aval, bool) {
	if op != token.ADD && op != token.SUB {
		return aval{}, false
	}
	stateSide, otherSide := x, y
	if y.kind == avStateRead || y.kind == avArith {
		if x.kind == avStateRead || x.kind == avArith {
			return aval{}, false // state on both sides: not a pure delta
		}
		if op != token.ADD {
			return aval{}, false // k - s[v] is not an increment of s[v]
		}
		stateSide, otherSide = y, x
	}
	if stateSide.kind != avStateRead && stateSide.kind != avArith {
		return aval{}, false
	}
	if otherSide.isStateDerived() {
		return aval{}, false
	}
	return aval{kind: avArith, loc: stateSide.loc, stateDep: true,
		argDep: stateSide.argDep || otherSide.argDep}, true
}

// --- calls ---

func (in *interp) call(e *ast.CallExpr) aval {
	info := in.pkg.Info

	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap":
			if obj := info.Uses[id]; obj != nil && obj.Pkg() == nil {
				v := in.eval(e.Args[0])
				if v.kind == avState {
					in.read(Loc{Var: Key{Kind: KeyAny}})
					return opaqueVal(true, false)
				}
				return opaqueVal(v.isStateDerived(), v.argDep)
			}
		case "append":
			if obj := info.Uses[id]; obj != nil && obj.Pkg() == nil {
				var out aval
				for _, a := range e.Args {
					out = out.taintedBy(in.eval(a))
				}
				out.kind = avOpaque
				return out
			}
		case "delete":
			if obj := info.Uses[id]; obj != nil && obj.Pkg() == nil {
				base := in.eval(e.Args[0])
				kv := in.eval(e.Args[1])
				if base.kind == avState {
					in.write(Loc{Var: in.keyFrom(kv)}, opaqueVal(false, false))
					return aval{}
				}
				in.bail(e, "delete on a non-state container")
				return opaqueVal(true, true)
			}
		case "panic":
			if obj := info.Uses[id]; obj == nil || obj.Pkg() == nil {
				in.leak(in.eval(e.Args[0]))
				return aval{}
			}
		}
		if obj := info.Uses[id]; obj != nil {
			if _, isType := obj.(*types.TypeName); isType {
				// Conversion: int64(x), string(x)...
				v := in.eval(e.Args[0])
				if v.kind == avArg {
					return v
				}
				return opaqueVal(v.isStateDerived(), v.argDep)
			}
		}
		fn := in.eval(e.Fun)
		if fn.kind == avFunc {
			return in.interpCall(e, fn)
		}
		in.bail(e, fmt.Sprintf("call of unknown function %s", id.Name))
		return opaqueVal(true, true)
	}

	if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := info.Selections[sel]; isSel {
			recv := in.eval(sel.X)
			if recv.kind == avHandle {
				return in.handleMethod(e, recv, sel.Sel.Name)
			}
			in.bail(e, fmt.Sprintf("method call %s on unknown receiver", sel.Sel.Name))
			return opaqueVal(true, true)
		}
		return in.pkgCall(e, sel)
	}

	in.bail(e, "call through unsupported expression")
	return opaqueVal(true, true)
}

// handleMethod summarizes the per-element container API of internal/btree.
func (in *interp) handleMethod(e *ast.CallExpr, recv aval, name string) aval {
	elemLoc := func(argIdx int) Loc {
		l := recv.loc
		k := Key{Kind: KeyAny}
		if argIdx < len(e.Args) {
			k = in.keyFrom(in.eval(e.Args[argIdx]))
		}
		l.Elem = &k
		return l
	}
	switch name {
	case "Lookup":
		l := elemLoc(0)
		in.read(l)
		return aval{kind: avTuple, stateDep: true, elems: []aval{
			{kind: avStateRead, loc: l, stateDep: true}, opaqueVal(true, false)}}
	case "Insert":
		l := elemLoc(0)
		in.leak(in.eval(e.Args[1])) // the stored value: taint only
		in.read(l)
		in.write(l, opaqueVal(true, true))
		return aval{kind: avTuple, stateDep: true, elems: []aval{
			{kind: avStateRead, loc: l, stateDep: true}, opaqueVal(true, false)}}
	case "Delete":
		l := elemLoc(0)
		in.read(l)
		in.write(l, opaqueVal(true, true))
		return aval{kind: avTuple, stateDep: true, elems: []aval{
			{kind: avStateRead, loc: l, stateDep: true}, opaqueVal(true, false)}}
	case "Len", "Export", "String":
		l := recv.loc
		any := Key{Kind: KeyAny}
		l.Elem = &any
		in.read(l)
		return opaqueVal(true, false)
	default:
		in.bail(e, "unknown container method "+name)
		return opaqueVal(true, true)
	}
}

// pkgCall summarizes cross-package calls the object library relies on.
func (in *interp) pkgCall(e *ast.CallExpr, sel *ast.SelectorExpr) aval {
	obj := in.pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		in.bail(e, "unresolved call")
		return opaqueVal(true, true)
	}
	path := obj.Pkg().Path()
	name := obj.Name()
	switch {
	case path == "fmt" && name == "Sprintf":
		return in.sprintf(e)
	case path == "fmt" && (name == "Errorf" || name == "Sprint" || name == "Sprintln"):
		var out aval
		for _, a := range e.Args {
			out = out.taintedBy(in.eval(a))
		}
		out.kind = avOpaque
		return out
	case strings.HasSuffix(path, "internal/btree") && name == "New":
		for _, a := range e.Args {
			in.eval(a)
		}
		return opaqueVal(false, false)
	}
	// A same-module function (the core helpers in fixtures, argInt and
	// friends in the real tree resolve as plain idents): interpret it.
	if fd := funcDeclOf(in.pkg, obj); fd != nil {
		return in.interpCall(e, aval{kind: avFunc, decl: fd, env: env{}})
	}
	in.bail(e, fmt.Sprintf("call of %s.%s", path, name))
	return opaqueVal(true, true)
}

// sprintf recognises the injective single-verb format: Sprintf("p%dq", x)
// is injective in x, so the result keys as precisely as x itself.
func (in *interp) sprintf(e *ast.CallExpr) aval {
	if len(e.Args) == 2 {
		f := in.eval(e.Args[0])
		v := in.eval(e.Args[1])
		if f.kind == avConst && f.cval != nil && f.cval.Kind() == constant.String &&
			injectiveFormat(constant.StringVal(f.cval)) && v.kind == avArg && v.exact {
			return v // the string image of args[v.arg], still injective
		}
		return opaqueVal(v.isStateDerived(), v.argDep)
	}
	var out aval
	for _, a := range e.Args {
		out = out.taintedBy(in.eval(a))
	}
	out.kind = avOpaque
	return out
}

// injectiveFormat reports whether the format string has exactly one verb
// and that verb renders its operand injectively.
func injectiveFormat(f string) bool {
	verbs := 0
	for i := 0; i < len(f); i++ {
		if f[i] != '%' {
			continue
		}
		if i+1 >= len(f) {
			return false
		}
		switch f[i+1] {
		case '%':
		case 'd', 'v', 's', 'q', 'x':
			verbs++
		default:
			return false
		}
		i++
	}
	return verbs == 1
}

// interpCall interprets a closure or same-module function call inline,
// recording its accesses into the current footprint and returning the
// join of its success returns.
func (in *interp) interpCall(e *ast.CallExpr, fn aval) aval {
	if in.depth >= 12 {
		in.bail(e, "call depth limit (recursion?)")
		return opaqueVal(true, true)
	}
	var ftype *ast.FuncType
	var body *ast.BlockStmt
	switch {
	case fn.lit != nil:
		ftype, body = fn.lit.Type, fn.lit.Body
	case fn.decl != nil:
		ftype, body = fn.decl.Type, fn.decl.Body
	}
	if body == nil {
		in.bail(e, "call of bodyless function")
		return opaqueVal(true, true)
	}

	callee := &interp{
		pkg:      in.pkg,
		fp:       in.fp,
		env:      fn.env.clone(),
		depth:    in.depth + 1,
		undoSlot: -1,
	}
	args := make([]aval, len(e.Args))
	for i, a := range e.Args {
		args[i] = in.eval(a)
	}
	i := 0
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			v := opaqueVal(false, false)
			if i < len(args) {
				v = args[i]
			}
			callee.bind(name, v)
			i++
		}
	}
	callee.stmts(body.List)
	in.leaked = in.leaked || callee.leaked
	in.writes = append(in.writes, callee.writes...)
	if in.fp.Opaque {
		return opaqueVal(true, true)
	}

	nres := 0
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			nres += n
		}
	}
	if len(callee.returns) == 0 {
		// Every return was a failure return: the call's results only
		// matter on excluded paths.
		if nres > 1 {
			elems := make([]aval, nres)
			for i := range elems {
				elems[i] = opaqueVal(false, false)
			}
			return aval{kind: avTuple, elems: elems}
		}
		return opaqueVal(false, false)
	}
	joined := append([]aval(nil), callee.returns[0]...)
	for _, r := range callee.returns[1:] {
		for i := range joined {
			if i < len(r) {
				joined[i] = join(joined[i], r[i])
			}
		}
	}
	if len(joined) == 1 {
		return joined[0]
	}
	var st, ad bool
	for _, v := range joined {
		st = st || v.isStateDerived()
		ad = ad || v.argDep
	}
	return aval{kind: avTuple, elems: joined, stateDep: st, argDep: ad}
}

// funcDeclOf finds the package-level FuncDecl defining obj.
func funcDeclOf(pkg *Package, obj types.Object) *ast.FuncDecl {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// --- operation assembly ---

// opSource is one operation literal plus the constructor environment its
// function literals close over.
type opSource struct {
	name     string
	readOnly bool
	apply    *ast.FuncLit
	peek     *ast.FuncLit
	env      env
	pos      token.Pos
}

// analyzeOp derives the footprint of one operation: interpret Apply,
// analyze each undo closure it returns (under a frozen capture
// environment), interpret Peek, classify increments, and merge.
func analyzeOp(pkg *Package, src opSource) *OpFootprint {
	fp := &OpFootprint{Name: src.name, ReadOnly: src.readOnly, Pos: src.pos}
	if src.apply == nil {
		fp.Opaque = true
		fp.OpaqueWhy = "Apply is not a function literal"
		return fp
	}

	inA := newFuncInterp(pkg, fp, src.env, src.apply, 1)
	inA.stmts(src.apply.Body.List)
	applyEnd := len(fp.Accesses)

	// Undo closures from the success returns' undo slot.
	var undos []aval
	seen := map[*ast.FuncLit]bool{}
	undoOK := true
	for _, r := range inA.returns {
		if len(r) <= 1 {
			continue
		}
		u := r[1]
		switch {
		case u.kind == avConst && u.cval == nil:
		case u.kind == avFunc && u.lit != nil:
			if !seen[u.lit] {
				seen[u.lit] = true
				undos = append(undos, u)
			}
		default:
			undoOK = false
			fp.Problems = append(fp.Problems,
				fmt.Sprintf("operation %s returns an undo the analysis cannot resolve", src.name))
		}
	}
	var undoInterps []*interp
	for _, u := range undos {
		inU := newFuncInterp(pkg, fp, freeze(u.env), u.lit, -1)
		inU.stmts(u.lit.Body.List)
		undoInterps = append(undoInterps, inU)
	}
	undoEnd := len(fp.Accesses)

	if src.peek != nil {
		inP := newFuncInterp(pkg, fp, src.env, src.peek, -1)
		inP.stmts(src.peek.Body.List)
	}

	if fp.Opaque {
		fp.Accesses = nil
		return fp
	}

	applyAcc := fp.Accesses[:applyEnd]
	undoAcc := fp.Accesses[applyEnd:undoEnd]
	peekAcc := fp.Accesses[undoEnd:]

	// Footprint-level obligations.
	for _, a := range peekAcc {
		if a.Write {
			fp.Problems = append(fp.Problems,
				fmt.Sprintf("operation %s writes %s in Peek — Peek must be pure", src.name, a.Loc))
		}
	}
	if src.readOnly {
		for _, a := range fp.Accesses {
			if a.Write {
				fp.Problems = append(fp.Problems,
					fmt.Sprintf("operation %s is declared ReadOnly but writes %s", src.name, a.Loc))
			}
		}
	}
	// Undo closures must stay inside the operation's own footprint: the
	// engine interleaves undos of commuting operations, so an undo
	// touching fresh locations would widen the real conflict relation
	// beyond what Apply shows.
	for _, u := range undoAcc {
		if !coveredBy(u, applyAcc) {
			fp.Problems = append(fp.Problems,
				fmt.Sprintf("operation %s: undo access %s is outside Apply's footprint", src.name, u))
		}
	}

	// Increment classification.
	incr := classifyIncrements(inA, undoInterps, peekAcc, undoOK)
	merged := make([]Access, 0, len(fp.Accesses))
	for l := range incr {
		merged = append(merged, Access{Loc: l, Write: true, Incr: true})
	}
	for _, a := range fp.Accesses {
		if a.Loc.Elem == nil {
			if _, ok := incr[a.Loc]; ok {
				continue // absorbed into the increment access
			}
		}
		merged = append(merged, a)
	}
	fp.Accesses = dedupAccesses(merged)
	return fp
}

func newFuncInterp(pkg *Package, fp *OpFootprint, base env, lit *ast.FuncLit, undoSlot int) *interp {
	in := &interp{pkg: pkg, fp: fp, env: base.clone(), undoSlot: undoSlot}
	params := lit.Type.Params.List
	for _, field := range params {
		t := typeOf(pkg, field.Type)
		for _, name := range field.Names {
			switch {
			case isStateType(t):
				in.bind(name, aval{kind: avState, stateDep: true})
			case isValueSliceType(t):
				in.bind(name, aval{kind: avArgs, argDep: true})
			default:
				in.bind(name, opaqueVal(false, false))
			}
		}
	}
	return in
}

// isStateType reports whether t is core.State (by name and path suffix).
func isStateType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "State" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// isValueSliceType reports whether t is []core.Value.
func isValueSliceType(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Value" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// classifyIncrements returns the locations the operation updates in pure
// increment form: no state leak anywhere in Apply, every Apply write of
// the location is an arith update of itself, every undo write of it is
// too (undo deltas are frozen captures, i.e. per-execution constants),
// and Peek never touches it.
func classifyIncrements(inA *interp, undos []*interp, peekAcc []Access, undoOK bool) map[Loc]bool {
	if inA.leaked || !undoOK {
		return nil
	}
	for _, u := range undos {
		if u.leaked {
			return nil
		}
	}
	cand := map[Loc]bool{}
	for _, w := range inA.writes {
		if w.loc.Elem != nil || w.loc.Var.Kind == KeyAny {
			continue
		}
		if w.rhs.kind == avArith && locEq(w.rhs.loc, w.loc) {
			cand[w.loc] = true
		}
	}
	// Disqualify: any non-arith write to the candidate (Apply or undo),
	// or a Peek access touching it.
	check := func(ws []writeRec) {
		for _, w := range ws {
			for l := range cand {
				if locEq(w.loc, l) && !(w.rhs.kind == avArith && locEq(w.rhs.loc, l)) {
					delete(cand, l)
				}
			}
		}
	}
	check(inA.writes)
	for _, u := range undos {
		check(u.writes)
		// The undo must write the candidate back (the inverse update);
		// an undo that ignores the loc is suspicious but safe: its
		// absence just means Apply's write is the only effect — still
		// require the undo arith write for the classification.
		for l := range cand {
			found := false
			for _, w := range u.writes {
				if locEq(w.loc, l) {
					found = true
				}
			}
			if !found {
				delete(cand, l)
			}
		}
	}
	for _, a := range peekAcc {
		for l := range cand {
			if overlapLoc(a.Loc, l).conflict {
				delete(cand, l)
			}
		}
	}
	if len(cand) == 0 {
		return nil
	}
	return cand
}

// coveredBy reports whether access u is within the apply footprint: some
// apply access of at least u's strength on the same location.
func coveredBy(u Access, apply []Access) bool {
	for _, a := range apply {
		if u.Write && !a.Write {
			continue
		}
		if locEq(a.Loc, u.Loc) {
			return true
		}
		// A var-level apply access covers element accesses of the var.
		if a.Loc.Elem == nil && u.Loc.Elem != nil && a.Loc.Var == u.Loc.Var {
			return true
		}
	}
	return false
}

func dedupAccesses(in []Access) []Access {
	sort.Slice(in, func(i, j int) bool { return accessLess(in[i], in[j]) })
	out := in[:0]
	for i, a := range in {
		if i > 0 && accessEq(out[len(out)-1], a) {
			continue
		}
		out = append(out, a)
	}
	return out
}

func accessEq(a, b Access) bool {
	return a.Write == b.Write && a.Incr == b.Incr && locEq(a.Loc, b.Loc)
}

func accessLess(a, b Access) bool {
	as, bs := a.String(), b.String()
	if as != bs {
		return as < bs
	}
	return false
}
