package engine

// Serial commit fast path: declared-set transactions must bypass the
// scheduler entirely, undo cleanly across shards, publish versions for
// snapshot readers, grow their gate set on a membership miss, and —
// since their per-attempt state is pooled — stay correct across heavy
// sequential and concurrent reuse.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// testRouter is a minimal Router over explicit object placements.
type testRouter struct {
	engines []*Engine
	gates   []sync.RWMutex
	homes   map[string]int
}

func (r *testRouter) HomeOf(object string) (*Engine, int, error) {
	s, ok := r.homes[object]
	if !ok {
		return nil, 0, fmt.Errorf("testRouter: unknown object %q", object)
	}
	return r.engines[s], s, nil
}
func (r *testRouter) NumShards() int      { return len(r.engines) }
func (r *testRouter) Base() *Engine       { return r.engines[0] }
func (r *testRouter) TryGate(s int) bool  { return r.gates[s].TryLock() }
func (r *testRouter) LockGate(s int)      { r.gates[s].Lock() }
func (r *testRouter) UnlockGate(s int)    { r.gates[s].Unlock() }
func (r *testRouter) RLockGate(s int)     { r.gates[s].RLock() }
func (r *testRouter) TryRGate(s int) bool { return r.gates[s].TryRLock() }
func (r *testRouter) RUnlockGate(s int)   { r.gates[s].RUnlock() }

// spySched counts every scheduler entry point on top of the empty
// scheduler, so tests can prove a path never consulted it.
type spySched struct {
	None
	begins, steps, commits atomic.Int64
}

func (s *spySched) Begin(e *Exec) error {
	s.begins.Add(1)
	return s.None.Begin(e)
}
func (s *spySched) Step(e *Exec, obj *Object, inv core.OpInvocation) (core.Value, error) {
	s.steps.Add(1)
	return s.None.Step(e, obj, inv)
}
func (s *spySched) Commit(e *Exec) error {
	s.commits.Add(1)
	return s.None.Commit(e)
}

// newSerialFixture builds n engines (one spy scheduler each, shared
// identity/clock space) with one counter object per shard, named ctr<s>,
// plus a bump method.
func newSerialFixture(t *testing.T, n int, opts Options) (*testRouter, []*spySched) {
	t.Helper()
	shared := NewShared()
	r := &testRouter{
		gates: make([]sync.RWMutex, n),
		homes: make(map[string]int),
	}
	spies := make([]*spySched, n)
	for s := 0; s < n; s++ {
		spies[s] = &spySched{}
		o := opts
		o.Shared = shared
		en := New(spies[s], o)
		r.engines = append(r.engines, en)
		name := fmt.Sprintf("ctr%d", s)
		en.AddObject(name, objects.Counter(), nil)
		en.Register(name, "bump", func(c *Ctx) (core.Value, error) {
			return c.Do(name, "Add", int64(1))
		})
		r.homes[name] = s
	}
	return r, spies
}

func counterValue(t *testing.T, r *testRouter, name string) int64 {
	t.Helper()
	en, _, err := r.HomeOf(name)
	if err != nil {
		t.Fatal(err)
	}
	v := en.Object(name).StateSnapshot()["n"]
	if v == nil {
		return 0
	}
	return v.(int64)
}

// TestSerialPathSkipsScheduler: a declared cross-shard transaction runs
// without a single scheduler call in any shard, while an undeclared one
// goes through Begin/Step/Commit as usual.
func TestSerialPathSkipsScheduler(t *testing.T) {
	r, spies := newSerialFixture(t, 4, Options{})
	ctx := context.Background()
	body := func(c *Ctx) (core.Value, error) {
		if _, err := c.Call("ctr0", "bump"); err != nil {
			return nil, err
		}
		return c.Call("ctr2", "bump")
	}
	if _, err := RunSharded(ctx, r, "declared", body, nil, []string{"ctr0", "ctr2"}); err != nil {
		t.Fatal(err)
	}
	for s, spy := range spies {
		if n := spy.begins.Load() + spy.steps.Load() + spy.commits.Load(); n != 0 {
			t.Fatalf("declared transaction consulted shard %d's scheduler %d times", s, n)
		}
	}
	if _, err := RunSharded(ctx, r, "undeclared", func(c *Ctx) (core.Value, error) {
		return c.Call("ctr1", "bump")
	}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if spies[1].steps.Load() == 0 {
		t.Fatal("undeclared transaction bypassed its shard's scheduler")
	}
	if got := counterValue(t, r, "ctr0"); got != 1 {
		t.Fatalf("ctr0 = %d, want 1", got)
	}
}

// TestSerialAbortUndoesAcrossShards: an aborting declared transaction
// rolls its effects back in every shard it touched, and the recorders
// mark the abort everywhere.
func TestSerialAbortUndoesAcrossShards(t *testing.T) {
	r, _ := newSerialFixture(t, 3, Options{})
	boom := fmt.Errorf("boom")
	_, err := RunSharded(context.Background(), r, "doomed", func(c *Ctx) (core.Value, error) {
		if _, err := c.Call("ctr0", "bump"); err != nil {
			return nil, err
		}
		if _, err := c.Call("ctr2", "bump"); err != nil {
			return nil, err
		}
		return nil, boom
	}, nil, []string{"ctr0", "ctr2"})
	if err == nil {
		t.Fatal("doomed transaction committed")
	}
	for _, name := range []string{"ctr0", "ctr2"} {
		if got := counterValue(t, r, name); got != 0 {
			t.Fatalf("%s = %d after abort, want 0", name, got)
		}
	}
	for _, s := range []int{0, 2} {
		h, err := r.engines[s].HistoryErr()
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Roots) != 1 || !h.Exec(h.Roots[0]).Aborted {
			t.Fatalf("shard %d: abort not marked in recorder", s)
		}
	}
	if got := r.engines[0].Aborts() + r.engines[2].Aborts(); got != 1 {
		t.Fatalf("aborts counted %d times, want exactly once", got)
	}
}

// TestSerialPublishesVersions: serial commits feed the version rings, so
// snapshot views opened afterwards read the committed state lock-free.
func TestSerialPublishesVersions(t *testing.T) {
	r, _ := newSerialFixture(t, 2, Options{Versioning: true})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := RunSharded(ctx, r, "bump", func(c *Ctx) (core.Value, error) {
			return c.Call("ctr1", "bump")
		}, nil, []string{"ctr1"}); err != nil {
			t.Fatal(err)
		}
	}
	en := r.engines[1]
	ring := en.Object("ctr1").Versions()
	newest := ring.Newest()
	if newest.Gap {
		t.Fatal("serial commit published a gap on an uncontended object")
	}
	if got := newest.State["n"]; got != int64(3) {
		t.Fatalf("published version n = %v, want 3", got)
	}
	v, err := en.RunView(ctx, "read", func(c *Ctx) (core.Value, error) {
		return c.Do("ctr1", "Get")
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 3 {
		t.Fatalf("view read %v, want 3", v)
	}
}

// TestSerialMembershipRestartGrowsSet: a declared set missing a shard
// the body touches restarts with the grown set and commits; the misses
// never count as workload aborts or retries.
func TestSerialMembershipRestartGrowsSet(t *testing.T) {
	r, spies := newSerialFixture(t, 4, Options{})
	// Declared: ctr3 only. Touched: ctr3, then ctr1, then ctr0 — two
	// membership restarts, each growing the set below the held maximum.
	if _, err := RunSharded(context.Background(), r, "growing", func(c *Ctx) (core.Value, error) {
		if _, err := c.Call("ctr3", "bump"); err != nil {
			return nil, err
		}
		if _, err := c.Call("ctr1", "bump"); err != nil {
			return nil, err
		}
		return c.Call("ctr0", "bump")
	}, nil, []string{"ctr3"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ctr0", "ctr1", "ctr3"} {
		if got := counterValue(t, r, name); got != 1 {
			t.Fatalf("%s = %d, want 1", name, got)
		}
	}
	var aborts, retries, commits int64
	for _, en := range r.engines {
		aborts += en.Aborts()
		retries += en.Retries()
		commits += en.Commits()
	}
	if aborts != 0 || retries != 0 {
		t.Fatalf("membership restarts counted as workload outcomes: aborts=%d retries=%d", aborts, retries)
	}
	if commits != 1 {
		t.Fatalf("commits = %d, want 1", commits)
	}
	for s, spy := range spies {
		if n := spy.steps.Load(); n != 0 {
			t.Fatalf("restarted serial transaction reached shard %d's scheduler (%d steps)", s, n)
		}
	}
}

// TestSerialPoolReuseHammer: the serial path pools its per-attempt
// execution state; heavy sequential and concurrent reuse — commits,
// aborts, and membership restarts interleaved — must never leak state
// between transactions. Run with -race in CI.
func TestSerialPoolReuseHammer(t *testing.T) {
	r, _ := newSerialFixture(t, 4, Options{})
	ctx := context.Background()
	const (
		workers = 8
		txns    = 200
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				a := fmt.Sprintf("ctr%d", (w+i)%4)
				b := fmt.Sprintf("ctr%d", (w+i+1)%4)
				switch i % 3 {
				case 0: // declared pair, commits
					if _, err := RunSharded(ctx, r, "pair", func(c *Ctx) (core.Value, error) {
						if _, err := c.Call(a, "bump"); err != nil {
							return nil, err
						}
						return c.Call(b, "bump")
					}, nil, []string{a, b}); err != nil {
						errCh <- err
						return
					}
				case 1: // declared subset, membership restart, commits
					if _, err := RunSharded(ctx, r, "grow", func(c *Ctx) (core.Value, error) {
						if _, err := c.Call(a, "bump"); err != nil {
							return nil, err
						}
						return c.Call(b, "bump")
					}, nil, []string{a}); err != nil {
						errCh <- err
						return
					}
				default: // declared, aborts after mutating both shards
					if _, err := RunSharded(ctx, r, "doomed", func(c *Ctx) (core.Value, error) {
						if _, err := c.Call(a, "bump"); err != nil {
							return nil, err
						}
						if _, err := c.Call(b, "bump"); err != nil {
							return nil, err
						}
						return nil, fmt.Errorf("planned abort")
					}, nil, []string{a, b}); err == nil {
						errCh <- fmt.Errorf("doomed transaction committed")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Committed bump pairs: workers × txns × 2/3 of the stream, two bumps
	// each; the aborted third contributes nothing.
	want := int64(0)
	for w := 0; w < workers; w++ {
		for i := 0; i < txns; i++ {
			if i%3 != 2 {
				want += 2
			}
		}
	}
	total := int64(0)
	for s := 0; s < 4; s++ {
		total += counterValue(t, r, fmt.Sprintf("ctr%d", s))
	}
	if total != want {
		t.Fatalf("total bumps = %d, want %d (pooled state leaked across transactions?)", total, want)
	}
}

// TestParallelLaneAbortVsJoinRace: one lane's child abort iterates the
// joined-shard list (markAbortedEverywhere / the scheduled path's
// forEachSched) while another lane is still joining shards — the
// in-place sorted insert shifts the backing array, so the iteration must
// run on a locked copy. Regression test for the torn-snapshot race; run
// with -race in CI. Covers both modes: serial (declared) and scheduled
// (undeclared).
func TestParallelLaneAbortVsJoinRace(t *testing.T) {
	r, _ := newSerialFixture(t, 4, Options{})
	ctx := context.Background()
	planned := fmt.Errorf("planned child abort")
	for s := 0; s < 4; s++ {
		name := fmt.Sprintf("ctr%d", s)
		r.engines[s].Register(name, "fail", func(c *Ctx) (core.Value, error) {
			return nil, planned
		})
	}
	for _, touches := range [][]string{
		{"ctr0", "ctr1", "ctr2", "ctr3"}, // serial mode
		nil,                              // scheduled mode (discovery)
	} {
		for i := 0; i < 50; i++ {
			_, err := RunSharded(ctx, r, "racer", func(c *Ctx) (core.Value, error) {
				perr := c.Parallel(
					func(c *Ctx) error {
						_, err := c.Call("ctr3", "fail") // child aborts, iterating joined
						return err
					},
					func(c *Ctx) error {
						if _, err := c.Call("ctr1", "bump"); err != nil {
							return err
						}
						if _, err := c.Call("ctr0", "bump"); err != nil {
							return err
						}
						_, err := c.Call("ctr2", "bump")
						return err
					},
				)
				// The failing lane's error aborts the whole transaction.
				return nil, perr
			}, nil, touches)
			if err == nil {
				t.Fatal("transaction with a failing lane committed")
			}
		}
	}
	// Every attempt aborted: all bumps must have been undone.
	for s := 0; s < 4; s++ {
		if got := counterValue(t, r, fmt.Sprintf("ctr%d", s)); got != 0 {
			t.Fatalf("ctr%d = %d after aborts, want 0", s, got)
		}
	}
}

// TestGateWaitHonoursCancellation: a transaction queued on a held shard
// gate must return promptly when its context is cancelled — gate waits
// are bounded only by other transactions' durations, so they honour ctx
// like every other blocking point. The abandoned acquisition must also
// release itself once it lands, leaving the gate usable.
func TestGateWaitHonoursCancellation(t *testing.T) {
	r, _ := newSerialFixture(t, 2, Options{})
	for _, mode := range []struct {
		name    string
		touches []string
	}{
		{"serial", []string{"ctr1"}},
		{"scheduled", nil},
	} {
		t.Run(mode.name, func(t *testing.T) {
			r.LockGate(1) // hold ctr1's shard exclusively
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := RunSharded(ctx, r, "blocked", func(c *Ctx) (core.Value, error) {
					return c.Call("ctr1", "bump")
				}, nil, mode.touches)
				done <- err
			}()
			time.Sleep(50 * time.Millisecond) // let it queue on the gate
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled gate wait returned %v, want context.Canceled", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("cancelled transaction still waiting on the shard gate")
			}
			r.UnlockGate(1)
			// The abandoned acquisition releases itself; a fresh
			// transaction must get through.
			if _, err := RunSharded(context.Background(), r, "after", func(c *Ctx) (core.Value, error) {
				return c.Call("ctr1", "bump")
			}, nil, mode.touches); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestObjectlessTransactionRecorded: a sharded transaction that commits
// without touching any object still lands in the base engine's history —
// the same contract the unsharded engine keeps.
func TestObjectlessTransactionRecorded(t *testing.T) {
	r, _ := newSerialFixture(t, 2, Options{})
	if _, err := RunSharded(context.Background(), r, "noop", func(c *Ctx) (core.Value, error) {
		return int64(7), nil
	}, nil, nil); err != nil {
		t.Fatal(err)
	}
	h, err := r.Base().HistoryErr()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Roots) != 1 {
		t.Fatalf("object-less transaction missing from the base history (roots = %v)", h.Roots)
	}
	if h.Exec(h.Roots[0]).Aborted {
		t.Fatal("committed object-less transaction marked aborted")
	}
}
