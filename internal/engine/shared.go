// Cross-engine shared state for sharded object spaces.
//
// A sharded space (internal/shard) partitions the objects across N
// independent engines — each with its own scheduler, lock manager, object
// latches and version rings — so that transactions against disjoint
// shards never touch a common mutex. Three pieces of state must stay
// global for the model to keep holding across the partition:
//
//   - top-level transaction identities (TopAllocator): ExecIDs double as
//     hierarchical timestamps (Section 5.2), so they must be allocated
//     from one monotone counter — a cross-shard transaction carries the
//     same timestamp into every engine it touches, and the low-water mark
//     that gates timestamp GC must be the global minimum live ID;
//   - the history tick clock: per-shard histories are stitched into one
//     history (shard.Stitch), and the < relation is recorded by ticks, so
//     all recorders must draw from one clock for the stitched order to be
//     meaningful (only paid under full recording);
//   - the recoverability tracker (depTracker): a cross-shard transaction
//     under an optimistic scheduler can observe uncommitted effects in
//     several shards, and its commit barrier must await all of them.
package engine

import (
	"sync"
	"sync/atomic"

	"objectbase/internal/core"
)

// topStripes is the number of live-set stripes in a TopAllocator. Sixteen
// keeps the stripe mutexes off each other's cache lines for any plausible
// shard count while MinLive (a GC-path rarity) still only scans 16 maps.
const topStripes = 16

// TopAllocator hands out top-level transaction numbers and tracks which
// are still live. Allocation is one atomic add; liveness registration is
// striped so that engines sharing the allocator do not serialise on one
// mutex per transaction. MinLive — the paper's low-water condition for
// discarding timestamp information — is only certain when no allocation
// is mid-registration; the allocator then falls back to the last
// certified value, which is stale but conservative (GC prunes less, never
// more, than it may).
type TopAllocator struct {
	n       atomic.Int32
	pending atomic.Int64 // allocations between Add and live-set insert
	safeMin atomic.Int32 // last certified MinLive (monotone, conservative)
	stripes [topStripes]topStripe
}

type topStripe struct {
	mu   sync.Mutex
	live map[int32]struct{}
	// pad the stripe to a full 64-byte cache line (mutex 8 + map header 8
	// + 48) so neighbouring stripes do not false-share under cross-shard
	// traffic.
	_ [48]byte
}

// NewTopAllocator returns an empty allocator.
func NewTopAllocator() *TopAllocator {
	a := &TopAllocator{}
	for i := range a.stripes {
		a.stripes[i].live = make(map[int32]struct{})
	}
	return a
}

func (a *TopAllocator) stripe(n int32) *topStripe {
	return &a.stripes[uint32(n)%topStripes]
}

// Alloc assigns the next top-level transaction identity and registers it
// live. The pending counter brackets the window between the atomic
// allocation and the live-set insert, so MinLive can tell when its scan
// is complete.
func (a *TopAllocator) Alloc() core.ExecID {
	a.pending.Add(1)
	n := a.n.Add(1) - 1
	s := a.stripe(n)
	s.mu.Lock()
	s.live[n] = struct{}{}
	s.mu.Unlock()
	a.pending.Add(-1)
	return core.RootID(n)
}

// Release retires a finished top-level transaction.
func (a *TopAllocator) Release(id core.ExecID) {
	s := a.stripe(id[0])
	s.mu.Lock()
	delete(s.live, id[0])
	s.mu.Unlock()
}

// Count returns the number of identities assigned so far.
func (a *TopAllocator) Count() int32 { return a.n.Load() }

// MinLive returns a lower bound on the smallest live transaction number —
// the next number to assign when none is live. The bound is exact
// whenever no allocation is caught between its atomic add and its
// live-set insert; otherwise the last certified value is returned
// (staleness only delays garbage collection, it never unblocks it early).
func (a *TopAllocator) MinLive() int32 {
	for attempt := 0; attempt < 4; attempt++ {
		n0 := a.n.Load()
		if a.pending.Load() != 0 {
			continue
		}
		// Every ID below n0 is now registered or already released: the
		// pending counter covered the add-to-insert window of each.
		low := n0
		for i := range a.stripes {
			s := &a.stripes[i]
			s.mu.Lock()
			for m := range s.live {
				if m < low {
					low = m
				}
			}
			s.mu.Unlock()
		}
		// Monotone publication: a racing certification may compute an
		// older bound; keep the maximum.
		for {
			prev := a.safeMin.Load()
			if low <= prev || a.safeMin.CompareAndSwap(prev, low) {
				break
			}
		}
		return a.safeMin.Load()
	}
	return a.safeMin.Load()
}

// Shared bundles the cross-engine state of one sharded object space. Pass
// the same Shared to every engine of the space via Options.Shared; an
// engine built without one gets private instances with identical
// behaviour.
type Shared struct {
	tops  *TopAllocator
	clock atomic.Int64

	depsOnce sync.Once
	deps     *depTracker
}

// NewShared returns the shared state for one sharded space.
func NewShared() *Shared {
	return &Shared{tops: NewTopAllocator()}
}

// depsFor returns the space-wide recoverability tracker, created on first
// use with the given enablement. All engines of a space run the same
// scheduler, so the flag agrees across calls.
func (s *Shared) depsFor(enabled bool) *depTracker {
	s.depsOnce.Do(func() { s.deps = newDepTracker(enabled) })
	return s.deps
}
