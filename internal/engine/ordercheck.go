//go:build ordercheck

// The engine's half of the ordercheck runtime witness (see
// internal/lock/ordercheck.go for the tracker): the object latch and the
// publication mutex join the per-goroutine tier check, and the
// shard-gate protocol gets per-transaction assertions that gates are
// only ever held in ascending directory order — the property the static
// lockorder analyzer checks per call site, witnessed here across the
// whole acquire path at runtime. Gate tracking is per transaction, not
// per goroutine, because a cross-shard transaction's lanes may acquire
// and release gates from different goroutines.

package engine

import (
	"fmt"

	"objectbase/internal/lock"
)

const (
	ordRankObject = 10
	ordRankPub    = 50
)

func ordAcquire(rank int, name string) { lock.OrdAcquire(rank, name) }
func ordRelease(rank int, name string) { lock.OrdRelease(rank, name) }

// ordGates asserts that a transaction's gate set is strictly ascending.
func ordGates(gated []int) {
	for i := 1; i < len(gated); i++ {
		if gated[i] <= gated[i-1] {
			panic(fmt.Sprintf("ordercheck: gate set %v not in ascending directory order", gated))
		}
	}
}

// ordGateAppend asserts that joining shard s after the gates already
// held respects directory order.
func ordGateAppend(gated []int, s int) {
	if n := len(gated); n > 0 && s <= gated[n-1] {
		panic(fmt.Sprintf("ordercheck: gate %d acquired after gate %d: shard gates must be taken in ascending directory order", s, gated[n-1]))
	}
}
