package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

func TestParallelErrorPropagates(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	en.Register("A", "boom", func(ctx *Ctx) (core.Value, error) {
		return nil, ctx.Abort("boom")
	})
	en.Register("A", "fine", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("A", "Read", "x")
	})
	_, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return nil, ctx.Parallel(
			func(c *Ctx) error { _, e := c.Call("A", "fine"); return e },
			func(c *Ctx) error { _, e := c.Call("A", "boom"); return e },
			func(c *Ctx) error { _, e := c.Call("A", "fine"); return e },
		)
	})
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("parallel must surface the abort, got %v", err)
	}
	// The top-level transaction aborted; the fine legs' effects vanished.
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if !h.Aborted(core.RootID(0)) {
		t.Fatalf("top-level should have aborted")
	}
}

func TestNestedParallel(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	en.Register("C", "add", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("C", "Add", int64(1))
	})
	fanout := func(c *Ctx, n int) error {
		legs := make([]func(*Ctx) error, n)
		for i := range legs {
			legs[i] = func(cc *Ctx) error { _, e := cc.Call("C", "add"); return e }
		}
		return c.Parallel(legs...)
	}
	_, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return nil, ctx.Parallel(
			func(c *Ctx) error { return fanout(c, 3) },
			func(c *Ctx) error { return fanout(c, 3) },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if got := h.FinalStates["C"]["n"]; got != int64(6) {
		t.Fatalf("n = %v, want 6", got)
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
}

func TestKillChannel(t *testing.T) {
	en := newTestEngine(None{}, Options{MaxRetries: NoRetry})
	started := make(chan *Exec, 1)
	finished := make(chan error, 1)
	go func() {
		_, err := en.Run("victim", func(ctx *Ctx) (core.Value, error) {
			started <- ctx.Exec()
			<-ctx.Exec().KillCh()
			_, derr := ctx.Do("A", "Read", "x")
			return nil, derr
		})
		finished <- err
	}()
	e := <-started
	if e.Killed() {
		t.Fatalf("not yet killed")
	}
	// Simulate a cascade kill.
	e.kill()
	err := <-finished
	if err == nil || !Retriable(err) {
		t.Fatalf("killed transaction must abort retriably, got %v", err)
	}
	if !e.Killed() {
		t.Fatalf("killed flag must be set")
	}
	e.kill() // idempotent
}

func TestMinLiveTopAndTopCount(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	if en.TopCount() != 0 || en.MinLiveTop() != 0 {
		t.Fatalf("fresh engine: count=%d min=%d", en.TopCount(), en.MinLiveTop())
	}
	hold := make(chan struct{})
	inTxn := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = en.Run("T", func(ctx *Ctx) (core.Value, error) {
			close(inTxn)
			<-hold
			return nil, nil
		})
	}()
	<-inTxn
	if en.MinLiveTop() != 0 {
		t.Fatalf("live txn 0 should pin the low water, got %d", en.MinLiveTop())
	}
	if _, err := en.Run("T2", func(ctx *Ctx) (core.Value, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if en.MinLiveTop() != 0 {
		t.Fatalf("low water still pinned by txn 0, got %d", en.MinLiveTop())
	}
	close(hold)
	<-done
	if got := en.MinLiveTop(); got != en.TopCount() {
		t.Fatalf("all finished: min=%d want topCount=%d", got, en.TopCount())
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	err := en.RunMany(2, 10, func(i int) (string, MethodFunc, []core.Value) {
		return "T", func(ctx *Ctx) (core.Value, error) {
			if i == 5 {
				return nil, ctx.Abort("fail once")
			}
			return nil, nil
		}, nil
	})
	if err == nil {
		t.Fatalf("RunMany must propagate the failure")
	}
}

func TestStepOnUnknownOperation(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	if _, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("A", "NoSuchOp")
	}); err == nil {
		t.Fatalf("unknown operation must fail")
	}
}

func TestOperationErrorAbortsCleanly(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	_, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		if _, err := ctx.Do("A", "Write", "x", int64(1)); err != nil {
			return nil, err
		}
		// Bad argument type: the operation itself errors.
		return ctx.Do("A", "Write", int64(5), int64(2))
	})
	if err == nil {
		t.Fatalf("operation error must fail the transaction")
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if got := h.FinalStates["A"]["x"]; got != int64(0) {
		t.Fatalf("failed transaction's write leaked: %v", got)
	}
}

func TestObjectSnapshotIsolated(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	obj := en.Object("A")
	snap := obj.StateSnapshot()
	snap["x"] = int64(99)
	if _, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		v, err := ctx.Do("A", "Read", "x")
		if err != nil {
			return nil, err
		}
		if v != int64(0) {
			return nil, fmt.Errorf("snapshot mutation leaked: %v", v)
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekLockedVariants(t *testing.T) {
	en := New(None{}, Options{})
	en.AddObject("Q", objects.Queue(), core.State{"items": []core.Value{int64(7)}})
	obj := en.Object("Q")
	obj.Latch()
	st, err := obj.PeekLocked(core.OpInvocation{Op: "Dequeue"})
	obj.Unlatch()
	if err != nil || st.Ret != int64(7) {
		t.Fatalf("peek dequeue = %v, %v", st, err)
	}
	// Peek must not mutate.
	obj.Latch()
	st2, err := obj.PeekLocked(core.OpInvocation{Op: "Dequeue"})
	obj.Unlatch()
	if err != nil || st2.Ret != int64(7) {
		t.Fatalf("second peek = %v, %v (state mutated?)", st2, err)
	}
	// Read-only fast path.
	obj.Latch()
	st3, err := obj.PeekLocked(core.OpInvocation{Op: "Len"})
	obj.Unlatch()
	if err != nil || st3.Ret != int64(1) {
		t.Fatalf("peek len = %v, %v", st3, err)
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	// A None-scheduler stress over commuting operations only: final state
	// must be exact and the history legal even under heavy interleaving.
	en := newTestEngine(None{}, Options{})
	en.Register("C", "add", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("C", "Add", int64(1))
	})
	const clients, per = 8, 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
					return ctx.Call("C", "add")
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	h := en.History()
	if got := h.FinalStates["C"]["n"]; got != int64(clients*per) {
		t.Fatalf("n = %v, want %d", got, clients*per)
	}
}
