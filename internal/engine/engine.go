package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/obs"
)

// MethodFunc is the body of a method: a programme that issues local steps
// (Ctx.Do) and messages (Ctx.Call). Returning an error aborts the method
// execution; the error reaches the parent as the Call's error.
type MethodFunc func(*Ctx) (core.Value, error)

// NoRetry disables automatic retries when set as Options.MaxRetries.
const NoRetry = -1

// Options configures the engine.
type Options struct {
	// MaxRetries bounds automatic retries of top-level transactions
	// aborted for synchronisation reasons (deadlock victims, timestamp
	// rejections, cascades, failed certification). 0 means the default of
	// 100; NoRetry disables retries.
	MaxRetries int
	// RetryBackoff is the base backoff between retries (jittered; doubles
	// up to 64x). Default 100µs.
	RetryBackoff time.Duration
	// TrackDependencies enables the recoverability machinery (touch
	// registration, commit barrier, cascading aborts) needed by
	// schedulers that let transactions observe uncommitted effects.
	// Lock-based schedulers leave it off.
	TrackDependencies bool
	// Recording selects the history observer: RecordFull (default)
	// retains the whole history for the oracle; RecordStats keeps only
	// atomic counters (bounded memory, near-zero per-event cost).
	Recording RecordingMode
	// HistoryLimit caps the number of retained history events (execs +
	// steps + messages) in RecordFull mode; once it would be exceeded,
	// the recording transaction aborts with ErrHistoryLimit instead of
	// the process growing without bound. 0 means unlimited. Ignored
	// under RecordStats.
	HistoryLimit int
	// Versioning maintains a ring of committed state versions per object
	// (published at top-level commit) and enables the snapshot read-only
	// fast path (RunView). Off by default: version publication costs one
	// state clone per mutated object per commit, which pure write
	// workloads should not pay.
	Versioning bool
	// Tracer, when non-nil, receives phase spans from every execution
	// path (the flight recorder). Nil disables tracing; instrumented
	// sites pay one pointer check.
	Tracer *obs.Tracer
	// Shared, when non-nil, plugs the engine into a sharded object
	// space: transaction identities, the history tick clock, and the
	// recoverability tracker come from the space-wide instances so that
	// cross-shard transactions keep one identity, one timestamp order,
	// and one commit barrier across every engine they touch. Nil gives
	// the engine private instances with identical behaviour.
	Shared *Shared
}

// Engine executes nested transactions over an object base under a
// Scheduler, feeding every execution event to a history observer (the
// full recorder by default, atomic counters under RecordStats).
type Engine struct {
	opts  Options
	sched Scheduler

	mu      sync.RWMutex
	objects map[string]*Object
	methods map[string]map[string]MethodFunc

	rec  HistoryObserver
	deps *depTracker
	tops *TopAllocator
	tr   *obs.Tracer // nil when tracing is off

	// Version publication (Options.Versioning). pubMu guards only the
	// sequence counter and the completion bookkeeping — never the state
	// captures, which run under their objects' own latches so commits
	// against disjoint objects publish in parallel. pubSeq is the
	// *contiguous* fully-published watermark snapshot readers fix their
	// views at: it advances past a sequence number only once that commit
	// published on every object it touched (pubDone tracks out-of-order
	// completions), so a reader never sees a half-published commit.
	pubMu   sync.Mutex
	pubNext uint64          // last allocated commit sequence number
	pubWm   uint64          // contiguous completion watermark
	pubDone map[uint64]bool // completed seqs above the watermark
	pubSeq  atomic.Uint64   // pubWm, readable without the mutex

	// rngState seeds the per-engine retry-backoff jitter (splitmix64):
	// no global rand lock on the hottest retry path.
	rngState atomic.Uint64

	// stats
	commits        atomic.Int64
	aborts         atomic.Int64
	retries        atomic.Int64
	viewCommits    atomic.Int64
	viewFallbacks  atomic.Int64
	serialRestarts atomic.Int64
	twopcRestarts  atomic.Int64
	epochCommits   atomic.Int64
	epochFlushes   atomic.Int64
}

// New creates an engine running the given scheduler.
func New(sched Scheduler, opts Options) *Engine {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 100
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Microsecond
	}
	var clock *atomic.Int64
	tops := NewTopAllocator()
	deps := newDepTracker(opts.TrackDependencies)
	if opts.Shared != nil {
		clock = &opts.Shared.clock
		tops = opts.Shared.tops
		deps = opts.Shared.depsFor(opts.TrackDependencies)
	}
	var rec HistoryObserver
	if opts.Recording == RecordStats {
		rec = newStatsObserver()
	} else {
		rec = newRecorder(opts.HistoryLimit, clock)
	}
	en := &Engine{
		opts:    opts,
		sched:   sched,
		objects: make(map[string]*Object),
		methods: make(map[string]map[string]MethodFunc),
		rec:     rec,
		deps:    deps,
		tops:    tops,
		tr:      opts.Tracer,
		pubDone: make(map[uint64]bool),
	}
	en.rngState.Store(uint64(time.Now().UnixNano()))
	return en
}

// Recording returns the engine's history recording mode.
func (en *Engine) Recording() RecordingMode { return en.opts.Recording }

// ObserverStats returns the history observer's event counters; they are
// maintained in both recording modes.
func (en *Engine) ObserverStats() ObserverStats { return en.rec.EventStats() }

// historyAbort converts an observer refusal (history limit breached)
// into the non-retriable abort that fails the issuing transaction fast.
func historyAbort(id core.ExecID, err error) error {
	return &AbortError{Exec: id, Reason: "history limit", Retriable: false, Err: err}
}

// allocTop assigns the next top-level transaction identity and registers
// it live. Under Options.Shared the allocator is the space-wide one, so
// identities — and hence hierarchical timestamps — stay globally unique
// and monotone across shards.
func (en *Engine) allocTop() core.ExecID { return en.tops.Alloc() }

func (en *Engine) releaseTop(id core.ExecID) { en.tops.Release(id) }

// TopCount returns the number of top-level transaction identities assigned
// so far (space-wide under Options.Shared).
func (en *Engine) TopCount() int32 { return en.tops.Count() }

// MinLiveTop returns a conservative lower bound on the smallest top-level
// transaction number still in flight, or the next number to be assigned
// when none is. Every transaction with a smaller number has finished —
// the paper's low-water condition for discarding timestamp information
// (Section 5.2). Under Options.Shared the bound is global across shards.
func (en *Engine) MinLiveTop() int32 { return en.tops.MinLive() }

// Scheduler returns the engine's scheduler.
func (en *Engine) Scheduler() Scheduler { return en.sched }

// Registrar is the object/method registration surface: an Engine, or a
// sharded space (internal/shard.Space) routing each registration to the
// object's home engine. Workload setup code programs against it so the
// same scenario populates either.
type Registrar interface {
	AddObject(name string, sc *core.Schema, initial core.State) *Object
	Register(object, method string, fn MethodFunc)
}

// AddObject creates an object instance. The initial state defaults to the
// schema's NewState when nil.
func (en *Engine) AddObject(name string, sc *core.Schema, initial core.State) *Object {
	if initial == nil {
		initial = sc.NewState()
	}
	o := &Object{name: name, schema: sc, eng: en, state: sc.Clone(initial)}
	if en.opts.Versioning {
		o.initVersions(initial)
	}
	en.mu.Lock()
	en.objects[name] = o
	en.mu.Unlock()
	en.rec.AddObject(name, sc, initial)
	return o
}

// Object returns the named object, or nil.
func (en *Engine) Object(name string) *Object {
	en.mu.RLock()
	defer en.mu.RUnlock()
	return en.objects[name]
}

// Register installs a method implementation on an object.
func (en *Engine) Register(object, method string, fn MethodFunc) {
	en.mu.Lock()
	defer en.mu.Unlock()
	if en.methods[object] == nil {
		en.methods[object] = make(map[string]MethodFunc)
	}
	en.methods[object][method] = fn
}

func (en *Engine) method(object, name string) (MethodFunc, error) {
	en.mu.RLock()
	defer en.mu.RUnlock()
	fn := en.methods[object][name]
	if fn == nil {
		return nil, fmt.Errorf("engine: object %q has no method %q", object, name)
	}
	return fn, nil
}

// Commits returns the number of committed top-level transactions.
func (en *Engine) Commits() int64 { return en.commits.Load() }

// Aborts returns the number of aborted top-level attempts.
func (en *Engine) Aborts() int64 { return en.aborts.Load() }

// Retries returns the number of retried top-level attempts.
func (en *Engine) Retries() int64 { return en.retries.Load() }

// SerialRestarts returns the number of serial fast-path attempts that
// restarted because the declared object set proved incomplete.
func (en *Engine) SerialRestarts() int64 { return en.serialRestarts.Load() }

// TwoPCRestarts returns the number of cross-shard attempts that
// restarted 2PC after discovering new shards mid-flight.
func (en *Engine) TwoPCRestarts() int64 { return en.twopcRestarts.Load() }

// EpochCommits returns the number of transactions committed through the
// epoch group-commit path — a subset of Commits.
func (en *Engine) EpochCommits() int64 { return en.epochCommits.Load() }

// EpochFlushes returns the number of epoch batches flushed by this
// engine's accumulators (counted on the base engine).
func (en *Engine) EpochFlushes() int64 { return en.epochFlushes.Load() }

// Tracer returns the engine's flight recorder (nil when tracing is
// off).
func (en *Engine) Tracer() *obs.Tracer { return en.tr }

// ringKey derives the flight-recorder ring from a transaction identity:
// the top-level transaction number, so a transaction's spans across
// engines and the lock manager land on one timeline.
func ringKey(id core.ExecID) uint64 { return uint64(uint32(id[0])) }

// Run executes a top-level transaction (a method of the environment). It
// retries synchronisation aborts with fresh transaction identities up to
// MaxRetries; user aborts and programming errors are returned as-is.
func (en *Engine) Run(name string, fn MethodFunc, args ...core.Value) (core.Value, error) {
	return en.RunCtx(context.Background(), name, fn, args...)
}

// RunCtx is Run with cancellation and deadline support: the transaction is
// aborted (non-retriably) at the next step, message, or commit boundary
// once ctx is done, and retry backoff sleeps are interrupted. The returned
// error unwraps to ctx.Err() so callers can errors.Is against
// context.Canceled / context.DeadlineExceeded.
func (en *Engine) RunCtx(ctx context.Context, name string, fn MethodFunc, args ...core.Value) (core.Value, error) {
	return en.runRetry(ctx, name, fn, args, false)
}

// jitter draws from the engine's private splitmix64 stream. The retry
// path is the engine's most contended: the global math/rand source would
// serialise every backing-off transaction on one lock.
func (en *Engine) jitter() uint64 {
	x := en.rngState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffRing picks a flight-recorder ring for spans recorded between
// attempts, when no transaction identity exists yet.
func (en *Engine) backoffRing() uint64 {
	if en.tr == nil {
		return 0
	}
	return en.jitter()
}

// backoffDelay picks the jittered sleep before the next retry. The floor
// (an eighth of the current backoff, at least a microsecond) prevents the
// zero-sleep draws that used to turn contended retries into a spin storm.
func (en *Engine) backoffDelay(backoff time.Duration) time.Duration {
	floor := backoff / 8
	if floor < time.Microsecond {
		floor = time.Microsecond
	}
	if floor > backoff {
		floor = backoff
	}
	span := uint64(backoff-floor) + 1
	return floor + time.Duration(en.jitter()%span)
}

// runRetry is the retry loop shared by RunCtx and the read-only fallback
// of RunView; readOnly transactions have Ctx.Do reject mutating steps.
func (en *Engine) runRetry(ctx context.Context, name string, fn MethodFunc, args []core.Value, readOnly bool) (core.Value, error) {
	backoff := en.opts.RetryBackoff
	for attempt := 0; ; attempt++ {
		// The admit span opens before anything else the attempt does: the
		// cancellation check, identity allocation and Exec construction are
		// real per-attempt work and must land inside a measured phase for
		// the phase sums to reconcile with the driver's latency histogram.
		// runOnce takes ownership of the span and re-homes it to the
		// transaction's ring once the identity exists.
		sp := en.tr.StartSpan(obs.PhaseAdmit, 0, "", "")
		if err := ctx.Err(); err != nil {
			sp.EndWith("cancel")
			return nil, err
		}
		ret, err := en.runOnce(ctx, name, fn, args, readOnly, sp)
		if err == nil {
			return ret, nil
		}
		if !Retriable(err) || attempt >= en.opts.MaxRetries {
			return nil, err
		}
		sp = en.tr.StartSpan(obs.PhaseRetryBackoff, en.backoffRing(), "", "")
		t := time.NewTimer(en.backoffDelay(backoff))
		select {
		case <-t.C:
			sp.End()
		case <-ctx.Done():
			t.Stop()
			sp.EndWith("cancel")
			return nil, ctx.Err()
		}
		// Count the retry only once the backoff survived cancellation and
		// another attempt is actually about to run.
		en.retries.Add(1)
		if backoff < 64*en.opts.RetryBackoff {
			backoff *= 2
		}
	}
}

// runOnce executes one top-level attempt. It receives the already-open
// admit span from runRetry and hands the phases off back-to-back
// (Span.Next) so they partition the attempt's wall time — the
// reconciliation invariant the trace tests check.
func (en *Engine) runOnce(ctx context.Context, name string, fn MethodFunc, args []core.Value, readOnly bool, sp obs.Span) (core.Value, error) {
	id := en.allocTop()
	// The identity and dependency cleanups run inside the publish span on
	// the commit path (they are real per-attempt work, and anything after
	// the final span's End falls into an unmeasured gap); the guarded
	// defers cover the abort and panic paths.
	released := false
	defer func() {
		if !released {
			en.releaseTop(id)
		}
	}()
	tr := en.tr
	if tr != nil {
		// The exec key is formatted inside the admit span, not before it:
		// the cost is real work of this attempt and must not fall into an
		// unmeasured gap (the phases partition the attempt's wall time).
		sp = sp.WithExecRing(id.Key(), ringKey(id))
	}
	e := &Exec{
		id:       id,
		object:   core.EnvironmentObject,
		method:   name,
		args:     args,
		eng:      en,
		goctx:    ctx,
		killCh:   make(chan struct{}),
		readOnly: readOnly,
	}
	e.top = e
	if err := en.rec.AddExec(e.id, e.object, e.method); err != nil {
		sp.EndWith("abort")
		return nil, historyAbort(e.id, err)
	}
	en.deps.beginTop(e)
	forgotten := false
	defer func() {
		if !forgotten {
			en.deps.forget(e)
		}
	}()
	sp = sp.Next(obs.PhaseScheduleWait)
	if err := en.sched.Begin(e); err != nil {
		en.abortExec(e, err)
		sp.EndWith("abort")
		return nil, err
	}
	sp = sp.Next(obs.PhaseExecute)
	ret, err := fn(e.ctx())
	if err == nil && e.Killed() {
		err = &AbortError{Exec: id, Reason: "cascade", Retriable: true, Err: ErrKilled}
	}
	if err == nil {
		// A transaction whose context expired must not commit even if its
		// body happened to finish.
		err = e.ctxAbortErr()
	}
	sp = sp.Next(obs.PhaseCommitBarrier)
	if err == nil {
		// Recoverability barrier: all observed transactions must commit
		// first.
		err = en.deps.commitBarrier(e)
	}
	if err == nil {
		// Scheduler commit (certifiers validate here).
		err = en.sched.Commit(e)
		if err != nil && !Retriable(err) {
			err = &AbortError{Exec: id, Reason: "certification", Retriable: true, Err: err}
		}
	}
	if err != nil {
		en.abortExec(e, err)
		sp.EndWith("abort")
		return nil, err
	}
	en.deps.commitTop(e)
	sp = sp.Next(obs.PhasePublish)
	if en.opts.Versioning {
		// Publish the committed state of every object this transaction
		// mutated, under the next global commit sequence number, for the
		// snapshot read-only fast path.
		en.publishCommit(e)
	}
	en.commits.Add(1)
	en.deps.forget(e)
	forgotten = true
	en.releaseTop(id)
	released = true
	sp.End()
	return ret, nil
}

// call implements Ctx.Call: create the child execution, run the method
// body, commit or abort it.
func (en *Engine) call(parent *Exec, lane int, object, method string, args []core.Value) (core.Value, error) {
	if cs := parent.top.cross; cs != nil {
		// Sharded space: route the message to the target object's home
		// engine (snapshot views pin their single shard).
		if cs.view {
			return crossViewCall(parent, lane, object, method, args)
		}
		return crossCall(parent, lane, object, method, args)
	}
	if parent.top.snap != nil {
		// Snapshot transactions never enter the scheduler; their child
		// method executions run against the same snapshot.
		return en.viewCall(parent, lane, object, method, args)
	}
	fn, err := en.method(object, method)
	if err != nil {
		return nil, err
	}
	if en.Object(object) == nil {
		return nil, fmt.Errorf("engine: unknown object %q", object)
	}

	childID := parent.nextChildID()
	msg, err := en.rec.StartMessage(parent.id, childID, lane, object, method, args)
	if err != nil {
		return nil, historyAbort(parent.id, err)
	}
	child := &Exec{
		id:     childID,
		object: object,
		method: method,
		args:   args,
		eng:    en,
		parent: parent,
		top:    parent.top,
	}
	if err := en.rec.AddExec(childID, object, method); err != nil {
		en.rec.EndMessage(msg, nil, true)
		return nil, historyAbort(childID, err)
	}

	if err := en.sched.Begin(child); err != nil {
		en.abortExec(child, err)
		en.rec.EndMessage(msg, nil, true)
		return nil, err
	}
	ret, err := fn(child.ctx())
	if err == nil {
		err = en.sched.Commit(child)
	}
	if err != nil {
		en.abortExec(child, err)
		en.rec.EndMessage(msg, nil, true)
		return nil, err
	}
	// Relative commit: effects become the parent's provisional effects.
	parent.adoptUndo(child)
	en.rec.EndMessage(msg, ret, false)
	return ret, nil
}

// abortExec aborts an execution: cascade dependents first (top-level with
// tracking only), then undo own effects newest-first, notify the
// scheduler, and mark the record (semantics (a) and (b)).
func (en *Engine) abortExec(e *Exec, cause error) {
	if e.parent == nil {
		// Top-level: cascade dependents before undoing (see depTracker).
		for _, dep := range en.deps.beginAbort(e) {
			dep.exec.kill()
			//oblint:allow ctxwait -- cascade joins a dependent just killed above; its abort path cannot block indefinitely, and abandoning it here would undo state out of order
			<-dep.done
		}
		en.aborts.Add(1)
	}
	e.runUndo()
	en.sched.Abort(e)
	en.rec.MarkAborted(e.id)
	if e.parent == nil {
		en.deps.finishAbort(e)
	}
	_ = cause
}

// TrackTouch registers a prospective step with the recoverability tracker
// (see depTracker). Schedulers that admit access to uncommitted effects
// must call it under the object's latch, before applying the step; a
// returned error (always retriable) means the step must not be applied and
// the execution must abort. No-op when dependency tracking is disabled.
func (en *Engine) TrackTouch(e *Exec, obj *Object, step core.StepInfo) error {
	readOnly := false
	if op, err := obj.schema.Op(step.Op); err == nil {
		readOnly = op.ReadOnly
	}
	return en.deps.touch(e, obj, step, readOnly)
}

// History returns a snapshot of the run's recorded history, or nil when
// none is available (RecordStats mode, or a full-mode run past its
// HistoryLimit) — use HistoryErr to distinguish. It is safe to call
// concurrently with running transactions (the snapshot is taken under
// the recorder lock and shares no mutable records with the live run),
// but a mid-run snapshot reflects in-flight transactions, so oracle
// verdicts are only meaningful on a quiescent engine.
func (en *Engine) History() *core.History {
	h, _ := en.HistoryErr()
	return h
}

// HistoryErr is History with the failure reason: the error wraps
// ErrHistoryDisabled under RecordStats and ErrHistoryLimit once a
// full-mode run overflowed its cap.
func (en *Engine) HistoryErr() (*core.History, error) {
	if en.opts.Recording == RecordStats {
		// Refuse before snapshotting final states: monitoring loops on a
		// stats-only engine must not contend the object latches.
		return nil, ErrHistoryDisabled
	}
	en.mu.RLock()
	objs := make(map[string]*Object, len(en.objects))
	for k, v := range en.objects {
		objs[k] = v
	}
	en.mu.RUnlock()
	finals := make(map[string]core.State, len(objs))
	for name, o := range objs {
		finals[name] = o.StateSnapshot()
	}
	return en.rec.Snapshot(finals)
}

// RunMany executes n transactions across p goroutines (round-robin over
// the given bodies) and waits for completion; the convenience loop of
// tests and experiments. It returns the first non-retriable error.
func (en *Engine) RunMany(p, n int, bodies ...func(i int) (string, MethodFunc, []core.Value)) error {
	if p <= 0 {
		p = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, p)
	next := atomic.Int64{}
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				name, fn, args := bodies[i%len(bodies)](i)
				if _, err := en.Run(name, fn, args...); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// ErrUnknown reports an unknown object or method.
var ErrUnknown = errors.New("engine: unknown object or method")
