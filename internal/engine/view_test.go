package engine

// Engine-level coverage of the MVCC machinery: version publication at
// commit (clean captures vs gaps), the per-object pending-writer
// bookkeeping across abort/undo, snapshot step classification, and the
// retry-backoff jitter bounds (the per-engine source that replaced the
// global math/rand draw).

import (
	"context"
	"errors"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

func newVersioningEngine(t *testing.T) *Engine {
	t.Helper()
	en := New(None{}, Options{Versioning: true})
	en.AddObject("c", objects.Counter(), nil)
	en.Register("c", "bump", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("c", "Add", int64(1))
	})
	en.Register("c", "get", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("c", "Get")
	})
	return en
}

func TestVersionPublishedOnCommit(t *testing.T) {
	en := newVersioningEngine(t)
	obj := en.Object("c")
	if r := obj.Versions(); r == nil || r.Len() != 1 || r.Newest().Seq != 0 {
		t.Fatalf("initial ring = %+v", r)
	}
	for i := 1; i <= 3; i++ {
		if _, err := en.Run("bump", func(ctx *Ctx) (core.Value, error) {
			return ctx.Call("c", "bump")
		}); err != nil {
			t.Fatal(err)
		}
		v := obj.Versions().Newest()
		if v.Gap || v.Seq != uint64(i) || v.ObjSeq != i {
			t.Fatalf("after commit %d: newest = %+v", i, v)
		}
		if n, _ := v.State["n"].(int64); n != int64(i) {
			t.Fatalf("version state n = %d, want %d", n, i)
		}
	}
	// Read-only commits publish nothing.
	if _, err := en.Run("get", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("c", "get")
	}); err != nil {
		t.Fatal(err)
	}
	if s := en.pubSeq.Load(); s != 3 {
		t.Fatalf("pubSeq after read-only commit = %d, want 3", s)
	}
}

func TestAbortedWriterPublishesNothing(t *testing.T) {
	en := newVersioningEngine(t)
	obj := en.Object("c")
	wantAbort := errors.New("user abort")
	if _, err := en.Run("bump-abort", func(ctx *Ctx) (core.Value, error) {
		if _, err := ctx.Call("c", "bump"); err != nil {
			return nil, err
		}
		return nil, wantAbort
	}); !errors.Is(err, wantAbort) {
		t.Fatalf("err = %v", err)
	}
	if r := obj.Versions(); r.Len() != 1 || r.Newest().Seq != 0 {
		t.Fatalf("aborted writer published: %+v", r.Newest())
	}
	// The undo retired the pending mark: the next committer captures
	// cleanly.
	if _, err := en.Run("bump", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("c", "bump")
	}); err != nil {
		t.Fatal(err)
	}
	v := obj.Versions().Newest()
	if v.Gap || v.Seq != 1 {
		t.Fatalf("post-abort commit published %+v", v)
	}
	if n, _ := v.State["n"].(int64); n != 1 {
		t.Fatalf("version state n = %d, want 1", n)
	}
}

// TestOverlappingWriterForcesGap: a committer whose object still carries
// another transaction's uncommitted (commuting) effects must publish a
// gap, never a state that mixes committed and uncommitted writes.
func TestOverlappingWriterForcesGap(t *testing.T) {
	en := newVersioningEngine(t)
	obj := en.Object("c")
	inTxn := make(chan struct{})
	hold := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := en.Run("slow", func(ctx *Ctx) (core.Value, error) {
			if _, err := ctx.Call("c", "bump"); err != nil {
				return nil, err
			}
			close(inTxn)
			<-hold
			return nil, nil
		})
		done <- err
	}()
	<-inTxn
	if _, err := en.Run("fast", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("c", "bump")
	}); err != nil {
		t.Fatal(err)
	}
	v := obj.Versions().Newest()
	if !v.Gap || v.Seq != 1 {
		t.Fatalf("overlapped commit published %+v, want gap at seq 1", v)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The slow writer was the last pending owner: its commit captures.
	v = obj.Versions().Newest()
	if v.Gap || v.Seq != 2 {
		t.Fatalf("clean commit published %+v, want capture at seq 2", v)
	}
	if n, _ := v.State["n"].(int64); n != 2 {
		t.Fatalf("version state n = %d, want 2", n)
	}
}

func TestRunViewRequiresVersioning(t *testing.T) {
	en := New(None{}, Options{})
	if _, err := en.RunView(context.Background(), "v", func(ctx *Ctx) (core.Value, error) { return nil, nil }); !errors.Is(err, ErrViewDisabled) {
		t.Fatalf("err = %v, want ErrViewDisabled", err)
	}
}

// TestBackoffDelayBounds: the jittered retry sleep must never be zero
// (zero-sleep retry storms) and must stay within [floor, backoff].
func TestBackoffDelayBounds(t *testing.T) {
	en := New(None{}, Options{})
	for _, backoff := range []time.Duration{time.Nanosecond, time.Microsecond, 100 * time.Microsecond, 10 * time.Millisecond} {
		sawSpread := make(map[time.Duration]bool)
		for i := 0; i < 2000; i++ {
			d := en.backoffDelay(backoff)
			if d <= 0 {
				t.Fatalf("backoffDelay(%v) = %v, want > 0", backoff, d)
			}
			if d > backoff && backoff > time.Microsecond {
				t.Fatalf("backoffDelay(%v) = %v, want <= backoff", backoff, d)
			}
			floor := backoff / 8
			if floor < time.Microsecond {
				floor = time.Microsecond
			}
			if floor > backoff {
				floor = backoff
			}
			if d < floor {
				t.Fatalf("backoffDelay(%v) = %v, below floor %v", backoff, d, floor)
			}
			sawSpread[d] = true
		}
		if backoff >= 100*time.Microsecond && len(sawSpread) < 10 {
			t.Fatalf("backoffDelay(%v): only %d distinct draws — jitter missing", backoff, len(sawSpread))
		}
	}
}

// TestJitterStreamsDiffer: two engines must not share a jitter stream
// (the old global source serialised them; per-engine seeds also decouple
// their sequences).
func TestJitterStreamsDiffer(t *testing.T) {
	a, b := New(None{}, Options{}), New(None{}, Options{})
	same := 0
	for i := 0; i < 64; i++ {
		if a.jitter() == b.jitter() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("two engines produced identical jitter streams")
	}
}

// TestAbortDrainRepairsGap: when the pending writer that forced a gap
// aborts away, the object's committed state is captured in the gap's
// place — views must not stay on the locked fallback until the next
// committed write.
func TestAbortDrainRepairsGap(t *testing.T) {
	en := newVersioningEngine(t)
	obj := en.Object("c")
	inTxn := make(chan struct{})
	hold := make(chan struct{})
	done := make(chan error, 1)
	wantAbort := errors.New("user abort")
	go func() {
		_, err := en.Run("slow-abort", func(ctx *Ctx) (core.Value, error) {
			if _, err := ctx.Call("c", "bump"); err != nil {
				return nil, err
			}
			close(inTxn)
			<-hold
			return nil, wantAbort
		})
		done <- err
	}()
	<-inTxn
	if _, err := en.Run("fast", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("c", "bump")
	}); err != nil {
		t.Fatal(err)
	}
	if v := obj.Versions().Newest(); !v.Gap || v.Seq != 1 {
		t.Fatalf("overlapped commit published %+v, want gap at seq 1", v)
	}
	close(hold)
	if err := <-done; !errors.Is(err, wantAbort) {
		t.Fatalf("slow writer: %v", err)
	}
	v := obj.Versions().Newest()
	if v.Gap || v.Seq != 1 {
		t.Fatalf("gap not repaired after abort drain: %+v", v)
	}
	if n, _ := v.State["n"].(int64); n != 1 {
		t.Fatalf("repaired state n = %d, want 1 (fast writer only)", n)
	}
	// And a view at the repaired snapshot reads it without fallback.
	got, err := en.RunView(context.Background(), "read", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("c", "get")
	})
	if err != nil || got.(int64) != 1 {
		t.Fatalf("view after repair = %v, %v", got, err)
	}
	if en.ViewFallbacks() != 0 {
		t.Fatalf("view fell back despite repair")
	}
}

// TestStaleRefreshNotCountedAsAbort: internal snapshot refreshes must
// not pollute the abort/retry counters view cells are compared on.
func TestStaleRefreshNotCountedAsAbort(t *testing.T) {
	en := newVersioningEngine(t)
	inTxn := make(chan struct{})
	hold := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := en.Run("slow", func(ctx *Ctx) (core.Value, error) {
			if _, err := ctx.Call("c", "bump"); err != nil {
				return nil, err
			}
			close(inTxn)
			<-hold
			return nil, nil
		})
		done <- err
	}()
	<-inTxn
	if _, err := en.Run("fast", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("c", "bump")
	}); err != nil {
		t.Fatal(err)
	}
	// Gap at the head: the view refreshes, then falls back; the fallback
	// read (None scheduler) succeeds immediately.
	if _, err := en.RunView(context.Background(), "read", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("c", "get")
	}); err != nil {
		t.Fatal(err)
	}
	if a := en.Aborts(); a != 0 {
		t.Fatalf("stale refreshes counted as %d aborts", a)
	}
	if r := en.Retries(); r != 0 {
		t.Fatalf("stale refreshes counted as %d retries", r)
	}
	if en.ViewFallbacks() != 1 {
		t.Fatalf("ViewFallbacks = %d, want 1", en.ViewFallbacks())
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
