package engine

import (
	"sync"
	"testing"
)

// TestTopAllocatorUniqueMonotone: concurrent allocation hands out every
// identity exactly once, in a dense range.
func TestTopAllocatorUniqueMonotone(t *testing.T) {
	a := NewTopAllocator()
	const goroutines, per = 8, 500
	var mu sync.Mutex
	seen := make(map[int32]bool)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := a.Alloc()
				mu.Lock()
				if seen[id[0]] {
					t.Errorf("identity %d allocated twice", id[0])
				}
				seen[id[0]] = true
				mu.Unlock()
				a.Release(id)
			}
		}()
	}
	wg.Wait()
	if got := a.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if min := a.MinLive(); min != goroutines*per {
		t.Fatalf("MinLive with nothing live = %d, want next-to-assign %d", min, goroutines*per)
	}
}

// TestTopAllocatorMinLiveLowerBound: under concurrent churn, MinLive
// never exceeds the smallest live identity — the safety direction for
// timestamp GC (pruning less is fine, pruning live information is not).
func TestTopAllocatorMinLiveLowerBound(t *testing.T) {
	a := NewTopAllocator()
	hold := a.Alloc() // stays live throughout
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := a.Alloc()
			a.Release(id)
		}
	}()
	for i := 0; i < 2000; i++ {
		if min := a.MinLive(); min > hold[0] {
			t.Fatalf("MinLive = %d exceeds live identity %d", min, hold[0])
		}
	}
	close(stop)
	wg.Wait()
	a.Release(hold)
	// Monotone: after the holder drains, the certified bound catches up
	// but never moves backwards.
	m1 := a.MinLive()
	m2 := a.MinLive()
	if m2 < m1 {
		t.Fatalf("MinLive moved backwards: %d then %d", m1, m2)
	}
}
