// The snapshot read-only fast path (MVCC views).
//
// The paper's semantic-conflict machinery exists to admit more
// concurrency than read/write locking; read-only method executions are
// the limiting case — observers commute with each other by construction —
// and this file exploits it: objects keep a small ring of committed state
// versions (core.VersionRing), every committing writer publishes the
// object states it touched under one global commit sequence number, and a
// view transaction (Engine.RunView) executes against the newest fully
// published sequence number without ever entering the scheduler or the
// lock manager.
//
// Soundness. A version at sequence S is captured only when the committing
// transaction is the object's sole pending writer, so the captured state
// contains the effects of exactly the commits <= S that touched the
// object (commits are sequenced under one publication mutex; uncommitted
// interleavings — commuting writers under 2PL, optimistic schedulers —
// force a gap instead of a wrong capture). A reader that fixes S once and
// resolves every object at S therefore observes one consistent commit
// prefix: no torn reads across objects. Readers that land on a gap or
// fall off the ring refresh S and retry; if the watermark cannot advance
// past the gap the engine falls back to the locked path with read-only
// enforcement, preserving liveness without weakening the snapshot
// guarantee.
//
// Verifiability. View steps are recorded in the history at the version's
// publication watermark (core.Step.Snap/SnapSeq), i.e. *before* the
// regular step that next touched the object, so the offline oracle
// replays them against exactly the committed prefix they observed —
// DB.Verify covers view transactions with no special cases.
package engine

import (
	"context"
	"errors"
	"fmt"

	"objectbase/internal/core"
	"objectbase/internal/obs"
)

// ErrViewDisabled is returned by RunView on an engine built without
// Options.Versioning: no versions are published, so there is nothing
// consistent to read.
var ErrViewDisabled = errors.New("engine: snapshot views disabled (engine not versioning)")

// ErrReadOnlyWrite is wrapped by the abort that fails a read-only
// transaction whose body issued a mutating step. The classification is
// the schema's: operations not declared ReadOnly mutate.
var ErrReadOnlyWrite = errors.New("engine: read-only transaction issued a mutating step")

// ErrSnapshotStale is wrapped by the retriable abort of a view attempt
// whose snapshot could not be resolved on some object (a publication gap,
// or a reader that fell off the version ring). RunView handles it
// internally — refresh and retry, then the locked fallback — so callers
// normally never see it.
var ErrSnapshotStale = errors.New("engine: snapshot no longer resolvable")

// viewSnap is the per-transaction snapshot handle: the global commit
// sequence number the tree reads at.
type viewSnap struct {
	seq uint64
}

// viewAttempts bounds snapshot retries before RunView falls back to the
// locked read-only path.
const viewAttempts = 3

func readOnlyAbort(e *Exec, object string, inv core.OpInvocation) error {
	return &AbortError{
		Exec:      e.id,
		Reason:    "read-only violation",
		Retriable: false,
		Err:       fmt.Errorf("%w: %s on %s", ErrReadOnlyWrite, inv, object),
	}
}

func staleAbort(e *Exec, object string, seq uint64) error {
	return &AbortError{
		Exec:      e.id,
		Reason:    "stale snapshot",
		Retriable: true,
		Err:       fmt.Errorf("%w: object %s at seq %d", ErrSnapshotStale, object, seq),
	}
}

// RunView executes a read-only top-level transaction against a consistent
// committed snapshot. The body runs exactly like a regular transaction —
// Ctx.Call invokes registered methods, Ctx.Do issues local steps,
// Ctx.Parallel fans out — but every step is served from the objects'
// version rings at one snapshot sequence number, and any mutating step
// aborts the transaction with an error wrapping ErrReadOnlyWrite.
//
// Stale snapshots (publication gaps from overlapping writers) are retried
// with a refreshed sequence number; when retrying cannot help, the
// transaction falls back to the ordinary scheduled path with read-only
// enforcement, so RunView is always live. The context is honoured as in
// RunCtx.
func (en *Engine) RunView(ctx context.Context, name string, fn MethodFunc, args ...core.Value) (core.Value, error) {
	if !en.opts.Versioning {
		return nil, fmt.Errorf("engine: RunView: %w", ErrViewDisabled)
	}
	lastSeq := ^uint64(0)
	for attempt := 0; attempt < viewAttempts; attempt++ {
		seq := en.pubSeq.Load()
		if seq == lastSeq {
			// The watermark has not advanced; the same gap would stall us
			// again. Take the locked path instead of spinning.
			break
		}
		lastSeq = seq
		ret, err := en.runViewOnce(ctx, name, fn, args, seq)
		if err == nil || !errors.Is(err, ErrSnapshotStale) {
			return ret, err
		}
		// A stale snapshot is an internal refresh, not scheduler
		// contention: it is deliberately kept out of the abort/retry
		// counters so view cells stay comparable to locked ones.
	}
	en.viewFallbacks.Add(1)
	en.tr.Event(obs.PhaseViewFallback, en.backoffRing(), "", "", "snapshot-stale")
	return en.runRetry(ctx, name, fn, args, true)
}

// runViewOnce runs one snapshot attempt at the given sequence number.
func (en *Engine) runViewOnce(ctx context.Context, name string, fn MethodFunc, args []core.Value, seq uint64) (core.Value, error) {
	id := en.allocTop()
	defer en.releaseTop(id)
	tr := en.tr
	sp := tr.StartSpan(obs.PhaseAdmit, ringKey(id), "", "")
	if tr != nil {
		// The exec key is formatted inside the admit span, not before it:
		// the cost is real work of this attempt and must not fall into an
		// unmeasured gap (the phases partition the attempt's wall time).
		sp = sp.WithExec(id.Key())
	}
	e := &Exec{
		id:       id,
		object:   core.EnvironmentObject,
		method:   name,
		args:     args,
		eng:      en,
		goctx:    ctx,
		killCh:   make(chan struct{}),
		readOnly: true,
		snap:     &viewSnap{seq: seq},
	}
	e.top = e
	if err := en.rec.AddExec(e.id, e.object, e.method); err != nil {
		sp.EndWith("abort")
		return nil, historyAbort(e.id, err)
	}
	sp = sp.Next(obs.PhaseExecute)
	defer sp.End()
	ret, err := fn(e.ctx())
	if err == nil {
		err = e.ctxAbortErr()
	}
	if err != nil {
		// Nothing to undo and no scheduler to notify: a view transaction
		// has no effects. Mark the record so the oracle excludes its
		// partial reads. Stale snapshots are internal refreshes — only
		// real failures (context, read-only violation, body error) count
		// as aborted attempts.
		en.rec.MarkAborted(e.id)
		if !errors.Is(err, ErrSnapshotStale) {
			en.aborts.Add(1)
		}
		return nil, err
	}
	en.commits.Add(1)
	en.viewCommits.Add(1)
	return ret, nil
}

// viewStep serves one local step of a snapshot transaction from the
// object's version ring: classify against the schema, resolve the
// snapshot, evaluate the (pure) read-only Apply on the immutable version
// state, and record the step at the version's watermark.
func (en *Engine) viewStep(e *Exec, obj *Object, inv core.OpInvocation) (core.Value, error) {
	op, err := obj.schema.Op(inv.Op)
	if err != nil {
		return nil, err
	}
	if !op.ReadOnly {
		return nil, readOnlyAbort(e, obj.name, inv)
	}
	snap := e.top.snap
	ring := obj.vers.Load()
	if ring == nil {
		return nil, fmt.Errorf("engine: viewStep on %s: %w", obj.name, ErrViewDisabled)
	}
	v, ok := ring.Lookup(snap.seq)
	if !ok || v.Gap {
		return nil, staleAbort(e, obj.name, snap.seq)
	}
	// Read-only Apply is pure and the version state is immutable, so
	// concurrent evaluation needs no latch.
	ret, _, err := op.Apply(v.State, inv.Args)
	if err != nil {
		return nil, fmt.Errorf("engine: %s on %s (snapshot %d): %w", inv, obj.name, snap.seq, err)
	}
	st := core.StepInfo{Op: inv.Op, Args: inv.Args, Ret: ret}
	if rerr := en.rec.AddViewStep(e.id, obj.name, st, v.ObjSeq, snap.seq); rerr != nil {
		return nil, historyAbort(e.id, rerr)
	}
	return ret, nil
}

// viewCall is the snapshot-mode counterpart of Engine.call: it creates
// the child method execution and records the message, but never touches
// the scheduler and adopts no undo log (there is nothing to undo).
func (en *Engine) viewCall(parent *Exec, lane int, object, method string, args []core.Value) (core.Value, error) {
	fn, err := en.method(object, method)
	if err != nil {
		return nil, err
	}
	if en.Object(object) == nil {
		return nil, fmt.Errorf("engine: unknown object %q", object)
	}
	childID := parent.nextChildID()
	msg, err := en.rec.StartMessage(parent.id, childID, lane, object, method, args)
	if err != nil {
		return nil, historyAbort(parent.id, err)
	}
	child := &Exec{
		id:     childID,
		object: object,
		method: method,
		args:   args,
		eng:    en,
		parent: parent,
		top:    parent.top,
	}
	if err := en.rec.AddExec(childID, object, method); err != nil {
		en.rec.EndMessage(msg, nil, true)
		return nil, historyAbort(childID, err)
	}
	ret, err := fn(child.ctx())
	if err != nil {
		en.rec.MarkAborted(child.id)
		en.rec.EndMessage(msg, nil, true)
		return nil, err
	}
	en.rec.EndMessage(msg, ret, false)
	return ret, nil
}

// publishCommit publishes the committed state of every object the
// transaction mutated under one global commit sequence number. The
// global mutex covers only sequence allocation and completion
// bookkeeping; the captures themselves run under each object's own
// latch, so commits against disjoint objects clone in parallel instead
// of serialising the engine on one lock. Readers stay consistent because
// (a) the watermark they snapshot at advances past a sequence number
// only once that commit fully published (contiguous-completion
// tracking), and (b) a capture that lost an ordering race — another
// transaction's uncommitted effects still pending, or a newer sequence
// number already published on the object — degrades to a gap marker,
// never to a wrongly-tagged state. Read-only commits (no undo entries)
// skip publication entirely.
func (en *Engine) publishCommit(e *Exec) {
	objs := e.touchedObjects()
	if len(objs) == 0 {
		return
	}
	en.publishObjects(e.id.Key(), objs, nil)
}

// publishObjects sequences and captures the given committed objects under
// this engine's publication counter; the per-engine half of publishCommit,
// shared with the cross-shard commit path (which groups a transaction's
// touched objects by home engine first) and the epoch flusher. batchKeys,
// non-nil only on the epoch path, lists per object the further committed
// batch members whose pending marks the capture retires alongside topKey:
// a whole epoch publishes as one sequence number per engine, so the
// group commit costs one watermark round no matter how many transactions
// it carried.
func (en *Engine) publishObjects(topKey string, objs []*Object, batchKeys [][]string) {
	ordAcquire(ordRankPub, "pubMu")
	en.pubMu.Lock()
	en.pubNext++
	seq := en.pubNext
	ordRelease(ordRankPub, "pubMu")
	en.pubMu.Unlock()
	for i, o := range objs {
		var more []string
		if batchKeys != nil {
			more = batchKeys[i]
		}
		o.publishVersion(topKey, more, seq)
	}
	ordAcquire(ordRankPub, "pubMu")
	en.pubMu.Lock()
	en.pubDone[seq] = true
	for en.pubDone[en.pubWm+1] {
		delete(en.pubDone, en.pubWm+1)
		en.pubWm++
	}
	en.pubSeq.Store(en.pubWm)
	ordRelease(ordRankPub, "pubMu")
	en.pubMu.Unlock()
}

// touchedObjects returns the distinct objects carrying the execution's
// provisional effects (its undo log), in first-touch order.
func (e *Exec) touchedObjects() []*Object {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Object
	seen := make(map[*Object]bool, 4)
	for _, u := range e.undo {
		if !seen[u.obj] {
			seen[u.obj] = true
			out = append(out, u.obj)
		}
	}
	return out
}

// ViewCommits returns the number of committed snapshot (view) read-only
// transactions.
func (en *Engine) ViewCommits() int64 { return en.viewCommits.Load() }

// ViewFallbacks returns the number of view transactions that could not
// resolve a snapshot and fell back to the locked read-only path.
func (en *Engine) ViewFallbacks() int64 { return en.viewFallbacks.Load() }

// Versioning reports whether the engine maintains committed object
// versions (Options.Versioning), i.e. whether RunView is available.
func (en *Engine) Versioning() bool { return en.opts.Versioning }
