package engine

import (
	"errors"
	"sync/atomic"

	"objectbase/internal/core"
)

// RecordingMode selects how much of the history h = (E, <, B, S) the
// engine retains. The history is an analysis artifact — the oracle's
// input — not something any scheduler needs to operate, so load runs can
// turn it off and keep only counters.
type RecordingMode int

const (
	// RecordFull retains the complete history; History() returns it and
	// the oracle (graph.Check, CheckLegal, CheckTheorem5) can verify the
	// run. Memory grows with the run unless Options.HistoryLimit caps it.
	RecordFull RecordingMode = iota
	// RecordStats retains nothing but atomic event counters (bounded
	// memory, near-zero cost per event). History() is unavailable.
	RecordStats
)

func (m RecordingMode) String() string {
	if m == RecordStats {
		return "off"
	}
	return "full"
}

// ErrHistoryDisabled is returned by history accessors when the engine
// runs with RecordStats: there is no history to return.
var ErrHistoryDisabled = errors.New("engine: history recording disabled")

// ErrHistoryLimit is returned once a full-mode run exceeds
// Options.HistoryLimit recorded events. Recording fails fast — the
// transaction that overflows aborts non-retriably — instead of growing
// without bound; the history is then incomplete, so snapshots fail too.
var ErrHistoryLimit = errors.New("engine: history limit exceeded")

// HistoryObserver consumes the engine's execution events. The engine
// calls it from every hot path (each local step, message, and
// commit/abort of every transaction), so implementations must be safe
// for concurrent use and should be cheap; the full recorder retains
// everything for the oracle, the stats observer only counts.
//
// AddExec, StartMessage and AddStep may refuse the event (a full
// recorder past its configured limit); the engine converts the error
// into a non-retriable abort of the issuing transaction.
type HistoryObserver interface {
	// AddObject registers an object's schema and initial state
	// (registration time, not a hot path).
	AddObject(name string, sc *core.Schema, initial core.State)
	// AddExec records the creation of a method execution. The parent, if
	// any, was recorded before (the engine creates parents first).
	AddExec(id core.ExecID, object, method string) error
	// StartMessage records the opening of the message that created child
	// (child = parent.Child(k); the engine allocates k). The returned
	// MessageStep is the token handed back to EndMessage; observers that
	// do not retain messages return nil.
	StartMessage(parent, child core.ExecID, lane int, object, method string, args []core.Value) (*core.MessageStep, error)
	// EndMessage closes a message step previously opened by
	// StartMessage. m may be nil (non-retaining observer).
	EndMessage(m *core.MessageStep, ret core.Value, aborted bool)
	// AddStep records a local step. The caller holds the object's latch,
	// so consecutive calls for one object arrive in apply (ObjSeq) order.
	AddStep(exec core.ExecID, object string, info core.StepInfo, objSeq int) error
	// AddViewStep records a read-only step served from a committed
	// snapshot (the MVCC fast path). objSeq is the version's publication
	// watermark — the position in the object's linearisation *before*
	// which the step logically occurred — and snapSeq the snapshot's
	// global commit sequence number. The caller holds no latch; the full
	// recorder re-sorts per-object steps at snapshot time (see
	// core.StepLess).
	AddViewStep(exec core.ExecID, object string, info core.StepInfo, objSeq int, snapSeq uint64) error
	// MarkAborted marks the execution and all recorded descendants
	// aborted (abort semantics (b)).
	MarkAborted(id core.ExecID)
	// Snapshot returns a safe-to-read copy of the recorded history with
	// the given final states folded in, or ErrHistoryDisabled /
	// ErrHistoryLimit when no (complete) history exists.
	Snapshot(finals map[string]core.State) (*core.History, error)
	// EventStats returns the observer's event counters.
	EventStats() ObserverStats
}

// ObserverStats counts the events an observer saw; both observers
// maintain it, so harnesses can sanity-check a run in either mode.
type ObserverStats struct {
	Execs    int64 // method executions created
	Steps    int64 // local steps applied
	Messages int64 // messages sent
	Aborts   int64 // MarkAborted calls (aborted executions, not subtrees)
}

// statsObserver is the RecordStats implementation: four atomic counters,
// no allocation on any path, memory O(1) regardless of run length.
type statsObserver struct {
	execs    atomic.Int64
	steps    atomic.Int64
	messages atomic.Int64
	aborts   atomic.Int64
}

func newStatsObserver() *statsObserver { return &statsObserver{} }

func (s *statsObserver) AddObject(string, *core.Schema, core.State) {}

func (s *statsObserver) AddExec(core.ExecID, string, string) error {
	s.execs.Add(1)
	return nil
}

func (s *statsObserver) StartMessage(_, _ core.ExecID, _ int, _, _ string, _ []core.Value) (*core.MessageStep, error) {
	s.messages.Add(1)
	return nil, nil
}

func (s *statsObserver) EndMessage(*core.MessageStep, core.Value, bool) {}

func (s *statsObserver) AddStep(core.ExecID, string, core.StepInfo, int) error {
	s.steps.Add(1)
	return nil
}

func (s *statsObserver) AddViewStep(core.ExecID, string, core.StepInfo, int, uint64) error {
	s.steps.Add(1)
	return nil
}

func (s *statsObserver) MarkAborted(core.ExecID) { s.aborts.Add(1) }

func (s *statsObserver) Snapshot(map[string]core.State) (*core.History, error) {
	return nil, ErrHistoryDisabled
}

func (s *statsObserver) EventStats() ObserverStats {
	return ObserverStats{
		Execs:    s.execs.Load(),
		Steps:    s.steps.Load(),
		Messages: s.messages.Load(),
		Aborts:   s.aborts.Load(),
	}
}
