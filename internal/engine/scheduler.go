// Package engine is the object-base runtime: it executes nested
// transactions (method executions, Definition 4) over a set of in-memory
// objects, delegating every synchronisation decision to a pluggable
// Scheduler, and records the full history h = (E, <, B, S) of each run so
// that the offline oracle (internal/graph) can verify exactly what the
// scheduler admitted.
//
// The runtime implements the paper's execution model:
//
//   - transactions are methods of the environment object; they invoke
//     methods of objects (messages), which invoke further methods —
//     arbitrary nesting, including re-entering an object (footnote 1);
//   - a method may exhibit internal parallelism (Ctx.Parallel), issuing
//     messages simultaneously;
//   - local steps are atomic: each is applied under its object's latch;
//   - aborts follow Section 3: an aborted execution's effects are undone
//     (semantics (a)), its descendants abort with it (semantics (b)), and
//     the parent observes the abort as an error return from Call and may
//     try an alternative;
//   - for schedulers that admit access to uncommitted effects (timestamp
//     ordering, certification), the engine tracks commit dependencies and
//     performs cascading aborts so that committed histories never contain
//     dirty reads.
package engine

import (
	"errors"
	"fmt"

	"objectbase/internal/core"
)

// Scheduler is the concurrency-control policy plugged into the engine.
// Implementations live in internal/cc; the engine itself ships only None.
//
// The engine calls Begin when a method execution starts, Step for every
// local operation (the scheduler decides when and whether to apply it,
// using the Object's latch/peek/apply primitives), Commit when a method
// execution finishes normally (a returned error converts the finish into
// an abort — this is where certifying schedulers validate), and Abort when
// it aborts.
type Scheduler interface {
	Name() string
	Begin(e *Exec) error
	Step(e *Exec, obj *Object, inv core.OpInvocation) (core.Value, error)
	Commit(e *Exec) error
	Abort(e *Exec)
}

// None is the empty scheduler: no synchronisation at all beyond step
// atomicity. Concurrent transactions freely interleave; the oracle then
// detects the resulting non-serialisable histories. Experiments use it to
// demonstrate that the anomalies the paper's algorithms prevent actually
// occur.
type None struct{}

// Name implements Scheduler.
func (None) Name() string { return "none" }

// Begin implements Scheduler.
func (None) Begin(e *Exec) error { return nil }

// Step implements Scheduler: apply immediately.
func (None) Step(e *Exec, obj *Object, inv core.OpInvocation) (core.Value, error) {
	st, err := obj.ApplyFor(e, inv)
	if err != nil {
		return nil, err
	}
	return st.Ret, nil
}

// Commit implements Scheduler.
func (None) Commit(e *Exec) error { return nil }

// Abort implements Scheduler.
func (None) Abort(e *Exec) {}

// AbortError is the error carried by aborted method executions.
type AbortError struct {
	Exec   core.ExecID
	Reason string
	// Retriable marks aborts caused by synchronisation (deadlock victim,
	// timestamp rejection, cascade, certification failure): the engine
	// retries the top-level transaction with a fresh identity. User aborts
	// are not retriable by the engine.
	Retriable bool
	Err       error
}

// Error implements error.
func (a *AbortError) Error() string {
	return fmt.Sprintf("engine: execution %s aborted (%s)", a.Exec, a.Reason)
}

// Unwrap exposes the cause.
func (a *AbortError) Unwrap() error { return a.Err }

// Retriable reports whether err is an abort the engine may retry.
func Retriable(err error) bool {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae.Retriable
	}
	return false
}

// ErrKilled is the reason used when a transaction is cascade-aborted
// because a transaction whose uncommitted effects it observed aborted.
var ErrKilled = errors.New("engine: cascade abort")
