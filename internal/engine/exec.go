package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"objectbase/internal/core"
)

// Exec is the runtime state of one method execution.
type Exec struct {
	id     core.ExecID
	object string
	method string
	args   []core.Value
	eng    *Engine
	parent *Exec
	top    *Exec // top-level ancestor (self for top-level executions)

	mu   sync.Mutex
	undo []undoEntry
	// undoInline backs the first undo entries without a heap allocation
	// (most transactions mutate a handful of objects); pushUndo and
	// adoptUndo fall back to growing normally past its capacity.
	undoInline [3]undoEntry

	// selfCtx is the lane-0 Ctx handed to this execution's method body:
	// one per execution, so running a body does not allocate a Ctx
	// (Ctx.Parallel still mints per-lane ones).
	selfCtx Ctx

	// childN allocates message indices (child k is id.Child(k)); laneN
	// numbers intra-execution parallel branches. Both used to live in the
	// recorder behind its mutex; per-execution atomics keep them off the
	// observer entirely.
	childN atomic.Int32
	laneN  atomic.Int32

	// SchedData is scheduler-private per-execution state (e.g. the
	// certifier's access sets). Only the owning scheduler touches it.
	SchedData interface{}

	// readOnly marks a transaction tree that must not issue mutating
	// steps: Ctx.Do classifies every operation against the schema and
	// aborts with ErrReadOnlyWrite on a mutator. Set on top-level
	// executions only (descendants reach it through top).
	readOnly bool
	// snap, when non-nil, switches the tree to snapshot execution: steps
	// are served from committed object versions at snap.seq and neither
	// the scheduler nor the lock manager is ever entered. Implies
	// readOnly. Set on top-level executions only.
	snap *viewSnap
	// cross, when non-nil, marks a transaction running against a sharded
	// object space: Do and Call route through the space's directory and
	// the cross-shard protocol (see shard_run.go). Set on top-level
	// executions only (descendants reach it through top).
	cross *crossState
	// recIn is the first engine recorder holding this execution's record
	// (sharded runs only): the lock-free fast path of crossState.record.
	// Executions replicated into further engines are tracked by the
	// crossState map.
	recIn atomic.Pointer[Engine]

	// goctx is the caller's context.Context; set on top-level executions
	// only (descendants reach it through top).
	goctx context.Context

	// kill* exist only on top-level executions.
	killed   atomic.Bool
	killOnce sync.Once
	killCh   chan struct{}
}

type undoEntry struct {
	obj *Object
	fn  core.UndoFunc
}

// ID returns the execution's identity — its path in the invocation forest,
// which doubles as its hierarchical timestamp (Section 5.2).
func (e *Exec) ID() core.ExecID { return e.id }

// ObjectName returns the object whose method this is (the environment for
// top-level executions).
func (e *Exec) ObjectName() string { return e.object }

// Method returns the method name.
func (e *Exec) Method() string { return e.method }

// Engine returns the owning engine.
func (e *Exec) Engine() *Engine { return e.eng }

// Parent returns the parent execution, nil for top-level.
func (e *Exec) Parent() *Exec { return e.parent }

// Top returns the top-level ancestor.
func (e *Exec) Top() *Exec { return e.top }

// nextChildID allocates the identity of e's next child execution: the
// message indices of one parent are assigned in send order.
func (e *Exec) nextChildID() core.ExecID {
	return e.id.Child(e.childN.Add(1) - 1)
}

// nextLane numbers the next internal-parallelism branch (lane 0 is the
// method body itself).
func (e *Exec) nextLane() int { return int(e.laneN.Add(1)) }

// ctx returns the execution's lane-0 Ctx. Call once, before the body
// runs (never concurrently with it).
func (e *Exec) ctx() *Ctx {
	e.selfCtx = Ctx{e: e}
	return &e.selfCtx
}

func (e *Exec) pushUndo(o *Object, fn core.UndoFunc) {
	e.mu.Lock()
	if e.undo == nil {
		e.undo = e.undoInline[:0]
	}
	e.undo = append(e.undo, undoEntry{obj: o, fn: fn})
	e.mu.Unlock()
}

// adoptUndo transfers a committing child's undo log to the parent: the
// child's effects become the parent's provisional effects (they must be
// undone if the parent later aborts — the nested-transaction commit is
// relative to the parent, not durable).
func (e *Exec) adoptUndo(child *Exec) {
	child.mu.Lock()
	entries := child.undo
	child.undo = nil
	child.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	e.mu.Lock()
	if e.undo == nil {
		e.undo = e.undoInline[:0]
	}
	e.undo = append(e.undo, entries...)
	e.mu.Unlock()
}

// runUndo reverses the execution's applied effects, most recent first
// (abort semantics (a)).
func (e *Exec) runUndo() {
	e.mu.Lock()
	entries := e.undo
	e.undo = nil
	e.mu.Unlock()
	topKey := e.top.id.Key()
	for i := len(entries) - 1; i >= 0; i-- {
		entries[i].obj.applyUndo(topKey, entries[i].fn)
	}
}

// kill marks the top-level execution for cascade abort. Safe to call on
// any exec; it targets the top.
func (e *Exec) kill() {
	t := e.top
	t.killed.Store(true)
	t.killOnce.Do(func() {
		if t.killCh != nil {
			close(t.killCh)
		}
	})
}

// Killed reports whether the transaction tree was marked for cascade
// abort.
func (e *Exec) Killed() bool { return e.top.killed.Load() }

// Context returns the caller context the transaction tree runs under
// (context.Background when the transaction was started without one).
func (e *Exec) Context() context.Context {
	if c := e.top.goctx; c != nil {
		return c
	}
	return context.Background()
}

// ctxAbortErr converts an expired caller context into the abort error that
// dooms the transaction tree. Context aborts are not retriable: the caller
// asked for the work to stop.
func (e *Exec) ctxAbortErr() error {
	if c := e.top.goctx; c != nil && c.Err() != nil {
		return &AbortError{Exec: e.id, Reason: "context", Retriable: false, Err: c.Err()}
	}
	return nil
}

// KillCh returns the channel closed when the tree is killed.
func (e *Exec) KillCh() <-chan struct{} { return e.top.killCh }

// Ctx is what method bodies receive: the handle through which a method
// execution issues local steps and messages.
type Ctx struct {
	e    *Exec
	lane int
}

// Exec exposes the underlying execution (tests, schedulers).
func (c *Ctx) Exec() *Exec { return c.e }

// Args returns the invocation arguments of this method execution.
func (c *Ctx) Args() []core.Value { return c.e.args }

// Arg returns argument i, or nil.
func (c *Ctx) Arg(i int) core.Value {
	if i < 0 || i >= len(c.e.args) {
		return nil
	}
	return c.e.args[i]
}

// checkAlive converts a pending cascade kill or an expired caller context
// into an abort error. It runs on every step and message boundary, so a
// cancelled transaction aborts at its next interaction with the engine.
func (c *Ctx) checkAlive() error {
	if err := c.e.ctxAbortErr(); err != nil {
		return err
	}
	if c.e.Killed() {
		return &AbortError{Exec: c.e.id, Reason: "cascade", Retriable: true, Err: ErrKilled}
	}
	return nil
}

// Do issues a local operation on an object of this execution's object base
// (a local step, Definition 2). The scheduler decides when it runs.
//
// The model restricts local steps of a method to the method's own object
// (Definition 4(a)); the engine enforces the restriction only when the
// execution belongs to a real object — environment methods (top-level
// transactions) have no variables of their own, so idiomatic use is for
// transactions to Call methods, and for methods to Do local steps on their
// own object. Method bodies in examples follow that discipline; tests may
// relax it for brevity on single-object scenarios.
func (c *Ctx) Do(object, op string, args ...core.Value) (core.Value, error) {
	if err := c.checkAlive(); err != nil {
		return nil, err
	}
	inv := core.OpInvocation{Op: op, Args: args}
	if c.e.top.cross != nil {
		// Sharded space: the object's home engine (and scheduler) is the
		// directory's business, not this engine's.
		return crossDo(c.e, object, inv)
	}
	obj := c.e.eng.Object(object)
	if obj == nil {
		return nil, fmt.Errorf("engine: unknown object %q", object)
	}
	if top := c.e.top; top.snap != nil {
		// Snapshot mode: serve the step from a committed version, never
		// entering the scheduler or the lock manager.
		return c.e.eng.viewStep(c.e, obj, inv)
	} else if top.readOnly {
		// Locked read-only fallback: steps still go through the
		// scheduler, but mutators are rejected up front.
		ro, err := obj.schema.ReadOnlyOp(inv.Op)
		if err != nil {
			return nil, err
		}
		if !ro {
			return nil, readOnlyAbort(c.e, obj.name, inv)
		}
	}
	ret, err := c.e.eng.sched.Step(c.e, obj, inv)
	if err != nil {
		return nil, err
	}
	return ret, nil
}

// Call sends a message: it invokes a registered method of an object,
// creating a child method execution, and returns the child's return value.
// A child abort is reported as an error; the parent survives and may retry
// or take an alternative path (Section 3's motivation for semantics (b)).
func (c *Ctx) Call(object, method string, args ...core.Value) (core.Value, error) {
	if err := c.checkAlive(); err != nil {
		return nil, err
	}
	return c.e.eng.call(c.e, c.lane, object, method, args)
}

// Parallel runs the given bodies concurrently *within* this method
// execution (internal parallelism: "a method should be allowed to send
// messages, invoking other methods, simultaneously"). Each body gets its
// own lane. Parallel returns the first error, after all bodies finished.
func (c *Ctx) Parallel(bodies ...func(*Ctx) error) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(bodies))
	for i, body := range bodies {
		wg.Add(1)
		lane := c.e.nextLane()
		go func(i int, body func(*Ctx) error, lane int) {
			defer wg.Done()
			errs[i] = body(&Ctx{e: c.e, lane: lane})
		}(i, body, lane)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Abort aborts this method execution voluntarily (the Abort local
// operation of Section 3). The returned error must be propagated out of
// the method body.
func (c *Ctx) Abort(reason string) error {
	return &AbortError{Exec: c.e.id, Reason: "user: " + reason, Retriable: false}
}
