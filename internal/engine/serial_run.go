// The serial commit fast path of a sharded object space.
//
// A transaction whose object set is declared up front (DB.Txn,
// DB.ExecTouching, load-scenario op streams) write-gates the shards the
// set resolves to — in directory order, so gate acquisition cannot
// deadlock — before its body runs. Holding every gate exclusively, the
// transaction is temporally alone on its shards: any conflicting
// transaction is wholly before or wholly after it, so no serialisation
// cycle can pass through it and the per-shard scheduler, lock manager,
// and recoverability tracker are redundant for the duration. Its steps
// therefore apply directly to the object states (undo-logged, recorded,
// and version-published exactly like scheduled steps), which removes the
// lock table, waits-for bookkeeping, scheduler admission, and dependency
// tracking from the per-transaction cost entirely — the sharded
// equivalent of running each partition single-threaded.
//
// Touching a shard outside the gated set aborts the attempt (undoing
// its effects) and restarts it with the grown set pre-gated; the set
// strictly grows, so restarts are bounded by the shard count. The
// history records a serial transaction exactly like a scheduled one, so
// shard.Stitch and the oracle treat both uniformly.

package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"objectbase/internal/core"
	"objectbase/internal/obs"
)

// serialExecPool recycles the per-attempt shardedExec of serial
// transactions. Only the serial path pools: it hands its Exec to no
// scheduler, lock manager, or dependency tracker, so nothing can retain
// a pointer past the attempt (history records keep ExecIDs, not Execs).
// The scheduled and view paths keep allocating.
var serialExecPool = sync.Pool{New: func() any { return &shardedExec{} }}

// serialChildPool recycles child method executions of serial
// transactions, under the same no-retention argument.
var serialChildPool = sync.Pool{New: func() any { return &Exec{} }}

// serialChildGet returns a reset child execution for the serial path,
// recorded-in home (the caller AddExecs it there immediately).
func serialChildGet(home *Engine, parent *Exec, id core.ExecID, object, method string, args []core.Value) *Exec {
	c := serialChildPool.Get().(*Exec)
	c.id = id
	c.object = object
	c.method = method
	c.args = args
	c.eng = home
	c.parent = parent
	c.top = parent.top
	c.undo = nil
	c.childN.Store(0)
	c.laneN.Store(0)
	c.SchedData = nil
	c.snap = nil
	c.recIn.Store(home)
	return c
}

// serialExecGet returns a reset shardedExec in serial mode.
func serialExecGet(r Router) *shardedExec {
	st := serialExecPool.Get().(*shardedExec)
	serialExecReset(st, r)
	return st
}

// serialExecReset re-arms a shardedExec for one serial-mode attempt (an
// epoch flusher re-arms the same state between batch members instead of
// round-tripping the pool). The reset is explicit, field by field: the
// structs embed mutexes and atomics, so a wholesale overwrite is not an
// option, and every field the serial path can have touched must be
// listed here.
func serialExecReset(st *shardedExec, r Router) {
	e, cs := &st.e, &st.cs
	e.args = nil
	e.parent = nil
	e.undo = nil
	e.childN.Store(0)
	e.laneN.Store(0)
	e.SchedData = nil
	e.snap = nil
	e.recIn.Store(nil)
	e.killed.Store(false)
	e.cross = cs
	cs.r = r
	cs.view = false
	cs.serial = true
	cs.joinedMask.Store(0)
	cs.joined = st.joinedInline[:0]
	cs.scheds = st.schedInline[:0]
	cs.gated = nil
	cs.rgated = -1
	cs.restart = nil
	cs.topIn = st.topInInline[:0]
	cs.replicated = nil
	cs.counted = nil
	cs.pinned = nil
	cs.snapSeq = 0
}

// runSerialOnce is one attempt of a declared-set transaction: exclusive
// gates around direct execution, with the degenerate shard-ordered
// two-phase commit (validation cannot fail; publication and gate release
// walk the shards in reverse order).
func (en *Engine) runSerialOnce(ctx context.Context, r Router, name string, fn MethodFunc, args []core.Value, readOnly bool, gate []int) (core.Value, error) {
	id := en.allocTop()
	defer en.releaseTop(id)
	tr := en.tr
	sp := tr.StartSpan(obs.PhaseAdmit, ringKey(id), "", "")
	if tr != nil {
		// The exec key is formatted inside the admit span, not before it:
		// the cost is real work of this attempt and must not fall into an
		// unmeasured gap (the phases partition the attempt's wall time).
		sp = sp.WithExec(id.Key())
	}
	st := serialExecGet(r)
	defer serialExecPool.Put(st) // after releaseGates (LIFO)
	e, cs := &st.e, &st.cs
	e.id = id
	e.object = core.EnvironmentObject
	e.method = name
	e.args = args
	e.eng = en
	e.goctx = ctx
	e.readOnly = readOnly
	e.top = e
	for i, s := range gate {
		if err := lockGateCtx(ctx, r, s); err != nil {
			// Cancelled while queued: hand control back without waiting
			// out the holders. Nothing ran and nothing was recorded yet.
			for j := i - 1; j >= 0; j-- {
				r.UnlockGate(gate[j])
			}
			sp.EndWith("cancel")
			return nil, err
		}
	}
	ordGates(gate)
	cs.gated = gate
	defer cs.releaseGates() // after publication (LIFO)
	// Record the top-level execution eagerly in the base engine, exactly
	// like an unsharded run records every top in its engine: a
	// transaction that commits without touching any object must still
	// appear in the (stitched) history.
	if err := en.rec.AddExec(id, e.object, e.method); err != nil {
		sp.EndWith("abort")
		return nil, historyAbort(id, err)
	}
	e.recIn.Store(en)
	sp = sp.Next(obs.PhaseExecute)
	ret, err := fn(e.ctx())
	if err == nil {
		err = e.ctxAbortErr()
	}
	sp = sp.Next(obs.PhaseCommitBarrier)
	need, counted := cs.commitState(en)
	if err == nil && need != nil {
		// The body swallowed the restart error from a Call and finished
		// anyway; the attempt still cannot commit with an incomplete
		// shard set.
		err = restartAbort(id, need)
	}
	if err != nil {
		e.runUndo()
		cs.markTopAborted(en, e.id)
		var rs *shardRestartError
		if !errors.As(err, &rs) {
			// Membership restarts are routing, not workload outcomes;
			// everything else counts as an aborted attempt.
			counted.aborts.Add(1)
		}
		sp.EndWith("abort")
		return nil, err
	}
	sp = sp.Next(obs.PhasePublish)
	if en.opts.Versioning {
		publishCommitSharded(e)
	}
	counted.commits.Add(1)
	sp.End()
	return ret, nil
}

// joinSerial makes engine en (shard s) a participant of a serial
// transaction: the shard must already be gated (else the attempt
// restarts with the grown set), and the top-level record is replicated
// into en's recorder so abort marking and stitching stay closed per
// shard. No scheduler is consulted — gate exclusivity is the admission.
// After the first join of a shard, re-joining it is one atomic load
// (joinedMask), so the per-step membership check stays off the mutex.
func (cs *crossState) joinSerial(top *Exec, en *Engine, s int) error {
	if s < 64 && cs.joinedMask.Load()&(1<<uint(s)) != 0 {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.joinedLocked(s) {
		return nil
	}
	if cs.restart != nil {
		return restartAbort(top.id, cs.restart)
	}
	if !cs.holdsGateLocked(s) {
		// The declared set missed this shard. Gates cannot be grown here
		// (s may sort below an already-held gate, and we may hold state
		// in gated shards), so the attempt unwinds and restarts with the
		// full set gated in order.
		need := append(append([]int(nil), cs.gated...), s)
		sort.Ints(need)
		cs.restart = need
		return restartAbort(top.id, need)
	}
	if err := cs.recordLocked(en, top); err != nil {
		return historyAbort(top.id, err)
	}
	cs.insertJoinedLocked(s, en)
	if s < 64 {
		cs.joinedMask.Or(1 << uint(s))
	}
	return nil
}

// insertJoinedLocked records {s, en} in the ascending joined list and
// charges the transaction's outcome counter to its first engine. Caller
// holds cs.mu.
func (cs *crossState) insertJoinedLocked(s int, en *Engine) {
	at := len(cs.joined)
	for i, j := range cs.joined {
		if s < j.s {
			at = i
			break
		}
	}
	cs.joined = append(cs.joined, joinedShard{})
	copy(cs.joined[at+1:], cs.joined[at:])
	cs.joined[at] = joinedShard{s: s, en: en}
	if cs.counted == nil {
		cs.counted = en
	}
}

// serialDo executes a local step of a serial transaction: directly
// against the object state (under its latch — monitoring snapshots still
// run concurrently), no scheduler, no lock manager. Recording and undo
// logging are identical to the scheduled path's.
func (cs *crossState) serialDo(e *Exec, object string, inv core.OpInvocation) (core.Value, error) {
	var home *Engine
	var obj *Object
	if e != e.top {
		// A method execution issuing a step on an object of its own
		// engine — the idiomatic local step. Its engine was
		// membership-checked when the message creating it was routed.
		if obj = e.eng.Object(object); obj != nil {
			home = e.eng
		}
	}
	if home == nil {
		var s int
		var err error
		home, s, err = cs.r.HomeOf(object)
		if err != nil {
			return nil, err
		}
		if err := cs.joinSerial(e.top, home, s); err != nil {
			return nil, err
		}
		obj = home.Object(object)
		if obj == nil {
			return nil, fmt.Errorf("engine: unknown object %q", object)
		}
		if e != e.top {
			// A method execution stepping on a foreign engine's object:
			// replicate its record chain there before the step lands.
			// (The top-level record is already there — joinSerial put it.)
			if err := cs.record(home, e); err != nil {
				return nil, err
			}
		}
	}
	if e.top.readOnly {
		ro, roerr := obj.schema.ReadOnlyOp(inv.Op)
		if roerr != nil {
			return nil, roerr
		}
		if !ro {
			return nil, readOnlyAbort(e, obj.name, inv)
		}
	}
	st, err := obj.ApplyFor(e, inv)
	if err != nil {
		return nil, err
	}
	return st.Ret, nil
}

// serialCall routes a message of a serial transaction: the child method
// execution runs in the target object's home engine (which must be
// gated), without any scheduler hand-off — a child abort undoes the
// child's effects and surfaces as the Call's error, exactly as in the
// scheduled path.
func serialCall(parent *Exec, lane int, object, method string, args []core.Value) (core.Value, error) {
	cs := parent.top.cross
	var home *Engine
	if parent != parent.top && parent.eng.Object(object) != nil {
		home = parent.eng
	}
	if home == nil {
		var s int
		var err error
		home, s, err = cs.r.HomeOf(object)
		if err != nil {
			return nil, err
		}
		if err := cs.joinSerial(parent.top, home, s); err != nil {
			return nil, err
		}
		if home.Object(object) == nil {
			return nil, fmt.Errorf("engine: unknown object %q", object)
		}
	}
	fn, err := home.method(object, method)
	if err != nil {
		return nil, err
	}
	if parent != parent.top {
		// A nested cross-engine send: replicate the issuing chain into the
		// target engine. (For a top-level send, joinSerial already put the
		// top record there.)
		if err := cs.record(home, parent); err != nil {
			return nil, err
		}
	}

	childID := parent.nextChildID()
	msg, err := home.rec.StartMessage(parent.id, childID, lane, object, method, args)
	if err != nil {
		return nil, historyAbort(parent.id, err)
	}
	child := serialChildGet(home, parent, childID, object, method, args)
	defer serialChildPool.Put(child)
	// The child's record lands in exactly one engine — the one it runs
	// in — so it skips the crossState bookkeeping entirely.
	if err := home.rec.AddExec(childID, object, method); err != nil {
		home.rec.EndMessage(msg, nil, true)
		return nil, historyAbort(childID, err)
	}
	ret, err := fn(child.ctx())
	if err != nil {
		child.runUndo()
		cs.markAbortedEverywhere(child.id)
		home.rec.EndMessage(msg, nil, true)
		return nil, err
	}
	// Relative commit: effects become the parent's provisional effects.
	parent.adoptUndo(child)
	home.rec.EndMessage(msg, ret, false)
	return ret, nil
}
