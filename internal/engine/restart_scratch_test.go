package engine

// The restart path pools its shard-set merge buffers (restartScratch):
// a transaction growing its gate set across discovery restarts must not
// allocate per restart once the scratch is warm — the assertion that
// pins the pooling in place.

import (
	"testing"
)

// restartMergeStep performs exactly what one discovery restart does to
// the shard set: alternate the scratch buffers (the live pregate aliases
// the previous merge) and merge the grown set into the spare.
func restartMergeStep(scratch *restartScratch, pregate, need []int) []int {
	scratch.a, scratch.b = scratch.b, scratch.a
	scratch.a = mergeShardSetsInto(scratch.a[:0], pregate, need)
	return scratch.a
}

func TestRestartMergeNoAllocPerRestart(t *testing.T) {
	scratch := restartScratchPool.Get().(*restartScratch)
	defer restartScratchPool.Put(scratch)
	declared := []int{0, 2, 4, 6}
	discovered := [][]int{{1}, {3}, {5, 7}}
	// Warm the buffers through one full discovery sequence, as the first
	// restarts of an attempt would.
	pregate := declared
	for _, need := range discovered {
		pregate = restartMergeStep(scratch, pregate, need)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if len(pregate) != len(want) {
		t.Fatalf("merged set = %v, want %v", pregate, want)
	}
	for i, s := range want {
		if pregate[i] != s {
			t.Fatalf("merged set = %v, want %v", pregate, want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		p := declared
		for _, need := range discovered {
			p = restartMergeStep(scratch, p, need)
		}
	})
	if allocs != 0 {
		t.Fatalf("restart merge allocates %v per restart sequence, want 0", allocs)
	}
}

func BenchmarkRestartMerge(b *testing.B) {
	scratch := restartScratchPool.Get().(*restartScratch)
	defer restartScratchPool.Put(scratch)
	declared := []int{0, 2, 4, 6}
	need := []int{1, 3, 5, 7}
	restartMergeStep(scratch, declared, need) // warm both buffers
	restartMergeStep(scratch, declared, need)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restartMergeStep(scratch, declared, need)
	}
}
