package engine

import (
	"fmt"
	"sort"
	"sync"

	"objectbase/internal/core"
)

// depTracker provides recoverability for schedulers that allow access to
// uncommitted effects (nested timestamp ordering, optimistic
// certification). Lock-based schedulers never create such access (rule 2
// blocks conflicting non-ancestors), so they run with tracking disabled.
//
// The mechanism: every effectful local step registers a "touch" of its
// conflict scope. A step that conflicts with an earlier touch by a live,
// incomparable top-level transaction records a commit dependency: the
// toucher must commit before the dependent may. If the toucher aborts, the
// dependent is cascade-aborted. Undo ordering is honoured by aborting
// dependents *before* the transaction they depend on undoes its own
// effects; because under timestamp ordering dependencies always point from
// a younger to an older top-level transaction, the dependency graph is
// acyclic and cascades terminate.
//
// The committed history that remains after cascades contains no dirty
// reads, which is exactly what core.History.CheckLegal's effective-steps
// replay verifies.
type depTracker struct {
	enabled bool

	mu      sync.Mutex
	touches map[string][]touchRec // scope -> touches by live transactions
	tops    map[int32]*topState
}

type touchRec struct {
	top      int32
	step     core.StepInfo
	readOnly bool
}

type topStatus int

const (
	topRunning topStatus = iota
	topCommitted
	topAborting
	topAborted
)

type topState struct {
	status topStatus
	deps   map[int32]bool // transactions this one observed uncommitted
	exec   *Exec
	done   chan struct{} // closed at commit or full abort
	// committing marks a transaction blocked in the commit barrier; used
	// to detect barrier deadlocks (mutual observation of uncommitted
	// effects, possible under certification where no timestamp order
	// constrains dependency direction).
	committing bool
}

func newDepTracker(enabled bool) *depTracker {
	return &depTracker{
		enabled: enabled,
		touches: make(map[string][]touchRec),
		tops:    make(map[int32]*topState),
	}
}

func (d *depTracker) beginTop(e *Exec) {
	if !d.enabled {
		return
	}
	d.mu.Lock()
	d.tops[e.id[0]] = &topState{
		status: topRunning,
		deps:   make(map[int32]bool),
		exec:   e,
		done:   make(chan struct{}),
	}
	d.mu.Unlock()
}

// touch registers a prospective step of execution e (top-level root n). It
// must be called before the step is applied, under the object's latch. It
// fails when the step conflicts with the uncommitted effects of a
// transaction that is currently aborting — the step's execution must abort
// (retriably) rather than observe state mid-undo.
func (d *depTracker) touch(e *Exec, obj *Object, step core.StepInfo, readOnly bool) error {
	if !d.enabled {
		return nil
	}
	n := e.id[0]
	rel := obj.schema.Conflicts
	scope := core.ScopeOf(obj.name, rel, step.Invocation())

	d.mu.Lock()
	defer d.mu.Unlock()
	self := d.tops[n]
	if self == nil || self.status != topRunning {
		return &AbortError{Exec: e.id, Reason: "cascade (self not running)", Retriable: true, Err: ErrKilled}
	}
	for _, t := range d.touches[scope] {
		if t.top == n {
			continue
		}
		other := d.tops[t.top]
		if other == nil || other.status == topCommitted {
			continue
		}
		// Conflict in either order matters for recoverability: observing
		// (read-after-write) or overwriting (write-after-write) dirty
		// effects both require the toucher to commit first. The test is
		// deliberately conservative (operation granularity): touches may
		// lack return values — conservative NTO registers them before
		// execution — and a missed dependency breaks recoverability,
		// while a surplus one merely costs a wait or a retry.
		if t.readOnly && readOnly {
			continue
		}
		if !rel.OpConflicts(t.step.Invocation(), step.Invocation()) &&
			!rel.OpConflicts(step.Invocation(), t.step.Invocation()) {
			continue
		}
		if t.readOnly && !readOnly {
			// Write after an uncommitted read: the reader's abort would
			// not disturb this step's effects; no dependency needed.
			continue
		}
		if other.status == topAborting || other.status == topAborted {
			return &AbortError{Exec: e.id, Reason: fmt.Sprintf("cascade: scope %q mid-undo of T%d", scope, t.top), Retriable: true, Err: ErrKilled}
		}
		if self.deps[t.top] {
			continue
		}
		// Keep the dependency graph acyclic: mutual observation of
		// uncommitted effects would deadlock the commit barrier, entangle
		// abort ordering (undo closures of conflicting steps must run in
		// reverse step order, which only a consistent dependency
		// direction guarantees), and could never certify anyway. The
		// toucher that would close a cycle aborts and retries. Under
		// timestamp ordering dependencies always point young->old, so
		// this never fires for NTO.
		if d.reachableLocked(t.top, n) {
			return &AbortError{Exec: e.id, Reason: fmt.Sprintf("mutual observation with T%d at scope %q", t.top, scope), Retriable: true, Err: ErrKilled}
		}
		self.deps[t.top] = true
	}
	d.touches[scope] = append(d.touches[scope], touchRec{top: n, step: step, readOnly: readOnly})
	return nil
}

// reachableLocked reports whether `to` is reachable from `from` along
// unresolved dependency edges. Caller holds d.mu.
func (d *depTracker) reachableLocked(from, to int32) bool {
	if from == to {
		return true
	}
	seen := map[int32]bool{from: true}
	stack := []int32{from}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st := d.tops[x]
		if st == nil || st.status == topCommitted {
			continue
		}
		for m := range st.deps {
			if m == to {
				return true
			}
			if other := d.tops[m]; other != nil && other.status == topCommitted {
				continue
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// commitBarrier blocks a finishing top-level transaction until every
// transaction whose uncommitted effects it observed has resolved; if any of
// them aborted (or this transaction was killed meanwhile), it returns a
// retriable abort.
func (d *depTracker) commitBarrier(e *Exec) error {
	if !d.enabled {
		return nil
	}
	n := e.id[0]
	defer func() {
		d.mu.Lock()
		if self := d.tops[n]; self != nil {
			self.committing = false
		}
		d.mu.Unlock()
	}()
	for {
		d.mu.Lock()
		self := d.tops[n]
		if self == nil {
			d.mu.Unlock()
			return nil
		}
		self.committing = true
		var wait *topState
		var waitN int32
		for m := range self.deps {
			other := d.tops[m]
			if other == nil || other.status == topCommitted {
				delete(self.deps, m)
				continue
			}
			if other.status == topAborting || other.status == topAborted {
				d.mu.Unlock()
				return &AbortError{Exec: e.id, Reason: fmt.Sprintf("cascade: dependency T%d aborted", m), Retriable: true, Err: ErrKilled}
			}
			wait, waitN = other, m
			break
		}
		if wait == nil {
			d.mu.Unlock()
			return nil // all dependencies committed
		}
		// Barrier deadlock: if our unresolved dependencies lead, through
		// transactions that are themselves blocked in the barrier, back to
		// us, nobody will progress. Detected by the transaction that
		// closes the cycle; it aborts (retriably), releasing the others.
		if d.barrierCycleLocked(n) {
			d.mu.Unlock()
			return &AbortError{Exec: e.id, Reason: "commit-barrier deadlock (mutual observation)", Retriable: true, Err: ErrKilled}
		}
		ch := wait.done
		d.mu.Unlock()
		select {
		case <-ch:
			// resolved; loop to re-examine
		case <-e.KillCh():
			return &AbortError{Exec: e.id, Reason: fmt.Sprintf("cascade: killed while awaiting T%d", waitN), Retriable: true, Err: ErrKilled}
		case <-e.Context().Done():
			// The caller gave up: RunCtx promises cancellation is honoured
			// at the commit boundary, and the kill channel above only fires
			// for wound-wait aborts, not for context cancellation.
			return &AbortError{Exec: e.id, Reason: fmt.Sprintf("cancelled while awaiting T%d: %v", waitN, e.Context().Err()), Retriable: false, Err: e.Context().Err()}
		}
	}
}

// barrierCycleLocked reports whether n's unresolved dependencies reach back
// to n through transactions blocked in the commit barrier. Caller holds
// d.mu.
func (d *depTracker) barrierCycleLocked(n int32) bool {
	seen := map[int32]bool{}
	var visit func(m int32) bool
	visit = func(m int32) bool {
		if m == n {
			return true
		}
		if seen[m] {
			return false
		}
		seen[m] = true
		st := d.tops[m]
		if st == nil || !st.committing {
			// Not blocked in the barrier: it can still make progress on
			// its own, so it does not propagate the wait.
			return false
		}
		for k := range st.deps {
			if other := d.tops[k]; other != nil && other.status == topCommitted {
				continue
			}
			if visit(k) {
				return true
			}
		}
		return false
	}
	self := d.tops[n]
	for m := range self.deps {
		if other := d.tops[m]; other != nil && other.status == topCommitted {
			continue
		}
		if visit(m) {
			return true
		}
	}
	return false
}

// commitTop finalises a top-level commit: removes its touches and wakes
// dependents.
func (d *depTracker) commitTop(e *Exec) {
	if !d.enabled {
		return
	}
	n := e.id[0]
	d.mu.Lock()
	self := d.tops[n]
	if self != nil {
		self.status = topCommitted
		close(self.done)
	}
	d.dropTouches(n)
	d.mu.Unlock()
}

// beginAbort transitions the transaction to aborting and returns the live
// dependents that must be cascade-aborted first, youngest first.
func (d *depTracker) beginAbort(e *Exec) []*topState {
	if !d.enabled {
		return nil
	}
	n := e.id[0]
	d.mu.Lock()
	self := d.tops[n]
	if self == nil || self.status == topAborting || self.status == topAborted {
		d.mu.Unlock()
		return nil
	}
	self.status = topAborting
	var ids []int32
	for m, st := range d.tops {
		if m == n || !st.deps[n] {
			continue
		}
		// Running dependents must be killed; ones already aborting must
		// still be awaited so their undo completes before ours starts.
		if st.status == topRunning || st.status == topAborting {
			ids = append(ids, m)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] }) // youngest first
	dependents := make([]*topState, 0, len(ids))
	for _, m := range ids {
		dependents = append(dependents, d.tops[m])
	}
	d.mu.Unlock()
	return dependents
}

// finishAbort marks the abort complete (effects undone) and wakes waiters.
func (d *depTracker) finishAbort(e *Exec) {
	if !d.enabled {
		return
	}
	n := e.id[0]
	d.mu.Lock()
	self := d.tops[n]
	if self != nil && self.status != topAborted {
		self.status = topAborted
		close(self.done)
	}
	d.dropTouches(n)
	d.mu.Unlock()
}

// dropTouches removes all touches of transaction n; caller holds d.mu.
func (d *depTracker) dropTouches(n int32) {
	for scope, list := range d.touches {
		out := list[:0]
		for _, t := range list {
			if t.top != n {
				out = append(out, t)
			}
		}
		if len(out) == 0 {
			delete(d.touches, scope)
		} else {
			d.touches[scope] = out
		}
	}
}

// forget drops the transaction's registration entirely (after its Run
// attempt fully ended) to keep the tracker bounded.
func (d *depTracker) forget(e *Exec) {
	if !d.enabled {
		return
	}
	d.mu.Lock()
	delete(d.tops, e.id[0])
	d.mu.Unlock()
}
