// Cross-shard transaction execution.
//
// A sharded object space (internal/shard) partitions the objects over N
// engines. Each shard carries a reader/writer *gate*; a transaction runs
// in one of two modes against it:
//
// Declared mode (serial commit fast path). A transaction whose object
// set is declared up front (DB.Txn, DB.ExecTouching, scenario op
// streams) resolves the set to its shards and write-locks those gates in
// directory (ascending index) order before executing. Holding every gate
// exclusively, it is temporally alone on its shards: no other
// transaction — declared or not — can overlap it there. Under that
// exclusivity the per-shard scheduler, lock manager, and recoverability
// tracker are provably redundant (any conflicting transaction is wholly
// before or wholly after this one, so no serialisation cycle can involve
// it), and the transaction executes its steps directly against the
// object states — undo-logged for abort, recorded for the oracle,
// published for snapshot views — at a fraction of the scheduled path's
// cost. Commit is the degenerate shard-ordered two-phase commit: phase 1
// (validation) cannot fail, phase 2 publishes versions and drops the
// gates in reverse order. Touching a shard outside the declared set
// aborts the attempt and restarts it with the grown set pre-gated — the
// set strictly grows, so restarts are bounded by the shard count.
//
// Discovery mode (scheduled path). A transaction without a declaration
// read-locks the gate of the first shard it touches and runs under that
// shard's own scheduler and lock manager — concurrent with every other
// discovery-mode transaction of the shard, exactly like an unsharded
// engine. If it touches a second shard it aborts (undoing its effects)
// and restarts as a cross-shard transaction with the learned shard set
// write-gated in ascending order: a protocol restart, not a
// synchronisation retry, so it skips the backoff and the retry counters.
//
// Cross-shard discovery restarts keep the scheduled path: they hold
// their write gates (mutually exclusive with any overlapping gate
// holder, so a waits-for cycle can never span engines — every bridge of
// such a cycle would be a transaction holding a lock in one engine while
// waiting in another, and two consecutive bridges share a shard) while
// still running under the per-shard schedulers, committing by the full
// shard-ordered two-phase commit: phase 1 is validation — schedulers
// whose commit can fail (the optimistic certifier) are shared across the
// space, a single instance whose one Commit call decides for every shard
// at once — and phase 2 walks the joined shards in directory order
// releasing locks (rule 5 at top level).
//
// In both modes, ordered acquisition keeps the gates deadlock-free, and
// blocking on a gate only ever happens while the transaction holds no
// locks outside already-gated shards. History records land in every
// joined engine's recorder (with the ancestor chain replicated so abort
// marking stays closed per shard); shard.Stitch reassembles them into
// one history for the oracle.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/obs"
)

// Router is the engine-facing surface of a sharded object space: the
// object directory, the shard gates, and the engine set. Implemented by
// shard.Space.
type Router interface {
	// HomeOf resolves an object name to its owning engine and shard
	// index. The directory is deterministic: the same name always maps
	// to the same shard.
	HomeOf(object string) (*Engine, int, error)
	// NumShards returns the number of shards in the space.
	NumShards() int
	// Base returns shard 0's engine: the default home for bookkeeping
	// that needs an engine before any object was touched (retry policy,
	// counters of transactions that never joined a shard).
	Base() *Engine
	// TryGate attempts a non-blocking exclusive acquisition of shard s's
	// gate.
	TryGate(s int) bool
	// LockGate blocks until shard s's gate is held exclusively. Callers
	// must acquire gates in ascending shard order.
	LockGate(s int)
	// UnlockGate releases an exclusively held gate.
	UnlockGate(s int)
	// RLockGate acquires shard s's gate shared: the holder runs under the
	// shard's own scheduler and lock manager, concurrently with other
	// shared holders, excluded only from exclusively gated windows.
	RLockGate(s int)
	// TryRGate attempts a non-blocking shared acquisition.
	TryRGate(s int) bool
	// RUnlockGate releases a shared gate.
	RUnlockGate(s int)
}

// lockGateCtx acquires shard s's gate exclusively, honouring ctx while
// queued: a gate wait is bounded only by other transactions' durations,
// so a cancelled caller must get control back without waiting them out
// (every other blocking point — lock waits, retry backoff — already
// honours ctx). The fast path is a plain try; only contended
// acquisitions pay the watcher goroutine, and an abandoned acquisition
// releases itself the moment it lands.
func lockGateCtx(ctx context.Context, r Router, s int) error {
	if r.TryGate(s) {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		r.LockGate(s)
		return nil
	}
	acquired := make(chan struct{})
	go func() {
		r.LockGate(s)
		close(acquired)
	}()
	select {
	case <-acquired:
		return nil
	case <-done:
		go func() {
			//oblint:allow ctxwait -- abandoned-acquire reaper: the blocked LockGate cannot be interrupted, so this detached goroutine must outwait it to release the gate
			<-acquired
			r.UnlockGate(s)
		}()
		return ctx.Err()
	}
}

// rLockGateCtx is lockGateCtx for the shared side of the gate.
func rLockGateCtx(ctx context.Context, r Router, s int) error {
	if r.TryRGate(s) {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		r.RLockGate(s)
		return nil
	}
	acquired := make(chan struct{})
	go func() {
		r.RLockGate(s)
		close(acquired)
	}()
	select {
	case <-acquired:
		return nil
	case <-done:
		go func() {
			//oblint:allow ctxwait -- abandoned-acquire reaper: the blocked RLockGate cannot be interrupted, so this detached goroutine must outwait it to release the gate
			<-acquired
			r.RUnlockGate(s)
		}()
		return ctx.Err()
	}
}

// shardRestartError asks the retry loop to restart the transaction with
// the given shard set pre-gated. It is a routing-protocol restart, not a
// synchronisation abort: no backoff, no retry counter, and the need set
// strictly grows, so restarts are bounded by the shard count.
type shardRestartError struct {
	need []int // sorted ascending
}

func (e *shardRestartError) Error() string {
	return fmt.Sprintf("cross-shard restart: shard set %v must be gated up front", e.need)
}

func restartAbort(id core.ExecID, need []int) error {
	return &AbortError{Exec: id, Reason: "cross-shard discovery", Retriable: true,
		Err: &shardRestartError{need: need}}
}

// errCrossShardView marks a snapshot view that touched a second shard:
// per-shard publication sequences cannot form one cross-shard snapshot,
// so the view falls back to the locked read-only path.
var errCrossShardView = errors.New("engine: snapshot view touched a second shard")

// crossState is the per-transaction routing state of a sharded run,
// carried on the top-level Exec. Mutable fields are guarded by mu; the
// body's internal parallelism (Ctx.Parallel) may join shards
// concurrently. The state is deliberately slim — a slice of joined
// shards, lazily allocated bookkeeping — because every transaction of a
// sharded space carries one, and the common transaction joins exactly
// one shard.
type crossState struct {
	r      Router
	view   bool // snapshot view mode (single-shard pin, no scheduler)
	serial bool // declared-set serial mode (exclusive gates, no scheduler)

	// joinedMask is the lock-free fast path of the per-step membership
	// check: bit s set once shard s (s < 64) is joined and the top-level
	// record landed in its engine. Higher shard indexes take the locked
	// path.
	joinedMask atomic.Uint64

	mu      sync.Mutex
	joined  []joinedShard // ascending by shard index
	scheds  []Scheduler   // distinct scheduler instances, join order
	gated   []int         // shard gates held exclusively, ascending
	rgated  int           // shard gate held shared (discovery mode), -1 none
	restart []int         // pending restart need (sticky once set)
	// topIn tracks the engines holding the top-level record (the only
	// record replicated on every cross-shard transaction — keyed by
	// pointer scan, no per-key allocation); replicated tracks deeper
	// ancestors replicated into engines beyond their first (Exec.recIn is
	// the lock-free single-engine fast path), which only nested
	// cross-engine subtrees ever populate.
	topIn      []*Engine
	replicated map[*Engine]map[string]bool
	counted    *Engine // engine charged with the commit/abort counter
	pinned     *Engine // view mode: the single shard the view reads
	snapSeq    uint64  // view mode: pinned publication sequence
}

type joinedShard struct {
	s  int
	en *Engine
}

// shardedExec bundles a sharded transaction's execution record and its
// routing state into one allocation — both are born and die together on
// every attempt of every transaction of a sharded space.
type shardedExec struct {
	e  Exec
	cs crossState
	// joinedInline backs cs.joined for the overwhelmingly common shard
	// fan-outs (one or two shards) without a separate allocation.
	joinedInline [2]joinedShard
	schedInline  [2]Scheduler
	topInInline  [2]*Engine
}

func newShardedExec(r Router, view bool) *shardedExec {
	st := &shardedExec{}
	st.cs.r = r
	st.cs.view = view
	st.cs.rgated = -1
	st.cs.joined = st.joinedInline[:0]
	st.cs.scheds = st.schedInline[:0]
	st.cs.topIn = st.topInInline[:0]
	st.e.cross = &st.cs
	return st
}

func (cs *crossState) holdsGateLocked(s int) bool {
	for _, g := range cs.gated {
		if g == s {
			return true
		}
	}
	return false
}

func (cs *crossState) joinedLocked(s int) bool {
	for _, j := range cs.joined {
		if j.s == s {
			return true
		}
	}
	return false
}

// join makes engine en (shard s) a participant of the transaction,
// enforcing the gate protocol, registering the top-level record with
// en's recorder, and calling Begin on en's scheduler the first time that
// scheduler instance is seen.
func (cs *crossState) join(top *Exec, en *Engine, s int) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.joinedLocked(s) {
		return nil
	}
	if cs.restart != nil {
		// A restart is already pending: fail every further step fast so
		// the attempt unwinds.
		return restartAbort(top.id, cs.restart)
	}
	// A scheduled transaction must hold a gate for every shard it
	// touches: the first shard of an undeclared transaction is entered
	// shared (concurrent with the shard's other scheduled transactions),
	// while every multi-shard set is held exclusively — a lock in a
	// shared shard held while blocking on a further gate is exactly the
	// gate-vs-lock cycle the exclusivity invariant rules out.
	if !cs.holdsGateLocked(s) {
		switch {
		case len(cs.joined) == 0 && len(cs.gated) == 0:
			// First shard of an undeclared transaction: enter it shared.
			// We hold no locks yet (steps only land in joined shards), so
			// blocking here is safe — but only as long as the caller still
			// wants the work (gate waits are bounded by other transactions'
			// durations, so they must honour cancellation).
			if err := rLockGateCtx(top.Context(), cs.r, s); err != nil {
				return &AbortError{Exec: top.id, Reason: "context", Retriable: false, Err: err}
			}
			cs.rgated = s
		case cs.rgated >= 0:
			// A second shard under a shared first gate: the shared gate
			// cannot be upgraded in place (an exclusive holder may already
			// be draining us), so the attempt unwinds and restarts with
			// the learned set gated exclusively in ascending order.
			want := make([]int, 0, len(cs.joined)+1)
			for _, j := range cs.joined {
				want = append(want, j.s)
			}
			want = append(want, s)
			sort.Ints(want)
			cs.restart = want
			return restartAbort(top.id, want)
		case s > cs.gated[len(cs.gated)-1]:
			// Every lock we hold lives in a gated shard below s, so a
			// blocking acquisition keeps the ascending-order invariant:
			// whoever holds gate s cannot be waiting on any lock of ours
			// without holding one of our gates.
			if err := lockGateCtx(top.Context(), cs.r, s); err != nil {
				return &AbortError{Exec: top.id, Reason: "context", Retriable: false, Err: err}
			}
			ordGateAppend(cs.gated, s)
			cs.gated = append(cs.gated, s)
		default:
			need := append(append([]int(nil), cs.gated...), s)
			sort.Ints(need)
			cs.restart = need
			return restartAbort(top.id, need)
		}
	}
	if err := cs.recordLocked(en, top); err != nil {
		return historyAbort(top.id, err)
	}
	seen := false
	for _, sch := range cs.scheds {
		if sch == en.sched {
			seen = true
			break
		}
	}
	if !seen {
		cs.scheds = append(cs.scheds, en.sched)
		if err := en.sched.Begin(top); err != nil {
			return err
		}
	}
	cs.insertJoinedLocked(s, en)
	return nil
}

// recordedInLocked reports whether e's record already sits in en's
// recorder. Caller holds cs.mu.
func (cs *crossState) recordedInLocked(en *Engine, e *Exec) bool {
	if e.recIn.Load() == en {
		return true
	}
	if e.parent == nil {
		// The top-level record is the one record every cross-shard
		// transaction replicates: a pointer scan over the joined engines
		// beats a per-key map.
		for _, in := range cs.topIn {
			if in == en {
				return true
			}
		}
		return false
	}
	if m := cs.replicated[en]; m != nil {
		return m[e.id.Key()]
	}
	return false
}

// recordLocked replicates the records of e and its ancestors into en's
// recorder (top first), so that parent links, abort marking, and message
// slots stay closed within every engine the transaction touched. Caller
// holds cs.mu.
func (cs *crossState) recordLocked(en *Engine, e *Exec) error {
	var chainBuf [8]*Exec // nesting deeper than 8 grows, but never allocates on the common path
	chain := chainBuf[:0]
	for x := e; x != nil; x = x.parent {
		if cs.recordedInLocked(en, x) {
			break
		}
		chain = append(chain, x)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		x := chain[i]
		if err := en.rec.AddExec(x.id, x.object, x.method); err != nil {
			return err
		}
		switch {
		case x.recIn.Load() == nil:
			x.recIn.Store(en)
		case x.parent == nil:
			cs.topIn = append(cs.topIn, en)
		default:
			if cs.replicated == nil {
				cs.replicated = make(map[*Engine]map[string]bool)
			}
			m := cs.replicated[en]
			if m == nil {
				m = make(map[string]bool)
				cs.replicated[en] = m
			}
			m[x.id.Key()] = true
		}
	}
	return nil
}

// record ensures e (and its ancestors) are on record in en's recorder.
// The single-engine case — an execution recorded exactly where it runs,
// i.e. every execution of a single-shard transaction — is a lock-free
// pointer compare.
func (cs *crossState) record(en *Engine, e *Exec) error {
	if e.recIn.Load() == en {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.recordLocked(en, e)
}

// restartNeed returns the pending restart shard set, or nil.
func (cs *crossState) restartNeed() []int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.restart
}

// commitState returns, in one locked read, what the commit path needs:
// the pending restart set and the engine charged with the outcome
// counter (base when no shard was ever joined).
func (cs *crossState) commitState(base *Engine) (restart []int, counted *Engine) {
	cs.mu.Lock()
	restart = cs.restart
	counted = cs.counted
	cs.mu.Unlock()
	if counted == nil {
		counted = base
	}
	return restart, counted
}

// joinedSnapshot returns a copy of the joined-shard list, safe to
// iterate without the lock. A copy, not the live slice: mid-body abort
// paths (a child abort under Ctx.Parallel) iterate while another lane's
// join may still be shifting elements of the same backing array in
// place.
func (cs *crossState) joinedSnapshot() []joinedShard {
	cs.mu.Lock()
	joined := append([]joinedShard(nil), cs.joined...)
	cs.mu.Unlock()
	return joined
}

// forEachSched visits the distinct scheduler instances of the joined
// shards in ascending shard order — the 2PC phase order — without
// allocating (duplicates are skipped by rescanning the prefix, which is
// tiny: the shard count).
func (cs *crossState) forEachSched(f func(Scheduler) error) error {
	joined := cs.joinedSnapshot()
	for i, j := range joined {
		dup := false
		for _, prev := range joined[:i] {
			if prev.en.sched == j.en.sched {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if err := f(j.en.sched); err != nil {
			return err
		}
	}
	return nil
}

// markAbortedEverywhere marks e aborted in every joined engine's
// recorder (each holds the part of e's subtree that ran there, with the
// ancestor chain replicated, so per-shard recursion covers everything).
func (cs *crossState) markAbortedEverywhere(id core.ExecID) {
	for _, j := range cs.joinedSnapshot() {
		j.en.rec.MarkAborted(id)
	}
}

// markTopAborted marks an aborting top-level execution in every recorder
// holding its record: the joined engines plus the base engine, which
// records every top eagerly (including tops that never joined a shard).
func (cs *crossState) markTopAborted(base *Engine, id core.ExecID) {
	base.rec.MarkAborted(id)
	for _, j := range cs.joinedSnapshot() {
		if j.en != base {
			j.en.rec.MarkAborted(id)
		}
	}
}

// countEngine returns the engine charged with the transaction's
// commit/abort counter: the first shard it joined, or the base engine
// when it never touched an object. Summing the per-engine counters then
// counts every transaction exactly once.
func (cs *crossState) countEngine(base *Engine) *Engine {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.counted != nil {
		return cs.counted
	}
	return base
}

// releaseGates drops every held shard gate (after locks were released).
func (cs *crossState) releaseGates() {
	cs.mu.Lock()
	gated := cs.gated
	rgated := cs.rgated
	cs.gated = nil
	cs.rgated = -1
	cs.mu.Unlock()
	for i := len(gated) - 1; i >= 0; i-- {
		cs.r.UnlockGate(gated[i])
	}
	if rgated >= 0 {
		cs.r.RUnlockGate(rgated)
	}
}

// RunSharded executes a top-level transaction against a sharded object
// space: Ctx.Do and Ctx.Call route through the space's directory, and
// the cross-shard protocol above keeps the run serialisable and
// deadlock-free across engines. touches optionally declares the objects
// the transaction will access: a declared set resolves to its shards,
// which are gated exclusively up front (in directory order) and executed
// on the serial commit fast path — no per-object locks, no scheduler,
// no discovery restarts. Without a declaration the transaction runs
// under its home shard's scheduler. Retry semantics match Engine.RunCtx.
func RunSharded(ctx context.Context, r Router, name string, fn MethodFunc, args []core.Value, touches []string) (core.Value, error) {
	return runShardedRetry(ctx, r, name, fn, args, touches, false)
}

// pregateFor resolves a touch declaration to the sorted shard set it
// spans, or nil when nothing resolves (undeclared, or every name
// unknown). Unknown objects are ignored: a wrong hint degrades to the
// serial path's membership restart, it never breaks.
func pregateFor(r Router, touches []string) []int {
	if len(touches) == 0 {
		return nil
	}
	set := make([]int, 0, len(touches))
	for _, o := range touches {
		en, s, err := r.HomeOf(o)
		if err != nil || en.Object(o) == nil {
			// Unknown object: the directory would still hash it somewhere,
			// but gating an unrelated shard for a name that cannot be
			// touched would serialise innocent traffic for nothing.
			continue
		}
		dup := false
		for _, have := range set {
			if have == s {
				dup = true
				break
			}
		}
		if !dup {
			set = append(set, s)
		}
	}
	sort.Ints(set)
	return set
}

func runShardedRetry(ctx context.Context, r Router, name string, fn MethodFunc, args []core.Value, touches []string, readOnly bool) (core.Value, error) {
	base := r.Base()
	pregate := pregateFor(r, touches)
	// A declared object set runs serially under exclusive gates — batched
	// through the epoch accumulators when the space runs them — while an
	// undeclared transaction runs scheduled, and keeps the scheduled path
	// across its discovery restarts (the learned set is then pre-gated
	// around the per-shard schedulers' two-phase commit).
	serial := len(pregate) > 0
	er, epochs := r.(EpochRouter)
	if epochs {
		epochs = er.EpochsEnabled()
	}
	backoff := base.opts.RetryBackoff
	restarts := 0
	var scratch *restartScratch
	defer func() {
		if scratch != nil {
			restartScratchPool.Put(scratch)
		}
	}()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ret core.Value
		var err error
		switch {
		case serial && epochs:
			ret, err = runEpochOnce(ctx, er, name, fn, args, readOnly, pregate)
		case serial:
			ret, err = base.runSerialOnce(ctx, r, name, fn, args, readOnly, pregate)
		default:
			ret, err = base.runShardedOnce(ctx, r, name, fn, args, readOnly, pregate)
		}
		if err == nil {
			return ret, nil
		}
		var rs *shardRestartError
		if errors.As(err, &rs) && restarts < r.NumShards() {
			// Protocol restart: the learned shard set is gated up front
			// on the next attempt. The set strictly grows, so this
			// terminates; no backoff and no retry counting — the abort
			// was routing, not contention.
			restarts++
			if serial {
				base.serialRestarts.Add(1)
				base.tr.Event(obs.PhaseSerialRestart, base.backoffRing(), "", "", "incomplete-set")
			} else {
				base.twopcRestarts.Add(1)
				base.tr.Event(obs.PhaseTwoPCRestart, base.backoffRing(), "", "", "discovery")
			}
			if scratch == nil {
				scratch = restartScratchPool.Get().(*restartScratch)
			}
			// Alternate buffers: pregate may alias the previous merge.
			scratch.a, scratch.b = scratch.b, scratch.a
			scratch.a = mergeShardSetsInto(scratch.a[:0], pregate, rs.need)
			pregate = scratch.a
			attempt--
			continue
		}
		if !Retriable(err) || attempt >= base.opts.MaxRetries {
			return nil, err
		}
		sp := base.tr.StartSpan(obs.PhaseRetryBackoff, base.backoffRing(), "", "")
		t := time.NewTimer(base.backoffDelay(backoff))
		select {
		case <-t.C:
			sp.End()
		case <-ctx.Done():
			t.Stop()
			sp.EndWith("cancel")
			return nil, ctx.Err()
		}
		base.retries.Add(1)
		if backoff < 64*base.opts.RetryBackoff {
			backoff *= 2
		}
	}
}

// restartScratch pools the shard-set merge buffers of the restart path,
// the same way serial_run.go pools per-attempt state: a transaction that
// restarts to grow its shard set should not pay a map and fresh slices
// per restart. Two buffers alternate because the current pregate slice
// aliases the buffer of the previous merge.
type restartScratch struct{ a, b []int }

var restartScratchPool = sync.Pool{New: func() any { return &restartScratch{} }}

// mergeShardSetsInto merges two sorted ascending shard sets into dst
// (pass it resliced to length zero), deduplicating; allocation-free once
// dst has the capacity. Inputs must not alias dst.
func mergeShardSetsInto(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// runShardedOnce is one attempt of a sharded transaction: the analogue of
// runOnce with lazy shard joining and the shard-ordered two-phase commit.
func (en *Engine) runShardedOnce(ctx context.Context, r Router, name string, fn MethodFunc, args []core.Value, readOnly bool, pregate []int) (core.Value, error) {
	id := en.allocTop()
	defer en.releaseTop(id)
	tr := en.tr
	sp := tr.StartSpan(obs.PhaseAdmit, ringKey(id), "", "")
	if tr != nil {
		// The exec key is formatted inside the admit span, not before it:
		// the cost is real work of this attempt and must not fall into an
		// unmeasured gap (the phases partition the attempt's wall time).
		sp = sp.WithExec(id.Key())
	}
	st := newShardedExec(r, false)
	e, cs := &st.e, &st.cs
	e.id = id
	e.object = core.EnvironmentObject
	e.method = name
	e.args = args
	e.eng = en
	e.goctx = ctx
	e.killCh = make(chan struct{})
	e.readOnly = readOnly
	e.top = e
	if len(pregate) > 0 {
		// Pre-declared cross-shard transaction: acquire every gate before
		// executing anything, in directory order, holding no locks, and
		// bailing out if the caller cancels while queued.
		for i, s := range pregate {
			if gerr := lockGateCtx(ctx, r, s); gerr != nil {
				for j := i - 1; j >= 0; j-- {
					r.UnlockGate(pregate[j])
				}
				sp.EndWith("cancel")
				return nil, gerr
			}
		}
		ordGates(pregate)
		cs.gated = append([]int(nil), pregate...)
	}
	defer cs.releaseGates() // after locks are released below (LIFO)
	// Record the top eagerly in the base engine (as an unsharded run
	// would in its engine): even a transaction that never joins a shard
	// must appear in the stitched history.
	if err := en.rec.AddExec(id, e.object, e.method); err != nil {
		sp.EndWith("abort")
		return nil, historyAbort(id, err)
	}
	e.recIn.Store(en)
	en.deps.beginTop(e)
	defer en.deps.forget(e)
	sp = sp.Next(obs.PhaseExecute)
	ret, err := fn(e.ctx())
	if err == nil && e.Killed() {
		err = &AbortError{Exec: id, Reason: "cascade", Retriable: true, Err: ErrKilled}
	}
	if err == nil {
		err = e.ctxAbortErr()
	}
	sp = sp.Next(obs.PhaseCommitBarrier)
	if err == nil {
		if need := cs.restartNeed(); need != nil {
			// The body swallowed the restart error from a Call and
			// finished anyway; the attempt still cannot commit with an
			// incomplete shard set.
			err = restartAbort(id, need)
		}
	}
	if err == nil {
		// Recoverability barrier across every shard (the tracker is
		// space-wide): all observed transactions must commit first.
		err = en.deps.commitBarrier(e)
	}
	if err == nil {
		// Shard-ordered two-phase commit. Phase 1 is the validation
		// decision: a scheduler whose commit can fail (the optimistic
		// certifier) is shared across the space, so it appears — and is
		// called — exactly once, before any lock-releasing commit ran.
		// Phase 2, the per-shard lock releases (rule 5 at top level),
		// cannot fail. The loop still aborts defensively on a late error.
		err = cs.forEachSched(func(sch Scheduler) error {
			if cerr := sch.Commit(e); cerr != nil {
				if !Retriable(cerr) {
					cerr = &AbortError{Exec: id, Reason: "certification", Retriable: true, Err: cerr}
				}
				return cerr
			}
			return nil
		})
	}
	if err != nil {
		for _, dep := range en.deps.beginAbort(e) {
			dep.exec.kill()
			//oblint:allow ctxwait -- cascade joins a dependent just killed above; its abort path cannot block indefinitely, and abandoning it here would undo state out of order
			<-dep.done
		}
		e.runUndo()
		_ = cs.forEachSched(func(sch Scheduler) error {
			sch.Abort(e)
			return nil
		})
		cs.markTopAborted(en, e.id)
		en.deps.finishAbort(e)
		var rs *shardRestartError
		if !errors.As(err, &rs) {
			// Discovery restarts are routing, not workload outcomes;
			// everything else counts as an aborted attempt.
			cs.countEngine(en).aborts.Add(1)
		}
		sp.EndWith("abort")
		return nil, err
	}
	en.deps.commitTop(e)
	sp = sp.Next(obs.PhasePublish)
	if en.opts.Versioning {
		publishCommitSharded(e)
	}
	cs.countEngine(en).commits.Add(1)
	sp.End()
	return ret, nil
}

// crossDo routes a local step of a sharded transaction to the object's
// home engine and scheduler (or the serial fast path / pinned snapshot,
// by mode).
func crossDo(e *Exec, object string, inv core.OpInvocation) (core.Value, error) {
	cs := e.top.cross
	if cs.serial {
		return cs.serialDo(e, object, inv)
	}
	var home *Engine
	var obj *Object
	if e != e.top {
		// Fast path: a method execution issuing a step on an object of
		// its own engine — the idiomatic local step. The engine was
		// joined when the message creating this execution was routed, so
		// the directory, the join bookkeeping, and their locks are all
		// skippable.
		if obj = e.eng.Object(object); obj != nil {
			home = e.eng
		}
	}
	if home == nil {
		var s int
		var err error
		home, s, err = cs.r.HomeOf(object)
		if err != nil {
			return nil, err
		}
		obj = home.Object(object)
		if obj == nil {
			return nil, fmt.Errorf("engine: unknown object %q", object)
		}
		if cs.view {
			return cs.viewDo(e, home, obj, inv)
		}
		if err := cs.join(e.top, home, s); err != nil {
			return nil, err
		}
	} else if cs.view {
		return cs.viewDo(e, home, obj, inv)
	}
	if e.top.readOnly {
		ro, roerr := obj.schema.ReadOnlyOp(inv.Op)
		if roerr != nil {
			return nil, roerr
		}
		if !ro {
			return nil, readOnlyAbort(e, obj.name, inv)
		}
	}
	// The issuing execution must be on record in the home engine before
	// its step lands there (parents first, for abort closure per shard).
	if err := cs.record(home, e); err != nil {
		return nil, err
	}
	return home.sched.Step(e, obj, inv)
}

// crossCall routes a message of a sharded transaction: the child method
// execution runs in the target object's home engine, under that engine's
// scheduler, while keeping the globally unique execution identity its
// parent allocated.
func crossCall(parent *Exec, lane int, object, method string, args []core.Value) (core.Value, error) {
	cs := parent.top.cross
	if cs.serial {
		return serialCall(parent, lane, object, method, args)
	}
	home, s, err := cs.r.HomeOf(object)
	if err != nil {
		return nil, err
	}
	// Validate before joining: a misnamed object or method must fail
	// fast, not first pay gate acquisition (possibly a cross-shard
	// restart) and scheduler bookkeeping for a shard it can never use.
	fn, err := home.method(object, method)
	if err != nil {
		return nil, err
	}
	if home.Object(object) == nil {
		return nil, fmt.Errorf("engine: unknown object %q", object)
	}
	if err := cs.join(parent.top, home, s); err != nil {
		return nil, err
	}
	if err := cs.record(home, parent); err != nil {
		return nil, err
	}

	childID := parent.nextChildID()
	msg, err := home.rec.StartMessage(parent.id, childID, lane, object, method, args)
	if err != nil {
		return nil, historyAbort(parent.id, err)
	}
	child := &Exec{
		id:     childID,
		object: object,
		method: method,
		args:   args,
		eng:    home,
		parent: parent,
		top:    parent.top,
	}
	if err := cs.record(home, child); err != nil {
		home.rec.EndMessage(msg, nil, true)
		return nil, err
	}
	if err := home.sched.Begin(child); err != nil {
		crossAbortChild(cs, child)
		home.rec.EndMessage(msg, nil, true)
		return nil, err
	}
	ret, err := fn(child.ctx())
	if err == nil {
		err = home.sched.Commit(child)
	}
	if err != nil {
		crossAbortChild(cs, child)
		home.rec.EndMessage(msg, nil, true)
		return nil, err
	}
	parent.adoptUndo(child)
	home.rec.EndMessage(msg, ret, false)
	return ret, nil
}

// crossAbortChild aborts a nested execution of a sharded transaction:
// undo its effects, release its locks in every joined engine (its own
// subtree may have committed lock inheritances anywhere — rule 5), and
// mark the abort in every recorder holding part of its subtree.
func crossAbortChild(cs *crossState, e *Exec) {
	e.runUndo()
	_ = cs.forEachSched(func(sch Scheduler) error {
		sch.Abort(e)
		return nil
	})
	cs.markAbortedEverywhere(e.id)
}

// publishCommitSharded publishes the committed states of a cross-shard
// transaction: each joined engine sequences the objects it owns under
// its own publication counter (snapshots are per-shard — see
// RunViewSharded).
func publishCommitSharded(e *Exec) {
	objs := e.touchedObjects()
	if len(objs) == 0 {
		return
	}
	byEng := make(map[*Engine][]*Object)
	for _, o := range objs {
		byEng[o.eng] = append(byEng[o.eng], o)
	}
	topKey := e.id.Key()
	for en, list := range byEng {
		en.publishObjects(topKey, list, nil)
	}
}

// RunViewSharded executes a read-only snapshot transaction against a
// sharded space. Publication sequences are per shard, so one consistent
// snapshot exists only within a single shard: the first object the view
// touches pins its shard and fixes the snapshot at that shard's
// watermark, and a view that reaches for a second shard falls back to
// the locked cross-shard path with read-only enforcement (correct, just
// not lock-free). Stale snapshots retry with a refreshed watermark as in
// Engine.RunView.
func RunViewSharded(ctx context.Context, r Router, name string, fn MethodFunc, args []core.Value) (core.Value, error) {
	base := r.Base()
	if !base.opts.Versioning {
		return nil, fmt.Errorf("engine: RunView: %w", ErrViewDisabled)
	}
	var lastPin *Engine
	lastSeq := ^uint64(0)
	for attempt := 0; attempt < viewAttempts; attempt++ {
		ret, pin, seq, err := base.runViewShardedOnce(ctx, r, name, fn, args)
		if err == nil {
			return ret, nil
		}
		if errors.Is(err, errCrossShardView) {
			break
		}
		if !errors.Is(err, ErrSnapshotStale) {
			return ret, err
		}
		if pin == lastPin && seq == lastSeq {
			// The pinned shard's watermark has not advanced; the same gap
			// would stall us again.
			break
		}
		lastPin, lastSeq = pin, seq
	}
	base.viewFallbacks.Add(1)
	return runShardedRetry(ctx, r, name, fn, args, nil, true)
}

// runViewShardedOnce is one pinned-snapshot attempt; it reports the pin
// it chose so the caller can detect a stalled watermark.
func (en *Engine) runViewShardedOnce(ctx context.Context, r Router, name string, fn MethodFunc, args []core.Value) (core.Value, *Engine, uint64, error) {
	id := en.allocTop()
	defer en.releaseTop(id)
	st := newShardedExec(r, true)
	e, cs := &st.e, &st.cs
	e.id = id
	e.object = core.EnvironmentObject
	e.method = name
	e.args = args
	e.eng = en
	e.goctx = ctx
	e.killCh = make(chan struct{})
	e.readOnly = true
	e.top = e
	// Eager top record in the base engine, as on every other path: a
	// view that reads nothing must still appear in the stitched history.
	if err := en.rec.AddExec(id, e.object, e.method); err != nil {
		return nil, nil, 0, historyAbort(id, err)
	}
	e.recIn.Store(en)
	ret, err := fn(e.ctx())
	if err == nil {
		err = e.ctxAbortErr()
	}
	cs.mu.Lock()
	pin, seq := cs.pinned, cs.snapSeq
	cs.mu.Unlock()
	if err != nil {
		en.rec.MarkAborted(e.id)
		if pin != nil && pin != en {
			pin.rec.MarkAborted(e.id)
		}
		if !errors.Is(err, ErrSnapshotStale) && !errors.Is(err, errCrossShardView) {
			cs.countEngine(en).aborts.Add(1)
		}
		return nil, pin, seq, err
	}
	counter := cs.countEngine(en)
	counter.commits.Add(1)
	counter.viewCommits.Add(1)
	return ret, pin, seq, nil
}

// pinView pins the view to the home engine of its first touched object
// (fixing the snapshot sequence), or fails when a second shard appears.
// It registers the top-level record with the pinned recorder.
func (cs *crossState) pinView(top *Exec, home *Engine) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.pinned == nil {
		cs.pinned = home
		cs.counted = home
		cs.snapSeq = home.pubSeq.Load()
		top.snap = &viewSnap{seq: cs.snapSeq}
		return cs.recordLocked(home, top)
	}
	if cs.pinned != home {
		return &AbortError{Exec: top.id, Reason: "cross-shard view", Retriable: false, Err: errCrossShardView}
	}
	return nil
}

// viewDo serves a sharded snapshot step from the pinned shard.
func (cs *crossState) viewDo(e *Exec, home *Engine, obj *Object, inv core.OpInvocation) (core.Value, error) {
	if err := cs.pinView(e.top, home); err != nil {
		return nil, err
	}
	return home.viewStep(e, obj, inv)
}

// crossViewCall routes a message of a sharded snapshot transaction: the
// target object must live in the pinned shard (pinning it on first use).
func crossViewCall(parent *Exec, lane int, object, method string, args []core.Value) (core.Value, error) {
	cs := parent.top.cross
	home, _, err := cs.r.HomeOf(object)
	if err != nil {
		return nil, err
	}
	if err := cs.pinView(parent.top, home); err != nil {
		return nil, err
	}
	return home.viewCall(parent, lane, object, method, args)
}
