package engine

import (
	"fmt"
	"sync"

	"objectbase/internal/core"
)

// Object is a runtime object instance: a schema, a state, and a latch that
// makes local steps atomic (Definition 2's local operations are atomic on
// the object's variables). Schedulers compose the latch with their own
// admission logic; the paper's step-granularity protocols require peeking
// (provisional execution), conflict checking and applying to happen
// atomically under this latch.
type Object struct {
	name   string
	schema *core.Schema
	eng    *Engine

	mu    sync.Mutex
	state core.State
	seq   int // per-object linearisation counter (ObjSeq)
}

// Name returns the object's instance name.
func (o *Object) Name() string { return o.name }

// Schema returns the object's schema.
func (o *Object) Schema() *core.Schema { return o.schema }

// Latch acquires the object latch. Schedulers may hold it across a
// peek/admit/apply sequence; they must never block on other engine
// resources while holding it except the lock manager's TryAcquire (which
// never takes latches).
func (o *Object) Latch() { o.mu.Lock() }

// Unlatch releases the object latch.
func (o *Object) Unlatch() { o.mu.Unlock() }

// PeekLocked provisionally executes inv on a copy of the state and returns
// the completed step without mutating anything. Caller holds the latch.
// This is the paper's "provisionally issue an operation, observe the
// resulting return value" device.
func (o *Object) PeekLocked(inv core.OpInvocation) (core.StepInfo, error) {
	op, err := o.schema.Op(inv.Op)
	if err != nil {
		return core.StepInfo{}, err
	}
	var ret core.Value
	switch {
	case op.ReadOnly:
		// A read-only Apply is pure: run it directly.
		ret, _, err = op.Apply(o.state, inv.Args)
	case op.Peek != nil:
		ret, err = op.Peek(o.state, inv.Args)
	default:
		scratch := o.schema.Clone(o.state)
		ret, _, err = op.Apply(scratch, inv.Args)
	}
	if err != nil {
		return core.StepInfo{}, err
	}
	return core.StepInfo{Op: inv.Op, Args: inv.Args, Ret: ret}, nil
}

// ApplyForLocked applies inv for real on behalf of execution e: it mutates
// the state, records the local step in the history, and pushes the undo
// closure onto e's undo log. Caller holds the latch.
func (o *Object) ApplyForLocked(e *Exec, inv core.OpInvocation) (core.StepInfo, error) {
	op, err := o.schema.Op(inv.Op)
	if err != nil {
		return core.StepInfo{}, err
	}
	ret, undo, err := op.Apply(o.state, inv.Args)
	if err != nil {
		return core.StepInfo{}, fmt.Errorf("engine: %s on %s: %w", inv, o.name, err)
	}
	st := core.StepInfo{Op: inv.Op, Args: inv.Args, Ret: ret}
	if rerr := o.eng.rec.AddStep(e.id, o.name, st, o.seq); rerr != nil {
		// The observer refused the step (history limit): roll the state
		// mutation back under the latch we still hold and fail the step —
		// an unrecorded effect must never survive into the history.
		if undo != nil {
			undo(o.state)
		}
		return core.StepInfo{}, historyAbort(e.id, rerr)
	}
	o.seq++
	if undo != nil {
		e.pushUndo(o, undo)
	}
	return st, nil
}

// ApplyFor is ApplyForLocked wrapped in the latch — the whole-step shortcut
// for schedulers that admit before touching the object (operation-
// granularity locking, conservative timestamp ordering, no control at all).
func (o *Object) ApplyFor(e *Exec, inv core.OpInvocation) (core.StepInfo, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ApplyForLocked(e, inv)
}

// StateSnapshot returns a copy of the current state (tests, final-state
// recording). It takes the latch.
func (o *Object) StateSnapshot() core.State {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.schema.Clone(o.state)
}

// applyUndoLocked runs an undo closure under the latch (abort path).
func (o *Object) applyUndo(fn core.UndoFunc) {
	o.mu.Lock()
	fn(o.state)
	o.mu.Unlock()
}
