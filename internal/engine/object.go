package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"objectbase/internal/core"
)

// Object is a runtime object instance: a schema, a state, and a latch that
// makes local steps atomic (Definition 2's local operations are atomic on
// the object's variables). Schedulers compose the latch with their own
// admission logic; the paper's step-granularity protocols require peeking
// (provisional execution), conflict checking and applying to happen
// atomically under this latch.
//
// When the engine runs with Options.Versioning, the object additionally
// keeps a ring of committed state versions (see core.VersionRing) that the
// snapshot read-only fast path serves from, plus the pending-writer
// bookkeeping that decides whether a committing transaction may capture
// the state (no uncommitted alien effects) or must publish a gap.
type Object struct {
	name   string
	schema *core.Schema
	eng    *Engine

	mu    sync.Mutex
	state core.State
	seq   int // per-object linearisation counter (ObjSeq)

	// pending counts the uncommitted mutating steps currently in the
	// state, per top-level transaction key. Guarded by mu. Maintained
	// only under Options.Versioning; publication captures the state only
	// when the committing transaction is the sole pending writer.
	pending map[string]int

	// vers is the immutable committed-version ring; publishers swap it,
	// snapshot readers only load it — the read fast path never takes mu.
	// Nil unless Options.Versioning.
	vers atomic.Pointer[core.VersionRing]
}

// Name returns the object's instance name.
func (o *Object) Name() string { return o.name }

// Schema returns the object's schema.
func (o *Object) Schema() *core.Schema { return o.schema }

// Latch acquires the object latch. Schedulers may hold it across a
// peek/admit/apply sequence; they must never block on other engine
// resources while holding it except the lock manager's TryAcquire (which
// never takes latches).
func (o *Object) Latch() {
	ordAcquire(ordRankObject, "object latch")
	o.mu.Lock()
}

// Unlatch releases the object latch.
func (o *Object) Unlatch() {
	ordRelease(ordRankObject, "object latch")
	o.mu.Unlock()
}

// PeekLocked provisionally executes inv on a copy of the state and returns
// the completed step without mutating anything. Caller holds the latch.
// This is the paper's "provisionally issue an operation, observe the
// resulting return value" device.
func (o *Object) PeekLocked(inv core.OpInvocation) (core.StepInfo, error) {
	op, err := o.schema.Op(inv.Op)
	if err != nil {
		return core.StepInfo{}, err
	}
	var ret core.Value
	switch {
	case op.ReadOnly:
		// A read-only Apply is pure: run it directly.
		ret, _, err = op.Apply(o.state, inv.Args)
	case op.Peek != nil:
		ret, err = op.Peek(o.state, inv.Args)
	default:
		scratch := o.schema.Clone(o.state)
		ret, _, err = op.Apply(scratch, inv.Args)
	}
	if err != nil {
		return core.StepInfo{}, err
	}
	return core.StepInfo{Op: inv.Op, Args: inv.Args, Ret: ret}, nil
}

// ApplyForLocked applies inv for real on behalf of execution e: it mutates
// the state, records the local step in the history, and pushes the undo
// closure onto e's undo log. Caller holds the latch.
func (o *Object) ApplyForLocked(e *Exec, inv core.OpInvocation) (core.StepInfo, error) {
	op, err := o.schema.Op(inv.Op)
	if err != nil {
		return core.StepInfo{}, err
	}
	ret, undo, err := op.Apply(o.state, inv.Args)
	if err != nil {
		return core.StepInfo{}, fmt.Errorf("engine: %s on %s: %w", inv, o.name, err)
	}
	st := core.StepInfo{Op: inv.Op, Args: inv.Args, Ret: ret}
	if rerr := o.eng.rec.AddStep(e.id, o.name, st, o.seq); rerr != nil {
		// The observer refused the step (history limit): roll the state
		// mutation back under the latch we still hold and fail the step —
		// an unrecorded effect must never survive into the history.
		if undo != nil {
			undo(o.state)
		}
		return core.StepInfo{}, historyAbort(e.id, rerr)
	}
	o.seq++
	if undo != nil {
		if o.pending != nil {
			o.pending[e.top.id.Key()]++
		}
		e.pushUndo(o, undo)
	}
	return st, nil
}

// ApplyFor is ApplyForLocked wrapped in the latch — the whole-step shortcut
// for schedulers that admit before touching the object (operation-
// granularity locking, conservative timestamp ordering, no control at all).
func (o *Object) ApplyFor(e *Exec, inv core.OpInvocation) (core.StepInfo, error) {
	ordAcquire(ordRankObject, "object latch")
	o.mu.Lock()
	defer o.mu.Unlock()
	defer ordRelease(ordRankObject, "object latch")
	return o.ApplyForLocked(e, inv)
}

// StateSnapshot returns a copy of the current state (tests, final-state
// recording). It takes the latch.
func (o *Object) StateSnapshot() core.State {
	ordAcquire(ordRankObject, "object latch")
	o.mu.Lock()
	defer o.mu.Unlock()
	defer ordRelease(ordRankObject, "object latch")
	return o.schema.Clone(o.state)
}

// applyUndo runs an undo closure under the latch (abort path) on behalf
// of the top-level transaction topKey, and retires the corresponding
// pending-writer mark. When the last pending writer drains away and the
// newest published version is a gap (a committer that could not capture
// because of this very writer), the now-clean committed state is
// captured in its place — otherwise the object would stay view-dead
// (every snapshot read falling back to locks) until the next committed
// write happened to republish it.
func (o *Object) applyUndo(topKey string, fn core.UndoFunc) {
	ordAcquire(ordRankObject, "object latch")
	o.mu.Lock()
	fn(o.state)
	if o.pending != nil {
		if n := o.pending[topKey]; n <= 1 {
			delete(o.pending, topKey)
			if len(o.pending) == 0 {
				if ring := o.vers.Load(); ring.Newest().Gap {
					// The state now holds exactly the commits the gap's
					// sequence number covers (later committers would have
					// published above it), so the repair carries that seq.
					o.vers.Store(ring.Repair(o.seq, o.schema.Clone(o.state)))
				}
			}
		} else {
			o.pending[topKey] = n - 1
		}
	}
	ordRelease(ordRankObject, "object latch")
	o.mu.Unlock()
}

// initVersions installs version 0 (the initial state). Called once at
// registration when the engine runs with Options.Versioning.
func (o *Object) initVersions(initial core.State) {
	o.pending = make(map[string]int)
	o.vers.Store(core.NewVersionRing(o.schema.Clone(initial)))
}

// publishVersion publishes the committed state at seq on behalf of the
// committing top-level transaction topKey, under the object latch only —
// publication runs outside the engine's global mutex, so concurrent
// commits against disjoint objects capture in parallel. The transaction's
// own pending marks are retired first; a capture happens only when the
// state is provably the committed prefix at seq, i.e. when no other
// transaction has uncommitted effects in it (pending empty) and no later
// commit has already published on this object (out-of-order loser). In
// either losing case a gap lands instead of a wrong snapshot: readers
// refresh past it or fall back.
func (o *Object) publishVersion(topKey string, batchKeys []string, seq uint64) {
	ordAcquire(ordRankObject, "object latch")
	o.mu.Lock()
	delete(o.pending, topKey)
	// Epoch group commit: every committed batch member's mark retires
	// before the capture decision, so the one shared sequence number
	// captures the state after the whole batch — gate exclusivity
	// guarantees no writer outside the batch holds a mark here.
	for _, k := range batchKeys {
		delete(o.pending, k)
	}
	ring := o.vers.Load()
	switch {
	case ring.Newest().Seq > seq:
		o.vers.Store(ring.InsertGap(seq))
	case len(o.pending) > 0:
		o.vers.Store(ring.PushGap(seq))
	default:
		o.vers.Store(ring.Push(seq, o.seq, o.schema.Clone(o.state)))
	}
	ordRelease(ordRankObject, "object latch")
	o.mu.Unlock()
}

// Versions returns the object's committed-version ring, or nil when the
// engine does not maintain versions. Snapshot readers and tests use it;
// the returned ring is immutable.
func (o *Object) Versions() *core.VersionRing { return o.vers.Load() }
