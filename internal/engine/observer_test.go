package engine

import (
	"errors"
	"sync"
	"testing"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// TestStatsOnlyRecording: under RecordStats the engine runs normally,
// history accessors report ErrHistoryDisabled, and the stats observer
// counts every event class.
func TestStatsOnlyRecording(t *testing.T) {
	en := New(None{}, Options{Recording: RecordStats})
	en.AddObject("c", objects.Counter(), nil)
	en.Register("c", "bump", func(c *Ctx) (core.Value, error) {
		return c.Do("c", "Add", int64(1))
	})

	const txns = 10
	for i := 0; i < txns; i++ {
		if _, err := en.Run("T", func(c *Ctx) (core.Value, error) {
			return c.Call("c", "bump")
		}); err != nil {
			t.Fatal(err)
		}
	}

	if h := en.History(); h != nil {
		t.Fatalf("History() = %v, want nil under RecordStats", h)
	}
	if _, err := en.HistoryErr(); !errors.Is(err, ErrHistoryDisabled) {
		t.Fatalf("HistoryErr() = %v, want ErrHistoryDisabled", err)
	}
	st := en.ObserverStats()
	// Each transaction is 2 executions (top + bump), 1 message, 1 step.
	if st.Execs != 2*txns || st.Messages != txns || st.Steps != txns || st.Aborts != 0 {
		t.Fatalf("ObserverStats = %+v", st)
	}
	if got := en.Commits(); got != txns {
		t.Fatalf("Commits = %d, want %d", got, txns)
	}

	// The state is still correct: recording mode must not change execution.
	if v := en.Object("c").StateSnapshot()["n"].(int64); v != txns {
		t.Fatalf("counter = %d, want %d", v, txns)
	}
}

// TestStatsOnlyParallelLanes: child-ID and lane allocation moved from the
// recorder onto Exec atomics; internal parallelism must still produce
// distinct children in stats mode (run under -race).
func TestStatsOnlyParallelLanes(t *testing.T) {
	en := New(None{}, Options{Recording: RecordStats})
	en.AddObject("c", objects.Counter(), nil)
	en.Register("c", "bump", func(c *Ctx) (core.Value, error) {
		return c.Do("c", "Add", int64(1))
	})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := en.Run("T", func(c *Ctx) (core.Value, error) {
				return nil, c.Parallel(
					func(c *Ctx) error { _, err := c.Call("c", "bump"); return err },
					func(c *Ctx) error { _, err := c.Call("c", "bump"); return err },
					func(c *Ctx) error { _, err := c.Call("c", "bump"); return err },
				)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if v := en.Object("c").StateSnapshot()["n"].(int64); v != 12 {
		t.Fatalf("counter = %d, want 12", v)
	}
	if st := en.ObserverStats(); st.Messages != 12 {
		t.Fatalf("Messages = %d, want 12", st.Messages)
	}
}

// TestHistoryLimitFailsFast: a full-mode engine past its event cap
// aborts the recording transaction with ErrHistoryLimit (non-retriable)
// instead of growing without bound, rolls the refused step back, and
// withholds the now-incomplete history.
func TestHistoryLimitFailsFast(t *testing.T) {
	// Each transaction records 2 events (top exec + step); limit 5 admits
	// two transactions and breaks on the third's step.
	en := New(None{}, Options{HistoryLimit: 5, MaxRetries: NoRetry})
	en.AddObject("c", objects.Counter(), nil)

	bump := func(c *Ctx) (core.Value, error) { return c.Do("c", "Add", int64(1)) }
	var failed error
	committed := 0
	for i := 0; i < 10 && failed == nil; i++ {
		if _, err := en.Run("T", bump); err != nil {
			failed = err
		} else {
			committed++
		}
	}
	if failed == nil {
		t.Fatal("limit never fired")
	}
	if !errors.Is(failed, ErrHistoryLimit) {
		t.Fatalf("error = %v, want ErrHistoryLimit", failed)
	}
	if Retriable(failed) {
		t.Fatal("history-limit aborts must not be retriable")
	}
	if committed != 2 {
		t.Fatalf("committed = %d, want 2", committed)
	}
	// The refused step's mutation was rolled back under the latch.
	if v := en.Object("c").StateSnapshot()["n"].(int64); v != int64(committed) {
		t.Fatalf("counter = %d, want %d (refused step leaked)", v, committed)
	}
	// The history is incomplete from here on: withheld, not half-served.
	if _, err := en.HistoryErr(); !errors.Is(err, ErrHistoryLimit) {
		t.Fatalf("HistoryErr() = %v, want ErrHistoryLimit", err)
	}
	// And the breach is sticky: later transactions fail the same way.
	if _, err := en.Run("T", bump); !errors.Is(err, ErrHistoryLimit) {
		t.Fatalf("post-overflow Run = %v, want ErrHistoryLimit", err)
	}
}

// TestFullRecorderEventStats: the full recorder maintains the same
// counters as the stats observer, so harnesses can read them in either
// mode.
func TestFullRecorderEventStats(t *testing.T) {
	en := New(None{}, Options{})
	en.AddObject("c", objects.Counter(), nil)
	en.Register("c", "bump", func(c *Ctx) (core.Value, error) {
		return c.Do("c", "Add", int64(1))
	})
	for i := 0; i < 3; i++ {
		if _, err := en.Run("T", func(c *Ctx) (core.Value, error) {
			return c.Call("c", "bump")
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := en.ObserverStats()
	if st.Execs != 6 || st.Messages != 3 || st.Steps != 3 {
		t.Fatalf("ObserverStats = %+v", st)
	}
	h := en.History()
	if h == nil || len(h.Execs) != 6 {
		t.Fatalf("full history should still be available")
	}
}
