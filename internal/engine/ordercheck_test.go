//go:build ordercheck

package engine

import "testing"

func mustPanicOrd(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("ordercheck witness must panic")
		}
	}()
	fn()
}

// TestOrdGateWitness pins the per-transaction gate assertions: ascending
// sets and joins pass, any descent or repeat panics deterministically.
func TestOrdGateWitness(t *testing.T) {
	ordGates(nil)
	ordGates([]int{2})
	ordGates([]int{0, 1, 4})
	ordGateAppend(nil, 3)
	ordGateAppend([]int{0, 1}, 4)

	mustPanicOrd(t, func() { ordGates([]int{1, 3, 2}) })
	mustPanicOrd(t, func() { ordGates([]int{1, 1}) })
	mustPanicOrd(t, func() { ordGateAppend([]int{2, 5}, 3) })
	mustPanicOrd(t, func() { ordGateAppend([]int{2, 5}, 5) })
}

// TestOrdLatchWitnessRoundTrip: the instrumented latch is transparent on
// the legal path, and a second latch on the same tier is caught.
func TestOrdLatchWitnessRoundTrip(t *testing.T) {
	a, b := &Object{name: "A"}, &Object{name: "B"}
	a.Latch()
	a.Unlatch()
	b.Latch()
	defer b.Unlatch()
	mustPanicOrd(t, func() { a.Latch() })
}
