// Epoch-based group commit: the batched form of the serial fast path.
//
// The serial fast path (serial_run.go) removed the scheduler, lock
// manager, and dependency tracker from a declared-set transaction's
// cost; what remains is fixed per transaction — one exclusive gate
// round, one publication sequence round, one stats write. Epoch mode
// amortises exactly those costs: declared-set transactions enqueue into
// their home shard's accumulator (internal/shard), whose flat-combining
// flusher drains batches bounded by a time window and a size cap, each
// batch run under one gate acquisition, one publication sequence number
// per engine, and one counter flush — while the requesters it has
// already served form the next batch behind it.
//
// Serialisability is inherited from the serial path unchanged: the
// flusher holds the union of the batch's gate sets exclusively (taken
// in directory order), the batch executes strictly serially inside
// that window, and each member keeps its own Exec, undo log, and
// history identity — an individual abort rolls back only its own
// steps, and the stitched history shows each member as an ordinary
// transaction, so the oracle certifies epoch runs exactly like serial
// ones. Only the publication is shared: the epoch's committed writes
// surface at one sequence number per engine (snapshot views see the
// whole batch or none of it — a coarser, still consistent, snapshot
// grain).
package engine

import (
	"context"
	"errors"
	"sync"

	"objectbase/internal/core"
	"objectbase/internal/obs"
)

// EpochReq is one declared-set transaction parked in an epoch
// accumulator: the attempt's inputs, the done channel its requester
// waits on, and the outcome the flusher deposits before signalling it.
// Requests are pooled: done is a one-buffered channel reused across
// attempts (one send by the flusher, one receive by the requester, per
// attempt), so a parked transaction costs no allocation.
type EpochReq struct {
	ctx      context.Context
	name     string
	fn       MethodFunc
	args     []core.Value
	readOnly bool
	gates    []int // declared shard set, sorted ascending

	done chan struct{} // buffered, capacity 1
	ret  core.Value
	err  error
}

// epochReqPool recycles epoch requests. The flusher's last touch of a
// request is the done send, and the requester only recycles after
// receiving it, so no reference survives into the next attempt.
var epochReqPool = sync.Pool{New: func() any {
	return &EpochReq{done: make(chan struct{}, 1)}
}}

// HomeShard returns the accumulator shard of the request: the lowest
// shard of its declared set. A multi-shard request joins the epoch of
// its lowest home shard, and the flusher's gate union covers the rest.
func (q *EpochReq) HomeShard() int { return q.gates[0] }

// EpochRouter is a Router that also runs per-shard epoch accumulators
// (implemented by shard.Space when epochs are enabled).
type EpochRouter interface {
	Router
	// EpochsEnabled reports whether declared-set transactions should be
	// routed through the epoch accumulators (a window/maxBatch has been
	// configured with a batch size above one).
	EpochsEnabled() bool
	// EpochEnqueue hands a request to the accumulator of its home
	// shard. It returns once the request is queued — or, when the
	// calling goroutine became the shard's flusher, once the queue has
	// drained; either way the requester then waits on the request's
	// done channel.
	EpochEnqueue(req *EpochReq)
}

// runEpochOnce is one attempt of a declared-set transaction in epoch
// mode: park in the home shard's accumulator and wait for the flusher's
// verdict. The attempt's wall time is admit + epoch-wait — the two
// phases partition it, keeping the trace-reconciliation invariant.
func runEpochOnce(ctx context.Context, r EpochRouter, name string, fn MethodFunc, args []core.Value, readOnly bool, gate []int) (core.Value, error) {
	base := r.Base()
	sp := base.tr.StartSpan(obs.PhaseAdmit, base.backoffRing(), "", "")
	req := epochReqPool.Get().(*EpochReq)
	req.ctx = ctx
	req.name = name
	req.fn = fn
	req.args = args
	req.readOnly = readOnly
	req.gates = gate
	sp = sp.Next(obs.PhaseEpochWait)
	r.EpochEnqueue(req)
	// A flusher is always active while the request is queued and answers
	// within a bounded drain; a member whose context expires while parked
	// still runs, and aborts through the per-step liveness checks exactly
	// like a serial attempt, so the wait itself needs no cancellation
	// case.
	//oblint:allow ctxwait -- the flusher answers every queued request within a bounded drain; an expired member context aborts inside execution via the per-step liveness checks
	<-req.done
	ret, err := req.ret, req.err
	req.ctx = nil
	req.fn = nil
	req.args = nil
	req.gates = nil
	req.ret = nil
	req.err = nil
	epochReqPool.Put(req)
	if err != nil {
		sp.EndWith("abort")
		return nil, err
	}
	sp.End()
	return ret, nil
}

// epochGateUnion merges the batch's sorted gate sets into one sorted
// union — the shard set the flusher gates for the whole epoch.
func epochGateUnion(batch []*EpochReq, buf []int) []int {
	union := buf[:0]
	for _, req := range batch {
		for _, s := range req.gates {
			at := len(union)
			dup := false
			for i, have := range union {
				if have == s {
					dup = true
					break
				}
				if s < have {
					at = i
					break
				}
			}
			if dup {
				continue
			}
			union = append(union, 0)
			copy(union[at+1:], union[at:])
			union[at] = s
		}
	}
	return union
}

// acquireEpochGates takes the epoch's gate union exclusively, in
// directory (ascending) order — the sorted input is the ordering
// evidence lockorder blesses this function for, and ordGates asserts
// it. The acquisition deliberately ignores member contexts: the flusher
// serves a whole batch, and one member's cancellation must not abandon
// the others' work (the wait is bounded by other holders' durations,
// like every gate wait).
func acquireEpochGates(r Router, union []int) {
	bg := context.Background()
	for _, s := range union {
		// A background context cannot expire, so lockGateCtx blocks
		// plainly and never fails.
		_ = lockGateCtx(bg, r, s)
	}
	ordGates(union)
}

// epochPub accumulates the epoch's committed publication work: every
// object touched by a committed member, with the member keys whose
// pending marks retire at capture. One publishObjects call per engine
// then publishes the whole epoch at a single sequence number.
type epochPub struct {
	objs []*Object
	keys [][]string // parallel to objs: committed member keys per object
	idx  map[*Object]int
}

func (p *epochPub) add(e *Exec) {
	key := e.id.Key()
	for _, o := range e.touchedObjects() {
		if p.idx == nil {
			p.idx = make(map[*Object]int, 8)
		}
		i, ok := p.idx[o]
		if !ok {
			i = len(p.objs)
			p.idx[o] = i
			p.objs = append(p.objs, o)
			p.keys = append(p.keys, nil)
		}
		p.keys[i] = append(p.keys[i], key)
	}
}

// publish sequences the epoch's objects per home engine: one sequence
// number per engine for the whole batch.
func (p *epochPub) publish() {
	if len(p.objs) == 0 {
		return
	}
	byEng := make(map[*Engine][]int, 2)
	for i, o := range p.objs {
		byEng[o.eng] = append(byEng[o.eng], i)
	}
	for en, idxs := range byEng {
		objs := make([]*Object, len(idxs))
		keys := make([][]string, len(idxs))
		for j, i := range idxs {
			objs[j] = p.objs[i]
			keys[j] = p.keys[i]
		}
		en.publishObjects("", objs, keys)
	}
}

// epochCounts batches the epoch's commit/abort counter writes per
// charged engine, flushed once at the end of the batch.
type epochCounts struct {
	ens     []*Engine
	commits []int64
	aborts  []int64
}

func (c *epochCounts) add(en *Engine, commits, aborts int64) {
	for i, have := range c.ens {
		if have == en {
			c.commits[i] += commits
			c.aborts[i] += aborts
			return
		}
	}
	c.ens = append(c.ens, en)
	c.commits = append(c.commits, commits)
	c.aborts = append(c.aborts, aborts)
}

func (c *epochCounts) flush() {
	for i, en := range c.ens {
		if n := c.commits[i]; n > 0 {
			en.commits.Add(n)
			en.epochCommits.Add(n)
		}
		if n := c.aborts[i]; n > 0 {
			en.aborts.Add(n)
		}
	}
}

// ExecuteEpoch flushes one epoch: acquire the batch's gate union once,
// run every member down the serial fast path machinery with its own
// Exec and undo log, publish the epoch's committed writes at one
// sequence number per engine, flush the counters once, release the
// gates, and wake the requesters. Called by the shard accumulator's
// flusher goroutine.
//
// Without versioning a member is woken the moment its own execution
// settles: its state is applied (or undone) under the gates, so the
// requester can start its next transaction — which queues for the next
// epoch and forms it while this one is still flushing. That overlap is
// what makes batching pay; the counter flush still settles before
// ExecuteEpoch returns, i.e. before the flusher's own requester
// resumes. With versioning the wake waits for the epoch's publication,
// so a requester can never miss its own committed write through a
// snapshot view (read-your-writes).
func ExecuteEpoch(r Router, batch []*EpochReq) {
	if len(batch) == 0 {
		return
	}
	base := r.Base()
	fsp := base.tr.StartSpan(obs.PhaseEpochFlush, uint64(batch[0].HomeShard()), "", "")
	var unionBuf [8]int
	union := epochGateUnion(batch, unionBuf[:])
	acquireEpochGates(r, union)
	versioned := base.opts.Versioning
	// One pooled exec state serves the whole batch: members run strictly
	// serially, so the state is re-armed (not re-fetched) between them.
	st := serialExecPool.Get().(*shardedExec)
	var pub epochPub
	var counts epochCounts
	for _, req := range batch {
		base.runEpochTxn(r, st, union, req, &pub, &counts)
		if !versioned {
			//oblint:allow ctxwait -- done is buffered with exactly one send per parked request, so the send cannot block
			req.done <- struct{}{}
		}
	}
	if versioned {
		pub.publish()
	}
	counts.flush()
	base.epochFlushes.Add(1)
	serialExecPool.Put(st)
	for i := len(union) - 1; i >= 0; i-- {
		r.UnlockGate(union[i])
	}
	if versioned {
		for _, req := range batch {
			//oblint:allow ctxwait -- done is buffered with exactly one send per parked request, so the send cannot block
			req.done <- struct{}{}
		}
	}
	fsp.End()
}

// runEpochTxn executes one batch member inside the flusher's gated
// window: the serial fast path's per-transaction machinery (the
// flusher's re-armed exec state, direct steps, per-member undo), minus
// the per-transaction gate round and publication — those are the
// epoch's, paid once. A member abort undoes only that member's steps:
// execution is strictly serial, so later members see exactly the
// committed prefix of the batch.
func (en *Engine) runEpochTxn(r Router, st *shardedExec, union []int, req *EpochReq, pub *epochPub, counts *epochCounts) {
	id := en.allocTop()
	serialExecReset(st, r)
	e, cs := &st.e, &st.cs
	e.id = id
	e.object = core.EnvironmentObject
	e.method = req.name
	e.args = req.args
	e.eng = en
	e.goctx = req.ctx
	e.readOnly = req.readOnly
	e.top = e
	// The membership surface is the whole epoch's union: every gate is
	// genuinely held by the flusher, so a member may touch any shard of
	// the union (joinSerial's holdsGateLocked check passes), and a miss
	// outside it restarts that member alone with its grown set.
	cs.gated = union
	if err := en.rec.AddExec(id, e.object, e.method); err != nil {
		req.err = historyAbort(id, err)
		cs.gated = nil
		en.releaseTop(id)
		return
	}
	e.recIn.Store(en)
	ret, err := req.fn(e.ctx())
	if err == nil {
		err = e.ctxAbortErr()
	}
	need, counted := cs.commitState(en)
	if err == nil && need != nil {
		// The body swallowed a restart error from a Call and finished
		// anyway; the member still cannot commit with an incomplete set.
		err = restartAbort(id, need)
	}
	if err != nil {
		e.runUndo()
		cs.markTopAborted(en, e.id)
		var rs *shardRestartError
		if !errors.As(err, &rs) {
			// Membership restarts are routing, not workload outcomes.
			counts.add(counted, 0, 1)
		}
		req.err = err
	} else {
		if en.opts.Versioning {
			pub.add(e)
		}
		counts.add(counted, 1, 0)
		req.ret = ret
	}
	// The gates are the flusher's, not this member's: detach them so the
	// shared state's releaseGates path cannot drop them.
	cs.gated = nil
	en.releaseTop(id)
}
