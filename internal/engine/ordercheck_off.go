//go:build !ordercheck

package engine

// Without the ordercheck tag the witness calls compile to empty,
// inlinable no-ops: the instrumented hot paths carry no cost.

const (
	ordRankObject = 10
	ordRankPub    = 50
)

func ordAcquire(rank int, name string) {}
func ordRelease(rank int, name string) {}
func ordGates(gated []int)             {}
func ordGateAppend(gated []int, s int) {}
