package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// TestCommitBarrierHonoursContext pins the commit barrier's cancellation
// path: a transaction blocked at the barrier on an unresolved dependency
// must return promptly when its own context is cancelled, instead of
// waiting for the dependency to resolve. (Regression: the barrier select
// listened only on the dependency and the kill channel, so RunCtx's
// commit-boundary cancellation promise was broken for exactly the wait
// that can be longest.)
func TestCommitBarrierHonoursContext(t *testing.T) {
	en := New(trackingScheduler{}, Options{TrackDependencies: true, MaxRetries: NoRetry})
	en.AddObject("A", objects.Register(), core.State{"x": int64(0)})

	wrote := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Writer parks after its dirty write so the reader's dependency
		// on it stays unresolved until the test releases it.
		_, _ = en.Run("W", func(ctx *Ctx) (core.Value, error) {
			if _, err := ctx.Do("A", "Write", "x", int64(5)); err != nil {
				return nil, err
			}
			close(wrote)
			<-release
			return nil, nil
		})
	}()
	<-wrote

	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := en.RunCtx(cctx, "R", func(ctx *Ctx) (core.Value, error) {
			return ctx.Do("A", "Read", "x") // dirty read: dependency on W
		})
		errCh <- err
	}()

	// Let the reader reach the barrier, then cancel it while W is still
	// unresolved.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled barrier wait returned %v, want context.Canceled", err)
		}
		if Retriable(err) {
			t.Fatalf("context cancellation must not be retriable, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("commit barrier ignored context cancellation")
	}

	close(release)
	wg.Wait()
}
