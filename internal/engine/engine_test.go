package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"objectbase/internal/core"
	"objectbase/internal/graph"
	"objectbase/internal/objects"
)

func newTestEngine(sched Scheduler, opts Options) *Engine {
	en := New(sched, opts)
	en.AddObject("A", objects.Register(), core.State{"x": int64(0), "y": int64(0)})
	en.AddObject("C", objects.Counter(), nil)
	return en
}

// registerBump registers a read-modify-write method on object A.
func registerBump(en *Engine) {
	en.Register("A", "bump", func(ctx *Ctx) (core.Value, error) {
		v, err := ctx.Do("A", "Read", "x")
		if err != nil {
			return nil, err
		}
		if _, err := ctx.Do("A", "Write", "x", v.(int64)+1); err != nil {
			return nil, err
		}
		return v.(int64) + 1, nil
	})
}

func TestSingleTransaction(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	registerBump(en)
	ret, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("A", "bump")
	})
	if err != nil {
		t.Fatal(err)
	}
	if ret != int64(1) {
		t.Fatalf("ret = %v", ret)
	}
	if en.Commits() != 1 || en.Aborts() != 0 {
		t.Fatalf("commits=%d aborts=%d", en.Commits(), en.Aborts())
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history: %v", err)
	}
	if got := h.FinalStates["A"]["x"]; got != int64(1) {
		t.Fatalf("x = %v", got)
	}
	v := graph.Check(h)
	if !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}

func TestNestedCalls(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	en.Register("A", "inner", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("A", "Read", "x")
	})
	en.Register("A", "outer", func(ctx *Ctx) (core.Value, error) {
		if _, err := ctx.Do("A", "Write", "x", int64(5)); err != nil {
			return nil, err
		}
		return ctx.Call("A", "inner")
	})
	ret, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("A", "outer")
	})
	if err != nil || ret != int64(5) {
		t.Fatalf("ret=%v err=%v", ret, err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history: %v", err)
	}
	// Forest: T -> outer -> inner.
	top := core.RootID(0)
	outer := top.Child(0)
	inner := outer.Child(0)
	if h.Exec(inner) == nil || h.Exec(inner).Method != "inner" {
		t.Fatalf("missing inner exec")
	}
	m, _, err := h.MessageTo(inner)
	if err != nil || m.Object != "A" {
		t.Fatalf("MessageTo(inner): %v %v", m, err)
	}
}

func TestMethodArgs(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	en.Register("C", "addN", func(ctx *Ctx) (core.Value, error) {
		n := ctx.Arg(0).(int64)
		if _, err := ctx.Do("C", "Add", n); err != nil {
			return nil, err
		}
		return ctx.Do("C", "Get")
	})
	ret, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("C", "addN", int64(7))
	})
	if err != nil || ret != int64(7) {
		t.Fatalf("ret=%v err=%v", ret, err)
	}
	// Out-of-range arg.
	en.Register("C", "noArg", func(ctx *Ctx) (core.Value, error) {
		if ctx.Arg(3) != nil {
			return nil, fmt.Errorf("expected nil out-of-range arg")
		}
		return nil, nil
	})
	if _, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("C", "noArg")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestChildAbortParentSurvives(t *testing.T) {
	// The paper's Section 3 scenario: M invokes M' which fails; M tries an
	// alternative way and succeeds.
	en := newTestEngine(None{}, Options{})
	en.Register("A", "failing", func(ctx *Ctx) (core.Value, error) {
		if _, err := ctx.Do("A", "Write", "x", int64(99)); err != nil {
			return nil, err
		}
		return nil, ctx.Abort("simulated failure")
	})
	en.Register("A", "fallback", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("A", "Write", "y", int64(1))
	})
	_, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		if _, err := ctx.Call("A", "failing"); err == nil {
			t.Errorf("failing child should report abort")
		}
		return ctx.Call("A", "fallback")
	})
	if err != nil {
		t.Fatalf("parent must survive child abort: %v", err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history: %v", err)
	}
	// Abort semantics (a): the failed write left no trace.
	if got := h.FinalStates["A"]["x"]; got != int64(0) {
		t.Fatalf("aborted write visible: x = %v", got)
	}
	if got := h.FinalStates["A"]["y"]; got != int64(1) {
		t.Fatalf("fallback lost: y = %v", got)
	}
	// The failing child and its message are recorded as aborted.
	failing := core.RootID(0).Child(0)
	if !h.Aborted(failing) {
		t.Fatalf("failing exec not marked aborted")
	}
	msg, _, _ := h.MessageTo(failing)
	if msg == nil || !msg.ChildAborted {
		t.Fatalf("message must reflect the child abort (Section 3)")
	}
	if h.Aborted(core.RootID(0)) {
		t.Fatalf("parent wrongly aborted")
	}
}

func TestUserAbortTopLevelNotRetried(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	attempts := 0
	_, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		attempts++
		if _, err := ctx.Do("A", "Write", "x", int64(1)); err != nil {
			return nil, err
		}
		return nil, ctx.Abort("user says no")
	})
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Retriable {
		t.Fatalf("want non-retriable AbortError, got %v", err)
	}
	if attempts != 1 {
		t.Fatalf("user abort retried %d times", attempts)
	}
	h := en.History()
	if got := h.FinalStates["A"]["x"]; got != int64(0) {
		t.Fatalf("aborted top-level write visible: %v", got)
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history: %v", err)
	}
}

func TestInternalParallelism(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	en.Register("C", "add", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("C", "Add", ctx.Arg(0))
	})
	_, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		err := ctx.Parallel(
			func(c *Ctx) error { _, e := c.Call("C", "add", int64(1)); return e },
			func(c *Ctx) error { _, e := c.Call("C", "add", int64(2)); return e },
			func(c *Ctx) error { _, e := c.Call("C", "add", int64(4)); return e },
		)
		return nil, err
	})
	if err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history: %v", err)
	}
	if got := h.FinalStates["C"]["n"]; got != int64(7) {
		t.Fatalf("n = %v, want 7", got)
	}
	// Three children with distinct IDs must exist.
	top := core.RootID(0)
	for k := int32(0); k < 3; k++ {
		if h.Exec(top.Child(k)) == nil {
			t.Fatalf("missing child %d", k)
		}
	}
	v := graph.Check(h)
	if !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
	if err := graph.CheckTheorem5(h); err != nil {
		t.Fatalf("theorem 5: %v", err)
	}
}

// TestNoneSchedulerAdmitsAnomaly forces the lost-update interleaving under
// the None scheduler and checks the oracle rejects the history — the
// engine records faithfully, and without concurrency control the anomaly
// is real.
func TestNoneSchedulerAdmitsAnomaly(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	readDone := make(chan struct{})
	writeDone := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := en.Run("T1", func(ctx *Ctx) (core.Value, error) {
			v, err := ctx.Do("A", "Read", "x")
			if err != nil {
				return nil, err
			}
			readDone <- struct{}{} // let T2 read now
			<-writeDone            // wait for T2's read
			return ctx.Do("A", "Write", "x", v.(int64)+1)
		})
		if err != nil {
			t.Errorf("T1: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		_, err := en.Run("T2", func(ctx *Ctx) (core.Value, error) {
			<-readDone
			v, err := ctx.Do("A", "Read", "x")
			if err != nil {
				return nil, err
			}
			writeDone <- struct{}{}
			return ctx.Do("A", "Write", "x", v.(int64)+1)
		})
		if err != nil {
			t.Errorf("T2: %v", err)
		}
	}()
	wg.Wait()

	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history must be legal (merely not serialisable): %v", err)
	}
	if got := h.FinalStates["A"]["x"]; got != int64(1) {
		t.Fatalf("lost update should leave x=1, got %v", got)
	}
	v := graph.Check(h)
	if v.Serialisable {
		t.Fatalf("oracle certified a lost update: %v", v)
	}
}

func TestRunManySmoke(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	en.Register("C", "add", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("C", "Add", int64(1))
	})
	err := en.RunMany(4, 40, func(i int) (string, MethodFunc, []core.Value) {
		return "T", func(ctx *Ctx) (core.Value, error) {
			return ctx.Call("C", "add")
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if got := h.FinalStates["C"]["n"]; got != int64(40) {
		t.Fatalf("n = %v, want 40 (Adds commute, None is enough)", got)
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history: %v", err)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("commuting adds must be serialisable: %v", v)
	}
}

func TestUnknownObjectAndMethod(t *testing.T) {
	en := newTestEngine(None{}, Options{})
	if _, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("nosuch", "m")
	}); err == nil {
		t.Fatalf("unknown object must fail")
	}
	if _, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Call("A", "nosuch")
	}); err == nil {
		t.Fatalf("unknown method must fail")
	}
	if _, err := en.Run("T", func(ctx *Ctx) (core.Value, error) {
		return ctx.Do("nosuch", "Read", "x")
	}); err == nil {
		t.Fatalf("unknown object in Do must fail")
	}
}

// trackingScheduler is None plus dependency registration: the minimal
// scheduler exposing uncommitted state, used to unit-test cascades.
type trackingScheduler struct{ None }

func (trackingScheduler) Name() string { return "tracking-none" }

func (trackingScheduler) Step(e *Exec, obj *Object, inv core.OpInvocation) (core.Value, error) {
	obj.Latch()
	defer obj.Unlatch()
	st, err := obj.PeekLocked(inv)
	if err != nil {
		return nil, err
	}
	if err := e.Engine().TrackTouch(e, obj, st); err != nil {
		return nil, err
	}
	applied, err := obj.ApplyForLocked(e, inv)
	if err != nil {
		return nil, err
	}
	return applied.Ret, nil
}

func TestCascadingAbort(t *testing.T) {
	en := New(trackingScheduler{}, Options{TrackDependencies: true, MaxRetries: NoRetry})
	en.AddObject("A", objects.Register(), core.State{"x": int64(0)})

	wrote := make(chan struct{})
	readDone := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	var err1, err2 error
	go func() {
		defer wg.Done()
		_, err1 = en.Run("W", func(ctx *Ctx) (core.Value, error) {
			if _, err := ctx.Do("A", "Write", "x", int64(5)); err != nil {
				return nil, err
			}
			close(wrote)
			<-readDone // ensure the reader saw the dirty value
			return nil, ctx.Abort("writer gives up")
		})
	}()
	go func() {
		defer wg.Done()
		<-wrote
		_, err2 = en.Run("R", func(ctx *Ctx) (core.Value, error) {
			v, err := ctx.Do("A", "Read", "x")
			if err != nil {
				return nil, err
			}
			if v != int64(5) {
				t.Errorf("reader should see the dirty 5, got %v", v)
			}
			close(readDone)
			return v, nil
		})
	}()
	wg.Wait()

	if err1 == nil {
		t.Fatalf("writer must abort")
	}
	if err2 == nil {
		t.Fatalf("reader must be cascade-aborted (MaxRetries=0)")
	}
	if !Retriable(err2) {
		t.Fatalf("cascade must be retriable, got %v", err2)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history after cascade: %v", err)
	}
	if got := h.FinalStates["A"]["x"]; got != int64(0) {
		t.Fatalf("x = %v after aborts, want 0", got)
	}
}

func TestCascadeRetrySucceeds(t *testing.T) {
	// Same as above but the reader is allowed to retry: its second attempt
	// reads the clean value and commits.
	en := New(trackingScheduler{}, Options{TrackDependencies: true, MaxRetries: 10})
	en.AddObject("A", objects.Register(), core.State{"x": int64(0)})

	wrote := make(chan struct{})
	readDone := make(chan struct{})
	var readerSaw []core.Value
	var mu sync.Mutex

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = en.Run("W", func(ctx *Ctx) (core.Value, error) {
			if _, err := ctx.Do("A", "Write", "x", int64(5)); err != nil {
				return nil, err
			}
			select {
			case <-wrote:
			default:
				close(wrote)
			}
			select {
			case <-readDone:
			default:
			}
			<-readDone
			return nil, ctx.Abort("writer gives up")
		})
	}()
	go func() {
		defer wg.Done()
		<-wrote
		first := true
		ret, err := en.Run("R", func(ctx *Ctx) (core.Value, error) {
			v, err := ctx.Do("A", "Read", "x")
			if err != nil {
				return nil, err
			}
			mu.Lock()
			readerSaw = append(readerSaw, v)
			mu.Unlock()
			if first {
				first = false
				select {
				case <-readDone:
				default:
					close(readDone)
				}
			}
			return v, nil
		})
		if err != nil {
			t.Errorf("reader should eventually commit: %v", err)
		}
		if ret != int64(0) {
			t.Errorf("reader's committed value = %v, want clean 0", ret)
		}
	}()
	wg.Wait()

	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("history: %v", err)
	}
	if v := graph.Check(h); !v.Serialisable {
		t.Fatalf("verdict: %v", v)
	}
}
