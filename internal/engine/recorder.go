package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"objectbase/internal/core"
)

// recorder is the RecordFull HistoryObserver: it accumulates the history
// h = (E, <, B, S) of a run. Ticks come from one atomic clock; per-object
// step sequences are appended in apply order (the caller holds the object
// latch, so ObjSeq order is the order effects hit the state — a
// topological sort of < as Definition 6 condition 3 requires).
//
// Memory grows with the run: every execution, step, and message is
// retained until the engine is dropped. A limit > 0 caps the total event
// count; once it would be exceeded, recording calls fail with
// ErrHistoryLimit (sticky), and so do snapshots — the history is
// incomplete from that point on. Long-lived servers that do not need the
// oracle should run with RecordStats instead.
type recorder struct {
	// clock is the tick source: private by default, the space-wide shared
	// clock under a sharded engine (Options.Shared), so stitched
	// histories carry one consistent < relation across shards.
	clock *atomic.Int64
	limit int64 // 0 = unlimited

	mu sync.Mutex
	h  *core.History
	// events counts retained records (execs + steps + messages) against
	// limit; overflowed is the sticky limit-breached marker.
	events     int64
	steps      int64
	messages   int64
	aborts     int64
	overflowed bool
}

func newRecorder(limit int, clock *atomic.Int64) *recorder {
	if clock == nil {
		clock = new(atomic.Int64)
	}
	return &recorder{h: core.NewHistory(), limit: int64(limit), clock: clock}
}

func (r *recorder) tick() core.Tick { return core.Tick(r.clock.Add(1)) }

// reserveLocked admits n more retained events or reports the (sticky)
// limit breach. Caller holds r.mu.
func (r *recorder) reserveLocked(n int64) error {
	if r.overflowed {
		return fmt.Errorf("%w (limit %d)", ErrHistoryLimit, r.limit)
	}
	if r.limit > 0 && r.events+n > r.limit {
		r.overflowed = true
		return fmt.Errorf("%w: %d events recorded, limit %d — raise WithHistoryLimit or record with history off", ErrHistoryLimit, r.events, r.limit)
	}
	r.events += n
	return nil
}

func (r *recorder) AddObject(name string, sc *core.Schema, initial core.State) {
	r.mu.Lock()
	r.h.AddObject(name, sc, initial)
	r.mu.Unlock()
}

func (r *recorder) AddExec(id core.ExecID, object, method string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.reserveLocked(1); err != nil {
		return err
	}
	r.h.Execs[id.Key()] = &core.MethodExec{
		ID:     id,
		Object: object,
		Method: method,
	}
	if len(id) == 1 {
		r.h.Roots = append(r.h.Roots, id)
	} else {
		pe := r.h.Execs[id.Parent().Key()]
		if pe != nil {
			pe.Children = append(pe.Children, id)
		}
	}
	return nil
}

// StartMessage records the open message step that creates child. The
// engine allocates child indices per parent, so under internal
// parallelism message k+1 may arrive before message k; the slice is
// grown with nil placeholders and each message lands at its own index,
// keeping the Messages[parent][k]-creates-Child(k) invariant for every
// quiescent history.
func (r *recorder) StartMessage(parent, child core.ExecID, lane int, object, method string, args []core.Value) (*core.MessageStep, error) {
	start := r.tick()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.reserveLocked(1); err != nil {
		return nil, err
	}
	m := &core.MessageStep{
		Exec:   parent,
		Child:  child,
		Object: object,
		Method: method,
		Args:   args,
		Start:  start,
		Lane:   lane,
	}
	k := int(child[len(child)-1])
	key := parent.Key()
	msgs := r.h.Messages[key]
	for k >= len(msgs) {
		msgs = append(msgs, nil)
	}
	msgs[k] = m
	r.h.Messages[key] = msgs
	r.messages++
	return m, nil
}

func (r *recorder) EndMessage(m *core.MessageStep, ret core.Value, aborted bool) {
	end := r.tick()
	r.mu.Lock()
	m.Ret = ret
	m.ChildAborted = aborted
	m.End = end
	r.mu.Unlock()
}

// AddStep records a local step; the caller holds the object's latch, so
// consecutive calls for one object arrive in apply order.
func (r *recorder) AddStep(exec core.ExecID, object string, info core.StepInfo, objSeq int) error {
	return r.addStep(&core.Step{
		Exec:   exec,
		Object: object,
		Info:   info,
		ObjSeq: objSeq,
	})
}

// AddViewStep records a snapshot read: a read-only step positioned at the
// version's publication watermark in the object's linearisation. View
// steps arrive without the object latch, so they interleave arbitrarily
// with regular appends; Snapshot sorts each object's steps (core.StepLess)
// before handing the history out.
func (r *recorder) AddViewStep(exec core.ExecID, object string, info core.StepInfo, objSeq int, snapSeq uint64) error {
	return r.addStep(&core.Step{
		Exec:    exec,
		Object:  object,
		Info:    info,
		ObjSeq:  objSeq,
		Snap:    true,
		SnapSeq: snapSeq,
	})
}

func (r *recorder) addStep(st *core.Step) error {
	st.At = r.tick()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.reserveLocked(1); err != nil {
		return err
	}
	r.h.Steps[st.Object] = append(r.h.Steps[st.Object], st)
	r.h.LocalSteps[st.Exec.Key()] = append(r.h.LocalSteps[st.Exec.Key()], st)
	r.steps++
	return nil
}

// MarkAborted marks the execution and all recorded descendants aborted
// (abort semantics (b)).
func (r *recorder) MarkAborted(id core.ExecID) {
	r.mu.Lock()
	r.aborts++
	var mark func(core.ExecID)
	mark = func(x core.ExecID) {
		e := r.h.Execs[x.Key()]
		if e == nil || e.Aborted {
			return
		}
		e.Aborted = true
		for _, c := range e.Children {
			mark(c)
		}
	}
	mark(id)
	r.mu.Unlock()
}

func (r *recorder) EventStats() ObserverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ObserverStats{
		Execs:    int64(len(r.h.Execs)),
		Steps:    r.steps,
		Messages: r.messages,
		Aborts:   r.aborts,
	}
}

// Snapshot returns a copy of the recorded history. The snapshot is safe
// to read while transactions are still running: every record the
// recorder keeps mutating after insertion (MethodExec, MessageStep) is
// copied under the lock, and the container maps and slices are fresh.
// Step records are immutable once inserted and are shared. The caller
// snapshots final states from the live objects before the recorder lock
// is taken (object latches are always acquired before the recorder lock
// elsewhere). A snapshot taken mid-run is internally consistent but
// reflects in-flight transactions — message slots whose StartMessage has
// not landed yet are elided; oracle verdicts are only meaningful on a
// quiescent engine, where no such gaps exist.
func (r *recorder) Snapshot(finals map[string]core.State) (*core.History, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.overflowed {
		return nil, fmt.Errorf("%w: history truncated at %d events", ErrHistoryLimit, r.events)
	}
	h := core.NewHistory()
	for k, e := range r.h.Execs {
		ce := *e
		ce.Children = append([]core.ExecID(nil), e.Children...)
		h.Execs[k] = &ce
	}
	h.Roots = append([]core.ExecID(nil), r.h.Roots...)
	for n, sc := range r.h.Schemas {
		h.Schemas[n] = sc
	}
	for n, st := range r.h.InitialStates {
		h.InitialStates[n] = st
	}
	for n, steps := range r.h.Steps {
		cp := append([]*core.Step(nil), steps...)
		// Slot snapshot reads at their watermark position: regular steps
		// land in ObjSeq order already, but view steps are appended
		// without the object latch and carry the (earlier) position of
		// the version they observed.
		sort.SliceStable(cp, func(i, j int) bool { return core.StepLess(cp[i], cp[j]) })
		h.Steps[n] = cp
	}
	for k, msgs := range r.h.Messages {
		cp := make([]*core.MessageStep, 0, len(msgs))
		for _, m := range msgs {
			if m == nil {
				continue // in-flight allocation gap (mid-run snapshot only)
			}
			cm := *m
			cp = append(cp, &cm)
		}
		h.Messages[k] = cp
	}
	for k, steps := range r.h.LocalSteps {
		h.LocalSteps[k] = append([]*core.Step(nil), steps...)
	}
	h.FinalStates = finals
	return h, nil
}
