package engine

import (
	"sync"
	"sync/atomic"

	"objectbase/internal/core"
)

// recorder accumulates the history h = (E, <, B, S) of a run. Ticks come
// from one atomic clock; per-object step sequences are appended in apply
// order (the caller holds the object latch, so ObjSeq order is the order
// effects hit the state — a topological sort of < as Definition 6
// condition 3 requires).
type recorder struct {
	clock atomic.Int64

	mu sync.Mutex
	h  *core.History
	// lanes numbers intra-execution parallel branches.
	lanes map[string]int
}

func newRecorder() *recorder {
	return &recorder{h: core.NewHistory(), lanes: make(map[string]int)}
}

func (r *recorder) tick() core.Tick { return core.Tick(r.clock.Add(1)) }

func (r *recorder) addObject(name string, sc *core.Schema, initial core.State) {
	r.mu.Lock()
	r.h.AddObject(name, sc, initial)
	r.mu.Unlock()
}

func (r *recorder) addExec(e *Exec) {
	r.mu.Lock()
	r.h.Execs[e.id.Key()] = &core.MethodExec{
		ID:     e.id,
		Object: e.object,
		Method: e.method,
	}
	if len(e.id) == 1 {
		r.h.Roots = append(r.h.Roots, e.id)
	} else {
		pe := r.h.Execs[e.id.Parent().Key()]
		if pe != nil {
			pe.Children = append(pe.Children, e.id)
		}
	}
	r.mu.Unlock()
}

// nextMsg allocates the next message index of parent and records the open
// message step; the child ID is parent.Child(k).
func (r *recorder) startMessage(parent *Exec, lane int, object, method string, args []core.Value) (*core.MessageStep, core.ExecID) {
	start := r.tick()
	r.mu.Lock()
	k := int32(len(r.h.Messages[parent.id.Key()]))
	child := parent.id.Child(k)
	m := &core.MessageStep{
		Exec:   parent.id,
		Child:  child,
		Object: object,
		Method: method,
		Args:   args,
		Start:  start,
		Lane:   lane,
	}
	r.h.Messages[parent.id.Key()] = append(r.h.Messages[parent.id.Key()], m)
	r.mu.Unlock()
	return m, child
}

func (r *recorder) endMessage(m *core.MessageStep, ret core.Value, aborted bool) {
	end := r.tick()
	r.mu.Lock()
	m.Ret = ret
	m.ChildAborted = aborted
	m.End = end
	r.mu.Unlock()
}

// addStep records a local step; the caller holds the object's latch, so
// consecutive calls for one object arrive in apply order.
func (r *recorder) addStep(e *Exec, object string, info core.StepInfo, objSeq int) {
	at := r.tick()
	r.mu.Lock()
	st := &core.Step{
		Exec:   e.id,
		Object: object,
		Info:   info,
		At:     at,
		ObjSeq: objSeq,
	}
	r.h.Steps[object] = append(r.h.Steps[object], st)
	r.h.LocalSteps[e.id.Key()] = append(r.h.LocalSteps[e.id.Key()], st)
	r.mu.Unlock()
}

// markAborted marks the execution and all recorded descendants aborted
// (abort semantics (b)).
func (r *recorder) markAborted(id core.ExecID) {
	r.mu.Lock()
	var mark func(core.ExecID)
	mark = func(x core.ExecID) {
		e := r.h.Execs[x.Key()]
		if e == nil || e.Aborted {
			return
		}
		e.Aborted = true
		for _, c := range e.Children {
			mark(c)
		}
	}
	mark(id)
	r.mu.Unlock()
}

func (r *recorder) nextLane(e *Exec) int {
	r.mu.Lock()
	r.lanes[e.id.Key()]++
	lane := r.lanes[e.id.Key()]
	r.mu.Unlock()
	return lane
}

// history returns a snapshot of the recorded history. The snapshot is
// safe to read while transactions are still running: every record the
// recorder keeps mutating after insertion (MethodExec, MessageStep) is
// copied under the lock, and the container maps and slices are fresh.
// Step records are immutable once inserted and are shared. Final states
// are snapshotted from the live objects before the recorder lock is taken
// (object latches are always acquired before the recorder lock
// elsewhere). A snapshot taken mid-run is internally consistent but
// reflects in-flight transactions; oracle verdicts are only meaningful on
// a quiescent engine.
func (r *recorder) history(objects map[string]*Object) *core.History {
	finals := make(map[string]core.State, len(objects))
	for name, o := range objects {
		finals[name] = o.StateSnapshot()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := core.NewHistory()
	for k, e := range r.h.Execs {
		ce := *e
		ce.Children = append([]core.ExecID(nil), e.Children...)
		h.Execs[k] = &ce
	}
	h.Roots = append([]core.ExecID(nil), r.h.Roots...)
	for n, sc := range r.h.Schemas {
		h.Schemas[n] = sc
	}
	for n, st := range r.h.InitialStates {
		h.InitialStates[n] = st
	}
	for n, steps := range r.h.Steps {
		h.Steps[n] = append([]*core.Step(nil), steps...)
	}
	for k, msgs := range r.h.Messages {
		cp := make([]*core.MessageStep, len(msgs))
		for i, m := range msgs {
			cm := *m
			cp[i] = &cm
		}
		h.Messages[k] = cp
	}
	for k, steps := range r.h.LocalSteps {
		h.LocalSteps[k] = append([]*core.Step(nil), steps...)
	}
	h.FinalStates = finals
	return h
}
