package workload

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
)

func TestRandomHistoryLegal(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h, err := RandomHistory(HistoryConfig{Seed: seed, Objects: 2, VarsPerObject: 2, Txns: 4, StepsPerTxn: 5, WritePct: 50, NestPct: 25})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := h.CheckLegal(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if h.StepCount() == 0 {
			t.Fatalf("seed %d: empty history", seed)
		}
	}
}

// TestTheorem1OnRandomHistories is experiment E1 in unit-test form: any
// conflict-consistent permutation of an object's steps replays with the
// same return values and final state (Lemma 2 / Theorem 1).
func TestTheorem1OnRandomHistories(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 10; seed++ {
		h, err := RandomHistory(HistoryConfig{Seed: seed, Objects: 2, VarsPerObject: 3, Txns: 4, StepsPerTxn: 6, WritePct: 40, NestPct: 20})
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range h.ObjectNames() {
			want, err := core.ReplayObject(h.Schemas[obj], h.InitialStates[obj], h.Steps[obj])
			if err != nil {
				t.Fatalf("baseline replay: %v", err)
			}
			for trial := 0; trial < 5; trial++ {
				perm := ConflictConsistentPermutation(r, h, obj)
				got, err := core.ReplayObject(h.Schemas[obj], h.InitialStates[obj], perm)
				if err != nil {
					t.Fatalf("seed %d obj %s trial %d: permutation not legal: %v", seed, obj, trial, err)
				}
				if !h.Schemas[obj].EqualStates(got, want) {
					t.Fatalf("seed %d obj %s trial %d: final states differ: %s vs %s", seed, obj, trial, got, want)
				}
			}
		}
	}
}

// TestTheorem2AgreesWithReplay is experiment E2 in unit-test form: whenever
// the SG test certifies a random history, the serial replay must succeed.
func TestTheorem2AgreesWithReplay(t *testing.T) {
	acyclic, cyclic := 0, 0
	configs := []HistoryConfig{
		// Sparse: conflicts rare, mostly acyclic.
		{Objects: 4, VarsPerObject: 6, Txns: 3, StepsPerTxn: 2, WritePct: 15, NestPct: 10},
		// Dense: conflicts everywhere, mostly cyclic.
		{Objects: 2, VarsPerObject: 2, Txns: 4, StepsPerTxn: 4, WritePct: 60, NestPct: 20},
	}
	for _, cfg := range configs {
		for seed := int64(0); seed < 30; seed++ {
			cfg.Seed = seed
			h, err := RandomHistory(cfg)
			if err != nil {
				t.Fatal(err)
			}
			v := graph.Check(h)
			if v.SGAcyclic {
				acyclic++
				if !v.Serialisable {
					t.Fatalf("seed %d: Theorem 2 violated: SG acyclic but replay failed: %v", seed, v)
				}
			} else {
				cyclic++
			}
		}
	}
	if acyclic == 0 || cyclic == 0 {
		t.Fatalf("generator not exercising both branches: acyclic=%d cyclic=%d", acyclic, cyclic)
	}
}

func TestDriveBankUnderNone(t *testing.T) {
	spec := Bank(3, 100)
	en := engine.New(engine.None{}, engine.Options{})
	spec.Setup(en)
	if err := Drive(en, spec, 2, 5, 7); err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, a := range []string{"acct0", "acct1", "acct2"} {
		total += h.FinalStates[a]["balance"].(int64)
	}
	if total != 300 {
		t.Fatalf("money not conserved under single-client-per-txn drive: %d", total)
	}
}

func TestProducerConsumerSpec(t *testing.T) {
	spec := ProducerConsumer(4, 0)
	en := engine.New(engine.None{}, engine.Options{})
	spec.Setup(en)
	// Two clients with fixed roles: 5 produced, 5 consumed.
	if err := Drive(en, spec, 2, 5, 3); err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	// 5 produced; up to 5 consumed (a racing consumer may hit an empty
	// queue and remove nothing): length between 4 and 9.
	items := h.FinalStates["Q"]["items"].([]core.Value)
	if len(items) < 4 || len(items) > 9 {
		t.Fatalf("queue length = %d, want between 4 and 9", len(items))
	}
}

func TestFailureInjectionSpec(t *testing.T) {
	spec := FailureInjection(50)
	en := engine.New(engine.None{}, engine.Options{})
	spec.Setup(en)
	if err := Drive(en, spec, 1, 40, 11); err != nil {
		t.Fatal(err)
	}
	h := en.History()
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	good := h.FinalStates["good"]["n"].(int64)
	bad := h.FinalStates["bad"]["n"].(int64)
	if good+bad != 40 {
		t.Fatalf("good=%d bad=%d, want sum 40", good, bad)
	}
	if good == 0 || bad == 0 {
		t.Fatalf("both paths should fire at 50%%: good=%d bad=%d", good, bad)
	}
}

// TestDriveAggregatesClientErrors: when several clients fail, Drive must
// report every failure, not just whichever reached a channel first. The
// gate holds both clients inside their first transaction until both are
// there, so both fail before either can cancel the other.
func TestDriveAggregatesClientErrors(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	spec := Spec{
		Name:  "failing",
		Setup: func(en engine.Registrar) {},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			return "boom", func(ctx *engine.Ctx) (core.Value, error) {
				gate.Done()
				gate.Wait()
				return nil, errors.New("boom")
			}
		},
	}
	en := engine.New(engine.None{}, engine.Options{})
	err := Drive(en, spec, 2, 3, 1)
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"client 0", "client 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregated error should mention %s: %v", want, err)
		}
	}
}

// TestDriveCancelsSiblingsOnError: one client's hard failure must stop
// the others at their next transaction boundary instead of letting them
// run their full quota (10k × 1ms here).
func TestDriveCancelsSiblingsOnError(t *testing.T) {
	spec := Spec{
		Name:  "mixed",
		Setup: func(en engine.Registrar) {},
		ClientTxn: func(r *rand.Rand, client, i int) (string, engine.MethodFunc) {
			if client == 0 {
				return "fail", func(ctx *engine.Ctx) (core.Value, error) {
					return nil, errors.New("fail fast")
				}
			}
			return "slow", func(ctx *engine.Ctx) (core.Value, error) {
				time.Sleep(time.Millisecond)
				return nil, nil
			}
		},
	}
	en := engine.New(engine.None{}, engine.Options{})
	start := time.Now()
	err := Drive(en, spec, 2, 10_000, 1)
	if err == nil || !strings.Contains(err.Error(), "client 0") {
		t.Fatalf("err = %v, want client 0's failure", err)
	}
	if strings.Contains(err.Error(), "client 1") {
		t.Fatalf("cancelled client reported as a failure: %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation did not propagate: siblings ran for %v", el)
	}
}

// TestDriveCtxCallerCancellation: external cancellation stops the drive
// and is returned as the context's error, not as client failures.
func TestDriveCtxCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := Bank(3, 100)
	en := engine.New(engine.None{}, engine.Options{})
	spec.Setup(en)
	err := DriveCtx(ctx, en, spec, 2, 100, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOtherSpecsSmoke(t *testing.T) {
	for _, spec := range []Spec{HotObject(8, 100), Dictionary(64, 16, 50, 100), Skewed(8, 80, 100)} {
		en := engine.New(engine.None{}, engine.Options{})
		spec.Setup(en)
		if err := Drive(en, spec, 1, 10, 5); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := en.History().CheckLegal(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}
