package workload

import (
	"fmt"
	"math/rand"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// HistoryConfig parameterises the offline random-history generator used by
// experiments E1 and E2.
type HistoryConfig struct {
	Seed          int64
	Objects       int // register objects
	VarsPerObject int
	Txns          int
	StepsPerTxn   int
	// WritePct is the probability (percent) that a step is a Write.
	WritePct int
	// NestPct is the probability (percent) that a transaction's next
	// action opens a nested call instead of a direct step.
	NestPct int
}

// RandomHistory builds a random legal history by interleaving the
// programmes of Txns transactions in a random global order. Return values
// are computed against live object states (core.Builder), so the result is
// always a legal history; whether it is serialisable is for the oracle to
// decide — E2 compares the Theorem 2 test with the replay ground truth on
// exactly these.
func RandomHistory(cfg HistoryConfig) (*core.History, error) {
	if cfg.Objects <= 0 {
		cfg.Objects = 2
	}
	if cfg.VarsPerObject <= 0 {
		cfg.VarsPerObject = 2
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 3
	}
	if cfg.StepsPerTxn <= 0 {
		cfg.StepsPerTxn = 4
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder()

	objNames := make([]string, cfg.Objects)
	for i := range objNames {
		objNames[i] = fmt.Sprintf("O%d", i)
		init := core.State{}
		for v := 0; v < cfg.VarsPerObject; v++ {
			init[fmt.Sprintf("x%d", v)] = int64(0)
		}
		b.Object(objNames[i], objects.Register(), init)
	}

	// Each transaction is a stack of open method executions; its programme
	// unfolds lazily as the interleaver picks it.
	type txn struct {
		stack []core.ExecID // open call chain; stack[0] is the top-level exec
		steps int
	}
	txns := make([]*txn, cfg.Txns)
	for i := range txns {
		top := b.Top(fmt.Sprintf("T%d", i))
		m := b.Call(top, objNames[r.Intn(len(objNames))], "body")
		txns[i] = &txn{stack: []core.ExecID{top, m}}
	}

	live := len(txns)
	for live > 0 {
		i := r.Intn(len(txns))
		t := txns[i]
		if t == nil {
			continue
		}
		if t.steps >= cfg.StepsPerTxn {
			// Close remaining open calls.
			for len(t.stack) > 1 {
				b.Return(t.stack[len(t.stack)-1], nil)
				t.stack = t.stack[:len(t.stack)-1]
			}
			txns[i] = nil
			live--
			continue
		}
		cur := t.stack[len(t.stack)-1]
		switch {
		case len(t.stack) > 2 && r.Intn(100) < 30:
			// Return from the nested call.
			b.Return(cur, nil)
			t.stack = t.stack[:len(t.stack)-1]
		case r.Intn(100) < cfg.NestPct && len(t.stack) < 4:
			obj := objNames[r.Intn(len(objNames))]
			child := b.Call(cur, obj, "sub")
			t.stack = append(t.stack, child)
		default:
			// One local step on the current execution's object... steps
			// may target any object the builder knows; use the object the
			// current execution belongs to when possible.
			obj := objNames[r.Intn(len(objNames))]
			v := fmt.Sprintf("x%d", r.Intn(cfg.VarsPerObject))
			if r.Intn(100) < cfg.WritePct {
				b.Local(cur, obj, "Write", v, int64(r.Intn(100)))
			} else {
				b.Local(cur, obj, "Read", v)
			}
			t.steps++
		}
	}
	return b.Finish()
}

// ConflictConsistentPermutation returns a random permutation of steps that
// preserves the relative order of every conflicting pair (the hypothesis
// of Lemma 2): repeatedly pick a random eligible step whose unpicked
// predecessors do not conflict with it.
func ConflictConsistentPermutation(r *rand.Rand, h *core.History, object string) []*core.Step {
	steps := h.Steps[object]
	n := len(steps)
	picked := make([]bool, n)
	out := make([]*core.Step, 0, n)
	for len(out) < n {
		// Collect eligible indices.
		var eligible []int
		for i := 0; i < n; i++ {
			if picked[i] {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				if !picked[j] && h.Conflicts(steps[j], steps[i]) {
					ok = false
					break
				}
			}
			if ok {
				eligible = append(eligible, i)
			}
		}
		idx := eligible[r.Intn(len(eligible))]
		picked[idx] = true
		out = append(out, steps[idx])
	}
	return out
}
