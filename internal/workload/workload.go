// Package workload provides the deterministic workload generators behind
// the experiments (DESIGN.md §4): online transaction mixes driven through
// the engine, and offline random histories built directly with
// core.Builder for the theorem-checking experiments E1/E2.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/objects"
)

// Spec describes an online workload: how to populate an engine and how to
// produce the i-th transaction.
type Spec struct {
	Name  string
	Setup func(en engine.Registrar)
	// Txn returns the transaction body for sequence number i; r is a
	// client-local deterministic source.
	Txn func(r *rand.Rand, i int) (string, engine.MethodFunc)
	// ClientTxn, when non-nil, overrides Txn and additionally receives the
	// client index — for workloads with fixed per-client roles (e.g. one
	// producer and one consumer).
	ClientTxn func(r *rand.Rand, client, i int) (string, engine.MethodFunc)
}

// Drive executes the workload: clients goroutines, each running
// txnsPerClient transactions from its own seeded source (retriable aborts
// are handled inside engine.RunCtx). It is DriveCtx under a background
// context.
func Drive(en *engine.Engine, spec Spec, clients, txnsPerClient int, seed int64) error {
	return DriveCtx(context.Background(), en, spec, clients, txnsPerClient, seed)
}

// DriveCtx is Drive with cancellation. A client's hard error cancels the
// remaining clients, which stop at their next transaction boundary; the
// returned error joins every client's own error (none is dropped), so a
// multi-client failure surfaces each cause. Cancellation arriving from
// outside (the caller's ctx) stops all clients and returns ctx's error;
// transactions aborted by that shutdown are not reported as client
// errors.
func DriveCtx(ctx context.Context, en *engine.Engine, spec Spec, clients, txnsPerClient int, seed int64) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed*1_000_003 + int64(c)))
			for i := 0; i < txnsPerClient; i++ {
				if runCtx.Err() != nil {
					return
				}
				var name string
				var fn engine.MethodFunc
				if spec.ClientTxn != nil {
					name, fn = spec.ClientTxn(r, c, i)
				} else {
					name, fn = spec.Txn(r, c*txnsPerClient+i)
				}
				if _, err := en.RunCtx(runCtx, name, fn); err != nil {
					if runCtx.Err() != nil && errors.Is(err, runCtx.Err()) {
						// Shut down by a sibling's failure or the caller's
						// cancellation; the cause is reported elsewhere.
						return
					}
					errs[c] = fmt.Errorf("workload %s client %d txn %d: %w", spec.Name, c, i, err)
					cancel()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return ctx.Err()
}

// Bank returns the mixed contended workload used by the serialisability
// experiments (E3/E4): transfers between accounts, parallel audits, and
// queue traffic, with nesting and internal parallelism.
func Bank(accounts int, initialBalance int64) Spec {
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct%d", i)
	}
	return Spec{
		Name: "bank",
		Setup: func(en engine.Registrar) {
			for _, a := range names {
				a := a
				en.AddObject(a, objects.Account(), core.State{"balance": initialBalance})
				en.Register(a, "deposit", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Do(a, "Deposit", ctx.Arg(0))
				})
				en.Register(a, "withdraw", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Do(a, "Withdraw", ctx.Arg(0))
				})
				en.Register(a, "balance", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Do(a, "Balance")
				})
			}
			en.AddObject("log", objects.Counter(), nil)
			en.Register("log", "note", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Do("log", "Add", int64(1))
			})
			en.AddObject("inbox", objects.Queue(), nil)
			en.Register("inbox", "push", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Do("inbox", "Enqueue", ctx.Arg(0))
			})
			en.Register("inbox", "pop", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Do("inbox", "Dequeue")
			})
		},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			switch r.Intn(4) {
			case 0, 1:
				from := names[r.Intn(len(names))]
				to := names[r.Intn(len(names))]
				if from == to {
					to = names[(r.Intn(len(names))+1)%len(names)]
				}
				amount := int64(1 + r.Intn(20))
				return "transfer", TransferTxn(from, to, amount)
			case 2:
				return "audit", AuditTxn(names)
			default:
				return "pop", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Call("inbox", "pop")
				}
			}
		},
	}
}

// TransferTxn moves amount from one account to another, logging the
// attempt; with insufficient funds it commits having moved nothing.
func TransferTxn(from, to string, amount int64) engine.MethodFunc {
	return func(ctx *engine.Ctx) (core.Value, error) {
		if _, err := ctx.Call("log", "note"); err != nil {
			return nil, err
		}
		ok, err := ctx.Call(from, "withdraw", amount)
		if err != nil {
			return nil, err
		}
		if ok != true {
			return false, nil
		}
		if _, err := ctx.Call(to, "deposit", amount); err != nil {
			return nil, err
		}
		return true, nil
	}
}

// AuditTxn reads all balances with internal parallelism and enqueues the
// total into the inbox.
func AuditTxn(accounts []string) engine.MethodFunc {
	return func(ctx *engine.Ctx) (core.Value, error) {
		var mu sync.Mutex
		total := int64(0)
		legs := make([]func(*engine.Ctx) error, len(accounts))
		for i, a := range accounts {
			a := a
			legs[i] = func(c *engine.Ctx) error {
				v, err := c.Call(a, "balance")
				if err != nil {
					return err
				}
				mu.Lock()
				total += v.(int64)
				mu.Unlock()
				return nil
			}
		}
		if err := ctx.Parallel(legs...); err != nil {
			return nil, err
		}
		if _, err := ctx.Call("inbox", "push", total); err != nil {
			return nil, err
		}
		return total, nil
	}
}

// ProducerConsumer returns the E5 workload: producers enqueue, consumers
// dequeue, against one queue object pre-populated with backlog items (a
// non-empty queue is where step granularity wins: Enqueue and Dequeue of
// different items commute). spin adds simulated per-method work *after*
// the queue step — under two-phase locking the lock stays held until the
// transaction commits, so longer methods mean longer blocking exactly when
// the lock was needlessly conservative.
func ProducerConsumer(backlog, spin int) Spec {
	work := func(x int64) int64 {
		acc := x
		for s := 0; s < spin; s++ {
			acc = acc*1103515245 + 12345
		}
		return acc
	}
	return Spec{
		Name: "producer-consumer",
		Setup: func(en engine.Registrar) {
			items := make([]core.Value, backlog)
			for i := range items {
				items[i] = int64(-1 - i)
			}
			en.AddObject("Q", objects.Queue(), core.State{"items": items})
			en.Register("Q", "produce", func(ctx *engine.Ctx) (core.Value, error) {
				v, err := ctx.Do("Q", "Enqueue", ctx.Arg(0))
				_ = work(1)
				return v, err
			})
			en.Register("Q", "consume", func(ctx *engine.Ctx) (core.Value, error) {
				v, err := ctx.Do("Q", "Dequeue")
				_ = work(2)
				return v, err
			})
		},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			if i%2 == 0 {
				v := int64(i)
				return "produce", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Call("Q", "produce", v)
				}
			}
			return "consume", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Call("Q", "consume")
			}
		},
		// With fixed roles (even clients produce, odd consume) the only
		// cross-client conflicts are Enqueue/Dequeue pairs — precisely the
		// pairs the step-granularity refinement dissolves while the queue
		// is non-empty.
		ClientTxn: func(r *rand.Rand, client, i int) (string, engine.MethodFunc) {
			if client%2 == 0 {
				v := int64(client*1_000_000 + i)
				return "produce", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Call("Q", "produce", v)
				}
			}
			return "consume", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Call("Q", "consume")
			}
		},
	}
}

// HotObject returns the E6 workload: every transaction runs a "long"
// method on the single hot object; the method does some private spinning
// (simulated work) and touches one variable out of many. Method-level
// locking admits concurrent methods on distinct variables; the
// object-as-data-item baseline serialises them all.
func HotObject(vars int, spinWork int) Spec {
	return Spec{
		Name: "hot-object",
		Setup: func(en engine.Registrar) {
			init := core.State{}
			for i := 0; i < vars; i++ {
				init[fmt.Sprintf("v%d", i)] = int64(0)
			}
			en.AddObject("hot", objects.Register(), init)
			en.Register("hot", "work", func(ctx *engine.Ctx) (core.Value, error) {
				name := ctx.Arg(0).(string)
				v, err := ctx.Do("hot", "Read", name)
				if err != nil {
					return nil, err
				}
				x := v.(int64)
				// Simulated computation: the "quite long programme" of the
				// paper's Section 1(b).
				acc := x
				for s := 0; s < spinWork; s++ {
					acc = acc*1103515245 + 12345
				}
				_ = acc
				return ctx.Do("hot", "Write", name, x+1)
			})
		},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			name := fmt.Sprintf("v%d", r.Intn(vars))
			return "work", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Call("hot", "work", name)
			}
		},
	}
}

// Dictionary returns the E8 workload: a mix of lookups, inserts and
// deletes over a key range against the B-tree dictionary object. spin adds
// per-method work, the regime where whole-object exclusion hurts.
func Dictionary(keyRange, preload, lookupPct, spin int) Spec {
	return Spec{
		Name: "dictionary",
		Setup: func(en engine.Registrar) {
			sc := objects.Dictionary()
			st := sc.NewState()
			for k := 0; k < preload; k++ {
				if _, _, err := sc.MustOp("Insert").Apply(st, []core.Value{int64(k * keyRange / (preload + 1)), int64(k)}); err != nil {
					panic(err)
				}
			}
			en.AddObject("dict", sc, st)
			work := func() {
				acc := int64(1)
				for s := 0; s < spin; s++ {
					acc = acc*1103515245 + 12345
				}
				_ = acc
			}
			en.Register("dict", "lookup", func(ctx *engine.Ctx) (core.Value, error) {
				work()
				return ctx.Do("dict", "Lookup", ctx.Arg(0))
			})
			en.Register("dict", "insert", func(ctx *engine.Ctx) (core.Value, error) {
				work()
				return ctx.Do("dict", "Insert", ctx.Arg(0), ctx.Arg(1))
			})
			en.Register("dict", "delete", func(ctx *engine.Ctx) (core.Value, error) {
				work()
				return ctx.Do("dict", "Delete", ctx.Arg(0))
			})
			// A two-step method: transactions with multiple temporally
			// separated accesses are the ones that can close certification
			// cycles.
			en.Register("dict", "rename", func(ctx *engine.Ctx) (core.Value, error) {
				old, err := ctx.Do("dict", "Delete", ctx.Arg(0))
				if err != nil {
					return nil, err
				}
				work()
				if old == nil {
					return false, nil
				}
				if _, err := ctx.Do("dict", "Insert", ctx.Arg(1), old); err != nil {
					return nil, err
				}
				return true, nil
			})
		},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			k := int64(r.Intn(keyRange))
			roll := r.Intn(100)
			rest := 100 - lookupPct
			switch {
			case roll < lookupPct:
				return "lookup", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Call("dict", "lookup", k)
				}
			case roll < lookupPct+rest*2/5:
				v := int64(i)
				return "insert", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Call("dict", "insert", k, v)
				}
			case roll < lookupPct+rest*7/10:
				return "delete", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Call("dict", "delete", k)
				}
			default:
				k2 := int64(r.Intn(keyRange))
				return "rename", func(ctx *engine.Ctx) (core.Value, error) {
					return ctx.Call("dict", "rename", k, k2)
				}
			}
		},
	}
}

// Skewed returns the E7 workload: read-modify-write transactions over
// registers where variable 0 absorbs hotPct percent of the traffic —
// contention the NTO abort-rate experiment sweeps. spin widens the window
// between the read and the write, during which a conflicting younger
// transaction can slip in and doom the writer under timestamp ordering.
func Skewed(vars, hotPct, spin int) Spec {
	return Spec{
		Name: "skewed",
		Setup: func(en engine.Registrar) {
			init := core.State{}
			for i := 0; i < vars; i++ {
				init[fmt.Sprintf("v%d", i)] = int64(0)
			}
			en.AddObject("R", objects.Register(), init)
			en.Register("R", "rmw", func(ctx *engine.Ctx) (core.Value, error) {
				name := ctx.Arg(0).(string)
				v, err := ctx.Do("R", "Read", name)
				if err != nil {
					return nil, err
				}
				acc := v.(int64)
				for s := 0; s < spin; s++ {
					acc = acc*1103515245 + 12345
				}
				_ = acc
				return ctx.Do("R", "Write", name, v.(int64)+1)
			})
		},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			idx := 0
			if r.Intn(100) >= hotPct {
				idx = 1 + r.Intn(vars-1)
			}
			name := fmt.Sprintf("v%d", idx)
			return "rmw", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Call("R", "rmw", name)
			}
		},
	}
}

// AccountMix returns the E7 workload: deposits, withdrawals and balance
// reads over accounts with account 0 absorbing hotPct percent of the
// traffic. The account schema's step-granularity conflicts are genuinely
// finer than its operation-granularity ones (a succeeded withdrawal
// commutes with a later deposit; a deposit commutes with a later failed
// withdrawal), so exact NTO rejects measurably less than conservative NTO
// here — unlike on read/write registers, where the two granularities
// coincide.
func AccountMix(accounts, hotPct, spin int) Spec {
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct%d", i)
	}
	return Spec{
		Name: "account-mix",
		Setup: func(en engine.Registrar) {
			for _, a := range names {
				a := a
				en.AddObject(a, objects.Account(), core.State{"balance": int64(1000)})
				en.Register(a, "op", func(ctx *engine.Ctx) (core.Value, error) {
					acc := int64(1)
					for s := 0; s < spin; s++ {
						acc = acc*1103515245 + 12345
					}
					_ = acc
					kind := ctx.Arg(0).(string)
					switch kind {
					case "deposit":
						return ctx.Do(a, "Deposit", ctx.Arg(1))
					case "withdraw":
						return ctx.Do(a, "Withdraw", ctx.Arg(1))
					default:
						return ctx.Do(a, "Balance")
					}
				})
			}
		},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			idx := 0
			if r.Intn(100) >= hotPct && accounts > 1 {
				idx = 1 + r.Intn(accounts-1)
			}
			name := names[idx]
			var kind string
			switch roll := r.Intn(100); {
			case roll < 40:
				kind = "deposit"
			case roll < 80:
				kind = "withdraw"
			default:
				kind = "balance"
			}
			amount := int64(1 + r.Intn(30))
			return kind, func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Call(name, "op", kind, amount)
			}
		},
	}
}

// FailureInjection returns the E9 workload: transactions whose nested leg
// aborts with the given probability (percent); the parent catches the
// abort and takes a fallback path, exercising abort semantics end to end.
func FailureInjection(abortPct int) Spec {
	return Spec{
		Name: "failure-injection",
		Setup: func(en engine.Registrar) {
			en.AddObject("store", objects.Register(), core.State{})
			en.AddObject("good", objects.Counter(), nil)
			en.AddObject("bad", objects.Counter(), nil)
			en.Register("store", "risky", func(ctx *engine.Ctx) (core.Value, error) {
				name := ctx.Arg(0).(string)
				if _, err := ctx.Do("store", "Write", name, ctx.Arg(1)); err != nil {
					return nil, err
				}
				if ctx.Arg(2) == true {
					return nil, ctx.Abort("injected failure")
				}
				return nil, nil
			})
			en.Register("good", "note", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Do("good", "Add", int64(1))
			})
			en.Register("bad", "note", func(ctx *engine.Ctx) (core.Value, error) {
				return ctx.Do("bad", "Add", int64(1))
			})
		},
		Txn: func(r *rand.Rand, i int) (string, engine.MethodFunc) {
			name := fmt.Sprintf("k%d", r.Intn(64))
			fail := r.Intn(100) < abortPct
			val := int64(i)
			return "riskyWrite", func(ctx *engine.Ctx) (core.Value, error) {
				if _, err := ctx.Call("store", "risky", name, val, fail); err != nil {
					// The paper's Section 3: the parent survives and takes
					// an alternative.
					if _, err2 := ctx.Call("bad", "note"); err2 != nil {
						return nil, err2
					}
					return "fallback", nil
				}
				if _, err := ctx.Call("good", "note"); err != nil {
					return nil, err
				}
				return "ok", nil
			}
		},
	}
}
