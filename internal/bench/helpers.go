package bench

import (
	"math/rand"

	"objectbase/internal/core"
	"objectbase/internal/objects"
)

// registerSchema is a local alias used by experiment setups.
func registerSchema() *core.Schema { return objects.Register() }

// Rng returns a deterministic source for ad-hoc harness needs.
func Rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
