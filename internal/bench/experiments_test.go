package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at Quick scale and asserts
// its correctness columns — this is the CI-grade version of the full
// experiment suite recorded in EXPERIMENTS.md.
func TestAllExperimentsQuick(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := exp.Run(Config{Quick: true, Seed: 42})
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", exp.ID)
			}
			var buf bytes.Buffer
			tbl.Print(&buf)
			out := buf.String()
			if !strings.Contains(out, exp.ID) {
				t.Fatalf("%s: print lacks ID:\n%s", exp.ID, out)
			}
			assertTable(t, tbl)
		})
	}
}

// assertTable checks the per-experiment correctness columns.
func assertTable(t *testing.T, tbl *Table) {
	t.Helper()
	col := func(name string) int {
		for i, h := range tbl.Header {
			if h == name {
				return i
			}
		}
		return -1
	}
	switch tbl.ID {
	case "E1":
		c := col("mismatches")
		for _, row := range tbl.Rows {
			if row[c] != "0" {
				t.Fatalf("E1 mismatches: %v", row)
			}
		}
	case "E2":
		v := col("violations")
		a := col("SG-acyclic")
		c := col("replay-confirmed")
		for _, row := range tbl.Rows {
			if row[v] != "0" {
				t.Fatalf("E2 violations: %v", row)
			}
			if row[a] != row[c] {
				t.Fatalf("E2 acyclic != confirmed: %v", row)
			}
		}
	case "E3", "E4":
		s := col("serialisable")
		th := col("thm5")
		for _, row := range tbl.Rows {
			if row[s] != "yes" || row[th] != "ok" {
				t.Fatalf("%s row failed: %v", tbl.ID, row)
			}
		}
	case "E5":
		// Step granularity must wait strictly less than operation
		// granularity on the largest backlog.
		w := col("lock-waits")
		var opWaits, stepWaits int
		for _, row := range tbl.Rows {
			if row[0] == "1024" {
				n, _ := strconv.Atoi(row[w])
				if strings.Contains(row[1], "step") {
					stepWaits = n
				} else {
					opWaits = n
				}
			}
		}
		if stepWaits >= opWaits && opWaits > 0 {
			t.Fatalf("E5 shape: step waits (%d) should be below op waits (%d)", stepWaits, opWaits)
		}
	case "E7":
		s := col("serialisable")
		for _, row := range tbl.Rows {
			if row[s] != "yes" {
				t.Fatalf("E7 row not serialisable: %v", row)
			}
		}
	case "E9":
		l := col("legal")
		s := col("serialisable")
		ok := col("ok-path")
		fb := col("fallback-path")
		txns := col("txns")
		for _, row := range tbl.Rows {
			if row[l] != "yes" || row[s] != "yes" {
				t.Fatalf("E9 row failed: %v", row)
			}
			a, _ := strconv.Atoi(row[ok])
			b, _ := strconv.Atoi(row[fb])
			n, _ := strconv.Atoi(row[txns])
			if a+b != n {
				t.Fatalf("E9 totals: %v", row)
			}
		}
	case "E10":
		ns := col("non-serialisable")
		for _, row := range tbl.Rows {
			if row[0] == "modular-certifier" && row[ns] != "0" {
				t.Fatalf("E10: certifier admitted non-serialisable rounds: %v", row)
			}
		}
	case "E11":
		c := col("table-entries-after")
		var never, aggressive int
		for _, row := range tbl.Rows {
			n, _ := strconv.Atoi(row[c])
			switch row[0] {
			case "never":
				never = n
			case "1":
				aggressive = n
			}
		}
		if aggressive >= never {
			t.Fatalf("E11 shape: pruned (%d) should be below never-pruned (%d)", aggressive, never)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E3"); !ok {
		t.Fatalf("E3 missing")
	}
	if _, ok := Find("E99"); ok {
		t.Fatalf("E99 should not exist")
	}
}
