package bench

import (
	"fmt"
	"math/rand"
	"time"

	"objectbase/internal/cc"
	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/graph"
	"objectbase/internal/lock"
	"objectbase/internal/workload"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

// All returns the experiment catalogue in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 1: conflict-consistent replay determinism", E1},
		{"E2", "Theorem 2: SG acyclicity vs replay ground truth", E2},
		{"E3", "Theorem 3: N2PL admits only serialisable histories", E3},
		{"E4", "Theorem 4: NTO admits only serialisable histories", E4},
		{"E5", "§5.1: step- vs operation-granularity locking on queues", E5},
		{"E6", "§1: method-level N2PL vs object-as-data-item (Gemstone)", E6},
		{"E7", "§5.2: NTO abort rate vs contention, conservative vs exact", E7},
		{"E8", "§2/§5.3: modular dictionary (B-tree) vs uniform whole-object policy", E8},
		{"E9", "§3: abort semantics — parent survives child failure", E9},
		{"E10", "Theorem 5: intra-object serialisability alone is insufficient; certification restores it", E10},
		{"E11", "§5.2: timestamp-table garbage collection (low-water pruning)", E11},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------- E1 --

// E1 regenerates the Theorem 1 table: for random legal histories, every
// conflict-consistent permutation of an object's steps replays with
// identical return values and final state.
func E1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Theorem 1: permutation replay determinism",
		Claim:  "any conflict-consistent topological sort of an object's local steps is legal and yields the same final state",
		Header: []string{"txns", "steps/txn", "writePct", "histories", "permutations", "mismatches"},
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	histories := cfg.scale(5, 40)
	perms := cfg.scale(4, 16)
	for _, p := range []struct{ txns, steps, writePct int }{
		{3, 4, 20}, {4, 6, 50}, {6, 8, 80},
	} {
		mismatches := 0
		for seed := 0; seed < histories; seed++ {
			h, err := workload.RandomHistory(workload.HistoryConfig{
				Seed: cfg.Seed + int64(seed), Objects: 2, VarsPerObject: 3,
				Txns: p.txns, StepsPerTxn: p.steps, WritePct: p.writePct, NestPct: 20,
			})
			if err != nil {
				return nil, err
			}
			for _, obj := range h.ObjectNames() {
				want, err := core.ReplayObject(h.Schemas[obj], h.InitialStates[obj], h.Steps[obj])
				if err != nil {
					return nil, err
				}
				for k := 0; k < perms; k++ {
					perm := workload.ConflictConsistentPermutation(r, h, obj)
					got, err := core.ReplayObject(h.Schemas[obj], h.InitialStates[obj], perm)
					if err != nil || !h.Schemas[obj].EqualStates(got, want) {
						mismatches++
					}
				}
			}
		}
		t.AddRow(p.txns, p.steps, p.writePct, histories, perms, mismatches)
	}
	t.Note("expected mismatches: 0 in every row (Theorem 1 holds)")
	return t, nil
}

// ---------------------------------------------------------------- E2 --

// E2 regenerates the Theorem 2 table: on random histories, whenever the
// serialisation graph is acyclic, serial replay succeeds.
func E2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 2: SG acyclic => serialisable",
		Claim:  "if SG(h) is acyclic then h is equivalent to a serial history",
		Header: []string{"density", "histories", "SG-acyclic", "replay-confirmed", "violations"},
	}
	n := cfg.scale(20, 200)
	for _, d := range []struct {
		name string
		cfgH workload.HistoryConfig
	}{
		{"sparse", workload.HistoryConfig{Objects: 4, VarsPerObject: 6, Txns: 3, StepsPerTxn: 2, WritePct: 15, NestPct: 10}},
		{"medium", workload.HistoryConfig{Objects: 3, VarsPerObject: 4, Txns: 4, StepsPerTxn: 3, WritePct: 35, NestPct: 20}},
		{"dense", workload.HistoryConfig{Objects: 2, VarsPerObject: 2, Txns: 4, StepsPerTxn: 4, WritePct: 60, NestPct: 20}},
	} {
		acyc, confirmed, violations := 0, 0, 0
		for seed := 0; seed < n; seed++ {
			h := d.cfgH
			h.Seed = cfg.Seed + int64(seed)
			hist, err := workload.RandomHistory(h)
			if err != nil {
				return nil, err
			}
			v := graph.Check(hist)
			if v.SGAcyclic {
				acyc++
				if v.Serialisable {
					confirmed++
				} else {
					violations++
				}
			}
		}
		t.AddRow(d.name, n, acyc, confirmed, violations)
	}
	t.Note("expected violations: 0 (the sufficient condition never lies)")
	return t, nil
}

// ------------------------------------------------------------ E3/E4 --

func serialisabilitySweep(id, title, claim string, mk func() engine.Scheduler, cfg Config) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Claim:  claim,
		Header: []string{"clients", "txns", "committed", "retries", "serialisable", "thm5"},
	}
	txns := cfg.scale(10, 60)
	for _, clients := range []int{1, 2, 4, 8} {
		sched := mk()
		en := cc.NewEngine(sched, engine.Options{})
		spec := workload.Bank(3, 100)
		spec.Setup(en)
		if err := workload.Drive(en, spec, clients, txns, cfg.Seed); err != nil {
			return nil, err
		}
		h := en.History()
		if err := h.CheckLegal(); err != nil {
			return nil, fmt.Errorf("%s clients=%d: %w", id, clients, err)
		}
		v := graph.Check(h)
		thm5 := "ok"
		if err := graph.CheckTheorem5(h); err != nil {
			thm5 = "VIOLATED"
		}
		serial := "yes"
		if !v.Serialisable {
			serial = "NO"
		}
		t.AddRow(clients, clients*txns, en.Commits(), en.Retries(), serial, thm5)
	}
	t.Note("expected: serialisable=yes and thm5=ok in every row")
	return t, nil
}

// E3 validates Theorem 3 empirically.
func E3(cfg Config) (*Table, error) {
	return serialisabilitySweep("E3", "Theorem 3: N2PL (operation granularity)",
		"nested two-phase locking admits only serialisable executions",
		func() engine.Scheduler { return cc.NewN2PL(lock.OpGranularity, 10*time.Second) }, cfg)
}

// E4 validates Theorem 4 empirically.
func E4(cfg Config) (*Table, error) {
	return serialisabilitySweep("E4", "Theorem 4: NTO (conservative)",
		"nested timestamp ordering admits only serialisable executions",
		func() engine.Scheduler { return cc.NewNTO(false) }, cfg)
}

// ---------------------------------------------------------------- E5 --

// E5 measures the §5.1 claim on queues: at step granularity an Enqueue
// blocks only the Dequeue returning its item, so producer/consumer mixes
// on a non-empty queue run concurrently; operation granularity serialises
// them.
func E5(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "queue producer/consumer: lock granularity",
		Claim:  "locking steps instead of operations exploits return values for concurrency (Enqueue/Dequeue example)",
		Header: []string{"backlog", "scheduler", "txns", "elapsed_ms", "txn/s", "lock-waits", "deadlock-aborts"},
	}
	txns := cfg.scale(30, 300)
	clients := 2 // one producer, one consumer: cross-conflicts only
	for _, backlog := range []int{4, 64, 1024} {
		for _, g := range []lock.Granularity{lock.OpGranularity, lock.StepGranularity} {
			sched := cc.NewN2PL(g, 10*time.Second)
			en := cc.NewEngine(sched, engine.Options{})
			spec := workload.ProducerConsumer(backlog, 20000)
			spec.Setup(en)
			start := time.Now()
			if err := workload.Drive(en, spec, clients, txns, cfg.Seed); err != nil {
				return nil, err
			}
			el := time.Since(start)
			st := sched.Manager().Stats()
			total := clients * txns
			t.AddRow(backlog, sched.Name(), total,
				fmt.Sprintf("%.1f", float64(el.Microseconds())/1000),
				fmt.Sprintf("%.0f", float64(total)/el.Seconds()),
				st.Waits.Load(), st.Deadlocks.Load())
		}
	}
	t.Note("expected shape: n2pl-step waits << n2pl-op waits once the backlog exceeds the consumers' reach")
	return t, nil
}

// ---------------------------------------------------------------- E6 --

// E6 measures the §1 claim: treating whole objects as data items (one
// active method execution per object) forfeits the parallelism that
// method-level locking recovers when methods are long and touch little
// state.
func E6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "hot object: method-level N2PL vs object-as-data-item",
		Claim:  "object-granularity exclusion severely curtails parallelism for long methods (Section 1(b))",
		Header: []string{"clients", "scheduler", "txns", "elapsed_ms", "txn/s"},
	}
	txns := cfg.scale(20, 200)
	spin := 2_000_000 // ~1ms methods: the paper's "quite long programmes"
	for _, clients := range []int{1, 2, 4, 8} {
		for _, mk := range []func() engine.Scheduler{
			func() engine.Scheduler { return cc.NewN2PL(lock.OpGranularity, 10*time.Second) },
			func() engine.Scheduler { return cc.NewGemstone(10*time.Second, nil) },
		} {
			sched := mk()
			en := cc.NewEngine(sched, engine.Options{})
			spec := workload.HotObject(64, spin)
			spec.Setup(en)
			start := time.Now()
			if err := workload.Drive(en, spec, clients, txns, cfg.Seed); err != nil {
				return nil, err
			}
			el := time.Since(start)
			total := clients * txns
			t.AddRow(clients, sched.Name(), total,
				fmt.Sprintf("%.1f", float64(el.Microseconds())/1000),
				fmt.Sprintf("%.0f", float64(total)/el.Seconds()))
		}
	}
	t.Note("expected shape: n2pl-op scales with clients, gemstone stays flat (one active method per object)")
	return t, nil
}

// ---------------------------------------------------------------- E7 --

// E7 sweeps contention and reports NTO abort behaviour: aborts grow with
// contention, and the exact (step-granularity) variant aborts no more than
// the conservative one.
func E7(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "NTO abort rate vs contention",
		Claim:  "timestamp rejections grow with contention; return-value-exact conflicts reject less",
		Header: []string{"hotPct", "scheduler", "commits", "retries", "retry/commit", "serialisable"},
	}
	txns := cfg.scale(15, 120)
	clients := 4
	for _, hot := range []int{10, 50, 90} {
		for _, exact := range []bool{false, true} {
			sched := cc.NewNTO(exact)
			en := cc.NewEngine(sched, engine.Options{})
			spec := workload.AccountMix(16, hot, 300_000)
			spec.Setup(en)
			if err := workload.Drive(en, spec, clients, txns, cfg.Seed); err != nil {
				return nil, err
			}
			h := en.History()
			v := graph.Check(h)
			serial := "yes"
			if !v.Serialisable {
				serial = "NO"
			}
			ratio := float64(en.Retries()) / float64(en.Commits())
			t.AddRow(hot, sched.Name(), en.Commits(), en.Retries(), fmt.Sprintf("%.3f", ratio), serial)
		}
	}
	t.Note("expected shape: retry/commit clearly higher at hotPct>=50 than at 10; nto-step <= nto-op under high contention (return values prune false conflicts)")
	return t, nil
}

// ---------------------------------------------------------------- E8 --

// E8 compares the modular scheme — the dictionary object running its own
// B-tree with per-key conflicts under optimistic certification — against
// the uniform whole-object policy.
func E8(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "dictionary: modular per-object algorithm vs whole-object policy",
		Claim:  "letting each object choose its own synchronisation (B-tree, per-key conflicts) beats one uniform coarse policy (Section 2)",
		Header: []string{"keyRange", "scheduler", "txns", "elapsed_ms", "txn/s", "retries"},
	}
	txns := cfg.scale(20, 200)
	clients := 4
	for _, keys := range []int{8, 256, 4096} {
		for _, mk := range []func() engine.Scheduler{
			func() engine.Scheduler { return cc.NewModular() },
			func() engine.Scheduler { return cc.NewGemstone(10*time.Second, nil) },
		} {
			sched := mk()
			en := cc.NewEngine(sched, engine.Options{})
			spec := workload.Dictionary(keys, keys/2, 60, 500_000)
			spec.Setup(en)
			start := time.Now()
			if err := workload.Drive(en, spec, clients, txns, cfg.Seed); err != nil {
				return nil, err
			}
			el := time.Since(start)
			total := clients * txns
			t.AddRow(keys, sched.Name(), total,
				fmt.Sprintf("%.1f", float64(el.Microseconds())/1000),
				fmt.Sprintf("%.0f", float64(total)/el.Seconds()),
				en.Retries())
		}
	}
	t.Note("expected shape: modular-certifier sustains multi-client parallelism at every key range; gemstone admits one method per object and stays serial")
	return t, nil
}

// ---------------------------------------------------------------- E9 --

// E9 regenerates the abort-semantics table: injected child failures never
// leak state, parents take their fallback, and totals add up.
func E9(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "abort semantics: child fails, parent survives",
		Claim:  "an aborted method execution has no effect and its parent may try an alternative (Section 3)",
		Header: []string{"abortPct", "txns", "ok-path", "fallback-path", "legal", "serialisable"},
	}
	txns := cfg.scale(30, 300)
	for _, pct := range []int{0, 25, 75} {
		sched := cc.NewN2PL(lock.OpGranularity, 10*time.Second)
		en := cc.NewEngine(sched, engine.Options{})
		spec := workload.FailureInjection(pct)
		spec.Setup(en)
		if err := workload.Drive(en, spec, 4, txns, cfg.Seed); err != nil {
			return nil, err
		}
		h := en.History()
		legal := "yes"
		if err := h.CheckLegal(); err != nil {
			legal = "NO: " + err.Error()
		}
		v := graph.Check(h)
		serial := "yes"
		if !v.Serialisable {
			serial = "NO"
		}
		good := h.FinalStates["good"]["n"].(int64)
		bad := h.FinalStates["bad"]["n"].(int64)
		t.AddRow(pct, 4*txns, good, bad, legal, serial)
	}
	t.Note("expected: ok+fallback == txns; legal and serialisable everywhere")
	return t, nil
}

// --------------------------------------------------------------- E10 --

// E10 demonstrates the Section 2 counterexample and its repair: without
// inter-object synchronisation (None scheduler), per-object serialisable
// orders combine into global cycles; under the certifier the same
// adversarial workload stays serialisable at the cost of retries.
func E10(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Theorem 5: per-object serialisability is not enough",
		Claim:  "intra-object serialisability alone does not guarantee global serialisability; compatible per-object orders (certification) do",
		Header: []string{"scheduler", "rounds", "non-serialisable", "retries"},
	}
	rounds := cfg.scale(10, 60)

	for _, mode := range []string{"none", "modular-certifier"} {
		nonSerial := 0
		retries := int64(0)
		for round := 0; round < rounds; round++ {
			var sched engine.Scheduler
			if mode == "none" {
				sched = engine.None{}
			} else {
				sched = cc.NewModular()
			}
			en := cc.NewEngine(sched, engine.Options{})
			en.AddObject("A", nil2(), core.State{"x": int64(0)})
			en.AddObject("B", nil2(), core.State{"y": int64(0)})
			if err := CrossRound(en, cfg.Seed+int64(round)); err != nil {
				return nil, err
			}
			if v := graph.Check(en.History()); !v.Serialisable {
				nonSerial++
			}
			retries += en.Retries()
		}
		t.AddRow(mode, rounds, nonSerial, retries)
	}
	t.Note("expected: none yields non-serialisable rounds; modular-certifier yields zero, paying retries")
	return t, nil
}

// CrossRound runs the cross read/write pattern (the Section 2 shape) with
// a handshake that maximises the chance of the write-skew interleaving.
func CrossRound(en *engine.Engine, seed int64) error {
	var barrier = make(chan struct{})
	errs := make(chan error, 2)
	run := func(readObj, readVar, writeObj, writeVar string, val int64, lead bool) {
		first := true
		_, err := en.Run("cross", func(ctx *engine.Ctx) (core.Value, error) {
			if _, err := ctx.Do(readObj, "Read", readVar); err != nil {
				return nil, err
			}
			if first {
				first = false
				if lead {
					close(barrier)
				} else {
					<-barrier
				}
			}
			_, err := ctx.Do(writeObj, "Write", writeVar, val)
			return nil, err
		})
		errs <- err
	}
	go run("A", "x", "B", "y", 1, true)
	go run("B", "y", "A", "x", 2, false)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// --------------------------------------------------------------- E11 --

// E11 regenerates the footnote-8 table: without low-water pruning the
// exact NTO bookkeeping grows with the number of executed steps; with the
// paper's GC it stays bounded by the live window.
func E11(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "NTO timestamp-table garbage collection",
		Claim:  "step-exact NTO must remember every step unless inactive timestamps below all active ones are discarded (Section 5.2)",
		Header: []string{"gcEvery", "txns", "table-entries-after"},
	}
	txns := cfg.scale(40, 400)
	for _, gcEvery := range []int64{1, 64, 1 << 60} {
		sched := cc.NewNTO(true)
		sched.GCEvery = gcEvery
		en := cc.NewEngine(sched, engine.Options{})
		spec := workload.Skewed(16, 30, 0)
		spec.Setup(en)
		if err := workload.Drive(en, spec, 4, txns, cfg.Seed); err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", gcEvery)
		if gcEvery == 1<<60 {
			label = "never"
		}
		t.AddRow(label, 4*txns, sched.TableSize())
	}
	t.Note("expected shape: entries after 'never' >> entries with pruning")
	return t, nil
}

func nil2() *core.Schema {
	return registerSchema()
}
