// Package bench is the experiment harness: it regenerates, as printable
// tables, the executable experiments E1-E11 catalogued in DESIGN.md §4 —
// the reproduction's stand-in for the paper's (non-existent) evaluation
// section. Each experiment validates a theorem or a prose claim; the
// tables record both the measurements and the oracle verdicts.
//
// The same building blocks back the testing.B benchmarks in the repository
// root (bench_test.go) and the obsim CLI.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim the experiment validates
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Config scales the experiments.
type Config struct {
	// Quick shrinks workloads for CI/tests; the full size is for the
	// recorded EXPERIMENTS.md numbers.
	Quick bool
	Seed  int64
}

func (c Config) scale(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}
