// Per-shard epoch accumulators: the collection half of epoch group
// commit (the execution half is engine.ExecuteEpoch).
//
// Each shard owns one accumulator run in the flat-combining style: a
// declared-set transaction enqueues into the accumulator of its lowest
// home shard, and the first request to find no flusher active becomes
// the flusher, draining the queue batch by batch until it is empty.
// While one batch executes under the gates, new arrivals accumulate
// behind it — backpressure forms the next batch with no timer involved,
// so a saturated shard flushes continuously and an idle one costs
// nothing (there are no background goroutines; epochs are driven
// entirely by requester goroutines). The window only adds patience: a
// flusher whose next batch is still below maxBatch parks for at most
// the window to let stragglers join, trading that much latency for
// batch size at low load.
//
// Cross-shard alignment: a multi-shard declared transaction joins the
// epoch of its lowest shard, and the flusher gates the union of the
// batch's shard sets (in directory order, so concurrent flushers from
// different accumulators cannot deadlock — they serialise on the shared
// shards instead). A declared transaction therefore never needs the
// 2PC path in epoch mode; undeclared transactions keep the scheduled
// path untouched.
package shard

import (
	"runtime"
	"sync"
	"time"

	"objectbase/internal/engine"
)

// epochConfig is the batching policy: flush at most maxBatch requests
// per batch, waiting up to window for a short batch to fill.
type epochConfig struct {
	window   time.Duration
	maxBatch int
}

// epochAccum is one shard's accumulator. flushing marks a flusher
// goroutine draining the queue; collecting marks it parked in a window
// wait, during which full (capacity 1) signals that the size cap was
// reached.
type epochAccum struct {
	mu         sync.Mutex
	queue      []*engine.EpochReq
	flushing   bool
	collecting bool
	full       chan struct{}
}

// EnableEpochs turns on epoch group commit for declared-set
// transactions: batches are bounded by the time window and the size
// cap. Call before traffic starts (it is not synchronised against
// in-flight transactions). A maxBatch of one keeps the per-transaction
// serial fast path (the degenerate epoch is pure overhead), so
// EpochsEnabled stays false.
func (sp *Space) EnableEpochs(window time.Duration, maxBatch int) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	sp.epochs = &epochConfig{window: window, maxBatch: maxBatch}
	sp.accums = make([]epochAccum, len(sp.engines))
}

// EpochsEnabled implements engine.EpochRouter.
func (sp *Space) EpochsEnabled() bool {
	return sp.epochs != nil && sp.epochs.maxBatch > 1
}

// EpochEnqueue implements engine.EpochRouter. When a flusher is already
// draining the shard, the request just joins the queue and the call
// returns immediately; otherwise the calling goroutine becomes the
// flusher and serves batches until the queue is empty — so the call may
// block for several epochs, and the caller must then wait on the
// request's done channel either way (its own request was in the first
// batch it flushed).
func (sp *Space) EpochEnqueue(req *engine.EpochReq) {
	cfg := sp.epochs
	a := &sp.accums[req.HomeShard()]
	a.mu.Lock()
	a.queue = append(a.queue, req)
	if a.flushing {
		if a.collecting && len(a.queue) >= cfg.maxBatch {
			select {
			case a.full <- struct{}{}:
			default:
			}
		}
		a.mu.Unlock()
		return
	}
	a.flushing = true
	if a.full == nil {
		a.full = make(chan struct{}, 1)
	}
	a.mu.Unlock()
	sp.flushLoop(a, cfg)
}

// flushLoop drains the accumulator batch by batch. The queue-non-empty
// ⇒ flusher-active invariant is maintained under the accumulator mutex:
// the loop only exits after observing an empty queue, and an enqueuer
// that finds flushing unset becomes the flusher itself, so no parked
// request is ever left without a goroutine responsible for it.
func (sp *Space) flushLoop(a *epochAccum, cfg *epochConfig) {
	var batch []*engine.EpochReq
	for {
		a.mu.Lock()
		if len(a.queue) == 0 {
			a.flushing = false
			a.mu.Unlock()
			return
		}
		if len(a.queue) < cfg.maxBatch && cfg.window > 0 {
			// A short batch waits for company; enqueuers cut the wait
			// short the moment the size cap is reached. The wait is two
			// tiers: first a bare scheduler yield — on a saturated
			// machine every runnable requester enqueues during it, which
			// fills the batch for the cost of one goroutine switch — and
			// only if the batch is still short does the flusher park in a
			// timer for the rest of the window.
			a.collecting = true
			a.mu.Unlock()
			runtime.Gosched()
			a.mu.Lock()
			if len(a.queue) < cfg.maxBatch {
				a.mu.Unlock()
				timer := time.NewTimer(cfg.window)
				//oblint:allow ctxwait -- the flusher's collection wait is bounded by the epoch window; honouring one member's context here would abandon the requests queued behind this batch
				select {
				case <-timer.C:
				case <-a.full:
					timer.Stop()
				}
				a.mu.Lock()
			}
			a.collecting = false
			// Drain a stale size-cap signal under the same lock that
			// orders the senders (they only signal while collecting is
			// set), so the next batch's wait cannot be cut short by this
			// batch's signal.
			select {
			case <-a.full:
			default:
			}
		}
		n := len(a.queue)
		if n > cfg.maxBatch {
			n = cfg.maxBatch
		}
		batch = append(batch[:0], a.queue[:n]...)
		rem := copy(a.queue, a.queue[n:])
		clear(a.queue[rem:])
		a.queue = a.queue[:rem]
		a.mu.Unlock()
		engine.ExecuteEpoch(sp, batch)
	}
}
