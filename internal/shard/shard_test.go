package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"objectbase/internal/cc"
	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/objects"
)

// TestDirectoryDeterministicAndSpread: the directory is a pure function
// of the name, stable across instances, and spreads a realistic name
// population over every shard.
func TestDirectoryDeterministicAndSpread(t *testing.T) {
	d1 := NewDirectory(8)
	d2 := NewDirectory(8)
	counts := make([]int, 8)
	for i := 0; i < 1024; i++ {
		name := fmt.Sprintf("obj-%d", i)
		s := d1.Shard(name)
		if s != d2.Shard(name) {
			t.Fatalf("directory not deterministic for %q", name)
		}
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no objects out of 1024", s)
		}
	}
	if NewDirectory(0).N() != 1 {
		t.Fatal("NewDirectory(0) should clamp to 1")
	}
}

// newSpace builds a sharded space over n engines running the named
// scheduler, the way the façade does.
func newSpace(t *testing.T, sched string, n int, opts engine.Options) *Space {
	t.Helper()
	engines, err := cc.NewShardedEngines(sched, n, cc.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return NewSpace(engines)
}

// counterOn registers a counter object with a bump method.
func counterOn(sp *Space, name string) {
	sp.AddObject(name, objects.Counter(), nil)
	sp.Register(name, "bump", func(c *engine.Ctx) (core.Value, error) {
		return c.Do(name, "Add", int64(1))
	})
}

// shardedNames returns object names covering at least two distinct
// shards, grouped by shard.
func shardedNames(sp *Space, want int) map[int][]string {
	out := make(map[int][]string)
	for i := 0; len(out) < want && i < 4096; i++ {
		n := fmt.Sprintf("ctr%d", i)
		s := sp.Directory().Shard(n)
		if len(out[s]) == 0 {
			out[s] = append(out[s], n)
		}
	}
	return out
}

// TestStitchCrossShardTransaction: a transaction spanning two shards is
// recorded piecewise and stitched back into one history whose structure
// (roots, children, messages, steps) the oracle machinery accepts. The
// set is declared, so the transaction runs the serial commit fast path —
// whose records must be indistinguishable in shape from scheduled ones.
func TestStitchCrossShardTransaction(t *testing.T) {
	sp := newSpace(t, "n2pl-op", 4, engine.Options{})
	byShard := shardedNames(sp, 2)
	var names []string
	for _, ns := range byShard {
		names = append(names, ns[0])
	}
	a, b := names[0], names[1]
	counterOn(sp, a)
	counterOn(sp, b)

	ctx := context.Background()
	if _, err := sp.Exec(ctx, "cross", func(c *engine.Ctx) (core.Value, error) {
		if _, err := c.Call(a, "bump"); err != nil {
			return nil, err
		}
		return c.Call(b, "bump")
	}, []string{a, b}); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Exec(ctx, "single", func(c *engine.Ctx) (core.Value, error) {
		return c.Call(a, "bump")
	}, nil); err != nil {
		t.Fatal(err)
	}

	h, err := sp.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Roots) != 2 {
		t.Fatalf("stitched Roots = %v, want 2 roots", h.Roots)
	}
	// The cross transaction's root must carry both children, in message
	// order, with MessageTo resolving each (the slot invariant).
	cross := h.Exec(h.Roots[0])
	if cross == nil || len(cross.Children) != 2 {
		t.Fatalf("cross root children = %+v", cross)
	}
	for _, child := range cross.Children {
		if _, _, err := h.MessageTo(child); err != nil {
			t.Fatalf("MessageTo(%v): %v", child, err)
		}
	}
	// One step per object per bump, in each object's own linearisation.
	if len(h.Steps[a]) != 2 || len(h.Steps[b]) != 1 {
		t.Fatalf("steps: %s=%d %s=%d, want 2/1", a, len(h.Steps[a]), b, len(h.Steps[b]))
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("stitched history not legal: %v", err)
	}
	// Final states must come from each object's home shard.
	if got := h.FinalStates[a]["n"]; got != int64(2) {
		t.Fatalf("final %s = %v, want 2", a, got)
	}
}

// TestStitchDiscoveryRestart: an *undeclared* transaction that discovers
// a second shard mid-run restarts — its shared first gate cannot be
// upgraded — leaving one aborted attempt in the stitched history, and
// the restarted attempt commits with the full structure. The effective
// steps see exactly one bump per object.
func TestStitchDiscoveryRestart(t *testing.T) {
	sp := newSpace(t, "n2pl-op", 4, engine.Options{})
	byShard := shardedNames(sp, 2)
	var names []string
	for _, ns := range byShard {
		names = append(names, ns[0])
	}
	a, b := names[0], names[1]
	counterOn(sp, a)
	counterOn(sp, b)

	if _, err := sp.Exec(context.Background(), "cross", func(c *engine.Ctx) (core.Value, error) {
		if _, err := c.Call(a, "bump"); err != nil {
			return nil, err
		}
		return c.Call(b, "bump")
	}, nil); err != nil {
		t.Fatal(err)
	}
	h, err := sp.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Roots) != 2 {
		t.Fatalf("stitched Roots = %v, want aborted attempt + committed restart", h.Roots)
	}
	if first := h.Exec(h.Roots[0]); !first.Aborted {
		t.Fatal("discovery attempt not marked aborted")
	}
	if second := h.Exec(h.Roots[1]); second.Aborted || len(second.Children) != 2 {
		t.Fatalf("restarted attempt = %+v, want 2 children committed", second)
	}
	if got := len(h.EffectiveSteps(a)) + len(h.EffectiveSteps(b)); got != 2 {
		t.Fatalf("effective steps = %d, want 2 (one bump per object)", got)
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("stitched history not legal: %v", err)
	}
	aborts := int64(0)
	for _, en := range sp.Engines() {
		aborts += en.Aborts()
	}
	if aborts != 0 {
		t.Fatalf("discovery restart counted %d workload aborts, want 0", aborts)
	}
}

// TestStitchAbortClosure: an aborted cross-shard transaction is marked
// aborted in every shard it touched, and the stitched history keeps the
// abort closed over the whole subtree.
func TestStitchAbortClosure(t *testing.T) {
	sp := newSpace(t, "n2pl-op", 4, engine.Options{})
	byShard := shardedNames(sp, 2)
	var names []string
	for _, ns := range byShard {
		names = append(names, ns[0])
	}
	a, b := names[0], names[1]
	counterOn(sp, a)
	counterOn(sp, b)

	wantErr := fmt.Errorf("user abort")
	_, err := sp.Exec(context.Background(), "doomed", func(c *engine.Ctx) (core.Value, error) {
		if _, err := c.Call(a, "bump"); err != nil {
			return nil, err
		}
		if _, err := c.Call(b, "bump"); err != nil {
			return nil, err
		}
		return nil, wantErr
	}, nil)
	if err == nil {
		t.Fatal("doomed transaction committed")
	}
	h, err := sp.History()
	if err != nil {
		t.Fatal(err)
	}
	root := h.Exec(h.Roots[0])
	if !root.Aborted {
		t.Fatal("aborted root not marked in stitched history")
	}
	for _, child := range root.Children {
		if !h.Aborted(child) {
			t.Fatalf("child %v of aborted root not marked aborted", child)
		}
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatalf("stitched history not legal after abort: %v", err)
	}
	// The effective steps exclude the aborted transaction's bumps.
	if n := len(h.EffectiveSteps(a)); n != 0 {
		t.Fatalf("EffectiveSteps(%s) = %d, want 0", a, n)
	}
}

// TestGateRestartConvergence: when a transaction's non-blocking gate
// acquisition loses (another cross-shard holder), it restarts with the
// learned set pre-gated — blocking, in directory order — and completes
// once the holder drains. Exercised deterministically by holding a gate
// by hand.
func TestGateRestartConvergence(t *testing.T) {
	sp := newSpace(t, "n2pl-op", 4, engine.Options{})
	byShard := shardedNames(sp, 2)
	var shards []int
	for s := range byShard {
		shards = append(shards, s)
	}
	a, b := byShard[shards[0]][0], byShard[shards[1]][0]
	counterOn(sp, a)
	counterOn(sp, b)

	// Hold the gate of b's shard, so the transaction's TryGate loses and
	// its pre-gated restart must wait until release.
	blocked := sp.Directory().Shard(b)
	sp.LockGate(blocked)
	released := false
	var mu sync.Mutex
	go func() {
		time.Sleep(100 * time.Millisecond)
		mu.Lock()
		released = true
		mu.Unlock()
		sp.UnlockGate(blocked)
	}()
	start := time.Now()
	if _, err := sp.Exec(context.Background(), "t", func(c *engine.Ctx) (core.Value, error) {
		if _, err := c.Call(a, "bump"); err != nil {
			return nil, err
		}
		return c.Call(b, "bump")
	}, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !released {
		t.Fatal("transaction committed while the shard gate was still held")
	}
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Fatalf("completed after %v, before the gate released", waited)
	}
	if got := sp.Engines()[sp.Directory().Shard(a)].Commits() + sp.Engines()[sp.Directory().Shard(b)].Commits(); got != 1 {
		t.Fatalf("commit counted %d times, want exactly once", got)
	}
}

// TestPreGatedUndeclaredShard: a pre-gated transaction whose body
// touches a shard *outside* its declared set must not mix gated and
// ungated shards (the deadlock-freedom invariant needs gates on every
// touched shard once any gate is held) — it restarts with the union set
// and completes correctly, whatever the undeclared shard's index.
func TestPreGatedUndeclaredShard(t *testing.T) {
	sp := newSpace(t, "n2pl-op", 8, engine.Options{})
	byShard := shardedNames(sp, 8)
	if len(byShard) < 3 {
		t.Skip("need three shards")
	}
	var names []string
	for s := 0; s < 8; s++ {
		if ns := byShard[s]; len(ns) > 0 {
			names = append(names, ns[0])
		}
	}
	// Declare the two highest-shard objects; actually touch the lowest
	// first, forcing the worst case (undeclared shard below the gated
	// maximum, where blocking acquisition would be unsafe).
	low, hi1, hi2 := names[0], names[len(names)-2], names[len(names)-1]
	counterOn(sp, low)
	counterOn(sp, hi1)
	counterOn(sp, hi2)
	if _, err := sp.Exec(context.Background(), "t", func(c *engine.Ctx) (core.Value, error) {
		if _, err := c.Call(low, "bump"); err != nil {
			return nil, err
		}
		if _, err := c.Call(hi1, "bump"); err != nil {
			return nil, err
		}
		return c.Call(hi2, "bump")
	}, []string{hi1, hi2}); err != nil {
		t.Fatal(err)
	}
	h, err := sp.History()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	commits := int64(0)
	for _, en := range sp.Engines() {
		commits += en.Commits()
	}
	if commits != 1 {
		t.Fatalf("commits = %d, want 1", commits)
	}
}

// TestPreGatedTouches: a declared cross-shard touch set skips discovery
// entirely — no aborts are recorded even though the objects span shards.
func TestPreGatedTouches(t *testing.T) {
	sp := newSpace(t, "n2pl-op", 4, engine.Options{})
	byShard := shardedNames(sp, 2)
	var names []string
	for _, ns := range byShard {
		names = append(names, ns[0])
	}
	a, b := names[0], names[1]
	counterOn(sp, a)
	counterOn(sp, b)
	if _, err := sp.Exec(context.Background(), "t", func(c *engine.Ctx) (core.Value, error) {
		if _, err := c.Call(a, "bump"); err != nil {
			return nil, err
		}
		return c.Call(b, "bump")
	}, []string{a, b}); err != nil {
		t.Fatal(err)
	}
	aborts := int64(0)
	for _, en := range sp.Engines() {
		aborts += en.Aborts()
	}
	if aborts != 0 {
		t.Fatalf("pre-gated transaction recorded %d aborts, want 0", aborts)
	}
}
