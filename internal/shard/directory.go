// Package shard partitions an object base across N independent engine
// instances — each with its own scheduler, lock manager, object latches
// and version rings — so that transactions against disjoint shards share
// no synchronisation state.
//
// The paper's history model h = (E, <, B, S) is defined per object base,
// but nothing in it requires one scheduler instance to own every object:
// transactions over disjoint objects are trivially serialisable against
// each other, so a deterministic partition of the object space keeps
// every guarantee as long as (a) transactions that span shards commit
// atomically across them with no waits-for cycle escaping the per-shard
// detectors, and (b) the per-shard histories can be stitched back into
// one history the oracle accepts. (a) is the engine's cross-shard
// protocol (shard gates + shard-ordered two-phase commit, see
// engine/shard_run.go); (b) is Stitch, enabled by the space-wide
// transaction identities and history clock (engine.Shared).
package shard

import "hash/fnv"

// Directory is the deterministic object→shard map: FNV-1a over the
// object name, reduced modulo the shard count. It is pure — no state, no
// registration step — so every node, run, and stitched history agrees on
// object placement by construction.
type Directory struct {
	n int
}

// NewDirectory returns a directory over n shards (n >= 1).
func NewDirectory(n int) *Directory {
	if n < 1 {
		n = 1
	}
	return &Directory{n: n}
}

// N returns the shard count.
func (d *Directory) N() int { return d.n }

// Shard returns the shard index owning the named object, in [0, N).
func (d *Directory) Shard(object string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(object))
	return int(h.Sum64() % uint64(d.n))
}
