package shard

import (
	"sort"

	"objectbase/internal/core"
)

// Stitch merges per-shard history snapshots into one history of the whole
// space, on which the oracle (legality, serialisability, Theorem 5)
// certifies the run exactly as it would a single-engine history.
//
// The merge is sound because of what the engines share and how the
// records are laid out:
//
//   - objects live in exactly one shard, so Schemas, Initial/FinalStates
//     and the per-object step linearisations are disjoint unions;
//   - transaction identities come from the space-wide allocator, so a
//     cross-shard execution carries the same ExecID in every shard — its
//     replicated records collapse by key, and Roots order by ID is the
//     space-wide start order ("stitched by global commit sequence");
//   - ticks come from the space-wide clock, so the < relation is
//     consistent across shards: an execution's local steps, recorded in
//     several shards, interleave correctly when sorted by tick;
//   - a parent's message steps land in the recorder of each child's home
//     shard at the child's message index, so re-slotting the union by
//     index restores the Messages[parent][k]-creates-Child(k) invariant.
func Stitch(parts []*core.History) *core.History {
	out := core.NewHistory()
	if len(parts) == 1 {
		return parts[0]
	}
	out.FinalStates = make(map[string]core.State)

	type msgSlot struct{ msgs []*core.MessageStep }
	slots := make(map[string]*msgSlot)
	rootSeen := make(map[string]bool)

	for _, h := range parts {
		if h == nil {
			continue
		}
		for name, sc := range h.Schemas {
			out.Schemas[name] = sc
		}
		for name, st := range h.InitialStates {
			out.InitialStates[name] = st
		}
		for name, st := range h.FinalStates {
			out.FinalStates[name] = st
		}
		for name, steps := range h.Steps {
			out.Steps[name] = append(out.Steps[name], steps...)
		}
		for key, steps := range h.LocalSteps {
			out.LocalSteps[key] = append(out.LocalSteps[key], steps...)
		}
		for key, e := range h.Execs {
			if have := out.Execs[key]; have != nil {
				// A cross-shard execution's record is replicated per
				// shard; the abort mark is written to every replica, but
				// merge defensively.
				have.Aborted = have.Aborted || e.Aborted
				continue
			}
			ce := *e
			ce.Children = nil // recomputed below from the merged exec set
			out.Execs[key] = &ce
		}
		for _, r := range h.Roots {
			if !rootSeen[r.Key()] {
				rootSeen[r.Key()] = true
				out.Roots = append(out.Roots, r)
			}
		}
		for key, msgs := range h.Messages {
			sl := slots[key]
			if sl == nil {
				sl = &msgSlot{}
				slots[key] = sl
			}
			for _, m := range msgs {
				if m == nil {
					continue
				}
				k := int(m.Child[len(m.Child)-1])
				for k >= len(sl.msgs) {
					sl.msgs = append(sl.msgs, nil)
				}
				sl.msgs[k] = m
			}
		}
	}

	// Children: each shard only links the children that ran there, so
	// rebuild the forest from the merged execution set.
	for _, e := range out.Execs {
		if len(e.ID) <= 1 {
			continue
		}
		if pe := out.Execs[e.ID.Parent().Key()]; pe != nil {
			pe.Children = append(pe.Children, e.ID)
		}
	}
	for _, e := range out.Execs {
		sort.Slice(e.Children, func(i, j int) bool {
			return e.Children[i][len(e.Children[i])-1] < e.Children[j][len(e.Children[j])-1]
		})
	}

	// Roots in space-wide start order (the shared allocator's order).
	sort.Slice(out.Roots, func(i, j int) bool { return out.Roots[i][0] < out.Roots[j][0] })

	// Messages compacted like a single-engine snapshot: a quiescent
	// history has every slot filled; mid-run allocation gaps are elided.
	for key, sl := range slots {
		cp := make([]*core.MessageStep, 0, len(sl.msgs))
		for _, m := range sl.msgs {
			if m != nil {
				cp = append(cp, m)
			}
		}
		out.Messages[key] = cp
	}

	// An execution's local steps may span shards (environment-level Do):
	// the shared clock makes tick order the issue order.
	for key, steps := range out.LocalSteps {
		sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
		out.LocalSteps[key] = steps
	}
	// Per-object steps never span shards; their recorded linearisation
	// (ObjSeq order, with view steps slotted by core.StepLess) is already
	// what each shard's snapshot handed over.
	return out
}
