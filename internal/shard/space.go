package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"objectbase/internal/core"
	"objectbase/internal/engine"
	"objectbase/internal/obs"
)

// Space is a sharded object base: N engines behind one deterministic
// directory, with the per-shard gates the cross-shard protocol needs. It
// implements engine.Router (the routing surface of cross-shard
// transactions) and engine.Registrar (registration routes to the home
// engine), and stitches the per-shard histories back into one for the
// oracle.
//
// Gates are reader/writer: transactions running under a shard's own
// scheduler and lock manager hold the gate shared (read side), while
// transactions that need the shard to themselves — declared-set serial
// transactions and cross-shard two-phase commits — hold it exclusively
// (write side). See engine/shard_run.go for the protocol.
//
// Build the engines with a common engine.Shared (see cc.NewShardedEngines):
// the space assumes space-wide transaction identities and, under full
// recording, a space-wide history clock.
type Space struct {
	dir     *Directory
	engines []*engine.Engine
	gates   []sync.RWMutex
	// tr, when non-nil, records gate-wait spans for contended gate
	// acquisitions (uncontended TryLocks record nothing, so the serial
	// fast path stays span-free when gates are free).
	tr        *obs.Tracer
	gateNames []string // "gate-<s>", precomputed so spans allocate nothing

	// epochs/accums, when set (EnableEpochs), batch declared-set
	// transactions through per-shard epoch accumulators — see epoch.go.
	epochs *epochConfig
	accums []epochAccum
}

// NewSpace returns a space over the given engines (one per shard, index =
// shard index).
func NewSpace(engines []*engine.Engine) *Space {
	if len(engines) == 0 {
		panic("shard: NewSpace with no engines")
	}
	return &Space{
		dir:     NewDirectory(len(engines)),
		engines: engines,
		gates:   make([]sync.RWMutex, len(engines)),
	}
}

// SetTracer wires the flight recorder into the space's gates. Call
// before traffic starts (it is not synchronised against in-flight gate
// acquisitions).
func (sp *Space) SetTracer(tr *obs.Tracer) {
	sp.tr = tr
	if tr != nil && sp.gateNames == nil {
		sp.gateNames = make([]string, len(sp.gates))
		for i := range sp.gateNames {
			sp.gateNames[i] = "gate-" + strconv.Itoa(i)
		}
	}
}

// Directory returns the space's object→shard directory.
func (sp *Space) Directory() *Directory { return sp.dir }

// Engines returns the per-shard engines (index = shard index).
func (sp *Space) Engines() []*engine.Engine { return sp.engines }

// HomeOf implements engine.Router.
func (sp *Space) HomeOf(object string) (*engine.Engine, int, error) {
	s := sp.dir.Shard(object)
	return sp.engines[s], s, nil
}

// NumShards implements engine.Router.
func (sp *Space) NumShards() int { return len(sp.engines) }

// Base implements engine.Router.
func (sp *Space) Base() *engine.Engine { return sp.engines[0] }

// TryGate implements engine.Router.
func (sp *Space) TryGate(s int) bool { return sp.gates[s].TryLock() }

// LockGate implements engine.Router. Contended acquisitions (the
// TryLock misses) are recorded as gate-wait spans when tracing is on.
func (sp *Space) LockGate(s int) {
	if sp.tr == nil {
		sp.gates[s].Lock()
		return
	}
	if sp.gates[s].TryLock() {
		return
	}
	span := sp.tr.StartSpan(obs.PhaseGateWait, uint64(s), "", sp.gateNames[s])
	sp.gates[s].Lock()
	span.End()
}

// UnlockGate implements engine.Router.
func (sp *Space) UnlockGate(s int) { sp.gates[s].Unlock() }

// RLockGate implements engine.Router; contended shared acquisitions
// are recorded like LockGate's.
func (sp *Space) RLockGate(s int) {
	if sp.tr == nil {
		sp.gates[s].RLock()
		return
	}
	if sp.gates[s].TryRLock() {
		return
	}
	span := sp.tr.StartSpan(obs.PhaseGateWait, uint64(s), "", sp.gateNames[s])
	sp.gates[s].RLock()
	span.EndWith("shared")
}

// TryRGate implements engine.Router.
func (sp *Space) TryRGate(s int) bool { return sp.gates[s].TryRLock() }

// RUnlockGate implements engine.Router.
func (sp *Space) RUnlockGate(s int) { sp.gates[s].RUnlock() }

// AddObject implements engine.Registrar: the object is created in its
// home engine.
func (sp *Space) AddObject(name string, sc *core.Schema, initial core.State) *engine.Object {
	en, _, _ := sp.HomeOf(name)
	return en.AddObject(name, sc, initial)
}

// Register implements engine.Registrar: the method is installed on the
// object's home engine.
func (sp *Space) Register(object, method string, fn engine.MethodFunc) {
	en, _, _ := sp.HomeOf(object)
	en.Register(object, method, fn)
}

// Object returns the named object from its home engine, or nil.
func (sp *Space) Object(name string) *engine.Object {
	en, _, _ := sp.HomeOf(name)
	return en.Object(name)
}

// Exec runs a top-level transaction against the space (see
// engine.RunSharded). touches optionally declares the objects the
// transaction will access, letting a cross-shard transaction gate its
// shard set up front instead of discovering it optimistically.
func (sp *Space) Exec(ctx context.Context, name string, fn engine.MethodFunc, touches []string, args ...core.Value) (core.Value, error) {
	return engine.RunSharded(ctx, sp, name, fn, args, touches)
}

// View runs a read-only snapshot transaction against the space (see
// engine.RunViewSharded): the first touched object pins the shard whose
// watermark the snapshot is fixed at; views spanning shards fall back to
// the locked read-only path.
func (sp *Space) View(ctx context.Context, name string, fn engine.MethodFunc, args ...core.Value) (core.Value, error) {
	return engine.RunViewSharded(ctx, sp, name, fn, args)
}

// History stitches the per-shard histories into one history of the whole
// space (see Stitch). The error wraps engine.ErrHistoryDisabled or
// engine.ErrHistoryLimit when any shard cannot produce its part.
func (sp *Space) History() (*core.History, error) {
	parts := make([]*core.History, 0, len(sp.engines))
	for i, en := range sp.engines {
		h, err := en.HistoryErr()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		parts = append(parts, h)
	}
	return Stitch(parts), nil
}
